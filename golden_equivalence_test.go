package poc

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"sort"
	"strconv"
	"testing"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/provision"
)

// The goldens below were captured on the map[int]bool seed
// implementation (pre-bitset), hashing every float in full hex
// precision. The bitset/workspace engine must reproduce them
// bit-for-bit: the dense LinkSet and the reusable arenas are pure
// representation changes, so any drift here is a correctness bug,
// not an acceptable perf trade-off (DESIGN.md §10).
//
// Floats hash via strconv.FormatFloat(x, 'x', -1, 64), so the test
// is exact, not tolerance-based. The scenario generator is seeded;
// same platform => same paths, same arithmetic, same bytes.

type auctionGolden struct {
	selected  int
	checks    int
	totalCost string
	virtual   string
	hash      string
}

var seedAuctionGoldens = map[Constraint]auctionGolden{
	Constraint1: {33, 26, "0x1.3e260f546996p+20", "0x0p+00",
		"cabb77e5286c49f6418adeb166f636e3be593b900e010aef098b3fce73dcada6"},
	Constraint2: {32, 24, "0x1.52c36be72937ap+20", "0x0p+00",
		"c41467d8a0738c25a795dec81841b4c1317aeea274cd91d2bb162f7f97557b86"},
	Constraint3: {33, 24, "0x1.4e7f22666bf02p+20", "0x0p+00",
		"83dc56513b39397345ec8cc5c38839871dfbf354f95e10bce2c8a10693e89c2a"},
}

const (
	seedObsExportLen  = 3174
	seedObsExportHash = "40ed8921be983569a5fce966fd60a87da03b7e283584c158be5a96723852208d"

	seedRouteAsgCount   = 132
	seedRouteHash       = "9df7289315c236ff270d1472b887e2d1cc74abc54b33bb9d8615e7cdf7acdd6a"
	seedRouteSubsetHash = "3cc9ce8f58a919e8988f4ec87f2894a97f29800e358d015684f84a9b82cef048"
)

func hashAuction(res *AuctionResult) string {
	var ids []int
	for id := range res.Selected {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h := sha256.New()
	for _, id := range ids {
		fmt.Fprintf(h, "%d,", id)
	}
	var as []int
	for a := range res.Payments {
		as = append(as, a)
	}
	sort.Ints(as)
	for _, a := range as {
		fmt.Fprintf(h, "p%d=%s;a%d=%s;c%d=%s;", a,
			strconv.FormatFloat(res.Payments[a], 'x', -1, 64), a,
			strconv.FormatFloat(res.Alternative[a], 'x', -1, 64), a,
			strconv.FormatFloat(res.BPCost[a], 'x', -1, 64))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func hashAsg(h hash.Hash, asg map[[2]int][]provision.PathAssignment) {
	var pairs [][2]int
	for pr := range asg {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pr := range pairs {
		fmt.Fprintf(h, "%d-%d:", pr[0], pr[1])
		for _, a := range asg[pr] {
			fmt.Fprintf(h, "%s:", strconv.FormatFloat(a.Gbps, 'x', -1, 64))
			for _, l := range a.Links {
				fmt.Fprintf(h, "%d,", l)
			}
			fmt.Fprint(h, ";")
		}
	}
}

func hashRouting(res *provision.Routing) string {
	h := sha256.New()
	hashAsg(h, res.Assignments)
	var ids []int
	for id := range res.Used {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(h, "u%d=%s;", id, strconv.FormatFloat(res.Used[id], 'x', -1, 64))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestAuctionMatchesSeedGoldens runs winner determination for every
// constraint at Workers 1 and 4 and requires the exact seed outcome:
// selection, check count, every payment/alternative/cost float, and
// the total. Workers=4 shares one workspace across counterfactual
// goroutines, so this also pins the per-worker arena handoff.
func TestAuctionMatchesSeedGoldens(t *testing.T) {
	for c := Constraint1; c <= Constraint3; c++ {
		want := seedAuctionGoldens[c]
		for _, workers := range []int{1, 4} {
			s, err := NewScenario(ScenarioOptions{Scale: 0.12})
			if err != nil {
				t.Fatal(err)
			}
			inst := s.Instance(c, 0)
			inst.Workers = workers
			res, err := inst.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Selected) != want.selected {
				t.Errorf("%v workers=%d: selected %d links, seed selected %d",
					c, workers, len(res.Selected), want.selected)
			}
			if res.Checks != want.checks {
				t.Errorf("%v workers=%d: %d checks, seed ran %d",
					c, workers, res.Checks, want.checks)
			}
			if got := strconv.FormatFloat(res.TotalCost, 'x', -1, 64); got != want.totalCost {
				t.Errorf("%v workers=%d: total cost %s, seed %s", c, workers, got, want.totalCost)
			}
			if got := strconv.FormatFloat(res.VirtualCost, 'x', -1, 64); got != want.virtual {
				t.Errorf("%v workers=%d: virtual cost %s, seed %s", c, workers, got, want.virtual)
			}
			if got := hashAuction(res); got != want.hash {
				t.Errorf("%v workers=%d: outcome hash %s, seed %s", c, workers, got, want.hash)
			}
		}
	}
}

// TestObsExportMatchesSeedGolden pins the full deterministic metrics
// export (auction + fabric counters serialized to canonical JSON)
// byte-for-byte against the seed.
func TestObsExportMatchesSeedGolden(t *testing.T) {
	out := metricsExport(t, 1)
	if len(out) != seedObsExportLen {
		t.Errorf("export length %d, seed %d", len(out), seedObsExportLen)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(out)); got != seedObsExportHash {
		t.Errorf("export hash %s, seed %s", got, seedObsExportHash)
	}
}

// Fabric goldens: captured on the pointer-per-flow seed fabric
// (map[FlowID]*Flow, per-flow []int paths, map-of-map crossing
// indexes). The struct-of-arrays engine must reproduce every float —
// allocations, latencies, transferred volume, residuals — bit for
// bit. Flow identity is hashed by admission order and endpoints, not
// by raw FlowID values: generation-tagged IDs change the numeric IDs
// without changing any observable flow state.
const (
	seedFabricFlows     = 164
	seedFabricFailed    = 0
	seedFabricStateHash = "b1ecd1b5a2f8986ca89d15e038e77f677bf7d8800dc820c49b8984e81e0e6768"
	seedFabricChaosHash = "f8b773264c2d6afa9951baa5585615a8299dc36c342ac8d1e47ec3a1c6a41e40"
)

// fabricWorkload drives a deterministic fabric lifecycle over the
// scenario network: admission waves with mixed QoS classes (including
// local, degraded, and rejected flows), multicast trees, anycast,
// partial stops, correlated link failures, a full BP outage and
// repair, and billing ticks. Slot reuse matters: the second wave
// admits into capacity freed by the stops, so a free-list engine
// exercises recycled slots here.
func fabricWorkload(t *testing.T) *netsim.Fabric {
	t.Helper()
	s, err := NewScenario(ScenarioOptions{Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	f := netsim.New(s.Network, nil)
	nr := len(s.Network.Routers)
	kinds := []netsim.EndpointKind{netsim.LMPEndpoint, netsim.CSPEndpoint}
	for r := 0; r < nr; r++ {
		if _, err := f.Attach(fmt.Sprintf("ep%d", r), kinds[r%2], r); err != nil {
			t.Fatal(err)
		}
	}
	gold := netsim.Class{Name: "gold", Weight: 4, Price: 10}
	silver := netsim.Class{Name: "silver", Weight: 2, Price: 5}
	classes := []netsim.Class{netsim.BestEffort, gold, silver}
	var admitted []netsim.FlowID
	admit := func(i int, demand float64) {
		src := netsim.EndpointID((i*7 + 3) % nr)
		dst := netsim.EndpointID((i*5 + 1) % nr)
		fl, err := f.StartFlow(src, dst, demand, classes[i%3])
		if err == nil {
			admitted = append(admitted, fl.ID)
		}
	}
	for i := 0; i < 120; i++ {
		demand := 0.5 + float64(i%17)*0.35
		if i%23 == 0 {
			demand = 180 + float64(i) // force degradation at bottlenecks
		}
		admit(i, demand)
	}
	if _, err := f.StartMulticast(0, []netsim.EndpointID{3, 5, 7, 9}, 2.5); err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartMulticast(2, []netsim.EndpointID{4, 6}, 1.25); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterAnycast("cdn", 1, 4, 8); err != nil {
		t.Fatal(err)
	}
	for _, src := range []netsim.EndpointID{6, 11} {
		if _, _, err := f.StartAnycastFlow(src, "cdn", 3.5, gold); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Tick(3600); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(admitted); i += 7 {
		if err := f.StopFlow(admitted[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Correlated cut (with junk entries that must be skipped), then a
	// full BP outage on a BP that actually carries flows.
	sel := f.SelectedLinks()
	f.FailLinks([]int{-1, sel[len(sel)/3], sel[len(sel)/3], sel[2*len(sel)/3], 1 << 20})
	if err := f.Tick(1800); err != nil {
		t.Fatal(err)
	}
	var bp = -2
	for _, fl := range f.Flows() {
		if len(fl.Links) > 0 {
			bp = s.Network.Links[fl.Links[0]].BP
			break
		}
	}
	if bp == -2 {
		t.Fatal("no routed flow in workload")
	}
	f.FailBP(bp)
	if err := f.Tick(900); err != nil {
		t.Fatal(err)
	}
	f.RepairBP(bp)
	f.RepairLinks([]int{sel[len(sel)/3], sel[2*len(sel)/3]})
	// Second admission wave into freed capacity (recycled slots).
	for i := 120; i < 180; i++ {
		admit(i, 0.25+float64(i%11)*0.4)
	}
	if err := f.Tick(600); err != nil {
		t.Fatal(err)
	}
	return f
}

// hashFabricState hashes every observable of the fabric except raw
// FlowID values: flow snapshots in admission order, multicast trees,
// utilization, per-endpoint usage, and the failed/selected link sets.
func hashFabricState(f *netsim.Fabric) string {
	h := sha256.New()
	hex := func(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }
	for _, fl := range f.Flows() {
		fmt.Fprintf(h, "f:s%d:d%d:%s:%s:%s:%s:%s:w%s:", fl.Src, fl.Dst,
			hex(fl.Demand), hex(fl.Allocated), hex(fl.LatencyKm),
			hex(fl.TransferredGB), fl.Class.Name, hex(fl.Class.Weight))
		for _, l := range fl.Links {
			fmt.Fprintf(h, "%d,", l)
		}
		fmt.Fprint(h, ";")
	}
	for _, m := range f.Multicasts() {
		fmt.Fprintf(h, "m:s%d:%s:", m.Src, hex(m.Gbps))
		for _, l := range m.TreeLinks {
			fmt.Fprintf(h, "%d,", l)
		}
		for _, r := range m.Reached {
			fmt.Fprintf(h, "r%d,", r)
		}
		fmt.Fprint(h, ";")
	}
	util := f.Utilization()
	var links []int
	for l := range util {
		links = append(links, l)
	}
	sort.Ints(links)
	for _, l := range links {
		fmt.Fprintf(h, "u%d=%s;", l, hex(util[l]))
	}
	usage := f.UsageByEndpoint()
	var eps []int
	for ep := range usage {
		eps = append(eps, int(ep))
	}
	sort.Ints(eps)
	for _, ep := range eps {
		fmt.Fprintf(h, "e%d=%s;", ep, hex(usage[netsim.EndpointID(ep)]))
	}
	for _, l := range f.FailedLinks() {
		fmt.Fprintf(h, "x%d,", l)
	}
	for _, l := range f.SelectedLinks() {
		fmt.Fprintf(h, "l%d,", l)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestFabricMatchesSeedGoldens pins the full fabric lifecycle — every
// allocation, residual, latency and transferred-volume float — against
// the pre-refactor pointer-per-flow engine.
func TestFabricMatchesSeedGoldens(t *testing.T) {
	f := fabricWorkload(t)
	if n := len(f.Flows()); n != seedFabricFlows {
		t.Errorf("workload left %d flows, seed left %d", n, seedFabricFlows)
	}
	if n := len(f.FailedLinks()); n != seedFabricFailed {
		t.Errorf("workload left %d failed links, seed left %d", n, seedFabricFailed)
	}
	if got := hashFabricState(f); got != seedFabricStateHash {
		t.Errorf("fabric state hash %s, seed %s", got, seedFabricStateHash)
	}
}

// TestChaosReportMatchesSeedGolden pins the rendered chaos
// survivability report — escalation ladder outcomes, per-class
// delivered fractions, reroute tallies — byte-for-byte against the
// seed fabric. TestChaosReportDeterminism only proves the report is
// stable; this pins its actual bytes across the refactor.
func TestChaosReportMatchesSeedGolden(t *testing.T) {
	rep := chaosSurvivabilityReport(t, 1)
	if got := fmt.Sprintf("%x", sha256.Sum256([]byte(rep))); got != seedFabricChaosHash {
		t.Errorf("chaos report hash %s, seed %s", got, seedFabricChaosHash)
	}
}

// TestRouteMatchesSeedGolden pins a full greedy routing — every path,
// split and used-capacity float — on the complete link set and on a
// strict subset (the bitset include path).
func TestRouteMatchesSeedGolden(t *testing.T) {
	s, err := NewScenario(ScenarioOptions{Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	res := provision.Route(s.Network, nil, s.TM, provision.Options{}, nil)
	if len(res.Assignments) != seedRouteAsgCount || res.Unplaced != 0 {
		t.Errorf("asg=%d unplaced=%v, seed asg=%d unplaced=0",
			len(res.Assignments), res.Unplaced, seedRouteAsgCount)
	}
	if got := hashRouting(res); got != seedRouteHash {
		t.Errorf("route hash %s, seed %s", got, seedRouteHash)
	}

	include := linkset.New(len(s.Network.Links))
	for id := range s.Network.Links {
		if id%7 != 0 {
			include.Add(id)
		}
	}
	res2 := provision.Route(s.Network, include, s.TM, provision.Options{}, nil)
	if len(res2.Assignments) != seedRouteAsgCount || res2.Unplaced != 0 || res2.Ejected != 0 {
		t.Errorf("subset asg=%d unplaced=%v ejected=%v, seed asg=%d unplaced=0 ejected=0",
			len(res2.Assignments), res2.Unplaced, res2.Ejected, seedRouteAsgCount)
	}
	if got := hashRouting(res2); got != seedRouteSubsetHash {
		t.Errorf("subset route hash %s, seed %s", got, seedRouteSubsetHash)
	}
}
