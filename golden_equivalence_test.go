package poc

import (
	"crypto/sha256"
	"fmt"
	"hash"
	"sort"
	"strconv"
	"testing"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/provision"
)

// The goldens below were captured on the map[int]bool seed
// implementation (pre-bitset), hashing every float in full hex
// precision. The bitset/workspace engine must reproduce them
// bit-for-bit: the dense LinkSet and the reusable arenas are pure
// representation changes, so any drift here is a correctness bug,
// not an acceptable perf trade-off (DESIGN.md §10).
//
// Floats hash via strconv.FormatFloat(x, 'x', -1, 64), so the test
// is exact, not tolerance-based. The scenario generator is seeded;
// same platform => same paths, same arithmetic, same bytes.

type auctionGolden struct {
	selected  int
	checks    int
	totalCost string
	virtual   string
	hash      string
}

var seedAuctionGoldens = map[Constraint]auctionGolden{
	Constraint1: {33, 26, "0x1.3e260f546996p+20", "0x0p+00",
		"cabb77e5286c49f6418adeb166f636e3be593b900e010aef098b3fce73dcada6"},
	Constraint2: {32, 24, "0x1.52c36be72937ap+20", "0x0p+00",
		"c41467d8a0738c25a795dec81841b4c1317aeea274cd91d2bb162f7f97557b86"},
	Constraint3: {33, 24, "0x1.4e7f22666bf02p+20", "0x0p+00",
		"83dc56513b39397345ec8cc5c38839871dfbf354f95e10bce2c8a10693e89c2a"},
}

const (
	seedObsExportLen  = 3174
	seedObsExportHash = "40ed8921be983569a5fce966fd60a87da03b7e283584c158be5a96723852208d"

	seedRouteAsgCount   = 132
	seedRouteHash       = "9df7289315c236ff270d1472b887e2d1cc74abc54b33bb9d8615e7cdf7acdd6a"
	seedRouteSubsetHash = "3cc9ce8f58a919e8988f4ec87f2894a97f29800e358d015684f84a9b82cef048"
)

func hashAuction(res *AuctionResult) string {
	var ids []int
	for id := range res.Selected {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h := sha256.New()
	for _, id := range ids {
		fmt.Fprintf(h, "%d,", id)
	}
	var as []int
	for a := range res.Payments {
		as = append(as, a)
	}
	sort.Ints(as)
	for _, a := range as {
		fmt.Fprintf(h, "p%d=%s;a%d=%s;c%d=%s;", a,
			strconv.FormatFloat(res.Payments[a], 'x', -1, 64), a,
			strconv.FormatFloat(res.Alternative[a], 'x', -1, 64), a,
			strconv.FormatFloat(res.BPCost[a], 'x', -1, 64))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func hashAsg(h hash.Hash, asg map[[2]int][]provision.PathAssignment) {
	var pairs [][2]int
	for pr := range asg {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, pr := range pairs {
		fmt.Fprintf(h, "%d-%d:", pr[0], pr[1])
		for _, a := range asg[pr] {
			fmt.Fprintf(h, "%s:", strconv.FormatFloat(a.Gbps, 'x', -1, 64))
			for _, l := range a.Links {
				fmt.Fprintf(h, "%d,", l)
			}
			fmt.Fprint(h, ";")
		}
	}
}

func hashRouting(res *provision.Routing) string {
	h := sha256.New()
	hashAsg(h, res.Assignments)
	var ids []int
	for id := range res.Used {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(h, "u%d=%s;", id, strconv.FormatFloat(res.Used[id], 'x', -1, 64))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestAuctionMatchesSeedGoldens runs winner determination for every
// constraint at Workers 1 and 4 and requires the exact seed outcome:
// selection, check count, every payment/alternative/cost float, and
// the total. Workers=4 shares one workspace across counterfactual
// goroutines, so this also pins the per-worker arena handoff.
func TestAuctionMatchesSeedGoldens(t *testing.T) {
	for c := Constraint1; c <= Constraint3; c++ {
		want := seedAuctionGoldens[c]
		for _, workers := range []int{1, 4} {
			s, err := NewScenario(ScenarioOptions{Scale: 0.12})
			if err != nil {
				t.Fatal(err)
			}
			inst := s.Instance(c, 0)
			inst.Workers = workers
			res, err := inst.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Selected) != want.selected {
				t.Errorf("%v workers=%d: selected %d links, seed selected %d",
					c, workers, len(res.Selected), want.selected)
			}
			if res.Checks != want.checks {
				t.Errorf("%v workers=%d: %d checks, seed ran %d",
					c, workers, res.Checks, want.checks)
			}
			if got := strconv.FormatFloat(res.TotalCost, 'x', -1, 64); got != want.totalCost {
				t.Errorf("%v workers=%d: total cost %s, seed %s", c, workers, got, want.totalCost)
			}
			if got := strconv.FormatFloat(res.VirtualCost, 'x', -1, 64); got != want.virtual {
				t.Errorf("%v workers=%d: virtual cost %s, seed %s", c, workers, got, want.virtual)
			}
			if got := hashAuction(res); got != want.hash {
				t.Errorf("%v workers=%d: outcome hash %s, seed %s", c, workers, got, want.hash)
			}
		}
	}
}

// TestObsExportMatchesSeedGolden pins the full deterministic metrics
// export (auction + fabric counters serialized to canonical JSON)
// byte-for-byte against the seed.
func TestObsExportMatchesSeedGolden(t *testing.T) {
	out := metricsExport(t, 1)
	if len(out) != seedObsExportLen {
		t.Errorf("export length %d, seed %d", len(out), seedObsExportLen)
	}
	if got := fmt.Sprintf("%x", sha256.Sum256(out)); got != seedObsExportHash {
		t.Errorf("export hash %s, seed %s", got, seedObsExportHash)
	}
}

// TestRouteMatchesSeedGolden pins a full greedy routing — every path,
// split and used-capacity float — on the complete link set and on a
// strict subset (the bitset include path).
func TestRouteMatchesSeedGolden(t *testing.T) {
	s, err := NewScenario(ScenarioOptions{Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	res := provision.Route(s.Network, nil, s.TM, provision.Options{}, nil)
	if len(res.Assignments) != seedRouteAsgCount || res.Unplaced != 0 {
		t.Errorf("asg=%d unplaced=%v, seed asg=%d unplaced=0",
			len(res.Assignments), res.Unplaced, seedRouteAsgCount)
	}
	if got := hashRouting(res); got != seedRouteHash {
		t.Errorf("route hash %s, seed %s", got, seedRouteHash)
	}

	include := linkset.New(len(s.Network.Links))
	for id := range s.Network.Links {
		if id%7 != 0 {
			include.Add(id)
		}
	}
	res2 := provision.Route(s.Network, include, s.TM, provision.Options{}, nil)
	if len(res2.Assignments) != seedRouteAsgCount || res2.Unplaced != 0 || res2.Ejected != 0 {
		t.Errorf("subset asg=%d unplaced=%v ejected=%v, seed asg=%d unplaced=0 ejected=0",
			len(res2.Assignments), res2.Unplaced, res2.Ejected, seedRouteAsgCount)
	}
	if got := hashRouting(res2); got != seedRouteSubsetHash {
		t.Errorf("subset route hash %s, seed %s", got, seedRouteSubsetHash)
	}
}
