// Command pocd runs the POC control plane as a long-lived daemon: it
// activates a scenario deployment (auction → activation) and serves
// an HTTP/JSON API for admitting and releasing flows, querying
// routes, utilization and the QoS catalog, streaming the poc-obs/v1
// export, and triggering chaos events, recalls and reauctions.
//
// Every mutation is journaled (length-prefixed, checksummed, fsynced)
// before it is applied, so a daemon killed at any instant — including
// mid-write — restarts from the journal with state and observability
// export byte-identical to a clean sequential run of the surviving
// prefix. SIGTERM/SIGINT drain in-flight requests, seal the journal
// and exit 0; kill -9 leaves an unsealed journal the next start
// recovers automatically.
//
// Usage:
//
//	pocd -journal poc.journal [-listen :8080] [-scale 0.3] [-constraint 1]
//	pocd -journal poc.journal -replay [-export obs.json]
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	poc "github.com/public-option/poc"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/pocd/ratelimit"
	"github.com/public-option/poc/internal/pocd/server"
	"github.com/public-option/poc/internal/provision"
)

// deploySpec is the deployment spec journaled in the header record.
// It must marshal deterministically (struct fields, no maps): restart
// with the same flags produces the same bytes, and restart with
// different flags is refused instead of silently rebuilding a
// different network under the journaled ops.
type deploySpec struct {
	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	Constraint int     `json:"constraint"`
	Workers    int     `json:"workers"`
}

// build deploys the spec's scenario: generate, auction, activate.
// Deterministic in the spec — recovery depends on it.
func build(raw []byte) (*poc.Operator, *obs.Registry, error) {
	var spec deploySpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, nil, fmt.Errorf("bad deploy spec %q: %w", raw, err)
	}
	if spec.Constraint < 1 || spec.Constraint > 3 {
		return nil, nil, fmt.Errorf("constraint %d out of range", spec.Constraint)
	}
	reg := poc.NewObserver()
	s, err := poc.NewScenario(poc.ScenarioOptions{
		Scale: spec.Scale, Seed: spec.Seed, Workers: spec.Workers, Obs: reg,
	})
	if err != nil {
		return nil, nil, err
	}
	op, err := s.NewPOC(provision.Constraint(spec.Constraint))
	if err != nil {
		return nil, nil, err
	}
	for _, b := range s.Bids {
		if err := op.SubmitBid(b); err != nil {
			return nil, nil, err
		}
	}
	if err := op.AddVirtualLinks(s.Virtual); err != nil {
		return nil, nil, err
	}
	if _, err := op.RunAuction(); err != nil {
		return nil, nil, err
	}
	if err := op.Activate(); err != nil {
		return nil, nil, err
	}
	return op, reg, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocd: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is the single exit path: every error funnels here so deferred
// cleanup (journal seal, listener close) always executes.
func run() error {
	journalPath := flag.String("journal", "", "write-ahead journal file (required)")
	listen := flag.String("listen", ":8080", "HTTP listen address")
	scale := flag.Float64("scale", 0.35, "scenario scale in (0,1]")
	seed := flag.Int64("seed", 0, "scenario zoo seed (0 = default)")
	constraint := flag.Int("constraint", 1, "auction constraint (1, 2 or 3)")
	workers := flag.Int("workers", 0, "auction worker goroutines (0 = auto)")
	queue := flag.Int("queue", 64, "writer queue depth before load-shedding")
	timeout := flag.Duration("timeout", 2*time.Second, "per-request queue deadline")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	rate := flag.Float64("rate", 0, "per-tenant requests/second (0 = unlimited)")
	burst := flag.Float64("burst", 0, "per-tenant burst (0 = same as -rate)")
	nofsync := flag.Bool("nofsync", false, "skip fsync after each journal record (unsafe)")
	replay := flag.Bool("replay", false, "replay the journal, print a summary, and exit")
	export := flag.String("export", "", "with -replay: write the replayed obs export to this file")
	flag.Parse()

	if *journalPath == "" {
		return fmt.Errorf("-journal is required")
	}

	if *replay {
		return runReplay(*journalPath, *export)
	}

	spec, err := json.Marshal(deploySpec{
		Scale: *scale, Seed: *seed, Constraint: *constraint, Workers: *workers,
	})
	if err != nil {
		return err
	}
	log.Printf("deploying spec %s", spec)
	s, err := server.New(server.Config{
		Spec:           spec,
		Build:          build,
		JournalPath:    *journalPath,
		NoFsync:        *nofsync,
		Now:            time.Now,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		RateLimit:      ratelimit.Config{Rate: *rate, Burst: *burst},
	})
	if err != nil {
		return err
	}
	if rec := s.Recovered(); rec != nil {
		log.Printf("recovered journal %s: %d ops, seq %d, sealed=%v, torn tail %d bytes dropped",
			*journalPath, rec.Ops, rec.LastSeq, rec.Sealed, rec.TornBytes)
	} else {
		log.Printf("created journal %s", *journalPath)
	}

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *listen)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("received %s: draining (deadline %s)", sig, *drain)
	case err := <-errCh:
		s.Shutdown()
		return fmt.Errorf("http server: %w", err)
	}

	// Graceful shutdown: stop advertising readiness, drain in-flight
	// HTTP requests, then drain the writer queue and seal the journal.
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http drain: %v (continuing to seal journal)", err)
	}
	if err := s.Shutdown(); err != nil {
		return fmt.Errorf("seal journal: %w", err)
	}
	log.Printf("journal sealed at seq %d; bye", s.Seq())
	return nil
}

// runReplay rebuilds state from the journal and prints what a
// recovering daemon would see — CI compares the export hash from a
// live run against this ground truth.
func runReplay(path, exportPath string) error {
	res, exportBytes, err := server.ReplayFile(path, build)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(exportBytes)
	fmt.Printf("journal:  %s\n", path)
	fmt.Printf("ops:      %d (last seq %d)\n", res.Ops, res.LastSeq)
	fmt.Printf("sealed:   %v\n", res.Sealed)
	fmt.Printf("torn:     %d bytes dropped\n", res.TornBytes)
	fmt.Printf("obs_sha256: %x\n", sum)
	if exportPath != "" {
		if err := os.WriteFile(exportPath, exportBytes, 0o644); err != nil {
			return err
		}
		fmt.Printf("export:   wrote %s\n", exportPath)
	}
	return nil
}
