// Command pocfleet sweeps the scenario grid — topology × traffic
// model × constraint × chaos schedule × recovery policy — across a
// bounded worker pool and merges the per-cell ledgers into one
// canonical, byte-stable report.
//
// Usage:
//
//	pocfleet                          # 12-cell golden grid, FLEET.json
//	pocfleet -grid default -workers 8 # 24-cell standing sweep
//	pocfleet -corpus zoo/             # real GML corpus as the topology
//	pocfleet -state run1/             # journal cells; rerun to resume
//	pocfleet -cachefile fc.pocfcache  # persist the feasibility cache across runs
//	pocfleet -golden testdata/fleet_golden.json  # CI drift gate
//
// The merged report is byte-identical for any -workers value, across
// reruns, and across interrupt/resume — pocfleet -hash prints just the
// report digest so CI can compare cheaply.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/public-option/poc/internal/fleet"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		gridName = flag.String("grid", "golden", "grid to sweep: golden (12 cells) or default (24 cells)")
		corpus   = flag.String("corpus", "", "directory of .gml files; replaces the grid's topology axis with the real corpus")
		scale    = flag.Float64("scale", 0, "zoo topology scale in (0,1] (0 = 0.12, the golden scale)")
		epochs   = flag.Int("epochs", 0, "chaos horizon per cell (0 = 8)")
		failures = flag.Int("failures", 0, "failure scenarios per feasibility check (0 = 4)")
		workers  = flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS); any value yields identical bytes")
		state    = flag.String("state", "", "crash/resume journal directory (empty = no journal)")
		cold     = flag.Bool("cold", false, "disable cross-cell cache/workspace sharing (bytes must not change)")
		cacheFn  = flag.String("cachefile", "", "persist the shared feasibility cache here across runs (bytes must not change)")
		out      = flag.String("out", "FLEET.json", "report path ('-' = stdout)")
		hashOnly = flag.Bool("hash", false, "print only the report sha256")
		golden   = flag.String("golden", "", "compare against a pinned fixture; exit nonzero naming each drifted cell")
		update   = flag.Bool("update-golden", false, "with -golden: rewrite the fixture from this run instead of comparing")
	)
	flag.Parse()

	var grid fleet.GridSpec
	switch *gridName {
	case "golden":
		grid = fleet.GoldenGrid()
	case "default":
		grid = fleet.DefaultGrid()
	default:
		return fmt.Errorf("unknown -grid %q (want golden or default)", *gridName)
	}
	if *corpus != "" {
		grid.Topos = []fleet.TopoSpec{{Name: "corpus", Dir: *corpus}}
	}

	rep, err := fleet.Run(grid, fleet.Config{
		Scale:            *scale,
		Epochs:           *epochs,
		FailureScenarios: *failures,
		Workers:          *workers,
		StateDir:         *state,
		ColdCache:        *cold,
		CacheFile:        *cacheFn,
	})
	if err != nil {
		return err
	}

	if *golden != "" {
		if *update {
			g, err := rep.Golden(*gridName)
			if err != nil {
				return err
			}
			if err := g.WriteFile(*golden); err != nil {
				return err
			}
			fmt.Printf("updated %s (%d cells)\n", *golden, len(g.Cells))
			return nil
		}
		g, err := fleet.LoadGolden(*golden)
		if err != nil {
			return err
		}
		diffs, err := g.Diff(rep)
		if err != nil {
			return err
		}
		if len(diffs) > 0 {
			for _, d := range diffs {
				fmt.Fprintln(os.Stderr, "DRIFT:", d)
			}
			return fmt.Errorf("%d divergence(s) from %s", len(diffs), *golden)
		}
		fmt.Printf("ok: %d cells match %s\n", len(g.Cells), *golden)
		return nil
	}

	if *hashOnly {
		h, err := rep.Hash()
		if err != nil {
			return err
		}
		fmt.Println(h)
		return nil
	}

	blob, err := rep.Bytes()
	if err != nil {
		return err
	}
	if *out == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	h, err := rep.Hash()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells, sha256 %s)\n", *out, rep.Cells, h)
	return nil
}
