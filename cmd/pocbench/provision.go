package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	poc "github.com/public-option/poc"
	"github.com/public-option/poc/internal/analysis"
	"github.com/public-option/poc/internal/provision"
)

// provRow is one measured probe in BENCH_provision.json.
type provRow struct {
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	Checks       int     `json:"checks,omitempty"`
}

// provPoint is one point on the provisioning bench trajectory: the
// three probes the auction hot path is made of, at one revision.
type provPoint struct {
	Label               string  `json:"label"`
	Measured            bool    `json:"measured"` // false = embedded baseline
	Route               provRow `json:"route"`
	Check               provRow `json:"check"`
	WinnerDetermination provRow `json:"winner_determination"`
}

// seedBaseline is the pre-workspace implementation measured on this
// repo at Scale 0.35 (go test -bench -benchmem, single run): routing
// and feasibility checks rebuilt the graph per call (map[int]bool link
// sets), and winner determination is BenchmarkFigure2Constraint1 —
// one full Constraint-1 auction including every counterfactual.
var seedBaseline = provPoint{
	Label: "seed (map link sets, per-call graph build)",
	Route: provRow{NsPerOp: 3_609_822, AllocsPerOp: 23_877, BytesPerOp: 1_071_168},
	Check: provRow{NsPerOp: 3_343_158, AllocsPerOp: 23_877, BytesPerOp: 1_071_168},
	WinnerDetermination: provRow{
		NsPerOp: 4_874_489_530, AllocsPerOp: 20_059_765, BytesPerOp: 477_231_176,
	},
}

func row(r testing.BenchmarkResult) provRow {
	return provRow{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchProvision measures the provisioning hot path — steady-state
// Route and CheckCore through one shared Workspace, plus a full
// winner determination — and writes BENCH_provision.json with the
// embedded seed baseline as the trajectory's first point.
func benchProvision(scale float64, checks, workers int) error {
	s, err := poc.NewScenario(poc.ScenarioOptions{Scale: scale})
	if err != nil {
		return err
	}
	opts := s.RouteOptions()
	opts.Workspace = provision.NewWorkspace(s.Network, opts)

	cur := provPoint{Label: "dense bitsets + reusable workspaces", Measured: true}
	cur.Route = row(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := provision.Route(s.Network, nil, s.TM, opts, nil)
			if !r.Feasible() {
				b.Fatal("full set infeasible")
			}
		}
	}))
	fmt.Printf("route: %s/op, %d allocs/op\n",
		formatNs(cur.Route.NsPerOp), cur.Route.AllocsPerOp)
	cur.Check = row(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ok, _ := provision.CheckCore(s.Network, nil, s.TM, provision.Constraint1, opts)
			if !ok {
				b.Fatal("full set infeasible")
			}
		}
	}))
	fmt.Printf("check: %s/op, %d allocs/op\n",
		formatNs(cur.Check.NsPerOp), cur.Check.AllocsPerOp)

	var last *poc.AuctionResult
	cur.WinnerDetermination = row(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inst := s.Instance(poc.Constraint1, checks)
			inst.Workers = workers
			res, err := inst.Run()
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
	}))
	if last != nil && last.Checks > 0 {
		cur.WinnerDetermination.Checks = last.Checks
		cur.WinnerDetermination.CacheHitRate = float64(last.CacheHits) / float64(last.Checks)
	}
	fmt.Printf("winner determination: %s/op, %d allocs/op, %.1f%% cache hits\n",
		formatNs(cur.WinnerDetermination.NsPerOp), cur.WinnerDetermination.AllocsPerOp,
		100*cur.WinnerDetermination.CacheHitRate)

	out := struct {
		Poclint    string             `json:"poclint"`
		Scale      float64            `json:"scale"`
		MaxChecks  int                `json:"max_checks"`
		Workers    int                `json:"workers"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		Trajectory []provPoint        `json:"trajectory"`
		Speedup    map[string]float64 `json:"speedup"`
	}{
		Poclint: analysis.Version, Scale: scale, MaxChecks: checks, Workers: workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Trajectory: []provPoint{seedBaseline, cur},
		Speedup: map[string]float64{
			"route":                ratio(seedBaseline.Route.NsPerOp, cur.Route.NsPerOp),
			"check":                ratio(seedBaseline.Check.NsPerOp, cur.Check.NsPerOp),
			"winner_determination": ratio(seedBaseline.WinnerDetermination.NsPerOp, cur.WinnerDetermination.NsPerOp),
			"check_allocs":         ratio(seedBaseline.Check.AllocsPerOp, cur.Check.AllocsPerOp),
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile("BENCH_provision.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_provision.json")
	return nil
}

func ratio(base, cur int64) float64 {
	if cur == 0 {
		return 0
	}
	return float64(base) / float64(cur)
}

func formatNs(ns int64) string {
	switch {
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
