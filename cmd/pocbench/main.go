// Command pocbench regenerates the paper's evaluation artifacts — the
// rows/series behind every figure and the §4 analytical results —
// from the experiment index in DESIGN.md §3.
//
// Usage:
//
//	pocbench -exp fig2      # E1: Figure 2 PoB margins (3 constraints)
//	pocbench -exp nn        # E3: NN-regime welfare per demand family
//	pocbench -exp lemma1    # E4: p*(t) monotonicity sweep
//	pocbench -exp fees      # E5–E8: unilateral vs bargained fees
//	pocbench -exp incumbent # E9: incumbent-advantage sweep
//	pocbench -exp collusion # E10: withdraw-non-SL manipulation
//	pocbench -exp market    # E11: multi-epoch break-even economy
//	pocbench -exp peering   # E12: terms-of-service audit corpus
//	pocbench -exp entry     # E15: LMP entry viability (§2.3/§2.5)
//	pocbench -exp regimes   # E18: §4 economics through the §3.2 ledger
//	pocbench -exp baseline  # E19: status-quo BGP transit vs the POC
//	pocbench -exp all       # everything above
//
// -scale 1 runs the paper-scale instance for the auction experiments
// (tens of minutes); the default reduced instance preserves the
// qualitative shape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	poc "github.com/public-option/poc"
	"github.com/public-option/poc/internal/analysis"
	"github.com/public-option/poc/internal/econ"
	"github.com/public-option/poc/internal/interdomain"
	"github.com/public-option/poc/internal/peering"
	"github.com/public-option/poc/internal/regimesim"
	"github.com/public-option/poc/internal/stats"
)

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is the command's single exit path. Every failure returns here
// so the deferred diagnostics stop always executes — a log.Fatal in
// the middle of an experiment used to skip trace.Stop/StopCPUProfile
// and leave truncated, unreadable profile files behind.
func run() (err error) {
	exp := flag.String("exp", "all", "experiment id (fig2, nn, lemma1, fees, incumbent, collusion, market, peering, entry, regimes, baseline, all)")
	scale := flag.Float64("scale", 0.35, "auction instance scale in (0,1]; 1 = paper scale")
	checks := flag.Int("checks", 0, "winner-determination variant (see auction.Instance.MaxChecks)")
	workers := flag.Int("workers", 0, "counterfactual winner-determination workers (0 = GOMAXPROCS, 1 = serial)")
	jsonOut := flag.Bool("json", false, "time one auction per constraint and write ns/op, checks, cache hit rate and C(SL) to BENCH_auction.json")
	provisionOut := flag.Bool("provision", false, "benchmark the provisioning hot path (steady-state Route/CheckCore plus winner determination) and write BENCH_provision.json")
	fabricOut := flag.Bool("fabric", false, "benchmark the fabric data plane (bulk admission, churn, BP-outage reroute at 100k and 1M flows) and write BENCH_fabric.json")
	benchtime := flag.String("benchtime", "", "with -fabric: Nx runs a single smoke point at N×50k flows instead of the full 100k/1M trajectory")
	fabricFlows := flag.Int("fabricflows", 0, "with -fabric: measure exactly this population size instead of the default trajectory")
	fleetOut := flag.Bool("fleet", false, "benchmark the scenario-grid runner (golden grid, cold vs warm shared cache) and write BENCH_fleet.json")
	wdOut := flag.Bool("wd", false, "benchmark continental winner determination (synthetic 200/600/1200-link instances: baseline, incremental memo, regional decomposition, warm persisted cache) and write BENCH_wd.json; -benchtime=Nx runs a single N×200-link smoke point")
	metrics := flag.String("metrics", "", "with -json: also write the poc-obs/v1 metrics ledger to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	stop, err := startDiagnostics(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		return err
	}
	defer func() {
		// A stop failure (e.g. the heap profile failed to write) is
		// the run's failure unless something already went wrong.
		if cerr := stop(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	w := newStopwatch()

	if *jsonOut {
		if err := benchJSON(w, *scale, *checks, *workers, *metrics); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		return nil
	}
	if *provisionOut {
		if err := benchProvision(*scale, *checks, *workers); err != nil {
			return fmt.Errorf("provision: %w", err)
		}
		return nil
	}
	if *fabricOut {
		if err := benchFabric(*scale, *benchtime, *fabricFlows); err != nil {
			return fmt.Errorf("fabric: %w", err)
		}
		return nil
	}
	if *fleetOut {
		if err := benchFleet(*scale, *workers); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		return nil
	}
	if *wdOut {
		if err := benchWD(*benchtime, *workers); err != nil {
			return fmt.Errorf("wd: %w", err)
		}
		return nil
	}

	runExp := func(name string, fn func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		fmt.Printf("==== %s ====\n", name)
		w.lap()
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s in %v)\n\n", name, w.lap().Round(time.Millisecond))
		return nil
	}

	for _, e := range []struct {
		name string
		fn   func() error
	}{
		{"fig2", func() error { return fig2(*scale, *checks) }},
		{"nn", nnWelfare},
		{"lemma1", lemma1},
		{"fees", fees},
		{"incumbent", incumbent},
		{"collusion", func() error { return collusion(*scale, *checks) }},
		{"market", func() error { return marketEpochs(*scale) }},
		{"peering", peeringAudit},
		{"entry", entry},
		{"regimes", regimes},
		{"baseline", baseline},
	} {
		if err := runExp(e.name, e.fn); err != nil {
			return err
		}
	}
	return nil
}

// stopwatch derives every wall-time report in the command from one
// captured time.Now pair: a single start sample, with each lap and the
// total read as time.Since deltas against it. Wall time is reporting
// only — it never feeds experiment state or the metrics ledger
// (poclint's walltime analyzer holds that line in internal/).
type stopwatch struct {
	start time.Time
	last  time.Duration
}

func newStopwatch() *stopwatch { return &stopwatch{start: time.Now()} }

// total returns the wall time since the watch started.
func (w *stopwatch) total() time.Duration { return time.Since(w.start) }

// lap returns the wall time since the previous lap (or the start).
func (w *stopwatch) lap() time.Duration {
	now := w.total()
	d := now - w.last
	w.last = now
	return d
}

// benchRow is one constraint's timed auction run in BENCH_auction.json.
type benchRow struct {
	Constraint   int     `json:"constraint"`
	NsPerOp      int64   `json:"ns_per_op"`
	Checks       int     `json:"checks"`
	CacheHits    int     `json:"cache_hits"`
	CacheMisses  int     `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	TotalCost    float64 `json:"total_cost"`
	Links        int     `json:"links"`
	Surplus      float64 `json:"surplus"`
}

// benchJSON times one full auction (winner determination plus every
// counterfactual) per constraint and writes the machine-readable rows
// CI and the EXPERIMENTS.md tables consume. With a metrics path it
// additionally threads an observability registry through all three
// runs and writes the poc-obs/v1 ledger alongside the bench rows.
func benchJSON(w *stopwatch, scale float64, checks, workers int, metrics string) error {
	var reg *poc.Observer
	if metrics != "" {
		reg = poc.NewObserver()
		reg.SetMeta("poclint", analysis.Version)
	}
	s, err := poc.NewScenario(poc.ScenarioOptions{Scale: scale, Obs: reg})
	if err != nil {
		return err
	}
	out := struct {
		Poclint    string     `json:"poclint"`
		Scale      float64    `json:"scale"`
		MaxChecks  int        `json:"max_checks"`
		Workers    int        `json:"workers"`
		GOMAXPROCS int        `json:"gomaxprocs"`
		WallMs     int64      `json:"wall_ms"`
		Rows       []benchRow `json:"rows"`
	}{Poclint: analysis.Version, Scale: scale, MaxChecks: checks, Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for c := poc.Constraint1; c <= poc.Constraint3; c++ {
		inst := s.Instance(c, checks)
		inst.Workers = workers
		w.lap()
		res, err := inst.Run()
		if err != nil {
			return fmt.Errorf("constraint#%d: %w", int(c), err)
		}
		elapsed := w.lap()
		row := benchRow{
			Constraint:  int(c),
			NsPerOp:     elapsed.Nanoseconds(),
			Checks:      res.Checks,
			CacheHits:   res.CacheHits,
			CacheMisses: res.CacheMisses,
			TotalCost:   res.TotalCost,
			Links:       len(res.Selected),
			Surplus:     res.Surplus(),
		}
		if res.Checks > 0 {
			row.CacheHitRate = float64(res.CacheHits) / float64(res.Checks)
		}
		out.Rows = append(out.Rows, row)
		fmt.Printf("constraint#%d: %v, %d checks (%.1f%% cached), C(SL)=%.0f\n",
			int(c), elapsed.Round(time.Millisecond), res.Checks, 100*row.CacheHitRate, res.TotalCost)
	}
	out.WallMs = w.total().Milliseconds()
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile("BENCH_auction.json", data, 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_auction.json")
	if metrics != "" {
		if err := reg.WriteFile(metrics); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metrics)
	}
	return nil
}

// startDiagnostics enables the opt-in pprof/trace hooks and returns
// the stop function to defer in run. Both setup and teardown report
// errors instead of exiting, so a failure mid-run still flushes and
// closes whatever was already started.
func startDiagnostics(cpuprofile, memprofile, traceFile string) (func() error, error) {
	var stops []func() error
	stopAll := func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() error { trace.Stop(); return f.Close() })
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			stopAll()
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			stopAll()
			return nil, err
		}
		stops = append(stops, func() error { pprof.StopCPUProfile(); return f.Close() })
	}
	if memprofile != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memprofile)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}
	return stopAll, nil
}

func baseline() error {
	h, err := interdomain.SyntheticHierarchy(3, 8, 5)
	if err != nil {
		return err
	}
	fmt.Printf("status-quo Internet: %d tier-1s (peer mesh), %d regionals, %d stubs\n",
		len(h.Tier1s), len(h.Regionals), len(h.Stubs))
	fmt.Printf("%-8s %10s %10s %14s %10s\n", "stub", "reachable", "paid-dsts", "statusquo-bill", "poc-bill")
	for _, stub := range h.Stubs[:4] {
		cmp, err := h.CompareStubTransit(stub, 2.0, 0.5)
		if err != nil {
			return err
		}
		fmt.Printf("AS%-6d %10d %10d %14.1f %10.1f\n",
			cmp.Stub, cmp.Reachable, cmp.PaidDestinations, cmp.StatusQuoBill, cmp.POCBill)
	}
	fmt.Println("(under the status quo nearly every destination rides a paid provider route;")
	fmt.Println(" the POC replaces that with one break-even usage price — §2.5)")
	return nil
}

func regimes() error {
	services := []regimesim.Service{
		{Name: "video", Demand: econ.Uniform{High: 100}},
		{Name: "social", Demand: econ.Exponential{Mean: 30}},
		{Name: "gaming", Demand: econ.Logistic{Mid: 50, S: 10}},
	}
	lmps := []regimesim.Provider{
		{Name: "incumbent", Customers: 700, Access: 50, Churn: 0.10},
		{Name: "entrant", Customers: 300, Access: 40, Churn: 0.45},
	}
	results, err := regimesim.Compare(services, lmps, 1)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %14s %14s %14s %14s\n", "regime", "welfare", "CSP revenue", "LMP fees", "conservation")
	for _, regime := range []econ.Regime{econ.NN, econ.URBargain, econ.URUnilateral} {
		r := results[regime]
		e := r.Epochs[0]
		fmt.Printf("%-14s %14.0f %14.0f %14.0f %14.6f\n",
			regime, e.Welfare, e.CSPRevenue, e.LMPFees, r.Ledger.Conservation())
	}
	fmt.Println("(every payment ledger-validated; termination fees only exist in the UR rows)")
	return nil
}

func entry() error {
	m := poc.EntryModel{
		IncumbentRetail: 60,
		LastMileCost:    25,
		POCTransitPrice: 8,
		SqueezeSlack:    2,
	}
	fmt.Println("LMP entry (per subscriber per month), §2.3/§2.5:")
	fmt.Printf("  incumbent retail %.0f, entrant last-mile cost %.0f\n", m.IncumbentRetail, m.LastMileCost)
	fmt.Printf("  incumbent transit (margin squeeze): %.0f → entrant margin %.0f\n",
		m.IncumbentTransitPrice(), m.EntrantMargin(poc.IncumbentTransit))
	fmt.Printf("  POC transit (break-even):           %.0f → entrant margin %.0f\n",
		m.POCTransitPrice, m.EntrantMargin(poc.POCTransit))
	a, err := poc.AnalyzeEntry(m, 100, 0.10, 0.45)
	if err != nil {
		return err
	}
	fmt.Printf("  UR termination-fee gap favoring the incumbent: %.2f per subscriber\n", a.URFeeGap)
	fmt.Printf("  POC advantage for the entrant: %.0f per subscriber\n", a.POCAdvantage())
	return nil
}

func fig2(scale float64, checks int) error {
	s, err := poc.NewScenario(poc.ScenarioOptions{Scale: scale})
	if err != nil {
		return err
	}
	fmt.Printf("instance: %s, %.1f Tbps demand\n", s.Network.Summary(), s.TM.Total()/1000)
	res, err := s.Figure2(checks)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-7s %12s %12s %12s\n", "BP", "share", "constraint#1", "constraint#2", "constraint#3")
	for _, row := range res.Rows {
		fmt.Printf("%-8s %5.1f%% %12.3f %12.3f %12.3f\n",
			row.Name, 100*row.Share, row.PoB[0], row.PoB[1], row.PoB[2])
	}
	for i, r := range res.Results {
		fmt.Printf("constraint#%d: C(SL)=%.0f links=%d surplus=%.0f\n",
			i+1, r.TotalCost, len(r.Selected), r.Surplus())
		var pob, pay []float64
		for a := range r.Payments {
			if r.BPCost[a] > 0 {
				pob = append(pob, r.PoB(a))
			}
			pay = append(pay, r.Payments[a])
		}
		fmt.Printf("  all-BP PoB: %s\n", stats.Summarize(pob))
		fmt.Printf("  payment Gini: %.3f\n", stats.Gini(pay))
	}
	return nil
}

var families = []struct {
	name string
	d    poc.Demand
}{
	{"uniform(0,100)", econ.Uniform{High: 100}},
	{"exponential(30)", econ.Exponential{Mean: 30}},
	{"pareto(20,2.5)", econ.Pareto{Scale: 20, Alpha: 2.5}},
	{"logistic(50,10)", econ.Logistic{Mid: 50, S: 10}},
}

var benchLMPs = []poc.EconLMP{
	{Name: "incumbent", Customers: 700, Access: 50, Churn: 0.10},
	{Name: "entrant", Customers: 300, Access: 40, Churn: 0.45},
}

func nnWelfare() error {
	fmt.Printf("%-18s %8s %8s %10s %10s\n", "demand", "p*", "D(p*)", "welfare", "CSP rev")
	for _, f := range families {
		out, err := poc.EvaluateRegime(f.d, poc.RegimeNN, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %8.2f %8.3f %10.3f %10.3f\n",
			f.name, out.Price, out.Demand, out.Welfare, out.CSPRevenue)
	}
	return nil
}

func lemma1() error {
	fmt.Println("p*(t) per demand family (must be monotone increasing — Lemma 1):")
	fmt.Printf("%-18s", "t")
	for _, f := range families {
		fmt.Printf(" %16s", f.name)
	}
	fmt.Println()
	for i := 0; i <= 8; i++ {
		t := 5.0 * float64(i)
		fmt.Printf("%-18.1f", t)
		for _, f := range families {
			fmt.Printf(" %16.2f", econ.OptimalPrice(f.d, t))
		}
		fmt.Println()
	}
	return nil
}

func fees() error {
	fmt.Printf("%-18s %14s %14s %14s | welfare: %8s %8s %8s\n",
		"demand", "t*unilateral", "t*bargain", "t*NN", "NN", "bargain", "unilat")
	for _, f := range families {
		nn, err := poc.EvaluateRegime(f.d, poc.RegimeNN, nil)
		if err != nil {
			return err
		}
		bar, err := poc.EvaluateRegime(f.d, poc.RegimeURBargain, benchLMPs)
		if err != nil {
			return err
		}
		uni, err := poc.EvaluateRegime(f.d, poc.RegimeURUnilateral, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %14.2f %14.2f %14.2f | %17.3f %8.3f %8.3f\n",
			f.name, uni.Fee, bar.Fee, nn.Fee, nn.Welfare, bar.Welfare, uni.Welfare)
	}
	fmt.Println("(W_NN >= both UR regimes for every family; heavy-tailed Pareto")
	fmt.Println(" can order bargain above unilateral — see EXPERIMENTS.md E8.)")
	return nil
}

func incumbent() error {
	fmt.Println("NBS fee t=(p−rc)/2 at p=100, c=50, as churn varies (E9):")
	fmt.Printf("%-8s %10s\n", "churn r", "fee")
	for _, r := range []float64{0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8} {
		fmt.Printf("%-8.2f %10.2f\n", r, poc.NBSFee(100, r, 50))
	}
	fmt.Println("incumbent LMP (low churn) extracts more; incumbent CSP (high imposed churn) pays less.")
	return nil
}

func collusion(scale float64, checks int) error {
	for _, withVL := range []bool{true, false} {
		s, err := poc.NewScenario(poc.ScenarioOptions{Scale: scale, NoVirtualLinks: !withVL, DenseVirtual: withVL})
		if err != nil {
			return err
		}
		col, err := poc.RunCollusion(s.Instance(poc.Constraint1, checks))
		if err != nil {
			fmt.Printf("virtual links %v: %v (manipulation made the auction fail)\n", withVL, err)
			continue
		}
		fmt.Printf("virtual links %v: honest payments %.0f, after withdrawal %.0f, total gain %.0f (%.1f%%)\n",
			withVL, sum(col.Honest.Payments), sum(col.Withdrawn.Payments),
			col.TotalGain(), 100*col.TotalGain()/sum(col.Honest.Payments))
	}
	return nil
}

func marketEpochs(scale float64) error {
	s, err := poc.NewScenario(poc.ScenarioOptions{Scale: scale})
	if err != nil {
		return err
	}
	op, err := s.NewPOC(poc.Constraint1)
	if err != nil {
		return err
	}
	for _, b := range s.Bids {
		if err := op.SubmitBid(b); err != nil {
			return err
		}
	}
	if err := op.AddVirtualLinks(s.Virtual); err != nil {
		return err
	}
	if _, err := op.RunAuction(); err != nil {
		return err
	}
	if err := op.Activate(); err != nil {
		return err
	}
	n := len(s.Network.Routers)
	if _, err := op.AttachLMP("lmp-a", 0, poc.PeeringPolicy{}); err != nil {
		return err
	}
	if _, err := op.AttachLMP("lmp-b", n-1, poc.PeeringPolicy{}); err != nil {
		return err
	}
	if _, err := op.AttachCSP("csp", n/2); err != nil {
		return err
	}
	if _, err := op.StartFlow("csp", "lmp-a", 4, poc.BestEffort); err != nil {
		return err
	}
	if _, err := op.StartFlow("csp", "lmp-b", 4, poc.BestEffort); err != nil {
		return err
	}
	fmt.Printf("%-6s %12s %12s %10s\n", "epoch", "cost", "revenue", "POC net")
	for e := 0; e < 3; e++ {
		rep, err := op.BillEpoch(6 * 3600)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d %12.2f %12.2f %10.2f\n", e, rep.LeaseCost+rep.VirtualCost, rep.Revenue, rep.POCNet)
	}
	fmt.Printf("ledger conservation: %.6f\n", op.Ledger().Conservation())
	return nil
}

func peeringAudit() error {
	corpus := []peering.Policy{
		{LMP: "clean"},
		{LMP: "uniform-shaper", Rules: []peering.Rule{{Direction: peering.Incoming, Action: peering.Deprioritize}}},
		{LMP: "security-block", Rules: []peering.Rule{{Direction: peering.Incoming, Match: peering.Selector{Source: "botnet"}, Action: peering.Block, Why: peering.Security}}},
		{LMP: "video-throttler", Rules: []peering.Rule{{Direction: peering.Incoming, Match: peering.Selector{Application: "video"}, Action: peering.Deprioritize}}},
		{LMP: "self-preferencer", Rules: []peering.Rule{{Direction: peering.Incoming, Match: peering.Selector{Source: "self-streaming"}, Action: peering.Prioritize}}},
		{LMP: "closed-qos", QoS: []peering.QoSClass{{Name: "vip", PostedPrice: 10}}},
		{LMP: "open-qos", QoS: []peering.QoSClass{{Name: "gold", PostedPrice: 99, OpenToAll: true}}},
		{LMP: "exclusive-cdn", CDNOffers: []peering.CDNOffer{{Name: "racks", ThirdParty: true, Target: peering.Selector{Source: "megaflix"}, OpenToAll: true}}},
	}
	for _, p := range corpus {
		vs := peering.Audit(p)
		status := "COMPLIANT"
		if len(vs) > 0 {
			status = fmt.Sprintf("%d violation(s): %s", len(vs), vs[0].Condition)
		}
		fmt.Printf("  %-18s %s\n", p.LMP, status)
	}
	return nil
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
