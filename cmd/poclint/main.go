// Command poclint is the repo's invariant checker: a go vet tool
// whose analyzers mechanize the determinism and safety rules the
// evaluation pipeline depends on (byte-identical output across runs
// and Workers settings). Run it over the tree with
//
//	go build -o /tmp/poclint ./cmd/poclint
//	go vet -vettool=/tmp/poclint ./...
//
// which is exactly what the CI lint job does. The analyzers —
// mapordfloat, seededrand, walltime, obsguard, floatsum — are
// documented in DESIGN.md §9 and implemented in internal/analysis.
// Sanctioned exceptions carry a `//lint:allow <analyzer> <reason>`
// comment on or above the flagged line.
package main

import "github.com/public-option/poc/internal/analysis"

func main() {
	analysis.Main(analysis.All...)
}
