// Command poclint is the repo's invariant checker: a go vet tool
// whose analyzers mechanize the determinism and safety rules the
// evaluation pipeline depends on (byte-identical output across runs
// and Workers settings). Run it over the tree with
//
//	go build -o /tmp/poclint ./cmd/poclint
//	go vet -vettool=/tmp/poclint ./...
//
// which is exactly what the CI lint job does. Under go vet the
// driver speaks the unitchecker protocol: each package's function
// summaries (order-sensitive float folds, wall-clock/global-rand
// reach, arena acquire/release, journal appends, single-writer field
// owners) are serialized as poclint-facts/v1 files through vet's
// facts cache, so the interprocedural analyzers see summaries of
// every import.
//
// The v1 analyzers — mapordfloat, seededrand, walltime, obsguard,
// floatsum — are documented in DESIGN.md §9; the v2 interprocedural
// ones — arenapair, journalorder, writerescape, deepfold — in
// DESIGN.md §14. All are implemented in internal/analysis.
// Sanctioned exceptions carry a `//lint:allow <analyzer> <reason>`
// comment on or above the flagged line; resource constructors carry
// `//lint:acquire <kind>` / `//lint:release <kind>` directives and
// single-writer fields carry `//lint:owner <fn>[,<fn>...]`.
package main

import "github.com/public-option/poc/internal/analysis"

func main() {
	analysis.Main(analysis.All...)
}
