// Command pocsim runs an end-to-end POC deployment: auction, fabric
// activation, member attachment, a configurable number of billing
// epochs with diurnal traffic, optional link failures, and a final
// terms-of-service audit. It is the operational counterpart of the
// experiment-oriented pocbench.
//
// Usage:
//
//	pocsim [-scale 0.35] [-constraint 2] [-epochs 4] [-fail] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	poc "github.com/public-option/poc"
	"github.com/public-option/poc/internal/provision"
)

func main() {
	log.SetFlags(0)
	scale := flag.Float64("scale", 0.35, "instance scale in (0,1]")
	constraint := flag.Int("constraint", 1, "auction constraint (1, 2 or 3)")
	epochs := flag.Int("epochs", 4, "billing epochs to simulate (6h each)")
	fail := flag.Bool("fail", false, "fail the busiest link halfway through")
	verbose := flag.Bool("v", false, "print per-member billing detail")
	flag.Parse()

	if *constraint < 1 || *constraint > 3 {
		log.Fatalf("constraint %d out of range", *constraint)
	}

	s, err := poc.NewScenario(poc.ScenarioOptions{Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s\n", s.Network.Summary())

	op, err := s.NewPOC(provision.Constraint(*constraint))
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range s.Bids {
		if err := op.SubmitBid(b); err != nil {
			log.Fatal(err)
		}
	}
	if err := op.AddVirtualLinks(s.Virtual); err != nil {
		log.Fatal(err)
	}
	res, err := op.RunAuction()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction:  %d links leased under constraint #%d, C(SL)=%.0f, BP surplus %.0f\n",
		len(res.Selected), *constraint, res.TotalCost, res.Surplus())
	if err := op.Activate(); err != nil {
		log.Fatal(err)
	}

	// Attach an LMP at every fourth router and two CSPs at hubs.
	n := len(s.Network.Routers)
	var lmps []string
	for r := 0; r < n; r += 4 {
		name := fmt.Sprintf("lmp-%02d", r)
		if _, err := op.AttachLMP(name, r, poc.PeeringPolicy{}); err != nil {
			log.Fatal(err)
		}
		lmps = append(lmps, name)
	}
	csps := []string{"megaflix", "cloudco"}
	if _, err := op.AttachCSP("megaflix", n/2); err != nil {
		log.Fatal(err)
	}
	if _, err := op.AttachCSP("cloudco", n/3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("members:  %d LMPs, %d CSPs attached\n", len(lmps), len(csps))

	// CSP fan-out flows to every LMP.
	admitted, rejected := 0, 0
	for _, csp := range csps {
		for _, lmp := range lmps {
			if _, err := op.StartFlow(csp, lmp, 2, poc.BestEffort); err != nil {
				rejected++
				continue
			}
			admitted++
		}
	}
	fmt.Printf("flows:    %d admitted, %d rejected\n", admitted, rejected)

	for e := 0; e < *epochs; e++ {
		if *fail && e == *epochs/2 {
			busiest, bu := -1, 0.0
			for id, u := range op.Fabric().Utilization() {
				if u > bu {
					busiest, bu = id, u
				}
			}
			if busiest >= 0 {
				moved := op.Fabric().FailLink(busiest)
				fmt.Printf("epoch %d: FAILED link %d (%.0f%% utilized), %d flows rerouted\n",
					e, busiest, 100*bu, len(moved))
			}
		}
		rep, err := op.BillEpoch(6 * 3600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d:  cost %11.2f  revenue %11.2f  net %9.2f  price %.5f/GB\n",
			e, rep.LeaseCost+rep.VirtualCost, rep.Revenue, rep.POCNet, rep.PricePerGB)
		if *verbose {
			var names []string
			for name := range rep.MemberCharge {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("          %-10s %9.0f GB → %10.2f\n", name, rep.UsageGB[name], rep.MemberCharge[name])
			}
		}
	}

	if vs := op.EnforceTerms(); len(vs) > 0 {
		fmt.Printf("audit:    %d violations\n", len(vs))
	} else {
		fmt.Println("audit:    all attached LMPs compliant")
	}
	fmt.Printf("ledger:   conservation %.6f (must be 0)\n", op.Ledger().Conservation())
}
