// Command pocsim runs an end-to-end POC deployment: auction, fabric
// activation, member attachment, a configurable number of billing
// epochs with diurnal traffic, optional link failures, and a final
// terms-of-service audit. It is the operational counterpart of the
// experiment-oriented pocbench.
//
// With -chaos it instead runs the survivability experiment: the same
// members and flows are deployed twice, once on a Constraint-1 core
// and once on a Constraint-2 core, both are driven through the same
// fault schedule (a single-BP outage, plus seeded random faults when
// -seed is set) by the chaos engine, and the two survivability
// reports are printed side by side.
//
// With -metrics the run threads one deterministic observability
// registry (see internal/obs) through every layer and writes the
// poc-obs/v1 JSON ledger on exit; the file is byte-identical across
// runs and across -workers settings. -cpuprofile, -memprofile and
// -trace enable the standard runtime diagnostics.
//
// Usage:
//
//	pocsim [-scale 0.35] [-constraint 2] [-epochs 4] [-fail] [-v] [-metrics out.json]
//	pocsim -chaos [-scale 0.35] [-epochs 8] [-seed 7] [-policy reroute|recall|reauction]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"time"

	poc "github.com/public-option/poc"
	"github.com/public-option/poc/internal/analysis"
	"github.com/public-option/poc/internal/provision"
)

// stopwatch derives every wall-time report in the command from one
// captured time.Now pair: a single start sample, with the total read
// as a time.Since delta against it. Wall time is reporting only — it
// never feeds simulation state or the metrics ledger (poclint's
// walltime analyzer holds that line in internal/).
type stopwatch struct {
	start time.Time
}

func newStopwatch() *stopwatch { return &stopwatch{start: time.Now()} }

// total returns the wall time since the watch started.
func (w *stopwatch) total() time.Duration { return time.Since(w.start) }

func main() {
	log.SetFlags(0)
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// run is the command's single exit path. Every failure returns here
// so the deferred diagnostics stop always executes — a log.Fatal in
// the middle of a run used to skip trace.Stop/StopCPUProfile and
// leave truncated, unreadable profile files behind.
func run() (err error) {
	scale := flag.Float64("scale", 0.35, "instance scale in (0,1]")
	constraint := flag.Int("constraint", 1, "auction constraint (1, 2 or 3)")
	epochs := flag.Int("epochs", 4, "billing epochs to simulate (6h each)")
	fail := flag.Bool("fail", false, "fail the busiest link halfway through")
	verbose := flag.Bool("v", false, "print per-member billing detail")
	chaosRun := flag.Bool("chaos", false, "run the C1-vs-C2 survivability experiment")
	seed := flag.Int64("seed", 0, "chaos: add seeded random faults (0 = scripted outage only)")
	policy := flag.String("policy", "reroute", "chaos: recovery policy (reroute, recall, reauction)")
	workers := flag.Int("workers", 0, "auction worker goroutines (0 = GOMAXPROCS; any value gives identical output)")
	metrics := flag.String("metrics", "", "write the poc-obs/v1 metrics ledger to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	stop, err := startDiagnostics(*cpuprofile, *memprofile, *traceFile)
	if err != nil {
		return err
	}
	defer func() {
		// A stop failure (e.g. the heap profile failed to write) is
		// the run's failure unless something already went wrong.
		if cerr := stop(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	w := newStopwatch()

	var reg *poc.Observer
	if *metrics != "" {
		reg = poc.NewObserver()
		// Tag the ledger with the lint baseline the tree passed when
		// this binary was built — a constant, so the export stays
		// byte-identical across runs.
		reg.SetMeta("poclint", analysis.Version)
	}

	if *constraint < 1 || *constraint > 3 {
		return fmt.Errorf("constraint %d out of range", *constraint)
	}
	if *chaosRun {
		ep := *epochs
		if ep < 8 {
			ep = 8
		}
		if err := runChaos(*scale, *seed, *policy, ep, *workers, reg); err != nil {
			return err
		}
		if err := writeMetrics(reg, *metrics); err != nil {
			return err
		}
		fmt.Printf("wall:     %v\n", w.total().Round(time.Millisecond))
		return nil
	}

	s, err := poc.NewScenario(poc.ScenarioOptions{Scale: *scale, Workers: *workers, Obs: reg})
	if err != nil {
		return err
	}
	fmt.Printf("topology: %s\n", s.Network.Summary())

	op, err := s.NewPOC(provision.Constraint(*constraint))
	if err != nil {
		return err
	}
	for _, b := range s.Bids {
		if err := op.SubmitBid(b); err != nil {
			return err
		}
	}
	if err := op.AddVirtualLinks(s.Virtual); err != nil {
		return err
	}
	res, err := op.RunAuction()
	if err != nil {
		return err
	}
	fmt.Printf("auction:  %d links leased under constraint #%d, C(SL)=%.0f, BP surplus %.0f\n",
		len(res.Selected), *constraint, res.TotalCost, res.Surplus())
	if err := op.Activate(); err != nil {
		return err
	}

	// Attach an LMP at every fourth router and two CSPs at hubs.
	n := len(s.Network.Routers)
	var lmps []string
	for r := 0; r < n; r += 4 {
		name := fmt.Sprintf("lmp-%02d", r)
		if _, err := op.AttachLMP(name, r, poc.PeeringPolicy{}); err != nil {
			return err
		}
		lmps = append(lmps, name)
	}
	csps := []string{"megaflix", "cloudco"}
	if _, err := op.AttachCSP("megaflix", n/2); err != nil {
		return err
	}
	if _, err := op.AttachCSP("cloudco", n/3); err != nil {
		return err
	}
	fmt.Printf("members:  %d LMPs, %d CSPs attached\n", len(lmps), len(csps))

	// CSP fan-out flows to every LMP.
	admitted, rejected := 0, 0
	for _, csp := range csps {
		for _, lmp := range lmps {
			if _, err := op.StartFlow(csp, lmp, 2, poc.BestEffort); err != nil {
				rejected++
				continue
			}
			admitted++
		}
	}
	fmt.Printf("flows:    %d admitted, %d rejected\n", admitted, rejected)

	for e := 0; e < *epochs; e++ {
		if *fail && e == *epochs/2 {
			busiest, bu := -1, 0.0
			for id, u := range op.Fabric().Utilization() {
				if u > bu {
					busiest, bu = id, u
				}
			}
			if busiest >= 0 {
				moved := op.Fabric().FailLink(busiest)
				fmt.Printf("epoch %d: FAILED link %d (%.0f%% utilized), %d flows rerouted\n",
					e, busiest, 100*bu, len(moved))
			}
		}
		rep, err := op.BillEpoch(6 * 3600)
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d:  cost %11.2f  revenue %11.2f  net %9.2f  price %.5f/GB\n",
			e, rep.LeaseCost+rep.VirtualCost, rep.Revenue, rep.POCNet, rep.PricePerGB)
		if *verbose {
			var names []string
			for name := range rep.MemberCharge {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("          %-10s %9.0f GB → %10.2f\n", name, rep.UsageGB[name], rep.MemberCharge[name])
			}
		}
	}

	if vs := op.EnforceTerms(); len(vs) > 0 {
		fmt.Printf("audit:    %d violations\n", len(vs))
	} else {
		fmt.Println("audit:    all attached LMPs compliant")
	}
	fmt.Printf("ledger:   conservation %.6f (must be 0)\n", op.Ledger().Conservation())
	if err := writeMetrics(reg, *metrics); err != nil {
		return err
	}
	fmt.Printf("wall:     %v\n", w.total().Round(time.Millisecond))
	return nil
}

// writeMetrics exports the observability ledger when -metrics is set.
func writeMetrics(reg *poc.Observer, path string) error {
	if path == "" {
		return nil
	}
	if err := reg.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("metrics:  wrote %s\n", path)
	return nil
}

// startDiagnostics enables the opt-in pprof/trace hooks and returns
// the stop function to defer in run. Both setup and teardown report
// errors instead of exiting, so a failure mid-run still flushes and
// closes whatever was already started.
func startDiagnostics(cpuprofile, memprofile, traceFile string) (func() error, error) {
	var stops []func() error
	stopAll := func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() error { trace.Stop(); return f.Close() })
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			stopAll()
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			stopAll()
			return nil, err
		}
		stops = append(stops, func() error { pprof.StopCPUProfile(); return f.Close() })
	}
	if memprofile != "" {
		stops = append(stops, func() error {
			f, err := os.Create(memprofile)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}
	return stopAll, nil
}

// goldClass is the premium QoS class used by the chaos experiment.
var goldClass = poc.QoSClass{Name: "gold", Weight: 4, Price: 10}

// chaosDeploy runs the lease lifecycle under one constraint and
// admits a gold and a best-effort flow for every traffic-matrix pair:
// gold at 25% of the provisioned demand, best-effort at 45%, so the
// core runs near its provisioned load and a failure has to hurt
// someone — the question the experiment answers is whom.
func chaosDeploy(s *poc.Scenario, c poc.Constraint) (*poc.Operator, error) {
	op, err := s.NewPOC(c)
	if err != nil {
		return nil, err
	}
	for _, b := range s.Bids {
		if err := op.SubmitBid(b); err != nil {
			return nil, err
		}
	}
	if err := op.AddVirtualLinks(s.Virtual); err != nil {
		return nil, err
	}
	if _, err := op.RunAuction(); err != nil {
		return nil, err
	}
	if err := op.Activate(); err != nil {
		return nil, err
	}
	n := len(s.Network.Routers)
	for r := 0; r < n; r++ {
		if _, err := op.AttachLMP(fmt.Sprintf("m-%02d", r), r, poc.PeeringPolicy{}); err != nil {
			return nil, err
		}
	}
	var flowErr error
	s.TM.Demands(func(src, dst int, gbps float64) {
		if flowErr != nil || gbps <= 0 {
			return
		}
		a, b := fmt.Sprintf("m-%02d", src), fmt.Sprintf("m-%02d", dst)
		if _, err := op.StartFlow(a, b, 0.25*gbps, goldClass); err != nil {
			flowErr = err
			return
		}
		if _, err := op.StartFlow(a, b, 0.45*gbps, poc.BestEffort); err != nil {
			flowErr = err
		}
	})
	return op, flowErr
}

// goldCrossingBP returns, per BP, the gold Gbps crossing its selected
// links on the given operator's fabric — the outage target ranking.
func goldCrossingBP(op *poc.Operator) []float64 {
	cross := make([]float64, len(op.Network().BPs))
	for _, fl := range op.Fabric().Flows() {
		if fl.Class.Name != goldClass.Name {
			continue
		}
		for _, l := range fl.Links {
			if bp := op.Network().Links[l].BP; bp >= 0 {
				cross[bp] += fl.Allocated
			}
		}
	}
	return cross
}

// runChaos is the -chaos entry point: the paper's Constraint-2
// promise ("previously admitted traffic will survive the failure",
// §2.1) tested on a running fabric against the Constraint-1 core.
func runChaos(scale float64, seed int64, policyName string, epochs, workers int, reg *poc.Observer) error {
	pol, err := poc.ParseRecoveryPolicy(policyName)
	if err != nil {
		return err
	}
	// Both cores share one registry, so the exported ledger covers the
	// whole experiment (C1 and C2 counters accumulate).
	s, err := poc.NewScenario(poc.ScenarioOptions{Scale: scale, Workers: workers, Obs: reg})
	if err != nil {
		return err
	}
	fmt.Printf("topology: %s\n", s.Network.Summary())

	c1, err := chaosDeploy(s, poc.Constraint1)
	if err != nil {
		return err
	}
	c2, err := chaosDeploy(s, poc.Constraint2)
	if err != nil {
		return err
	}

	// Target the BP carrying the most gold traffic on the Constraint-1
	// fabric: the outage Constraint 1 never planned for and Constraint
	// 2 must survive.
	cross := goldCrossingBP(c1)
	target, most := -1, 0.0
	for bp, g := range cross {
		if g > most {
			target, most = bp, g
		}
	}
	if target < 0 {
		return fmt.Errorf("no BP carries gold traffic; nothing to fail")
	}
	repair := epochs - 3
	fmt.Printf("chaos:    BP %d dark at epoch 2 (%.0f Gbps gold crossing), repaired at %d, policy=%s, seed=%d\n",
		target, most, repair, pol, seed)

	// Each core gets the same scripted outage plus random faults drawn
	// (from the same seed) over its *own* leased links — a schedule
	// generated over one core's selection would name links the other
	// never leased.
	run := func(label string, op *poc.Operator) (*poc.SurvivabilityReport, error) {
		sched := poc.SingleBPOutage(target, 2, repair)
		if seed != 0 {
			sched.Merge(poc.RandomChaos(seed, epochs, op.Fabric().SelectedLinks(), 0.05, 2))
		}
		eng, err := poc.NewChaosEngine(op, sched, poc.DefaultRecoveryConfig(pol))
		if err != nil {
			return nil, err
		}
		rep, err := eng.Run(epochs)
		if err != nil {
			return nil, err
		}
		fmt.Printf("--- %s ---\n%s", label, rep)
		return rep, nil
	}
	r1, err := run("constraint #1 survivability", c1)
	if err != nil {
		return err
	}
	r2, err := run("constraint #2 survivability", c2)
	if err != nil {
		return err
	}

	g1, g2 := r1.Class(goldClass.Name), r2.Class(goldClass.Name)
	if g1 == nil || g2 == nil {
		return fmt.Errorf("missing gold timeline")
	}
	fmt.Printf("verdict:  gold delivered min: C1=%.6f C2=%.6f; restore: C1=%d C2=%d epochs\n",
		g1.Delivered.Min(), g2.Delivered.Min(),
		g1.Delivered.RestoreTime(0.999), g2.Delivered.RestoreTime(0.999))
	switch {
	case g2.Delivered.Min() >= 1 && g1.Delivered.Min() < 1:
		fmt.Println("verdict:  constraint #2 sustained 100% gold through the outage; constraint #1 did not")
	case g2.Delivered.Min() >= 1:
		fmt.Println("verdict:  both cores sustained 100% gold (outage not binding at this scale)")
	default:
		fmt.Println("verdict:  constraint #2 core degraded gold traffic — survivability promise violated")
	}
	return nil
}
