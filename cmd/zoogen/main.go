// Command zoogen emits the synthetic topology zoo as TopologyZoo-
// compatible GML files, one per network, plus a summary of the POC
// pipeline (BPs, router placement, logical links). It exists so the
// substitution for the real TopologyZoo dataset (DESIGN.md §2) can be
// inspected — and swapped for real .gml files — offline.
//
// With -synth it instead emits a continental-scale synthetic instance
// (topo.GenerateSynth): regional rings sized to an exact link count,
// for benchmarking winner determination far beyond the corpus scale.
//
// Usage:
//
//	zoogen [-out DIR] [-seed N] [-networks N] [-summary]
//	zoogen -synth [-seed N] [-links N] [-regions N] [-border N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/public-option/poc/internal/topo"
)

func main() {
	log.SetFlags(0)
	out := flag.String("out", "", "directory to write one .gml per network (empty = skip)")
	seed := flag.Int64("seed", 0, "zoo seed (0 = default)")
	networks := flag.Int("networks", 0, "number of networks before filtering (0 = default)")
	summary := flag.Bool("summary", true, "print the POC pipeline summary")
	synth := flag.Bool("synth", false, "generate a continental synthetic instance instead of the zoo")
	links := flag.Int("links", 0, "synth: exact logical link count (0 = default)")
	regions := flag.Int("regions", 0, "synth: regional ring count (0 = default)")
	border := flag.Int("border", 0, "synth: inter-region link count (0 = border-separable)")
	flag.Parse()

	if *synth {
		cfg := topo.DefaultSynthConfig()
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *links > 0 {
			cfg.Links = *links
			cfg.Routers = *links / 4
		}
		if *regions > 0 {
			cfg.Regions = *regions
		}
		cfg.Border = *border
		s := topo.GenerateSynth(cfg)
		fmt.Printf("synth: %s\n", s.P.Summary())
		fmt.Printf("synth: %d regions, %d border links, %d demand pairs, fingerprint %016x\n",
			cfg.Regions, len(s.Border), len(s.Demand), s.Fingerprint())
		return
	}

	w := topo.DefaultWorld()
	cfg := topo.DefaultZooConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *networks > 0 {
		cfg.NumNetworks = *networks
	}
	nets := topo.GenerateZoo(w, cfg)
	fmt.Printf("generated %d networks (seed %d, %d requested, filter <%d sites)\n",
		len(nets), cfg.Seed, cfg.NumNetworks, cfg.FilterBelow)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, n := range nets {
			path := filepath.Join(*out, n.Name+".gml")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := topo.WriteGML(w, n, f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote %d GML files to %s\n", len(nets), *out)
	}

	if *summary {
		p := topo.BuildPOCNetwork(w, nets, 20, 4, 0)
		fmt.Printf("POC pipeline: %s\n", p.Summary())
		shares := p.BPShare()
		fmt.Println("BP link shares (paper: roughly 2%..12%):")
		for i, bp := range p.BPs {
			fmt.Printf("  %-6s %2d networks %3d sites  %5.1f%%\n",
				bp.Name, len(bp.Members), len(bp.Sites), 100*shares[i])
		}
	}
}
