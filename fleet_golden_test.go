package poc

import (
	"flag"
	"testing"

	"github.com/public-option/poc/internal/fleet"
)

var updateFleetGolden = flag.Bool("update-fleet-golden", false,
	"rewrite testdata/fleet_golden.json from this run instead of comparing")

const fleetGoldenPath = "testdata/fleet_golden.json"

// TestFleetGoldenGrid pins the 12-cell golden sweep bit-for-bit:
// every cell's digest (which covers its full result row AND its obs
// ledger) plus the merged report hash. Unlike a bare hash compare,
// a failure here names the exact cell that drifted — "constraint C2
// under the BP outage moved" is actionable; "64 hex chars changed"
// is not.
//
// Regenerate deliberately after an intentional engine change:
//
//	go test -run TestFleetGoldenGrid -update-fleet-golden .
func TestFleetGoldenGrid(t *testing.T) {
	rep, err := fleet.Run(fleet.GoldenGrid(), fleet.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if *updateFleetGolden {
		g, err := rep.Golden("golden")
		if err != nil {
			t.Fatal(err)
		}
		if err := g.WriteFile(fleetGoldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d cells)", fleetGoldenPath, len(g.Cells))
		return
	}
	g, err := fleet.LoadGolden(fleetGoldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(fleet.GoldenGrid().Expand()); len(g.Cells) != want {
		t.Fatalf("fixture pins %d cells, grid expands to %d", len(g.Cells), want)
	}
	diffs, err := g.Diff(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diffs {
		t.Errorf("drift: %s", d)
	}
	if len(diffs) > 0 {
		t.Fatalf("%d divergence(s) from %s — if intentional, rerun with -update-fleet-golden", len(diffs), fleetGoldenPath)
	}
}
