package poc

import (
	"bytes"
	"math"
	"testing"

	"github.com/public-option/poc/internal/federation"
	"github.com/public-option/poc/internal/fleet"
	"github.com/public-option/poc/internal/interdomain"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/topo"
)

// TestAuctionDeterminismAcrossWorkers is the regression gate for the
// parallel winner determination: the auction is a published algorithm
// ("an open algorithm so that it cannot be accused of favoritism"), so
// parallelism may only reorder work, never change answers. A serial
// (Workers: 1) and a parallel (Workers: 4) run of the same instance
// must agree bit for bit on the selection, its cost, every payment,
// every counterfactual cost, and even the check count.
func TestAuctionDeterminismAcrossWorkers(t *testing.T) {
	s, err := NewScenario(ScenarioOptions{Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	for c := Constraint1; c <= Constraint3; c++ {
		serialInst := s.Instance(c, 0)
		serialInst.Workers = 1
		serial, err := serialInst.Run()
		if err != nil {
			t.Fatalf("%v serial: %v", c, err)
		}

		parInst := s.Instance(c, 0)
		parInst.Workers = 4
		par, err := parInst.Run()
		if err != nil {
			t.Fatalf("%v parallel: %v", c, err)
		}

		if len(serial.Selected) != len(par.Selected) {
			t.Fatalf("%v: |SL| serial=%d parallel=%d", c, len(serial.Selected), len(par.Selected))
		}
		for id := range serial.Selected {
			if !par.Selected[id] {
				t.Fatalf("%v: link %d selected serially but not in parallel", c, id)
			}
		}
		// Bit-for-bit: no epsilon. The parallel run must execute the
		// exact same arithmetic.
		if serial.TotalCost != par.TotalCost {
			t.Fatalf("%v: C(SL) serial=%v parallel=%v", c, serial.TotalCost, par.TotalCost)
		}
		for a := range serial.Payments {
			if serial.Payments[a] != par.Payments[a] {
				t.Fatalf("%v: P_%d serial=%v parallel=%v", c, a, serial.Payments[a], par.Payments[a])
			}
			if serial.Alternative[a] != par.Alternative[a] {
				t.Fatalf("%v: C(SL_-%d) serial=%v parallel=%v", c, a, serial.Alternative[a], par.Alternative[a])
			}
			if serial.BPCost[a] != par.BPCost[a] {
				t.Fatalf("%v: C_%d serial=%v parallel=%v", c, a, serial.BPCost[a], par.BPCost[a])
			}
		}
		if serial.Checks != par.Checks {
			t.Fatalf("%v: checks serial=%d parallel=%d", c, serial.Checks, par.Checks)
		}
		if serial.VirtualCost != par.VirtualCost {
			t.Fatalf("%v: virtual cost serial=%v parallel=%v", c, serial.VirtualCost, par.VirtualCost)
		}
	}
}

// chaosSurvivabilityReport runs a fixed chaos experiment — seeded
// stochastic cuts plus a scripted BP outage over a scenario-built POC
// — and returns the rendered survivability report.
func chaosSurvivabilityReport(t *testing.T, workers int) string {
	t.Helper()
	s, err := NewScenario(ScenarioOptions{Scale: 0.12, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.NewPOC(Constraint1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range s.Bids {
		if err := p.SubmitBid(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddVirtualLinks(s.Virtual); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunAuction(); err != nil {
		t.Fatal(err)
	}
	if err := p.Activate(); err != nil {
		t.Fatal(err)
	}
	gold := QoSClass{Name: "gold", Weight: 4, Price: 10}
	for i := 0; i < 4; i++ {
		if _, err := p.AttachLMP(string(rune('a'+i)), i, PeeringPolicy{}); err != nil {
			t.Fatal(err)
		}
	}
	var firstFlow *Flow
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			class := BestEffort
			if (i+j)%2 == 1 {
				class = gold
			}
			fl, err := p.StartFlow(string(rune('a'+i)), string(rune('a'+j)), 2+float64(i+j), class)
			if err != nil {
				t.Fatal(err)
			}
			if firstFlow == nil && len(fl.Links) > 0 {
				firstFlow = fl
			}
		}
	}
	if firstFlow == nil {
		t.Fatal("no flow took any links")
	}
	sched := RandomChaos(11, 8, p.Fabric().SelectedLinks(), 0.15, 2)
	sched.Merge(SingleBPOutage(p.Network().Links[firstFlow.Links[0]].BP, 1, 5))
	eng, err := NewChaosEngine(p, sched, DefaultRecoveryConfig(RecoverRecall))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	return rep.String()
}

// TestChaosReportDeterminism is the survivability analogue of the
// auction gate: the same chaos seed and schedule must render a
// byte-identical report across runs and across Workers settings —
// fault injection and recovery may never depend on scheduling luck.
func TestChaosReportDeterminism(t *testing.T) {
	base := chaosSurvivabilityReport(t, 1)
	if base == "" {
		t.Fatal("empty survivability report")
	}
	if again := chaosSurvivabilityReport(t, 1); again != base {
		t.Fatalf("same seed, different reports:\n%s\n---\n%s", base, again)
	}
	if par := chaosSurvivabilityReport(t, 4); par != base {
		t.Fatalf("report changed with Workers=4:\n%s\n---\n%s", base, par)
	}
}

// metricsExport runs a full observed lifecycle — auction, activation,
// flows, a billing epoch, and the chaos experiment from
// chaosSurvivabilityReport — with one registry threaded through every
// layer, and returns the exported JSON ledger.
func metricsExport(t *testing.T, workers int) []byte {
	t.Helper()
	reg := NewObserver()
	s, err := NewScenario(ScenarioOptions{Scale: 0.12, Workers: workers, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.NewPOC(Constraint1)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range s.Bids {
		if err := p.SubmitBid(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddVirtualLinks(s.Virtual); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunAuction(); err != nil {
		t.Fatal(err)
	}
	if err := p.Activate(); err != nil {
		t.Fatal(err)
	}
	gold := QoSClass{Name: "gold", Weight: 4, Price: 10}
	for i := 0; i < 4; i++ {
		if _, err := p.AttachLMP(string(rune('a'+i)), i, PeeringPolicy{}); err != nil {
			t.Fatal(err)
		}
	}
	var links []int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			class := BestEffort
			if (i+j)%2 == 1 {
				class = gold
			}
			fl, err := p.StartFlow(string(rune('a'+i)), string(rune('a'+j)), 2+float64(i+j), class)
			if err != nil {
				t.Fatal(err)
			}
			if links == nil && len(fl.Links) > 0 {
				links = fl.Links
			}
		}
	}
	if _, err := p.BillEpoch(6 * 3600); err != nil {
		t.Fatal(err)
	}
	sched := RandomChaos(11, 8, p.Fabric().SelectedLinks(), 0.15, 2)
	sched.Merge(SingleBPOutage(p.Network().Links[links[0]].BP, 1, 5))
	eng, err := NewChaosEngine(p, sched, DefaultRecoveryConfig(RecoverRecall))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(8); err != nil {
		t.Fatal(err)
	}
	out, err := reg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsExportDeterminism is the observability analogue of the
// auction and chaos gates: the exported poc-obs/v1 ledger — counters,
// histograms with float min/max, timelines, spans on the monotonic
// step clock — must be byte-identical across runs and across Workers
// settings. This is the strictest determinism check in the repo: any
// wall-clock leakage, map-ordered float accumulation, or
// scheduling-dependent counter anywhere in auction, provision, netsim,
// core, or chaos shows up here as a byte diff.
func TestMetricsExportDeterminism(t *testing.T) {
	base := metricsExport(t, 1)
	if len(base) == 0 || !bytes.Contains(base, []byte(`"schema":"poc-obs/v1"`)) {
		t.Fatalf("implausible export:\n%s", base)
	}
	// The ledger must actually cover all four instrumented layers —
	// an empty registry is trivially deterministic.
	for _, key := range []string{
		`"auction.runs"`, `"provision.check.computed.c1"`,
		`"netsim.flows.admitted"`, `"core.epochs"`, `"chaos.escalations"`,
	} {
		if !bytes.Contains(base, []byte(key)) {
			t.Fatalf("export missing %s:\n%s", key, base)
		}
	}
	if again := metricsExport(t, 1); !bytes.Equal(base, again) {
		t.Fatalf("same inputs, different metrics exports:\n%s\n---\n%s", base, again)
	}
	if par := metricsExport(t, 4); !bytes.Equal(base, par) {
		t.Fatalf("metrics export changed with Workers=4:\n%s\n---\n%s", base, par)
	}
}

// TestSortedIterationDeterminism pins the poclint mapordfloat fixes
// that changed bytes: interdomain.TransitBill and
// federation.SegmentUsage now accumulate in sorted-ID order instead of
// map order. Each result must be bit-identical to a reference sum
// folded explicitly in ascending ID order AND bit-identical across
// repeated calls — with ULP-sensitive addends, either reverting to map
// iteration almost surely breaks one of the two. (The third fixed
// accumulation, core.linkPaymentShare, is covered byte-wise by
// TestChaosReportDeterminism through the RecoverRecall ladder.)
func TestSortedIterationDeterminism(t *testing.T) {
	// interdomain: a star AS graph — src and 24 stubs all buy transit
	// from AS 100, so every destination rides a billable provider route.
	it := interdomain.NewTopology()
	src := interdomain.ASN(1)
	if err := it.AddCustomerProvider(src, 100); err != nil {
		t.Fatal(err)
	}
	volume := map[interdomain.ASN]float64{}
	for i := 0; i < 24; i++ {
		dst := interdomain.ASN(200 + i)
		if err := it.AddCustomerProvider(dst, 100); err != nil {
			t.Fatal(err)
		}
		// Non-dyadic addends whose float sum depends on fold order.
		volume[dst] = 0.1*float64(i+1) + 0.013/float64(i+3)
	}
	const price = 0.37
	ref := 0.0
	for i := 0; i < 24; i++ {
		ref += volume[interdomain.ASN(200+i)] * price
	}
	bill, err := it.TransitBill(src, volume, price)
	if err != nil {
		t.Fatal(err)
	}
	if bill != ref {
		t.Fatalf("TransitBill = %v, want ascending-ASN fold %v (iteration order regressed)", bill, ref)
	}
	for i := 0; i < 20; i++ {
		again, err := it.TransitBill(src, volume, price)
		if err != nil {
			t.Fatal(err)
		}
		if again != bill {
			t.Fatalf("TransitBill drifted between calls: %v then %v", bill, again)
		}
	}

	// federation: two line POCs, several ULP-sensitive cross flows.
	line := func() *netsim.Fabric {
		p := &topo.POCNetwork{
			World:   &topo.World{Cities: make([]topo.City, 3)},
			BPs:     make([]topo.BP, 2),
			Routers: []int{0, 1, 2},
		}
		for i := 0; i < 2; i++ {
			p.Links = append(p.Links, topo.LogicalLink{
				ID: i, BP: i, A: i, B: i + 1, Capacity: 10, DistanceKm: 100,
			})
		}
		return netsim.New(p, nil)
	}
	fa, fb := line(), line()
	srcEp, err := fa.Attach("lmp-west", netsim.LMPEndpoint, 0)
	if err != nil {
		t.Fatal(err)
	}
	dstEp, err := fb.Attach("lmp-east", netsim.LMPEndpoint, 2)
	if err != nil {
		t.Fatal(err)
	}
	fed := federation.New()
	a, err := fed.AddMember("poc-a", fa, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fed.AddMember("poc-b", fb, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Connect(a, 2, b, 0, 8); err != nil {
		t.Fatal(err)
	}
	for _, gbps := range []float64{0.7, 1.1, 1.3, 1.7, 2.3} {
		if _, err := fed.StartCrossFlow(a, srcEp, b, dstEp, gbps); err != nil {
			t.Fatal(err)
		}
	}
	fa.Tick(137)
	fb.Tick(137)
	// Reference: fold transferred GB explicitly in flow-ID order (what
	// CrossFlows returns), per member.
	refUsage := map[federation.MemberID]float64{}
	ma, _ := fed.Member(a)
	mb, _ := fed.Member(b)
	for _, cf := range fed.CrossFlows() {
		if fl, err := ma.Fabric.Flow(cf.SrcSegment); err == nil {
			refUsage[cf.SrcMember] += fl.TransferredGB
		}
		if fl, err := mb.Fabric.Flow(cf.DstSegment); err == nil {
			refUsage[cf.DstMember] += fl.TransferredGB
		}
	}
	base := fed.SegmentUsage()
	for m, want := range refUsage {
		if base[m] != want {
			t.Fatalf("SegmentUsage[%d] = %v, want flow-ID-order fold %v (iteration order regressed)", m, base[m], want)
		}
	}
	for i := 0; i < 20; i++ {
		again := fed.SegmentUsage()
		for m, v := range base {
			if again[m] != v {
				t.Fatalf("SegmentUsage[%d] drifted between calls: %v then %v", m, v, again[m])
			}
		}
	}
}

// TestAuctionCacheAblation verifies the feasibility memo never changes
// outcomes: a run with the cache disabled must match a cached run bit
// for bit, and the cached run must actually hit. The batch-refinement
// variant (MaxChecks > 0) is the one that replays sets — it re-tries
// the most expensive links round after round — so that is where the
// hit assertion has teeth.
func TestAuctionCacheAblation(t *testing.T) {
	s, err := NewScenario(ScenarioOptions{Scale: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	const maxChecks = 48
	cachedInst := s.Instance(Constraint1, maxChecks)
	cached, err := cachedInst.Run()
	if err != nil {
		t.Fatal(err)
	}
	rawInst := s.Instance(Constraint1, maxChecks)
	rawInst.NoCache = true
	raw, err := rawInst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cached.TotalCost != raw.TotalCost || len(cached.Selected) != len(raw.Selected) {
		t.Fatalf("cache changed the selection: C(SL) %v vs %v, |SL| %d vs %d",
			cached.TotalCost, raw.TotalCost, len(cached.Selected), len(raw.Selected))
	}
	for a := range cached.Payments {
		if cached.Payments[a] != raw.Payments[a] {
			t.Fatalf("cache changed P_%d: %v vs %v", a, cached.Payments[a], raw.Payments[a])
		}
	}
	if cached.Checks != raw.Checks {
		t.Fatalf("cache changed the check count: %d vs %d (budget semantics must not depend on cache luck)",
			cached.Checks, raw.Checks)
	}
	if cached.CacheHits+cached.CacheMisses != cached.Checks {
		t.Fatalf("cache counters %d+%d don't cover the %d checks",
			cached.CacheHits, cached.CacheMisses, cached.Checks)
	}
	if cached.CacheHits == 0 {
		t.Fatal("feasibility cache never hit on a full auction run")
	}
	if raw.CacheHits != 0 || raw.CacheMisses != 0 {
		t.Fatalf("NoCache run reported cache counters %d/%d", raw.CacheHits, raw.CacheMisses)
	}
	if hr := float64(cached.CacheHits) / float64(cached.Checks); math.IsNaN(hr) || hr < 0 || hr > 1 {
		t.Fatalf("nonsense hit rate %v", hr)
	}
}

// TestFleetWorkerInvariance extends the worker-determinism gate from
// one auction to the whole scenario grid: the 24-cell default sweep
// (two topologies × two traffic models × three constraints × two
// chaos schedules) must merge to byte-identical reports at -workers
// 1, 4 and 8, and again on a rerun — with the process-wide
// feasibility cache shared across every cell the whole time, so any
// scheduling leak through the cache would surface as drift here.
func TestFleetWorkerInvariance(t *testing.T) {
	grid := fleet.DefaultGrid()
	shared := fleet.NewShared()
	sweep := func(workers int) []byte {
		t.Helper()
		// Epochs/FailureScenarios are trimmed below their defaults to
		// keep four full sweeps CI-cheap; they shrink each cell, not
		// the grid, so the invariance property tested is unchanged.
		rep, err := fleet.Run(grid, fleet.Config{
			Workers: workers, Shared: shared, Epochs: 6, FailureScenarios: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := sweep(1)
	if len(base) == 0 {
		t.Fatal("empty merged report")
	}
	for _, workers := range []int{4, 8} {
		if got := sweep(workers); !bytes.Equal(got, base) {
			t.Fatalf("-workers %d merged report differs from -workers 1", workers)
		}
	}
	// Run-to-run: a second 8-worker sweep over the now-warm cache.
	if got := sweep(8); !bytes.Equal(got, base) {
		t.Fatal("rerun merged report differs (warm cache leaked into results)")
	}
}
