module github.com/public-option/poc

go 1.22
