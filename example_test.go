package poc_test

import (
	"fmt"

	poc "github.com/public-option/poc"
)

// ExampleNBSFee reproduces §4.5's bilateral bargaining fee:
// t = (p − r·c)/2 falls as the LMP's churn r rises, so incumbents
// (low churn) extract more than entrants.
func ExampleNBSFee() {
	for _, churn := range []float64{0.1, 0.45} {
		fmt.Printf("churn %.2f → fee %.2f\n", churn, poc.NBSFee(100, churn, 50))
	}
	// Output:
	// churn 0.10 → fee 47.50
	// churn 0.45 → fee 38.75
}

// ExampleAuditPolicy shows the §3.4 terms-of-service audit: blocking
// by source violates condition (i); a security-justified block does
// not.
func ExampleAuditPolicy() {
	bad := poc.PeeringPolicy{
		LMP: "lmp-x",
		Rules: []poc.PeeringRule{{
			Match:  poc.PeeringSelector{Source: "megaflix"},
			Action: 1, // Block
		}},
	}
	fmt.Println("violations:", len(poc.AuditPolicy(bad)))
	fmt.Println("clean:", len(poc.AuditPolicy(poc.PeeringPolicy{LMP: "lmp-y"})))
	// Output:
	// violations: 1
	// clean: 0
}

// ExampleAnalyzeEntry quantifies §2.3's margin squeeze: with transit
// bought from a competing incumbent the entrant keeps only the
// squeeze slack; POC transit restores the margin.
func ExampleAnalyzeEntry() {
	m := poc.EntryModel{
		IncumbentRetail: 60,
		LastMileCost:    25,
		POCTransitPrice: 8,
		SqueezeSlack:    2,
	}
	a, err := poc.AnalyzeEntry(m, 100, 0.10, 0.45)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("margin via incumbent transit: %.0f\n", a.MarginIncumbent)
	fmt.Printf("margin via POC transit:       %.0f\n", a.MarginPOC)
	fmt.Printf("UR termination-fee gap:       %.2f\n", a.URFeeGap)
	// Output:
	// margin via incumbent transit: 2
	// margin via POC transit:       27
	// UR termination-fee gap:       10.50
}

// ExampleCompareRegimes runs the §4 welfare comparison through the
// §3.2 ledger: network neutrality maximizes welfare, and the ledger
// conserves money under every regime.
func ExampleCompareRegimes() {
	services := []poc.RegimeService{{Name: "video", Demand: uniformDemand{high: 100}}}
	lmps := []poc.RegimeProvider{
		{Name: "incumbent", Customers: 700, Access: 50, Churn: 0.10},
		{Name: "entrant", Customers: 300, Access: 40, Churn: 0.45},
	}
	results, err := poc.CompareRegimes(services, lmps, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	nn := results[poc.RegimeNN].TotalWelfare()
	ur := results[poc.RegimeURUnilateral].TotalWelfare()
	fmt.Printf("W_NN > W_UR: %v\n", nn > ur)
	fmt.Printf("conservation: %.0f\n", results[poc.RegimeNN].Ledger.Conservation())
	// Output:
	// W_NN > W_UR: true
	// conservation: 0
}

// uniformDemand is a local Demand implementation, proving the §4
// interfaces are usable outside the module's internals.
type uniformDemand struct{ high float64 }

func (u uniformDemand) F(v float64) float64 {
	switch {
	case v <= 0:
		return 0
	case v >= u.high:
		return 1
	default:
		return v / u.high
	}
}
func (u uniformDemand) Density(v float64) float64 {
	if v < 0 || v > u.high {
		return 0
	}
	return 1 / u.high
}
func (u uniformDemand) Max() float64 { return u.high }
