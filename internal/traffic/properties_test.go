package traffic

import (
	"math"
	"testing"
)

// propBase builds a small asymmetric matrix with a zero row (2) so
// the properties below exercise both the weighted and the uniform
// hotspot split.
func propBase() *Matrix {
	m := NewMatrix(4)
	m.Set(0, 1, 10)
	m.Set(0, 2, 30)
	m.Set(0, 3, 60)
	m.Set(1, 0, 5)
	m.Set(1, 3, 15)
	m.Set(3, 0, 8)
	return m
}

// TestDiurnalEnvelopeUpperBound: the base matrix is the diurnal peak,
// so the envelope over all 24 hourly matrices must equal the base
// exactly, and every hourly matrix must sit under that envelope
// point-wise — this is the upper bound the POC provisions against.
func TestDiurnalEnvelopeUpperBound(t *testing.T) {
	base := propBase()
	hours := make([]*Matrix, 24)
	for h := 0; h < 24; h++ {
		hours[h] = Diurnal(base, h)
	}
	env := Envelope(hours...)
	for i := 0; i < base.Size(); i++ {
		for j := 0; j < base.Size(); j++ {
			if env.At(i, j) != base.At(i, j) {
				t.Fatalf("envelope(%d,%d) = %v, want peak %v", i, j, env.At(i, j), base.At(i, j))
			}
			for h := 0; h < 24; h++ {
				if hours[h].At(i, j) > env.At(i, j) {
					t.Fatalf("hour %d exceeds envelope at (%d,%d): %v > %v",
						h, i, j, hours[h].At(i, j), env.At(i, j))
				}
			}
		}
	}
}

// TestDiurnalScalingLinearity: Diurnal commutes with Scale — shrinking
// demand then applying the daily curve must equal applying the curve
// then shrinking. Scaled-down test scenarios rely on this to keep the
// same qualitative shape as the paper-scale instance.
func TestDiurnalScalingLinearity(t *testing.T) {
	base := propBase()
	const f = 0.37
	for h := 0; h < 24; h++ {
		a := Diurnal(base.Clone().Scale(f), h)
		b := Diurnal(base, h).Scale(f)
		for i := 0; i < base.Size(); i++ {
			for j := 0; j < base.Size(); j++ {
				if d := math.Abs(a.At(i, j) - b.At(i, j)); d > 1e-12*math.Max(1, b.At(i, j)) {
					t.Fatalf("hour %d: scale/diurnal don't commute at (%d,%d): %v vs %v",
						h, i, j, a.At(i, j), b.At(i, j))
				}
			}
		}
	}
}

// TestDiurnalDailyConservation: summed over a full 24-hour cycle, the
// diurnal factors are a phase-shifted sampling of one cosine period,
// so total daily demand must not depend on where the peak lands. The
// sinusoid's cosine terms cancel over the period, leaving exactly
// 24 x 0.7 x base total.
func TestDiurnalDailyConservation(t *testing.T) {
	base := propBase()
	want := 24 * 0.7 * base.Total()
	// Shift the phase by re-labelling which hour we start summing at;
	// any 24-hour window must conserve the same total.
	for start := 0; start < 24; start++ {
		day := 0.0
		for k := 0; k < 24; k++ {
			day += Diurnal(base, (start+k)%24).Total()
		}
		if math.Abs(day-want) > 1e-9*want {
			t.Fatalf("window starting at hour %d carries %v GB-hours, want %v", start, day, want)
		}
	}
}

// TestHotspotConservesAndScales: a hotspot adds exactly extraGbps to
// the matrix total (the fan-out shares sum to one for weighted and
// zero rows alike), and hotspot injection is linear under scaling.
func TestHotspotConservesAndScales(t *testing.T) {
	for _, src := range []int{0, 2} { // weighted row and zero row
		base := propBase()
		before := base.Total()
		const extra = 42.0
		Hotspot(base, src, extra)
		if d := math.Abs(base.Total() - before - extra); d > 1e-9 {
			t.Fatalf("src %d: hotspot changed total by %v, want %v", src, base.Total()-before, extra)
		}
		if base.At(src, src) != 0 {
			t.Fatalf("src %d: hotspot wrote the diagonal", src)
		}

		const f = 2.5
		a := Hotspot(propBase().Scale(f), src, f*extra)
		b := Hotspot(propBase(), src, extra).Scale(f)
		for i := 0; i < a.Size(); i++ {
			for j := 0; j < a.Size(); j++ {
				if d := math.Abs(a.At(i, j) - b.At(i, j)); d > 1e-12*math.Max(1, b.At(i, j)) {
					t.Fatalf("src %d: hotspot/scale don't commute at (%d,%d): %v vs %v",
						src, i, j, a.At(i, j), b.At(i, j))
				}
			}
		}
	}
}
