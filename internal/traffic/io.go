package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits the matrix as "src,dst,gbps" rows (non-zero demands
// only, row-major), preceded by a header line recording the size. The
// format round-trips through ReadCSV and is handy for exporting a
// scenario's demand to external tools.
func (m *Matrix) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# traffic-matrix n=%d\n", m.n); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "src,dst,gbps"); err != nil {
		return err
	}
	var err error
	m.Demands(func(src, dst int, gbps float64) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%d,%d,%g\n", src, dst, gbps)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format. It validates the header, the
// column count, index ranges and value signs, so a truncated or
// hand-mangled file fails loudly rather than producing a silently
// wrong matrix.
func ReadCSV(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("traffic: empty input")
	}
	header := sc.Text()
	var n int
	if _, err := fmt.Sscanf(header, "# traffic-matrix n=%d", &n); err != nil {
		return nil, fmt.Errorf("traffic: bad header %q", header)
	}
	if n <= 0 {
		return nil, fmt.Errorf("traffic: non-positive size %d", n)
	}
	if !sc.Scan() || sc.Text() != "src,dst,gbps" {
		return nil, fmt.Errorf("traffic: missing column header")
	}
	m := NewMatrix(n)
	line := 2
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("traffic: line %d: %d columns", line, len(parts))
		}
		src, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: src: %v", line, err)
		}
		dst, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: dst: %v", line, err)
		}
		g, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: line %d: gbps: %v", line, err)
		}
		if src < 0 || src >= n || dst < 0 || dst >= n {
			return nil, fmt.Errorf("traffic: line %d: index out of range", line)
		}
		if src == dst {
			return nil, fmt.Errorf("traffic: line %d: self-demand", line)
		}
		if g < 0 {
			return nil, fmt.Errorf("traffic: line %d: negative demand", line)
		}
		m.Set(src, dst, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
