package traffic

import (
	"math"
	"testing"
	"testing/quick"
)

func unitMass(int) float64 { return 1 }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3)
	if m.Size() != 3 {
		t.Fatalf("size = %d", m.Size())
	}
	m.Set(0, 1, 5)
	m.Set(1, 2, 2.5)
	if m.At(0, 1) != 5 || m.At(1, 2) != 2.5 || m.At(2, 0) != 0 {
		t.Fatal("At/Set mismatch")
	}
	if m.Total() != 7.5 {
		t.Fatalf("total = %v", m.Total())
	}
	if m.MaxEntry() != 5 {
		t.Fatalf("max = %v", m.MaxEntry())
	}
}

func TestMatrixPanics(t *testing.T) {
	m := NewMatrix(2)
	for _, fn := range []func(){
		func() { m.Set(0, 0, 1) },
		func() { m.Set(0, 1, -1) },
		func() { m.Set(0, 1, math.NaN()) },
		func() { m.Scale(-1) },
		func() { Diurnal(m, 25) },
		func() { Hotspot(m, 0, -1) },
		func() { Gravity(2, GravityConfig{TotalGbps: 0}, unitMass, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	// Diagonal zero set is allowed.
	m.Set(1, 1, 0)
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 1)
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestScale(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 4)
	m.Scale(0.5)
	if m.At(0, 1) != 2 {
		t.Fatalf("scaled = %v", m.At(0, 1))
	}
}

func TestEnvelope(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 5)
	b := NewMatrix(2)
	b.Set(0, 1, 3)
	e := Envelope(a, b)
	if e.At(0, 1) != 3 || e.At(1, 0) != 5 {
		t.Fatalf("envelope = %v / %v", e.At(0, 1), e.At(1, 0))
	}
	if Envelope() != nil {
		t.Fatal("empty envelope should be nil")
	}
	// Inputs unchanged.
	if a.At(0, 1) != 1 {
		t.Fatal("envelope mutated input")
	}
}

func TestEnvelopeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Envelope(NewMatrix(2), NewMatrix(3))
}

func TestGravityTotalAndDiagonal(t *testing.T) {
	cfg := GravityConfig{TotalGbps: 1000, Seed: 3}
	m := Gravity(10, cfg, unitMass, nil)
	if math.Abs(m.Total()-1000) > 1e-6 {
		t.Fatalf("total = %v, want 1000", m.Total())
	}
	for i := 0; i < 10; i++ {
		if m.At(i, i) != 0 {
			t.Fatalf("diagonal (%d,%d) = %v", i, i, m.At(i, i))
		}
	}
}

func TestGravityMassProportionality(t *testing.T) {
	mass := func(i int) float64 {
		if i == 0 {
			return 10
		}
		return 1
	}
	m := Gravity(5, GravityConfig{TotalGbps: 100, Seed: 1}, mass, nil)
	// Row 0 should carry much more than row 1.
	row := func(i int) float64 {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += m.At(i, j)
		}
		return s
	}
	if row(0) < 3*row(1) {
		t.Fatalf("row0 = %v not much larger than row1 = %v", row(0), row(1))
	}
}

func TestGravityDistanceDecay(t *testing.T) {
	dist := func(i, j int) float64 { return math.Abs(float64(i-j)) * 1000 }
	m := Gravity(10, GravityConfig{TotalGbps: 100, DistanceDecayKm: 500, Seed: 1}, unitMass, dist)
	if m.At(0, 1) <= m.At(0, 9) {
		t.Fatalf("near demand %v should exceed far demand %v", m.At(0, 1), m.At(0, 9))
	}
}

func TestGravityDeterministic(t *testing.T) {
	cfg := GravityConfig{TotalGbps: 100, Jitter: 0.5, Seed: 42}
	a := Gravity(8, cfg, unitMass, nil)
	b := Gravity(8, cfg, unitMass, nil)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatal("gravity is nondeterministic for fixed seed")
			}
		}
	}
}

func TestHotspotAddsExactly(t *testing.T) {
	m := Gravity(6, GravityConfig{TotalGbps: 60, Seed: 2}, unitMass, nil)
	before := m.Total()
	Hotspot(m, 2, 40)
	if math.Abs(m.Total()-before-40) > 1e-9 {
		t.Fatalf("hotspot added %v, want 40", m.Total()-before)
	}
	if m.At(2, 2) != 0 {
		t.Fatal("hotspot touched diagonal")
	}
}

func TestHotspotOnZeroRow(t *testing.T) {
	m := NewMatrix(4)
	Hotspot(m, 1, 30)
	if math.Abs(m.Total()-30) > 1e-9 {
		t.Fatalf("total = %v, want 30", m.Total())
	}
	// Spread evenly across 3 other points.
	if math.Abs(m.At(1, 0)-10) > 1e-9 {
		t.Fatalf("share = %v, want 10", m.At(1, 0))
	}
}

func TestDiurnalBounds(t *testing.T) {
	base := NewMatrix(2)
	base.Set(0, 1, 100)
	for h := 0; h < 24; h++ {
		d := Diurnal(base, h)
		v := d.At(0, 1)
		if v < 40-1e-9 || v > 100+1e-9 {
			t.Fatalf("hour %d: %v outside [40,100]", h, v)
		}
	}
	if Diurnal(base, 20).At(0, 1) != 100 {
		t.Fatalf("peak hour should equal base, got %v", Diurnal(base, 20).At(0, 1))
	}
}

func TestDemandsIteration(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 2, 1)
	m.Set(2, 1, 4)
	var got []float64
	m.Demands(func(s, d int, g float64) { got = append(got, g) })
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("demands = %v", got)
	}
}

// Property: scaling by f scales the total by f.
func TestQuickScaleLinearity(t *testing.T) {
	f := func(seed int64, rawF uint8) bool {
		scale := float64(rawF%50) / 10 // 0..4.9
		m := Gravity(6, GravityConfig{TotalGbps: 100, Jitter: 0.3, Seed: seed}, unitMass, nil)
		before := m.Total()
		m.Scale(scale)
		return math.Abs(m.Total()-before*scale) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: envelope dominates both inputs point-wise.
func TestQuickEnvelopeDominates(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := Gravity(5, GravityConfig{TotalGbps: 50, Jitter: 0.4, Seed: s1}, unitMass, nil)
		b := Gravity(5, GravityConfig{TotalGbps: 80, Jitter: 0.4, Seed: s2}, unitMass, nil)
		e := Envelope(a, b)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if e.At(i, j) < a.At(i, j) || e.At(i, j) < b.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
