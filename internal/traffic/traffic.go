// Package traffic generates the synthetic traffic matrices that drive
// the POC's provisioning and auction constraints.
//
// The paper assumes "the POC has some upper-bound estimate of its
// traffic matrix (how much traffic flows between each pair of
// attachment points)" and generates "a synthetic traffic matrix
// between all POC routers" for its auction evaluation (§3.3). This
// package provides a gravity model seeded from city populations plus
// hotspot and diurnal variants, and the envelope operations the POC
// needs (scaling, point-wise max across epochs).
package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a demand matrix in Gbps between n attachment points.
// Entry (i,j) is the directed demand from i to j. The diagonal is
// zero.
type Matrix struct {
	n    int
	cell []float64
}

// NewMatrix returns a zero matrix over n attachment points.
func NewMatrix(n int) *Matrix {
	return &Matrix{n: n, cell: make([]float64, n*n)}
}

// Size returns the number of attachment points.
func (m *Matrix) Size() int { return m.n }

// At returns the demand from i to j.
func (m *Matrix) At(i, j int) float64 { return m.cell[i*m.n+j] }

// Set sets the demand from i to j. Setting the diagonal or a negative
// demand panics: both indicate a bug in the caller.
func (m *Matrix) Set(i, j int, v float64) {
	if i == j && v != 0 {
		panic(fmt.Sprintf("traffic: self-demand at %d", i))
	}
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("traffic: invalid demand %v", v))
	}
	m.cell[i*m.n+j] = v
}

// Total returns the sum of all demands.
func (m *Matrix) Total() float64 {
	s := 0.0
	for _, v := range m.cell {
		s += v
	}
	return s
}

// MaxEntry returns the largest single demand.
func (m *Matrix) MaxEntry() float64 {
	mx := 0.0
	for _, v := range m.cell {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.n)
	copy(c.cell, m.cell)
	return c
}

// Scale multiplies every demand by f (f >= 0) in place and returns m.
func (m *Matrix) Scale(f float64) *Matrix {
	if f < 0 {
		panic("traffic: negative scale")
	}
	for i := range m.cell {
		m.cell[i] *= f
	}
	return m
}

// Envelope returns the point-wise maximum of m and others — the
// upper-bound matrix the POC provisions against.
func Envelope(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return nil
	}
	out := ms[0].Clone()
	for _, m := range ms[1:] {
		if m.n != out.n {
			panic("traffic: envelope over mismatched sizes")
		}
		for i, v := range m.cell {
			if v > out.cell[i] {
				out.cell[i] = v
			}
		}
	}
	return out
}

// Demands calls fn for every non-zero demand in row-major order.
func (m *Matrix) Demands(fn func(src, dst int, gbps float64)) {
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if v := m.cell[i*m.n+j]; v > 0 {
				fn(i, j, v)
			}
		}
	}
}

// GravityConfig parameterises the gravity model.
type GravityConfig struct {
	// TotalGbps is the target aggregate demand; the matrix is scaled
	// so Total() equals it.
	TotalGbps float64
	// DistanceDecayKm attenuates demand between far-apart points:
	// weight *= 1/(1+d/DistanceDecayKm). Zero disables attenuation.
	DistanceDecayKm float64
	// Jitter in [0,1) adds multiplicative noise 1±Jitter drawn from
	// the seeded RNG, so matrices are not perfectly symmetric.
	Jitter float64
	Seed   int64
}

// DefaultGravityConfig returns the configuration used by the Figure 2
// pipeline: 20 Tbps aggregate with mild distance decay and jitter —
// about 40% of the default zoo's routable capacity, leaving the
// auction room to drop expensive links.
func DefaultGravityConfig() GravityConfig {
	return GravityConfig{TotalGbps: 20000, DistanceDecayKm: 8000, Jitter: 0.25, Seed: 7}
}

// Gravity builds a demand matrix over n attachment points using the
// gravity model: demand(i,j) ∝ mass(i)·mass(j), optionally attenuated
// by distance. mass and dist are caller-supplied accessors (dist may
// be nil when DistanceDecayKm is zero).
func Gravity(n int, cfg GravityConfig, mass func(i int) float64, dist func(i, j int) float64) *Matrix {
	if cfg.TotalGbps <= 0 {
		panic("traffic: TotalGbps must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			w := mass(i) * mass(j)
			if cfg.DistanceDecayKm > 0 {
				w /= 1 + dist(i, j)/cfg.DistanceDecayKm
			}
			if cfg.Jitter > 0 {
				w *= 1 + cfg.Jitter*(2*rng.Float64()-1)
			}
			m.Set(i, j, w)
		}
	}
	total := m.Total()
	if total <= 0 {
		panic("traffic: gravity model produced zero demand; check masses")
	}
	return m.Scale(cfg.TotalGbps / total)
}

// Hotspot adds a content-provider style hotspot: source src fans out
// extra demand to every other point, proportional to existing row
// weight, totalling extraGbps. It mutates m and returns it.
func Hotspot(m *Matrix, src int, extraGbps float64) *Matrix {
	if extraGbps < 0 {
		panic("traffic: negative hotspot")
	}
	row := 0.0
	for j := 0; j < m.n; j++ {
		row += m.At(src, j)
	}
	for j := 0; j < m.n; j++ {
		if j == src {
			continue
		}
		var share float64
		if row > 0 {
			share = m.At(src, j) / row
		} else {
			share = 1 / float64(m.n-1)
		}
		m.Set(src, j, m.At(src, j)+extraGbps*share)
	}
	return m
}

// Diurnal returns the matrix at a given hour of day (0..23): demand
// follows a sinusoid peaking at hour 20 local-agnostic, floor at 40%
// of peak. The base matrix is treated as the peak.
func Diurnal(base *Matrix, hour int) *Matrix {
	if hour < 0 || hour > 23 {
		panic(fmt.Sprintf("traffic: hour %d out of range", hour))
	}
	phase := 2 * math.Pi * float64(hour-20) / 24
	f := 0.7 + 0.3*math.Cos(phase) // in [0.4, 1.0]
	return base.Clone().Scale(f)
}
