package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	m := Gravity(8, GravityConfig{TotalGbps: 100, Jitter: 0.3, Seed: 5}, unitMass, nil)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != m.Size() {
		t.Fatalf("size = %d", got.Size())
	}
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			if math.Abs(got.At(i, j)-m.At(i, j)) > 1e-12*(1+m.At(i, j)) {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestCSVEmptyMatrix(t *testing.T) {
	var buf bytes.Buffer
	if err := NewMatrix(3).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 3 || got.Total() != 0 {
		t.Fatalf("got %d / %v", got.Size(), got.Total())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, doc string }{
		{"empty", ""},
		{"bad header", "hello\nsrc,dst,gbps\n"},
		{"zero size", "# traffic-matrix n=0\nsrc,dst,gbps\n"},
		{"missing columns header", "# traffic-matrix n=2\nnope\n"},
		{"wrong columns", "# traffic-matrix n=2\nsrc,dst,gbps\n0,1\n"},
		{"bad src", "# traffic-matrix n=2\nsrc,dst,gbps\nx,1,1\n"},
		{"bad dst", "# traffic-matrix n=2\nsrc,dst,gbps\n0,x,1\n"},
		{"bad gbps", "# traffic-matrix n=2\nsrc,dst,gbps\n0,1,x\n"},
		{"out of range", "# traffic-matrix n=2\nsrc,dst,gbps\n0,5,1\n"},
		{"self demand", "# traffic-matrix n=2\nsrc,dst,gbps\n1,1,1\n"},
		{"negative", "# traffic-matrix n=2\nsrc,dst,gbps\n0,1,-1\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.doc)); err == nil {
				t.Fatalf("accepted %q", c.doc)
			}
		})
	}
}

func TestReadCSVSkipsCommentsAndBlanks(t *testing.T) {
	doc := "# traffic-matrix n=2\nsrc,dst,gbps\n\n# comment\n0,1,2.5\n"
	m, err := ReadCSV(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2.5 {
		t.Fatalf("demand = %v", m.At(0, 1))
	}
}
