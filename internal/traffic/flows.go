package traffic

import (
	"fmt"
	"math/rand"
	"sort"
)

// FlowSample is one endpoint-pair demand drawn from a matrix — the
// unit of the fabric's flow-level workloads. Src and Dst index
// attachment points (matrix rows/columns).
type FlowSample struct {
	Src, Dst int
	Gbps     float64
}

// SampleFlows decomposes a demand matrix into n individual aggregate
// flows: (src,dst) pairs are drawn proportionally to their matrix
// entry, and each flow's rate jitters uniformly in [0.5,1.5)× around
// totalGbps/n, so the n flows together offer ≈ totalGbps spread the
// way the matrix spreads aggregate demand. The paper's TM is an
// upper-bound envelope over many individual flows; this is the
// inverse operation, used to put realistic million-flow populations
// on the fabric. Sampling is seeded and fully deterministic.
func SampleFlows(m *Matrix, n int, totalGbps float64, seed int64) []FlowSample {
	if n <= 0 {
		panic(fmt.Sprintf("traffic: sample count %d", n))
	}
	if totalGbps <= 0 {
		panic(fmt.Sprintf("traffic: sample total %v Gbps", totalGbps))
	}
	// Cumulative weight over non-zero cells in row-major order.
	type cell struct{ src, dst int }
	var cells []cell
	var cum []float64
	sum := 0.0
	m.Demands(func(src, dst int, gbps float64) {
		sum += gbps
		cells = append(cells, cell{src, dst})
		cum = append(cum, sum)
	})
	if len(cells) == 0 {
		panic("traffic: sampling an empty matrix")
	}
	rng := rand.New(rand.NewSource(seed))
	base := totalGbps / float64(n)
	out := make([]FlowSample, n)
	for i := range out {
		c := cells[sort.SearchFloat64s(cum, rng.Float64()*sum)]
		out[i] = FlowSample{Src: c.src, Dst: c.dst, Gbps: base * (0.5 + rng.Float64())}
	}
	return out
}
