package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// line builds a simple line graph 0-1-2-...-n-1 with unit costs and
// the given capacity.
func line(n int, capacity float64) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddBiEdge(NodeID(i), NodeID(i+1), 1, capacity)
	}
	return g
}

// diamond builds the classic two-path diamond:
//
//	0 -> 1 -> 3 (cost 1+1, cap 5 each)
//	0 -> 2 -> 3 (cost 2+2, cap 3 each)
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1, 1, 5)
	g.AddEdge(1, 3, 1, 5)
	g.AddEdge(0, 2, 2, 3)
	g.AddEdge(2, 3, 2, 3)
	return g
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"from out of range", func() { g.AddEdge(5, 0, 1, 1) }},
		{"to out of range", func() { g.AddEdge(0, 5, 1, 1) }},
		{"negative from", func() { g.AddEdge(-1, 0, 1, 1) }},
		{"negative cost", func() { g.AddEdge(0, 1, -1, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestNegativeCapacityMeansUnbounded(t *testing.T) {
	g := New(2)
	id := g.AddEdge(0, 1, 1, -1)
	if !math.IsInf(g.Edge(id).Capacity, 1) {
		t.Fatalf("capacity = %v, want +Inf", g.Edge(id).Capacity)
	}
	g.SetCapacity(id, -3)
	if !math.IsInf(g.Edge(id).Capacity, 1) {
		t.Fatalf("after SetCapacity: %v, want +Inf", g.Edge(id).Capacity)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.SetDisabled(0, true)
	if g.Edge(0).Disabled {
		t.Fatal("disabling edge in clone affected original")
	}
	c.AddNode()
	if g.NumNodes() != 4 {
		t.Fatalf("original node count changed to %d", g.NumNodes())
	}
}

func TestShortestPathDiamond(t *testing.T) {
	g := diamond()
	p := g.ShortestPath(0, 3, nil)
	if p.Cost != 2 {
		t.Fatalf("cost = %v, want 2", p.Cost)
	}
	nodes := p.Nodes(g)
	want := []NodeID{0, 1, 3}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestShortestPathRespectsDisabled(t *testing.T) {
	g := diamond()
	g.SetDisabled(0, true) // kill 0->1
	p := g.ShortestPath(0, 3, nil)
	if p.Cost != 4 {
		t.Fatalf("cost = %v, want 4 (via node 2)", p.Cost)
	}
}

func TestShortestPathRespectsFilter(t *testing.T) {
	g := diamond()
	p := g.ShortestPath(0, 3, func(id EdgeID, e *Edge) bool { return id != 1 })
	if p.Cost != 4 {
		t.Fatalf("cost = %v, want 4", p.Cost)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, 1)
	p := g.ShortestPath(0, 2, nil)
	if !math.IsInf(p.Cost, 1) {
		t.Fatalf("cost = %v, want +Inf", p.Cost)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := New(1)
	p := g.ShortestPath(0, 0, nil)
	if p.Cost != 0 || len(p.Edges) != 0 {
		t.Fatalf("self path = %+v, want empty, zero cost", p)
	}
}

func TestPathValidateDetectsGap(t *testing.T) {
	g := diamond()
	bad := Path{Edges: []EdgeID{0, 3}} // 0->1 then 2->3
	if err := bad.Validate(g); err == nil {
		t.Fatal("expected discontinuity error")
	}
}

func TestMinCapacity(t *testing.T) {
	g := diamond()
	p := g.ShortestPath(0, 3, nil)
	if got := p.MinCapacity(g); got != 5 {
		t.Fatalf("MinCapacity = %v, want 5", got)
	}
	if got := (Path{}).MinCapacity(g); !math.IsInf(got, 1) {
		t.Fatalf("empty path MinCapacity = %v, want +Inf", got)
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	g := diamond()
	if f := g.MaxFlow(0, 3, nil); f != 8 {
		t.Fatalf("max flow = %v, want 8", f)
	}
}

func TestMaxFlowBottleneck(t *testing.T) {
	g := line(4, 2.5)
	if f := g.MaxFlow(0, 3, nil); f != 2.5 {
		t.Fatalf("max flow = %v, want 2.5", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1, 10)
	if f := g.MaxFlow(0, 3, nil); f != 0 {
		t.Fatalf("max flow = %v, want 0", f)
	}
}

func TestMaxFlowSameNode(t *testing.T) {
	g := New(2)
	if f := g.MaxFlow(0, 0, nil); !math.IsInf(f, 1) {
		t.Fatalf("s==t flow = %v, want +Inf", f)
	}
}

func TestMaxFlowInfiniteCapacityPath(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, -1)
	g.AddEdge(1, 2, 1, -1)
	if f := g.MaxFlow(0, 2, nil); !math.IsInf(f, 1) {
		t.Fatalf("flow = %v, want +Inf", f)
	}
}

func TestMinCutMatchesMaxFlow(t *testing.T) {
	g := diamond()
	cut, side := g.MinCut(0, 3, nil)
	if cut != 8 {
		t.Fatalf("min cut = %v, want 8", cut)
	}
	inSide := map[NodeID]bool{}
	for _, n := range side {
		inSide[n] = true
	}
	if !inSide[0] {
		t.Fatal("source not on source side of cut")
	}
	if inSide[3] {
		t.Fatal("sink on source side of cut")
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g := diamond()
	ps := g.KShortestPaths(0, 3, 5, nil)
	if len(ps) != 2 {
		t.Fatalf("got %d paths, want 2", len(ps))
	}
	if ps[0].Cost != 2 || ps[1].Cost != 4 {
		t.Fatalf("costs = %v, %v; want 2, 4", ps[0].Cost, ps[1].Cost)
	}
}

func TestKShortestPathsOrdered(t *testing.T) {
	g := grid(5, 5)
	ps := g.KShortestPaths(0, 24, 8, nil)
	if len(ps) == 0 {
		t.Fatal("no paths in grid")
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Cost < ps[i-1].Cost {
			t.Fatalf("paths out of order: %v then %v", ps[i-1].Cost, ps[i].Cost)
		}
	}
	for i, p := range ps {
		if err := p.Validate(g); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		// Loopless check.
		seen := map[NodeID]bool{}
		for _, n := range p.Nodes(g) {
			if seen[n] {
				t.Fatalf("path %d revisits node %d", i, n)
			}
			seen[n] = true
		}
	}
}

func TestKShortestPathsNone(t *testing.T) {
	g := New(2)
	if ps := g.KShortestPaths(0, 1, 3, nil); ps != nil {
		t.Fatalf("got %v, want nil", ps)
	}
	if ps := g.KShortestPaths(0, 1, 0, nil); ps != nil {
		t.Fatalf("k=0: got %v, want nil", ps)
	}
}

func TestEdgeDisjointPathsDiamond(t *testing.T) {
	g := diamond()
	ps := g.EdgeDisjointPaths(0, 3, 0, nil)
	if len(ps) != 2 {
		t.Fatalf("got %d disjoint paths, want 2", len(ps))
	}
	used := map[EdgeID]bool{}
	for _, p := range ps {
		for _, e := range p.Edges {
			if used[e] {
				t.Fatalf("edge %d reused", e)
			}
			used[e] = true
		}
	}
}

func TestEdgeDisjointPathsLimit(t *testing.T) {
	g := diamond()
	ps := g.EdgeDisjointPaths(0, 3, 1, nil)
	if len(ps) != 1 {
		t.Fatalf("got %d paths, want 1", len(ps))
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddBiEdge(0, 1, 1, 1)
	g.AddBiEdge(2, 3, 1, 1)
	comps := g.Components()
	if len(comps) != 3 { // {0,1}, {2,3}, {4}
		t.Fatalf("got %d components, want 3", len(comps))
	}
}

func TestConnectedIgnoresIsolated(t *testing.T) {
	g := New(4)
	g.AddBiEdge(0, 1, 1, 1)
	// Node 2, 3 isolated: still "connected" for auction purposes.
	if !g.Connected() {
		t.Fatal("graph with isolated nodes should count as connected")
	}
	g.AddBiEdge(2, 3, 1, 1)
	if g.Connected() {
		t.Fatal("two active components should not be connected")
	}
}

func TestReachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1, 1)
	if !g.Reachable(0, 1, nil) {
		t.Fatal("0->1 should be reachable")
	}
	if g.Reachable(1, 0, nil) {
		t.Fatal("1->0 should not be reachable (directed)")
	}
	if !g.Reachable(2, 2, nil) {
		t.Fatal("node reachable from itself")
	}
}

func TestDegree(t *testing.T) {
	g := diamond()
	if d := g.Degree(0); d != 2 {
		t.Fatalf("degree(0) = %d, want 2", d)
	}
	g.SetDisabled(0, true)
	if d := g.Degree(0); d != 1 {
		t.Fatalf("degree(0) after disable = %d, want 1", d)
	}
}

func TestEdgesBetween(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(0, 1, 2, 1)
	dis := g.AddEdge(0, 1, 1, 1)
	g.SetDisabled(dis, true)
	ids := g.EdgesBetween(0, 1)
	if len(ids) != 2 {
		t.Fatalf("got %d edges, want 2", len(ids))
	}
	if g.Edge(ids[0]).Cost != 2 || g.Edge(ids[1]).Cost != 5 {
		t.Fatalf("edges not sorted by cost: %v", ids)
	}
}

// grid builds an r x c grid with unit-cost, capacity-1 bidirectional
// edges; node (i,j) has ID i*c+j.
func grid(r, c int) *Graph {
	g := New(r * c)
	id := func(i, j int) NodeID { return NodeID(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddBiEdge(id(i, j), id(i, j+1), 1, 1)
			}
			if i+1 < r {
				g.AddBiEdge(id(i, j), id(i+1, j), 1, 1)
			}
		}
	}
	return g
}

func TestGridShortestPathLength(t *testing.T) {
	g := grid(4, 4)
	p := g.ShortestPath(0, 15, nil)
	if p.Cost != 6 { // 3 right + 3 down
		t.Fatalf("cost = %v, want 6", p.Cost)
	}
}

func TestGridMaxFlowEqualsCornerDegree(t *testing.T) {
	g := grid(4, 4)
	// Corner has degree 2, so unit-capacity max flow from corner is 2.
	if f := g.MaxFlow(0, 15, nil); f != 2 {
		t.Fatalf("flow = %v, want 2", f)
	}
}

// --- property-based tests -------------------------------------------------

// randomGraph builds a random connected-ish digraph from a seed.
func randomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// Spanning chain to keep things mostly reachable.
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), 1+rng.Float64()*9, 1+rng.Float64()*9)
	}
	for i := 0; i < m; i++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a == b {
			continue
		}
		g.AddEdge(a, b, 1+rng.Float64()*9, 1+rng.Float64()*9)
	}
	return g
}

// Property: Dijkstra distances satisfy the triangle inequality over
// every enabled edge: dist[to] <= dist[from] + cost.
func TestQuickDijkstraTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 60)
		tree := g.Dijkstra(0, nil)
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(EdgeID(i))
			if e.Disabled {
				continue
			}
			if tree.Reachable(e.From) && tree.Dist[e.To] > tree.Dist[e.From]+e.Cost+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the path reconstructed from the Dijkstra tree has exactly
// the reported distance and is contiguous.
func TestQuickDijkstraPathCostMatchesDist(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 50)
		tree := g.Dijkstra(0, nil)
		for n := 1; n < g.NumNodes(); n++ {
			if !tree.Reachable(NodeID(n)) {
				continue
			}
			p := tree.PathTo(g, NodeID(n))
			if p.Validate(g) != nil {
				return false
			}
			sum := 0.0
			for _, eid := range p.Edges {
				sum += g.Edge(eid).Cost
			}
			if math.Abs(sum-tree.Dist[n]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: max flow is monotone in capacity — doubling every capacity
// cannot decrease the flow, and never more than doubles it.
func TestQuickMaxFlowMonotone(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 40)
		f1 := g.MaxFlow(0, NodeID(g.NumNodes()-1), nil)
		double := g.Clone()
		for i := 0; i < double.NumEdges(); i++ {
			double.SetCapacity(EdgeID(i), double.Edge(EdgeID(i)).Capacity*2)
		}
		f2 := double.MaxFlow(0, NodeID(double.NumNodes()-1), nil)
		return f2 >= f1-1e-9 && f2 <= 2*f1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: max flow <= capacity of any s-t cut induced by removing
// the source's outgoing edges.
func TestQuickMaxFlowBoundedBySourceDegreeCut(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 40)
		s, tt := NodeID(0), NodeID(g.NumNodes()-1)
		flow := g.MaxFlow(s, tt, nil)
		cut := 0.0
		for _, eid := range g.Out(s) {
			cut += g.Edge(eid).Capacity
		}
		return flow <= cut+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: k-shortest paths are sorted and the first equals the
// shortest path cost.
func TestQuickKShortestSorted(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 30)
		sp := g.ShortestPath(0, NodeID(g.NumNodes()-1), nil)
		ps := g.KShortestPaths(0, NodeID(g.NumNodes()-1), 4, nil)
		if math.IsInf(sp.Cost, 1) {
			return len(ps) == 0
		}
		if len(ps) == 0 || math.Abs(ps[0].Cost-sp.Cost) > 1e-9 {
			return false
		}
		for i := 1; i < len(ps); i++ {
			if ps[i].Cost < ps[i-1].Cost-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
