package graph

import (
	"math"
	"math/rand"
	"testing"
)

func traceHas(trace []uint64, eid EdgeID) bool {
	return trace[eid>>6]&(1<<(uint(eid)&63)) != 0
}

// TestTraceCertificateTree pins the influence-set soundness claim the
// incremental recheck memo rests on: disabling any set of edges that
// never won a relaxation (bit unset in the trace) leaves the entire
// tree — every distance, every parent — byte-identical.
func TestTraceCertificateTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		g := randomGraph(rng.Int63(), 24, 40)
		words := (g.NumEdges() + 63) / 64
		trace := make([]uint64, words)
		tr := NewTreeRouter(g)
		tr.SetTrace(trace)
		src := NodeID(rng.Intn(g.NumNodes()))
		base := tr.Tree(src, nil)
		baseDist := append([]float64(nil), base.Dist...)
		baseParent := append([]EdgeID(nil), base.Parent...)

		// Tracing itself must not perturb results.
		tr2 := NewTreeRouter(g)
		plain := tr2.Tree(src, nil)
		for i := range baseDist {
			if baseDist[i] != plain.Dist[i] || baseParent[i] != plain.Parent[i] {
				t.Fatalf("iter %d: traced run differs from untraced at node %d", iter, i)
			}
		}

		// Disable a random subset of untraced edges and re-run cold.
		var disabled []EdgeID
		for eid := 0; eid < g.NumEdges(); eid++ {
			if !traceHas(trace, EdgeID(eid)) && rng.Intn(2) == 0 {
				g.SetDisabled(EdgeID(eid), true)
				disabled = append(disabled, EdgeID(eid))
			}
		}
		got := NewTreeRouter(g).Tree(src, nil)
		for i := range baseDist {
			if baseDist[i] != got.Dist[i] || baseParent[i] != got.Parent[i] {
				t.Fatalf("iter %d: disabling untraced edges changed tree at node %d: dist %v->%v parent %v->%v",
					iter, i, baseDist[i], got.Dist[i], baseParent[i], got.Parent[i])
			}
		}
		for _, eid := range disabled {
			g.SetDisabled(eid, false)
		}
	}
}

// TestTraceCertificatePoint is the same claim for the point engine,
// whose relaxation has the extra first-touch branch.
func TestTraceCertificatePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		g := randomGraph(rng.Int63(), 24, 40)
		words := (g.NumEdges() + 63) / 64
		trace := make([]uint64, words)
		pr := NewPointRouter(g)
		pr.SetTrace(trace)
		src := NodeID(rng.Intn(g.NumNodes()))
		dst := NodeID(rng.Intn(g.NumNodes()))
		basePath, baseCost := pr.PathInto(nil, src, dst, nil)

		for eid := 0; eid < g.NumEdges(); eid++ {
			if !traceHas(trace, EdgeID(eid)) && rng.Intn(2) == 0 {
				g.SetDisabled(EdgeID(eid), true)
			}
		}
		gotPath, gotCost := NewPointRouter(g).PathInto(nil, src, dst, nil)
		if len(basePath) != len(gotPath) {
			t.Fatalf("iter %d: path length changed %d->%d", iter, len(basePath), len(gotPath))
		}
		for i := range basePath {
			if basePath[i] != gotPath[i] {
				t.Fatalf("iter %d: path edge %d changed %v->%v", iter, i, basePath[i], gotPath[i])
			}
		}
		if baseCost != gotCost && !(math.IsInf(baseCost, 1) && math.IsInf(gotCost, 1)) {
			t.Fatalf("iter %d: cost changed %v->%v", iter, baseCost, gotCost)
		}
	}
}
