package graph

import (
	"math"
	"sort"
)

// KShortestPaths returns up to k loopless shortest paths from src to
// dst in ascending cost order, using Yen's algorithm. It returns fewer
// than k paths when the graph does not contain that many distinct
// loopless paths.
//
// The provisioning engine splits a demand across several paths when a
// single shortest path lacks capacity, and the resilience constraints
// (#2 and #3 in the paper's auction evaluation) need alternatives to
// the primary path.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, filter EdgeFilter) []Path {
	if k <= 0 {
		return nil
	}
	first := g.ShortestPath(src, dst, filter)
	if math.IsInf(first.Cost, 1) {
		return nil
	}
	paths := []Path{first}
	var candidates []Path

	banned := make(map[EdgeID]bool)
	bannedNodes := make(map[NodeID]bool)
	combined := func(id EdgeID, e *Edge) bool {
		if banned[id] || bannedNodes[e.From] || bannedNodes[e.To] {
			return false
		}
		return filter == nil || filter(id, e)
	}

	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := prev.Nodes(g)
		// Spur from each node of the previous path except the last.
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prevNodes[i]
			rootEdges := prev.Edges[:i]

			// Ban edges that would recreate an already-found path with
			// the same root.
			for k := range banned {
				delete(banned, k)
			}
			for n := range bannedNodes {
				delete(bannedNodes, n)
			}
			for _, p := range paths {
				if len(p.Edges) > i && equalPrefix(p.Edges, rootEdges) {
					banned[p.Edges[i]] = true
				}
			}
			// Ban root nodes (except the spur node) to keep paths loopless.
			for _, n := range prevNodes[:i] {
				bannedNodes[n] = true
			}

			spur := g.ShortestPath(spurNode, dst, combined)
			if math.IsInf(spur.Cost, 1) {
				continue
			}
			total := Path{
				Edges: append(append([]EdgeID(nil), rootEdges...), spur.Edges...),
			}
			for _, eid := range total.Edges {
				total.Cost += g.edges[eid].Cost
			}
			if !containsPath(candidates, total) && !containsPath(paths, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool { return candidates[a].Cost < candidates[b].Cost })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

// EdgeDisjointPaths returns a maximal set of pairwise edge-disjoint
// src→dst paths found greedily by repeated shortest-path searches,
// removing each found path's edges before the next search. The result
// is not guaranteed maximum (use MaxFlow with unit capacities for the
// exact count) but is deterministic and fast, and is what the
// resilience checks use to prove survivability.
func (g *Graph) EdgeDisjointPaths(src, dst NodeID, limit int, filter EdgeFilter) []Path {
	used := make(map[EdgeID]bool)
	combined := func(id EdgeID, e *Edge) bool {
		if used[id] {
			return false
		}
		return filter == nil || filter(id, e)
	}
	var out []Path
	for limit <= 0 || len(out) < limit {
		p := g.ShortestPath(src, dst, combined)
		if math.IsInf(p.Cost, 1) || len(p.Edges) == 0 {
			break
		}
		for _, eid := range p.Edges {
			used[eid] = true
		}
		out = append(out, p)
		if limit <= 0 && len(out) > g.NumEdges() {
			break // safety against pathological graphs
		}
	}
	return out
}

func equalPrefix(p []EdgeID, prefix []EdgeID) bool {
	if len(p) < len(prefix) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, q Path) bool {
	for _, p := range ps {
		if len(p.Edges) != len(q.Edges) {
			continue
		}
		same := true
		for i := range p.Edges {
			if p.Edges[i] != q.Edges[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
