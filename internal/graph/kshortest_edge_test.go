package graph

import (
	"testing"
)

// TestKShortestPathsEdgeCases pins Yen's behavior on the degenerate
// inputs the provisioning engine can hand it: a k larger than the
// number of loopless paths that exist, a disconnected source/sink
// pair, a single-node graph, and parallel edges whose equal costs
// force a tie-break. Every case runs twice and must return the exact
// same edge sequences — the auction replays routing decisions, so a
// tie resolved differently on a second call would change payments.
func TestKShortestPathsEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
		src   NodeID
		dst   NodeID
		k     int
		// wantEdges is the expected edge-ID sequence per path, in
		// order. nil means "expect no paths at all".
		wantEdges [][]EdgeID
		wantCosts []float64
	}{
		{
			// The diamond has exactly 2 loopless paths; asking for 10
			// must return both and stop, not loop or pad.
			name: "k exceeds available paths",
			build: func() *Graph {
				g := New(4)
				g.AddEdge(0, 1, 1, 5) // e0
				g.AddEdge(1, 3, 1, 5) // e1
				g.AddEdge(0, 2, 2, 3) // e2
				g.AddEdge(2, 3, 2, 3) // e3
				return g
			},
			src: 0, dst: 3, k: 10,
			wantEdges: [][]EdgeID{{0, 1}, {2, 3}},
			wantCosts: []float64{2, 4},
		},
		{
			name: "disconnected source and sink",
			build: func() *Graph {
				g := New(4)
				g.AddEdge(0, 1, 1, 1) // component {0,1}
				g.AddEdge(2, 3, 1, 1) // component {2,3}
				return g
			},
			src: 0, dst: 3, k: 3,
			wantEdges: nil,
		},
		{
			// src == dst in a single-node graph: one trivial path with
			// no edges and zero cost, regardless of k.
			name:  "single-node graph",
			build: func() *Graph { return New(1) },
			src:   0, dst: 0, k: 5,
			wantEdges: [][]EdgeID{{}},
			wantCosts: []float64{0},
		},
		{
			// Two parallel edges with identical cost: both are distinct
			// loopless paths, and the tie must resolve to the
			// lower-numbered edge first on every invocation.
			name: "parallel edges with equal cost",
			build: func() *Graph {
				g := New(2)
				g.AddEdge(0, 1, 3, 1) // e0
				g.AddEdge(0, 1, 3, 1) // e1, same cost
				return g
			},
			src: 0, dst: 1, k: 4,
			wantEdges: [][]EdgeID{{0}, {1}},
			wantCosts: []float64{3, 3},
		},
		{
			// Parallel ties deeper in the graph: the spur step must
			// surface the equal-cost sibling deterministically too.
			name: "mid-path parallel tie",
			build: func() *Graph {
				g := New(3)
				g.AddEdge(0, 1, 1, 1) // e0
				g.AddEdge(1, 2, 2, 1) // e1
				g.AddEdge(1, 2, 2, 1) // e2, same cost as e1
				return g
			},
			src: 0, dst: 2, k: 4,
			wantEdges: [][]EdgeID{{0, 1}, {0, 2}},
			wantCosts: []float64{3, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			for run := 0; run < 2; run++ {
				ps := g.KShortestPaths(tc.src, tc.dst, tc.k, nil)
				if len(ps) != len(tc.wantEdges) {
					t.Fatalf("run %d: got %d paths, want %d", run, len(ps), len(tc.wantEdges))
				}
				for i, p := range ps {
					if p.Cost != tc.wantCosts[i] {
						t.Fatalf("run %d: path %d cost = %v, want %v", run, i, p.Cost, tc.wantCosts[i])
					}
					if len(p.Edges) != len(tc.wantEdges[i]) {
						t.Fatalf("run %d: path %d edges = %v, want %v", run, i, p.Edges, tc.wantEdges[i])
					}
					for j, eid := range p.Edges {
						if eid != tc.wantEdges[i][j] {
							t.Fatalf("run %d: path %d edges = %v, want %v", run, i, p.Edges, tc.wantEdges[i])
						}
					}
					if err := p.Validate(g); err != nil {
						t.Fatalf("run %d: path %d invalid: %v", run, i, err)
					}
				}
			}
		})
	}
}
