package graph

import (
	"math"
	"sync"
)

// pqItem is an entry in the Dijkstra priority queue.
type pqItem struct {
	node NodeID
	dist float64
}

// pq is a binary min-heap on dist. push/pop inline the exact sift
// order of container/heap (same comparisons, same swaps), so the pop
// sequence — including ties — is identical to the heap.Interface
// implementation this replaces, without boxing an interface value per
// operation.
type pq []pqItem

func (q *pq) push(it pqItem) {
	s := append(*q, it)
	*q = s
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (q *pq) pop() pqItem {
	s := *q
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && s[j2].dist < s[j].dist {
			j = j2
		}
		if !(s[j].dist < s[i].dist) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*q = s[:n]
	return it
}

// ShortestTree holds the result of a single-source shortest-path run:
// per-node distance and the incoming edge on the shortest path.
type ShortestTree struct {
	Source NodeID
	Dist   []float64
	Parent []EdgeID // incoming edge on shortest path, Undefined at source/unreachable
}

// Reachable reports whether n has a finite distance from the source.
func (t *ShortestTree) Reachable(n NodeID) bool {
	return !math.IsInf(t.Dist[n], 1)
}

// PathTo reconstructs the shortest path from the tree's source to dst.
// It returns a zero-length path with infinite cost when dst is
// unreachable, and an empty path with zero cost when dst == source.
func (t *ShortestTree) PathTo(g *Graph, dst NodeID) Path {
	if !t.Reachable(dst) {
		return Path{Cost: math.Inf(1)}
	}
	var rev []EdgeID
	for n := dst; n != t.Source; {
		eid := t.Parent[n]
		if eid == Undefined {
			return Path{Cost: math.Inf(1)}
		}
		rev = append(rev, eid)
		n = g.edges[eid].From
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return Path{Edges: rev, Cost: t.Dist[dst]}
}

// EdgeFilter restricts which edges an algorithm may traverse. A nil
// filter admits every enabled edge. Disabled edges are always skipped
// regardless of the filter. The Edge pointer aliases the graph's edge
// storage and is valid only for the duration of the call; filters
// must not retain or mutate it.
type EdgeFilter func(id EdgeID, e *Edge) bool

// pqPool recycles priority-queue backing arrays across one-shot
// Dijkstra runs; the heap is the only scratch that does not escape to
// the caller.
var pqPool = sync.Pool{New: func() interface{} { return new(pq) }}

// dijkstraInto runs the Dijkstra loop from src over t's Dist/Parent
// slices (already sized and initialized) using q as heap scratch.
// trace, when non-nil, is a bitset over EdgeIDs: every edge that wins
// a relaxation — i.e. writes Dist/Parent and pushes, even if a later
// relaxation overwrites it — gets its bit set. Edges that never win a
// relaxation leave no mark on the run's observable state (no writes,
// no pushes, no heap reordering), which is what makes the trace a
// sound influence certificate for incremental recheck memoization.
func dijkstraInto(g *Graph, src NodeID, filter EdgeFilter, t *ShortestTree, q *pq, trace []uint64) {
	*q = append((*q)[:0], pqItem{node: src})
	for len(*q) > 0 {
		it := q.pop()
		if it.dist > t.Dist[it.node] {
			continue // stale entry
		}
		for _, eid := range g.adj[it.node] {
			e := &g.edges[eid]
			if e.Disabled || (filter != nil && !filter(eid, e)) {
				continue
			}
			nd := it.dist + e.Cost
			if nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Parent[e.To] = eid
				q.push(pqItem{node: e.To, dist: nd})
				if trace != nil {
					trace[eid>>6] |= 1 << (uint(eid) & 63)
				}
			}
		}
	}
}

// Dijkstra computes single-source shortest paths from src using edge
// costs. Edges rejected by filter (or disabled) are not traversed.
func (g *Graph) Dijkstra(src NodeID, filter EdgeFilter) *ShortestTree {
	n := g.NumNodes()
	t := &ShortestTree{
		Source: src,
		Dist:   make([]float64, n),
		Parent: make([]EdgeID, n),
	}
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Parent[i] = Undefined
	}
	t.Dist[src] = 0

	q := pqPool.Get().(*pq)
	dijkstraInto(g, src, filter, t, q, nil)
	pqPool.Put(q)
	return t
}

// TreeRouter computes single-source shortest-path trees with reusable
// scratch (dist/parent/heap), avoiding per-call allocation across
// repeated runs on the same graph. Not safe for concurrent use; use
// one TreeRouter per goroutine.
type TreeRouter struct {
	g     *Graph
	t     ShortestTree
	q     pq
	trace []uint64
}

// NewTreeRouter returns a reusable single-source engine bound to g.
func NewTreeRouter(g *Graph) *TreeRouter { return &TreeRouter{g: g} }

// SetTrace installs (or, with nil, removes) a relaxation trace bitset:
// while set, every Tree call ORs a bit into trace for each edge that
// wins a relaxation. The bitset must span the graph's edge IDs
// (NumEdges bits). Tracing never changes routing results — it only
// observes the winner of each relaxation.
func (tr *TreeRouter) SetTrace(trace []uint64) { tr.trace = trace }

// Tree computes the shortest-path tree from src, identical to
// g.Dijkstra(src, filter). The returned tree shares the router's
// scratch buffers: it is valid only until the next Tree call and must
// not be retained.
func (tr *TreeRouter) Tree(src NodeID, filter EdgeFilter) *ShortestTree {
	n := tr.g.NumNodes()
	if cap(tr.t.Dist) < n {
		tr.t.Dist = make([]float64, n)
		tr.t.Parent = make([]EdgeID, n)
	}
	t := &tr.t
	t.Source = src
	t.Dist = t.Dist[:n]
	t.Parent = t.Parent[:n]
	for i := range t.Dist {
		t.Dist[i] = math.Inf(1)
		t.Parent[i] = Undefined
	}
	t.Dist[src] = 0
	dijkstraInto(tr.g, src, filter, t, &tr.q, tr.trace)
	return t
}

// ShortestPath returns the cheapest path from src to dst, or a path
// with infinite cost if none exists.
func (g *Graph) ShortestPath(src, dst NodeID, filter EdgeFilter) Path {
	if src == dst {
		return Path{}
	}
	return g.Dijkstra(src, filter).PathTo(g, dst)
}
