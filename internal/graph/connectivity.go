package graph

// BFS visits nodes reachable from src over enabled edges admitted by
// filter, in breadth-first order, calling visit for each node
// (including src). If visit returns false the traversal stops.
func (g *Graph) BFS(src NodeID, filter EdgeFilter, visit func(NodeID) bool) {
	seen := make([]bool, g.NumNodes())
	seen[src] = true
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if !visit(u) {
			return
		}
		for _, eid := range g.adj[u] {
			e := &g.edges[eid]
			if e.Disabled || (filter != nil && !filter(eid, e)) || seen[e.To] {
				continue
			}
			seen[e.To] = true
			queue = append(queue, e.To)
		}
	}
}

// Reachable reports whether dst is reachable from src.
func (g *Graph) Reachable(src, dst NodeID, filter EdgeFilter) bool {
	found := false
	g.BFS(src, filter, func(n NodeID) bool {
		if n == dst {
			found = true
			return false
		}
		return true
	})
	return found
}

// Components returns the weakly connected components of the graph over
// enabled edges, each as a sorted slice of node IDs. Direction is
// ignored (an enabled edge connects both endpoints).
func (g *Graph) Components() [][]NodeID {
	n := g.NumNodes()
	// Union-find.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range g.edges {
		if !e.Disabled {
			union(int(e.From), int(e.To))
		}
	}
	groups := make(map[int][]NodeID)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], NodeID(i))
	}
	out := make([][]NodeID, 0, len(groups))
	for _, nodes := range groups {
		out = append(out, nodes)
	}
	// Deterministic order: by smallest member.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j][0] < out[i][0] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// Connected reports whether all nodes with at least one enabled
// incident edge belong to a single weak component. Isolated nodes are
// ignored, because an auctioned link set typically does not cover
// every node of the offer graph.
func (g *Graph) Connected() bool {
	touched := make([]bool, g.NumNodes())
	for _, e := range g.edges {
		if !e.Disabled {
			touched[e.From] = true
			touched[e.To] = true
		}
	}
	comps := g.Components()
	active := 0
	for _, c := range comps {
		hasTouched := false
		for _, n := range c {
			if touched[n] {
				hasTouched = true
				break
			}
		}
		if hasTouched {
			active++
		}
	}
	return active <= 1
}
