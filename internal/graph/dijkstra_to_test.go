package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointRouterMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 60)
		pr := NewPointRouter(g)
		for dst := 1; dst < g.NumNodes(); dst++ {
			want := g.ShortestPath(0, NodeID(dst), nil)
			got := pr.Path(0, NodeID(dst), nil)
			if math.IsInf(want.Cost, 1) != math.IsInf(got.Cost, 1) {
				return false
			}
			if !math.IsInf(want.Cost, 1) && math.Abs(want.Cost-got.Cost) > 1e-9 {
				return false
			}
			if got.Validate(g) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPointRouterReusableAcrossCalls(t *testing.T) {
	g := diamond()
	pr := NewPointRouter(g)
	// Many interleaved queries with different sources must not leak
	// state (the epoch mechanism resets lazily).
	for i := 0; i < 100; i++ {
		if p := pr.Path(0, 3, nil); p.Cost != 2 {
			t.Fatalf("iteration %d: cost %v", i, p.Cost)
		}
		if p := pr.Path(2, 3, nil); p.Cost != 2 {
			t.Fatalf("iteration %d: reverse cost %v", i, p.Cost)
		}
		if p := pr.Path(3, 0, nil); !math.IsInf(p.Cost, 1) {
			t.Fatalf("iteration %d: unreachable returned %v", i, p.Cost)
		}
	}
}

func TestPointRouterSelf(t *testing.T) {
	g := diamond()
	pr := NewPointRouter(g)
	p := pr.Path(1, 1, nil)
	if p.Cost != 0 || len(p.Edges) != 0 {
		t.Fatalf("self path = %+v", p)
	}
}

func TestPointRouterHonorsEdgeMutations(t *testing.T) {
	g := diamond()
	pr := NewPointRouter(g)
	if p := pr.Path(0, 3, nil); p.Cost != 2 {
		t.Fatalf("cost = %v", p.Cost)
	}
	g.SetDisabled(0, true)
	if p := pr.Path(0, 3, nil); p.Cost != 4 {
		t.Fatalf("after disable: cost = %v, want 4", p.Cost)
	}
	g.SetDisabled(0, false)
	if p := pr.Path(0, 3, nil); p.Cost != 2 {
		t.Fatalf("after re-enable: cost = %v, want 2", p.Cost)
	}
}

func TestPointRouterFilter(t *testing.T) {
	g := diamond()
	pr := NewPointRouter(g)
	p := pr.Path(0, 3, func(id EdgeID, e *Edge) bool { return id != 0 })
	if p.Cost != 4 {
		t.Fatalf("filtered cost = %v, want 4", p.Cost)
	}
}

func BenchmarkPointRouterVsDijkstra(b *testing.B) {
	g := randomGraph(7, 60, 400)
	pr := NewPointRouter(g)
	b.Run("pointrouter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pr.Path(0, NodeID(g.NumNodes()-1), nil)
		}
	})
	b.Run("full-dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.ShortestPath(0, NodeID(g.NumNodes()-1), nil)
		}
	})
}
