package graph

import (
	"math"
)

// dijkstraScratch is reusable state for repeated point-to-point
// Dijkstra runs on the same graph, avoiding per-call allocation. It is
// not safe for concurrent use.
type dijkstraScratch struct {
	dist   []float64
	parent []EdgeID
	epoch  []uint32
	cur    uint32
	q      pq
}

// NewPointRouter returns a reusable point-to-point shortest-path
// engine bound to g's node count. The engine reads g's edges on every
// call, so edge mutations (capacity, disabled) between calls are
// honored; adding nodes is not.
func NewPointRouter(g *Graph) *PointRouter {
	n := g.NumNodes()
	return &PointRouter{
		g: g,
		s: dijkstraScratch{
			dist:   make([]float64, n),
			parent: make([]EdgeID, n),
			epoch:  make([]uint32, n),
		},
	}
}

// PointRouter computes point-to-point shortest paths with early
// termination and zero steady-state allocation. Not concurrency-safe.
type PointRouter struct {
	g     *Graph
	s     dijkstraScratch
	trace []uint64
}

// SetTrace installs (or, with nil, removes) a relaxation trace bitset
// with the same contract as TreeRouter.SetTrace: every edge that wins
// a relaxation in a Path/PathInto call — including first-touch wins —
// gets its bit ORed in. Tracing never changes results.
func (pr *PointRouter) SetTrace(trace []uint64) { pr.trace = trace }

// Path returns the cheapest src→dst path, or a path with +Inf cost if
// none exists. The returned path's Edges slice is freshly allocated
// and owned by the caller.
func (pr *PointRouter) Path(src, dst NodeID, filter EdgeFilter) Path {
	edges, cost := pr.PathInto(nil, src, dst, filter)
	return Path{Edges: edges, Cost: cost}
}

// PathInto is Path appending into a caller-provided buffer (typically
// scratch[:0] of a reused slice), so steady-state calls allocate
// nothing once the buffer has grown to the longest path seen. It
// returns the edge sequence and its cost; on an unreachable pair the
// buffer is returned unextended with +Inf cost, and src == dst yields
// an empty sequence at cost 0.
func (pr *PointRouter) PathInto(buf []EdgeID, src, dst NodeID, filter EdgeFilter) ([]EdgeID, float64) {
	if src == dst {
		return buf, 0
	}
	g := pr.g
	s := &pr.s
	s.cur++
	cur := s.cur
	s.epoch[src] = cur
	s.dist[src] = 0
	s.parent[src] = Undefined
	s.q = append(s.q[:0], pqItem{node: src})
	for len(s.q) > 0 {
		it := s.q.pop()
		if it.dist > s.dist[it.node] {
			continue
		}
		if it.node == dst {
			break // settled: done
		}
		for _, eid := range g.adj[it.node] {
			e := &g.edges[eid]
			if e.Disabled || (filter != nil && !filter(eid, e)) {
				continue
			}
			// A stale epoch means "unvisited this run" (dist +Inf), so
			// the relaxation always takes that branch; otherwise the
			// usual strict improvement test applies.
			nd := it.dist + e.Cost
			to := e.To
			if s.epoch[to] != cur {
				s.epoch[to] = cur
			} else if nd >= s.dist[to] {
				continue
			}
			s.dist[to] = nd
			s.parent[to] = eid
			s.q.push(pqItem{node: to, dist: nd})
			if pr.trace != nil {
				pr.trace[eid>>6] |= 1 << (uint(eid) & 63)
			}
		}
	}
	if s.epoch[dst] != cur || math.IsInf(s.dist[dst], 1) {
		return buf, math.Inf(1)
	}
	start := len(buf)
	for n := dst; n != src; {
		eid := s.parent[n]
		buf = append(buf, eid)
		n = g.edges[eid].From
	}
	rev := buf[start:]
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return buf, s.dist[dst]
}
