// Package graph provides the directed multigraph model and the routing
// algorithms shared by the provisioning engine (winner determination for
// the bandwidth auction) and the fabric simulator.
//
// The graph is deliberately small and value-oriented: nodes are dense
// integer IDs, edges are stored in a flat slice and referenced by index,
// and adjacency is a slice of edge indices per node. This keeps Dijkstra
// and max-flow allocation-free in steady state, which matters because the
// auction's winner-determination step runs feasibility checks across
// thousands of candidate link subsets.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a node in a Graph. IDs are dense: a graph with N
// nodes uses IDs 0..N-1.
type NodeID int

// EdgeID identifies an edge by its index in the graph's edge slice.
type EdgeID int

// Undefined is returned by lookups that find no node or edge.
const Undefined = -1

// Edge is a directed edge with a routing cost and a capacity.
//
// The provisioning engine treats Cost as the routing metric (typically
// link latency or distance) and Capacity as the leased bandwidth in
// Gbps. Disabled edges remain in the slice (so EdgeIDs stay stable) but
// are skipped by all algorithms; the auction uses this to evaluate
// subsets of the offered links without rebuilding the graph.
type Edge struct {
	From     NodeID
	To       NodeID
	Cost     float64
	Capacity float64
	Disabled bool
}

// Graph is a directed multigraph. The zero value is an empty graph
// ready to use.
type Graph struct {
	edges []Edge
	adj   [][]EdgeID // outgoing edge indices per node
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]EdgeID, n)}
}

// Clone returns a deep copy of g. Mutating the clone's edges (for
// example disabling them during a failure sweep) does not affect g.
// The adjacency rows are carved out of one flat allocation (full-cap
// slices, so an append to one row cannot clobber its neighbour).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		edges: append([]Edge(nil), g.edges...),
		adj:   make([][]EdgeID, len(g.adj)),
	}
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	flat := make([]EdgeID, 0, total)
	for i, a := range g.adj {
		if len(a) == 0 {
			continue
		}
		start := len(flat)
		flat = append(flat, a...)
		c.adj[i] = flat[start:len(flat):len(flat)]
	}
	return c
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges, including disabled ones.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a new node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	return NodeID(len(g.adj) - 1)
}

// AddEdge appends a directed edge and returns its ID. Cost must be
// non-negative; a negative capacity is treated as unbounded.
func (g *Graph) AddEdge(from, to NodeID, cost, capacity float64) EdgeID {
	if from < 0 || int(from) >= len(g.adj) || to < 0 || int(to) >= len(g.adj) {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range for %d nodes", from, to, len(g.adj)))
	}
	if cost < 0 {
		panic(fmt.Sprintf("graph: negative edge cost %v", cost))
	}
	if capacity < 0 {
		capacity = math.Inf(1)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{From: from, To: to, Cost: cost, Capacity: capacity})
	g.adj[from] = append(g.adj[from], id)
	return id
}

// AddBiEdge adds a pair of directed edges (one per direction) with the
// same cost and capacity and returns both IDs.
func (g *Graph) AddBiEdge(a, b NodeID, cost, capacity float64) (EdgeID, EdgeID) {
	return g.AddEdge(a, b, cost, capacity), g.AddEdge(b, a, cost, capacity)
}

// Edge returns a copy of the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge {
	return g.edges[id]
}

// SetDisabled marks an edge (not) usable by the algorithms.
func (g *Graph) SetDisabled(id EdgeID, disabled bool) {
	g.edges[id].Disabled = disabled
}

// SetCapacity overwrites an edge's capacity.
func (g *Graph) SetCapacity(id EdgeID, capacity float64) {
	if capacity < 0 {
		capacity = math.Inf(1)
	}
	g.edges[id].Capacity = capacity
}

// Out returns the IDs of the outgoing edges of n, including disabled
// ones. The returned slice must not be modified.
func (g *Graph) Out(n NodeID) []EdgeID { return g.adj[n] }

// Degree returns the number of enabled outgoing edges of n.
func (g *Graph) Degree(n NodeID) int {
	d := 0
	for _, id := range g.adj[n] {
		if !g.edges[id].Disabled {
			d++
		}
	}
	return d
}

// Path is a sequence of edge IDs forming a walk from a source to a
// destination, together with its total routing cost.
type Path struct {
	Edges []EdgeID
	Cost  float64
}

// Nodes returns the node sequence of the path in g, starting at the
// first edge's From node. An empty path returns nil.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p.Edges) == 0 {
		return nil
	}
	nodes := make([]NodeID, 0, len(p.Edges)+1)
	nodes = append(nodes, g.edges[p.Edges[0]].From)
	for _, id := range p.Edges {
		nodes = append(nodes, g.edges[id].To)
	}
	return nodes
}

// MinCapacity returns the smallest capacity along the path, or +Inf for
// an empty path.
func (p Path) MinCapacity(g *Graph) float64 {
	min := math.Inf(1)
	for _, id := range p.Edges {
		if c := g.edges[id].Capacity; c < min {
			min = c
		}
	}
	return min
}

// Validate checks that the path's edges are contiguous in g and
// returns an error describing the first inconsistency.
func (p Path) Validate(g *Graph) error {
	for i := 1; i < len(p.Edges); i++ {
		prev, cur := g.edges[p.Edges[i-1]], g.edges[p.Edges[i]]
		if prev.To != cur.From {
			return fmt.Errorf("graph: path discontinuous at hop %d: edge %d ends at %d, edge %d starts at %d",
				i, p.Edges[i-1], prev.To, p.Edges[i], cur.From)
		}
	}
	return nil
}

// EdgesBetween returns the IDs of enabled edges from a to b, sorted by
// ascending cost.
func (g *Graph) EdgesBetween(a, b NodeID) []EdgeID {
	var out []EdgeID
	for _, id := range g.adj[a] {
		e := g.edges[id]
		if !e.Disabled && e.To == b {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return g.edges[out[i]].Cost < g.edges[out[j]].Cost })
	return out
}
