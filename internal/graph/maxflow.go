package graph

import "math"

// MaxFlow computes the maximum s→t flow over the enabled edges of g
// using Edmonds–Karp (BFS augmenting paths). Edge capacities are read
// from the graph; infinite capacities are supported. The graph itself
// is not modified.
//
// The provisioning engine uses max-flow both to verify point-to-point
// deliverability of a demand and to compute cut bounds that prune the
// winner-determination search.
func (g *Graph) MaxFlow(s, t NodeID, filter EdgeFilter) float64 {
	if s == t {
		return math.Inf(1)
	}
	n := g.NumNodes()
	m := g.NumEdges()

	// Residual capacities: forward per edge plus a reverse residual per
	// edge (indexed m+id).
	res := make([]float64, 2*m)
	for i, e := range g.edges {
		if e.Disabled || (filter != nil && !filter(EdgeID(i), &g.edges[i])) {
			continue
		}
		res[i] = e.Capacity
	}

	// Residual adjacency: for each node, the residual arc indices that
	// leave it. Forward arc i leaves edges[i].From; reverse arc m+i
	// leaves edges[i].To.
	radj := make([][]int32, n)
	for i, e := range g.edges {
		if res[i] <= 0 {
			continue
		}
		radj[e.From] = append(radj[e.From], int32(i))
		radj[e.To] = append(radj[e.To], int32(m+i))
	}

	arcTo := func(a int) NodeID {
		if a < m {
			return g.edges[a].To
		}
		return g.edges[a-m].From
	}
	arcRev := func(a int) int {
		if a < m {
			return a + m
		}
		return a - m
	}

	total := 0.0
	parent := make([]int32, n) // residual arc used to reach node
	queue := make([]NodeID, 0, n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		queue = append(queue[:0], s)
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range radj[u] {
				if res[a] <= 1e-12 {
					continue
				}
				v := arcTo(int(a))
				if parent[v] != -1 {
					continue
				}
				parent[v] = a
				if v == t {
					found = true
					break bfs
				}
				queue = append(queue, v)
			}
		}
		if !found {
			return total
		}
		// Find bottleneck.
		bottleneck := math.Inf(1)
		for v := t; v != s; {
			a := int(parent[v])
			if res[a] < bottleneck {
				bottleneck = res[a]
			}
			if a < m {
				v = g.edges[a].From
			} else {
				v = g.edges[a-m].To
			}
		}
		if math.IsInf(bottleneck, 1) {
			return math.Inf(1) // an all-infinite augmenting path
		}
		// Apply.
		for v := t; v != s; {
			a := int(parent[v])
			res[a] -= bottleneck
			res[arcRev(a)] += bottleneck
			if a < m {
				v = g.edges[a].From
			} else {
				v = g.edges[a-m].To
			}
		}
		total += bottleneck
	}
}

// MinCut returns the capacity of the minimum s→t cut, which equals the
// max flow, along with the set of nodes on the source side of the cut.
func (g *Graph) MinCut(s, t NodeID, filter EdgeFilter) (float64, []NodeID) {
	flow := g.MaxFlow(s, t, filter)
	// Re-run a residual BFS to find the source side. We recompute the
	// residual network by pushing the max flow again; simpler and still
	// O(VE^2) overall: rerun Edmonds-Karp capturing residuals.
	n := g.NumNodes()
	m := g.NumEdges()
	res := make([]float64, 2*m)
	for i, e := range g.edges {
		if e.Disabled || (filter != nil && !filter(EdgeID(i), &g.edges[i])) {
			continue
		}
		res[i] = e.Capacity
	}
	radj := make([][]int32, n)
	for i, e := range g.edges {
		if res[i] <= 0 {
			continue
		}
		radj[e.From] = append(radj[e.From], int32(i))
		radj[e.To] = append(radj[e.To], int32(m+i))
	}
	arcTo := func(a int) NodeID {
		if a < m {
			return g.edges[a].To
		}
		return g.edges[a-m].From
	}
	arcRev := func(a int) int {
		if a < m {
			return a + m
		}
		return a - m
	}
	parent := make([]int32, n)
	queue := make([]NodeID, 0, n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		queue = append(queue[:0], s)
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range radj[u] {
				if res[a] <= 1e-12 {
					continue
				}
				v := arcTo(int(a))
				if parent[v] != -1 {
					continue
				}
				parent[v] = a
				if v == t {
					found = true
					break bfs
				}
				queue = append(queue, v)
			}
		}
		if !found {
			// parent[] marks the source side.
			var side []NodeID
			for i, p := range parent {
				if p != -1 {
					side = append(side, NodeID(i))
				}
			}
			return flow, side
		}
		bottleneck := math.Inf(1)
		for v := t; v != s; {
			a := int(parent[v])
			if res[a] < bottleneck {
				bottleneck = res[a]
			}
			if a < m {
				v = g.edges[a].From
			} else {
				v = g.edges[a-m].To
			}
		}
		if math.IsInf(bottleneck, 1) {
			bottleneck = 1e18
		}
		for v := t; v != s; {
			a := int(parent[v])
			res[a] -= bottleneck
			res[arcRev(a)] += bottleneck
			if a < m {
				v = g.edges[a].From
			} else {
				v = g.edges[a-m].To
			}
		}
	}
}
