package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the still-unpublished command-line protocol
// cmd/go speaks to a `go vet -vettool=` binary (the same protocol as
// golang.org/x/tools/go/analysis/unitchecker, re-derived here from
// cmd/go/internal/work/exec.go so the tool builds offline from the
// standard library):
//
//   - `tool -flags` must print a JSON array of the tool's flags.
//   - `tool -V=full` must print one "name version ..." line (build
//     cache fingerprinting).
//   - `tool [flags] path/to/vet.cfg` must type-check the single
//     package described by the JSON config, print diagnostics to
//     stderr as "file:line:col: message", write the (possibly empty)
//     facts file to VetxOutput, and exit 0 (clean) / 2 (findings).
//
// Type-checking uses the export data cmd/go already compiled for every
// dependency (Config.PackageFile), loaded through go/importer's
// lookup hook — no source re-typechecking, so the whole-tree run adds
// only seconds on top of the build.

// Config mirrors cmd/go's vetConfig: the description of one package.
type Config struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary built from this
// framework (cmd/poclint). It never returns.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// Protocol queries, answered before general flag parsing because
	// cmd/go issues them with exactly one argument.
	if len(args) == 1 && args[0] == "-flags" {
		printFlagDefs(analyzers)
		os.Exit(0)
	}
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		printVersion(progname)
		os.Exit(0)
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-analyzer=false ...] vet.cfg\n\n", progname)
		fmt.Fprintf(os.Stderr, "%s is this repo's invariant checker; run it via\n", progname)
		fmt.Fprintf(os.Stderr, "\tgo vet -vettool=$(which %s) ./...\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	fs.Parse(args)
	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fs.Usage()
		os.Exit(2)
	}
	var run []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}

	diags, err := AnalyzeUnit(fs.Arg(0), run)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// AnalyzeUnit loads the package described by the vet.cfg file at
// cfgPath, computes its facts (reading dependency facts from the
// PackageVetx files cmd/go threads between units), writes them to
// VetxOutput, and — unless this is a facts-only dependency pass —
// runs the analyzers and returns the surviving diagnostics.
func AnalyzeUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	writeFacts := func(pf *PackageFacts) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		enc, err := EncodeFacts(pf)
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, enc, 0o666)
	}
	// A dependency (facts-only) pass must never fail the build over a
	// package we cannot fully analyze (assembly-backed std internals,
	// cgo): empty facts just mean the importer's analyzers see no
	// summaries for it, the exact v1 behavior.
	fail := func(err error) ([]Diagnostic, error) {
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			return nil, writeFacts(NewPackageFacts(cfg.ImportPath))
		}
		return nil, err
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fail(err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect only the first, via the return below
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return fail(fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err))
	}

	imports := loadDepFacts(cfg)
	if cfg.VetxOnly {
		pf, _ := ComputeFacts(fset, files, pkg, info, cfg.ImportPath, imports)
		return nil, writeFacts(pf)
	}
	diags, pf, err := RunAnalyzersWithFacts(analyzers, fset, files, pkg, info, cfg.ImportPath, imports)
	if err != nil {
		return nil, err
	}
	return diags, writeFacts(pf)
}

// loadDepFacts reads the facts files of every dependency cmd/go ran a
// facts pass for. Unreadable or stale files decode as empty — a
// missing summary can only silence a fact-consuming analyzer, never
// break the run.
func loadDepFacts(cfg Config) map[string]*PackageFacts {
	imports := make(map[string]*PackageFacts, len(cfg.PackageVetx))
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		pf, err := DecodeFacts(data)
		if err != nil || pf == nil {
			continue
		}
		if pf.Path == "" {
			pf.Path = path
		}
		imports[path] = pf
	}
	return imports
}

// printFlagDefs answers `tool -flags`: cmd/go parses this JSON to
// learn which flags it may forward to the tool.
func printFlagDefs(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := make([]jsonFlag, 0, len(analyzers))
	for _, a := range analyzers {
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer"})
	}
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		panic(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// printVersion answers `tool -V=full` with a line keyed to the
// binary's own content hash, the same shape x/tools' unitchecker
// prints, so build caching invalidates when the tool changes.
func printVersion(progname string) {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}
