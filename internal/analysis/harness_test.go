package analysis

// An analysistest-style harness built on the source importer: each
// testdata package under testdata/src/<importpath> is parsed,
// type-checked (resolving sibling testdata packages first, then the
// standard library), run through one analyzer plus the //lint:allow
// driver pass, and its diagnostics are matched against `// want "re"`
// comments the same way golang.org/x/tools/go/analysis/analysistest
// does: every want must be matched by a diagnostic on its line, every
// diagnostic must be matched by a want.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// loadedPkg is one type-checked testdata package.
type loadedPkg struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// testImporter resolves testdata sibling packages before the std
// library, loading them on demand (obsguard's consumer tests import a
// mock obs package).
type testImporter struct {
	t      *testing.T
	root   string
	loaded map[string]*loadedPkg
	// facts accumulates per-package facts in dependency order — the
	// in-process equivalent of the unitchecker's PackageVetx files, so
	// analyzer tests exercise cross-package summary consumption.
	facts map[string]*PackageFacts
	std   types.ImporterFrom
}

func (ti *testImporter) Import(path string) (*types.Package, error) {
	return ti.ImportFrom(path, "", 0)
}

func (ti *testImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if lp, err := ti.load(path); err == nil && lp != nil {
		return lp.pkg, nil
	} else if err != nil {
		return nil, err
	}
	return ti.std.ImportFrom(path, dir, mode)
}

// load type-checks the testdata package at root/src/<path>, returning
// (nil, nil) when no such directory exists (std fallback).
func (ti *testImporter) load(path string) (*loadedPkg, error) {
	if lp, ok := ti.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ti.root, "src", filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tc := &types.Config{Importer: ti}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	lp := &loadedPkg{fset: fset, files: files, pkg: pkg, info: info}
	ti.loaded[path] = lp
	// Imports were loaded (and summarized) recursively above, so their
	// facts are already in ti.facts — same bottom-up order as cmd/go.
	pf, _ := ComputeFacts(fset, files, pkg, info, path, ti.facts)
	ti.facts[path] = pf
	return lp, nil
}

// runAnalyzer loads testdata/src/<path> and returns the diagnostics
// the analyzer (plus allow-directive driver pass) produces for it.
// Applies gating is honored, so a path can also exercise exemptions.
func runAnalyzer(t *testing.T, a *Analyzer, path string) ([]Diagnostic, *loadedPkg) {
	t.Helper()
	ti := &testImporter{
		t:      t,
		root:   "testdata",
		loaded: map[string]*loadedPkg{},
		facts:  map[string]*PackageFacts{},
		std:    importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom),
	}
	lp, err := ti.load(path)
	if err != nil {
		t.Fatal(err)
	}
	if lp == nil {
		t.Fatalf("testdata package %s not found", path)
	}
	diags, _, err := RunAnalyzersWithFacts([]*Analyzer{a}, lp.fset, lp.files, lp.pkg, lp.info, path, ti.facts)
	if err != nil {
		t.Fatal(err)
	}
	return diags, lp
}

// wantRe matches the expectation comments: // want "re" "re2" ...
var wantRe = regexp.MustCompile(`// want((?: "(?:[^"\\]|\\.)*")+)`)

// checkDiagnostics cross-matches diagnostics against the package's
// `// want` comments.
func checkDiagnostics(t *testing.T, lp *loadedPkg, diags []Diagnostic) {
	t.Helper()
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := lp.fset.Position(c.Pos())
				for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// expectClean asserts the analyzer finds nothing in the package.
func expectClean(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	diags, _ := runAnalyzer(t, a, path)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in %s: %s", path, d)
	}
}

// expectWants runs the analyzer and matches its output against the
// package's want comments.
func expectWants(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	diags, lp := runAnalyzer(t, a, path)
	checkDiagnostics(t, lp, diags)
}
