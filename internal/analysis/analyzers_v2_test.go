package analysis

// Tests for the poclint v2 fact-consuming analyzers and the facts
// layer itself. The testdata trees follow the v1 convention: positive
// cases carry `// want "re"` comments, negatives none, and each
// analyzer has a sanctioned //lint:allow case.

import (
	"bytes"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func TestArenaPair(t *testing.T)    { expectWants(t, ArenaPair, "arenalab") }
func TestJournalOrder(t *testing.T) { expectWants(t, JournalOrder, "pocd/srvlab") }
func TestWriterEscape(t *testing.T) { expectWants(t, WriterEscape, "writerlab") }
func TestDeepFold(t *testing.T)     { expectWants(t, DeepFold, "deeplab") }

// Cross-package: the annotation/summary lives in the imported package;
// only the facts layer can carry it to the diagnostic site.
func TestWriterEscapeCrossPackage(t *testing.T) { expectWants(t, WriterEscape, "writerlab/client") }
func TestDeepFoldCrossPackage(t *testing.T)     { expectWants(t, DeepFold, "xfacts/use") }

// The pool/journal provider packages themselves are clean.
func TestArenaProviderClean(t *testing.T)   { expectClean(t, ArenaPair, "arenalab/pool") }
func TestJournalProviderClean(t *testing.T) { expectClean(t, JournalOrder, "pocd/journal") }

// Malformed facts directives are diagnostics in their own right.
func TestFactsDirectiveErrors(t *testing.T) { expectWants(t, ArenaPair, "dirlab") }

// TestFactsRoundTrip is the golden facts-file test: encode → decode →
// identical summaries, deterministic bytes, zero summaries stripped,
// and graceful decoding of empty or foreign-schema files.
func TestFactsRoundTrip(t *testing.T) {
	pf := NewPackageFacts("example.com/p")
	pf.Funcs["Workspace.Acquire"] = FuncSummary{Acquires: "arena"}
	pf.Funcs["Workspace.Release"] = FuncSummary{Releases: "arena", WritesRecv: true}
	pf.Funcs["Route"] = FuncSummary{FoldParams: []int{0, 2}, WallClock: true}
	pf.Funcs["Server.loop"] = FuncSummary{WritesRecv: true, Blocks: true, JournalAppend: true}
	pf.Funcs["pure"] = FuncSummary{} // zero: must be stripped
	pf.Owned["Server.st"] = []string{"New", "Server.loop"}

	enc, err := EncodeFacts(pf)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeFacts(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Path != pf.Path || dec.Schema != FactsSchema {
		t.Errorf("path/schema drifted: %+v", dec)
	}
	if _, ok := dec.Funcs["pure"]; ok {
		t.Errorf("zero summary survived encoding")
	}
	for _, key := range []string{"Workspace.Acquire", "Workspace.Release", "Route", "Server.loop"} {
		got, ok := dec.Funcs[key]
		if !ok {
			t.Errorf("summary %s lost in round trip", key)
			continue
		}
		if !summaryEqual(got, pf.Funcs[key]) {
			t.Errorf("summary %s drifted: got %+v want %+v", key, got, pf.Funcs[key])
		}
	}
	if got := dec.Owned["Server.st"]; len(got) != 2 || got[0] != "New" || got[1] != "Server.loop" {
		t.Errorf("owners drifted: %v", got)
	}

	// Byte-determinism: re-encoding the decoded facts is identical.
	enc2, err := EncodeFacts(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Errorf("facts encoding not byte-stable:\n%s\nvs\n%s", enc, enc2)
	}

	// Empty file (v1 driver wrote these) and foreign schema both
	// decode as empty fact sets, never as errors.
	if pf2, err := DecodeFacts(nil); err != nil || len(pf2.Funcs) != 0 {
		t.Errorf("empty facts file: %v %+v", err, pf2)
	}
	foreign := []byte(`{"schema":"poclint-facts/v999","path":"x","funcs":{"F":{"wall_clock":true}}}`)
	if pf3, err := DecodeFacts(foreign); err != nil || len(pf3.Funcs) != 0 {
		t.Errorf("foreign schema must decode empty: %v %+v", err, pf3)
	}
	if _, err := DecodeFacts([]byte("{not json")); err == nil {
		t.Errorf("corrupt facts file must error")
	}
}

// memLoader type-checks in-memory single-file packages, threading
// facts in dependency order — a miniature of the unitchecker driver
// for tests that need to *edit* a dependency between runs.
type memLoader struct {
	srcs   map[string]string
	loaded map[string]*loadedPkg
	facts  map[string]*PackageFacts
	std    types.ImporterFrom
}

func newMemLoader(srcs map[string]string) *memLoader {
	return &memLoader{
		srcs:   srcs,
		loaded: map[string]*loadedPkg{},
		facts:  map[string]*PackageFacts{},
		std:    importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom),
	}
}

func (ml *memLoader) Import(path string) (*types.Package, error) {
	return ml.ImportFrom(path, "", 0)
}

func (ml *memLoader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	lp, err := ml.load(path)
	if err != nil {
		return nil, err
	}
	if lp != nil {
		return lp.pkg, nil
	}
	return ml.std.ImportFrom(path, dir, mode)
}

func (ml *memLoader) load(path string) (*loadedPkg, error) {
	if lp, ok := ml.loaded[path]; ok {
		return lp, nil
	}
	src, ok := ml.srcs[path]
	if !ok {
		return nil, nil
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tc := &types.Config{Importer: ml}
	pkg, err := tc.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{fset: fset, files: []*ast.File{f}, pkg: pkg, info: info}
	ml.loaded[path] = lp
	pf, _ := ComputeFacts(fset, lp.files, pkg, info, path, ml.facts)
	ml.facts[path] = pf
	return lp, nil
}

func (ml *memLoader) run(t *testing.T, a *Analyzer, path string) []Diagnostic {
	t.Helper()
	lp, err := ml.load(path)
	if err != nil {
		t.Fatal(err)
	}
	if lp == nil {
		t.Fatalf("package %s not found", path)
	}
	diags, _, err := RunAnalyzersWithFacts([]*Analyzer{a}, lp.fset, lp.files, lp.pkg, lp.info, path, ml.facts)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

const staleConsumerSrc = `package use

import "dep"

func Sum(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		dep.AddTo(&t, v)
	}
	return t
}
`

// TestStaleFacts proves diagnostics track the dependency's *current*
// facts: the same consumer source is clean against a fold-free
// dependency and flagged after the dependency is edited to fold —
// i.e. cached facts for the old dependency would be stale and must be
// recomputed, which is exactly what cmd/go's vetx invalidation (and
// this in-process loader) does.
func TestStaleFacts(t *testing.T) {
	clean := newMemLoader(map[string]string{
		"dep": "package dep\n\nfunc AddTo(dst *float64, v float64) { *dst = v }\n",
		"use": staleConsumerSrc,
	})
	if diags := clean.run(t, DeepFold, "use"); len(diags) != 0 {
		t.Fatalf("fold-free dependency must be clean, got %v", diags)
	}

	edited := newMemLoader(map[string]string{
		"dep": "package dep\n\nfunc AddTo(dst *float64, v float64) { *dst += v }\n",
		"use": staleConsumerSrc,
	})
	diags := edited.run(t, DeepFold, "use")
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "AddTo folds floats") {
		t.Fatalf("edited dependency must flag the consumer, got %v", diags)
	}
}

// TestOwnerDirectiveMalformed covers the //lint:owner error path that
// cannot carry a same-line want comment (the comment text would parse
// as owner names).
func TestOwnerDirectiveMalformed(t *testing.T) {
	ml := newMemLoader(map[string]string{
		"ownbad": "package ownbad\n\ntype S struct {\n\t//lint:owner\n\tn int\n}\n",
	})
	lp, err := ml.load("ownbad")
	if err != nil {
		t.Fatal(err)
	}
	_, diags := ComputeFacts(lp.fset, lp.files, lp.pkg, lp.info, "ownbad", nil)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "//lint:owner") {
		t.Fatalf("want one malformed-owner diagnostic, got %v", diags)
	}
}

// TestSummaryFixpoint asserts the summary lattice directly on a small
// package: transitive wall clocks, fold relocation through wrappers,
// and journal-append propagation.
func TestSummaryFixpoint(t *testing.T) {
	ml := newMemLoader(map[string]string{
		"fix": `package fix

import "time"

type Acc struct{ total float64 }

func (a *Acc) Add(v float64) { a.total += v }

func AddVia(a *Acc, v float64) { a.Add(v) }

func Stamp() int64 { return time.Now().UnixNano() }

func StampVia() int64 { return Stamp() }
`,
	})
	if _, err := ml.load("fix"); err != nil {
		t.Fatal(err)
	}
	facts := ml.facts["fix"]
	if s := facts.Funcs["Acc.Add"]; !s.FoldRecv {
		t.Errorf("Acc.Add: want FoldRecv, got %+v", s)
	}
	// The receiver fold relocates to parameter 0 of the wrapper.
	if s := facts.Funcs["AddVia"]; len(s.FoldParams) != 1 || s.FoldParams[0] != 0 {
		t.Errorf("AddVia: want FoldParams [0], got %+v", s)
	}
	if s := facts.Funcs["Stamp"]; !s.WallClock {
		t.Errorf("Stamp: want WallClock, got %+v", s)
	}
	if s := facts.Funcs["StampVia"]; !s.WallClock {
		t.Errorf("StampVia: want transitive WallClock, got %+v", s)
	}
}
