package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// This file is poclint's facts layer: the serializable per-package
// summaries that make the v2 analyzers interprocedural. A package's
// facts are computed once (by the summary pass in summary.go), written
// to the vet facts file cmd/go already threads between vet units
// (Config.VetxOutput / Config.PackageVetx — see unitchecker.go), and
// loaded by every importer. Analyzers therefore see the effects of
// called functions across package boundaries instead of going blind at
// the first call whose callee lives elsewhere: exactly the hole the
// PR 3 bug class hid in.
//
// The test harness is the in-process fallback driver: it computes the
// same facts recursively for testdata packages without serializing
// (harness_test.go), so analyzer tests exercise cross-package
// consumption without shelling out to cmd/go.

// FactsSchema tags the facts-file encoding. Decoders reject files with
// a different schema (a stale cache entry from a future format decodes
// as empty rather than as garbage).
const FactsSchema = "poclint-facts/v1"

// FuncSummary is the per-function effect summary the analyzers
// consume. A summary answers "what can calling this function do that
// poclint's invariants care about?" without re-reading its body.
type FuncSummary struct {
	// FoldRecv/FoldParams/FoldGlobal locate order-sensitive float
	// accumulation performed by the function (directly or through
	// calls): into state reachable from its receiver, from the i-th
	// parameter, or from captured/package-level state. Float addition
	// is not associative, so calling such a function from an
	// unordered context (map range, goroutine) perturbs bytes unless
	// the fold target is private to the iteration.
	FoldRecv   bool  `json:"fold_recv,omitempty"`
	FoldParams []int `json:"fold_params,omitempty"`
	FoldGlobal bool  `json:"fold_global,omitempty"`

	// WallClock reports a wall-clock read (time.Now & friends),
	// directly or transitively.
	WallClock bool `json:"wall_clock,omitempty"`
	// GlobalRand reports a draw from math/rand's process-global
	// source, directly or transitively.
	GlobalRand bool `json:"global_rand,omitempty"`
	// Blocks reports potentially blocking operations: channel sends/
	// receives/selects, mutex Lock/RLock, WaitGroup.Wait, file Sync.
	Blocks bool `json:"blocks,omitempty"`
	// WritesRecv reports that the method assigns receiver state:
	// fields of the receiver, or (transitively) calls a WritesRecv
	// method on the receiver or one of its fields. journalorder uses
	// it to recognize state mutations behind helper calls.
	WritesRecv bool `json:"writes_recv,omitempty"`

	// Acquires/Releases carry the //lint:acquire <kind> and
	// //lint:release <kind> directives: the function hands out (or
	// takes back) a pooled resource of that kind. arenapair pairs the
	// two flow-sensitively.
	Acquires string `json:"acquires,omitempty"`
	Releases string `json:"releases,omitempty"`

	// JournalAppend reports that the function appends to a write-ahead
	// journal (a method named Append on a type declared in a package
	// whose import path ends in "journal"), directly or transitively.
	JournalAppend bool `json:"journal_append,omitempty"`
}

// FoldsFloat reports whether the function performs any
// order-sensitive float fold at all.
func (s FuncSummary) FoldsFloat() bool {
	return s.FoldRecv || s.FoldGlobal || len(s.FoldParams) > 0
}

// zero reports whether the summary carries no facts (omitted from the
// encoded file to keep facts small and diffs readable).
func (s FuncSummary) zero() bool {
	return !s.FoldRecv && !s.FoldGlobal && len(s.FoldParams) == 0 &&
		!s.WallClock && !s.GlobalRand && !s.Blocks && !s.WritesRecv &&
		s.Acquires == "" && s.Releases == "" && !s.JournalAppend
}

// PackageFacts is one package's serializable fact set.
type PackageFacts struct {
	Schema string `json:"schema"`
	// Path is the package's canonical import path.
	Path string `json:"path"`
	// Funcs maps funcKey ("Name" for package-level functions,
	// "Type.Name" for methods, pointer receivers stripped) to the
	// function's summary. Zero summaries are omitted.
	Funcs map[string]FuncSummary `json:"funcs,omitempty"`
	// Owned maps "Type.Field" to the owner function names declared by
	// a //lint:owner directive on the field: only those functions may
	// write the field, and never from a spawned goroutine
	// (writerescape).
	Owned map[string][]string `json:"owned,omitempty"`
}

// NewPackageFacts returns an empty fact set for the import path.
func NewPackageFacts(path string) *PackageFacts {
	return &PackageFacts{
		Schema: FactsSchema,
		Path:   path,
		Funcs:  map[string]FuncSummary{},
		Owned:  map[string][]string{},
	}
}

// EncodeFacts serializes facts deterministically (sorted keys, stable
// indentation): cmd/go hashes facts files into its build cache, so the
// same package state must produce identical bytes on every run.
func EncodeFacts(pf *PackageFacts) ([]byte, error) {
	if pf == nil {
		pf = NewPackageFacts("")
	}
	out := *pf
	out.Schema = FactsSchema
	// Strip zero summaries; json.Marshal already emits map keys sorted.
	if len(out.Funcs) > 0 {
		funcs := make(map[string]FuncSummary, len(out.Funcs))
		for k, s := range out.Funcs {
			if !s.zero() {
				funcs[k] = s
			}
		}
		out.Funcs = funcs
	}
	data, err := json.MarshalIndent(&out, "", "\t")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeFacts parses a facts file. Empty input (the v1 driver wrote
// empty facts files; cmd/go may also hand us a zero-length file)
// decodes as an empty fact set; a schema mismatch does too, so a
// format change invalidates gracefully rather than erroring a build.
func DecodeFacts(data []byte) (*PackageFacts, error) {
	if len(data) == 0 {
		return NewPackageFacts(""), nil
	}
	var pf PackageFacts
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("poclint facts: %v", err)
	}
	if pf.Schema != FactsSchema {
		return NewPackageFacts(pf.Path), nil
	}
	if pf.Funcs == nil {
		pf.Funcs = map[string]FuncSummary{}
	}
	if pf.Owned == nil {
		pf.Owned = map[string][]string{}
	}
	return &pf, nil
}

// FactSet is one pass's view of the fact universe: the current
// package's facts plus the facts of every imported package that has
// any.
type FactSet struct {
	// Cur is the current package's facts (computed by the summary
	// pass over the same files the analyzers see).
	Cur *PackageFacts
	// Imports maps import path to that package's facts.
	Imports map[string]*PackageFacts
}

// emptyFactSet is used when a driver runs without facts (the v1
// RunAnalyzers entry point): lookups all miss, so the summary-driven
// analyzers degrade to silence rather than crashing.
func emptyFactSet(path string) *FactSet {
	return &FactSet{Cur: NewPackageFacts(path), Imports: map[string]*PackageFacts{}}
}

// lookup returns the facts for the package with the given import
// path, or nil.
func (fs *FactSet) lookup(path string) *PackageFacts {
	if fs == nil {
		return nil
	}
	if fs.Cur != nil && fs.Cur.Path == path {
		return fs.Cur
	}
	return fs.Imports[path]
}

// funcKey returns the facts key for a function object: "Name" for
// package-level functions, "Type.Name" for methods (pointer stripped).
// The empty string means the object cannot carry facts (func literals,
// interface methods on unnamed types).
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Name()
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + fn.Name()
}

// SummaryOf returns the recorded summary for fn, looking in the
// current package first and then in imported facts. Functions from
// packages without facts (the standard library, func literals) have
// no summary.
func (fs *FactSet) SummaryOf(fn *types.Func) (FuncSummary, bool) {
	if fs == nil || fn == nil || fn.Pkg() == nil {
		return FuncSummary{}, false
	}
	key := funcKey(fn)
	if key == "" {
		return FuncSummary{}, false
	}
	pf := fs.lookup(fn.Pkg().Path())
	if pf == nil {
		return FuncSummary{}, false
	}
	s, ok := pf.Funcs[key]
	return s, ok
}

// OwnersOf returns the //lint:owner function list for a struct field
// object, consulting the declaring package's facts.
func (fs *FactSet) OwnersOf(field *types.Var, structType string) ([]string, bool) {
	if fs == nil || field == nil || field.Pkg() == nil {
		return nil, false
	}
	pf := fs.lookup(field.Pkg().Path())
	if pf == nil {
		return nil, false
	}
	owners, ok := pf.Owned[structType+"."+field.Name()]
	return owners, ok
}

// ownerNames renders an owner list for diagnostics.
func ownerNames(owners []string) string {
	out := make([]string, len(owners))
	copy(out, owners)
	sort.Strings(out)
	return strings.Join(out, ", ")
}
