package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVetToolCleanTree is the meta-gate: it builds cmd/poclint and
// runs it over the whole module through the real `go vet -vettool`
// protocol, asserting the tree is invariant-clean. This is the same
// invocation CI runs; a reverted map-order fix or a new wall-clock
// read in internal/ fails this test locally before it fails the lint
// job.
func TestVetToolCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module and vets every package")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}
	bin := filepath.Join(t.TempDir(), "poclint")

	build := exec.Command("go", "build", "-o", bin, "./cmd/poclint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building poclint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=poclint ./... failed: %v\n%s", err, out)
	}
}
