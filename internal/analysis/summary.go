package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file computes PackageFacts: the function-summary pass. It runs
// once per package — before the analyzers — walking every function
// body to collect direct effects, then closing over same-package calls
// with a fixpoint and over imported calls with the importers' facts
// (which are already transitively closed, making the whole relation
// transitive without a global fixpoint).
//
// Three source directives feed the pass:
//
//	//lint:acquire <kind>   (func doc) function hands out a pooled resource
//	//lint:release <kind>   (func doc) function takes one back
//	//lint:owner <fn>[,<fn>...]  (struct field) only these functions may
//	                         write the field, never from a spawned goroutine
//
// Malformed directives are diagnostics (analyzer "poclint"), same as a
// reason-less //lint:allow.

// rootKind classifies where an expression's leftmost identifier is
// bound, relative to the function being summarized.
type rootKind int

const (
	rootNone  rootKind = iota // literal, fresh value, package qualifier
	rootLocal                 // declared inside the function
	rootRecv                  // the method receiver
	rootParam                 // a parameter (see rootClass.param)
	rootOuter                 // package-level, captured, or imported state
)

type rootClass struct {
	kind  rootKind
	param int // valid when kind == rootParam
}

// callSite is one resolved call inside a summarized function: the
// callee plus the root classification of its receiver and arguments,
// which is all the fixpoint needs to relocate the callee's fold/write
// targets into the caller's frame.
type callSite struct {
	callee *types.Func
	recv   rootClass
	args   []rootClass
}

// funcInfo is the per-function scratch state for the fixpoint.
type funcInfo struct {
	decl   *ast.FuncDecl
	key    string
	recv   types.Object
	params []types.Object
	sum    FuncSummary
	calls  []callSite
}

// ComputeFacts builds the package's fact set. imports carries the
// facts of already-analyzed dependencies (nil is fine: summaries then
// stop at the package boundary, which is exactly v1 behavior). The
// returned diagnostics report malformed directives.
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, path string, imports map[string]*PackageFacts) (*PackageFacts, []Diagnostic) {

	p := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Path: path}
	pf := NewPackageFacts(path)
	var diags []Diagnostic

	collectOwners(p, pf, &diags)

	var funcs []*funcInfo
	byKey := map[string]*funcInfo{}
	for _, f := range p.SrcFiles() {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			key := funcKey(fn)
			if key == "" {
				continue
			}
			fi := summarizeFunc(p, decl, fn, key, &diags)
			funcs = append(funcs, fi)
			byKey[key] = fi
		}
	}

	// Fixpoint over same-package calls; imported facts are consulted
	// through fs and are already closed, so one lookup suffices.
	fs := &FactSet{Cur: pf, Imports: imports}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			before := fi.sum
			for _, cs := range fi.calls {
				var csum FuncSummary
				var ok bool
				if cs.callee.Pkg() == pkg {
					if local := byKey[funcKey(cs.callee)]; local != nil {
						csum, ok = local.sum, true
					}
				} else {
					csum, ok = fs.SummaryOf(cs.callee)
				}
				if !ok {
					continue
				}
				mergeCall(&fi.sum, csum, cs)
			}
			if !summaryEqual(before, fi.sum) {
				changed = true
			}
		}
	}
	for _, fi := range funcs {
		if !fi.sum.zero() {
			pf.Funcs[fi.key] = fi.sum
		}
	}
	return pf, diags
}

// mergeCall folds one callee summary into the caller's, relocating
// receiver/parameter fold targets through the call site's argument
// roots.
func mergeCall(sum *FuncSummary, csum FuncSummary, cs callSite) {
	sum.WallClock = sum.WallClock || csum.WallClock
	sum.GlobalRand = sum.GlobalRand || csum.GlobalRand
	sum.Blocks = sum.Blocks || csum.Blocks
	sum.JournalAppend = sum.JournalAppend || csum.JournalAppend
	if csum.WritesRecv && cs.recv.kind == rootRecv {
		sum.WritesRecv = true
	}
	if csum.FoldGlobal {
		sum.FoldGlobal = true
	}
	var targets []rootClass
	if csum.FoldRecv {
		targets = append(targets, cs.recv)
	}
	for _, j := range csum.FoldParams {
		if j < len(cs.args) {
			targets = append(targets, cs.args[j])
		}
	}
	for _, t := range targets {
		switch t.kind {
		case rootRecv:
			sum.FoldRecv = true
		case rootParam:
			addFoldParam(sum, t.param)
		case rootOuter:
			sum.FoldGlobal = true
		}
	}
}

func addFoldParam(sum *FuncSummary, i int) {
	for _, j := range sum.FoldParams {
		if j == i {
			return
		}
	}
	sum.FoldParams = append(sum.FoldParams, i)
	sort.Ints(sum.FoldParams)
}

func summaryEqual(a, b FuncSummary) bool {
	if len(a.FoldParams) != len(b.FoldParams) {
		return false
	}
	for i := range a.FoldParams {
		if a.FoldParams[i] != b.FoldParams[i] {
			return false
		}
	}
	return a.FoldRecv == b.FoldRecv && a.FoldGlobal == b.FoldGlobal &&
		a.WallClock == b.WallClock && a.GlobalRand == b.GlobalRand &&
		a.Blocks == b.Blocks && a.WritesRecv == b.WritesRecv &&
		a.Acquires == b.Acquires && a.Releases == b.Releases &&
		a.JournalAppend == b.JournalAppend
}

// summarizeFunc computes one function's direct summary and call list.
func summarizeFunc(p *Pass, decl *ast.FuncDecl, fn *types.Func, key string, diags *[]Diagnostic) *funcInfo {
	fi := &funcInfo{decl: decl, key: key}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		fi.recv = p.ObjectOf(decl.Recv.List[0].Names[0])
	}
	if sig, ok := fn.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len(); i++ {
			fi.params = append(fi.params, sig.Params().At(i))
		}
	}
	fi.sum.Acquires, fi.sum.Releases = funcDirectives(p, decl, diags)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if name, ok := p.pkgFunc(x.Sel, "time"); ok && wallClockFuncs[name] {
				fi.sum.WallClock = true
			}
			for _, rp := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := p.pkgFunc(x.Sel, rp); ok && !randAllowed[name] {
					fi.sum.GlobalRand = true
				}
			}
		case *ast.SendStmt, *ast.SelectStmt:
			fi.sum.Blocks = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				fi.sum.Blocks = true
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					fi.sum.Blocks = true
				}
			}
		case *ast.CallExpr:
			summarizeCall(p, fi, x)
		case *ast.AssignStmt:
			summarizeAssign(p, fi, decl, x)
		case *ast.IncDecStmt:
			summarizeWrite(p, fi, decl, x.X, isFloat(p.TypeOf(x.X)))
		}
		return true
	})
	return fi
}

// summarizeCall records the call for the fixpoint and detects directly
// blocking / journal-appending callees.
func summarizeCall(p *Pass, fi *funcInfo, call *ast.CallExpr) {
	var callee *types.Func
	var recvExpr ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = p.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = p.Info.Uses[fun.Sel].(*types.Func)
		if callee != nil {
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				recvExpr = fun.X
			}
		}
	}
	if callee == nil {
		return
	}
	if pkg := callee.Pkg(); pkg != nil && recvExpr != nil {
		name := callee.Name()
		// Potentially blocking std-lib primitives (no facts exist for
		// std packages, so these are recognized by name here).
		if pkg.Path() == "sync" && (name == "Lock" || name == "RLock" || name == "Wait") {
			fi.sum.Blocks = true
		}
		if pkg.Path() == "os" && name == "Sync" {
			fi.sum.Blocks = true // fsync
		}
	}
	if isJournalAppendCallee(callee) {
		fi.sum.JournalAppend = true
	}
	cs := callSite{callee: callee}
	if recvExpr != nil {
		cs.recv = classifyRoot(p, fi, recvExpr)
	}
	for _, arg := range call.Args {
		cs.args = append(cs.args, classifyRoot(p, fi, arg))
	}
	fi.calls = append(fi.calls, cs)
}

// isJournalAppendCallee reports a method named Append on a type
// declared in a package whose import path ends in "journal" — the
// repo's write-ahead journal convention (internal/pocd/journal).
func isJournalAppendCallee(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Append" || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	segs := strings.Split(fn.Pkg().Path(), "/")
	return segs[len(segs)-1] == "journal"
}

// summarizeAssign detects order-sensitive float folds and receiver
// writes in one assignment.
func summarizeAssign(p *Pass, fi *funcInfo, decl *ast.FuncDecl, st *ast.AssignStmt) {
	switch {
	case compoundOps[st.Tok]:
		for _, lhs := range st.Lhs {
			summarizeWrite(p, fi, decl, lhs, isFloat(p.TypeOf(lhs)))
		}
	case st.Tok == token.ASSIGN && len(st.Lhs) == 1 && len(st.Rhs) == 1:
		fold := false
		if bin, ok := st.Rhs[0].(*ast.BinaryExpr); ok && arithmeticOp(bin.Op) {
			fold = (sameExpr(bin.X, st.Lhs[0]) || sameExpr(bin.Y, st.Lhs[0])) &&
				isFloat(p.TypeOf(st.Lhs[0]))
		}
		summarizeWrite(p, fi, decl, st.Lhs[0], fold)
	default:
		for _, lhs := range st.Lhs {
			summarizeWrite(p, fi, decl, lhs, false)
		}
	}
}

// summarizeWrite records one lvalue write: a receiver-state write
// (WritesRecv) and, when fold is true, an order-sensitive float fold
// located by the lvalue's root.
func summarizeWrite(p *Pass, fi *funcInfo, decl *ast.FuncDecl, lhs ast.Expr, fold bool) {
	if _, bare := lhs.(*ast.Ident); bare {
		// Rebinding a local name (including the receiver or a value
		// parameter) never escapes the frame; x += v on a bare float
		// parameter folds into a copy.
		if !fold {
			return
		}
		rc := classifyRoot(p, fi, lhs)
		if rc.kind == rootOuter {
			fi.sum.FoldGlobal = true
		}
		return
	}
	rc := classifyRoot(p, fi, lhs)
	if rc.kind == rootRecv {
		fi.sum.WritesRecv = true
	}
	if !fold {
		return
	}
	switch rc.kind {
	case rootRecv:
		fi.sum.FoldRecv = true
	case rootParam:
		if refLike(fi.params[rc.param].Type()) {
			addFoldParam(&fi.sum, rc.param)
		}
	case rootOuter:
		fi.sum.FoldGlobal = true
	}
}

// classifyRoot resolves an expression's leftmost identifier against
// the function's frame.
func classifyRoot(p *Pass, fi *funcInfo, e ast.Expr) rootClass {
	id := rootIdent(e)
	if id == nil {
		return rootClass{kind: rootNone}
	}
	obj := p.ObjectOf(id)
	if obj == nil {
		return rootClass{kind: rootNone}
	}
	if _, isPkg := obj.(*types.PkgName); isPkg {
		return rootClass{kind: rootNone}
	}
	if obj.Parent() == types.Universe {
		return rootClass{kind: rootNone}
	}
	if fi.recv != nil && obj == fi.recv {
		return rootClass{kind: rootRecv}
	}
	for i, po := range fi.params {
		if obj == po {
			return rootClass{kind: rootParam, param: i}
		}
	}
	if obj.Pos() >= fi.decl.Pos() && obj.Pos() <= fi.decl.End() {
		return rootClass{kind: rootLocal}
	}
	return rootClass{kind: rootOuter}
}

// refLike reports whether a parameter of this type aliases caller
// state, making a fold through it observable outside the callee.
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// funcDirectives parses //lint:acquire and //lint:release from a
// function's doc comment.
func funcDirectives(p *Pass, decl *ast.FuncDecl, diags *[]Diagnostic) (acquire, release string) {
	if decl.Doc == nil {
		return "", ""
	}
	for _, c := range decl.Doc.List {
		for _, d := range []struct {
			prefix string
			out    *string
		}{{"//lint:acquire", &acquire}, {"//lint:release", &release}} {
			rest, found := strings.CutPrefix(c.Text, d.prefix)
			if !found {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) != 1 {
				*diags = append(*diags, Diagnostic{
					Pos: p.Fset.Position(c.Pos()), Analyzer: "poclint",
					Message: "malformed " + d.prefix + ": want exactly one resource kind",
				})
				continue
			}
			*d.out = fields[0]
		}
	}
	return acquire, release
}

// collectOwners parses //lint:owner directives on struct fields into
// pf.Owned.
func collectOwners(p *Pass, pf *PackageFacts, diags *[]Diagnostic) {
	for _, f := range p.SrcFiles() {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, fld := range st.Fields.List {
					owners, found := fieldOwners(p, fld, diags)
					if !found {
						continue
					}
					for _, name := range fld.Names {
						pf.Owned[ts.Name.Name+"."+name.Name] = owners
					}
				}
			}
		}
	}
}

// fieldOwners parses a field's //lint:owner directive from its doc
// comment (line above) or trailing comment (same line).
func fieldOwners(p *Pass, fld *ast.Field, diags *[]Diagnostic) ([]string, bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, "//lint:owner")
			if !found {
				continue
			}
			var owners []string
			for _, field := range strings.Fields(rest) {
				for _, name := range strings.Split(field, ",") {
					if name != "" {
						owners = append(owners, name)
					}
				}
			}
			if len(owners) == 0 {
				*diags = append(*diags, Diagnostic{
					Pos: p.Fset.Position(c.Pos()), Analyzer: "poclint",
					Message: "malformed //lint:owner: need at least one owner function",
				})
				continue
			}
			sort.Strings(owners)
			return owners, true
		}
	}
	return nil, false
}
