package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ObsGuard enforces the obs layer's nil-safety contract from both
// sides. A nil *obs.Registry is the documented "observability off"
// mode: every hot path calls methods on a possibly-nil receiver and
// pays one branch. That only holds while every exported method
// actually guards the nil receiver — one unguarded method added to
// the package turns every instrumented call site into a latent panic.
//
// Inside an obs package (import path ending in "obs"), for every type
// that follows the convention (at least one exported pointer-receiver
// method opening with an `if recv == nil` guard), ObsGuard requires
// each exported pointer-receiver method to be nil-safe: either it
// guards the receiver before first use, or every use of the receiver
// is a call to an already-nil-safe method of the same type
// (transitive safety, computed to a fixpoint — this is how
// MarshalJSON/WriteJSON/WriteFile delegate to the guarded snapshot).
// Exported value-receiver methods on such a type are flagged
// unconditionally: calling one through a nil pointer dereferences it.
//
// Outside the obs package, ObsGuard flags explicit dereferences
// (*reg) of a pointer to an obs type: copying the registry value
// copies its mutex and panics when observability is off.
var ObsGuard = &Analyzer{
	Name: "obsguard",
	Doc:  "obs.Registry must stay nil-safe: guard receivers in obs, never deref *Registry outside",
	Run:  runObsGuard,
}

func runObsGuard(pass *Pass) error {
	if strings.HasSuffix(pass.Path, "obs") || pass.Path == "obs" {
		checkObsPackage(pass)
		return nil
	}
	checkObsConsumers(pass)
	return nil
}

// ---- consumer side ----

func checkObsConsumers(pass *Pass) {
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			star, ok := n.(*ast.StarExpr)
			if !ok {
				return true
			}
			// A StarExpr is a dereference only in expression position
			// with a pointer operand (in type position TypeOf is nil
			// or the operand is a type name).
			t := pass.TypeOf(star.X)
			ptr, ok := t.(*types.Pointer)
			if !ok {
				return true
			}
			if named := namedObsType(ptr.Elem()); named != "" {
				pass.Reportf(star.Pos(),
					"dereferencing *%s copies its mutex and panics when observability is off (nil registry); call its nil-safe methods instead", named)
			}
			return true
		})
	}
}

// namedObsType returns the type's name when it is a named type
// declared in an obs package (or an alias to one, like poc.Observer).
func namedObsType(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return ""
	}
	if pkg.Path() == "obs" || strings.HasSuffix(pkg.Path(), "/obs") {
		return named.Obj().Name()
	}
	return ""
}

// ---- obs package side ----

type methodInfo struct {
	decl    *ast.FuncDecl
	recvObj types.Object
	guarded bool // direct `if recv == nil` before first receiver use
	safe    bool
}

func checkObsPackage(pass *Pass) {
	// Group pointer-receiver methods (and spot value receivers) per
	// receiver type name.
	ptrMethods := map[string]map[string]*methodInfo{}
	valueMethods := map[string][]*ast.FuncDecl{}
	for _, f := range pass.SrcFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			tname, isPtr := recvTypeName(fd.Recv.List[0].Type)
			if tname == "" {
				continue
			}
			if !isPtr {
				valueMethods[tname] = append(valueMethods[tname], fd)
				continue
			}
			mi := &methodInfo{decl: fd}
			if names := fd.Recv.List[0].Names; len(names) == 1 {
				mi.recvObj = pass.ObjectOf(names[0])
			}
			mi.guarded = hasLeadingNilGuard(pass, fd, mi.recvObj)
			mi.safe = mi.guarded
			if ptrMethods[tname] == nil {
				ptrMethods[tname] = map[string]*methodInfo{}
			}
			ptrMethods[tname][fd.Name.Name] = mi
		}
	}

	for tname, methods := range ptrMethods {
		if !followsNilConvention(methods) {
			continue
		}
		// Fixpoint: a method is safe if guarded, or if every receiver
		// use is a call to a safe sibling.
		for changed := true; changed; {
			changed = false
			for _, mi := range methods {
				if !mi.safe && receiverUsesAreSafeCalls(pass, mi, methods) {
					mi.safe = true
					changed = true
				}
			}
		}
		for name, mi := range methods {
			if !mi.safe && ast.IsExported(name) {
				pass.Reportf(mi.decl.Name.Pos(),
					"exported method (*%s).%s uses the receiver without a nil guard; a nil registry call site will panic — open with `if %s == nil { return … }` or delegate to a nil-safe method",
					tname, name, recvName(mi))
			}
		}
		for _, fd := range valueMethods[tname] {
			if ast.IsExported(fd.Name.Name) {
				pass.Reportf(fd.Name.Pos(),
					"exported method %s.%s has a value receiver on a nil-safe type; calling it through a nil pointer panics — use a pointer receiver with a nil guard",
					tname, fd.Name.Name)
			}
		}
	}
}

// followsNilConvention reports whether any exported pointer method of
// the type opens with a nil guard — the signal that the type promises
// nil-safety and the rest must keep it.
func followsNilConvention(methods map[string]*methodInfo) bool {
	for name, mi := range methods {
		if mi.guarded && ast.IsExported(name) {
			return true
		}
	}
	return false
}

func recvName(mi *methodInfo) string {
	if mi.recvObj != nil {
		return mi.recvObj.Name()
	}
	return "recv"
}

// recvTypeName unwraps a method receiver type to (type name, pointer?).
func recvTypeName(e ast.Expr) (string, bool) {
	isPtr := false
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			isPtr = true
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.Ident:
			return t.Name, isPtr
		case *ast.IndexExpr: // generic receiver
			e = t.X
		default:
			return "", isPtr
		}
	}
}

// hasLeadingNilGuard reports whether the method guards the nil
// receiver before its first receiver use: statements preceding the
// guard must not touch the receiver, and the guard's body must
// terminate in a return.
func hasLeadingNilGuard(pass *Pass, fd *ast.FuncDecl, recvObj types.Object) bool {
	if fd.Body == nil || recvObj == nil {
		return false
	}
	for _, st := range fd.Body.List {
		if ifst, ok := st.(*ast.IfStmt); ok && ifst.Init == nil && isNilCheck(pass, ifst.Cond, recvObj) && endsInReturn(ifst.Body) {
			return true
		}
		if usesObject(pass, st, recvObj) {
			return false
		}
	}
	return false
}

func isNilCheck(pass *Pass, cond ast.Expr, recvObj types.Object) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return false
	}
	return (isObjIdent(pass, bin.X, recvObj) && isNilIdent(bin.Y)) ||
		(isObjIdent(pass, bin.Y, recvObj) && isNilIdent(bin.X))
}

func isObjIdent(pass *Pass, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

func usesObject(pass *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// receiverUsesAreSafeCalls reports whether every receiver use in the
// method body is either recv.M(...) with M already safe, or a
// comparison of recv against nil.
func receiverUsesAreSafeCalls(pass *Pass, mi *methodInfo, methods map[string]*methodInfo) bool {
	if mi.decl.Body == nil || mi.recvObj == nil {
		return false
	}
	type ctx struct {
		safeCallRecv map[*ast.Ident]bool
	}
	c := ctx{safeCallRecv: map[*ast.Ident]bool{}}
	// First mark receiver idents appearing as recv in safe calls or
	// nil comparisons.
	ast.Inspect(mi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(id) == mi.recvObj {
					if sib, ok := methods[sel.Sel.Name]; ok && sib.safe {
						c.safeCallRecv[id] = true
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				for _, side := range []ast.Expr{x.X, x.Y} {
					if id, ok := side.(*ast.Ident); ok && pass.ObjectOf(id) == mi.recvObj {
						if isNilIdent(x.X) || isNilIdent(x.Y) {
							c.safeCallRecv[id] = true
						}
					}
				}
			}
		}
		return true
	})
	allSafe := true
	ast.Inspect(mi.decl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == mi.recvObj && !c.safeCallRecv[id] {
			allSafe = false
		}
		return allSafe
	})
	return allSafe
}
