package analysis

import (
	"go/ast"
)

// WallTime flags wall-clock reads in internal/ packages. Simulated
// time advances through BillEpoch/Tick arguments and the obs
// registry's monotonic step counter is the only sanctioned trace
// clock; a time.Now anywhere in the fabric, auction, billing, chaos
// or export paths would leak scheduling time into state that must be
// byte-identical across runs. cmd/ and examples/ report wall time to
// humans and are exempt (gated by path, not by this analyzer).
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "wall clocks in internal/ break run-to-run determinism; use epoch args or the obs step clock",
	Applies: func(path string) bool {
		return hasSegment(path, "internal")
	},
	Run: runWallTime,
}

// wallClockFuncs are time's wall/monotonic-clock reads. Duration
// arithmetic and constants remain legal; only sampling the clock is
// not.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "NewTicker": true, "NewTimer": true, "After": true, "AfterFunc": true,
}

func runWallTime(pass *Pass) error {
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := pass.pkgFunc(sel.Sel, "time"); ok && wallClockFuncs[name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock in deterministic code; advance simulated time explicitly or use the obs step clock", name)
			}
			return true
		})
	}
	return nil
}
