package analysis

import (
	"strings"
	"testing"
)

// Each analyzer gets a testdata package holding positive cases (pinned
// by // want comments), negative cases (sanctioned idioms with no
// want, which the harness rejects if they trigger), and //lint:allow
// suppressions. The maplab package deliberately encodes the three PR 3
// map-order bugs (provision.Route used-capacity, netsim
// UsageByEndpoint, core.BillEpoch) so that re-introducing any of them
// is caught by shape, not by memory.

func TestMapOrdFloat(t *testing.T) { expectWants(t, MapOrdFloat, "maplab") }

func TestSeededRand(t *testing.T) { expectWants(t, SeededRand, "seedlab") }

func TestSeededRandExemptsCmd(t *testing.T) { expectClean(t, SeededRand, "cmd/seedfree") }

func TestWallTime(t *testing.T) { expectWants(t, WallTime, "internal/walllab") }

func TestWallTimeOnlyInternal(t *testing.T) { expectClean(t, WallTime, "clocksok") }

// TestWallTimeInjectedClock pins the pattern internal/pocd uses to
// stay clock-free: a Now func() time.Time injected from cmd/, `now`
// samples passed as parameters, and time.Time arithmetic (After,
// Sub, Unix) — all must stay clean, or the daemon's deadline logic
// could not live under internal/ at all.
func TestWallTimeInjectedClock(t *testing.T) { expectClean(t, WallTime, "internal/clockinject") }

func TestObsGuardPackage(t *testing.T) { expectWants(t, ObsGuard, "obslab/obs") }

func TestObsGuardConsumer(t *testing.T) { expectWants(t, ObsGuard, "obslab/consumer") }

func TestFloatSum(t *testing.T) { expectWants(t, FloatSum, "floatlab") }

// TestAllowDirectiveErrors pins the directive grammar: missing
// analyzer and missing reason are diagnostics in their own right
// (attributed to "poclint", not to any analyzer), while the
// well-formed directive in the same package suppresses its finding.
func TestAllowDirectiveErrors(t *testing.T) {
	diags, _ := runAnalyzer(t, MapOrdFloat, "allowlab")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 malformed-directive reports:\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "poclint" {
			t.Errorf("%s: attributed to %q, want poclint", d, d.Analyzer)
		}
	}
	if !strings.Contains(diags[0].Message, "missing analyzer name") {
		t.Errorf("first diagnostic %q, want missing-analyzer report", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "needs a reason") {
		t.Errorf("second diagnostic %q, want missing-reason report", diags[1].Message)
	}
}
