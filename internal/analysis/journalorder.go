package analysis

import (
	"go/ast"
	"go/types"
)

// JournalOrder enforces pocd's durability contract: "once journaled,
// always applied" only holds if the journal append dominates every
// state mutation in a mutation handler. A handler that mutates first
// and journals second can crash in between, leaving applied state the
// replay will never reconstruct — the exact divergence pocd's
// crash-recovery tests exist to rule out.
//
// The check is flow-sensitive: in any function (within a pocd
// package) whose body performs a journal append — a call to a method
// named Append on a type from a */journal package, or to a function
// whose summary says it appends transitively — every mutation call
// must be dominated by an append on the CFG. A mutation call is a
// method call whose callee's summary records receiver writes
// (WritesRecv, computed across packages via facts) on a receiver
// rooted outside the function's own locals. Functions with no append
// in the body — the replay/apply path — are exempt by construction:
// replay is the one caller allowed to mutate without journaling.
var JournalOrder = &Analyzer{
	Name: "journalorder",
	Doc:  "in pocd, state mutations must be dominated by the journal append (once journaled, always applied)",
	Applies: func(path string) bool {
		return hasSegment(path, "pocd")
	},
	Run: runJournalOrder,
}

func runJournalOrder(pass *Pass) error {
	for _, f := range pass.SrcFiles() {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkJournalFunc(pass, decl)
		}
	}
	return nil
}

// appendsJournal reports whether the call appends to the journal,
// directly or via a summarized callee.
func appendsJournal(pass *Pass, call *ast.CallExpr) bool {
	callee := calleeFunc(pass, call)
	if callee == nil {
		return false
	}
	if isJournalAppendCallee(callee) {
		return true
	}
	sum, ok := pass.Facts.SummaryOf(callee)
	return ok && sum.JournalAppend
}

func checkJournalFunc(pass *Pass, decl *ast.FuncDecl) {
	// Only functions that themselves journal are order-checked. An
	// append inside a defer or a nested literal does not count: it runs
	// at function exit (or wherever the literal is invoked), not at a
	// program point the domination check can order, so a function whose
	// only append is deferred stays exempt like the replay path.
	journals := false
	inspectAtPoint(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && appendsJournal(pass, call) {
			journals = true
		}
		return !journals
	})
	if !journals {
		return
	}

	fi := frameOf(pass, decl)
	g := buildCFG(decl.Body)
	preds := predecessors(g)

	// Must-analysis: in[b] = AND over preds of out[p]; a statement's
	// mutations are legal only when an append is guaranteed on every
	// path reaching it.
	in := map[*cfgBlock]bool{}
	out := map[*cfgBlock]bool{}
	for _, blk := range g.all {
		in[blk], out[blk] = true, true // optimistic top; entry forced below
	}
	in[g.entry] = false
	for changed := true; changed; {
		changed = false
		for _, blk := range g.all {
			state := true
			if blk == g.entry {
				state = false
			} else if ps := preds[blk]; len(ps) == 0 {
				state = false // unreachable island: stay conservative
			} else {
				for _, p := range ps {
					state = state && out[p]
				}
			}
			if state != in[blk] {
				in[blk] = state
				changed = true
			}
			for _, st := range blk.stmts {
				if stmtAppends(pass, st) {
					state = true
				}
			}
			if state != out[blk] {
				out[blk] = state
				changed = true
			}
		}
	}

	for _, blk := range g.all {
		state := in[blk]
		for _, st := range blk.stmts {
			if stmtAppends(pass, st) {
				state = true
				continue
			}
			if state {
				continue
			}
			reportMutations(pass, fi, st)
		}
	}
}

// inspectAtPoint walks n's subtree skipping DeferStmt and FuncLit
// subtrees: code under either does not execute at this program point
// (defers run at function exit, literal bodies wherever the literal is
// invoked), so it must neither satisfy nor violate an ordering check
// anchored here.
func inspectAtPoint(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		}
		return f(m)
	})
}

// stmtAppends reports whether the statement performs a journal append
// at its own program point (deferred appends run at exit and order
// nothing; see inspectAtPoint).
func stmtAppends(pass *Pass, st ast.Stmt) bool {
	found := false
	inspectAtPoint(st, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && appendsJournal(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// reportMutations flags mutation calls in a statement not yet
// dominated by the append. Mutations under a defer or nested literal
// are skipped with the same reasoning as stmtAppends: a deferred
// cleanup mutation runs after the append on every completing path.
func reportMutations(pass *Pass, fi *funcInfo, st ast.Stmt) {
	inspectAtPoint(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		callee, _ := pass.Info.Uses[sel.Sel].(*types.Func)
		if callee == nil {
			return true
		}
		if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() == nil {
			return true
		}
		sum, ok := pass.Facts.SummaryOf(callee)
		if !ok || !sum.WritesRecv {
			return true
		}
		switch classifyRoot(pass, fi, sel.X).kind {
		case rootRecv, rootParam, rootOuter:
			pass.Reportf(call.Pos(),
				"state mutation %s.%s before the journal append: a crash here diverges from replay; append first (once journaled, always applied)",
				exprString(sel.X), callee.Name())
		}
		return true
	})
}

// frameOf builds a minimal funcInfo (receiver + params) for root
// classification outside the summary pass.
func frameOf(pass *Pass, decl *ast.FuncDecl) *funcInfo {
	fi := &funcInfo{decl: decl}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		fi.recv = pass.ObjectOf(decl.Recv.List[0].Names[0])
	}
	if fn, ok := pass.Info.Defs[decl.Name].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				fi.params = append(fi.params, sig.Params().At(i))
			}
		}
	}
	return fi
}

// predecessors inverts the successor edges.
func predecessors(g *cfg) map[*cfgBlock][]*cfgBlock {
	preds := map[*cfgBlock][]*cfgBlock{}
	for _, blk := range g.all {
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	return preds
}
