package arenalab

import (
	"errors"

	"arenalab/pool"
)

// Positive: the error path returns without releasing.
func leakEarlyReturn(ws *pool.Workspace, fail bool) error {
	rt := ws.Acquire() // want "rt acquired by Acquire .*not released on the path reaching the return"
	if fail {
		return errors.New("boom")
	}
	ws.Release(rt)
	return nil
}

// Positive: falling off the end while still holding.
func leakFallOff(ws *pool.Workspace) {
	rt := ws.Acquire() // want "rt acquired by Acquire .*not released"
	rt.Resid[0] = 1
}

// Positive: re-acquiring into the same variable drops the held one.
func leakOverwrite(ws *pool.Workspace) {
	rt := ws.Acquire() // want "rt acquired by Acquire is overwritten at line \\d+ while still held"
	rt = ws.Acquire()
	ws.Release(rt)
}

// Positive: only one switch arm releases.
func leakSwitchArm(ws *pool.Workspace, mode int) {
	rt := ws.Acquire() // want "rt acquired by Acquire .*not released"
	switch mode {
	case 0:
		ws.Release(rt)
	case 1:
		rt.Resid[0] = 2
	}
}

// Positive: the continue path carries the held router across the loop
// backedge and out of the loop; the diagnostic names the unreleased
// exit path rather than misreading the next iteration's acquire as an
// overwrite of the value it just bound.
func leakLoopContinue(ws *pool.Workspace, n int) {
	for i := 0; i < n; i++ {
		rt := ws.Acquire() // want "rt acquired by Acquire .*not released on the path reaching the end of the function"
		if i == 0 {
			continue
		}
		ws.Release(rt)
	}
}

// Negative: both the continue path and the fall-through release before
// the backedge.
func okLoopContinue(ws *pool.Workspace, vals []int) {
	for _, v := range vals {
		rt := ws.Acquire()
		if v < 0 {
			ws.Release(rt)
			continue
		}
		rt.Resid[0] = float64(v)
		ws.Release(rt)
	}
}

// Negative: deferred release covers every exit, panics included.
func okDefer(ws *pool.Workspace, fail bool) error {
	rt := ws.Acquire()
	defer ws.Release(rt)
	if fail {
		return errors.New("boom")
	}
	rt.Resid[0] = 1
	return nil
}

// Negative: released on both arms.
func okBothArms(ws *pool.Workspace, fail bool) error {
	rt := ws.Acquire()
	if fail {
		ws.Release(rt)
		return errors.New("boom")
	}
	rt.Resid[0] = 1
	ws.Release(rt)
	return nil
}

// Negative: ownership transferred to the caller.
func okReturned(ws *pool.Workspace) *pool.Router {
	rt := ws.Acquire()
	rt.Resid[0] = 1
	return rt
}

// Negative: ownership stored into longer-lived state (whoever owns
// holder is checked where it releases).
type holder struct{ rt *pool.Router }

func okStored(ws *pool.Workspace, h *holder) {
	rt := ws.Acquire()
	h.rt = rt
}

// Negative: acquire/release per loop iteration.
func okLoop(ws *pool.Workspace, n int) {
	for i := 0; i < n; i++ {
		rt := ws.Acquire()
		rt.Resid[0] = float64(i)
		ws.Release(rt)
	}
}

// Negative: released after a labeled break.
func okLabeledBreak(ws *pool.Workspace, vals []int) {
	rt := ws.Acquire()
scan:
	for _, v := range vals {
		if v < 0 {
			break scan
		}
		rt.Resid[0] += float64(v)
	}
	ws.Release(rt)
}

// Sanctioned: a leak the author takes responsibility for.
func allowedLeak(ws *pool.Workspace, fail bool) {
	rt := ws.Acquire() //lint:allow arenapair process exits immediately after; pool dies with it
	if fail {
		return
	}
	ws.Release(rt)
}
