// Package pool is the testdata stand-in for provision.Workspace: a
// free-list arena whose acquire/release pair is declared via lint
// directives. arenalab (the consuming package) exercises arenapair
// across this package boundary — the acquire facts must travel
// through the facts layer, not the AST.
package pool

// Router is the pooled resource.
type Router struct {
	Resid []float64
}

// Workspace hands out Routers from a free list.
type Workspace struct {
	free []*Router
}

// Acquire pops a Router from the free list.
//
//lint:acquire arena
func (ws *Workspace) Acquire() *Router {
	if n := len(ws.free); n > 0 {
		rt := ws.free[n-1]
		ws.free = ws.free[:n-1]
		return rt
	}
	return &Router{Resid: make([]float64, 16)}
}

// Release returns a Router to the free list.
//
//lint:release arena
func (ws *Workspace) Release(rt *Router) {
	ws.free = append(ws.free, rt)
}
