// Package helper exports fold-carrying functions consumed by
// xfacts/use: the facts-layer cross-package test. The fold facts
// below are only visible to the consumer through PackageFacts.
package helper

// Totals folds into its receiver.
type Totals struct{ Sum float64 }

// Add is FoldRecv.
func (t *Totals) Add(v float64) { t.Sum += v }

// AddTo is FoldParams [0].
func AddTo(dst *float64, v float64) { *dst += v }

// Scale only reads; no fold facts.
func Scale(v, by float64) float64 { return v * by }
