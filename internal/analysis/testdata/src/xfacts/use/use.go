// Package use calls xfacts/helper inside unordered contexts: every
// diagnostic here requires the callee's fold summary to have crossed
// the package boundary via facts.
package use

import "xfacts/helper"

// Positive: imported FoldRecv callee, receiver outside the loop.
func SumByKey(m map[string]float64) float64 {
	var t helper.Totals
	for _, v := range m {
		t.Add(v) // want "Totals\\.Add folds floats into t, declared outside, inside range over map"
	}
	return t.Sum
}

// Positive: imported FoldParams callee, argument outside the loop.
func SumPtr(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		helper.AddTo(&total, v) // want "AddTo folds floats into argument &total, declared outside, inside range over map"
	}
	return total
}

// Negative: fold-free imported callee.
func ScaleAll(m map[string]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, helper.Scale(v, 2))
	}
	return out
}

// Negative: imported FoldRecv callee with a loop-local receiver.
func MaxBucket(m map[string][]float64) float64 {
	best := 0.0
	for _, vs := range m {
		var t helper.Totals
		for _, v := range vs {
			t.Add(v)
		}
		if t.Sum > best {
			best = t.Sum
		}
	}
	return best
}
