// Package main sits under a cmd/ path segment, where seededrand does
// not apply: binaries may roll dice.
package main

import "math/rand"

func main() {
	_ = rand.Int()
}
