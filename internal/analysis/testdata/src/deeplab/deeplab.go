package deeplab

// acc folds into its receiver: FoldRecv.
type acc struct{ total float64 }

func (a *acc) add(v float64) { a.total += v }

// global fold: FoldGlobal.
var grand float64

func bumpGrand(v float64) { grand += v }

// pointer-parameter fold: FoldParams [0].
func addTo(dst *float64, v float64) { *dst += v }

// pure folds only into a fresh local — no fold facts, never flagged.
func pure(v float64) float64 {
	t := 0.0
	t += v
	return t
}

// wraps addTo: the fold fact relocates through the call chain.
func accumulate(sum *float64, v float64) { addTo(sum, v) }

// Positive: receiver declared outside the map range.
func foldRecvInMapRange(m map[string]float64) float64 {
	var a acc
	for _, v := range m {
		a.add(v) // want "acc\\.add folds floats into a, declared outside, inside range over map"
	}
	return a.total
}

// Positive: global fold inside a map range.
func foldGlobalInMapRange(m map[string]float64) {
	for _, v := range m {
		bumpGrand(v) // want "bumpGrand folds floats into package-level or captured state inside range over map"
	}
}

// Positive: pointer argument rooted outside the map range — through a
// wrapper, so the fact had to survive the fixpoint.
func foldParamInMapRange(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		accumulate(&total, v) // want "accumulate folds floats into argument &total, declared outside, inside range over map"
	}
	return total
}

// Positive: fold into captured state from a goroutine.
func foldInGoroutine(vals []float64) float64 {
	var a acc
	done := make(chan struct{})
	go func() {
		for _, v := range vals {
			a.add(v) // want "acc\\.add folds floats into a, declared outside, from a goroutine"
		}
		close(done)
	}()
	<-done
	return a.total
}

// Positive: fold via helper in channel-receive order.
func foldInChanRange(ch chan float64) float64 {
	total := 0.0
	for v := range ch {
		addTo(&total, v) // want "addTo folds floats into argument &total, declared outside, in channel-receive order"
	}
	return total
}

// Positive: direct-call goroutine — no literal body scopes a context,
// but the receiver lives in the spawning frame and is shared across
// goroutine completions.
func foldDirectGoRecv(vals []float64) float64 {
	var a acc
	for _, v := range vals {
		go a.add(v) // want "acc\\.add folds floats into a, declared outside, from a goroutine"
	}
	return a.total
}

// Positive: direct-call goroutine into package state.
func foldDirectGoGlobal(vals []float64) {
	for _, v := range vals {
		go bumpGrand(v) // want "bumpGrand folds floats into package-level or captured state from a goroutine"
	}
}

// Positive: direct-call goroutine folding into a pointer argument
// rooted in the spawning frame.
func foldDirectGoParam(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		go addTo(&total, v) // want "addTo folds floats into argument &total, declared outside, from a goroutine"
	}
	return total
}

// Negative: direct-call goroutine of a fold-free callee.
func directGoPure(vals []float64) {
	for _, v := range vals {
		go pure(v)
	}
}

// Negative: the fold target is a fresh allocation with no root
// identifier — nobody outside the call observes it.
func directGoFresh(vals []float64) {
	for _, v := range vals {
		go addTo(new(float64), v)
	}
}

// Negative: the Route pattern — the callee folds, but into a receiver
// acquired inside the loop, so per-iteration state stays private.
func foldLocalRecv(m map[string]float64) float64 {
	best := 0.0
	for k, v := range m {
		var local acc
		local.add(v)
		if local.total > best && k != "" {
			best = local.total
		}
	}
	return best
}

// Negative: callee without fold facts.
func callPure(m map[string]float64) {
	out := make([]float64, 0, len(m))
	for _, v := range m {
		out = append(out, pure(v))
	}
	_ = out
}

// Negative: argument rooted inside the goroutine.
func goroutineLocalFold(vals []float64, slots []float64) {
	for i := range slots {
		i := i
		go func() {
			local := 0.0
			for _, v := range vals {
				addTo(&local, v)
			}
			slots[i] = local
		}()
	}
}

// The pocd writer-loop shape: handle folds into nested receiver
// state through a two-level call chain, and the chan-range drain is
// what gets flagged (pocd sanctions its own instance with an allow —
// the journal records the receive order).
type srvState struct{ total float64 }

func (st *srvState) apply(v float64) { st.total += v }

type srv struct{ st srvState }

func (s *srv) handle(v float64) { s.st.apply(v) }

// Positive: the unsanctioned writer loop.
func (s *srv) drain(ch chan float64) {
	for v := range ch {
		s.handle(v) // want "srv\\.handle folds floats into s, declared outside, in channel-receive order"
	}
}

// Sanctioned: the annotated writer loop.
func (s *srv) drainAllowed(ch chan float64) {
	for v := range ch {
		s.handle(v) //lint:allow deepfold receive order is journaled upstream; replay reproduces it
	}
}

// Sanctioned: a fold the author defends.
func allowedFold(m map[string]float64) float64 {
	var a acc
	for _, v := range m {
		a.add(v) //lint:allow deepfold result feeds a max, not a sum; order-insensitive
	}
	return a.total
}
