// Package dirlab exercises the facts-directive error paths: a
// directive without exactly one operand is itself a diagnostic, same
// contract as a reason-less //lint:allow. (The malformed //lint:owner
// case is covered by TestOwnerDirectiveMalformed, which asserts on
// ComputeFacts directly.)
package dirlab

type pool struct{ free []*int }

//lint:acquire // want "malformed //lint:acquire: want exactly one resource kind"
func (p *pool) get() *int {
	return new(int)
}

//lint:release arena extra-word // want "malformed //lint:release: want exactly one resource kind"
func (p *pool) put(x *int) {
	p.free = append(p.free, x)
}
