// Package maplab exercises the mapordfloat analyzer: every shape PR 3
// fixed by hand, the spelled-out accumulator, append and fmt output
// ordering, and the sanctioned idioms that must stay silent.
package maplab

import (
	"fmt"
	"sort"
)

type assignment struct {
	Gbps  float64
	Links []int
}

type flow struct {
	Src       string
	Allocated float64
}

// usedCapacity is the provision.Route revert shape: the accumulation
// hides one slice-range deep inside the map range.
func usedCapacity(asgs map[int]assignment) map[int]float64 {
	used := map[int]float64{}
	for _, a := range asgs {
		for _, l := range a.Links {
			used[l] += a.Gbps // want "ordered by map iteration"
		}
	}
	return used
}

// usageByEndpoint is the netsim.UsageByEndpoint revert shape: the
// write is indexed, but not by the range key.
func usageByEndpoint(flows map[int]flow) map[string]float64 {
	out := map[string]float64{}
	for _, fl := range flows {
		out[fl.Src] += fl.Allocated // want "ordered by map iteration"
	}
	return out
}

// billTotal is the core.BillEpoch revert shape: a straight sum.
func billTotal(usage map[string]float64) float64 {
	total := 0.0
	for _, gb := range usage {
		total += gb // want "ordered by map iteration"
	}
	return total
}

func spelled(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t = t + v // want "ordered by map iteration"
	}
	return t
}

func appendOrder(m map[string]float64) []float64 {
	var xs []float64
	for _, v := range m {
		xs = append(xs, v) // want "element order follows map iteration"
	}
	return xs
}

func printOrder(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "output order follows map iteration"
	}
}

// ---- sanctioned idioms: no diagnostics below ----

func sortedKeys(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // string append: order-insensitive later sort
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k] // slice range, not a map range
	}
	return total
}

func perKeyWrite(src map[string]float64) map[string]float64 {
	dst := map[string]float64{}
	for k, v := range src {
		dst[k] += v // one write per key, never reordered
	}
	return dst
}

func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition is associative
	}
	return n
}

func loopLocal(m map[string][]float64) map[string]float64 {
	out := map[string]float64{}
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v // loop-local accumulator, reset per key
		}
		out[k] = s
	}
	return out
}

func freshSlice(m map[string][]float64) map[string][]float64 {
	out := map[string][]float64{}
	for k, v := range m {
		out[k] = append([]float64(nil), v...) // fresh slice, rebuilt per key
	}
	return out
}

// ---- //lint:allow handling ----

func allowedSameLine(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v //lint:allow mapordfloat tolerance documented in maplab
	}
	return t
}

func allowedLineAbove(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		//lint:allow mapordfloat tolerance documented in maplab
		t += v
	}
	return t
}

func wrongAnalyzer(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		//lint:allow walltime names the wrong analyzer, must not suppress
		t += v // want "ordered by map iteration"
	}
	return t
}
