// Package seedlab exercises the seededrand analyzer: global draws are
// flagged, explicitly seeded generators and their methods are not.
package seedlab

import "math/rand"

func draw() int {
	return rand.Intn(10) // want "process-global source"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global source"
}

func norm() float64 {
	return rand.NormFloat64() // want "process-global source"
}

// seeded is the sanctioned pattern: an explicit source from config,
// then methods on the local generator.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func zipf(seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.2, 1, 100)
	return z.Uint64()
}

func allowed() int {
	return rand.Int() //lint:allow seededrand jitter only affects log spacing, not state
}
