// Package obs mimics the real observability registry's nil-safety
// contract for the obsguard testdata: a nil *Registry is "observability
// off", so every exported pointer method must guard the receiver or
// delegate to a method that does.
package obs

import "sync"

// Registry is the convention type: Add anchors the nil-safety
// convention with its leading guard.
type Registry struct {
	mu   sync.Mutex
	n    int64
	name string
}

// Add guards the nil receiver before first use — the convention anchor.
func (r *Registry) Add(delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.n += delta
	r.mu.Unlock()
}

// Count is transitively safe: its only receiver use delegates to a
// guarded sibling (the MarshalJSON → snapshot pattern).
func (r *Registry) Count() int64 {
	return r.total()
}

func (r *Registry) total() int64 {
	if r == nil {
		return 0
	}
	return r.n
}

// Name touches the receiver with no guard and no safe delegation.
func (r *Registry) Name() string { // want "uses the receiver without a nil guard"
	return r.name
}

// Snapshot has a value receiver: calling it through a nil pointer
// dereferences the pointer before the body can guard anything.
func (r Registry) Snapshot() int64 { // want "value receiver on a nil-safe type"
	return r.n
}

// reset is unguarded but unexported: call sites inside the package own
// the nil check, so it is not flagged.
func (r *Registry) reset() {
	r.n = 0
}
