// Package consumer exercises obsguard's consumer side: dereferencing
// a pointer to an obs type copies its mutex and panics when
// observability is off; calling its nil-safe methods is the sanctioned
// pattern.
package consumer

import "obslab/obs"

func copyRegistry(r *obs.Registry) obs.Registry {
	return *r // want "copies its mutex"
}

func instrument(r *obs.Registry) int64 {
	r.Add(1)
	return r.Count()
}

func derefOther(p *int) int {
	return *p // not an obs type
}

func allowed(r *obs.Registry) obs.Registry {
	return *r //lint:allow obsguard caller proved r non-nil two lines up
}
