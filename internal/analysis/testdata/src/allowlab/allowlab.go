// Package allowlab exercises the //lint:allow directive grammar: a
// directive without an analyzer name or without a reason is itself a
// diagnostic (exceptions must be attributable), while a well-formed
// directive suppresses exactly its analyzer on its line.
package allowlab

//lint:allow
// the bare directive above is missing its analyzer name

//lint:allow mapordfloat
// the directive above names an analyzer but gives no reason

func total(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v //lint:allow mapordfloat demo tolerance recorded here
	}
	return t
}
