// Package walllab sits under an internal/ path segment, so walltime
// applies: clock reads are flagged, duration arithmetic is not.
package walllab

import "time"

func stamp() int64 {
	return time.Now().Unix() // want "wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall clock"
}

func ticker() {
	_ = time.NewTicker(time.Second) // want "wall clock"
}

func scale(d time.Duration) time.Duration {
	return 2 * d // duration arithmetic stays legal
}

func parse(s string) (time.Duration, error) {
	return time.ParseDuration(s) // not a clock read
}

func allowed() time.Time {
	return time.Now() //lint:allow walltime boundary shim, value never reaches exported state
}
