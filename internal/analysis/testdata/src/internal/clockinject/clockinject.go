// Package clockinject pins the sanctioned injected-clock pattern that
// internal/pocd relies on: an internal package may hold a clock as a
// `func() time.Time` field supplied by its cmd/ caller, take `now`
// samples as parameters, and do deadline arithmetic on time.Time
// values — none of that reads the wall clock itself, so walltime must
// stay silent. Only direct time.Now / time.Since / timer selectors
// are clock reads.
package clockinject

import "time"

// Config carries the injected clock (cmd/pocd passes time.Now; tests
// pass a fake). Declaring and calling the field is not a clock read.
type Config struct {
	Now func() time.Time
}

type Server struct {
	cfg Config
}

// deadline stamps a request deadline from the injected clock.
func (s *Server) deadline(timeout time.Duration) time.Time {
	return s.cfg.Now().Add(timeout)
}

// expired decides a timeout by comparing two injected samples —
// time.Time methods (After, Before, Sub) are pure arithmetic.
func expired(now, deadline time.Time) bool {
	return !deadline.IsZero() && now.After(deadline)
}

// elapsed measures a span between two injected samples; only the
// package-level time.Since shortcut is a clock read, Sub is not.
func elapsed(start, end time.Time) time.Duration {
	return end.Sub(start)
}

// epoch builds fixed instants for fake clocks without any clock read.
func epoch(ns int64) time.Time {
	return time.Unix(0, ns)
}
