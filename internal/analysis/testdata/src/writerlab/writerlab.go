package writerlab

// Server's state fields are owned by the single-writer loop: New may
// build them, loop may mutate them, nobody else writes.
type Server struct {
	st     map[string]int //lint:owner New,Server.loop
	closed bool           //lint:owner Shutdown
}

// Shared mirrors fleet.Shared: the exported annotated field lets the
// cross-package test (writerlab/client) prove ownership travels
// through facts.
type Shared struct {
	// Cache is rebound only at construction.
	//lint:owner NewShared
	Cache map[string]int
}

func NewShared() *Shared {
	s := &Shared{}
	s.Cache = map[string]int{} // owner: fine
	return s
}

func New() *Server {
	s := &Server{}
	s.st = map[string]int{} // owner: fine
	return s
}

func (s *Server) loop(ops <-chan string) {
	for op := range ops {
		s.st[op]++ // owner (Type.Method form): fine
	}
}

// Positive: a non-owner method writes an owned field.
func (s *Server) Handle(op string) {
	s.st[op] = 1 // want "write to Server\\.st outside its owner \\(allowed: New, Server\\.loop\\)"
}

// Positive: even an owner may not write from a spawned goroutine.
func (s *Server) Shutdown() {
	s.closed = true // owner: fine
	go func() {
		s.closed = false // want "write to Server\\.closed from a spawned goroutine"
	}()
}

// Negative: reads are free for everyone.
func (s *Server) Lookup(op string) (int, bool) {
	v, ok := s.st[op]
	return v, ok
}

// Negative: unannotated fields are out of scope.
type loose struct{ n int }

func (l *loose) bump() { l.n++ }

// Sanctioned: a write the author defends.
func (s *Server) Reset() {
	s.st = nil //lint:allow writerescape reset only runs between test cases
}
