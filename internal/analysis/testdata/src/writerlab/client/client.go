// Package client writes to writerlab's annotated exported field from
// another package: ownership must be enforced through the facts layer
// (the //lint:owner comment is invisible here — only the summary
// carries it).
package client

import "writerlab"

// Positive: cross-package write to an owned field.
func Clobber(s *writerlab.Shared) {
	s.Cache = nil // want "write to Shared\\.Cache outside its owner \\(allowed: NewShared\\)"
}

// Negative: reading is fine.
func Peek(s *writerlab.Shared, k string) int {
	return s.Cache[k]
}
