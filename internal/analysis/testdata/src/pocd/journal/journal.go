// Package journal is the testdata stand-in for pocd's write-ahead
// journal: journalorder recognizes Append methods on types from a
// package whose import path ends in "journal".
package journal

// Writer appends durable records.
type Writer struct {
	seq  int
	recs [][]byte
}

// Append journals one record and returns its sequence number.
func (w *Writer) Append(payload []byte) (int, error) {
	w.seq++
	w.recs = append(w.recs, payload)
	return w.seq, nil
}
