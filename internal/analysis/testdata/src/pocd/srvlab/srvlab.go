package srvlab

import (
	"errors"

	"pocd/journal"
)

// state is the journaled daemon state; apply is the only mutation
// entry point (WritesRecv travels through the summary).
type state struct {
	n     int
	total float64
}

func (st *state) apply(op int) {
	st.n += op
	st.total += float64(op)
}

// Server funnels mutations through the journal.
type Server struct {
	st *state
	jw *journal.Writer
}

// Negative: validate, journal, then apply — the sanctioned order.
func (s *Server) handleGood(op int, payload []byte) error {
	if op < 0 {
		return errors.New("bad op")
	}
	if _, err := s.jw.Append(payload); err != nil {
		return err
	}
	s.st.apply(op)
	return nil
}

// Positive: mutation before the append — a crash between the two
// diverges from replay.
func (s *Server) handleBad(op int, payload []byte) error {
	s.st.apply(op) // want "state mutation s\\.st\\.apply before the journal append"
	_, err := s.jw.Append(payload)
	return err
}

// Positive: the append does not dominate the mutation (one branch
// skips it).
func (s *Server) handleBranch(op int, payload []byte) error {
	if op != 0 {
		if _, err := s.jw.Append(payload); err != nil {
			return err
		}
	}
	s.st.apply(op) // want "state mutation s\\.st\\.apply before the journal append"
	return nil
}

// Negative: the replay path applies without journaling by
// construction — no append in the body, so the function is exempt.
func (s *Server) replay(ops []int) {
	for _, op := range ops {
		s.st.apply(op)
	}
}

// Negative: journaling through a same-package wrapper still counts as
// the append (JournalAppend propagates through the summary fixpoint).
func (s *Server) journalOne(payload []byte) error {
	_, err := s.jw.Append(payload)
	return err
}

func (s *Server) handleWrapped(op int, payload []byte) error {
	if err := s.journalOne(payload); err != nil {
		return err
	}
	s.st.apply(op)
	return nil
}

// Positive: the deferred append runs at function exit and orders
// nothing; only the inline append anchors the check, and the mutation
// precedes it.
func (s *Server) handleDeferMasked(op int, payload []byte) error {
	defer func() { _, _ = s.jw.Append(nil) }()
	s.st.apply(op) // want "state mutation s\\.st\\.apply before the journal append"
	_, err := s.jw.Append(payload)
	return err
}

// Positive: an append tucked inside a helper literal executes when the
// literal is invoked, not where it is defined — defining it must not
// make later mutations look append-dominated.
func (s *Server) handleLitMasked(op int, payload []byte) error {
	logTrailer := func(p []byte) { _, _ = s.jw.Append(p) }
	s.st.apply(op) // want "state mutation s\\.st\\.apply before the journal append"
	if _, err := s.jw.Append(payload); err != nil {
		return err
	}
	logTrailer(payload)
	return nil
}

// Negative: the only append is deferred — there is no inline append
// for the domination check to anchor on, so the function is exempt
// like the replay path.
func (s *Server) deferOnlyAppend(op int, payload []byte) {
	defer func() { _, _ = s.jw.Append(payload) }()
	s.st.apply(op)
}

// Negative: a deferred cleanup mutation runs after the append on every
// completing path; its textual position above the append is not a
// violation.
func (s *Server) deferredCleanup(op int, payload []byte) error {
	defer s.st.apply(0)
	if _, err := s.jw.Append(payload); err != nil {
		return err
	}
	s.st.apply(op)
	return nil
}

// Sanctioned: a pre-journal mutation the author defends (e.g. a
// side-table rebuilt on recovery).
func (s *Server) handleAllowed(op int, payload []byte) error {
	s.st.apply(op) //lint:allow journalorder side table is rebuilt from scratch on recovery
	_, err := s.jw.Append(payload)
	return err
}
