// Package clocksok has no internal/ path segment, so walltime does
// not apply even though it reads the clock.
package clocksok

import "time"

func Stamp() int64 {
	return time.Now().Unix()
}
