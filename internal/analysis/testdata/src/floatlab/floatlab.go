// Package floatlab exercises the floatsum analyzer: scheduler-ordered
// float reductions are flagged, the per-index-slot merge pattern the
// auction uses is not.
package floatlab

import "sync"

func goroutineAccum(vals []float64) float64 {
	var sum float64
	done := make(chan struct{})
	go func() {
		for _, v := range vals {
			sum += v // want "scheduling-ordered"
		}
		close(done)
	}()
	<-done
	return sum
}

func chanAccum(ch chan float64) float64 {
	total := 0.0
	for v := range ch {
		total += v // want "channel-receive order"
	}
	return total
}

func recvFold(ch chan float64, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += <-ch // want "arrival order"
	}
	return total
}

func spelledFold(ch chan float64) float64 {
	total := 0.0
	total = total + <-ch // want "arrival order"
	return total
}

// indexSlots is the sanctioned shape: one slot per goroutine, plain
// assignment, serial reduction after the barrier.
func indexSlots(parts [][]float64) float64 {
	results := make([]float64, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local := 0.0
			for _, v := range parts[i] {
				local += v // goroutine-local accumulator
			}
			results[i] = local // index slot, never flagged
		}(i)
	}
	wg.Wait()
	total := 0.0
	for _, v := range results {
		total += v // serial slice reduction
	}
	return total
}

func allowed(ch chan float64) float64 {
	t := 0.0
	t += <-ch //lint:allow floatsum single producer, arrival order fixed by protocol
	return t
}
