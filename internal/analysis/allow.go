package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// parseAllows extracts every //lint:allow directive from files.
// Malformed directives (no analyzer, or no reason) are returned
// separately so the driver can report them: an exception without a
// recorded reason is itself an invariant violation.
func parseAllows(fset *token.FileSet, files []*ast.File) (ok []allowDirective, malformed []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, found := strings.CutPrefix(c.Text, "//lint:allow")
				if !found {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					malformed = append(malformed, Diagnostic{
						Pos: pos, Analyzer: "poclint",
						Message: "malformed //lint:allow: missing analyzer name",
					})
					continue
				}
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos: pos, Analyzer: "poclint",
						Message: "//lint:allow " + fields[0] + " needs a reason",
					})
					continue
				}
				ok = append(ok, allowDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
	}
	return ok, malformed
}

// applyAllows drops diagnostics sanctioned by a //lint:allow directive
// for the same analyzer on the same line or the line directly above,
// appends diagnostics for malformed directives, and returns the result
// sorted by position.
func applyAllows(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	allows, malformed := parseAllows(fset, files)
	type key struct {
		file     string
		line     int
		analyzer string
	}
	idx := make(map[key]bool, len(allows))
	for _, a := range allows {
		idx[key{a.file, a.line, a.analyzer}] = true
	}
	type at struct {
		file      string
		line, col int
		analyzer  string
	}
	seen := map[at]bool{}
	kept := diags[:0]
	for _, d := range diags {
		if idx[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
			idx[key{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
			continue
		}
		// Overlapping checks within one analyzer (e.g. a channel-range
		// accumulator inside a goroutine) may hit the same statement
		// twice; report each site once.
		k := at{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer}
		if seen[k] {
			continue
		}
		seen[k] = true
		kept = append(kept, d)
	}
	kept = append(kept, malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}
