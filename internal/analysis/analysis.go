// Package analysis is poclint's static-analysis framework: a minimal,
// dependency-free re-implementation of the golang.org/x/tools
// go/analysis model, plus the five analyzers that mechanize this
// repo's determinism and safety invariants (DESIGN.md §9).
//
// The repo's whole evaluation pipeline is gated on byte-identical
// output across runs and across Workers settings. The bug classes
// that break that gate — float accumulation in map-iteration order,
// process-seeded randomness, wall clocks in simulation code,
// nil-unsafe observability accessors, scheduling-ordered float
// reductions — are invisible to go vet, -race and every verdict-level
// test, so they are enforced here, mechanically, at CI time via
//
//	go vet -vettool=$(which poclint) ./...
//
// The framework mirrors go/analysis (Analyzer, Pass, Diagnostic) so
// the analyzers could be ported to the x/tools multichecker verbatim;
// it is reimplemented because this repo builds offline from the
// standard library alone. The vet driver lives in unitchecker.go.
//
// Sanctioned exceptions are annotated in source as
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above it; the reason is mandatory
// (a bare directive is itself a diagnostic). See allow.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Version identifies the lint baseline. Bench and sim artifacts embed
// it so every archived JSON records which invariant suite the tree
// passed when the artifact was produced. Bump when an analyzer is
// added, removed, or materially re-scoped.
const Version = "poclint/v2"

// An Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string

	// Applies reports whether the analyzer runs on the package with
	// the given import path. A nil Applies runs everywhere. Gating is
	// by path so e.g. wall clocks stay legal in cmd/ and examples/.
	Applies func(path string) bool

	Run func(*Pass) error
}

// All is the poclint suite in reporting order: the five v1 analyzers
// followed by the four fact-consuming v2 analyzers.
var All = []*Analyzer{
	MapOrdFloat, SeededRand, WallTime, ObsGuard, FloatSum,
	ArenaPair, JournalOrder, WriterEscape, DeepFold,
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Path     string // canonical import path
	// Facts is the fact universe: this package's summaries plus those
	// of its analyzed imports (facts.go). Never nil inside Run when
	// driven through RunAnalyzersWithFacts; the v1 RunAnalyzers entry
	// point supplies an empty set.
	Facts *FactSet

	diags *[]Diagnostic
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SrcFiles returns the package's non-test files. The invariants bind
// production code; _test.go files may use clocks, global rand and
// unordered iteration freely (the determinism gates themselves are
// tests).
func (p *Pass) SrcFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// RunAnalyzers runs every applicable analyzer over one type-checked
// package and returns the diagnostics with //lint:allow suppression
// already applied, sorted by position. Facts are computed for the
// package itself but no imported facts are consulted — the
// single-package v1 behavior. Drivers that thread dependency facts use
// RunAnalyzersWithFacts.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, path string) ([]Diagnostic, error) {

	diags, _, err := RunAnalyzersWithFacts(analyzers, fset, files, pkg, info, path, nil)
	return diags, err
}

// RunAnalyzersWithFacts computes the package's facts (consulting
// imported facts where provided), runs every applicable analyzer with
// the full fact universe, and returns the suppressed/sorted
// diagnostics together with the package's own facts for the driver to
// persist. Malformed facts directives (//lint:acquire, //lint:release,
// //lint:owner) are reported alongside analyzer diagnostics.
func RunAnalyzersWithFacts(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, path string,
	imports map[string]*PackageFacts) ([]Diagnostic, *PackageFacts, error) {

	facts, diags := ComputeFacts(fset, files, pkg, info, path, imports)
	if imports == nil {
		imports = map[string]*PackageFacts{}
	}
	fs := &FactSet{Cur: facts, Imports: imports}
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(path) {
			continue
		}
		pass := &Pass{
			Analyzer: a, Fset: fset, Files: files,
			Pkg: pkg, Info: info, Path: path, Facts: fs, diags: &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	return applyAllows(fset, files, diags), facts, nil
}

// hasSegment reports whether path contains seg as a whole '/'-separated
// element ("a/internal/b" has "internal"; "a/internals/b" does not).
func hasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// isFloat reports whether t's underlying type is a floating-point
// basic type (the only kind whose addition is order-sensitive).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootIdent returns the leftmost identifier of a selector/index/star/
// address-of chain (&res.Used[l] → res), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object behind e's root identifier
// is declared inside [lo, hi]. Unresolvable roots count as outside
// (conservative: package-level and imported state is "outside").
func (p *Pass) declaredWithin(e ast.Expr, lo, hi token.Pos) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := p.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() <= hi
}

// pkgFunc reports whether ident uses a package-level function of the
// package with import path pkgPath, returning its name.
func (p *Pass) pkgFunc(id *ast.Ident, pkgPath string) (string, bool) {
	fn, ok := p.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // method, not a package-level function
	}
	return fn.Name(), true
}
