package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrdFloat flags statements whose result depends on Go's randomized
// map iteration order in a way that perturbs float values or emitted
// bytes: the exact bug class PR 3 had to hunt by hand in
// provision.Route (per-link used-capacity), netsim.UsageByEndpoint
// (per-endpoint totals) and core.BillEpoch (billing sums).
//
// Inside the body of a `for ... range m` over a map it reports:
//
//   - compound float accumulation (+=, -=, *=, /=, or x = x ± ...)
//     into state declared outside the loop. Float addition is not
//     associative, so the sum shifts at ULP scale with key order —
//     invisible to verdicts, fatal to byte-identical exports.
//   - append of float-typed values to a slice declared outside the
//     loop: the element order (and any later reduction or emission of
//     it) inherits map order.
//   - fmt print calls (Print/Printf/Println/Fprint*…): emitted bytes
//     inherit map order directly.
//
// The sanctioned pattern is to collect the keys, sort, and range over
// the sorted slice — which is not a map range and so is never
// flagged. Writes of the form m2[k] op= v where k is exactly the
// range key are also exempt: each key is touched once, so no
// cross-iteration float op ever reorders.
var MapOrdFloat = &Analyzer{
	Name: "mapordfloat",
	Doc:  "float accumulation or output ordered by map iteration breaks byte-determinism",
	Run:  runMapOrdFloat,
}

func runMapOrdFloat(pass *Pass) error {
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, ok := typeAsMap(pass.TypeOf(rs.X)); !ok {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true // nested map ranges report their own bodies
		})
	}
	return nil
}

func typeAsMap(t types.Type) (*types.Map, bool) {
	if t == nil {
		return nil, false
	}
	m, ok := t.Underlying().(*types.Map)
	return m, ok
}

// checkMapRangeBody walks one map-range body (excluding nested map
// ranges, which are inspected as their own roots).
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	keyObj := rangeKeyObj(pass, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs {
			if _, isMap := typeAsMap(pass.TypeOf(inner.X)); isMap {
				return false
			}
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, keyObj, st)
		case *ast.CallExpr:
			if name, ok := fmtPrintCall(pass, st); ok {
				pass.Reportf(st.Pos(),
					"fmt.%s inside range over map: output order follows map iteration; range over sorted keys instead", name)
			}
		}
		return true
	})
}

// rangeKeyObj returns the object bound to the range key, if it is a
// plain identifier.
func rangeKeyObj(pass *Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}

var compoundOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

func checkAssign(pass *Pass, rs *ast.RangeStmt, keyObj types.Object, st *ast.AssignStmt) {
	// append(outerFloats, ...) in any assignment position.
	for _, rhs := range st.Rhs {
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) && len(call.Args) > 0 {
			slice := call.Args[0]
			// Only slices that resolve to state declared outside the
			// loop accumulate order; fresh slices ([]float64(nil),
			// make(...)) and loop-locals are rebuilt per iteration.
			root := rootIdent(slice)
			if root == nil || pass.ObjectOf(root) == nil {
				continue
			}
			if elemIsFloat(pass.TypeOf(slice)) && !pass.declaredWithin(slice, rs.Pos(), rs.End()) {
				pass.Reportf(st.Pos(),
					"append to float slice %s inside range over map: element order follows map iteration; range over sorted keys instead",
					exprString(slice))
			}
		}
	}

	switch {
	case compoundOps[st.Tok]:
		for _, lhs := range st.Lhs {
			reportFloatAccum(pass, rs, keyObj, st, lhs)
		}
	case st.Tok == token.ASSIGN && len(st.Lhs) == 1 && len(st.Rhs) == 1:
		// x = x ± expr (and expr ± x): spelled-out accumulation.
		if bin, ok := st.Rhs[0].(*ast.BinaryExpr); ok && arithmeticOp(bin.Op) {
			if sameExpr(bin.X, st.Lhs[0]) || sameExpr(bin.Y, st.Lhs[0]) {
				reportFloatAccum(pass, rs, keyObj, st, st.Lhs[0])
			}
		}
	}
}

func reportFloatAccum(pass *Pass, rs *ast.RangeStmt, keyObj types.Object, st *ast.AssignStmt, lhs ast.Expr) {
	if !isFloat(pass.TypeOf(lhs)) {
		return // integer ops are associative; only floats drift
	}
	if pass.declaredWithin(lhs, rs.Pos(), rs.End()) {
		return // loop-local accumulator, reset every iteration
	}
	// m2[k] op= v with k the range key: one write per key, no
	// cross-iteration reordering.
	if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
		if id, ok := ix.Index.(*ast.Ident); ok && pass.ObjectOf(id) == keyObj {
			return
		}
	}
	pass.Reportf(st.Pos(),
		"float accumulation into %s ordered by map iteration drifts at ULP scale; range over sorted keys instead",
		exprString(lhs))
}

func arithmeticOp(op token.Token) bool {
	return op == token.ADD || op == token.SUB || op == token.MUL || op == token.QUO
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func elemIsFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFloat(s.Elem())
}

// fmtPrintCall reports calls to fmt's byte-emitting functions.
func fmtPrintCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name, ok := pass.pkgFunc(sel.Sel, "fmt")
	if !ok {
		return "", false
	}
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return name, true
	}
	return "", false
}

// sameExpr reports whether two expressions are syntactically
// identical identifier/selector/index chains (enough to recognize
// `x = x + v` accumulators; anything fancier is out of scope).
func sameExpr(a, b ast.Expr) bool {
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && sameExpr(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(x.X, y.X) && sameExpr(x.Index, y.Index)
	case *ast.ParenExpr:
		return sameExpr(x.X, b)
	}
	if y, ok := b.(*ast.ParenExpr); ok {
		return sameExpr(a, y.X)
	}
	return false
}

// exprString renders a short lvalue for the message.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[" + exprString(x.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "(…)"
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.UnaryExpr:
		return x.Op.String() + exprString(x.X)
	}
	return "expression"
}
