package analysis

import (
	"go/ast"
	"go/token"
)

// A minimal intra-function control-flow graph, built from the AST,
// for the flow-sensitive analyzers (arenapair's all-paths release
// check, journalorder's dominance check). It models the statement
// structures the repo actually uses — if/else, for, range, switch,
// type switch, select, return, break/continue, labeled statements,
// panic — and is deliberately conservative where Go gets exotic:
// goto edges go straight to exit, and function literals are opaque
// (their bodies are not part of the enclosing function's graph).

// cfgBlock is one basic block: a run of simple statements plus the
// successor edges out of it.
type cfgBlock struct {
	stmts  []ast.Stmt
	succs  []*cfgBlock
	npreds int
	// exits marks a block that leaves the function: a return, a panic,
	// or the synthetic exit block reached by falling off the end.
	exits bool
	// ret is the terminating return/panic statement when exits was set
	// by one (nil for the synthetic exit).
	ret ast.Stmt
}

// cfg is one function body's graph.
type cfg struct {
	entry *cfgBlock
	exit  *cfgBlock // synthetic fall-off-the-end block
	all   []*cfgBlock
}

// loopFrame tracks the jump targets of an enclosing loop (or the
// break target of a switch/select) for break/continue resolution.
type loopFrame struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select frames
}

type cfgBuilder struct {
	g            *cfg
	loops        []loopFrame
	pendingLabel string // label to attach to the next pushed frame
}

// buildCFG builds the graph for a function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}}
	b.g.exit = b.newBlock()
	b.g.exit.exits = true
	b.g.entry = b.newBlock()
	if last := b.stmts(body.List, b.g.entry); last != nil {
		b.link(last, b.g.exit)
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.all = append(b.g.all, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.npreds++
}

// pushFrame registers a loop/switch frame, consuming any pending
// label from an enclosing LabeledStmt.
func (b *cfgBuilder) pushFrame(f loopFrame) {
	f.label = b.pendingLabel
	b.pendingLabel = ""
	b.loops = append(b.loops, f)
}

func (b *cfgBuilder) popFrame() {
	b.loops = b.loops[:len(b.loops)-1]
}

// stmts threads a statement list through cur, returning the live block
// after the list (nil if control never falls through).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *cfgBlock) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a terminator: island block,
			// nothing flows in.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt adds one statement to cur, returning the block where control
// continues (nil if it doesn't).
func (b *cfgBuilder) stmt(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, st)
		cur.exits = true
		cur.ret = st
		return nil

	case *ast.ExprStmt:
		cur.stmts = append(cur.stmts, st)
		if call, ok := st.X.(*ast.CallExpr); ok && isPanicCall(call) {
			cur.exits = true
			cur.ret = st
			return nil
		}
		return cur

	case *ast.IfStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		cur.stmts = append(cur.stmts, &ast.ExprStmt{X: st.Cond})
		thenB := b.newBlock()
		b.link(cur, thenB)
		thenEnd := b.stmts(st.Body.List, thenB)
		var elseEnd *cfgBlock
		hasElse := st.Else != nil
		if hasElse {
			elseB := b.newBlock()
			b.link(cur, elseB)
			elseEnd = b.stmt(st.Else, elseB)
		}
		if !hasElse && thenEnd == nil {
			// then terminates, no else: control continues in a fresh
			// block fed only by the false edge.
			after := b.newBlock()
			b.link(cur, after)
			return after
		}
		if thenEnd == nil && elseEnd == nil {
			return nil // both arms terminate
		}
		after := b.newBlock()
		if !hasElse {
			b.link(cur, after)
		}
		if thenEnd != nil {
			b.link(thenEnd, after)
		}
		if elseEnd != nil {
			b.link(elseEnd, after)
		}
		return after

	case *ast.BlockStmt:
		return b.stmts(st.List, cur)

	case *ast.ForStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		head := b.newBlock()
		b.link(cur, head)
		if st.Cond != nil {
			head.stmts = append(head.stmts, &ast.ExprStmt{X: st.Cond})
		}
		after := b.newBlock()
		post := head
		if st.Post != nil {
			post = b.newBlock()
			post.stmts = append(post.stmts, st.Post)
			b.link(post, head)
		}
		b.pushFrame(loopFrame{breakTo: after, continueTo: post})
		bodyB := b.newBlock()
		b.link(head, bodyB)
		if st.Cond != nil {
			b.link(head, after) // cond false
		}
		if bodyEnd := b.stmts(st.Body.List, bodyB); bodyEnd != nil {
			b.link(bodyEnd, post)
		}
		b.popFrame()
		if st.Cond == nil && after.npreds == 0 {
			return nil // for {} with no break never falls through
		}
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.link(cur, head)
		head.stmts = append(head.stmts, &ast.ExprStmt{X: st.X})
		after := b.newBlock()
		b.link(head, after) // empty collection
		b.pushFrame(loopFrame{breakTo: after, continueTo: head})
		bodyB := b.newBlock()
		b.link(head, bodyB)
		if bodyEnd := b.stmts(st.Body.List, bodyB); bodyEnd != nil {
			b.link(bodyEnd, head)
		}
		b.popFrame()
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.switchLike(s, cur)

	case *ast.LabeledStmt:
		switch st.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = st.Label.Name
		}
		return b.stmt(st.Stmt, cur)

	case *ast.BranchStmt:
		cur.stmts = append(cur.stmts, st)
		switch st.Tok {
		case token.BREAK:
			if f := b.findFrame(st.Label, false); f != nil {
				b.link(cur, f.breakTo)
			}
		case token.CONTINUE:
			if f := b.findFrame(st.Label, true); f != nil {
				b.link(cur, f.continueTo)
			}
		case token.GOTO:
			// Conservative: a goto may land anywhere; route it to exit
			// so arenapair never claims a path it cannot see.
			b.link(cur, b.g.exit)
		case token.FALLTHROUGH:
			// Edge added structurally in switchLike.
			return cur
		}
		return nil

	default:
		// defer, go, assignments, declarations, sends, incdec, empty.
		cur.stmts = append(cur.stmts, st)
		return cur
	}
}

// findFrame resolves break (needContinue=false) or continue
// (needContinue=true) to its frame: innermost eligible, or the one
// with the matching label.
func (b *cfgBuilder) findFrame(label *ast.Ident, needContinue bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == nil || f.label == label.Name {
			return f
		}
	}
	return nil
}

// switchLike builds switch / type-switch / select: each clause is an
// alternative successor; a missing default adds a skip edge.
func (b *cfgBuilder) switchLike(s ast.Stmt, cur *cfgBlock) *cfgBlock {
	var body *ast.BlockStmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		if st.Tag != nil {
			cur.stmts = append(cur.stmts, &ast.ExprStmt{X: st.Tag})
		}
		body = st.Body
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			cur = b.stmt(st.Init, cur)
		}
		cur.stmts = append(cur.stmts, st.Assign)
		body = st.Body
	case *ast.SelectStmt:
		body = st.Body
	}
	after := b.newBlock()
	b.pushFrame(loopFrame{breakTo: after})
	type clause struct {
		blk  *cfgBlock
		list []ast.Stmt
		fall bool
	}
	var clauses []clause
	hasDefault := false
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			hasDefault = hasDefault || cc.List == nil
			list = cc.Body
		case *ast.CommClause:
			hasDefault = hasDefault || cc.Comm == nil
			if cc.Comm != nil {
				list = append([]ast.Stmt{cc.Comm}, cc.Body...)
			} else {
				list = cc.Body
			}
		}
		blk := b.newBlock()
		b.link(cur, blk)
		fall := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fall = true
			}
		}
		clauses = append(clauses, clause{blk: blk, list: list, fall: fall})
	}
	for i, c := range clauses {
		end := b.stmts(c.list, c.blk)
		if end == nil {
			continue
		}
		if c.fall && i+1 < len(clauses) {
			b.link(end, clauses[i+1].blk)
			continue
		}
		b.link(end, after)
	}
	b.popFrame()
	if !hasDefault {
		b.link(cur, after) // no clause matched
	}
	if after.npreds == 0 {
		return nil
	}
	return after
}

// isPanicCall reports a direct call to the builtin panic.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
