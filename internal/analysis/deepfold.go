package analysis

import (
	"go/ast"
	"go/token"
)

// DeepFold is the interprocedural upgrade of MapOrdFloat and FloatSum:
// those two see a float fold only when it is spelled inline; a helper
// call hides it completely. DeepFold follows calls through function
// summaries (facts.go) — inside an unordered context (a map-range
// body, a goroutine literal, a channel-range body) it flags any call
// whose callee folds floats into state that outlives the context:
//
//   - the callee folds into package-level/captured state (FoldGlobal):
//     always ordered by the context, always flagged;
//   - the callee folds into its receiver (FoldRecv): flagged when the
//     receiver is declared outside the context;
//   - the callee folds into a pointer/slice/map parameter
//     (FoldParams): flagged when the corresponding argument is rooted
//     outside the context.
//
// The target precision is what keeps the repo's sanctioned parallel
// pattern clean: provision's Constraint-2 sweep calls Route from
// worker goroutines, and Route folds heavily — but into a router
// arena it acquires per call, so Route carries no fold facts and the
// sweep is not flagged. Summaries cross package boundaries via the
// vet facts files, so a fleet cell calling a provision helper is
// checked with full knowledge of what that helper folds.
var DeepFold = &Analyzer{
	Name: "deepfold",
	Doc:  "calls in map ranges/goroutines to functions that fold floats into outside state break determinism",
	Run:  runDeepFold,
}

func runDeepFold(pass *Pass) error {
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if _, isMap := typeAsMap(pass.TypeOf(x.X)); isMap {
					checkFoldCalls(pass, x.Body, x.Pos(), x.End(), "inside range over map: iteration order perturbs the fold; range over sorted keys")
				} else if isChanType(pass.TypeOf(x.X)) {
					checkFoldCalls(pass, x.Body, x.Pos(), x.End(), "in channel-receive order: arrival order perturbs the fold; collect into index slots and reduce serially")
				}
			case *ast.GoStmt:
				const goContext = "from a goroutine: completion order perturbs the fold (even under a lock); fold into per-worker slots and reduce in index order"
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					checkFoldCalls(pass, lit.Body, lit.Pos(), lit.End(), goContext)
				} else {
					// Direct-call goroutine: `go shared.Add(v)`. There is
					// no literal body to scope the context, and the
					// receiver and arguments are evaluated in the spawning
					// frame — any rooted state the callee folds into is
					// outside the goroutine by construction.
					checkFoldCall(pass, x.Call, func(ast.Expr) bool { return true }, goContext)
				}
			}
			return true
		})
	}
	return nil
}

// checkFoldCalls flags calls in body whose callee summary folds floats
// into state rooted outside [lo, hi].
func checkFoldCalls(pass *Pass, body ast.Node, lo, hi token.Pos, context string) {
	outside := func(e ast.Expr) bool { return !pass.declaredWithin(e, lo, hi) }
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkFoldCall(pass, call, outside, context)
		}
		return true
	})
}

// checkFoldCall classifies one call against its callee's fold summary;
// outside decides whether an expression's root lives beyond the
// unordered context.
func checkFoldCall(pass *Pass, call *ast.CallExpr, outside func(ast.Expr) bool, context string) {
	callee := calleeFunc(pass, call)
	if callee == nil {
		return
	}
	sum, ok := pass.Facts.SummaryOf(callee)
	if !ok || !sum.FoldsFloat() {
		return
	}
	name := funcKey(callee)
	if sum.FoldGlobal {
		pass.Reportf(call.Pos(),
			"%s folds floats into package-level or captured state %s", name, context)
		return
	}
	if sum.FoldRecv {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && outside(sel.X) {
			pass.Reportf(call.Pos(),
				"%s folds floats into %s, declared outside, %s", name, exprString(sel.X), context)
			return
		}
	}
	for _, j := range sum.FoldParams {
		if j >= len(call.Args) {
			continue
		}
		arg := call.Args[j]
		if root := rootIdent(arg); root == nil {
			continue // fresh value (literal, call result): context-local
		}
		if outside(arg) {
			pass.Reportf(call.Pos(),
				"%s folds floats into argument %s, declared outside, %s", name, exprString(arg), context)
			return
		}
	}
}
