package analysis

import (
	"go/ast"
	"go/types"
)

// ArenaPair checks that every pooled-resource acquire is released on
// every path out of the acquiring function — including early error
// returns, and panics via defer. Acquire/release points are declared
// in source:
//
//	//lint:acquire arena
//	func (ws *Workspace) acquire() *router { ... }
//
//	//lint:release arena
//	func (ws *Workspace) release(rt *router) { ... }
//
// and flow through facts, so a package can leak an arena acquired
// from another package and still be caught. The check is
// flow-sensitive over the function's CFG: from each `x := acquire()`
// binding it walks every path; a path is safe when it releases x,
// hands ownership away (x is returned, stored into a field/variable,
// passed to a non-release call, sent on a channel, or captured by a
// composite literal — the new holder's function is then checked in
// turn wherever it releases), or the function defers a statement
// mentioning x (defer runs on panic too, which no path walk can see).
// Reaching a return while still holding x is a leak, reported at the
// acquire.
//
// Workspace arenas are the repo's hottest allocation-avoidance
// machinery (PR 5); a leaked router pins an arena slot forever and
// silently degrades every later Run on the pool.
var ArenaPair = &Analyzer{
	Name: "arenapair",
	Doc:  "pooled-resource acquires must be released on all paths (or deferred); leaks pin arena slots",
	Run:  runArenaPair,
}

func runArenaPair(pass *Pass) error {
	for _, f := range pass.SrcFiles() {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			checkArenaFunc(pass, decl)
		}
	}
	return nil
}

// acquireBinding is one `x := acquire()` site inside a function.
type acquireBinding struct {
	stmt ast.Stmt     // the binding statement
	obj  types.Object // the variable holding the resource
	kind string       // resource kind from the acquire directive
	fn   string       // acquiring callee name, for the message
}

func checkArenaFunc(pass *Pass, decl *ast.FuncDecl) {
	g := buildCFG(decl.Body)
	var acquires []acquireBinding
	for _, blk := range g.all {
		for _, st := range blk.stmts {
			if ab, ok := acquireAt(pass, st); ok {
				acquires = append(acquires, ab)
			}
		}
	}
	if len(acquires) == 0 {
		return
	}
	deferred := deferredObjs(pass, decl.Body)
	for _, ab := range acquires {
		if deferred[ab.obj] {
			continue // defer releases on every exit, panics included
		}
		checkAcquirePaths(pass, g, ab)
	}
}

// acquireAt recognizes `x := f()` / `x = f()` where f carries an
// acquire fact and x is a plain identifier. Bindings that immediately
// hand the value elsewhere (composite literals, multi-assign, field
// stores) transfer ownership at birth and are not tracked.
func acquireAt(pass *Pass, st ast.Stmt) (acquireBinding, bool) {
	as, ok := st.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return acquireBinding{}, false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return acquireBinding{}, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return acquireBinding{}, false
	}
	callee := calleeFunc(pass, call)
	if callee == nil {
		return acquireBinding{}, false
	}
	sum, ok := pass.Facts.SummaryOf(callee)
	if !ok || sum.Acquires == "" {
		return acquireBinding{}, false
	}
	obj := pass.ObjectOf(id)
	if obj == nil {
		return acquireBinding{}, false
	}
	return acquireBinding{stmt: st, obj: obj, kind: sum.Acquires, fn: callee.Name()}, true
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// deferredObjs collects every object mentioned inside a defer
// statement (including defers wrapping function literals).
func deferredObjs(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	objs := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		ast.Inspect(ds.Call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					objs[obj] = true
				}
			}
			return true
		})
		return true
	})
	return objs
}

// useKind classifies how one statement touches the tracked object.
type useKind int

const (
	useNone      useKind = iota
	useNeutral           // method call / field access / comparison on x
	useRelease           // x passed to (or receiver of) a releasing call
	useEscape            // ownership handed away
	useOverwrite         // x rebound while still held
)

// checkAcquirePaths walks every CFG path from the acquire; the first
// path found that reaches an exit while still holding reports a leak.
func checkAcquirePaths(pass *Pass, g *cfg, ab acquireBinding) {
	// Locate the acquire inside its block.
	var start *cfgBlock
	startIdx := -1
	for _, blk := range g.all {
		for i, st := range blk.stmts {
			if st == ab.stmt {
				start, startIdx = blk, i
				break
			}
		}
		if start != nil {
			break
		}
	}
	if start == nil {
		return
	}
	// The start block counts as visited from the outset: a loop
	// backedge that reaches it again would otherwise re-walk the
	// acquire statement itself and misreport it as an overwrite of the
	// value it just bound. Treating the backedge as the end of the path
	// leaves the leak (if any) to be reported where an exit is reached
	// while still holding.
	visited := map[*cfgBlock]bool{}
	var walk func(blk *cfgBlock, from int) bool // true = leak found
	walk = func(blk *cfgBlock, from int) bool {
		for i := from; i < len(blk.stmts); i++ {
			switch classifyUse(pass, blk.stmts[i], ab.obj) {
			case useRelease, useEscape:
				return false // this path is done with x
			case useOverwrite:
				pass.Reportf(ab.stmt.Pos(),
					"%s acquired by %s is overwritten at line %d while still held; release it first",
					ab.obj.Name(), ab.fn, pass.Fset.Position(blk.stmts[i].Pos()).Line)
				return true
			}
		}
		if blk.exits {
			pos := "the end of the function"
			if blk.ret != nil {
				pos = "the return at line " + itoa(pass.Fset.Position(blk.ret.Pos()).Line)
			}
			pass.Reportf(ab.stmt.Pos(),
				"%s acquired by %s (kind %q) is not released on the path reaching %s; release on every path or defer the release",
				ab.obj.Name(), ab.fn, ab.kind, pos)
			return true
		}
		for _, s := range blk.succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	visited[start] = true
	walk(start, startIdx+1)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// classifyUse inspects one statement for uses of obj.
func classifyUse(pass *Pass, st ast.Stmt, obj types.Object) useKind {
	// Rebinding the variable itself loses the held value.
	if as, ok := st.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				return useOverwrite
			}
		}
	}
	kind := useNone
	upgrade := func(k useKind) {
		if k > kind {
			kind = k
		}
	}
	ast.Inspect(st, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			callee := calleeFunc(pass, x)
			releasing := false
			if callee != nil {
				if sum, ok := pass.Facts.SummaryOf(callee); ok && sum.Releases != "" {
					releasing = true
				}
			}
			// Receiver position: x.Close() — neutral unless releasing.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					if releasing {
						upgrade(useRelease)
					} else {
						upgrade(useNeutral)
					}
				}
			}
			for _, arg := range x.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
					if releasing {
						upgrade(useRelease)
					} else {
						upgrade(useEscape)
					}
				} else if mentionsObj(pass, arg, obj) {
					// x.field / &x etc. as argument: treat like x.
					if releasing {
						upgrade(useRelease)
					} else {
						upgrade(useEscape)
					}
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if mentionsObj(pass, r, obj) {
					upgrade(useEscape)
				}
			}
			return true
		case *ast.SendStmt:
			if mentionsObj(pass, x.Value, obj) {
				upgrade(useEscape)
			}
			return true
		case *ast.CompositeLit:
			if mentionsObj(pass, x, obj) {
				upgrade(useEscape)
			}
			return false
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				// x on an assignment RHS stores the pointer somewhere;
				// calls are classified above, so skip them here.
				if _, isCall := rhs.(*ast.CallExpr); isCall {
					continue
				}
				if mentionsObj(pass, rhs, obj) {
					upgrade(useEscape)
				}
			}
			return true
		case *ast.GoStmt:
			if mentionsObj(pass, x.Call, obj) {
				upgrade(useEscape)
			}
			return false
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				upgrade(useNeutral) // x.field read / method base
			}
			return true
		case *ast.BinaryExpr:
			if id, ok := x.X.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				upgrade(useNeutral) // nil checks, comparisons
			}
			if id, ok := x.Y.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				upgrade(useNeutral)
			}
			return true
		}
		return true
	})
	return kind
}

// mentionsObj reports whether e references obj anywhere.
func mentionsObj(pass *Pass, e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
