package analysis

import (
	"go/ast"
)

// SeededRand flags use of math/rand's process-global generator in
// library code. The global source is seeded per process (randomly
// since Go 1.20), so any draw from it makes output differ run to run.
// Deterministic code must thread an explicitly seeded *rand.Rand from
// configuration (the topo.ZooConfig.Seed / chaos schedule pattern):
// rand.New(rand.NewSource(seed)) is the sanctioned constructor and is
// not flagged, and methods on a *rand.Rand value are always fine.
//
// cmd/ and examples/ are exempt: binaries may roll dice, the fabric
// may not.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "math/rand globals are process-seeded; thread an explicitly seeded *rand.Rand",
	Applies: func(path string) bool {
		return !hasSegment(path, "cmd") && !hasSegment(path, "examples")
	},
	Run: runSeededRand,
}

// randAllowed are the package-level constructors that produce an
// explicitly seeded generator rather than drawing from the global one.
var randAllowed = map[string]bool{
	// math/rand
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2
	"NewPCG": true, "NewChaCha8": true,
}

func runSeededRand(pass *Pass) error {
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			for _, pkg := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := pass.pkgFunc(sel.Sel, pkg); ok && !randAllowed[name] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-global source; thread an explicitly seeded *rand.Rand from config", name)
				}
			}
			return true
		})
	}
	return nil
}
