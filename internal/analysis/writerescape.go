package analysis

import (
	"go/ast"
	"go/types"
)

// WriterEscape enforces single-writer ownership of annotated fields.
// The repo's concurrency discipline is not "lock everything" but
// "one writer, everyone else reads snapshots": pocd funnels all
// mutations through one epoch loop, fleet workers write only their own
// index slots. A field whose writes are confined to its owner needs no
// lock and stays deterministic; one stray write from a spawned
// goroutine reintroduces scheduling order into state the reports hash.
//
// Ownership is declared on the field:
//
//	type Server struct {
//		st *state //lint:owner New,loop
//	}
//
// Owner names are bare function names or Type.Method. A write to the
// field (assignment, compound assignment, ++/--) is flagged when it
// happens (a) lexically outside every owner function, or (b) inside a
// goroutine literal — even an owner may not hand the write to `go`.
// Because ownership travels through facts, writes to an exported
// annotated field from another package are caught too.
var WriterEscape = &Analyzer{
	Name: "writerescape",
	Doc:  "fields owned by a single-writer loop (//lint:owner) must not be written elsewhere or from goroutines",
	Run:  runWriterEscape,
}

func runWriterEscape(pass *Pass) error {
	for _, f := range pass.SrcFiles() {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			name, typeName := declNames(pass, decl)
			checkWriterBody(pass, decl.Body, name, typeName, false)
		}
	}
	return nil
}

// declNames returns the function's bare name and, for methods, the
// receiver type name.
func declNames(pass *Pass, decl *ast.FuncDecl) (name, typeName string) {
	name = decl.Name.Name
	if fn, ok := pass.Info.Defs[decl.Name].(*types.Func); ok {
		if key := funcKey(fn); key != "" {
			if i := len(key) - len(name) - 1; i > 0 && key[i] == '.' {
				typeName = key[:i]
			}
		}
	}
	return name, typeName
}

// checkWriterBody walks one body; inGo marks that we are inside a
// goroutine launched from the enclosing function.
func checkWriterBody(pass *Pass, body ast.Node, fnName, typeName string, inGo bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				checkWriterBody(pass, lit.Body, fnName, typeName, true)
				// Arguments evaluate in the launching function.
				for _, arg := range x.Call.Args {
					checkWriterBody(pass, arg, fnName, typeName, inGo)
				}
				return false
			}
			return true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkOwnedWrite(pass, lhs, fnName, typeName, inGo)
			}
		case *ast.IncDecStmt:
			checkOwnedWrite(pass, x.X, fnName, typeName, inGo)
		}
		return true
	})
}

// checkOwnedWrite reports a write through a selector that resolves to
// an owner-annotated field when the writer isn't an owner, or when the
// write happens inside a goroutine.
func checkOwnedWrite(pass *Pass, lhs ast.Expr, fnName, typeName string, inGo bool) {
	// Unwrap stars/parens/indexes down to the selector being assigned.
	e := lhs
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return
	}
	field, structName := fieldOf(pass, sel)
	if field == nil {
		return
	}
	owners, ok := pass.Facts.OwnersOf(field, structName)
	if !ok {
		return
	}
	qual := structName + "." + field.Name()
	if inGo {
		pass.Reportf(lhs.Pos(),
			"write to %s from a spawned goroutine: the field is single-writer (owners: %s); route the mutation through the owner loop",
			qual, ownerNames(owners))
		return
	}
	for _, o := range owners {
		if o == fnName || (typeName != "" && o == typeName+"."+fnName) {
			return
		}
	}
	pass.Reportf(lhs.Pos(),
		"write to %s outside its owner (allowed: %s); the field is single-writer by contract",
		qual, ownerNames(owners))
}

// fieldOf resolves a selector to the struct field it names and the
// named struct type it is selected from.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) (*types.Var, string) {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, ""
	}
	t := pass.TypeOf(sel.X)
	for t != nil {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	return field, named.Obj().Name()
}
