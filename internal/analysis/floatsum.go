package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum flags float reductions whose term order is decided by the
// scheduler rather than by data: accumulating into captured state
// from inside a `go func` literal, ranging over a channel into a
// float accumulator, and folding channel receives directly into a
// float. Even under a mutex the result is race-free yet
// nondeterministic — float addition is not associative, so the sum
// lands on different ULPs depending on which goroutine got there
// first, exactly the drift the Workers-invariance gate forbids.
//
// The sanctioned shape is the one the auction's parallel winner
// determination uses: give each goroutine its own index slot
// (results[i] = …, a plain assignment, never flagged) and reduce the
// slice serially in index order after wg.Wait().
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "float reduction in goroutine/channel order is scheduler-dependent; merge per-index results serially",
	Run:  runFloatSum,
}

func runFloatSum(pass *Pass) error {
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineBody(pass, lit)
				}
			case *ast.RangeStmt:
				if isChanType(pass.TypeOf(x.X)) {
					checkChanRangeBody(pass, x)
				}
			case *ast.AssignStmt:
				checkRecvFold(pass, x)
			}
			return true
		})
	}
	return nil
}

// checkGoroutineBody flags compound float assignment to variables
// captured from outside the goroutine's function literal.
func checkGoroutineBody(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[st.Tok] {
			return true
		}
		for _, lhs := range st.Lhs {
			if !isFloat(pass.TypeOf(lhs)) {
				continue
			}
			if pass.declaredWithin(lhs, lit.Pos(), lit.End()) {
				continue // goroutine-local accumulator
			}
			pass.Reportf(st.Pos(),
				"float accumulation into captured %s from a goroutine is scheduling-ordered (even under a lock); write a per-goroutine index slot and reduce serially",
				exprString(lhs))
		}
		return true
	})
}

// checkChanRangeBody flags float accumulation inside `for v := range ch`.
func checkChanRangeBody(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || !compoundOps[st.Tok] {
			return true
		}
		for _, lhs := range st.Lhs {
			if !isFloat(pass.TypeOf(lhs)) {
				continue
			}
			if pass.declaredWithin(lhs, rs.Pos(), rs.End()) {
				continue
			}
			pass.Reportf(st.Pos(),
				"float accumulation into %s in channel-receive order is scheduler-dependent; collect into index slots and reduce serially",
				exprString(lhs))
		}
		return true
	})
}

// checkRecvFold flags `x op= <-ch` and `x = x + <-ch` folds.
func checkRecvFold(pass *Pass, st *ast.AssignStmt) {
	fold := compoundOps[st.Tok]
	if !fold && st.Tok == token.ASSIGN && len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if bin, ok := st.Rhs[0].(*ast.BinaryExpr); ok && arithmeticOp(bin.Op) &&
			(sameExpr(bin.X, st.Lhs[0]) || sameExpr(bin.Y, st.Lhs[0])) {
			fold = true
		}
	}
	if !fold || len(st.Lhs) == 0 || !isFloat(pass.TypeOf(st.Lhs[0])) {
		return
	}
	for _, rhs := range st.Rhs {
		if containsChanRecv(rhs) {
			pass.Reportf(st.Pos(),
				"folding channel receives into %s sums in arrival order; collect into index slots and reduce serially",
				exprString(st.Lhs[0]))
			return
		}
	}
}

func containsChanRecv(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
		}
		return !found
	})
	return found
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
