package topo

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// zooGML renders an entire generated zoo as concatenated GML.
func zooGML(t *testing.T, seed int64, networks int) []byte {
	t.Helper()
	w := DefaultWorld()
	cfg := DefaultZooConfig()
	cfg.Seed = seed
	cfg.NumNetworks = networks
	var buf bytes.Buffer
	for _, net := range GenerateZoo(w, cfg) {
		if err := WriteGML(w, net, &buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestZooGMLDeterminism pins the zoogen contract the fleet's topology
// axis depends on: the same seed and parameters must emit byte-
// identical GML (fresh world each time — nothing may leak between
// generations), and a different seed must actually change the corpus.
func TestZooGMLDeterminism(t *testing.T) {
	base := zooGML(t, 17, 12)
	if len(base) == 0 {
		t.Fatal("zoo rendered to zero bytes")
	}
	if again := zooGML(t, 17, 12); !bytes.Equal(base, again) {
		t.Fatal("same seed, different GML bytes")
	}
	if other := zooGML(t, 18, 12); bytes.Equal(base, other) {
		t.Fatal("different seed produced identical GML")
	}
}

// TestZooGMLRoundTrip: a generated zoo written to a corpus directory
// must load back with the same per-network shape.
func TestZooGMLRoundTrip(t *testing.T) {
	w := DefaultWorld()
	cfg := DefaultZooConfig()
	cfg.Seed = 5
	cfg.NumNetworks = 6
	nets := GenerateZoo(w, cfg)
	dir := t.TempDir()
	for i, net := range nets {
		f, err := os.Create(filepath.Join(dir, net.Name+".gml"))
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteGML(w, net, f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		_ = i
	}
	loaded, err := LoadGMLCorpus(DefaultWorld(), dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(nets) {
		t.Fatalf("loaded %d networks, wrote %d", len(loaded), len(nets))
	}
	byName := map[string]Network{}
	for _, n := range loaded {
		byName[n.Name] = n
	}
	for _, want := range nets {
		got, ok := byName[want.Name]
		if !ok {
			t.Fatalf("network %q missing after round trip", want.Name)
		}
		if len(got.Sites) != len(want.Sites) || len(got.Links) != len(want.Links) {
			t.Fatalf("%q: %d sites/%d links after round trip, wrote %d/%d",
				want.Name, len(got.Sites), len(got.Links), len(want.Sites), len(want.Links))
		}
	}
}

func TestLoadGMLCorpusEdgeCases(t *testing.T) {
	const dupLabels = `graph [
  label "dup"
  node [ id 0 label "SameCity" ]
  node [ id 1 label "SameCity" ]
  node [ id 2 label "OtherCity" ]
  edge [ source 0 target 1 LinkSpeed 10.0 ]
  edge [ source 0 target 2 LinkSpeed 20.0 ]
]`
	const parallelEdges = `graph [
  label "par"
  node [ id 0 label "CityA" ]
  node [ id 1 label "CityB" ]
  edge [ source 0 target 1 LinkSpeed 10.0 ]
  edge [ source 0 target 1 LinkSpeed 40.0 ]
]`
	cases := []struct {
		name    string
		files   map[string]string
		wantErr string
		check   func(t *testing.T, nets []Network)
	}{
		{
			name:    "empty graph",
			files:   map[string]string{"a.gml": `graph [ label "void" ]`},
			wantErr: "empty graph",
		},
		{
			name:    "nodes but no edges",
			files:   map[string]string{"a.gml": `graph [ node [ id 0 label "Lonely" ] ]`},
			wantErr: "no usable links",
		},
		{
			name:    "no graph block",
			files:   map[string]string{"a.gml": `Creator "nobody"`},
			wantErr: "no graph block",
		},
		{
			name:    "no gml files",
			files:   map[string]string{"notes.txt": "hi"},
			wantErr: "no .gml files",
		},
		{
			name:  "duplicate node names collapse and drop self-loops",
			files: map[string]string{"dup.gml": dupLabels},
			check: func(t *testing.T, nets []Network) {
				if len(nets) != 1 {
					t.Fatalf("got %d networks", len(nets))
				}
				// Two labels → two sites; the 0–1 edge became a
				// self-loop on the collapsed city and was dropped.
				if len(nets[0].Sites) != 2 || len(nets[0].Links) != 1 {
					t.Fatalf("sites=%d links=%d, want 2 sites, 1 link",
						len(nets[0].Sites), len(nets[0].Links))
				}
				if l := nets[0].Links[0]; l.A == l.B {
					t.Fatal("self-loop survived the loader")
				}
			},
		},
		{
			name:  "parallel edges kept",
			files: map[string]string{"par.gml": parallelEdges},
			check: func(t *testing.T, nets []Network) {
				if len(nets[0].Links) != 2 {
					t.Fatalf("got %d links, parallel edge was dropped", len(nets[0].Links))
				}
				if nets[0].Links[0].Capacity == nets[0].Links[1].Capacity {
					t.Fatal("parallel edges lost their distinct capacities")
				}
			},
		},
		{
			name: "duplicate network names disambiguated in file order",
			files: map[string]string{
				"b.gml": `graph [ label "twin" node [ id 0 label "X1" ] node [ id 1 label "X2" ] edge [ source 0 target 1 ] ]`,
				"a.gml": `graph [ label "twin" node [ id 0 label "Y1" ] node [ id 1 label "Y2" ] edge [ source 0 target 1 ] ]`,
			},
			check: func(t *testing.T, nets []Network) {
				if nets[0].Name != "twin" || nets[1].Name != "twin#2" {
					t.Fatalf("names %q, %q; want twin, twin#2", nets[0].Name, nets[1].Name)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for name, body := range tc.files {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			nets, err := LoadGMLCorpus(DefaultWorld(), dir, 10)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, nets)
		})
	}
}
