package topo

import (
	"fmt"
	"math/rand"
	"sort"
)

// ZooConfig controls the synthetic topology-zoo generator. The zero
// value is not useful; use DefaultZooConfig.
type ZooConfig struct {
	Seed        int64
	NumNetworks int     // networks before filtering/merging
	MinSites    int     // smallest network size
	MaxSites    int     // largest network size
	RegionBias  float64 // 0..1: probability a network stays in its home region
	ExtraLinkP  float64 // probability of each extra (non-tree) intra-network link
	MinCapGbps  float64 // physical link capacity range
	MaxCapGbps  float64
	FilterBelow int // drop networks with fewer sites than this (paper: "filtered out some of the small networks")
}

// DefaultZooConfig returns the configuration used by the Figure 2
// reproduction. With BuildPOCNetwork's default 2-hop logical links it
// yields 4729 logical links across 20 BPs — within ~1% of the paper's
// 4674 — with per-BP shares spanning roughly 2%–12%.
func DefaultZooConfig() ZooConfig {
	return ZooConfig{
		Seed:        1,
		NumNetworks: 92,
		MinSites:    3,
		MaxSites:    16,
		RegionBias:  0.7,
		ExtraLinkP:  0.35,
		MinCapGbps:  10,
		MaxCapGbps:  100,
		FilterBelow: 4,
	}
}

// region buckets DefaultWorld city indices by continent for the
// region-biased site sampler. Indices must match cities.go ordering.
func regions(w *World) [][]int {
	var na, eu, as, rest []int
	for i, c := range w.Cities {
		switch {
		case c.Lon < -30 && c.Lat > 15:
			na = append(na, i)
		case c.Lon >= -30 && c.Lon < 45 && c.Lat > 30:
			eu = append(eu, i)
		case c.Lon >= 45:
			as = append(as, i)
		default:
			rest = append(rest, i)
		}
	}
	return [][]int{na, eu, as, rest}
}

// GenerateZoo produces a deterministic synthetic topology zoo over the
// given world. Each network picks a home region, samples sites with
// the configured region bias, connects them with a random spanning
// tree plus extra links, and is dropped if below the filter size.
//
// This is the substitution for the TopologyZoo dataset (see DESIGN.md
// §2): the auction pipeline only depends on having many overlapping
// networks with geography-correlated presence, which this reproduces.
func GenerateZoo(w *World, cfg ZooConfig) []Network {
	rng := rand.New(rand.NewSource(cfg.Seed))
	regs := regions(w)
	var nets []Network
	for i := 0; i < cfg.NumNetworks; i++ {
		home := regs[rng.Intn(len(regs))]
		nSites := cfg.MinSites + rng.Intn(cfg.MaxSites-cfg.MinSites+1)
		seen := map[int]bool{}
		var sites []int
		for len(sites) < nSites {
			var c int
			if rng.Float64() < cfg.RegionBias {
				c = home[rng.Intn(len(home))]
			} else {
				c = rng.Intn(len(w.Cities))
			}
			if !seen[c] {
				seen[c] = true
				sites = append(sites, c)
			}
		}
		sort.Ints(sites)
		net := Network{Name: fmt.Sprintf("net%03d", i), Sites: sites}
		// Random spanning tree over the sites.
		perm := rng.Perm(len(sites))
		for j := 1; j < len(perm); j++ {
			a := sites[perm[j]]
			b := sites[perm[rng.Intn(j)]]
			net.Links = append(net.Links, PhysLink{A: a, B: b, Capacity: capSample(rng, cfg)})
		}
		// Extra links for path diversity.
		for j := 0; j < len(sites); j++ {
			for k := j + 1; k < len(sites); k++ {
				if rng.Float64() < cfg.ExtraLinkP {
					net.Links = append(net.Links, PhysLink{A: sites[j], B: sites[k], Capacity: capSample(rng, cfg)})
				}
			}
		}
		if len(net.Sites) >= cfg.FilterBelow {
			nets = append(nets, net)
		}
	}
	return nets
}

// capSample draws a capacity from {10, 40, 100}-style tiers within the
// configured range, mimicking the discrete leased-wave market.
func capSample(rng *rand.Rand, cfg ZooConfig) float64 {
	tiers := []float64{cfg.MinCapGbps, (cfg.MinCapGbps + cfg.MaxCapGbps) / 2.5, cfg.MaxCapGbps}
	return tiers[rng.Intn(len(tiers))]
}
