package topo

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParseGML reads a TopologyZoo-style GML document and returns the
// network it describes, registering any new cities in w. Nodes need
// "id", and should carry "label", "Latitude" and "Longitude";
// nodes without coordinates are placed at (0,0). Edges need "source"
// and "target" and may carry "LinkSpeed" (Gbps); missing speeds
// default to defaultCapGbps.
//
// The parser handles the subset of GML that TopologyZoo uses: nested
// key/value lists with string, int and float scalars. It is
// intentionally strict about structure (unbalanced brackets are an
// error) but lenient about unknown keys, which it skips.
func ParseGML(w *World, r io.Reader, defaultCapGbps float64) (Network, error) {
	toks, err := tokenizeGML(r)
	if err != nil {
		return Network{}, err
	}
	p := &gmlParser{toks: toks}
	doc, err := p.parseList()
	if err != nil {
		return Network{}, err
	}
	if p.pos != len(p.toks) {
		return Network{}, fmt.Errorf("topo: trailing tokens after GML document")
	}
	g, ok := findList(doc, "graph")
	if !ok {
		return Network{}, fmt.Errorf("topo: GML document has no graph block")
	}

	net := Network{Name: "gml"}
	if lbl, ok := findScalar(g, "label"); ok {
		net.Name = lbl
	}
	idToCity := map[int]int{}
	for _, kv := range g {
		switch kv.key {
		case "node":
			nodeList, ok := kv.val.([]gmlKV)
			if !ok {
				return Network{}, fmt.Errorf("topo: node is not a list")
			}
			idStr, ok := findScalar(nodeList, "id")
			if !ok {
				return Network{}, fmt.Errorf("topo: node without id")
			}
			id, err := strconv.Atoi(idStr)
			if err != nil {
				return Network{}, fmt.Errorf("topo: bad node id %q", idStr)
			}
			label, _ := findScalar(nodeList, "label")
			if label == "" {
				label = fmt.Sprintf("%s-node%d", net.Name, id)
			}
			lat := parseFloatOr(nodeList, "Latitude", 0)
			lon := parseFloatOr(nodeList, "Longitude", 0)
			ci := w.CityIndex(label)
			if ci < 0 {
				w.Cities = append(w.Cities, City{Name: label, Lat: lat, Lon: lon, Population: 1})
				ci = len(w.Cities) - 1
			}
			idToCity[id] = ci
			net.Sites = append(net.Sites, ci)
		case "edge":
			edgeList, ok := kv.val.([]gmlKV)
			if !ok {
				return Network{}, fmt.Errorf("topo: edge is not a list")
			}
			srcS, ok1 := findScalar(edgeList, "source")
			dstS, ok2 := findScalar(edgeList, "target")
			if !ok1 || !ok2 {
				return Network{}, fmt.Errorf("topo: edge without source/target")
			}
			src, err1 := strconv.Atoi(srcS)
			dst, err2 := strconv.Atoi(dstS)
			if err1 != nil || err2 != nil {
				return Network{}, fmt.Errorf("topo: bad edge endpoints %q -> %q", srcS, dstS)
			}
			a, okA := idToCity[src]
			b, okB := idToCity[dst]
			if !okA || !okB {
				return Network{}, fmt.Errorf("topo: edge references unknown node %d or %d", src, dst)
			}
			capGbps := parseFloatOr(edgeList, "LinkSpeed", defaultCapGbps)
			if capGbps <= 0 || math.IsNaN(capGbps) {
				capGbps = defaultCapGbps
			}
			net.Links = append(net.Links, PhysLink{A: a, B: b, Capacity: capGbps})
		}
	}
	sort.Ints(net.Sites)
	net.Sites = dedupInts(net.Sites)
	return net, nil
}

// WriteGML emits the network in TopologyZoo-compatible GML, mapping
// the network's city indices to sequential node IDs.
func WriteGML(w *World, net Network, out io.Writer) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintf(bw, "graph [\n  label \"%s\"\n  directed 0\n", net.Name)
	cityToID := map[int]int{}
	for i, c := range net.Sites {
		cityToID[c] = i
		city := w.Cities[c]
		fmt.Fprintf(bw, "  node [\n    id %d\n    label \"%s\"\n    Latitude %.4f\n    Longitude %.4f\n  ]\n",
			i, city.Name, city.Lat, city.Lon)
	}
	for _, l := range net.Links {
		a, okA := cityToID[l.A]
		b, okB := cityToID[l.B]
		if !okA || !okB {
			return fmt.Errorf("topo: link endpoint %d or %d not among sites", l.A, l.B)
		}
		fmt.Fprintf(bw, "  edge [\n    source %d\n    target %d\n    LinkSpeed %.1f\n  ]\n", a, b, l.Capacity)
	}
	fmt.Fprintln(bw, "]")
	return bw.Flush()
}

type gmlKV struct {
	key string
	val interface{} // string scalar or []gmlKV
}

type gmlParser struct {
	toks []string
	pos  int
}

// parseList parses "key value" pairs at the top level (EOF ends the
// list; a stray ']' is an error).
func (p *gmlParser) parseList() ([]gmlKV, error) {
	return p.parse(false)
}

// parse parses key/value pairs. When requireClose is true the list
// must end with ']'; otherwise it ends at EOF.
func (p *gmlParser) parse(requireClose bool) ([]gmlKV, error) {
	var out []gmlKV
	for p.pos < len(p.toks) {
		t := p.toks[p.pos]
		if t == "]" {
			if !requireClose {
				return nil, fmt.Errorf("topo: unexpected ']' at top level")
			}
			p.pos++
			return out, nil
		}
		if t == "[" {
			return nil, fmt.Errorf("topo: unexpected '[' without key")
		}
		key := t
		p.pos++
		if p.pos >= len(p.toks) {
			return nil, fmt.Errorf("topo: key %q without value", key)
		}
		v := p.toks[p.pos]
		p.pos++
		switch v {
		case "[":
			sub, err := p.parse(true)
			if err != nil {
				return nil, err
			}
			out = append(out, gmlKV{key: key, val: sub})
		case "]":
			return nil, fmt.Errorf("topo: key %q without value before ']'", key)
		default:
			out = append(out, gmlKV{key: key, val: v})
		}
	}
	if requireClose {
		return nil, fmt.Errorf("topo: unterminated GML list")
	}
	return out, nil
}

func tokenizeGML(r io.Reader) ([]string, error) {
	var toks []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		for len(line) > 0 {
			line = strings.TrimLeft(line, " \t")
			if line == "" {
				break
			}
			switch line[0] {
			case '"':
				end := strings.IndexByte(line[1:], '"')
				if end < 0 {
					return nil, fmt.Errorf("topo: unterminated string in GML")
				}
				toks = append(toks, line[1:1+end])
				line = line[end+2:]
			case '[', ']':
				toks = append(toks, string(line[0]))
				line = line[1:]
			default:
				end := strings.IndexAny(line, " \t[]")
				if end < 0 {
					toks = append(toks, line)
					line = ""
				} else {
					toks = append(toks, line[:end])
					line = line[end:]
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return toks, nil
}

func findScalar(list []gmlKV, key string) (string, bool) {
	for _, kv := range list {
		if kv.key == key {
			if s, ok := kv.val.(string); ok {
				return s, true
			}
		}
	}
	return "", false
}

func findList(list []gmlKV, key string) ([]gmlKV, bool) {
	for _, kv := range list {
		if kv.key == key {
			if l, ok := kv.val.([]gmlKV); ok {
				return l, true
			}
		}
	}
	return nil, false
}

func parseFloatOr(list []gmlKV, key string, def float64) float64 {
	s, ok := findScalar(list, key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return def
	}
	return f
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
