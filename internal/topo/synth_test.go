package topo

import (
	"reflect"
	"testing"
)

func TestSynthDeterministicAndExact(t *testing.T) {
	for _, links := range []int{200, 600, 1200} {
		cfg := DefaultSynthConfig()
		cfg.Links = links
		cfg.Routers = links / 4
		a := GenerateSynth(cfg)
		b := GenerateSynth(cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("links=%d: same config produced different instances", links)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("links=%d: fingerprints differ on equal instances", links)
		}
		if len(a.P.Links) != links {
			t.Fatalf("links=%d: generated %d links", links, len(a.P.Links))
		}
		if len(a.P.Routers) != cfg.Routers || len(a.Region) != cfg.Routers {
			t.Fatalf("links=%d: router/region count off", links)
		}
		if len(a.P.BPs) != cfg.Regions*cfg.BPsPerRegion {
			t.Fatalf("links=%d: %d BPs for %d regions x %d", links, len(a.P.BPs), cfg.Regions, cfg.BPsPerRegion)
		}
		cfg.Seed++
		if GenerateSynth(cfg).Fingerprint() == a.Fingerprint() {
			t.Fatalf("links=%d: different seeds collided", links)
		}
	}
}

func TestSynthRegionalStructure(t *testing.T) {
	cfg := DefaultSynthConfig()
	s := GenerateSynth(cfg)
	if len(s.Border) != 0 {
		t.Fatalf("default config is border-free, got %v", s.Border)
	}
	for _, l := range s.P.Links {
		if s.Region[l.A] != s.Region[l.B] {
			t.Fatalf("link %d crosses regions without Border config", l.ID)
		}
		if l.BP/cfg.BPsPerRegion != s.Region[l.A] {
			t.Fatalf("link %d owned by BP %d outside region %d", l.ID, l.BP, s.Region[l.A])
		}
	}
	for _, d := range s.Demand {
		if s.Region[d.A] != s.Region[d.B] {
			t.Fatalf("demand %d->%d crosses regions", d.A, d.B)
		}
		if d.A == d.B || d.Gbps <= 0 {
			t.Fatalf("degenerate demand %+v", d)
		}
	}
	if len(s.Demand) != cfg.Regions*cfg.Pairs {
		t.Fatalf("demand count %d != regions*pairs", len(s.Demand))
	}

	cfg.Border = cfg.Regions
	cfg.Links += cfg.Border
	sb := GenerateSynth(cfg)
	if len(sb.Border) != cfg.Border || len(sb.P.Links) != cfg.Links {
		t.Fatalf("border config: %d border / %d total", len(sb.Border), len(sb.P.Links))
	}
	for _, id := range sb.Border {
		l := sb.P.Links[id]
		if sb.Region[l.A] == sb.Region[l.B] {
			t.Fatalf("border link %d does not cross regions", id)
		}
	}
}
