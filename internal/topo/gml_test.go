package topo

import (
	"bytes"
	"strings"
	"testing"
)

const sampleGML = `
graph [
  label "TestNet"
  directed 0
  node [
    id 0
    label "Alpha"
    Latitude 10.5
    Longitude 20.25
  ]
  node [
    id 1
    label "Beta"
    Latitude -5.0
    Longitude 33.0
  ]
  node [
    id 2
    label "Gamma"
  ]
  edge [
    source 0
    target 1
    LinkSpeed 40
  ]
  edge [
    source 1
    target 2
  ]
]
`

func TestParseGML(t *testing.T) {
	w := &World{}
	net, err := ParseGML(w, strings.NewReader(sampleGML), 10)
	if err != nil {
		t.Fatalf("ParseGML: %v", err)
	}
	if net.Name != "TestNet" {
		t.Errorf("name = %q, want TestNet", net.Name)
	}
	if len(net.Sites) != 3 {
		t.Fatalf("sites = %d, want 3", len(net.Sites))
	}
	if len(net.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(net.Links))
	}
	if net.Links[0].Capacity != 40 {
		t.Errorf("link 0 capacity = %v, want 40", net.Links[0].Capacity)
	}
	if net.Links[1].Capacity != 10 {
		t.Errorf("link 1 capacity = %v, want default 10", net.Links[1].Capacity)
	}
	ai := w.CityIndex("Alpha")
	if ai < 0 {
		t.Fatal("Alpha not registered in world")
	}
	if w.Cities[ai].Lat != 10.5 || w.Cities[ai].Lon != 20.25 {
		t.Errorf("Alpha coords = %v,%v", w.Cities[ai].Lat, w.Cities[ai].Lon)
	}
}

func TestParseGMLReusesExistingCities(t *testing.T) {
	w := &World{Cities: []City{{Name: "Alpha", Lat: 1, Lon: 2, Population: 5}}}
	_, err := ParseGML(w, strings.NewReader(sampleGML), 10)
	if err != nil {
		t.Fatalf("ParseGML: %v", err)
	}
	count := 0
	for _, c := range w.Cities {
		if c.Name == "Alpha" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("Alpha registered %d times", count)
	}
}

func TestParseGMLErrors(t *testing.T) {
	cases := []struct {
		name, doc string
	}{
		{"no graph", `foo "bar"`},
		{"unterminated list", `graph [ node [ id 0 ]`},
		{"node without id", `graph [ node [ label "x" ] ]`},
		{"bad node id", `graph [ node [ id xyz ] ]`},
		{"edge unknown node", `graph [ node [ id 0 ] edge [ source 0 target 7 ] ]`},
		{"edge missing target", `graph [ node [ id 0 ] edge [ source 0 ] ]`},
		{"stray bracket", `] graph [ ]`},
		{"key without value", `graph [ node [ id ] ]`},
		{"unterminated string", "graph [ label \"oops ]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := &World{}
			if _, err := ParseGML(w, strings.NewReader(c.doc), 10); err == nil {
				t.Fatalf("expected error for %q", c.doc)
			}
		})
	}
}

func TestGMLRoundTrip(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	orig := nets[0]

	var buf bytes.Buffer
	if err := WriteGML(w, orig, &buf); err != nil {
		t.Fatalf("WriteGML: %v", err)
	}
	w2 := &World{}
	parsed, err := ParseGML(w2, &buf, 10)
	if err != nil {
		t.Fatalf("ParseGML(round trip): %v", err)
	}
	if parsed.Name != orig.Name {
		t.Errorf("name = %q, want %q", parsed.Name, orig.Name)
	}
	if len(parsed.Sites) != len(orig.Sites) {
		t.Errorf("sites = %d, want %d", len(parsed.Sites), len(orig.Sites))
	}
	if len(parsed.Links) != len(orig.Links) {
		t.Errorf("links = %d, want %d", len(parsed.Links), len(orig.Links))
	}
	// Capacities survive.
	for i := range parsed.Links {
		if parsed.Links[i].Capacity != orig.Links[i].Capacity {
			t.Errorf("link %d capacity = %v, want %v", i, parsed.Links[i].Capacity, orig.Links[i].Capacity)
		}
	}
}

func TestWriteGMLRejectsForeignLink(t *testing.T) {
	w := DefaultWorld()
	net := Network{Name: "x", Sites: []int{0, 1}, Links: []PhysLink{{A: 0, B: 5, Capacity: 1}}}
	var buf bytes.Buffer
	if err := WriteGML(w, net, &buf); err == nil {
		t.Fatal("expected error for link endpoint outside sites")
	}
}

func TestGMLCommentsAndWhitespace(t *testing.T) {
	doc := `
# a comment line
graph [
  label "C"   # trailing comment
  node [ id 0 label "N0" ]
  node [ id 1 label "N1" ]
  edge [ source 0 target 1 LinkSpeed 100 ]
]
`
	w := &World{}
	net, err := ParseGML(w, strings.NewReader(doc), 10)
	if err != nil {
		t.Fatalf("ParseGML: %v", err)
	}
	if len(net.Sites) != 2 || len(net.Links) != 1 {
		t.Fatalf("parsed %d sites %d links", len(net.Sites), len(net.Links))
	}
}
