package topo

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// FuzzGMLParse drives ParseGML with arbitrary documents. For any
// input the parser must return cleanly (no panic, no runaway state);
// for every document it accepts, the network must be structurally
// sound — sorted, deduplicated sites, links between registered sites,
// positive-or-Inf capacities — and must survive a WriteGML → ParseGML
// round trip with identical sites and link endpoints. The round trip
// is gated on names the emitter can spell: the tokenizer strips #
// comments before quote handling, so labels containing '#', '"' or
// newlines cannot be re-read from emitted GML.
func FuzzGMLParse(f *testing.F) {
	seeds := []string{
		// Minimal valid TopologyZoo-style document.
		"graph [\n  label \"seed\"\n  node [ id 0 label \"a\" Latitude 1.5 Longitude 2.5 ]\n" +
			"  node [ id 1 label \"b\" ]\n  edge [ source 0 target 1 LinkSpeed 40 ]\n]\n",
		// Comments, unknown keys, nested unknown lists, missing speeds.
		"# TopologyZoo export\ngraph [\n  Network \"x\" # trailing comment\n" +
			"  meta [ created \"never\" nested [ deep 1 ] ]\n" +
			"  node [ id 3 ]\n  node [ id 7 label \"c\" ]\n  edge [ source 3 target 7 ]\n]\n",
		// Duplicate node ids and self-loop edge.
		"graph [ node [ id 0 label \"p\" ] node [ id 0 label \"q\" ] edge [ source 0 target 0 ] ]",
		// Label the emitter cannot spell (round trip is skipped).
		"graph [ node [ id 0 label \"has#hash\" ] ]",
		// Pathological speeds.
		"graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 LinkSpeed NaN ]\n" +
			"  edge [ source 1 target 0 LinkSpeed -3 ] ]",
		// Malformed documents the parser must reject cleanly.
		"",
		"graph [",
		"graph [ ] ]",
		"graph [ node [ id ] ]",
		"graph [ node [ id zero ] ]",
		"graph [ edge [ source 0 target 1 ] ]",
		"graph [ label \"unterminated\n]",
		"key [ value",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		w := &World{}
		net, err := ParseGML(w, strings.NewReader(doc), 10)
		if err != nil {
			return // rejected input; only a clean error is required
		}

		if !sort.IntsAreSorted(net.Sites) {
			t.Fatalf("sites not sorted: %v", net.Sites)
		}
		sites := map[int]bool{}
		for i, s := range net.Sites {
			if i > 0 && s == net.Sites[i-1] {
				t.Fatalf("duplicate site %d: %v", s, net.Sites)
			}
			if s < 0 || s >= len(w.Cities) {
				t.Fatalf("site %d outside the %d registered cities", s, len(w.Cities))
			}
			sites[s] = true
		}
		for _, l := range net.Links {
			if !sites[l.A] || !sites[l.B] {
				t.Fatalf("link %d-%d references an unregistered site (sites %v)", l.A, l.B, net.Sites)
			}
			if !(l.Capacity > 0) {
				t.Fatalf("link %d-%d has non-positive capacity %v", l.A, l.B, l.Capacity)
			}
		}

		spellable := func(s string) bool { return !strings.ContainsAny(s, "#\"\n\r") }
		if !spellable(net.Name) {
			return
		}
		for _, s := range net.Sites {
			if !spellable(w.Cities[s].Name) {
				return
			}
		}
		var buf bytes.Buffer
		if err := WriteGML(w, net, &buf); err != nil {
			t.Fatalf("WriteGML on a freshly parsed network: %v", err)
		}
		net2, err := ParseGML(w, bytes.NewReader(buf.Bytes()), 10)
		if err != nil {
			t.Fatalf("round-trip reparse: %v\ndocument:\n%s", err, buf.String())
		}
		if len(net2.Sites) != len(net.Sites) {
			t.Fatalf("round trip changed site count %d -> %d", len(net.Sites), len(net2.Sites))
		}
		for i := range net.Sites {
			if net2.Sites[i] != net.Sites[i] {
				t.Fatalf("round trip changed sites %v -> %v", net.Sites, net2.Sites)
			}
		}
		if len(net2.Links) != len(net.Links) {
			t.Fatalf("round trip changed link count %d -> %d", len(net.Links), len(net2.Links))
		}
		for i := range net.Links {
			if net.Links[i].A != net2.Links[i].A || net.Links[i].B != net2.Links[i].B {
				t.Fatalf("round trip changed link %d endpoints %d-%d -> %d-%d",
					i, net.Links[i].A, net.Links[i].B, net2.Links[i].A, net2.Links[i].B)
			}
		}
	})
}
