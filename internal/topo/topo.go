// Package topo provides the network-topology substrate of the POC
// reproduction: a geographic node/link model, a parser for
// TopologyZoo-style GML files, a deterministic synthetic "zoo"
// generator (the substitution for the real TopologyZoo dataset — see
// DESIGN.md), bandwidth-provider (BP) formation by merging networks,
// and POC router placement at multi-BP colocation sites.
//
// The paper (§3.3) builds its auction input as follows: take the
// TopologyZoo networks, filter small ones, combine networks into 20
// BPs, place POC routers "at points where there were four or more BPs
// closely colocated", and treat BP-offered point-to-point connections
// between POC routers as logical links (which may traverse several
// physical links). This package implements exactly that pipeline.
package topo

import (
	"fmt"
	"math"
	"sort"
)

// City is a geographic location at which networks have presence.
type City struct {
	Name       string
	Lat, Lon   float64 // degrees
	Population float64 // millions; drives the gravity traffic model
}

// Network is one topology-zoo network: a set of point-of-presence
// sites (city indices into the owning World) and physical links
// between them.
type Network struct {
	Name  string
	Sites []int // indices into World.Cities
	Links []PhysLink
}

// PhysLink is a physical link inside one network, between two of the
// network's sites, with a capacity in Gbps.
type PhysLink struct {
	A, B     int // indices into World.Cities
	Capacity float64
}

// World holds the city universe shared by all networks.
type World struct {
	Cities []City
}

// CityIndex returns the index of the named city or -1.
func (w *World) CityIndex(name string) int {
	for i, c := range w.Cities {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// earthRadiusKm is the mean Earth radius used by Distance.
const earthRadiusKm = 6371.0

// Distance returns the great-circle distance in km between cities i
// and j using the haversine formula.
func (w *World) Distance(i, j int) float64 {
	a, b := w.Cities[i], w.Cities[j]
	return Haversine(a.Lat, a.Lon, b.Lat, b.Lon)
}

// Haversine returns the great-circle distance in km between two
// lat/lon points in degrees.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const d = math.Pi / 180
	phi1, phi2 := lat1*d, lat2*d
	dphi := (lat2 - lat1) * d
	dlam := (lon2 - lon1) * d
	s := math.Sin(dphi/2)*math.Sin(dphi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dlam/2)*math.Sin(dlam/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// BP is a bandwidth provider: a merger of one or more zoo networks.
// Its Sites are the union of member sites; its Links the union of
// member links.
type BP struct {
	Name     string
	Members  []string // names of merged networks
	Sites    []int
	Links    []PhysLink
	CostMult float64 // per-BP lease cost multiplier (provider efficiency)
}

// HasSite reports whether the BP has presence in the given city.
func (b *BP) HasSite(city int) bool {
	for _, s := range b.Sites {
		if s == city {
			return true
		}
	}
	return false
}

// MergeNetworks combines the given networks into a single BP,
// deduplicating sites and keeping all links.
func MergeNetworks(name string, nets []Network, costMult float64) BP {
	bp := BP{Name: name, CostMult: costMult}
	seen := map[int]bool{}
	for _, n := range nets {
		bp.Members = append(bp.Members, n.Name)
		for _, s := range n.Sites {
			if !seen[s] {
				seen[s] = true
				bp.Sites = append(bp.Sites, s)
			}
		}
		bp.Links = append(bp.Links, n.Links...)
	}
	sort.Ints(bp.Sites)
	return bp
}

// FormBPs partitions networks into k BPs of varying size. Networks
// are assigned over a size-skewed schedule so that the largest BP
// ends up with a few times the networks of the smallest, matching the
// paper's observation that BPs contributed "from roughly 2% to
// roughly 12% of the logical links". (Logical-link count grows
// roughly quadratically in a BP's footprint, so a mild network-count
// skew yields the paper's ~6x link-share spread.)
func FormBPs(nets []Network, k int) []BP {
	if k <= 0 {
		return nil
	}
	// Weight BP i by (i+weightBase): with weightBase 8, BP k-1 gets
	// about 1.8x BP 0's networks.
	const weightBase = 24
	weights := make([]int, k)
	total := 0
	for i := range weights {
		weights[i] = i + weightBase
		total += weights[i]
	}
	// Deal networks into buckets proportionally to weights, preserving
	// input order for determinism.
	buckets := make([][]Network, k)
	cursor := 0
	remaining := append([]Network(nil), nets...)
	for len(remaining) > 0 {
		w := weights[cursor%k]
		take := w * len(nets) / total
		if take < 1 {
			take = 1
		}
		if take > len(remaining) {
			take = len(remaining)
		}
		buckets[cursor%k] = append(buckets[cursor%k], remaining[:take]...)
		remaining = remaining[take:]
		cursor++
	}
	bps := make([]BP, 0, k)
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		// Cost multipliers vary deterministically in [0.85, 1.15].
		mult := 0.85 + 0.3*float64(i)/float64(k-1+1)
		bps = append(bps, MergeNetworks(fmt.Sprintf("BP%02d", i+1), b, mult))
	}
	return bps
}

// ColocationSites returns the city indices where at least minBPs of
// the given BPs have presence, sorted ascending. The paper places POC
// routers at points "where there were four or more BPs closely
// colocated"; pass minBPs=4 for that behaviour.
func ColocationSites(bps []BP, minBPs int) []int {
	count := map[int]int{}
	for _, bp := range bps {
		for _, s := range bp.Sites {
			count[s]++
		}
	}
	var sites []int
	for s, c := range count {
		if c >= minBPs {
			sites = append(sites, s)
		}
	}
	sort.Ints(sites)
	return sites
}
