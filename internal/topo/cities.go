package topo

// DefaultWorld returns the 60-city world map used by the synthetic
// zoo. Coordinates are approximate city-center lat/lon; populations
// are metro-area estimates in millions and feed the gravity traffic
// model. The set is chosen to mirror the geographic spread of the
// TopologyZoo networks: North America and Europe dense, plus the major
// Asian, South American, African and Oceanian interconnection hubs.
func DefaultWorld() *World {
	return &World{Cities: []City{
		// North America
		{"NewYork", 40.71, -74.01, 19.8},
		{"LosAngeles", 34.05, -118.24, 13.2},
		{"Chicago", 41.88, -87.63, 9.5},
		{"Dallas", 32.78, -96.80, 7.6},
		{"Houston", 29.76, -95.37, 7.1},
		{"WashingtonDC", 38.91, -77.04, 6.3},
		{"Miami", 25.76, -80.19, 6.1},
		{"Atlanta", 33.75, -84.39, 6.0},
		{"Boston", 42.36, -71.06, 4.9},
		{"Phoenix", 33.45, -112.07, 4.9},
		{"SanFrancisco", 37.77, -122.42, 4.7},
		{"Seattle", 47.61, -122.33, 4.0},
		{"Denver", 39.74, -104.99, 3.0},
		{"Toronto", 43.65, -79.38, 6.2},
		{"Montreal", 45.50, -73.57, 4.3},
		{"Vancouver", 49.28, -123.12, 2.6},
		{"MexicoCity", 19.43, -99.13, 21.8},
		// Europe
		{"London", 51.51, -0.13, 14.3},
		{"Paris", 48.86, 2.35, 12.3},
		{"Frankfurt", 50.11, 8.68, 2.7},
		{"Amsterdam", 52.37, 4.90, 2.5},
		{"Madrid", 40.42, -3.70, 6.7},
		{"Milan", 45.46, 9.19, 4.3},
		{"Stockholm", 59.33, 18.07, 2.4},
		{"Warsaw", 52.23, 21.01, 3.1},
		{"Vienna", 48.21, 16.37, 2.9},
		{"Zurich", 47.38, 8.54, 1.4},
		{"Dublin", 53.35, -6.26, 1.4},
		{"Brussels", 50.85, 4.35, 2.1},
		{"Copenhagen", 55.68, 12.57, 2.1},
		{"Prague", 50.08, 14.44, 2.7},
		{"Lisbon", 38.72, -9.14, 2.9},
		{"Athens", 37.98, 23.73, 3.2},
		{"Istanbul", 41.01, 28.98, 15.5},
		{"Moscow", 55.76, 37.62, 12.6},
		{"Helsinki", 60.17, 24.94, 1.5},
		{"Oslo", 59.91, 10.75, 1.1},
		// Asia
		{"Tokyo", 35.68, 139.69, 37.3},
		{"Osaka", 34.69, 135.50, 19.1},
		{"Seoul", 37.57, 126.98, 25.5},
		{"Beijing", 39.90, 116.41, 20.9},
		{"Shanghai", 31.23, 121.47, 27.8},
		{"HongKong", 22.32, 114.17, 7.5},
		{"Singapore", 1.35, 103.82, 5.9},
		{"Taipei", 25.03, 121.57, 7.0},
		{"Mumbai", 19.08, 72.88, 20.7},
		{"Delhi", 28.70, 77.10, 31.2},
		{"Bangkok", 13.76, 100.50, 10.7},
		{"Jakarta", -6.21, 106.85, 10.6},
		{"Dubai", 25.20, 55.27, 3.4},
		{"TelAviv", 32.09, 34.78, 4.2},
		// South America
		{"SaoPaulo", -23.55, -46.63, 22.2},
		{"BuenosAires", -34.60, -58.38, 15.2},
		{"Santiago", -33.45, -70.67, 6.8},
		{"Bogota", 4.71, -74.07, 11.0},
		// Africa
		{"Johannesburg", -26.20, 28.05, 10.0},
		{"Cairo", 30.04, 31.24, 21.3},
		{"Lagos", 6.52, 3.38, 14.9},
		// Oceania
		{"Sydney", -33.87, 151.21, 5.3},
		{"Auckland", -36.85, 174.76, 1.7},
	}}
}
