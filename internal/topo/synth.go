package topo

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/public-option/poc/internal/fnv64"
)

// Continental-scale synthetic instances. The zoo generator (zoo.go)
// substitutes for the TopologyZoo corpus at the paper's scale —
// hundreds of logical links. Benchmarking the winner determination's
// scaling behaviour (pocbench -wd) needs instances an order of
// magnitude larger with a controllable regional structure, which the
// corpus pipeline cannot provide. GenerateSynth builds a POCNetwork
// directly: R regional rings with chords, several BPs per region, an exact
// total link count, and a configurable number of inter-region border
// links. Border = 0 yields a border-separable instance — the
// engagement condition of the regional decomposition (provision
// package) — while Border > 0 exercises its connected fallback.
//
// Demand is hub-sparse by construction: each region routes a few
// demand pairs anchored at hub routers. A gravity model over ~10³
// routers would produce ~10⁶ pairs, which no routing pass at this
// scale can absorb; hub-sparsity keeps the demand list linear in the
// region count while still loading every region. All randomness is
// seeded, so equal configs generate byte-identical instances.

// SynthConfig sizes a synthetic continental instance.
type SynthConfig struct {
	Seed    int64
	Regions int // regional rings
	Routers int // total routers, split evenly across regions
	Links   int // exact total logical link count (incl. Border)
	Border  int // inter-region links; 0 = border-separable
	// BPsPerRegion splits each region's links round-robin across this
	// many BPs. Auctions compute Clarke pivots by withdrawing one BP
	// at a time, so a region must stay acceptable with any 1/k of its
	// links gone — one BP per region would make every pivot undefined.
	BPsPerRegion int
	Hubs         int // demand hubs per region
	Pairs        int // demand pairs per region
	Gbps         float64
}

// DefaultSynthConfig returns a mid-size instance (600 links at 4 links per router, 8
// disconnected regions).
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{Seed: 1, Regions: 8, Routers: 150, Links: 600, BPsPerRegion: 4, Hubs: 2, Pairs: 10, Gbps: 6}
}

// SynthDemand is one demand pair (router indices).
type SynthDemand struct {
	A, B int
	Gbps float64
}

// Synth is a generated instance plus its regional structure.
type Synth struct {
	P *POCNetwork
	// Region maps router index -> region.
	Region []int
	// Border lists the inter-region link IDs (empty when Config.Border
	// is 0).
	Border []int
	// Demand is the hub-sparse traffic list; every pair is
	// intra-region, so with Border = 0 the instance satisfies the
	// decomposition's separability certificate on the full link set.
	Demand []SynthDemand
}

// Fingerprint hashes the instance (links, coordinates, demand) so
// determinism is checkable across processes with one number.
func (s *Synth) Fingerprint() uint64 {
	h := uint64(fnv64.Offset)
	h = fnv64.Mix(h, uint64(len(s.P.Routers)))
	for _, l := range s.P.Links {
		h = fnv64.Mix(h, uint64(l.ID)<<32|uint64(l.BP&0xffff)<<16|uint64(l.A&0xff)<<8|uint64(l.B&0xff))
		h = fnv64.Mix(h, math.Float64bits(l.Capacity))
		h = fnv64.Mix(h, math.Float64bits(l.DistanceKm))
	}
	for _, d := range s.Demand {
		h = fnv64.Mix(h, uint64(d.A)<<32|uint64(d.B))
		h = fnv64.Mix(h, math.Float64bits(d.Gbps))
	}
	return h
}

// GenerateSynth builds the instance for cfg. It panics on configs that
// cannot meet the exact link count (fewer links than routers + border,
// regions too small to ring).
func GenerateSynth(cfg SynthConfig) *Synth {
	if cfg.Regions < 1 || cfg.Routers < 3*cfg.Regions {
		panic(fmt.Sprintf("topo: synth needs >=3 routers per region (%d routers, %d regions)", cfg.Routers, cfg.Regions))
	}
	if cfg.Links < cfg.Routers+cfg.Border {
		panic(fmt.Sprintf("topo: synth needs links >= routers+border (%d < %d+%d)", cfg.Links, cfg.Routers, cfg.Border))
	}
	if cfg.Border > 0 && cfg.Regions < 2 {
		panic("topo: border links need >=2 regions")
	}
	bpr := cfg.BPsPerRegion
	if bpr < 1 {
		bpr = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Region sizes: even split, remainder to the first regions.
	sizes := make([]int, cfg.Regions)
	lo := make([]int, cfg.Regions)
	for r := range sizes {
		sizes[r] = cfg.Routers / cfg.Regions
		if r < cfg.Routers%cfg.Regions {
			sizes[r]++
		}
		if r > 0 {
			lo[r] = lo[r-1] + sizes[r-1]
		}
	}

	// Cities: jittered around region centers laid out on a lat/lon
	// grid wide enough that regions never overlap.
	w := &World{Cities: make([]City, cfg.Routers)}
	region := make([]int, cfg.Routers)
	cols := int(math.Ceil(math.Sqrt(float64(cfg.Regions))))
	for r := 0; r < cfg.Regions; r++ {
		clat := -40 + 80*float64(r/cols)/math.Max(1, float64((cfg.Regions+cols-1)/cols))
		clon := -160 + 320*float64(r%cols)/float64(cols)
		for i := 0; i < sizes[r]; i++ {
			idx := lo[r] + i
			region[idx] = r
			w.Cities[idx] = City{
				Name:       fmt.Sprintf("synth-%d-%d", r, i),
				Lat:        clat + rng.Float64()*6 - 3,
				Lon:        clon + rng.Float64()*6 - 3,
				Population: 0.5 + rng.Float64()*8,
			}
		}
	}

	p := &POCNetwork{World: w, Routers: make([]int, cfg.Routers)}
	for i := range p.Routers {
		p.Routers[i] = i
	}
	for r := 0; r < cfg.Regions; r++ {
		for b := 0; b < bpr; b++ {
			bp := BP{Name: fmt.Sprintf("synth-r%d-%c", r, 'a'+b), CostMult: 1}
			for i := 0; i < sizes[r]; i++ {
				bp.Sites = append(bp.Sites, lo[r]+i)
			}
			p.BPs = append(p.BPs, bp)
		}
	}

	caps := []float64{40, 100, 400}
	linkCnt := make([]int, cfg.Regions)
	addLink := func(r, a, b int) {
		bp := r*bpr + linkCnt[r]%bpr
		linkCnt[r]++
		p.Links = append(p.Links, LogicalLink{
			ID: len(p.Links), BP: bp, A: a, B: b,
			Capacity:   caps[rng.Intn(len(caps))],
			DistanceKm: w.Distance(a, b),
		})
	}

	// Per region: the ring, then chords — first the deterministic
	// i→i+2 and i→i+3 rings (dense enough that the region survives any
	// single-BP withdrawal), then seeded extras up to the exact intra
	// budget. Counts are exact by construction.
	chords := cfg.Links - cfg.Border - cfg.Routers
	for r := 0; r < cfg.Regions; r++ {
		n := sizes[r]
		for i := 0; i < n; i++ {
			addLink(r, lo[r]+i, lo[r]+(i+1)%n)
		}
		quota := chords/cfg.Regions + boolToInt(r < chords%cfg.Regions)
		for k := 0; k < quota; k++ {
			var a, b int
			switch {
			case k < n:
				a, b = k, (k+2)%n
			case k < 2*n:
				a, b = k-n, (k-n+3)%n
			default:
				a, b = rng.Intn(n), rng.Intn(n)
			}
			if a == b {
				b = (a + 1) % n
			}
			addLink(r, lo[r]+a, lo[r]+b)
		}
	}
	var border []int
	for j := 0; j < cfg.Border; j++ {
		r := j % cfg.Regions
		next := (r + 1) % cfg.Regions
		border = append(border, len(p.Links))
		addLink(r, lo[r], lo[next])
	}

	// Hub-sparse demand: each region's pairs run hub -> seeded
	// non-hub router, strictly intra-region.
	hubs := cfg.Hubs
	if hubs < 1 {
		hubs = 1
	}
	var demand []SynthDemand
	for r := 0; r < cfg.Regions; r++ {
		n := sizes[r]
		h := hubs
		if h >= n {
			h = n - 1
		}
		for i := 0; i < cfg.Pairs; i++ {
			src := lo[r] + i%h
			dst := lo[r] + h + rng.Intn(n-h)
			demand = append(demand, SynthDemand{
				A: src, B: dst, Gbps: cfg.Gbps * (0.5 + rng.Float64()),
			})
		}
	}

	return &Synth{P: p, Region: region, Border: border, Demand: demand}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
