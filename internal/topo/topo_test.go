package topo

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/linkset"
)

func TestHaversineKnownDistances(t *testing.T) {
	// London-Paris is roughly 344 km; NewYork-LosAngeles roughly 3940 km.
	cases := []struct {
		a, b     string
		min, max float64
	}{
		{"London", "Paris", 300, 400},
		{"NewYork", "LosAngeles", 3800, 4050},
		{"Tokyo", "Osaka", 350, 450},
		{"Singapore", "Sydney", 6000, 6500},
	}
	w := DefaultWorld()
	for _, c := range cases {
		i, j := w.CityIndex(c.a), w.CityIndex(c.b)
		if i < 0 || j < 0 {
			t.Fatalf("missing city %s or %s", c.a, c.b)
		}
		d := w.Distance(i, j)
		if d < c.min || d > c.max {
			t.Errorf("Distance(%s,%s) = %.0f km, want in [%v,%v]", c.a, c.b, d, c.min, c.max)
		}
	}
}

func TestHaversineProperties(t *testing.T) {
	w := DefaultWorld()
	// Symmetry and identity over all city pairs.
	for i := range w.Cities {
		if d := w.Distance(i, i); d != 0 {
			t.Fatalf("Distance(%d,%d) = %v, want 0", i, i, d)
		}
		for j := i + 1; j < len(w.Cities); j++ {
			if math.Abs(w.Distance(i, j)-w.Distance(j, i)) > 1e-9 {
				t.Fatalf("asymmetric distance between %d and %d", i, j)
			}
			if w.Distance(i, j) <= 0 {
				t.Fatalf("non-positive distance between distinct cities %d, %d", i, j)
			}
			if w.Distance(i, j) > math.Pi*earthRadiusKm {
				t.Fatalf("distance exceeds half circumference")
			}
		}
	}
}

func TestDefaultWorldWellFormed(t *testing.T) {
	w := DefaultWorld()
	if len(w.Cities) < 50 {
		t.Fatalf("world has %d cities, want >= 50", len(w.Cities))
	}
	seen := map[string]bool{}
	for _, c := range w.Cities {
		if seen[c.Name] {
			t.Fatalf("duplicate city %s", c.Name)
		}
		seen[c.Name] = true
		if c.Population <= 0 {
			t.Fatalf("city %s has non-positive population", c.Name)
		}
		if c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
			t.Fatalf("city %s has invalid coordinates", c.Name)
		}
	}
	if w.CityIndex("NoSuchCity") != -1 {
		t.Fatal("CityIndex should return -1 for unknown city")
	}
}

func TestGenerateZooDeterministic(t *testing.T) {
	w := DefaultWorld()
	cfg := DefaultZooConfig()
	a := GenerateZoo(w, cfg)
	b := GenerateZoo(w, cfg)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic zoo: %d vs %d networks", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Sites) != len(b[i].Sites) || len(a[i].Links) != len(b[i].Links) {
			t.Fatalf("network %d differs between runs", i)
		}
	}
}

func TestGenerateZooRespectsFilter(t *testing.T) {
	w := DefaultWorld()
	cfg := DefaultZooConfig()
	cfg.FilterBelow = 6
	for _, n := range GenerateZoo(w, cfg) {
		if len(n.Sites) < 6 {
			t.Fatalf("network %s has %d sites, below filter", n.Name, len(n.Sites))
		}
	}
}

func TestGenerateZooNetworksConnected(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	if len(nets) == 0 {
		t.Fatal("no networks generated")
	}
	for _, n := range nets {
		// Spanning-tree construction guarantees each network's sites
		// are connected: verify by union-find over links.
		parent := map[int]int{}
		var find func(int) int
		find = func(x int) int {
			if p, ok := parent[x]; ok && p != x {
				r := find(p)
				parent[x] = r
				return r
			}
			if _, ok := parent[x]; !ok {
				parent[x] = x
			}
			return parent[x]
		}
		for _, l := range n.Links {
			parent[find(l.A)] = find(l.B)
		}
		root := -2
		for _, s := range n.Sites {
			r := find(s)
			if root == -2 {
				root = r
			} else if r != root {
				t.Fatalf("network %s is disconnected", n.Name)
			}
		}
	}
}

func TestFormBPsCoversAllNetworksOnce(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	bps := FormBPs(nets, 20)
	if len(bps) != 20 {
		t.Fatalf("got %d BPs, want 20", len(bps))
	}
	seen := map[string]bool{}
	total := 0
	for _, bp := range bps {
		for _, m := range bp.Members {
			if seen[m] {
				t.Fatalf("network %s assigned to two BPs", m)
			}
			seen[m] = true
			total++
		}
	}
	if total != len(nets) {
		t.Fatalf("BPs cover %d networks, want %d", total, len(nets))
	}
}

func TestFormBPsSizeSkew(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	bps := FormBPs(nets, 20)
	min, max := len(bps[0].Members), len(bps[0].Members)
	for _, bp := range bps {
		if len(bp.Members) < min {
			min = len(bp.Members)
		}
		if len(bp.Members) > max {
			max = len(bp.Members)
		}
	}
	if max <= min {
		t.Fatalf("no size skew: min=%d max=%d", min, max)
	}
}

func TestFormBPsEdgeCases(t *testing.T) {
	if bps := FormBPs(nil, 0); bps != nil {
		t.Fatalf("k=0 should return nil, got %v", bps)
	}
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())[:3]
	bps := FormBPs(nets, 10)
	// Fewer networks than BPs: some buckets empty, BPs <= 3.
	if len(bps) > 3 {
		t.Fatalf("got %d BPs from 3 networks", len(bps))
	}
}

func TestMergeNetworksDedups(t *testing.T) {
	n1 := Network{Name: "a", Sites: []int{1, 2}, Links: []PhysLink{{A: 1, B: 2, Capacity: 10}}}
	n2 := Network{Name: "b", Sites: []int{2, 3}, Links: []PhysLink{{A: 2, B: 3, Capacity: 10}}}
	bp := MergeNetworks("x", []Network{n1, n2}, 1)
	if len(bp.Sites) != 3 {
		t.Fatalf("merged sites = %v, want 3 unique", bp.Sites)
	}
	if len(bp.Links) != 2 {
		t.Fatalf("merged links = %d, want 2", len(bp.Links))
	}
	if !bp.HasSite(2) || bp.HasSite(9) {
		t.Fatal("HasSite misbehaves")
	}
}

func TestColocationSites(t *testing.T) {
	bps := []BP{
		{Sites: []int{0, 1}},
		{Sites: []int{0, 2}},
		{Sites: []int{0, 1}},
		{Sites: []int{0, 3}},
	}
	if got := ColocationSites(bps, 4); len(got) != 1 || got[0] != 0 {
		t.Fatalf("minBPs=4: got %v, want [0]", got)
	}
	if got := ColocationSites(bps, 2); len(got) != 2 {
		t.Fatalf("minBPs=2: got %v, want [0 1]", got)
	}
	if got := ColocationSites(bps, 5); got != nil {
		t.Fatalf("minBPs=5: got %v, want nil", got)
	}
}

func TestBuildPOCNetworkScale(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	p := BuildPOCNetwork(w, nets, 20, 4, 0)
	if len(p.BPs) != 20 {
		t.Fatalf("BPs = %d, want 20", len(p.BPs))
	}
	if len(p.Routers) < 10 {
		t.Fatalf("only %d POC routers; zoo too sparse", len(p.Routers))
	}
	if len(p.Links) < 500 {
		t.Fatalf("only %d logical links; expected thousands", len(p.Links))
	}
	t.Logf("POC network: %s", p.Summary())
}

func TestBuildPOCNetworkLinkInvariants(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	p := BuildPOCNetwork(w, nets, 20, 4, 0)
	for i, l := range p.Links {
		if l.ID != i {
			t.Fatalf("link %d has ID %d", i, l.ID)
		}
		if l.A == l.B {
			t.Fatalf("link %d is a self-loop", i)
		}
		if l.A < 0 || l.A >= len(p.Routers) || l.B < 0 || l.B >= len(p.Routers) {
			t.Fatalf("link %d endpoints out of range", i)
		}
		if l.Capacity <= 0 || math.IsInf(l.Capacity, 1) {
			t.Fatalf("link %d capacity %v", i, l.Capacity)
		}
		if l.DistanceKm <= 0 {
			t.Fatalf("link %d distance %v", i, l.DistanceKm)
		}
		if l.BP < 0 || l.BP >= len(p.BPs) {
			t.Fatalf("link %d BP out of range", i)
		}
		// The owning BP must have presence at both endpoints.
		if !p.BPs[l.BP].HasSite(p.Routers[l.A]) || !p.BPs[l.BP].HasSite(p.Routers[l.B]) {
			t.Fatalf("link %d endpoints not in BP %d footprint", i, l.BP)
		}
	}
}

func TestBPSharesInPaperRange(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	p := BuildPOCNetwork(w, nets, 20, 4, 0)
	shares := p.BPShare()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v", sum)
	}
	// Paper: roughly 2%..12%. Accept a looser band but require spread.
	min, max := shares[0], shares[0]
	for _, s := range shares {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 2*min {
		t.Fatalf("BP shares too uniform: min=%.3f max=%.3f", min, max)
	}
	if max > 0.25 {
		t.Fatalf("one BP dominates: max share %.3f", max)
	}
	t.Logf("BP share range: %.1f%% .. %.1f%%", 100*min, 100*max)
}

func TestRouterIndexAndLinksOfBP(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	p := BuildPOCNetwork(w, nets, 20, 4, 0)
	for i, c := range p.Routers {
		if p.RouterIndex(c) != i {
			t.Fatalf("RouterIndex(%d) != %d", c, i)
		}
	}
	if p.RouterIndex(-5) != -1 {
		t.Fatal("RouterIndex should return -1 for non-router city")
	}
	total := 0
	for b := range p.BPs {
		ids := p.LinksOfBP(b)
		total += len(ids)
		for _, id := range ids {
			if p.Links[id].BP != b {
				t.Fatalf("LinksOfBP(%d) returned link of BP %d", b, p.Links[id].BP)
			}
		}
	}
	if total != len(p.Links) {
		t.Fatalf("LinksOfBP covers %d links, want %d", total, len(p.Links))
	}
}

func TestPOCGraphSubset(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	p := BuildPOCNetwork(w, nets, 20, 4, 0)

	all, edgesAll := p.Graph(nil)
	if all.NumEdges() != 2*len(p.Links) {
		t.Fatalf("full graph has %d edges, want %d", all.NumEdges(), 2*len(p.Links))
	}
	covered := func(edges [][2]graph.EdgeID) int {
		n := 0
		for _, pair := range edges {
			if pair[0] != graph.Undefined {
				n++
			}
		}
		return n
	}
	if got := covered(edgesAll); got != len(p.Links) {
		t.Fatalf("edge map covers %d links", got)
	}

	include := linkset.FromIDs([]int{0, 1}, len(p.Links))
	sub, edges := p.Graph(include)
	if sub.NumEdges() != 4 {
		t.Fatalf("subset graph has %d edges, want 4", sub.NumEdges())
	}
	if len(edges) != len(p.Links) {
		t.Fatalf("subset edge map has %d entries, want %d", len(edges), len(p.Links))
	}
	if got := covered(edges); got != 2 {
		t.Fatalf("subset edge map covers %d links, want 2", got)
	}
}

// Property: colocation sites shrink (weakly) as minBPs grows.
func TestQuickColocationMonotone(t *testing.T) {
	w := DefaultWorld()
	nets := GenerateZoo(w, DefaultZooConfig())
	bps := FormBPs(nets, 20)
	f := func(raw uint8) bool {
		k := int(raw%10) + 1
		return len(ColocationSites(bps, k+1)) <= len(ColocationSites(bps, k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: zoo generation with different seeds yields different zoos
// (sanity that the seed is actually used) while the same seed agrees.
func TestQuickZooSeedSensitivity(t *testing.T) {
	w := DefaultWorld()
	cfg := DefaultZooConfig()
	base := GenerateZoo(w, cfg)
	f := func(seed int64) bool {
		if seed == cfg.Seed {
			return true
		}
		cfg2 := cfg
		cfg2.Seed = seed
		other := GenerateZoo(w, cfg2)
		if len(other) != len(base) {
			return true // different filtering outcome: fine, differs
		}
		for i := range other {
			if len(other[i].Sites) != len(base[i].Sites) {
				return true
			}
		}
		// All sizes equal would be suspicious but not impossible; check links.
		for i := range other {
			if len(other[i].Links) != len(base[i].Links) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestLinksNearBlastRadius(t *testing.T) {
	// Three routers: two close together (London, Paris ~344 km apart)
	// and one far away (Tokyo). Links 0 (London-Paris), 1 (Paris-Tokyo),
	// 2 (London-Tokyo).
	w := DefaultWorld()
	lon, par, tok := w.CityIndex("London"), w.CityIndex("Paris"), w.CityIndex("Tokyo")
	if lon < 0 || par < 0 || tok < 0 {
		t.Fatal("missing fixture city")
	}
	p := &POCNetwork{
		World:   w,
		Routers: []int{lon, par, tok},
		Links: []LogicalLink{
			{ID: 0, A: 0, B: 1, Capacity: 10},
			{ID: 1, A: 1, B: 2, Capacity: 10},
			{ID: 2, A: 0, B: 2, Capacity: 10},
		},
	}
	lat0, lon0 := p.RouterLatLon(0)
	if d := Haversine(lat0, lon0, w.Cities[lon].Lat, w.Cities[lon].Lon); d != 0 {
		t.Fatalf("RouterLatLon(0) off by %v km", d)
	}

	// A 10 km cut at London severs every link touching London.
	got := p.LinksNear(lat0, lon0, 10)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("cut at London = %v, want [0 2]", got)
	}
	// A 500 km cut at London also reaches Paris, severing all links.
	got = p.LinksNear(lat0, lon0, 500)
	if len(got) != 3 {
		t.Fatalf("wide cut = %v, want all three links", got)
	}
	// A cut in the middle of nowhere severs nothing.
	if got := p.LinksNear(0, 0, 10); got != nil {
		t.Fatalf("remote cut = %v, want nil", got)
	}
	// Invalid inputs are rejected rather than panicking.
	if p.LinksNear(lat0, lon0, -1) != nil || p.LinksNear(math.NaN(), lon0, 10) != nil {
		t.Fatal("invalid LinksNear input should return nil")
	}
}
