package topo

import (
	"fmt"
	"math"
	"sort"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/linkset"
)

// LogicalLink is a point-to-point connection between two POC routers
// offered by a single BP. It may traverse several physical links of
// the BP's network; Capacity is the bottleneck along the BP-internal
// path and DistanceKm the physical path length, which drives both the
// routing cost and the lease price.
type LogicalLink struct {
	ID         int
	BP         int // index into the owning POCNetwork.BPs
	A, B       int // indices into POCNetwork.Routers (not city indices)
	Capacity   float64
	DistanceKm float64
}

// VirtualBP is the BP index used for virtual links provided by
// external ISPs under long-term contract (§3.3). Virtual links belong
// to no bandwidth provider and never receive auction payments.
const VirtualBP = -1

// POCNetwork is the auction input: the set of POC routers (placed at
// multi-BP colocation sites) and every logical link the BPs can offer
// between them.
type POCNetwork struct {
	World   *World
	BPs     []BP
	Routers []int // city indices hosting POC routers
	Links   []LogicalLink
}

// RouterIndex maps a city index to its POC-router index, or -1.
func (p *POCNetwork) RouterIndex(city int) int {
	for i, r := range p.Routers {
		if r == city {
			return i
		}
	}
	return -1
}

// LinksOfBP returns the logical-link IDs offered by BP b.
func (p *POCNetwork) LinksOfBP(b int) []int {
	var out []int
	for _, l := range p.Links {
		if l.BP == b {
			out = append(out, l.ID)
		}
	}
	return out
}

// BPShare returns, for each BP, its fraction of the BP-offered
// logical links (virtual links excluded) — the paper reports shares
// between roughly 2% and 12%.
func (p *POCNetwork) BPShare() []float64 {
	counts := make([]float64, len(p.BPs))
	total := 0.0
	for _, l := range p.Links {
		if l.BP == VirtualBP {
			continue
		}
		counts[l.BP]++
		total++
	}
	for i := range counts {
		counts[i] /= total
	}
	return counts
}

// AddVirtualLink appends a virtual link between router indices a and
// b with the given capacity, using the great-circle distance between
// the routers' cities, and returns its logical link ID.
func (p *POCNetwork) AddVirtualLink(a, b int, capacity float64) int {
	if a == b || a < 0 || b < 0 || a >= len(p.Routers) || b >= len(p.Routers) {
		panic(fmt.Sprintf("topo: invalid virtual link %d-%d", a, b))
	}
	if capacity <= 0 {
		panic("topo: virtual link needs positive capacity")
	}
	id := len(p.Links)
	p.Links = append(p.Links, LogicalLink{
		ID: id, BP: VirtualBP, A: a, B: b,
		Capacity:   capacity,
		DistanceKm: p.World.Distance(p.Routers[a], p.Routers[b]),
	})
	return id
}

// BuildPOCNetwork runs the paper's pipeline: form BPs from the zoo
// networks, place POC routers at sites where at least minColo BPs are
// colocated, and extract all logical links each BP can offer between
// router pairs. maxHops bounds the physical path length of a logical
// link (very long intra-BP detours are not commercially offered);
// pass 0 for the default of 2.
func BuildPOCNetwork(w *World, nets []Network, numBPs, minColo, maxHops int) *POCNetwork {
	if maxHops <= 0 {
		maxHops = 2
	}
	bps := FormBPs(nets, numBPs)
	routers := ColocationSites(bps, minColo)
	p := &POCNetwork{World: w, BPs: bps, Routers: routers}

	routerIdx := make(map[int]int, len(routers))
	for i, c := range routers {
		routerIdx[c] = i
	}

	for bi := range bps {
		bp := &bps[bi]
		// Build the BP's physical graph over the world's cities.
		g := graph.New(len(w.Cities))
		for _, l := range bp.Links {
			d := w.Distance(l.A, l.B)
			g.AddBiEdge(graph.NodeID(l.A), graph.NodeID(l.B), d, l.Capacity)
		}
		// For each pair of POC routers present in this BP, offer a
		// logical link if a path of at most maxHops physical links exists.
		var bpRouters []int
		for _, c := range bp.Sites {
			if _, ok := routerIdx[c]; ok {
				bpRouters = append(bpRouters, c)
			}
		}
		sort.Ints(bpRouters)
		for i := 0; i < len(bpRouters); i++ {
			tree := g.Dijkstra(graph.NodeID(bpRouters[i]), nil)
			for j := i + 1; j < len(bpRouters); j++ {
				dst := graph.NodeID(bpRouters[j])
				if !tree.Reachable(dst) {
					continue
				}
				path := tree.PathTo(g, dst)
				if len(path.Edges) > maxHops {
					continue
				}
				capacity := path.MinCapacity(g)
				if math.IsInf(capacity, 1) || capacity <= 0 {
					continue
				}
				p.Links = append(p.Links, LogicalLink{
					ID:         len(p.Links),
					BP:         bi,
					A:          routerIdx[bpRouters[i]],
					B:          routerIdx[bpRouters[j]],
					Capacity:   capacity,
					DistanceKm: path.Cost,
				})
			}
		}
	}
	return p
}

// RouterLatLon returns the geographic coordinates of a POC router.
// It panics only through the slice bounds check on a bad index; use
// RouterIndex/len(Routers) to validate untrusted input first.
func (p *POCNetwork) RouterLatLon(r int) (lat, lon float64) {
	c := p.World.Cities[p.Routers[r]]
	return c.Lat, c.Lon
}

// LinksNear returns, sorted, the IDs of the logical links with at
// least one endpoint router within radiusKm of the given point — the
// blast set of a geographically correlated failure (a fiber cut, a
// natural disaster at a colocation site). Logical links are modeled
// point-to-point, so a cut near either end severs the whole link.
func (p *POCNetwork) LinksNear(lat, lon, radiusKm float64) []int {
	if radiusKm < 0 || math.IsNaN(radiusKm) || math.IsNaN(lat) || math.IsNaN(lon) {
		return nil
	}
	within := make([]bool, len(p.Routers))
	for r := range p.Routers {
		rl, ro := p.RouterLatLon(r)
		within[r] = Haversine(lat, lon, rl, ro) <= radiusKm
	}
	var out []int
	for _, l := range p.Links {
		if within[l.A] || within[l.B] {
			out = append(out, l.ID)
		}
	}
	return out
}

// Summary returns a one-line description of the POC network scale.
func (p *POCNetwork) Summary() string {
	return fmt.Sprintf("%d BPs, %d POC routers, %d logical links",
		len(p.BPs), len(p.Routers), len(p.Links))
}

// Graph builds a routing graph over the POC routers containing the
// given subset of logical links (nil = all). Each logical link becomes
// a bidirectional edge with its distance as cost. The returned mapping
// is dense, indexed by logical link ID: entry l holds the two directed
// edge IDs created for link l, or {graph.Undefined, graph.Undefined}
// when the link was not included.
func (p *POCNetwork) Graph(include *linkset.Set) (*graph.Graph, [][2]graph.EdgeID) {
	g := graph.New(len(p.Routers))
	edges := make([][2]graph.EdgeID, len(p.Links))
	for i := range edges {
		edges[i] = [2]graph.EdgeID{graph.Undefined, graph.Undefined}
	}
	for _, l := range p.Links {
		if include != nil && !include.Contains(l.ID) {
			continue
		}
		e1, e2 := g.AddBiEdge(graph.NodeID(l.A), graph.NodeID(l.B), l.DistanceKm, l.Capacity)
		edges[l.ID] = [2]graph.EdgeID{e1, e2}
	}
	return g, edges
}
