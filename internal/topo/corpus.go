package topo

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadGMLCorpus reads every .gml file in dir — sorted by file name, so
// the corpus order (and everything downstream: BP formation, router
// numbering, auction outcomes) is independent of directory iteration
// order — and returns one Network per file, registering new cities in
// w. Missing link speeds default to defaultCapGbps.
//
// The loader is strict where ambiguity would poison determinism and
// lenient where real TopologyZoo data is merely messy:
//
//   - a graph with no nodes is an error naming the file;
//   - a graph whose usable link list is empty is an error too (it can
//     never carry a bid);
//   - duplicate node labels collapse onto one city (ParseGML keys
//     cities by name), and any self-loop links that collapse produces
//     are dropped;
//   - parallel edges are kept — they model bundled capacity between
//     the same two sites;
//   - duplicate network names across files are disambiguated with a
//     "#n" suffix in file order, so BP names stay unique.
func LoadGMLCorpus(w *World, dir string, defaultCapGbps float64) ([]Network, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("topo: corpus: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".gml") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("topo: corpus: no .gml files in %s", dir)
	}

	seen := map[string]int{}
	nets := make([]Network, 0, len(files))
	for _, name := range files {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("topo: corpus: %w", err)
		}
		net, err := ParseGML(w, f, defaultCapGbps)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("topo: corpus %s: %w", name, err)
		}
		if len(net.Sites) == 0 {
			return nil, fmt.Errorf("topo: corpus %s: empty graph (no nodes)", name)
		}
		kept := net.Links[:0]
		for _, l := range net.Links {
			if l.A != l.B {
				kept = append(kept, l)
			}
		}
		net.Links = kept
		if len(net.Links) == 0 {
			return nil, fmt.Errorf("topo: corpus %s: no usable links", name)
		}
		orig := net.Name
		seen[orig]++
		if seen[orig] > 1 {
			net.Name = fmt.Sprintf("%s#%d", orig, seen[orig])
		}
		nets = append(nets, net)
	}
	return nets, nil
}
