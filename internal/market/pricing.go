package market

import (
	"fmt"
	"math"
)

// Plan prices network access for a billing period given usage. §3.2
// explicitly leaves the pricing scheme between any pair of entities
// open ("flat price, or a strictly usage-based charge, or some form
// of tiered service") as long as it is not discriminatory; these
// implementations cover the three families the paper names.
type Plan interface {
	// Charge returns the price for the period given usage in GB.
	Charge(usageGB float64) float64
	// Describe returns a human-readable summary for posted-price
	// publication (non-discrimination requires the plan be public).
	Describe() string
}

// FlatPlan charges a fixed price regardless of usage.
type FlatPlan struct{ Price float64 }

// Charge implements Plan.
func (p FlatPlan) Charge(usageGB float64) float64 { return p.Price }

// Describe implements Plan.
func (p FlatPlan) Describe() string { return fmt.Sprintf("flat %.2f/period", p.Price) }

// UsagePlan charges strictly per GB.
type UsagePlan struct{ PerGB float64 }

// Charge implements Plan.
func (p UsagePlan) Charge(usageGB float64) float64 {
	if usageGB < 0 {
		return 0
	}
	return p.PerGB * usageGB
}

// Describe implements Plan.
func (p UsagePlan) Describe() string { return fmt.Sprintf("%.4f/GB", p.PerGB) }

// TieredPlan charges a flat price up to IncludedGB, then per-GB
// overage — the "flat price up to a given level of usage" family.
type TieredPlan struct {
	Base       float64
	IncludedGB float64
	OveragePer float64
}

// Charge implements Plan.
func (p TieredPlan) Charge(usageGB float64) float64 {
	if usageGB <= p.IncludedGB {
		return p.Base
	}
	return p.Base + (usageGB-p.IncludedGB)*p.OveragePer
}

// Describe implements Plan.
func (p TieredPlan) Describe() string {
	return fmt.Sprintf("%.2f incl %.0fGB then %.4f/GB", p.Base, p.IncludedGB, p.OveragePer)
}

// BreakEvenUsagePlan returns the usage price per GB that lets the POC
// recover cost over expected aggregate usage, plus a reserve margin
// in [0,1) for contingencies. This is how the nonprofit POC sets its
// LMP access price: revenue covers bandwidth (and other) costs, no
// profit motive.
func BreakEvenUsagePlan(totalCost, expectedUsageGB, reserveMargin float64) (UsagePlan, error) {
	if expectedUsageGB <= 0 {
		return UsagePlan{}, fmt.Errorf("market: expected usage must be positive")
	}
	if reserveMargin < 0 || reserveMargin >= 1 {
		return UsagePlan{}, fmt.Errorf("market: reserve margin %v out of [0,1)", reserveMargin)
	}
	if totalCost < 0 || math.IsInf(totalCost, 0) || math.IsNaN(totalCost) {
		return UsagePlan{}, fmt.Errorf("market: invalid total cost %v", totalCost)
	}
	return UsagePlan{PerGB: totalCost * (1 + reserveMargin) / expectedUsageGB}, nil
}
