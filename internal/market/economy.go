package market

import (
	"fmt"
)

// Economy wires a complete POC ecosystem over a Ledger: one POC, a
// set of BPs and external ISPs, LMPs with customers, and CSPs that
// are either directly attached to the POC or served by an LMP. It
// executes the §3.2 settlement each epoch.
type Economy struct {
	Ledger *Ledger

	POCID EntityID
	BPs   []EntityID
	ISPs  []EntityID
	LMPs  []LMPAccount
	CSPs  []CSPAccount
}

// LMPAccount is one LMP's billing state.
type LMPAccount struct {
	ID        EntityID
	Customers []CustomerAccount
	// POCPlan prices the LMP's transit from the POC.
	POCPlan Plan
	// RetailPlan prices each customer's access.
	RetailPlan Plan
}

// CustomerAccount is one customer's billing state.
type CustomerAccount struct {
	ID EntityID
	// UsageGB is the customer's traffic this epoch.
	UsageGB float64
	// Subscriptions maps CSP index (into Economy.CSPs) to the monthly
	// service fee the customer pays.
	Subscriptions map[int]float64
}

// CSPAccount is one CSP's billing state.
type CSPAccount struct {
	ID EntityID
	// Direct reports whether the CSP attaches straight to the POC; if
	// false, ViaLMP names the serving LMP (index into Economy.LMPs).
	Direct bool
	ViaLMP int
	// POCPlan (direct) or LMPPlan (via LMP) prices the CSP's access.
	AccessPlan Plan
	// UsageGB is the CSP's egress this epoch.
	UsageGB float64
}

// NewEconomy builds an economy with the given participant counts,
// registering every entity in a fresh ledger. Plans and usage start
// zeroed; callers populate them before settling.
func NewEconomy(numBPs, numISPs, numLMPs, numCSPs int) *Economy {
	l := &Ledger{}
	e := &Economy{Ledger: l}
	e.POCID = l.AddEntity(POC, "poc")
	for i := 0; i < numBPs; i++ {
		e.BPs = append(e.BPs, l.AddEntity(BandwidthProvider, fmt.Sprintf("bp%02d", i)))
	}
	for i := 0; i < numISPs; i++ {
		e.ISPs = append(e.ISPs, l.AddEntity(ExternalISP, fmt.Sprintf("isp%02d", i)))
	}
	for i := 0; i < numLMPs; i++ {
		e.LMPs = append(e.LMPs, LMPAccount{ID: l.AddEntity(LastMileProvider, fmt.Sprintf("lmp%02d", i))})
	}
	for i := 0; i < numCSPs; i++ {
		e.CSPs = append(e.CSPs, CSPAccount{ID: l.AddEntity(ContentProvider, fmt.Sprintf("csp%02d", i))})
	}
	return e
}

// AddCustomer registers a customer with the given LMP and returns its
// index within that LMP's account.
func (e *Economy) AddCustomer(lmp int, name string) int {
	id := e.Ledger.AddEntity(Customer, name)
	e.LMPs[lmp].Customers = append(e.LMPs[lmp].Customers, CustomerAccount{
		ID:            id,
		Subscriptions: map[int]float64{},
	})
	return len(e.LMPs[lmp].Customers) - 1
}

// SettleEpoch executes one epoch's §3.2 payments:
//
//	POC → BPs (auction payments), POC → ISPs (contracts),
//	LMPs → POC, direct CSPs → POC,
//	customers → LMPs, customers → CSPs, via-LMP CSPs → LMPs.
//
// leasePayments[i] pays BP i; ispContracts[i] pays ISP i. It then
// closes the epoch.
func (e *Economy) SettleEpoch(leasePayments, ispContracts []float64) error {
	if len(leasePayments) != len(e.BPs) {
		return fmt.Errorf("market: %d lease payments for %d BPs", len(leasePayments), len(e.BPs))
	}
	if len(ispContracts) != len(e.ISPs) {
		return fmt.Errorf("market: %d contracts for %d ISPs", len(ispContracts), len(e.ISPs))
	}
	l := e.Ledger
	for i, amt := range leasePayments {
		if amt == 0 {
			continue
		}
		if err := l.Pay(e.POCID, e.BPs[i], LinkLease, amt, "auction payment"); err != nil {
			return err
		}
	}
	for i, amt := range ispContracts {
		if amt == 0 {
			continue
		}
		if err := l.Pay(e.POCID, e.ISPs[i], ISPContract, amt, "general access"); err != nil {
			return err
		}
	}
	for li, lmp := range e.LMPs {
		// LMP pays the POC for its aggregate transit.
		usage := 0.0
		for _, c := range lmp.Customers {
			usage += c.UsageGB
		}
		if lmp.POCPlan != nil {
			if err := l.Pay(lmp.ID, e.POCID, POCAccess, lmp.POCPlan.Charge(usage), "transit"); err != nil {
				return err
			}
		}
		// Customers pay the LMP and their CSPs.
		for _, c := range lmp.Customers {
			if lmp.RetailPlan != nil {
				if err := l.Pay(c.ID, lmp.ID, LMPAccess, lmp.RetailPlan.Charge(c.UsageGB), "access"); err != nil {
					return err
				}
			}
			for csp, fee := range c.Subscriptions {
				if csp < 0 || csp >= len(e.CSPs) {
					return fmt.Errorf("market: customer subscribes to unknown CSP %d", csp)
				}
				if err := l.Pay(c.ID, e.CSPs[csp].ID, ServiceFee, fee, "subscription"); err != nil {
					return err
				}
			}
		}
		_ = li
	}
	for _, csp := range e.CSPs {
		if csp.AccessPlan == nil {
			continue
		}
		charge := csp.AccessPlan.Charge(csp.UsageGB)
		if csp.Direct {
			if err := l.Pay(csp.ID, e.POCID, POCAccess, charge, "direct attach"); err != nil {
				return err
			}
		} else {
			if csp.ViaLMP < 0 || csp.ViaLMP >= len(e.LMPs) {
				return fmt.Errorf("market: CSP routed via unknown LMP %d", csp.ViaLMP)
			}
			if err := l.Pay(csp.ID, e.LMPs[csp.ViaLMP].ID, LMPAccess, charge, "csp access"); err != nil {
				return err
			}
		}
	}
	l.CloseEpoch()
	return nil
}
