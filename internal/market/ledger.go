// Package market implements the paper's §3.2 payment structure: the
// entities of the POC economy (the nonprofit POC itself, bandwidth
// providers, last-mile providers, content/service providers and
// customers) and the ledger of who pays whom for what:
//
//   - the POC pays BPs for leased links and external ISPs for
//     general access;
//   - each LMP (and directly-attached CSP) pays the POC for access;
//   - each customer pays its LMP for access and pays CSPs for
//     services;
//   - each CSP using an LMP pays that LMP for access.
//
// The POC is a nonprofit but not a charity: over each accounting
// epoch its LMP/CSP revenue must cover its BP and ISP costs, which
// Accounts.POCBalance lets callers assert.
package market

import (
	"fmt"
	"sort"
)

// EntityKind classifies the participants of the POC economy.
type EntityKind int

const (
	// POC is the nonprofit public-option core itself.
	POC EntityKind = iota
	// BandwidthProvider leases links to the POC.
	BandwidthProvider
	// ExternalISP sells the POC general connectivity to the rest of
	// the Internet.
	ExternalISP
	// LastMileProvider serves customers and buys transit from the POC.
	LastMileProvider
	// ContentProvider sells services; may attach to the POC directly
	// or through an LMP.
	ContentProvider
	// Customer is an end user or enterprise.
	Customer
)

func (k EntityKind) String() string {
	switch k {
	case POC:
		return "POC"
	case BandwidthProvider:
		return "BP"
	case ExternalISP:
		return "ISP"
	case LastMileProvider:
		return "LMP"
	case ContentProvider:
		return "CSP"
	case Customer:
		return "customer"
	default:
		return fmt.Sprintf("EntityKind(%d)", int(k))
	}
}

// EntityID identifies a registered entity.
type EntityID int

// Entity is one market participant.
type Entity struct {
	ID   EntityID
	Kind EntityKind
	Name string
}

// FlowKind classifies a payment by what it buys. The §3.2 rules
// constrain which (payer, payee, kind) triples are legal; Ledger.Pay
// enforces them.
type FlowKind int

const (
	// LinkLease: POC → BP, auction payments for leased links.
	LinkLease FlowKind = iota
	// ISPContract: POC → external ISP, general-access contract.
	ISPContract
	// POCAccess: LMP or directly-attached CSP → POC.
	POCAccess
	// LMPAccess: customer or CSP → LMP.
	LMPAccess
	// ServiceFee: customer → CSP for a (non-free) service.
	ServiceFee
	// TerminationFee: CSP → LMP for traffic termination. Forbidden by
	// the POC's terms of service; the ledger accepts it only when
	// AllowTerminationFees is set, so the unregulated counterfactual
	// can be simulated.
	TerminationFee
	// RecallPenalty: BP → POC, the contractual penalty for recalling
	// a leased link before the lease period ends (§3.3 lets BPs
	// "quickly recall" overprovisioned bandwidth; the penalty prices
	// the disruption).
	RecallPenalty
	// EdgeServiceFee: CSP → POC, the posted fee for an open edge/CDN
	// service (§3.1–3.2).
	EdgeServiceFee
)

func (k FlowKind) String() string {
	switch k {
	case LinkLease:
		return "link-lease"
	case ISPContract:
		return "isp-contract"
	case POCAccess:
		return "poc-access"
	case LMPAccess:
		return "lmp-access"
	case ServiceFee:
		return "service-fee"
	case TerminationFee:
		return "termination-fee"
	case RecallPenalty:
		return "recall-penalty"
	case EdgeServiceFee:
		return "edge-service-fee"
	default:
		return fmt.Sprintf("FlowKind(%d)", int(k))
	}
}

// Payment is one ledger entry.
type Payment struct {
	Epoch  int
	From   EntityID
	To     EntityID
	Kind   FlowKind
	Amount float64
	Memo   string
}

// Ledger records entities and payments and enforces the §3.2 rules.
// The zero value is ready to use.
type Ledger struct {
	// AllowTerminationFees permits CSP→LMP termination fees, used
	// only to simulate the unregulated (UR) counterfactual. The POC's
	// terms of service keep this false.
	AllowTerminationFees bool

	entities []Entity
	payments []Payment
	epoch    int
}

// AddEntity registers a participant and returns its ID.
func (l *Ledger) AddEntity(kind EntityKind, name string) EntityID {
	id := EntityID(len(l.entities))
	l.entities = append(l.entities, Entity{ID: id, Kind: kind, Name: name})
	return id
}

// Entity returns a registered entity.
func (l *Ledger) Entity(id EntityID) (Entity, error) {
	if id < 0 || int(id) >= len(l.entities) {
		return Entity{}, fmt.Errorf("market: unknown entity %d", id)
	}
	return l.entities[id], nil
}

// Epoch returns the current accounting epoch.
func (l *Ledger) Epoch() int { return l.epoch }

// CloseEpoch advances to the next accounting epoch.
func (l *Ledger) CloseEpoch() { l.epoch++ }

// Pay records a payment after validating it against the §3.2 rules.
func (l *Ledger) Pay(from, to EntityID, kind FlowKind, amount float64, memo string) error {
	if amount < 0 {
		return fmt.Errorf("market: negative payment %v", amount)
	}
	payer, err := l.Entity(from)
	if err != nil {
		return err
	}
	payee, err := l.Entity(to)
	if err != nil {
		return err
	}
	if err := l.checkFlow(payer, payee, kind); err != nil {
		return err
	}
	l.payments = append(l.payments, Payment{
		Epoch: l.epoch, From: from, To: to, Kind: kind, Amount: amount, Memo: memo,
	})
	return nil
}

func (l *Ledger) checkFlow(payer, payee Entity, kind FlowKind) error {
	ok := false
	switch kind {
	case LinkLease:
		ok = payer.Kind == POC && payee.Kind == BandwidthProvider
	case ISPContract:
		ok = payer.Kind == POC && payee.Kind == ExternalISP
	case POCAccess:
		ok = (payer.Kind == LastMileProvider || payer.Kind == ContentProvider) && payee.Kind == POC
	case LMPAccess:
		ok = (payer.Kind == Customer || payer.Kind == ContentProvider) && payee.Kind == LastMileProvider
	case ServiceFee:
		ok = payer.Kind == Customer && payee.Kind == ContentProvider
	case TerminationFee:
		if !l.AllowTerminationFees {
			return fmt.Errorf("market: termination fees are forbidden by the POC terms of service")
		}
		ok = payer.Kind == ContentProvider && payee.Kind == LastMileProvider
	case RecallPenalty:
		ok = payer.Kind == BandwidthProvider && payee.Kind == POC
	case EdgeServiceFee:
		ok = (payer.Kind == ContentProvider || payer.Kind == LastMileProvider) && payee.Kind == POC
	default:
		return fmt.Errorf("market: unknown flow kind %d", int(kind))
	}
	if !ok {
		return fmt.Errorf("market: %s→%s is not a legal %s flow",
			payer.Kind, payee.Kind, kind)
	}
	return nil
}

// Balance returns the net position of an entity (received − paid)
// over all epochs, or over a single epoch if epoch >= 0.
func (l *Ledger) Balance(id EntityID, epoch int) float64 {
	b := 0.0
	for _, p := range l.payments {
		if epoch >= 0 && p.Epoch != epoch {
			continue
		}
		if p.To == id {
			b += p.Amount
		}
		if p.From == id {
			b -= p.Amount
		}
	}
	return b
}

// POCBalance returns the POC's net position for the given epoch (or
// all epochs when epoch < 0). A nonprofit that breaks even reports a
// balance ≥ 0 with the surplus bounded by its reserve policy.
func (l *Ledger) POCBalance(epoch int) float64 {
	for _, e := range l.entities {
		if e.Kind == POC {
			return l.Balance(e.ID, epoch)
		}
	}
	return 0
}

// TotalsByKind sums payments per flow kind for the given epoch (all
// epochs when epoch < 0), in deterministic kind order.
func (l *Ledger) TotalsByKind(epoch int) map[FlowKind]float64 {
	out := map[FlowKind]float64{}
	for _, p := range l.payments {
		if epoch >= 0 && p.Epoch != epoch {
			continue
		}
		out[p.Kind] += p.Amount
	}
	return out
}

// Payments returns a copy of all recorded payments for the given
// epoch (all epochs when epoch < 0), in recording order.
func (l *Ledger) Payments(epoch int) []Payment {
	var out []Payment
	for _, p := range l.payments {
		if epoch >= 0 && p.Epoch != epoch {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Conservation verifies the zero-sum property: the sum of all
// balances is 0 (every unit received was paid by someone).
func (l *Ledger) Conservation() float64 {
	total := 0.0
	for _, e := range l.entities {
		total += l.Balance(e.ID, -1)
	}
	return total
}

// EntitiesByKind returns the IDs of all entities of a kind, sorted.
func (l *Ledger) EntitiesByKind(kind EntityKind) []EntityID {
	var out []EntityID
	for _, e := range l.entities {
		if e.Kind == kind {
			out = append(out, e.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
