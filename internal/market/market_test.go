package market

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLedgerLegalFlows(t *testing.T) {
	l := &Ledger{}
	poc := l.AddEntity(POC, "poc")
	bp := l.AddEntity(BandwidthProvider, "bp")
	isp := l.AddEntity(ExternalISP, "isp")
	lmp := l.AddEntity(LastMileProvider, "lmp")
	csp := l.AddEntity(ContentProvider, "csp")
	cust := l.AddEntity(Customer, "alice")

	legal := []struct {
		from, to EntityID
		kind     FlowKind
	}{
		{poc, bp, LinkLease},
		{poc, isp, ISPContract},
		{lmp, poc, POCAccess},
		{csp, poc, POCAccess},
		{cust, lmp, LMPAccess},
		{csp, lmp, LMPAccess},
		{cust, csp, ServiceFee},
	}
	for _, f := range legal {
		if err := l.Pay(f.from, f.to, f.kind, 10, ""); err != nil {
			t.Errorf("legal flow %v rejected: %v", f.kind, err)
		}
	}
}

func TestLedgerIllegalFlows(t *testing.T) {
	l := &Ledger{}
	poc := l.AddEntity(POC, "poc")
	bp := l.AddEntity(BandwidthProvider, "bp")
	lmp := l.AddEntity(LastMileProvider, "lmp")
	csp := l.AddEntity(ContentProvider, "csp")
	cust := l.AddEntity(Customer, "alice")

	illegal := []struct {
		name     string
		from, to EntityID
		kind     FlowKind
	}{
		{"BP pays POC lease", bp, poc, LinkLease},
		{"customer pays POC", cust, poc, POCAccess},
		{"LMP pays customer", lmp, cust, LMPAccess},
		{"CSP pays customer service", csp, cust, ServiceFee},
		{"POC pays LMP", poc, lmp, POCAccess},
		{"termination fee under NN terms", csp, lmp, TerminationFee},
	}
	for _, f := range illegal {
		if err := l.Pay(f.from, f.to, f.kind, 10, ""); err == nil {
			t.Errorf("%s: accepted", f.name)
		}
	}
	if err := l.Pay(cust, csp, ServiceFee, -5, ""); err == nil {
		t.Error("negative payment accepted")
	}
	if err := l.Pay(99, csp, ServiceFee, 5, ""); err == nil {
		t.Error("unknown payer accepted")
	}
	if err := l.Pay(cust, 99, ServiceFee, 5, ""); err == nil {
		t.Error("unknown payee accepted")
	}
	if err := l.Pay(cust, csp, FlowKind(42), 5, ""); err == nil {
		t.Error("unknown flow kind accepted")
	}
}

func TestTerminationFeesOnlyWhenAllowed(t *testing.T) {
	l := &Ledger{AllowTerminationFees: true}
	lmp := l.AddEntity(LastMileProvider, "lmp")
	csp := l.AddEntity(ContentProvider, "csp")
	if err := l.Pay(csp, lmp, TerminationFee, 10, "UR counterfactual"); err != nil {
		t.Fatalf("UR ledger rejected termination fee: %v", err)
	}
	if err := l.Pay(lmp, csp, TerminationFee, 10, ""); err == nil {
		t.Fatal("reverse termination fee accepted")
	}
}

func TestBalancesAndConservation(t *testing.T) {
	l := &Ledger{}
	poc := l.AddEntity(POC, "poc")
	bp := l.AddEntity(BandwidthProvider, "bp")
	lmp := l.AddEntity(LastMileProvider, "lmp")
	if err := l.Pay(poc, bp, LinkLease, 100, ""); err != nil {
		t.Fatal(err)
	}
	if err := l.Pay(lmp, poc, POCAccess, 130, ""); err != nil {
		t.Fatal(err)
	}
	if got := l.Balance(poc, -1); got != 30 {
		t.Fatalf("POC balance = %v, want 30", got)
	}
	if got := l.POCBalance(-1); got != 30 {
		t.Fatalf("POCBalance = %v, want 30", got)
	}
	if got := l.Balance(bp, -1); got != 100 {
		t.Fatalf("BP balance = %v, want 100", got)
	}
	if c := l.Conservation(); c != 0 {
		t.Fatalf("conservation = %v, want 0", c)
	}
}

func TestEpochScoping(t *testing.T) {
	l := &Ledger{}
	poc := l.AddEntity(POC, "poc")
	lmp := l.AddEntity(LastMileProvider, "lmp")
	if err := l.Pay(lmp, poc, POCAccess, 10, ""); err != nil {
		t.Fatal(err)
	}
	l.CloseEpoch()
	if err := l.Pay(lmp, poc, POCAccess, 25, ""); err != nil {
		t.Fatal(err)
	}
	if got := l.POCBalance(0); got != 10 {
		t.Fatalf("epoch 0 = %v, want 10", got)
	}
	if got := l.POCBalance(1); got != 25 {
		t.Fatalf("epoch 1 = %v, want 25", got)
	}
	if got := l.POCBalance(-1); got != 35 {
		t.Fatalf("all epochs = %v, want 35", got)
	}
	if n := len(l.Payments(1)); n != 1 {
		t.Fatalf("epoch 1 payments = %d, want 1", n)
	}
	if tot := l.TotalsByKind(-1)[POCAccess]; tot != 35 {
		t.Fatalf("totals = %v, want 35", tot)
	}
}

func TestEntitiesByKind(t *testing.T) {
	l := &Ledger{}
	l.AddEntity(POC, "poc")
	a := l.AddEntity(BandwidthProvider, "a")
	b := l.AddEntity(BandwidthProvider, "b")
	got := l.EntitiesByKind(BandwidthProvider)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("got %v", got)
	}
}

func TestKindStrings(t *testing.T) {
	if POC.String() != "POC" || Customer.String() != "customer" || EntityKind(99).String() == "" {
		t.Fatal("EntityKind strings")
	}
	if LinkLease.String() != "link-lease" || FlowKind(99).String() == "" {
		t.Fatal("FlowKind strings")
	}
}

func TestPlans(t *testing.T) {
	if got := (FlatPlan{Price: 50}).Charge(1e9); got != 50 {
		t.Fatalf("flat = %v", got)
	}
	if got := (UsagePlan{PerGB: 0.1}).Charge(250); math.Abs(got-25) > 1e-12 {
		t.Fatalf("usage = %v", got)
	}
	if got := (UsagePlan{PerGB: 0.1}).Charge(-5); got != 0 {
		t.Fatalf("negative usage = %v", got)
	}
	tiered := TieredPlan{Base: 30, IncludedGB: 100, OveragePer: 0.2}
	if got := tiered.Charge(80); got != 30 {
		t.Fatalf("tiered under = %v", got)
	}
	if got := tiered.Charge(150); math.Abs(got-40) > 1e-12 {
		t.Fatalf("tiered over = %v", got)
	}
	for _, p := range []Plan{FlatPlan{1}, UsagePlan{1}, tiered} {
		if p.Describe() == "" {
			t.Fatal("empty description")
		}
	}
}

func TestBreakEvenUsagePlan(t *testing.T) {
	p, err := BreakEvenUsagePlan(1000, 10000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.PerGB-0.105) > 1e-12 {
		t.Fatalf("per GB = %v, want 0.105", p.PerGB)
	}
	for _, bad := range []func() error{
		func() error { _, err := BreakEvenUsagePlan(1000, 0, 0); return err },
		func() error { _, err := BreakEvenUsagePlan(1000, 100, -0.1); return err },
		func() error { _, err := BreakEvenUsagePlan(1000, 100, 1); return err },
		func() error { _, err := BreakEvenUsagePlan(-1, 100, 0); return err },
		func() error { _, err := BreakEvenUsagePlan(math.Inf(1), 100, 0); return err },
	} {
		if bad() == nil {
			t.Fatal("expected error")
		}
	}
}

func buildEconomy(t testing.TB) *Economy {
	e := NewEconomy(2, 1, 2, 2)
	// LMP 0: 2 customers; LMP 1: 1 customer.
	e.AddCustomer(0, "alice")
	e.AddCustomer(0, "bob")
	e.AddCustomer(1, "carol")
	for li := range e.LMPs {
		e.LMPs[li].POCPlan = UsagePlan{PerGB: 0.01}
		e.LMPs[li].RetailPlan = TieredPlan{Base: 40, IncludedGB: 500, OveragePer: 0.05}
	}
	e.LMPs[0].Customers[0].UsageGB = 300
	e.LMPs[0].Customers[0].Subscriptions[0] = 15 // alice subscribes to csp0
	e.LMPs[0].Customers[1].UsageGB = 800
	e.LMPs[1].Customers[0].UsageGB = 100
	e.LMPs[1].Customers[0].Subscriptions[1] = 10
	// CSP 0 attaches directly; CSP 1 via LMP 1.
	e.CSPs[0].Direct = true
	e.CSPs[0].AccessPlan = UsagePlan{PerGB: 0.008}
	e.CSPs[0].UsageGB = 5000
	e.CSPs[1].ViaLMP = 1
	e.CSPs[1].AccessPlan = UsagePlan{PerGB: 0.02}
	e.CSPs[1].UsageGB = 1000
	return e
}

func TestEconomySettlement(t *testing.T) {
	e := buildEconomy(t)
	if err := e.SettleEpoch([]float64{500, 300}, []float64{200}); err != nil {
		t.Fatal(err)
	}
	l := e.Ledger
	if c := l.Conservation(); c != 0 {
		t.Fatalf("conservation = %v", c)
	}
	// POC income: LMP transit 0.01*(1100+100)=12, CSP0 direct 40.
	// POC outgo: 500+300+200 = 1000. Net = 52 − 1000.
	want := 12.0 + 40 - 1000
	if got := l.POCBalance(0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("POC balance = %v, want %v", got, want)
	}
	// Customers only pay; their balances are negative.
	for _, cid := range l.EntitiesByKind(Customer) {
		if l.Balance(cid, 0) >= 0 {
			t.Fatalf("customer %d balance non-negative", cid)
		}
	}
	// Epoch advanced.
	if l.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", l.Epoch())
	}
}

func TestEconomyBreakEvenLoop(t *testing.T) {
	// The nonprofit POC prices transit to recover its costs: with
	// break-even pricing the POC balance per epoch is >= 0 and small.
	e := buildEconomy(t)
	leaseCost := 800.0
	ispCost := 200.0
	// Expected usage = LMP transit GB + direct CSP GB.
	expected := 1100.0 + 100 + 5000
	plan, err := BreakEvenUsagePlan(leaseCost+ispCost, expected, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	for li := range e.LMPs {
		e.LMPs[li].POCPlan = plan
	}
	e.CSPs[0].AccessPlan = plan
	if err := e.SettleEpoch([]float64{500, 300}, []float64{200}); err != nil {
		t.Fatal(err)
	}
	bal := e.Ledger.POCBalance(0)
	if bal < 0 {
		t.Fatalf("POC lost money: %v", bal)
	}
	if bal > (leaseCost+ispCost)*0.05 {
		t.Fatalf("POC profit %v exceeds reserve policy", bal)
	}
}

func TestSettleEpochValidation(t *testing.T) {
	e := buildEconomy(t)
	if err := e.SettleEpoch([]float64{1}, []float64{1}); err == nil {
		t.Fatal("wrong lease payment count accepted")
	}
	if err := e.SettleEpoch([]float64{1, 2}, nil); err == nil {
		t.Fatal("wrong contract count accepted")
	}
	e.LMPs[0].Customers[0].Subscriptions[99] = 5
	if err := e.SettleEpoch([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("unknown CSP subscription accepted")
	}
	delete(e.LMPs[0].Customers[0].Subscriptions, 99)
	e.CSPs[1].ViaLMP = 42
	if err := e.SettleEpoch([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("unknown via-LMP accepted")
	}
}

// Property: conservation holds for any sequence of legal payments.
func TestQuickConservation(t *testing.T) {
	f := func(amounts []uint16) bool {
		l := &Ledger{}
		poc := l.AddEntity(POC, "poc")
		bp := l.AddEntity(BandwidthProvider, "bp")
		lmp := l.AddEntity(LastMileProvider, "lmp")
		cust := l.AddEntity(Customer, "u")
		csp := l.AddEntity(ContentProvider, "csp")
		for i, a := range amounts {
			amt := float64(a)
			switch i % 4 {
			case 0:
				_ = l.Pay(poc, bp, LinkLease, amt, "")
			case 1:
				_ = l.Pay(lmp, poc, POCAccess, amt, "")
			case 2:
				_ = l.Pay(cust, lmp, LMPAccess, amt, "")
			case 3:
				_ = l.Pay(cust, csp, ServiceFee, amt, "")
			}
			if i%5 == 4 {
				l.CloseEpoch()
			}
		}
		return math.Abs(l.Conservation()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
