package netsim

import (
	"math"
	"testing"

	"github.com/public-option/poc/internal/topo"
)

// ringNet builds a 4-router ring with one chord (same shape as the
// provision tests).
func ringNet(capacity float64) *topo.POCNetwork {
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 4)},
		BPs:     make([]topo.BP, 5),
		Routers: []int{0, 1, 2, 3},
	}
	add := func(bp, a, b int, dist float64) {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: len(p.Links), BP: bp, A: a, B: b, Capacity: capacity, DistanceKm: dist,
		})
	}
	add(0, 0, 1, 100)
	add(1, 1, 2, 100)
	add(2, 2, 3, 100)
	add(3, 3, 0, 100)
	add(4, 0, 2, 250)
	return p
}

func attach3(t *testing.T, f *Fabric) (EndpointID, EndpointID, EndpointID) {
	t.Helper()
	lmp0, err := f.Attach("lmp0", LMPEndpoint, 0)
	if err != nil {
		t.Fatal(err)
	}
	lmp2, err := f.Attach("lmp2", LMPEndpoint, 2)
	if err != nil {
		t.Fatal(err)
	}
	csp, err := f.Attach("megaflix", CSPEndpoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	return lmp0, lmp2, csp
}

func TestAttachValidation(t *testing.T) {
	f := New(ringNet(10), nil)
	if _, err := f.Attach("x", LMPEndpoint, 99); err == nil {
		t.Fatal("out-of-range router accepted")
	}
	if _, err := f.Attach("x", LMPEndpoint, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach("x", CSPEndpoint, 1); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := f.Endpoint(42); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if n := len(f.Endpoints()); n != 1 {
		t.Fatalf("endpoints = %d", n)
	}
}

// TestFailUnselectedLinkIsNoop: a fabric can only fail links it
// leases — a schedule replayed against a core with a different
// selection must not pollute FailedLinks with links this fabric never
// carried.
func TestFailUnselectedLinkIsNoop(t *testing.T) {
	// Select the ring only; the chord (link 4) is not leased.
	sel := map[int]bool{0: true, 1: true, 2: true, 3: true}
	f := New(ringNet(10), sel)
	if f.LinkSelected(4) {
		t.Fatal("chord reported selected")
	}
	if !f.LinkSelected(0) {
		t.Fatal("ring link reported unselected")
	}
	if moved := f.FailLink(4); moved != nil {
		t.Fatalf("failing unselected link moved flows: %v", moved)
	}
	if f.LinkFailed(4) {
		t.Fatal("unselected link marked failed")
	}
	if got := f.FailedLinks(); len(got) != 0 {
		t.Fatalf("FailedLinks = %v after failing an unselected link", got)
	}
}

func TestStartFlowReservesShortestPath(t *testing.T) {
	f := New(ringNet(10), nil)
	lmp0, lmp2, _ := attach3(t, f)
	fl, err := f.StartFlow(lmp0, lmp2, 5, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Allocated != 5 {
		t.Fatalf("allocated = %v", fl.Allocated)
	}
	if fl.LatencyKm != 200 { // 0-1-2
		t.Fatalf("latency = %v, want 200", fl.LatencyKm)
	}
	if len(fl.Links) != 2 || fl.Links[0] != 0 || fl.Links[1] != 1 {
		t.Fatalf("links = %v", fl.Links)
	}
	util := f.Utilization()
	if util[0] != 0.5 || util[1] != 0.5 {
		t.Fatalf("utilization = %v", util)
	}
}

func TestStartFlowPartialAllocation(t *testing.T) {
	f := New(ringNet(10), nil)
	lmp0, lmp2, _ := attach3(t, f)
	// First flow takes the whole 0-1-2 path.
	if _, err := f.StartFlow(lmp0, lmp2, 10, BestEffort); err != nil {
		t.Fatal(err)
	}
	// Second gets the next-cheapest path's 10 (0-3-2 at cost 200
	// beats the 250 km chord).
	fl2, err := f.StartFlow(lmp0, lmp2, 25, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if fl2.Allocated != 10 {
		t.Fatalf("allocated = %v, want 10 (bottleneck)", fl2.Allocated)
	}
	if fl2.LatencyKm != 200 {
		t.Fatalf("second flow latency = %v, want 200 via 0-3-2", fl2.LatencyKm)
	}
	// Third saturates the chord.
	fl3, err := f.StartFlow(lmp0, lmp2, 15, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if fl3.Allocated != 10 || len(fl3.Links) != 1 || fl3.Links[0] != 4 {
		t.Fatalf("third flow = %+v", fl3)
	}
	// Fourth: everything full.
	if _, err := f.StartFlow(lmp0, lmp2, 1, BestEffort); err == nil {
		t.Fatal("admission should fail when saturated")
	}
}

func TestStartFlowValidation(t *testing.T) {
	f := New(ringNet(10), nil)
	lmp0, lmp2, _ := attach3(t, f)
	if _, err := f.StartFlow(lmp0, lmp2, 0, BestEffort); err == nil {
		t.Fatal("zero demand accepted")
	}
	if _, err := f.StartFlow(lmp0, lmp2, 1, Class{Weight: 0.5}); err == nil {
		t.Fatal("sub-unit weight accepted")
	}
	if _, err := f.StartFlow(99, lmp2, 1, BestEffort); err == nil {
		t.Fatal("unknown src accepted")
	}
	if _, err := f.StartFlow(lmp0, 99, 1, BestEffort); err == nil {
		t.Fatal("unknown dst accepted")
	}
}

func TestSameRouterFlowIsFree(t *testing.T) {
	f := New(ringNet(10), nil)
	a, err := f.Attach("a", LMPEndpoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Attach("b", CSPEndpoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := f.StartFlow(a, b, 100, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Allocated != 100 || len(fl.Links) != 0 {
		t.Fatalf("local flow = %+v", fl)
	}
}

func TestStopFlowReleasesCapacity(t *testing.T) {
	f := New(ringNet(10), nil)
	lmp0, lmp2, _ := attach3(t, f)
	fl, err := f.StartFlow(lmp0, lmp2, 10, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StopFlow(fl.ID); err != nil {
		t.Fatal(err)
	}
	if err := f.StopFlow(fl.ID); err == nil {
		t.Fatal("double stop accepted")
	}
	// Capacity back: the same reservation succeeds again.
	fl2, err := f.StartFlow(lmp0, lmp2, 10, BestEffort)
	if err != nil || fl2.Allocated != 10 {
		t.Fatalf("re-admission failed: %v %+v", err, fl2)
	}
}

func TestFailLinkReroutes(t *testing.T) {
	f := New(ringNet(10), nil)
	lmp0, lmp2, _ := attach3(t, f)
	fl, err := f.StartFlow(lmp0, lmp2, 5, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	changed := f.FailLink(0) // kill 0-1
	if len(changed) != 1 || changed[0] != fl.ID {
		t.Fatalf("changed = %v", changed)
	}
	got, err := f.Flow(fl.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Allocated != 5 {
		t.Fatalf("rerouted allocation = %v", got.Allocated)
	}
	for _, l := range got.Links {
		if l == 0 {
			t.Fatal("rerouted flow still uses failed link")
		}
	}
	// Failing again is a no-op.
	if f.FailLink(0) != nil {
		t.Fatal("double failure should be nil")
	}
	if f.FailLink(-1) != nil || f.FailLink(99) != nil {
		t.Fatal("out-of-range failure should be nil")
	}
}

func TestFailLinkDegradesWhenNoAlternative(t *testing.T) {
	p := ringNet(10)
	// Only the direct link 0-1 selected.
	f := New(p, map[int]bool{0: true})
	a, _ := f.Attach("a", LMPEndpoint, 0)
	b, _ := f.Attach("b", LMPEndpoint, 1)
	fl, err := f.StartFlow(a, b, 5, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	f.FailLink(0)
	got, _ := f.Flow(fl.ID)
	if got.Allocated != 0 {
		t.Fatalf("allocation = %v, want 0 (outage)", got.Allocated)
	}
	// Restore re-admits.
	restored := f.RestoreLink(0)
	if len(restored) != 1 {
		t.Fatalf("restored = %v", restored)
	}
	got, _ = f.Flow(fl.ID)
	if got.Allocated != 5 {
		t.Fatalf("post-restore allocation = %v", got.Allocated)
	}
	if f.RestoreLink(0) != nil {
		t.Fatal("restoring healthy link should be nil")
	}
}

func TestFailLinkPriorityOrder(t *testing.T) {
	// Two flows share the failed link; only one can fit on the
	// alternative. The gold-class flow must win regardless of ID order.
	p := ringNet(10)
	sel := map[int]bool{0: true, 1: true, 4: true} // 0-1, 1-2, chord 0-2
	f := New(p, sel)
	a, _ := f.Attach("a", LMPEndpoint, 0)
	b, _ := f.Attach("b", LMPEndpoint, 2)
	gold := Class{Name: "gold", Weight: 4, Price: 100}
	beFlow, err := f.StartFlow(a, b, 6, BestEffort) // takes 0-1-2 (cost 200 < 250)
	if err != nil {
		t.Fatal(err)
	}
	goldFlow, err := f.StartFlow(a, b, 6, gold) // takes chord (4 left on 0-1-2)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the chord: gold must be rerouted first onto 0-1-2 residual.
	f.FailLink(4)
	g, _ := f.Flow(goldFlow.ID)
	be, _ := f.Flow(beFlow.ID)
	if g.Allocated != 4 {
		t.Fatalf("gold allocation = %v, want 4 (residual)", g.Allocated)
	}
	if be.Allocated != 6 {
		t.Fatalf("best-effort allocation = %v, want 6 (untouched)", be.Allocated)
	}
}

func TestFailRepairBP(t *testing.T) {
	// Links 0 (0-1) and 4 (0-2) belong to BP 0 here; ring remainder to
	// other BPs. Failing BP 0 must take both down in one pass.
	p := ringNet(10)
	p.Links[4].BP = 0
	f := New(p, nil)
	a, _ := f.Attach("a", LMPEndpoint, 0)
	b, _ := f.Attach("b", LMPEndpoint, 2)
	fl, err := f.StartFlow(a, b, 8, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	changed := f.FailBP(0)
	if len(changed) != 1 || changed[0] != fl.ID {
		t.Fatalf("changed = %v", changed)
	}
	if !f.LinkFailed(0) || !f.LinkFailed(4) {
		t.Fatal("BP 0 links not failed")
	}
	if got := f.FailedLinks(); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("failed links = %v", got)
	}
	// The flow survives via 0-3-2.
	got, _ := f.Flow(fl.ID)
	if got.Allocated != 8 {
		t.Fatalf("allocation = %v, want 8 via 0-3-2", got.Allocated)
	}
	// Repairing the BP clears both links; the flow is already at full
	// demand, so nothing is re-placed.
	if f.RepairBP(0); len(f.FailedLinks()) != 0 {
		t.Fatal("BP repair left links failed")
	}
	// Unknown BP indexes are no-ops, never panics.
	if f.FailBP(99) != nil || f.RepairBP(99) != nil || f.FailBP(-5) != nil {
		t.Fatal("invalid BP index produced flow churn")
	}
}

func TestRepairUpgradesDegradedFlowsByClass(t *testing.T) {
	// Two flows, gold and best-effort, both squeezed onto a thin
	// alternative after a failure; repairing must upgrade gold first.
	p := ringNet(10)
	sel := map[int]bool{0: true, 1: true, 4: true} // 0-1, 1-2, chord 0-2
	f := New(p, sel)
	a, _ := f.Attach("a", LMPEndpoint, 0)
	b, _ := f.Attach("b", LMPEndpoint, 2)
	gold := Class{Name: "gold", Weight: 4, Price: 100}
	beFlow, _ := f.StartFlow(a, b, 8, BestEffort) // takes 0-1-2
	goldFlow, _ := f.StartFlow(a, b, 8, gold)     // takes chord (2 left on 0-1-2)
	f.FailLink(4)
	g, _ := f.Flow(goldFlow.ID)
	if g.Allocated != 2 {
		t.Fatalf("gold degraded allocation = %v, want 2", g.Allocated)
	}
	changed := f.RepairLink(4)
	if len(changed) == 0 {
		t.Fatal("repair re-upgraded nothing")
	}
	g, _ = f.Flow(goldFlow.ID)
	be, _ := f.Flow(beFlow.ID)
	if g.Allocated != 8 {
		t.Fatalf("gold post-repair allocation = %v, want 8", g.Allocated)
	}
	if be.Allocated != 8 {
		t.Fatalf("best-effort post-repair allocation = %v, want 8", be.Allocated)
	}
	// Repairing a healthy link is a no-op.
	if f.RepairLink(4) != nil || f.RepairLinks([]int{0, 1}) != nil {
		t.Fatal("repair of healthy links produced churn")
	}
}

func TestFailLinksAtomicCut(t *testing.T) {
	// A correlated cut of 0-1 and 3-0 isolates router 0 except for the
	// chord; the flow must land there in a single reroute pass.
	f := New(ringNet(10), nil)
	a, _ := f.Attach("a", LMPEndpoint, 0)
	b, _ := f.Attach("b", LMPEndpoint, 2)
	fl, _ := f.StartFlow(a, b, 5, BestEffort)
	changed := f.FailLinks([]int{0, 3, 0, -1, 99}) // dups/invalid skipped
	if len(changed) != 1 || changed[0] != fl.ID {
		t.Fatalf("changed = %v", changed)
	}
	got, _ := f.Flow(fl.ID)
	if len(got.Links) != 1 || got.Links[0] != 4 || got.Allocated != 5 {
		t.Fatalf("flow after cut = %+v", got)
	}
	if f.FailLinks(nil) != nil {
		t.Fatal("empty cut produced churn")
	}
}

// TestFailRepairConservesCapacityExactly is the bit-for-bit
// conservation gate: residuals are recomputed as exact ordered sums,
// so any fail → repair → fail cycling returns every link to exactly
// capacity − Σ allocations, and to exactly capacity once flows stop.
func TestFailRepairConservesCapacityExactly(t *testing.T) {
	f := New(ringNet(10), nil)
	a, _ := f.Attach("a", LMPEndpoint, 0)
	b, _ := f.Attach("b", LMPEndpoint, 2)
	var flows []FlowID
	for i := 0; i < 3; i++ {
		if fl, err := f.StartFlow(a, b, 3.3333333333, BestEffort); err == nil {
			flows = append(flows, fl.ID)
		}
	}
	for cycle := 0; cycle < 50; cycle++ {
		f.FailLink(cycle % 5)
		f.FailLink((cycle + 2) % 5)
		f.RepairLink(cycle % 5)
		f.RepairLink((cycle + 2) % 5)
	}
	for _, id := range flows {
		if err := f.StopFlow(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range f.SelectedLinks() {
		if f.resid[l] != f.net.Links[l].Capacity {
			t.Fatalf("link %d residual %v != capacity %v after full release (drift %g)",
				l, f.resid[l], f.net.Links[l].Capacity, f.net.Links[l].Capacity-f.resid[l])
		}
	}
}

func TestTickAccumulatesUsage(t *testing.T) {
	f := New(ringNet(10), nil)
	lmp0, lmp2, csp := attach3(t, f)
	fl1, _ := f.StartFlow(csp, lmp0, 8, BestEffort)
	fl2, _ := f.StartFlow(csp, lmp2, 4, BestEffort)
	f.Tick(100) // 8 Gbps * 100s / 8 = 100 GB; 4*100/8 = 50 GB
	g1, _ := f.Flow(fl1.ID)
	g2, _ := f.Flow(fl2.ID)
	if math.Abs(g1.TransferredGB-100) > 1e-9 || math.Abs(g2.TransferredGB-50) > 1e-9 {
		t.Fatalf("transferred = %v, %v", g1.TransferredGB, g2.TransferredGB)
	}
	usage := f.UsageByEndpoint()
	if math.Abs(usage[csp]-150) > 1e-9 {
		t.Fatalf("CSP usage = %v, want 150", usage[csp])
	}
	if math.Abs(usage[lmp0]-100) > 1e-9 || math.Abs(usage[lmp2]-50) > 1e-9 {
		t.Fatalf("LMP usage = %v / %v", usage[lmp0], usage[lmp2])
	}
}

func TestTickRejectsInvalidDurations(t *testing.T) {
	f := New(ringNet(10), nil)
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := f.Tick(bad); err == nil {
			t.Fatalf("Tick(%v) accepted", bad)
		}
	}
	if err := f.Tick(0); err != nil {
		t.Fatalf("Tick(0): %v", err)
	}
}

func TestStartFlowRejectsNonFiniteInput(t *testing.T) {
	f := New(ringNet(10), nil)
	lmp0, lmp2, _ := attach3(t, f)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := f.StartFlow(lmp0, lmp2, bad, BestEffort); err == nil {
			t.Fatalf("demand %v accepted", bad)
		}
		if _, err := f.StartMulticast(lmp0, []EndpointID{lmp2}, bad); err == nil {
			t.Fatalf("multicast rate %v accepted", bad)
		}
	}
	if _, err := f.StartFlow(lmp0, lmp2, 1, Class{Weight: math.NaN()}); err == nil {
		t.Fatal("NaN class weight accepted")
	}
}

func TestFlowsSnapshotOrdered(t *testing.T) {
	f := New(ringNet(10), nil)
	lmp0, lmp2, csp := attach3(t, f)
	f.StartFlow(lmp0, lmp2, 1, BestEffort)
	f.StartFlow(csp, lmp2, 1, BestEffort)
	fs := f.Flows()
	if len(fs) != 2 || fs[0].ID >= fs[1].ID {
		t.Fatalf("flows = %+v", fs)
	}
	if _, err := f.Flow(99); err == nil {
		t.Fatal("unknown flow accepted")
	}
}

func TestExternalFallbackTopology(t *testing.T) {
	// Figure 1: destinations not on the POC are reached via an
	// external ISP attachment. Model: external endpoint at router 3.
	f := New(ringNet(10), nil)
	lmp0, _, _ := attach3(t, f)
	ext, err := f.Attach("rest-of-internet", ExternalEndpoint, 3)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := f.StartFlow(lmp0, ext, 3, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if fl.LatencyKm != 100 { // direct 0-3
		t.Fatalf("latency = %v", fl.LatencyKm)
	}
	e, _ := f.Endpoint(ext)
	if e.Kind != ExternalEndpoint || e.Kind.String() != "external" {
		t.Fatalf("endpoint = %+v", e)
	}
}
