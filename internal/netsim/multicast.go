package netsim

import (
	"fmt"
	"math"
	"sort"

	"github.com/public-option/poc/internal/graph"
)

// §3.1: "the POC could support multicast and anycast delivery
// mechanisms, and any other standardized protocols that the IETF
// adopts." This file implements both on the fabric:
//
//   - Multicast: one source delivers to many receivers over a shared
//     tree; each tree link carries the stream once regardless of the
//     number of downstream receivers.
//   - Anycast: a flow is delivered to the cheapest-to-reach member of
//     a service group (used by the edge/CDN services of §3.1–3.2).

// MulticastID identifies an admitted multicast group.
type MulticastID int

// Multicast is one admitted multicast distribution.
type Multicast struct {
	ID        MulticastID
	Src       EndpointID
	Receivers []EndpointID
	Gbps      float64
	// TreeLinks are the logical links of the distribution tree, each
	// reserved once.
	TreeLinks []int
	// Reached lists the receivers in tree-connection order.
	Reached []EndpointID
}

// StartMulticast admits a multicast distribution from src to the
// given receivers at the given rate. The tree is grown greedily
// (cheapest-path-to-tree, a deterministic Takahashi–Matsuyama
// heuristic for the Steiner tree): receivers are connected in
// ascending order of their cheapest attachment cost, and every tree
// link reserves the stream rate exactly once.
//
// Admission is all-or-nothing per receiver: receivers that cannot be
// reached with capacity cause an error listing them, and nothing is
// reserved.
func (f *Fabric) StartMulticast(src EndpointID, receivers []EndpointID, gbps float64) (*Multicast, error) {
	se, err := f.Endpoint(src)
	if err != nil {
		return nil, err
	}
	if gbps <= 0 || math.IsNaN(gbps) || math.IsInf(gbps, 0) {
		return nil, fmt.Errorf("netsim: invalid multicast rate %v", gbps)
	}
	if len(receivers) == 0 {
		return nil, fmt.Errorf("netsim: multicast needs at least one receiver")
	}
	seen := map[EndpointID]bool{src: true}
	for _, r := range receivers {
		if _, err := f.Endpoint(r); err != nil {
			return nil, err
		}
		if seen[r] {
			return nil, fmt.Errorf("netsim: duplicate receiver %d", r)
		}
		seen[r] = true
	}

	// Tree state: routers already on the tree, links reserved so far.
	inTree := map[int]bool{f.endpoints[src].Router: true}
	treeLinks := map[int]bool{}
	// usable admits links with residual >= gbps OR already on the
	// tree (tree links carry the stream once; joining them is free).
	usable := func(id graph.EdgeID, e *graph.Edge) bool {
		l := int(f.linkFor[id])
		if f.failed.Contains(l) {
			return false
		}
		if treeLinks[l] {
			return true
		}
		return f.resid[l] >= gbps
	}

	remaining := append([]EndpointID(nil), receivers...)
	var order []EndpointID // connection order, for determinism
	for len(remaining) > 0 {
		// Pick the remaining receiver with the cheapest path to the
		// current tree.
		bestIdx, bestCost := -1, math.Inf(1)
		var bestPath graph.Path
		for i, r := range remaining {
			dst := graph.NodeID(f.endpoints[r].Router)
			if inTree[int(dst)] {
				// Already reachable for free.
				bestIdx, bestCost, bestPath = i, 0, graph.Path{}
				break
			}
			// Cheapest path from any tree node: search from the
			// receiver over reversed edges is equivalent because the
			// fabric's links are bidirectional; use the receiver as
			// source and stop at any tree node by scanning the tree
			// after a full Dijkstra.
			tree := f.g.Dijkstra(dst, usable)
			for node := range inTree {
				if !tree.Reachable(graph.NodeID(node)) {
					continue
				}
				if tree.Dist[node] < bestCost {
					p := tree.PathTo(f.g, graph.NodeID(node))
					bestIdx, bestCost, bestPath = i, tree.Dist[node], p
				}
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("netsim: multicast cannot reach %d of %d receivers at %.1f Gbps",
				len(remaining), len(receivers), gbps)
		}
		for _, eid := range bestPath.Edges {
			l := int(f.linkFor[eid])
			if !treeLinks[l] {
				treeLinks[l] = true
			}
		}
		nodes := bestPath.Nodes(f.g)
		for _, n := range nodes {
			inTree[int(n)] = true
		}
		order = append(order, remaining[bestIdx])
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}

	// Reserve each tree link once.
	links := make([]int, 0, len(treeLinks))
	for l := range treeLinks {
		links = append(links, l)
	}
	sort.Ints(links)
	for _, l := range links {
		if f.resid[l] < gbps {
			return nil, fmt.Errorf("netsim: multicast capacity raced on link %d", l)
		}
	}

	m := &Multicast{
		ID:        MulticastID(f.nextMcast),
		Src:       src,
		Receivers: append([]EndpointID(nil), receivers...),
		Gbps:      gbps,
		TreeLinks: links,
		Reached:   order,
	}
	f.nextMcast++
	if f.mcasts == nil {
		f.mcasts = map[MulticastID]*Multicast{}
	}
	f.mcasts[m.ID] = m
	f.indexMcast(m)
	f.recompute(links)
	_ = se
	return m, nil
}

// StopMulticast releases a multicast distribution's reservations.
func (f *Fabric) StopMulticast(id MulticastID) error {
	m, ok := f.mcasts[id]
	if !ok {
		return fmt.Errorf("netsim: unknown multicast %d", id)
	}
	f.unindexMcast(m)
	delete(f.mcasts, id)
	f.recompute(m.TreeLinks)
	return nil
}

// Multicasts returns snapshots of active multicast groups in ID
// order.
func (f *Fabric) Multicasts() []Multicast {
	ids := make([]int, 0, len(f.mcasts))
	for id := range f.mcasts {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]Multicast, 0, len(ids))
	for _, id := range ids {
		out = append(out, *f.mcasts[MulticastID(id)])
	}
	return out
}

// UnicastEquivalentGbps returns the bandwidth separate unicast flows
// to every receiver would have reserved, for comparing against the
// tree's actual reservation (the multicast saving).
func (f *Fabric) UnicastEquivalentGbps(m *Multicast) float64 {
	total := 0.0
	src := graph.NodeID(f.endpoints[m.Src].Router)
	for _, r := range m.Receivers {
		dst := graph.NodeID(f.endpoints[r].Router)
		if src == dst {
			continue
		}
		p := f.pr.Path(src, dst, nil)
		total += float64(len(p.Edges)) * m.Gbps
	}
	return total
}

// TreeGbps returns the bandwidth the tree actually reserves.
func (m *Multicast) TreeGbps() float64 {
	return float64(len(m.TreeLinks)) * m.Gbps
}

// AnycastGroup is a named set of endpoints providing the same
// service; flows to the group are delivered to the cheapest member.
// Groups are open: any endpoint may be registered (the §3.4
// conditions forbid offering this only to select CSPs).
type AnycastGroup struct {
	Name    string
	Members []EndpointID
}

// RegisterAnycast creates or extends an anycast group.
func (f *Fabric) RegisterAnycast(name string, members ...EndpointID) error {
	if name == "" {
		return fmt.Errorf("netsim: anycast group needs a name")
	}
	for _, m := range members {
		if _, err := f.Endpoint(m); err != nil {
			return err
		}
	}
	if f.anycast == nil {
		f.anycast = map[string][]EndpointID{}
	}
	existing := f.anycast[name]
	for _, m := range members {
		dup := false
		for _, e := range existing {
			if e == m {
				dup = true
				break
			}
		}
		if !dup {
			existing = append(existing, m)
		}
	}
	f.anycast[name] = existing
	return nil
}

// StartAnycastFlow admits a flow from src to the nearest (cheapest
// usable path) member of the named anycast group and returns the flow
// plus the member chosen.
func (f *Fabric) StartAnycastFlow(src EndpointID, group string, gbps float64, class Class) (*Flow, EndpointID, error) {
	members := f.anycast[group]
	if len(members) == 0 {
		return nil, 0, fmt.Errorf("netsim: unknown or empty anycast group %q", group)
	}
	se, err := f.Endpoint(src)
	if err != nil {
		return nil, 0, err
	}
	bestMember := EndpointID(-1)
	bestCost := math.Inf(1)
	for _, m := range members {
		me := f.endpoints[m]
		if me.Router == se.Router {
			bestMember, bestCost = m, 0
			break
		}
		p := f.pr.Path(graph.NodeID(se.Router), graph.NodeID(me.Router), f.usable(1e-9))
		if p.Cost < bestCost {
			bestMember, bestCost = m, p.Cost
		}
	}
	if bestMember < 0 || math.IsInf(bestCost, 1) {
		return nil, 0, fmt.Errorf("netsim: no reachable member in anycast group %q", group)
	}
	fl, err := f.StartFlow(src, bestMember, gbps, class)
	if err != nil {
		return nil, 0, err
	}
	return fl, bestMember, nil
}
