package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/topo"
)

// invariants checks the fabric's conservation laws:
//
//	(1) 0 <= resid[l] <= capacity[l] for every selected link;
//	(2) resid[l] equals capacity[l] minus the ordered sum of
//	    allocations crossing l (flows in admission order, then
//	    multicast trees by ascending ID) — bit-for-bit, not within a
//	    tolerance, because the fabric recomputes residuals as exactly
//	    this sum — and the used[] shadow stays in exact lockstep;
//	(3) every flow's allocation is within [0, demand];
//	(4) the packed crossing indexes hold only live flows, in ascending
//	    admission order, with a consistent total entry count;
//	(5) the shards' degraded registries hold exactly the below-demand
//	    flows.
func invariants(t *testing.T, f *Fabric) {
	t.Helper()
	used := make([]float64, len(f.net.Links))
	degraded := 0
	f.RangeFlows(func(fl *Flow) bool {
		if fl.Allocated < -1e-9 || fl.Allocated > fl.Demand+1e-9 {
			t.Fatalf("flow %d allocation %v outside [0,%v]", fl.ID, fl.Allocated, fl.Demand)
		}
		if fl.Allocated < fl.Demand-1e-9 {
			degraded++
		}
		for _, l := range fl.Links {
			used[l] += fl.Allocated
		}
		return true
	})
	for _, m := range f.Multicasts() {
		for _, l := range m.TreeLinks {
			used[l] += m.Gbps
		}
	}
	for id, pair := range f.edgeFor {
		if pair[0] == graph.Undefined {
			continue
		}
		capacity := f.net.Links[id].Capacity
		if f.resid[id] < -1e-9 || f.resid[id] > capacity+1e-9 {
			t.Fatalf("link %d resid %v outside [0,%v]", id, f.resid[id], capacity)
		}
		if f.resid[id] != capacity-used[id] {
			t.Fatalf("link %d: resid=%v but capacity−assignments=%v (drift %g)",
				id, f.resid[id], capacity-used[id], f.resid[id]-(capacity-used[id]))
		}
		if f.resid[id] != capacity-f.used[id] {
			t.Fatalf("link %d: resid=%v out of lockstep with used=%v", id, f.resid[id], f.used[id])
		}
	}
	entries := 0
	for l, list := range f.flowsOn {
		for i, s := range list {
			if f.tab.seq[s] < 0 {
				t.Fatalf("link %d crossing index holds freed slot %d", l, s)
			}
			if i > 0 && f.tab.seq[list[i-1]] >= f.tab.seq[s] {
				t.Fatalf("link %d crossing index out of admission order at %d", l, i)
			}
		}
		entries += len(list)
	}
	if entries != f.nFlowIdx {
		t.Fatalf("crossing index holds %d entries, counter says %d", entries, f.nFlowIdx)
	}
	registered := 0
	for i := range f.shards {
		for _, s := range f.shards[i].degraded {
			if f.tab.seq[s] < 0 {
				t.Fatalf("shard %d registers freed slot %d as degraded", i, s)
			}
			if int(f.tab.src[s]) != i {
				t.Fatalf("slot %d registered in shard %d but sourced at %d", s, i, f.tab.src[s])
			}
		}
		registered += len(f.shards[i].degraded)
	}
	if registered != degraded {
		t.Fatalf("shards register %d degraded flows, population has %d", registered, degraded)
	}
}

// drain stops every flow and multicast, then asserts each link's
// residual equals its capacity exactly: fail→repair→fail cycles must
// conserve capacity bit-for-bit.
func drain(t *testing.T, f *Fabric) {
	t.Helper()
	for _, fl := range f.Flows() {
		if err := f.StopFlow(fl.ID); err != nil {
			t.Fatalf("stop flow %d: %v", fl.ID, err)
		}
	}
	for _, m := range f.Multicasts() {
		if err := f.StopMulticast(m.ID); err != nil {
			t.Fatalf("stop multicast %d: %v", m.ID, err)
		}
	}
	for id, pair := range f.edgeFor {
		if pair[0] == graph.Undefined {
			continue
		}
		if f.resid[id] != f.net.Links[id].Capacity {
			t.Fatalf("link %d: resid %v != capacity %v after draining (drift %g)",
				id, f.resid[id], f.net.Links[id].Capacity,
				f.resid[id]-f.net.Links[id].Capacity)
		}
	}
}

// TestFuzzFailureInjection drives a random sequence of flow starts,
// stops, link failures and restores against a mid-size fabric and
// checks the conservation invariants after every operation.
func TestFuzzFailureInjection(t *testing.T) {
	w := topo.DefaultWorld()
	cfg := topo.DefaultZooConfig()
	cfg.NumNetworks = 25
	nets := topo.GenerateZoo(w, cfg)
	p := topo.BuildPOCNetwork(w, nets, 8, 4, 0)
	if len(p.Routers) < 4 || len(p.Links) < 20 {
		t.Fatalf("fixture too small: %s", p.Summary())
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(p, nil)
		var eps []EndpointID
		for i := 0; i < 6; i++ {
			id, err := fab.Attach(string(rune('a'+i)), LMPEndpoint, rng.Intn(len(p.Routers)))
			if err != nil {
				return false
			}
			eps = append(eps, id)
		}
		var live []FlowID
		failed := map[int]bool{}
		for op := 0; op < 120; op++ {
			switch rng.Intn(5) {
			case 0, 1: // start a flow
				a := eps[rng.Intn(len(eps))]
				b := eps[rng.Intn(len(eps))]
				if a == b {
					continue
				}
				if fl, err := fab.StartFlow(a, b, 1+rng.Float64()*20, BestEffort); err == nil {
					live = append(live, fl.ID)
				}
			case 2: // stop a flow
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				if err := fab.StopFlow(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			case 3: // fail a random link
				l := rng.Intn(len(p.Links))
				if !failed[l] {
					fab.FailLink(l)
					failed[l] = true
				}
			case 4: // restore a failed link
				for l := range failed {
					fab.RestoreLink(l)
					delete(failed, l)
					break
				}
			}
			invariants(t, fab)
		}
		// Repair everything, tear everything down: capacity must be
		// conserved bit-for-bit through the fail/repair history.
		for l := range failed {
			fab.RepairLink(l)
		}
		invariants(t, fab)
		drain(t, fab)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzFailRepairCycles hammers the repair path specifically:
// random fail→repair→fail cycles over the whole link set with live
// flows, checking invariants at every step and exact capacity
// conservation after teardown.
func TestFuzzFailRepairCycles(t *testing.T) {
	p := ringNet(50)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(p, nil)
		var eps []EndpointID
		for i, r := range []int{0, 1, 2, 3} {
			id, err := fab.Attach(string(rune('a'+i)), LMPEndpoint, r)
			if err != nil {
				return false
			}
			eps = append(eps, id)
		}
		// Odd demands so allocations are not representable exactly in
		// few bits — drift would show.
		for i := 0; i < 6; i++ {
			a, b := eps[rng.Intn(len(eps))], eps[rng.Intn(len(eps))]
			if a == b {
				continue
			}
			fab.StartFlow(a, b, 10.0/3.0+rng.Float64()*7, BestEffort)
		}
		for op := 0; op < 100; op++ {
			l := rng.Intn(len(p.Links))
			if fab.LinkFailed(l) {
				fab.RepairLink(l)
			} else {
				fab.FailLink(l)
			}
			invariants(t, fab)
		}
		for _, l := range fab.FailedLinks() {
			fab.RepairLink(l)
		}
		invariants(t, fab)
		drain(t, fab)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// FuzzFabricOps is the native fuzz entry point (CI runs it briefly
// with -fuzz). Each input byte drives one operation; invariants are
// checked after every step and exact conservation after teardown.
func FuzzFabricOps(f *testing.F) {
	f.Add([]byte{0, 1, 30, 2, 40, 31, 3, 0, 32})
	f.Add([]byte{30, 30, 31, 40, 41, 30, 0, 5})
	f.Add([]byte{72, 35, 61, 45, 75, 63, 90, 28, 70, 65})
	p := ringNet(50)
	f.Fuzz(func(t *testing.T, ops []byte) {
		fab := New(p, nil)
		var eps []EndpointID
		for i, r := range []int{0, 1, 2, 3} {
			id, err := fab.Attach(string(rune('a'+i)), LMPEndpoint, r)
			if err != nil {
				t.Fatal(err)
			}
			eps = append(eps, id)
		}
		var live []FlowID
		for _, op := range ops {
			switch {
			case op < 30: // start a flow; the byte picks endpoints and demand
				a := eps[int(op)%len(eps)]
				b := eps[(int(op)/len(eps))%len(eps)]
				if a == b {
					continue
				}
				if fl, err := fab.StartFlow(a, b, 1+float64(op)/3.0, BestEffort); err == nil {
					live = append(live, fl.ID)
				}
			case op < 40: // fail a link
				fab.FailLink(int(op) % len(p.Links))
			case op < 50: // repair a link
				fab.RepairLink(int(op) % len(p.Links))
			case op < 60: // stop the oldest live flow
				if len(live) > 0 {
					if err := fab.StopFlow(live[0]); err != nil {
						t.Fatal(err)
					}
					live = live[1:]
				}
			case op < 70: // bulk-stop a prefix, with junk IDs mixed in
				k := int(op-60) + 1
				if k > len(live) {
					k = len(live)
				}
				batch := append([]FlowID{-1, 1 << 40}, live[:k]...)
				if stopped := fab.StopFlows(batch); stopped != k {
					t.Fatalf("bulk stop of %d live flows stopped %d", k, stopped)
				}
				live = live[k:]
			case op < 80: // bulk-start a batch of flows
				var specs []FlowSpec
				for i := 0; i < int(op-70)+2; i++ {
					a := eps[i%len(eps)]
					b := eps[(i+int(op))%len(eps)]
					if a == b {
						continue
					}
					specs = append(specs, FlowSpec{
						Src: a, Dst: b, Demand: 1 + float64(int(op)+i)/7.0, Class: BestEffort,
					})
				}
				for _, id := range fab.StartFlows(specs) {
					if id >= 0 {
						live = append(live, id)
					}
				}
			default: // advance the clock
				if err := fab.Tick(float64(op-80) * 0.25); err != nil {
					t.Fatal(err)
				}
			}
			invariants(t, fab)
		}
		for _, l := range fab.FailedLinks() {
			fab.RepairLink(l)
		}
		drain(t, fab)
	})
}

// TestFuzzMulticastLifecycle mixes multicast groups with unicast
// flows and failures.
func TestFuzzMulticastLifecycle(t *testing.T) {
	p := ringNet(50)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(p, nil)
		var eps []EndpointID
		for i, r := range []int{0, 1, 2, 3} {
			id, err := fab.Attach(string(rune('a'+i)), LMPEndpoint, r)
			if err != nil {
				return false
			}
			eps = append(eps, id)
		}
		var groups []MulticastID
		for op := 0; op < 60; op++ {
			switch rng.Intn(3) {
			case 0:
				src := eps[rng.Intn(len(eps))]
				var rcv []EndpointID
				for _, e := range eps {
					if e != src && rng.Intn(2) == 0 {
						rcv = append(rcv, e)
					}
				}
				if len(rcv) == 0 {
					continue
				}
				if m, err := fab.StartMulticast(src, rcv, 1+rng.Float64()*5); err == nil {
					groups = append(groups, m.ID)
				}
			case 1:
				if len(groups) == 0 {
					continue
				}
				i := rng.Intn(len(groups))
				if err := fab.StopMulticast(groups[i]); err != nil {
					return false
				}
				groups = append(groups[:i], groups[i+1:]...)
			case 2:
				a := eps[rng.Intn(len(eps))]
				b := eps[rng.Intn(len(eps))]
				if a != b {
					fab.StartFlow(a, b, 1+rng.Float64()*5, BestEffort)
				}
			}
			invariants(t, fab)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
