package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/public-option/poc/internal/topo"
)

// invariants checks the fabric's conservation laws:
//
//	(1) 0 <= resid[l] <= capacity[l] for every selected link;
//	(2) capacity − resid equals the sum of allocations crossing l
//	    (flows plus multicast trees);
//	(3) every flow's allocation is within [0, demand].
func invariants(t *testing.T, f *Fabric) {
	t.Helper()
	used := make([]float64, len(f.net.Links))
	for _, fl := range f.flows {
		if fl.Allocated < -1e-9 || fl.Allocated > fl.Demand+1e-9 {
			t.Fatalf("flow %d allocation %v outside [0,%v]", fl.ID, fl.Allocated, fl.Demand)
		}
		for _, l := range fl.Links {
			used[l] += fl.Allocated
		}
	}
	for _, m := range f.mcasts {
		for _, l := range m.TreeLinks {
			used[l] += m.Gbps
		}
	}
	for id := range f.edgeFor {
		capacity := f.net.Links[id].Capacity
		if f.resid[id] < -1e-9 || f.resid[id] > capacity+1e-9 {
			t.Fatalf("link %d resid %v outside [0,%v]", id, f.resid[id], capacity)
		}
		if math.Abs((capacity-f.resid[id])-used[id]) > 1e-6 {
			t.Fatalf("link %d: capacity-resid=%v but assignments sum to %v",
				id, capacity-f.resid[id], used[id])
		}
	}
}

// TestFuzzFailureInjection drives a random sequence of flow starts,
// stops, link failures and restores against a mid-size fabric and
// checks the conservation invariants after every operation.
func TestFuzzFailureInjection(t *testing.T) {
	w := topo.DefaultWorld()
	cfg := topo.DefaultZooConfig()
	cfg.NumNetworks = 25
	nets := topo.GenerateZoo(w, cfg)
	p := topo.BuildPOCNetwork(w, nets, 8, 4, 0)
	if len(p.Routers) < 4 || len(p.Links) < 20 {
		t.Fatalf("fixture too small: %s", p.Summary())
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(p, nil)
		var eps []EndpointID
		for i := 0; i < 6; i++ {
			id, err := fab.Attach(string(rune('a'+i)), LMPEndpoint, rng.Intn(len(p.Routers)))
			if err != nil {
				return false
			}
			eps = append(eps, id)
		}
		var live []FlowID
		failed := map[int]bool{}
		for op := 0; op < 120; op++ {
			switch rng.Intn(5) {
			case 0, 1: // start a flow
				a := eps[rng.Intn(len(eps))]
				b := eps[rng.Intn(len(eps))]
				if a == b {
					continue
				}
				if fl, err := fab.StartFlow(a, b, 1+rng.Float64()*20, BestEffort); err == nil {
					live = append(live, fl.ID)
				}
			case 2: // stop a flow
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				if err := fab.StopFlow(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			case 3: // fail a random link
				l := rng.Intn(len(p.Links))
				if !failed[l] {
					fab.FailLink(l)
					failed[l] = true
				}
			case 4: // restore a failed link
				for l := range failed {
					fab.RestoreLink(l)
					delete(failed, l)
					break
				}
			}
			invariants(t, fab)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzMulticastLifecycle mixes multicast groups with unicast
// flows and failures.
func TestFuzzMulticastLifecycle(t *testing.T) {
	p := ringNet(50)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fab := New(p, nil)
		var eps []EndpointID
		for i, r := range []int{0, 1, 2, 3} {
			id, err := fab.Attach(string(rune('a'+i)), LMPEndpoint, r)
			if err != nil {
				return false
			}
			eps = append(eps, id)
		}
		var groups []MulticastID
		for op := 0; op < 60; op++ {
			switch rng.Intn(3) {
			case 0:
				src := eps[rng.Intn(len(eps))]
				var rcv []EndpointID
				for _, e := range eps {
					if e != src && rng.Intn(2) == 0 {
						rcv = append(rcv, e)
					}
				}
				if len(rcv) == 0 {
					continue
				}
				if m, err := fab.StartMulticast(src, rcv, 1+rng.Float64()*5); err == nil {
					groups = append(groups, m.ID)
				}
			case 1:
				if len(groups) == 0 {
					continue
				}
				i := rng.Intn(len(groups))
				if err := fab.StopMulticast(groups[i]); err != nil {
					return false
				}
				groups = append(groups[:i], groups[i+1:]...)
			case 2:
				a := eps[rng.Intn(len(eps))]
				b := eps[rng.Intn(len(eps))]
				if a != b {
					fab.StartFlow(a, b, 1+rng.Float64()*5, BestEffort)
				}
			}
			invariants(t, fab)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
