package netsim

// This file holds the struct-of-arrays flow table behind Fabric. The
// seed engine kept a map[FlowID]*Flow with a per-flow []int path; at
// million-flow populations the pointer chasing, map iteration order
// repair (sort per recompute) and per-flow slice headers dominated
// both time and allocations. The table replaces all of that with
// parallel slices indexed by a dense slot ID:
//
//   - Slots are recycled through a LIFO free list. A FlowID packs
//     (generation, slot) so a stale ID from a stopped flow can never
//     alias a recycled slot: freeing bumps the slot's generation and
//     lookups compare the ID's generation against the slot's.
//   - seq is the global admission sequence number. Seed FlowIDs were
//     sequential and never reused, so "ascending ID" was admission
//     order — and every float accumulation in the fabric (residual
//     sums, usage tallies, reroute victim ordering) depended on it.
//     With recycled slots the numeric ID no longer encodes that, so
//     seq does, and every order-sensitive path iterates by seq.
//   - Paths live in one shared []int32 arena as (offset, length)
//     spans instead of a heap slice per flow. Freed spans leave
//     garbage behind; the arena compacts when dead links outnumber
//     live ones.
//   - Classes are interned: flows store an int32 index into a small
//     classes slice instead of a 4-word Class copy per flow.
//   - order is an append-only log of (slot, generation) in admission
//     order; entries whose generation no longer matches are dead.
//     Iterating it yields live flows in exactly the order the seed's
//     sorted-map walk produced, without sorting anything.
type flowTable struct {
	// Parallel per-slot arrays. seq < 0 marks a free slot.
	src         []EndpointID
	dst         []EndpointID
	demand      []float64
	alloc       []float64
	latency     []float64
	transferred []float64
	classID     []int32
	seq         []int64
	gen         []uint32
	pathOff     []int32
	pathLen     []int32
	// degPos is the slot's position inside its source shard's
	// degraded registry, -1 when the flow is fully allocated.
	degPos []int32
	// mark is scratch for epoch-stamped set membership (bulk stop,
	// reroute victim dedupe); a slot is marked iff mark[slot] == the
	// fabric's current mark epoch.
	mark []uint32

	free    []int32
	live    int
	nextSeq int64

	classes  []Class
	classIdx map[Class]int32

	order []orderEnt
	dead  int

	arena pathArena
}

// orderEnt is one admission-log entry; it is dead once the slot's
// generation moves past gen.
type orderEnt struct {
	slot int32
	gen  uint32
}

// pathArena backs every flow's link list. data only ever grows at the
// end (tentative spans are truncated on rejection); liveLinks counts
// the links owned by live spans so compaction can size its copy
// exactly and trigger only when at least half the arena is garbage.
type pathArena struct {
	data      []int32
	liveLinks int
}

// allocSlot returns a free slot, growing every parallel array in
// lockstep when the free list is empty.
func (t *flowTable) allocSlot() int32 {
	if n := len(t.free); n > 0 {
		s := t.free[n-1]
		t.free = t.free[:n-1]
		return s
	}
	t.src = append(t.src, 0)
	t.dst = append(t.dst, 0)
	t.demand = append(t.demand, 0)
	t.alloc = append(t.alloc, 0)
	t.latency = append(t.latency, 0)
	t.transferred = append(t.transferred, 0)
	t.classID = append(t.classID, 0)
	t.seq = append(t.seq, -1)
	t.gen = append(t.gen, 0)
	t.pathOff = append(t.pathOff, 0)
	t.pathLen = append(t.pathLen, 0)
	t.degPos = append(t.degPos, -1)
	t.mark = append(t.mark, 0)
	return int32(len(t.seq) - 1)
}

// internClass maps a Class to its dense index, registering it on
// first sight. Classes containing NaN fields never match themselves
// as map keys, so they bypass the index and get a fresh entry each
// admission — correct, just not deduplicated (the seed stored a full
// copy per flow anyway).
func (t *flowTable) internClass(c Class) int32 {
	if c.Weight == c.Weight && c.Price == c.Price {
		if id, ok := t.classIdx[c]; ok {
			return id
		}
		id := int32(len(t.classes))
		if t.classIdx == nil {
			t.classIdx = make(map[Class]int32)
		}
		t.classIdx[c] = id
		t.classes = append(t.classes, c)
		return id
	}
	t.classes = append(t.classes, c)
	return int32(len(t.classes) - 1)
}

// admit fills a slot for a newly started flow, stamps the next
// admission sequence number and appends it to the order log. The path
// span is committed separately by the caller.
func (t *flowTable) admit(src, dst EndpointID, demand float64, classID int32) int32 {
	s := t.allocSlot()
	t.src[s], t.dst[s] = src, dst
	t.demand[s] = demand
	t.alloc[s] = 0
	t.latency[s] = 0
	t.transferred[s] = 0
	t.classID[s] = classID
	t.seq[s] = t.nextSeq
	t.nextSeq++
	t.pathOff[s], t.pathLen[s] = 0, 0
	t.degPos[s] = -1
	t.order = append(t.order, orderEnt{slot: s, gen: t.gen[s]})
	t.live++
	return s
}

// release frees a slot: the generation bump invalidates both the
// flow's outstanding FlowIDs and its order-log entry. The caller must
// already have unindexed the flow and freed its path span.
func (t *flowTable) release(s int32) {
	t.seq[s] = -1
	t.gen[s]++
	t.free = append(t.free, s)
	t.live--
	t.dead++
	t.compactOrder()
}

// compactOrder rewrites the admission log without its dead entries
// once they outnumber the live ones; amortized O(1) per release.
func (t *flowTable) compactOrder() {
	if t.dead < 64 || t.dead <= t.live {
		return
	}
	out := t.order[:0]
	for _, e := range t.order {
		if t.gen[e.slot] == e.gen {
			out = append(out, e)
		}
	}
	t.order = out
	t.dead = 0
}

// rangeLive visits every live flow in admission order. A log entry is
// live iff its recorded generation still matches the slot's: freeing
// bumps the generation, and a recycled slot's new entry carries the
// new generation.
func (t *flowTable) rangeLive(fn func(slot int32) bool) {
	for _, e := range t.order {
		if t.gen[e.slot] != e.gen {
			continue
		}
		if !fn(e.slot) {
			return
		}
	}
}

// path returns the slot's link span inside the arena. Valid only
// until the next arena append or compaction.
func (t *flowTable) path(s int32) []int32 {
	off, n := t.pathOff[s], t.pathLen[s]
	return t.arena.data[off : off+n]
}

// commitPath binds the tentatively appended span [start, len(data))
// to the slot.
func (t *flowTable) commitPath(s int32, start int) {
	t.pathOff[s] = int32(start)
	t.pathLen[s] = int32(len(t.arena.data) - start)
	t.arena.liveLinks += int(t.pathLen[s])
}

// freePath abandons the slot's span (the data stays as garbage until
// compaction).
func (t *flowTable) freePath(s int32) {
	t.arena.liveLinks -= int(t.pathLen[s])
	t.pathLen[s] = 0
	t.pathOff[s] = 0
}

// compactArena rewrites the arena with only live spans once garbage
// outnumbers them. Must be called at a safe point: no caller may hold
// a path() slice across it.
func (t *flowTable) compactArena() {
	dead := len(t.arena.data) - t.arena.liveLinks
	if dead < 4096 || dead <= t.arena.liveLinks {
		return
	}
	data := make([]int32, 0, t.arena.liveLinks)
	t.rangeLive(func(s int32) bool {
		if n := t.pathLen[s]; n > 0 {
			off := t.pathOff[s]
			t.pathOff[s] = int32(len(data))
			data = append(data, t.arena.data[off:off+n]...)
		}
		return true
	})
	t.arena.data = data
}

const slotBits = 32

// encodeID packs (generation, slot) into a positive FlowID. The
// generation is truncated to 31 bits to keep IDs non-negative; a slot
// would need 2^31 free/reuse cycles before an ID could repeat.
func encodeID(slot int32, gen uint32) FlowID {
	return FlowID(int64(gen&0x7fffffff)<<slotBits | int64(uint32(slot)))
}

// lookup resolves a FlowID to its slot, rejecting unknown, stopped
// and stale (recycled-slot) IDs.
func (t *flowTable) lookup(id FlowID) (int32, bool) {
	if id < 0 {
		return 0, false
	}
	slot := int64(id) & (1<<slotBits - 1)
	if slot >= int64(len(t.seq)) {
		return 0, false
	}
	s := int32(slot)
	if t.seq[s] < 0 || uint32(int64(id)>>slotBits) != t.gen[s]&0x7fffffff {
		return 0, false
	}
	return s, true
}

// id rebuilds the FlowID of a live slot.
func (t *flowTable) id(s int32) FlowID {
	return encodeID(s, t.gen[s])
}
