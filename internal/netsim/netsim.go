// Package netsim is a flow-level simulator of the POC fabric. It
// models the connectivity structure of the paper's Figure 1:
// customers sit behind last-mile providers (LMPs); LMPs — and large
// CSPs directly — attach to the POC at router sites; the POC carries
// flows edge-to-edge over the auctioned link set as a transparent,
// policy-free fabric; anything not on the POC is reached through an
// external ISP attachment.
//
// Flows reserve bandwidth on admission (min of demand and bottleneck
// residual along the cheapest feasible path), are re-routed on link
// failure, and accumulate transferred volume via Tick so the market
// package can bill usage. QoS classes are open and posted-price:
// a higher class buys a larger sharing weight, never a per-source
// preference — the fabric has no notion of favored endpoints.
//
// The data plane is built for million-flow populations: flows live in
// a struct-of-arrays table (flowtable.go) with paths in a shared
// arena, per-link crossing indexes are packed slices kept in
// admission order, and degraded flows are registered per source
// attachment shard so repair passes touch only the shards that hold
// victims. All of it is observationally identical to a naive
// map-of-pointers fabric: residual sums, iteration orders and metric
// samples reproduce the reference engine bit for bit.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/topo"
)

// EndpointKind classifies fabric attachments.
type EndpointKind int

const (
	// LMPEndpoint is a last-mile provider attachment.
	LMPEndpoint EndpointKind = iota
	// CSPEndpoint is a directly-attached content/service provider.
	CSPEndpoint
	// ExternalEndpoint represents the rest of the Internet behind an
	// external ISP attachment.
	ExternalEndpoint
)

func (k EndpointKind) String() string {
	switch k {
	case LMPEndpoint:
		return "LMP"
	case CSPEndpoint:
		return "CSP"
	case ExternalEndpoint:
		return "external"
	default:
		return fmt.Sprintf("EndpointKind(%d)", int(k))
	}
}

// EndpointID identifies an attachment.
type EndpointID int

// Endpoint is one attachment to the fabric.
type Endpoint struct {
	ID     EndpointID
	Name   string
	Kind   EndpointKind
	Router int // POC router index
}

// Class is a posted-price QoS class. Weight scales the flow's claim
// during contention; the price is what the POC publishes. Classes
// apply uniformly to any buyer — the fabric cannot express per-source
// preferences.
type Class struct {
	Name   string
	Weight float64 // >= 1
	Price  float64 // posted, per Gbps-month
}

// BestEffort is the default class.
var BestEffort = Class{Name: "best-effort", Weight: 1, Price: 0}

// FlowID identifies an admitted flow. IDs encode the flow's table
// slot plus a per-slot generation, so the ID of a stopped flow stays
// permanently invalid even after its slot is recycled. IDs are opaque
// and non-negative; their numeric order is NOT admission order — use
// Flow.Seq for that.
type FlowID int

// Flow is one admitted aggregate flow.
type Flow struct {
	ID FlowID
	// Seq is the flow's admission sequence number. Flows, RangeFlows
	// and every order-sensitive accumulation inside the fabric iterate
	// in ascending Seq (admission) order; unlike ID it never recycles.
	Seq       int64
	Src, Dst  EndpointID
	Demand    float64 // requested Gbps
	Allocated float64 // reserved Gbps (≤ Demand)
	Class     Class
	Links     []int   // logical links along the path
	LatencyKm float64 // propagation distance of the path
	// TransferredGB accumulates volume via Tick.
	TransferredGB float64
}

// shard is the per-source-attachment slice of the flow population.
// Its degraded registry lists every slot whose flow is below demand —
// exactly the victim set of a repair pass — so RepairLinks gathers
// victims without scanning the table.
type shard struct {
	degraded []int32
}

// Fabric is the POC data plane over a selected link set.
type Fabric struct {
	net      *topo.POCNetwork
	selected *linkset.Set // always materialized (nil input = all links)
	failed   *linkset.Set

	endpoints []Endpoint
	epByName  map[string]EndpointID
	// shards is indexed by source EndpointID, in lockstep with
	// endpoints.
	shards []shard

	tab       flowTable
	mcasts    map[MulticastID]*Multicast
	nextMcast int
	anycast   map[string][]EndpointID

	// used / resid are maintained in lockstep per logical link:
	// used[l] is the deterministically-ordered allocation sum and
	// resid[l] is always Capacity − used[l], written together so both
	// reproduce a from-scratch recompute bit for bit.
	used  []float64
	resid []float64

	// Per-link crossing indexes: packed slices of the flow slots /
	// multicast IDs holding a reservation on each logical link, kept
	// in ascending admission (seq) order so residual resums read them
	// front to back with no sorting.
	flowsOn  [][]int32
	mcastsOn [][]int32

	g       *graph.Graph
	pr      *graph.PointRouter
	linkFor []int32
	edgeFor [][2]graph.EdgeID

	// want + wantFilter implement the capacity edge filter without a
	// closure allocation per path search; edgeBuf is the reusable
	// Dijkstra output buffer.
	want       float64
	wantFilter graph.EdgeFilter
	edgeBuf    []graph.EdgeID

	// Epoch-stamped scratch for bulk operations (see nextMark).
	linkMark   []uint32
	markCur    uint32
	touchedBuf []int32
	slotsBuf   []int32
	victimBuf  []int32

	// obs, when non-nil, receives fabric metrics (flow admission and
	// reroute outcomes, per-link peak utilization, crossing-index
	// sizes). The fabric is single-threaded, so ordered registry
	// operations are safe everywhere.
	obs *obs.Registry
	// nFlowIdx / nMcastIdx track the total entry counts of the
	// crossing indexes so their peaks export without a full scan.
	nFlowIdx  int
	nMcastIdx int
}

// SetObserver attaches a metrics registry to the fabric (nil detaches).
func (f *Fabric) SetObserver(r *obs.Registry) { f.obs = r }

// New builds a fabric over the network's selected links (nil = all).
func New(p *topo.POCNetwork, selected map[int]bool) *Fabric {
	sel := linkset.FromMap(selected, len(p.Links))
	f := &Fabric{
		net:      p,
		selected: sel,
		failed:   linkset.New(len(p.Links)),
		epByName: map[string]EndpointID{},
		used:     make([]float64, len(p.Links)),
		resid:    make([]float64, len(p.Links)),
		flowsOn:  make([][]int32, len(p.Links)),
		mcastsOn: make([][]int32, len(p.Links)),
		linkMark: make([]uint32, len(p.Links)),
	}
	f.g, f.edgeFor = p.Graph(sel)
	if f.selected == nil {
		f.selected = linkset.All(len(p.Links))
	}
	f.linkFor = make([]int32, f.g.NumEdges())
	for id, pair := range f.edgeFor {
		if pair[0] == graph.Undefined {
			continue
		}
		f.linkFor[pair[0]] = int32(id)
		f.linkFor[pair[1]] = int32(id)
		f.resid[id] = p.Links[id].Capacity
	}
	f.pr = graph.NewPointRouter(f.g)
	f.wantFilter = func(id graph.EdgeID, e *graph.Edge) bool {
		l := int(f.linkFor[id])
		if f.failed.Contains(l) {
			return false
		}
		return f.resid[l] >= f.want
	}
	return f
}

// Attach registers an endpoint at the given POC router and returns
// its ID.
func (f *Fabric) Attach(name string, kind EndpointKind, router int) (EndpointID, error) {
	if router < 0 || router >= len(f.net.Routers) {
		return 0, fmt.Errorf("netsim: router %d out of range", router)
	}
	if _, dup := f.epByName[name]; dup {
		return 0, fmt.Errorf("netsim: endpoint %q already attached", name)
	}
	id := EndpointID(len(f.endpoints))
	f.endpoints = append(f.endpoints, Endpoint{ID: id, Name: name, Kind: kind, Router: router})
	f.shards = append(f.shards, shard{})
	f.epByName[name] = id
	return id, nil
}

// Endpoint returns a registered endpoint.
func (f *Fabric) Endpoint(id EndpointID) (Endpoint, error) {
	if id < 0 || int(id) >= len(f.endpoints) {
		return Endpoint{}, fmt.Errorf("netsim: unknown endpoint %d", id)
	}
	return f.endpoints[id], nil
}

// Endpoints returns all attachments in ID order.
func (f *Fabric) Endpoints() []Endpoint {
	return append([]Endpoint(nil), f.endpoints...)
}

// usable reports whether a logical link can carry more traffic. The
// returned filter is the fabric's shared bound filter, parameterized
// by f.want — valid until the next usable or findPath call.
func (f *Fabric) usable(want float64) graph.EdgeFilter {
	f.want = want
	return f.wantFilter
}

// findPath returns the cheapest path able to carry the full demand,
// falling back to the cheapest path with any spare capacity at all
// (the flow is then admitted degraded at the bottleneck). Demand-aware
// placement is what makes repair meaningful: after a link comes back,
// a degraded flow prefers a slightly longer path that restores its
// full allocation over the short one that cannot.
//
// The returned edge slice is the fabric's scratch buffer: it is valid
// only until the next findPath call.
func (f *Fabric) findPath(a, b int, demand float64) ([]graph.EdgeID, float64) {
	f.want = demand
	edges, cost := f.pr.PathInto(f.edgeBuf[:0], graph.NodeID(a), graph.NodeID(b), f.wantFilter)
	if math.IsInf(cost, 1) {
		f.want = 1e-9
		edges, cost = f.pr.PathInto(f.edgeBuf[:0], graph.NodeID(a), graph.NodeID(b), f.wantFilter)
	}
	f.edgeBuf = edges
	return edges, cost
}

// nextMark advances the epoch stamp used by bulk operations for O(1)
// set membership over slots and links. On the (astronomically rare)
// wraparound the stamp arrays are cleared so stale marks cannot
// collide.
func (f *Fabric) nextMark() uint32 {
	f.markCur++
	if f.markCur == 0 {
		for i := range f.tab.mark {
			f.tab.mark[i] = 0
		}
		for i := range f.linkMark {
			f.linkMark[i] = 0
		}
		f.markCur = 1
	}
	return f.markCur
}

// setUsed writes a link's allocation sum, keeps the residual in
// lockstep, and samples the utilization peak exactly where a full
// recompute would have.
func (f *Fabric) setUsed(l int, used float64) {
	f.used[l] = used
	f.resid[l] = f.net.Links[l].Capacity - used
	if f.obs != nil && used > 0 {
		f.obs.KeyedMax("netsim.link_peak_util", l, used/f.net.Links[l].Capacity)
	}
}

// resum rebuilds one link's allocation sum from first principles:
// flows in admission order, then multicasts in ID order — the same
// deterministic left-to-right float sum a full scan of a sorted flow
// map would produce. Keeping residuals as exact ordered sums (instead
// of adding and subtracting float deltas) means fail → repair → fail
// cycles conserve capacity bit for bit over arbitrarily long
// simulations: a link whose last reservation is released reads
// exactly Capacity again, with no accumulated rounding drift.
func (f *Fabric) resum(l int) {
	used := 0.0
	for _, s := range f.flowsOn[l] {
		used += f.tab.alloc[s]
	}
	for _, id := range f.mcastsOn[l] {
		used += f.mcasts[MulticastID(id)].Gbps
	}
	f.setUsed(l, used)
}

// recompute resums the given logical links. The packed crossing
// indexes keep this cheap: only the flows actually on a touched link
// are summed, already in deterministic admission order.
func (f *Fabric) recompute(links []int) {
	for _, l := range links {
		f.resum(l)
	}
}

// addUsed credits a fresh reservation on a link. The increment equals
// a full resum by induction — the link's flow list only ever grows at
// the tail between resums — but only while no multicast holds the
// link: multicast rates sum after all flow allocations, so a tail
// append under a multicast must fall back to the full ordered resum
// to keep the float sum's association order exact.
func (f *Fabric) addUsed(l int, alloc float64) {
	if len(f.mcastsOn[l]) == 0 {
		f.setUsed(l, f.used[l]+alloc)
	} else {
		f.resum(l)
	}
}

// setAlloc writes a flow's allocation and maintains its source
// shard's degraded registry: membership is exactly "allocated below
// demand", the repair pass's victim predicate.
func (f *Fabric) setAlloc(s int32, alloc float64) {
	t := &f.tab
	t.alloc[s] = alloc
	deg := alloc < t.demand[s]-1e-9
	if pos := t.degPos[s]; deg && pos < 0 {
		sh := &f.shards[t.src[s]]
		t.degPos[s] = int32(len(sh.degraded))
		sh.degraded = append(sh.degraded, s)
	} else if !deg && pos >= 0 {
		f.clearDegraded(s)
	}
}

// clearDegraded removes a slot from its shard's degraded registry
// (swap-delete; the registry is order-free, victims are re-sorted at
// gather time).
func (f *Fabric) clearDegraded(s int32) {
	t := &f.tab
	pos := t.degPos[s]
	if pos < 0 {
		return
	}
	sh := &f.shards[t.src[s]]
	last := sh.degraded[len(sh.degraded)-1]
	sh.degraded[pos] = last
	t.degPos[last] = pos
	sh.degraded = sh.degraded[:len(sh.degraded)-1]
	t.degPos[s] = -1
}

// crossInsert adds a slot to a link's packed crossing index, keeping
// it in ascending admission order. A freshly admitted flow carries
// the globally largest seq and appends in O(1); a re-placed flow
// (which kept its original seq) binary-searches its position.
func (f *Fabric) crossInsert(l int, s int32) {
	list := f.flowsOn[l]
	seq := f.tab.seq[s]
	if n := len(list); n == 0 || f.tab.seq[list[n-1]] < seq {
		f.flowsOn[l] = append(list, s)
		return
	}
	i := sort.Search(len(list), func(k int) bool { return f.tab.seq[list[k]] > seq })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = s
	f.flowsOn[l] = list
}

// crossRemove deletes a slot from a link's packed crossing index by
// binary search on its admission seq.
func (f *Fabric) crossRemove(l int, s int32) {
	list := f.flowsOn[l]
	seq := f.tab.seq[s]
	i := sort.Search(len(list), func(k int) bool { return f.tab.seq[list[k]] >= seq })
	f.flowsOn[l] = append(list[:i], list[i+1:]...)
}

// indexFlow records a flow's reservation on each link of its path.
func (f *Fabric) indexFlow(s int32) {
	links := f.tab.path(s)
	for _, l := range links {
		f.crossInsert(int(l), s)
	}
	f.nFlowIdx += len(links)
	f.obs.SetMax("netsim.crossing.flow_entries_peak", float64(f.nFlowIdx))
}

// unindexFlow removes a flow's reservation from each link of its path.
func (f *Fabric) unindexFlow(s int32) {
	links := f.tab.path(s)
	for _, l := range links {
		f.crossRemove(int(l), s)
	}
	f.nFlowIdx -= len(links)
}

// indexMcast records a multicast tree's reservation on each tree
// link. Multicast IDs never recycle, so a new tree always appends at
// the tail of each link's (ascending) index.
func (f *Fabric) indexMcast(m *Multicast) {
	for _, l := range m.TreeLinks {
		f.mcastsOn[l] = append(f.mcastsOn[l], int32(m.ID))
	}
	f.nMcastIdx += len(m.TreeLinks)
	f.obs.SetMax("netsim.crossing.mcast_entries_peak", float64(f.nMcastIdx))
}

// unindexMcast removes a multicast tree's reservation from each link.
func (f *Fabric) unindexMcast(m *Multicast) {
	for _, l := range m.TreeLinks {
		list := f.mcastsOn[l]
		i := sort.Search(len(list), func(k int) bool { return list[k] >= int32(m.ID) })
		f.mcastsOn[l] = append(list[:i], list[i+1:]...)
	}
	f.nMcastIdx -= len(m.TreeLinks)
}

// StartFlow admits an aggregate flow between two endpoints. The flow
// reserves min(demand, bottleneck) Gbps along the cheapest usable
// path; a flow that can reserve nothing is rejected. The class must
// have Weight >= 1 (use BestEffort for the default). The returned
// Flow is a snapshot taken at admission.
func (f *Fabric) StartFlow(src, dst EndpointID, demandGbps float64, class Class) (*Flow, error) {
	s, err := f.startOne(src, dst, demandGbps, class)
	if err != nil {
		return nil, err
	}
	fl := f.snapshot(s)
	return &fl, nil
}

// startOne is the allocation-lean admission core shared by StartFlow
// and StartFlows; it returns the admitted flow's table slot.
func (f *Fabric) startOne(src, dst EndpointID, demandGbps float64, class Class) (int32, error) {
	se, err := f.Endpoint(src)
	if err != nil {
		return -1, err
	}
	de, err := f.Endpoint(dst)
	if err != nil {
		return -1, err
	}
	if demandGbps <= 0 || math.IsNaN(demandGbps) || math.IsInf(demandGbps, 0) {
		return -1, fmt.Errorf("netsim: invalid demand %v", demandGbps)
	}
	if class.Weight < 1 || math.IsNaN(class.Weight) {
		return -1, fmt.Errorf("netsim: class weight %v < 1", class.Weight)
	}
	if se.Router == de.Router {
		// Same attachment site: the fabric carries it for free (local
		// cross-connect); no links reserved.
		s := f.tab.admit(src, dst, demandGbps, f.tab.internClass(class))
		f.setAlloc(s, demandGbps)
		f.obs.Add("netsim.flows.admitted", 1)
		f.obs.Add("netsim.flows.local", 1)
		return s, nil
	}
	edges, cost := f.findPath(se.Router, de.Router, demandGbps)
	if math.IsInf(cost, 1) {
		f.obs.Add("netsim.flows.rejected", 1)
		return -1, fmt.Errorf("netsim: no usable path %s→%s", se.Name, de.Name)
	}
	t := &f.tab
	start := len(t.arena.data)
	alloc := demandGbps
	lat := 0.0
	for _, eid := range edges {
		l := int(f.linkFor[eid])
		t.arena.data = append(t.arena.data, int32(l))
		lat += f.net.Links[l].DistanceKm
		if f.resid[l] < alloc {
			alloc = f.resid[l]
		}
	}
	if alloc <= 1e-9 {
		t.arena.data = t.arena.data[:start]
		f.obs.Add("netsim.flows.rejected", 1)
		return -1, fmt.Errorf("netsim: no capacity on path %s→%s", se.Name, de.Name)
	}
	s := t.admit(src, dst, demandGbps, t.internClass(class))
	t.commitPath(s, start)
	f.setAlloc(s, alloc)
	t.latency[s] = lat
	f.indexFlow(s)
	for _, l := range t.path(s) {
		f.addUsed(int(l), alloc)
	}
	f.obs.Add("netsim.flows.admitted", 1)
	return s, nil
}

// FlowSpec is one admission request for the bulk entry points.
type FlowSpec struct {
	Src, Dst EndpointID
	Demand   float64
	Class    Class
}

// StartFlows admits a batch of flows in spec order, exactly as a
// sequence of StartFlow calls would (each admission sees the
// residuals left by the previous one) but without materializing a
// snapshot per flow. The returned slice has one entry per spec: the
// admitted flow's ID, or -1 where admission failed (invalid spec, no
// usable path, or no capacity).
func (f *Fabric) StartFlows(specs []FlowSpec) []FlowID {
	f.tab.compactArena()
	ids := make([]FlowID, len(specs))
	for i := range specs {
		sp := &specs[i]
		s, err := f.startOne(sp.Src, sp.Dst, sp.Demand, sp.Class)
		if err != nil {
			ids[i] = -1
			continue
		}
		ids[i] = f.tab.id(s)
	}
	return ids
}

// StopFlow releases a flow's reservation.
func (f *Fabric) StopFlow(id FlowID) error {
	s, ok := f.tab.lookup(id)
	if !ok {
		return fmt.Errorf("netsim: unknown flow %d", id)
	}
	f.stopSlot(s)
	f.tab.compactArena()
	f.obs.Add("netsim.flows.stopped", 1)
	return nil
}

// stopSlot tears down one live flow: unindex, resum its links, free
// its path span and recycle the slot.
func (f *Fabric) stopSlot(s int32) {
	t := &f.tab
	links := t.path(s)
	for _, l := range links {
		f.crossRemove(int(l), s)
	}
	f.nFlowIdx -= len(links)
	for _, l := range links {
		f.resum(int(l))
	}
	f.clearDegraded(s)
	t.freePath(s)
	t.release(s)
}

// StopFlows releases a batch of flows and returns how many were
// stopped. Unknown (already stopped or never admitted) IDs are
// skipped — a bulk teardown is idempotent where the single-flow call
// is strict. Each touched link's crossing index is rewritten in one
// filter pass and resummed once, instead of once per stopped flow.
func (f *Fabric) StopFlows(ids []FlowID) int {
	t := &f.tab
	mark := f.nextMark()
	stopping := f.slotsBuf[:0]
	touched := f.touchedBuf[:0]
	for _, id := range ids {
		s, ok := t.lookup(id)
		if !ok || t.mark[s] == mark {
			continue
		}
		t.mark[s] = mark
		stopping = append(stopping, s)
		for _, l := range t.path(s) {
			if f.linkMark[l] != mark {
				f.linkMark[l] = mark
				touched = append(touched, l)
			}
		}
	}
	for _, l := range touched {
		list := f.flowsOn[l]
		out := list[:0]
		for _, s := range list {
			if t.mark[s] != mark {
				out = append(out, s)
			} else {
				f.nFlowIdx--
			}
		}
		f.flowsOn[l] = out
	}
	for _, s := range stopping {
		f.clearDegraded(s)
		t.freePath(s)
		t.release(s)
	}
	for _, l := range touched {
		f.resum(int(l))
	}
	f.slotsBuf, f.touchedBuf = stopping[:0], touched[:0]
	t.compactArena()
	if len(stopping) > 0 {
		f.obs.Add("netsim.flows.stopped", int64(len(stopping)))
	}
	return len(stopping)
}

// snapshot materializes a Flow view of a live slot with a fresh Links
// slice.
func (f *Fabric) snapshot(s int32) Flow {
	t := &f.tab
	fl := Flow{
		ID:            t.id(s),
		Seq:           t.seq[s],
		Src:           t.src[s],
		Dst:           t.dst[s],
		Demand:        t.demand[s],
		Allocated:     t.alloc[s],
		Class:         t.classes[t.classID[s]],
		LatencyKm:     t.latency[s],
		TransferredGB: t.transferred[s],
	}
	if n := t.pathLen[s]; n > 0 {
		links := make([]int, n)
		for i, l := range t.path(s) {
			links[i] = int(l)
		}
		fl.Links = links
	}
	return fl
}

// Flow returns a snapshot of an admitted flow.
func (f *Fabric) Flow(id FlowID) (Flow, error) {
	s, ok := f.tab.lookup(id)
	if !ok {
		return Flow{}, fmt.Errorf("netsim: unknown flow %d", id)
	}
	return f.snapshot(s), nil
}

// Flows returns snapshots of all admitted flows in admission order.
// All snapshots' Links share one backing array sized exactly for the
// live population.
func (f *Fabric) Flows() []Flow {
	t := &f.tab
	out := make([]Flow, 0, t.live)
	backing := make([]int, 0, t.arena.liveLinks)
	t.rangeLive(func(s int32) bool {
		fl := Flow{
			ID:            t.id(s),
			Seq:           t.seq[s],
			Src:           t.src[s],
			Dst:           t.dst[s],
			Demand:        t.demand[s],
			Allocated:     t.alloc[s],
			Class:         t.classes[t.classID[s]],
			LatencyKm:     t.latency[s],
			TransferredGB: t.transferred[s],
		}
		if n := t.pathLen[s]; n > 0 {
			start := len(backing)
			for _, l := range t.path(s) {
				backing = append(backing, int(l))
			}
			fl.Links = backing[start:len(backing):len(backing)]
		}
		out = append(out, fl)
		return true
	})
	return out
}

// RangeFlows calls fn for every admitted flow in admission order
// without materializing the population: the *Flow argument (including
// its Links slice) is reused between calls and valid only during the
// callback. Return false to stop early. This is the allocation-free
// alternative to Flows for hot read paths.
func (f *Fabric) RangeFlows(fn func(*Flow) bool) {
	t := &f.tab
	var fl Flow
	var linkBuf []int
	t.rangeLive(func(s int32) bool {
		fl = Flow{
			ID:            t.id(s),
			Seq:           t.seq[s],
			Src:           t.src[s],
			Dst:           t.dst[s],
			Demand:        t.demand[s],
			Allocated:     t.alloc[s],
			Class:         t.classes[t.classID[s]],
			LatencyKm:     t.latency[s],
			TransferredGB: t.transferred[s],
		}
		if n := t.pathLen[s]; n > 0 {
			linkBuf = linkBuf[:0]
			for _, l := range t.path(s) {
				linkBuf = append(linkBuf, int(l))
			}
			fl.Links = linkBuf
		}
		return fn(&fl)
	})
}

// NumFlows returns the number of currently admitted flows.
func (f *Fabric) NumFlows() int { return f.tab.live }

// FailLink marks a logical link failed and re-routes the flows that
// crossed it, in descending class-weight order (higher classes get
// first claim on the surviving capacity — an open, posted-price
// property, not a per-source preference). Flows that cannot be
// re-routed are degraded to zero allocation but stay registered so
// the caller can observe the outage; RepairLink re-admits them.
func (f *Fabric) FailLink(link int) []FlowID {
	return f.FailLinks([]int{link})
}

// FailLinks fails a set of links atomically (one reroute pass after
// all are marked down — a correlated fiber cut, not a sequence of
// independent cuts). Out-of-range, already-failed, and unselected
// entries are skipped — a link the fabric never leased has no
// reservation to fail and must not appear in FailedLinks; nil is
// returned when nothing newly failed.
func (f *Fabric) FailLinks(links []int) []FlowID {
	newly := f.touchedBuf[:0]
	count := 0
	for _, link := range links {
		if link < 0 || link >= len(f.net.Links) || f.failed.Contains(link) {
			continue
		}
		if !f.selected.Contains(link) {
			continue
		}
		f.failed.Add(link)
		newly = append(newly, int32(link))
		count++
	}
	f.touchedBuf = newly[:0]
	if count == 0 {
		return nil
	}
	f.obs.Add("netsim.links.failed", int64(count))
	// Victims are exactly the flows crossing a newly failed link: read
	// them off the crossing indexes (with an epoch stamp de-duping
	// flows that crossed several of the cut links) instead of scanning
	// the whole population.
	t := &f.tab
	mark := f.nextMark()
	victims := f.victimBuf[:0]
	for _, l := range newly {
		for _, s := range f.flowsOn[l] {
			if t.mark[s] != mark {
				t.mark[s] = mark
				victims = append(victims, s)
			}
		}
	}
	return f.rerouteSlots(victims)
}

// RepairLink clears a failure and re-upgrades previously degraded or
// dropped flows: every flow below its demand is released and re-placed
// in descending class-weight order (then admission order), so repaired
// capacity flows back to the highest classes first, deterministically.
func (f *Fabric) RepairLink(link int) []FlowID {
	return f.RepairLinks([]int{link})
}

// RepairLinks repairs a set of links atomically with a single
// re-upgrade pass. Entries that are not failed are skipped; nil is
// returned when nothing was repaired.
func (f *Fabric) RepairLinks(links []int) []FlowID {
	repaired := 0
	for _, link := range links {
		if link < 0 || link >= len(f.net.Links) || !f.failed.Contains(link) {
			continue
		}
		f.failed.Remove(link)
		repaired++
	}
	if repaired == 0 {
		return nil
	}
	f.obs.Add("netsim.links.repaired", int64(repaired))
	// Victims are exactly the below-demand flows, which the shards'
	// degraded registries hold by construction — no table scan. The
	// gather order is irrelevant: rerouteSlots re-sorts by (class
	// weight, admission seq).
	victims := f.victimBuf[:0]
	for i := range f.shards {
		victims = append(victims, f.shards[i].degraded...)
	}
	return f.rerouteSlots(victims)
}

// RestoreLink is RepairLink under its historical name.
func (f *Fabric) RestoreLink(link int) []FlowID { return f.RepairLink(link) }

// linksOfBP returns the fabric's selected links owned by bp, in ID
// order. Virtual links (topo.VirtualBP) are addressed with bp = -1.
func (f *Fabric) linksOfBP(bp int) []int {
	var out []int
	for id := range f.net.Links {
		if f.net.Links[id].BP != bp {
			continue
		}
		if !f.selected.Contains(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// FailBP takes down every selected link leased from one BP at once —
// the paper's Constraint-#2 planning case ("any single BP failure")
// realized on the running fabric. Flows are rerouted in one pass.
func (f *Fabric) FailBP(bp int) []FlowID {
	return f.FailLinks(f.linksOfBP(bp))
}

// RepairBP restores every failed link of one BP and re-upgrades
// degraded flows in one pass.
func (f *Fabric) RepairBP(bp int) []FlowID {
	return f.RepairLinks(f.linksOfBP(bp))
}

// LinkFailed reports whether a link is currently marked failed.
func (f *Fabric) LinkFailed(link int) bool { return f.failed.Contains(link) }

// LinkSelected reports whether a link is part of the fabric's
// selected (leased) link set.
func (f *Fabric) LinkSelected(link int) bool { return f.selected.Contains(link) }

// FailedLinks returns the currently failed link IDs, sorted
// (bitset iteration is ascending).
func (f *Fabric) FailedLinks() []int {
	return f.failed.AppendIDs(make([]int, 0, f.failed.Len()))
}

// SelectedLinks returns the fabric's selected link IDs, sorted
// (bitset iteration is ascending).
func (f *Fabric) SelectedLinks() []int {
	return f.selected.AppendIDs(make([]int, 0, f.selected.Len()))
}

// rerouteSlots releases and re-places the given flows in descending
// class-weight order (ties broken by admission order). It returns the
// IDs of all re-placed flows (their path, allocation, or both may
// have changed), in ascending ID order.
func (f *Fabric) rerouteSlots(victims []int32) []FlowID {
	f.victimBuf = victims[:0]
	if len(victims) == 0 {
		return nil
	}
	t := &f.tab
	sort.Slice(victims, func(i, j int) bool {
		wi := t.classes[t.classID[victims[i]]].Weight
		wj := t.classes[t.classID[victims[j]]].Weight
		if wi != wj {
			return wi > wj
		}
		return t.seq[victims[i]] < t.seq[victims[j]]
	})
	changed := make([]FlowID, 0, len(victims))
	for _, s := range victims {
		changed = append(changed, t.id(s))
		// Release.
		released := t.path(s)
		for _, l := range released {
			f.crossRemove(int(l), s)
		}
		f.nFlowIdx -= len(released)
		for _, l := range released {
			f.resum(int(l))
		}
		t.freePath(s)
		f.setAlloc(s, 0)
		t.latency[s] = 0
		// Re-place.
		se := f.endpoints[t.src[s]]
		de := f.endpoints[t.dst[s]]
		if se.Router == de.Router {
			f.setAlloc(s, t.demand[s])
			continue
		}
		edges, cost := f.findPath(se.Router, de.Router, t.demand[s])
		if math.IsInf(cost, 1) {
			continue
		}
		start := len(t.arena.data)
		alloc := t.demand[s]
		lat := 0.0
		for _, eid := range edges {
			l := int(f.linkFor[eid])
			t.arena.data = append(t.arena.data, int32(l))
			lat += f.net.Links[l].DistanceKm
			if f.resid[l] < alloc {
				alloc = f.resid[l]
			}
		}
		if alloc <= 1e-9 {
			t.arena.data = t.arena.data[:start]
			continue
		}
		t.commitPath(s, start)
		f.setAlloc(s, alloc)
		t.latency[s] = lat
		f.indexFlow(s)
		for _, l := range t.path(s) {
			f.resum(int(l))
		}
	}
	if f.obs != nil {
		var full, degraded, dropped int
		for _, s := range victims {
			switch {
			case t.alloc[s] >= t.demand[s]-1e-9:
				full++
			case t.alloc[s] > 1e-9:
				degraded++
			default:
				dropped++
			}
		}
		f.obs.Add("netsim.reroutes.flows", int64(len(victims)))
		f.obs.Add("netsim.reroutes.full", int64(full))
		f.obs.Add("netsim.reroutes.degraded", int64(degraded))
		f.obs.Add("netsim.reroutes.dropped", int64(dropped))
	}
	t.compactArena()
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	return changed
}

// Tick advances simulated time, accumulating transferred volume:
// allocated Gbps × seconds / 8 = GB. Invalid durations are an error,
// never a panic — a long-running simulation must survive bad input.
func (f *Fabric) Tick(seconds float64) error {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return fmt.Errorf("netsim: invalid tick duration %v", seconds)
	}
	t := &f.tab
	t.rangeLive(func(s int32) bool {
		t.transferred[s] += t.alloc[s] * seconds / 8
		return true
	})
	return nil
}

// UsageByEndpoint returns each endpoint's total transferred GB,
// counting a flow's volume against both its source and destination
// (both sides' providers carry it, matching the paper's "paying for
// all traffic carried from and to them").
func (f *Fabric) UsageByEndpoint() map[EndpointID]float64 {
	// Admission order: the per-endpoint totals are float
	// accumulations, and any other order would shift them at ULP
	// scale run to run.
	t := &f.tab
	out := make(map[EndpointID]float64, len(f.endpoints))
	t.rangeLive(func(s int32) bool {
		out[t.src[s]] += t.transferred[s]
		out[t.dst[s]] += t.transferred[s]
		return true
	})
	return out
}

// Utilization returns used/capacity for every selected link with
// non-zero use.
func (f *Fabric) Utilization() map[int]float64 {
	out := make(map[int]float64, f.selected.Len())
	f.selected.Iterate(func(id int) {
		cap := f.net.Links[id].Capacity
		used := cap - f.resid[id]
		if used > 1e-9 {
			out[id] = used / cap
		}
	})
	return out
}
