// Package netsim is a flow-level simulator of the POC fabric. It
// models the connectivity structure of the paper's Figure 1:
// customers sit behind last-mile providers (LMPs); LMPs — and large
// CSPs directly — attach to the POC at router sites; the POC carries
// flows edge-to-edge over the auctioned link set as a transparent,
// policy-free fabric; anything not on the POC is reached through an
// external ISP attachment.
//
// Flows reserve bandwidth on admission (min of demand and bottleneck
// residual along the cheapest feasible path), are re-routed on link
// failure, and accumulate transferred volume via Tick so the market
// package can bill usage. QoS classes are open and posted-price:
// a higher class buys a larger sharing weight, never a per-source
// preference — the fabric has no notion of favored endpoints.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/topo"
)

// EndpointKind classifies fabric attachments.
type EndpointKind int

const (
	// LMPEndpoint is a last-mile provider attachment.
	LMPEndpoint EndpointKind = iota
	// CSPEndpoint is a directly-attached content/service provider.
	CSPEndpoint
	// ExternalEndpoint represents the rest of the Internet behind an
	// external ISP attachment.
	ExternalEndpoint
)

func (k EndpointKind) String() string {
	switch k {
	case LMPEndpoint:
		return "LMP"
	case CSPEndpoint:
		return "CSP"
	case ExternalEndpoint:
		return "external"
	default:
		return fmt.Sprintf("EndpointKind(%d)", int(k))
	}
}

// EndpointID identifies an attachment.
type EndpointID int

// Endpoint is one attachment to the fabric.
type Endpoint struct {
	ID     EndpointID
	Name   string
	Kind   EndpointKind
	Router int // POC router index
}

// Class is a posted-price QoS class. Weight scales the flow's claim
// during contention; the price is what the POC publishes. Classes
// apply uniformly to any buyer — the fabric cannot express per-source
// preferences.
type Class struct {
	Name   string
	Weight float64 // >= 1
	Price  float64 // posted, per Gbps-month
}

// BestEffort is the default class.
var BestEffort = Class{Name: "best-effort", Weight: 1, Price: 0}

// FlowID identifies an admitted flow.
type FlowID int

// Flow is one admitted aggregate flow.
type Flow struct {
	ID        FlowID
	Src, Dst  EndpointID
	Demand    float64 // requested Gbps
	Allocated float64 // reserved Gbps (≤ Demand)
	Class     Class
	Links     []int   // logical links along the path
	LatencyKm float64 // propagation distance of the path
	// TransferredGB accumulates volume via Tick.
	TransferredGB float64
}

// Fabric is the POC data plane over a selected link set.
type Fabric struct {
	net      *topo.POCNetwork
	selected *linkset.Set // always materialized (nil input = all links)
	failed   *linkset.Set

	endpoints []Endpoint
	flows     map[FlowID]*Flow
	nextFlow  FlowID
	mcasts    map[MulticastID]*Multicast
	nextMcast int
	anycast   map[string][]EndpointID
	resid     []float64 // remaining Gbps per logical link

	// Per-link crossing indexes: which flows / multicast trees hold a
	// reservation on each logical link. recompute reads these instead
	// of scanning every flow, so a reroute pass costs O(path × flows
	// on the touched links) rather than O(path × all flows).
	flowsOn  map[int]map[FlowID]struct{}
	mcastsOn map[int]map[MulticastID]struct{}

	g       *graph.Graph
	pr      *graph.PointRouter
	linkFor []int32
	edgeFor map[int][2]graph.EdgeID

	// obs, when non-nil, receives fabric metrics (flow admission and
	// reroute outcomes, per-link peak utilization, crossing-index
	// sizes). The fabric is single-threaded, so ordered registry
	// operations are safe everywhere.
	obs *obs.Registry
	// nFlowIdx / nMcastIdx track the total entry counts of the
	// crossing indexes so their peaks export without a full scan.
	nFlowIdx  int
	nMcastIdx int
}

// SetObserver attaches a metrics registry to the fabric (nil detaches).
func (f *Fabric) SetObserver(r *obs.Registry) { f.obs = r }

// New builds a fabric over the network's selected links (nil = all).
func New(p *topo.POCNetwork, selected map[int]bool) *Fabric {
	sel := linkset.FromMap(selected, len(p.Links))
	f := &Fabric{
		net:      p,
		selected: sel,
		failed:   linkset.New(len(p.Links)),
		flows:    map[FlowID]*Flow{},
		resid:    make([]float64, len(p.Links)),
		flowsOn:  map[int]map[FlowID]struct{}{},
		mcastsOn: map[int]map[MulticastID]struct{}{},
	}
	f.g, f.edgeFor = p.Graph(sel)
	if f.selected == nil {
		f.selected = linkset.All(len(p.Links))
	}
	f.linkFor = make([]int32, f.g.NumEdges())
	for id, pair := range f.edgeFor {
		f.linkFor[pair[0]] = int32(id)
		f.linkFor[pair[1]] = int32(id)
		f.resid[id] = p.Links[id].Capacity
	}
	f.pr = graph.NewPointRouter(f.g)
	return f
}

// Attach registers an endpoint at the given POC router and returns
// its ID.
func (f *Fabric) Attach(name string, kind EndpointKind, router int) (EndpointID, error) {
	if router < 0 || router >= len(f.net.Routers) {
		return 0, fmt.Errorf("netsim: router %d out of range", router)
	}
	for _, e := range f.endpoints {
		if e.Name == name {
			return 0, fmt.Errorf("netsim: endpoint %q already attached", name)
		}
	}
	id := EndpointID(len(f.endpoints))
	f.endpoints = append(f.endpoints, Endpoint{ID: id, Name: name, Kind: kind, Router: router})
	return id, nil
}

// Endpoint returns a registered endpoint.
func (f *Fabric) Endpoint(id EndpointID) (Endpoint, error) {
	if id < 0 || int(id) >= len(f.endpoints) {
		return Endpoint{}, fmt.Errorf("netsim: unknown endpoint %d", id)
	}
	return f.endpoints[id], nil
}

// Endpoints returns all attachments in ID order.
func (f *Fabric) Endpoints() []Endpoint {
	return append([]Endpoint(nil), f.endpoints...)
}

// usable reports whether a logical link can carry more traffic.
func (f *Fabric) usable(want float64) graph.EdgeFilter {
	return func(id graph.EdgeID, e *graph.Edge) bool {
		l := int(f.linkFor[id])
		if f.failed.Contains(l) {
			return false
		}
		return f.resid[l] >= want
	}
}

// findPath returns the cheapest path able to carry the full demand,
// falling back to the cheapest path with any spare capacity at all
// (the flow is then admitted degraded at the bottleneck). Demand-aware
// placement is what makes repair meaningful: after a link comes back,
// a degraded flow prefers a slightly longer path that restores its
// full allocation over the short one that cannot.
func (f *Fabric) findPath(a, b int, demand float64) graph.Path {
	path := f.pr.Path(graph.NodeID(a), graph.NodeID(b), f.usable(demand))
	if math.IsInf(path.Cost, 1) {
		path = f.pr.Path(graph.NodeID(a), graph.NodeID(b), f.usable(1e-9))
	}
	return path
}

// StartFlow admits an aggregate flow between two endpoints. The flow
// reserves min(demand, bottleneck) Gbps along the cheapest usable
// path; a flow that can reserve nothing is rejected. The class must
// have Weight >= 1 (use BestEffort for the default).
func (f *Fabric) StartFlow(src, dst EndpointID, demandGbps float64, class Class) (*Flow, error) {
	se, err := f.Endpoint(src)
	if err != nil {
		return nil, err
	}
	de, err := f.Endpoint(dst)
	if err != nil {
		return nil, err
	}
	if demandGbps <= 0 || math.IsNaN(demandGbps) || math.IsInf(demandGbps, 0) {
		return nil, fmt.Errorf("netsim: invalid demand %v", demandGbps)
	}
	if class.Weight < 1 || math.IsNaN(class.Weight) {
		return nil, fmt.Errorf("netsim: class weight %v < 1", class.Weight)
	}
	if se.Router == de.Router {
		// Same attachment site: the fabric carries it for free (local
		// cross-connect); no links reserved.
		fl := &Flow{ID: f.nextFlow, Src: src, Dst: dst, Demand: demandGbps,
			Allocated: demandGbps, Class: class}
		f.nextFlow++
		f.flows[fl.ID] = fl
		f.obs.Add("netsim.flows.admitted", 1)
		f.obs.Add("netsim.flows.local", 1)
		return fl, nil
	}
	path := f.findPath(se.Router, de.Router, demandGbps)
	if math.IsInf(path.Cost, 1) {
		f.obs.Add("netsim.flows.rejected", 1)
		return nil, fmt.Errorf("netsim: no usable path %s→%s", se.Name, de.Name)
	}
	alloc := demandGbps
	links := make([]int, len(path.Edges))
	lat := 0.0
	for i, eid := range path.Edges {
		l := int(f.linkFor[eid])
		links[i] = l
		lat += f.net.Links[l].DistanceKm
		if f.resid[l] < alloc {
			alloc = f.resid[l]
		}
	}
	if alloc <= 1e-9 {
		f.obs.Add("netsim.flows.rejected", 1)
		return nil, fmt.Errorf("netsim: no capacity on path %s→%s", se.Name, de.Name)
	}
	fl := &Flow{ID: f.nextFlow, Src: src, Dst: dst, Demand: demandGbps,
		Allocated: alloc, Class: class, Links: links, LatencyKm: lat}
	f.nextFlow++
	f.flows[fl.ID] = fl
	f.indexFlow(fl)
	f.recompute(links)
	f.obs.Add("netsim.flows.admitted", 1)
	return fl, nil
}

// StopFlow releases a flow's reservation.
func (f *Fabric) StopFlow(id FlowID) error {
	fl, ok := f.flows[id]
	if !ok {
		return fmt.Errorf("netsim: unknown flow %d", id)
	}
	links := fl.Links
	f.unindexFlow(fl)
	delete(f.flows, id)
	f.recompute(links)
	f.obs.Add("netsim.flows.stopped", 1)
	return nil
}

// indexFlow records a flow's reservation on each link of its path.
func (f *Fabric) indexFlow(fl *Flow) {
	for _, l := range fl.Links {
		set := f.flowsOn[l]
		if set == nil {
			set = map[FlowID]struct{}{}
			f.flowsOn[l] = set
		}
		set[fl.ID] = struct{}{}
	}
	f.nFlowIdx += len(fl.Links)
	f.obs.SetMax("netsim.crossing.flow_entries_peak", float64(f.nFlowIdx))
}

// unindexFlow removes a flow's reservation from each link of its path.
func (f *Fabric) unindexFlow(fl *Flow) {
	for _, l := range fl.Links {
		delete(f.flowsOn[l], fl.ID)
	}
	f.nFlowIdx -= len(fl.Links)
}

// indexMcast records a multicast tree's reservation on each tree link.
func (f *Fabric) indexMcast(m *Multicast) {
	for _, l := range m.TreeLinks {
		set := f.mcastsOn[l]
		if set == nil {
			set = map[MulticastID]struct{}{}
			f.mcastsOn[l] = set
		}
		set[m.ID] = struct{}{}
	}
	f.nMcastIdx += len(m.TreeLinks)
	f.obs.SetMax("netsim.crossing.mcast_entries_peak", float64(f.nMcastIdx))
}

// unindexMcast removes a multicast tree's reservation from each link.
func (f *Fabric) unindexMcast(m *Multicast) {
	for _, l := range m.TreeLinks {
		delete(f.mcastsOn[l], m.ID)
	}
	f.nMcastIdx -= len(m.TreeLinks)
}

// recompute rebuilds the residual capacity of the given logical links
// from first principles: capacity minus the allocations crossing the
// link, summed in ascending flow ID then multicast ID order. Keeping
// the residuals as exact, deterministically-ordered sums (instead of
// incrementally adding and subtracting float deltas) means fail →
// repair → fail cycles conserve capacity bit for bit over arbitrarily
// long simulations — a link whose last reservation is released reads
// exactly Capacity again, with no accumulated rounding drift. The
// crossing indexes keep this cheap: only the flows actually on a
// touched link are summed, in the same deterministic order a full
// scan would have produced.
func (f *Fabric) recompute(links []int) {
	for _, l := range links {
		used := 0.0
		flowIDs := make([]int, 0, len(f.flowsOn[l]))
		for id := range f.flowsOn[l] {
			flowIDs = append(flowIDs, int(id))
		}
		sort.Ints(flowIDs)
		for _, id := range flowIDs {
			used += f.flows[FlowID(id)].Allocated
		}
		mcastIDs := make([]int, 0, len(f.mcastsOn[l]))
		for id := range f.mcastsOn[l] {
			mcastIDs = append(mcastIDs, int(id))
		}
		sort.Ints(mcastIDs)
		for _, id := range mcastIDs {
			used += f.mcasts[MulticastID(id)].Gbps
		}
		f.resid[l] = f.net.Links[l].Capacity - used
		if f.obs != nil && used > 0 {
			f.obs.KeyedMax("netsim.link_peak_util", l, used/f.net.Links[l].Capacity)
		}
	}
}

// Flow returns a snapshot of an admitted flow.
func (f *Fabric) Flow(id FlowID) (Flow, error) {
	fl, ok := f.flows[id]
	if !ok {
		return Flow{}, fmt.Errorf("netsim: unknown flow %d", id)
	}
	return *fl, nil
}

// Flows returns snapshots of all admitted flows in ID order.
func (f *Fabric) Flows() []Flow {
	ids := make([]int, 0, len(f.flows))
	for id := range f.flows {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]Flow, 0, len(ids))
	for _, id := range ids {
		out = append(out, *f.flows[FlowID(id)])
	}
	return out
}

// FailLink marks a logical link failed and re-routes the flows that
// crossed it, in descending class-weight order (higher classes get
// first claim on the surviving capacity — an open, posted-price
// property, not a per-source preference). Flows that cannot be
// re-routed are degraded to zero allocation but stay registered so
// the caller can observe the outage; RepairLink re-admits them.
func (f *Fabric) FailLink(link int) []FlowID {
	return f.FailLinks([]int{link})
}

// FailLinks fails a set of links atomically (one reroute pass after
// all are marked down — a correlated fiber cut, not a sequence of
// independent cuts). Out-of-range, already-failed, and unselected
// entries are skipped — a link the fabric never leased has no
// reservation to fail and must not appear in FailedLinks; nil is
// returned when nothing newly failed.
func (f *Fabric) FailLinks(links []int) []FlowID {
	newly := linkset.New(len(f.net.Links))
	count := 0
	for _, link := range links {
		if link < 0 || link >= len(f.net.Links) || f.failed.Contains(link) {
			continue
		}
		if !f.selected.Contains(link) {
			continue
		}
		f.failed.Add(link)
		newly.Add(link)
		count++
	}
	if count == 0 {
		return nil
	}
	f.obs.Add("netsim.links.failed", int64(count))
	return f.rerouteCrossing(func(fl *Flow) bool {
		for _, l := range fl.Links {
			if newly.Contains(l) {
				return true
			}
		}
		return false
	})
}

// RepairLink clears a failure and re-upgrades previously degraded or
// dropped flows: every flow below its demand is released and re-placed
// in descending class-weight order (then admission order), so repaired
// capacity flows back to the highest classes first, deterministically.
func (f *Fabric) RepairLink(link int) []FlowID {
	return f.RepairLinks([]int{link})
}

// RepairLinks repairs a set of links atomically with a single
// re-upgrade pass. Entries that are not failed are skipped; nil is
// returned when nothing was repaired.
func (f *Fabric) RepairLinks(links []int) []FlowID {
	repaired := 0
	for _, link := range links {
		if link < 0 || link >= len(f.net.Links) || !f.failed.Contains(link) {
			continue
		}
		f.failed.Remove(link)
		repaired++
	}
	if repaired == 0 {
		return nil
	}
	f.obs.Add("netsim.links.repaired", int64(repaired))
	return f.rerouteCrossing(func(fl *Flow) bool { return fl.Allocated < fl.Demand-1e-9 })
}

// RestoreLink is RepairLink under its historical name.
func (f *Fabric) RestoreLink(link int) []FlowID { return f.RepairLink(link) }

// linksOfBP returns the fabric's selected links owned by bp, in ID
// order. Virtual links (topo.VirtualBP) are addressed with bp = -1.
func (f *Fabric) linksOfBP(bp int) []int {
	var out []int
	for id := range f.net.Links {
		if f.net.Links[id].BP != bp {
			continue
		}
		if !f.selected.Contains(id) {
			continue
		}
		out = append(out, id)
	}
	return out
}

// FailBP takes down every selected link leased from one BP at once —
// the paper's Constraint-#2 planning case ("any single BP failure")
// realized on the running fabric. Flows are rerouted in one pass.
func (f *Fabric) FailBP(bp int) []FlowID {
	return f.FailLinks(f.linksOfBP(bp))
}

// RepairBP restores every failed link of one BP and re-upgrades
// degraded flows in one pass.
func (f *Fabric) RepairBP(bp int) []FlowID {
	return f.RepairLinks(f.linksOfBP(bp))
}

// LinkFailed reports whether a link is currently marked failed.
func (f *Fabric) LinkFailed(link int) bool { return f.failed.Contains(link) }

// LinkSelected reports whether a link is part of the fabric's
// selected (leased) link set.
func (f *Fabric) LinkSelected(link int) bool { return f.selected.Contains(link) }

// FailedLinks returns the currently failed link IDs, sorted
// (bitset iteration is ascending).
func (f *Fabric) FailedLinks() []int {
	return f.failed.AppendIDs(make([]int, 0, f.failed.Len()))
}

// SelectedLinks returns the fabric's selected link IDs, sorted
// (bitset iteration is ascending).
func (f *Fabric) SelectedLinks() []int {
	return f.selected.AppendIDs(make([]int, 0, f.selected.Len()))
}

// rerouteCrossing releases and re-places every flow selected by sel.
// It returns the IDs of all re-placed flows (their path, allocation,
// or both may have changed).
func (f *Fabric) rerouteCrossing(sel func(*Flow) bool) []FlowID {
	var victims []*Flow
	for _, fl := range f.flows {
		if sel(fl) {
			victims = append(victims, fl)
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Class.Weight != victims[j].Class.Weight {
			return victims[i].Class.Weight > victims[j].Class.Weight
		}
		return victims[i].ID < victims[j].ID
	})
	var changed []FlowID
	for _, fl := range victims {
		changed = append(changed, fl.ID)
		// Release.
		released := fl.Links
		f.unindexFlow(fl)
		fl.Links = nil
		fl.Allocated = 0
		fl.LatencyKm = 0
		f.recompute(released)
		// Re-place.
		se := f.endpoints[fl.Src]
		de := f.endpoints[fl.Dst]
		if se.Router == de.Router {
			fl.Allocated = fl.Demand
		} else {
			path := f.findPath(se.Router, de.Router, fl.Demand)
			if !math.IsInf(path.Cost, 1) {
				alloc := fl.Demand
				links := make([]int, len(path.Edges))
				lat := 0.0
				for i, eid := range path.Edges {
					l := int(f.linkFor[eid])
					links[i] = l
					lat += f.net.Links[l].DistanceKm
					if f.resid[l] < alloc {
						alloc = f.resid[l]
					}
				}
				if alloc > 1e-9 {
					fl.Links = links
					fl.Allocated = alloc
					fl.LatencyKm = lat
					f.indexFlow(fl)
					f.recompute(links)
				}
			}
		}
	}
	if f.obs != nil && len(victims) > 0 {
		var full, degraded, dropped int
		for _, fl := range victims {
			switch {
			case fl.Allocated >= fl.Demand-1e-9:
				full++
			case fl.Allocated > 1e-9:
				degraded++
			default:
				dropped++
			}
		}
		f.obs.Add("netsim.reroutes.flows", int64(len(victims)))
		f.obs.Add("netsim.reroutes.full", int64(full))
		f.obs.Add("netsim.reroutes.degraded", int64(degraded))
		f.obs.Add("netsim.reroutes.dropped", int64(dropped))
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	return changed
}

// Tick advances simulated time, accumulating transferred volume:
// allocated Gbps × seconds / 8 = GB. Invalid durations are an error,
// never a panic — a long-running simulation must survive bad input.
func (f *Fabric) Tick(seconds float64) error {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return fmt.Errorf("netsim: invalid tick duration %v", seconds)
	}
	for _, fl := range f.flows {
		fl.TransferredGB += fl.Allocated * seconds / 8
	}
	return nil
}

// UsageByEndpoint returns each endpoint's total transferred GB,
// counting a flow's volume against both its source and destination
// (both sides' providers carry it, matching the paper's "paying for
// all traffic carried from and to them").
func (f *Fabric) UsageByEndpoint() map[EndpointID]float64 {
	// Flow-ID order: the per-endpoint totals are float accumulations,
	// and map order would shift them at ULP scale run to run.
	ids := make([]int, 0, len(f.flows))
	for id := range f.flows {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make(map[EndpointID]float64, len(f.endpoints))
	for _, id := range ids {
		fl := f.flows[FlowID(id)]
		out[fl.Src] += fl.TransferredGB
		out[fl.Dst] += fl.TransferredGB
	}
	return out
}

// Utilization returns used/capacity for every selected link with
// non-zero use.
func (f *Fabric) Utilization() map[int]float64 {
	out := make(map[int]float64, f.selected.Len())
	f.selected.Iterate(func(id int) {
		cap := f.net.Links[id].Capacity
		used := cap - f.resid[id]
		if used > 1e-9 {
			out[id] = used / cap
		}
	})
	return out
}
