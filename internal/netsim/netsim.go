// Package netsim is a flow-level simulator of the POC fabric. It
// models the connectivity structure of the paper's Figure 1:
// customers sit behind last-mile providers (LMPs); LMPs — and large
// CSPs directly — attach to the POC at router sites; the POC carries
// flows edge-to-edge over the auctioned link set as a transparent,
// policy-free fabric; anything not on the POC is reached through an
// external ISP attachment.
//
// Flows reserve bandwidth on admission (min of demand and bottleneck
// residual along the cheapest feasible path), are re-routed on link
// failure, and accumulate transferred volume via Tick so the market
// package can bill usage. QoS classes are open and posted-price:
// a higher class buys a larger sharing weight, never a per-source
// preference — the fabric has no notion of favored endpoints.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/topo"
)

// EndpointKind classifies fabric attachments.
type EndpointKind int

const (
	// LMPEndpoint is a last-mile provider attachment.
	LMPEndpoint EndpointKind = iota
	// CSPEndpoint is a directly-attached content/service provider.
	CSPEndpoint
	// ExternalEndpoint represents the rest of the Internet behind an
	// external ISP attachment.
	ExternalEndpoint
)

func (k EndpointKind) String() string {
	switch k {
	case LMPEndpoint:
		return "LMP"
	case CSPEndpoint:
		return "CSP"
	case ExternalEndpoint:
		return "external"
	default:
		return fmt.Sprintf("EndpointKind(%d)", int(k))
	}
}

// EndpointID identifies an attachment.
type EndpointID int

// Endpoint is one attachment to the fabric.
type Endpoint struct {
	ID     EndpointID
	Name   string
	Kind   EndpointKind
	Router int // POC router index
}

// Class is a posted-price QoS class. Weight scales the flow's claim
// during contention; the price is what the POC publishes. Classes
// apply uniformly to any buyer — the fabric cannot express per-source
// preferences.
type Class struct {
	Name   string
	Weight float64 // >= 1
	Price  float64 // posted, per Gbps-month
}

// BestEffort is the default class.
var BestEffort = Class{Name: "best-effort", Weight: 1, Price: 0}

// FlowID identifies an admitted flow.
type FlowID int

// Flow is one admitted aggregate flow.
type Flow struct {
	ID        FlowID
	Src, Dst  EndpointID
	Demand    float64 // requested Gbps
	Allocated float64 // reserved Gbps (≤ Demand)
	Class     Class
	Links     []int   // logical links along the path
	LatencyKm float64 // propagation distance of the path
	// TransferredGB accumulates volume via Tick.
	TransferredGB float64
}

// Fabric is the POC data plane over a selected link set.
type Fabric struct {
	net      *topo.POCNetwork
	selected map[int]bool
	failed   map[int]bool

	endpoints []Endpoint
	flows     map[FlowID]*Flow
	nextFlow  FlowID
	mcasts    map[MulticastID]*Multicast
	nextMcast int
	anycast   map[string][]EndpointID
	resid     []float64 // remaining Gbps per logical link

	g       *graph.Graph
	pr      *graph.PointRouter
	linkFor []int32
	edgeFor map[int][2]graph.EdgeID
}

// New builds a fabric over the network's selected links (nil = all).
func New(p *topo.POCNetwork, selected map[int]bool) *Fabric {
	f := &Fabric{
		net:      p,
		selected: selected,
		failed:   map[int]bool{},
		flows:    map[FlowID]*Flow{},
		resid:    make([]float64, len(p.Links)),
	}
	f.g, f.edgeFor = p.Graph(selected)
	f.linkFor = make([]int32, f.g.NumEdges())
	for id, pair := range f.edgeFor {
		f.linkFor[pair[0]] = int32(id)
		f.linkFor[pair[1]] = int32(id)
		f.resid[id] = p.Links[id].Capacity
	}
	f.pr = graph.NewPointRouter(f.g)
	return f
}

// Attach registers an endpoint at the given POC router and returns
// its ID.
func (f *Fabric) Attach(name string, kind EndpointKind, router int) (EndpointID, error) {
	if router < 0 || router >= len(f.net.Routers) {
		return 0, fmt.Errorf("netsim: router %d out of range", router)
	}
	for _, e := range f.endpoints {
		if e.Name == name {
			return 0, fmt.Errorf("netsim: endpoint %q already attached", name)
		}
	}
	id := EndpointID(len(f.endpoints))
	f.endpoints = append(f.endpoints, Endpoint{ID: id, Name: name, Kind: kind, Router: router})
	return id, nil
}

// Endpoint returns a registered endpoint.
func (f *Fabric) Endpoint(id EndpointID) (Endpoint, error) {
	if id < 0 || int(id) >= len(f.endpoints) {
		return Endpoint{}, fmt.Errorf("netsim: unknown endpoint %d", id)
	}
	return f.endpoints[id], nil
}

// Endpoints returns all attachments in ID order.
func (f *Fabric) Endpoints() []Endpoint {
	return append([]Endpoint(nil), f.endpoints...)
}

// usable reports whether a logical link can carry more traffic.
func (f *Fabric) usable(want float64) graph.EdgeFilter {
	return func(id graph.EdgeID, e graph.Edge) bool {
		l := int(f.linkFor[id])
		if f.failed[l] {
			return false
		}
		return f.resid[l] >= want
	}
}

// StartFlow admits an aggregate flow between two endpoints. The flow
// reserves min(demand, bottleneck) Gbps along the cheapest usable
// path; a flow that can reserve nothing is rejected. The class must
// have Weight >= 1 (use BestEffort for the default).
func (f *Fabric) StartFlow(src, dst EndpointID, demandGbps float64, class Class) (*Flow, error) {
	se, err := f.Endpoint(src)
	if err != nil {
		return nil, err
	}
	de, err := f.Endpoint(dst)
	if err != nil {
		return nil, err
	}
	if demandGbps <= 0 {
		return nil, fmt.Errorf("netsim: non-positive demand %v", demandGbps)
	}
	if class.Weight < 1 {
		return nil, fmt.Errorf("netsim: class weight %v < 1", class.Weight)
	}
	if se.Router == de.Router {
		// Same attachment site: the fabric carries it for free (local
		// cross-connect); no links reserved.
		fl := &Flow{ID: f.nextFlow, Src: src, Dst: dst, Demand: demandGbps,
			Allocated: demandGbps, Class: class}
		f.nextFlow++
		f.flows[fl.ID] = fl
		return fl, nil
	}
	path := f.pr.Path(graph.NodeID(se.Router), graph.NodeID(de.Router), f.usable(1e-9))
	if math.IsInf(path.Cost, 1) {
		return nil, fmt.Errorf("netsim: no usable path %s→%s", se.Name, de.Name)
	}
	alloc := demandGbps
	links := make([]int, len(path.Edges))
	lat := 0.0
	for i, eid := range path.Edges {
		l := int(f.linkFor[eid])
		links[i] = l
		lat += f.net.Links[l].DistanceKm
		if f.resid[l] < alloc {
			alloc = f.resid[l]
		}
	}
	if alloc <= 1e-9 {
		return nil, fmt.Errorf("netsim: no capacity on path %s→%s", se.Name, de.Name)
	}
	for _, l := range links {
		f.resid[l] -= alloc
	}
	fl := &Flow{ID: f.nextFlow, Src: src, Dst: dst, Demand: demandGbps,
		Allocated: alloc, Class: class, Links: links, LatencyKm: lat}
	f.nextFlow++
	f.flows[fl.ID] = fl
	return fl, nil
}

// StopFlow releases a flow's reservation.
func (f *Fabric) StopFlow(id FlowID) error {
	fl, ok := f.flows[id]
	if !ok {
		return fmt.Errorf("netsim: unknown flow %d", id)
	}
	for _, l := range fl.Links {
		f.resid[l] += fl.Allocated
	}
	delete(f.flows, id)
	return nil
}

// Flow returns a snapshot of an admitted flow.
func (f *Fabric) Flow(id FlowID) (Flow, error) {
	fl, ok := f.flows[id]
	if !ok {
		return Flow{}, fmt.Errorf("netsim: unknown flow %d", id)
	}
	return *fl, nil
}

// Flows returns snapshots of all admitted flows in ID order.
func (f *Fabric) Flows() []Flow {
	ids := make([]int, 0, len(f.flows))
	for id := range f.flows {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]Flow, 0, len(ids))
	for _, id := range ids {
		out = append(out, *f.flows[FlowID(id)])
	}
	return out
}

// FailLink marks a logical link failed and re-routes the flows that
// crossed it, in descending class-weight order (higher classes get
// first claim on the surviving capacity — an open, posted-price
// property, not a per-source preference). Flows that cannot be
// re-routed are degraded to zero allocation but stay registered so
// the caller can observe the outage; RestoreLink re-admits them.
func (f *Fabric) FailLink(link int) []FlowID {
	if link < 0 || link >= len(f.net.Links) || f.failed[link] {
		return nil
	}
	f.failed[link] = true
	return f.rerouteCrossing(func(fl *Flow) bool {
		for _, l := range fl.Links {
			if l == link {
				return true
			}
		}
		return false
	})
}

// RestoreLink clears a failure and tries to re-admit degraded flows.
func (f *Fabric) RestoreLink(link int) []FlowID {
	if !f.failed[link] {
		return nil
	}
	delete(f.failed, link)
	return f.rerouteCrossing(func(fl *Flow) bool { return fl.Allocated == 0 })
}

// rerouteCrossing releases and re-places every flow selected by sel.
// It returns the IDs of all re-placed flows (their path, allocation,
// or both may have changed).
func (f *Fabric) rerouteCrossing(sel func(*Flow) bool) []FlowID {
	var victims []*Flow
	for _, fl := range f.flows {
		if sel(fl) {
			victims = append(victims, fl)
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Class.Weight != victims[j].Class.Weight {
			return victims[i].Class.Weight > victims[j].Class.Weight
		}
		return victims[i].ID < victims[j].ID
	})
	var changed []FlowID
	for _, fl := range victims {
		changed = append(changed, fl.ID)
		// Release.
		for _, l := range fl.Links {
			f.resid[l] += fl.Allocated
		}
		fl.Links = nil
		fl.Allocated = 0
		fl.LatencyKm = 0
		// Re-place.
		se := f.endpoints[fl.Src]
		de := f.endpoints[fl.Dst]
		if se.Router == de.Router {
			fl.Allocated = fl.Demand
		} else {
			path := f.pr.Path(graph.NodeID(se.Router), graph.NodeID(de.Router), f.usable(1e-9))
			if !math.IsInf(path.Cost, 1) {
				alloc := fl.Demand
				links := make([]int, len(path.Edges))
				lat := 0.0
				for i, eid := range path.Edges {
					l := int(f.linkFor[eid])
					links[i] = l
					lat += f.net.Links[l].DistanceKm
					if f.resid[l] < alloc {
						alloc = f.resid[l]
					}
				}
				if alloc > 1e-9 {
					for _, l := range links {
						f.resid[l] -= alloc
					}
					fl.Links = links
					fl.Allocated = alloc
					fl.LatencyKm = lat
				}
			}
		}
	}
	sort.Slice(changed, func(i, j int) bool { return changed[i] < changed[j] })
	return changed
}

// Tick advances simulated time, accumulating transferred volume:
// allocated Gbps × seconds / 8 = GB.
func (f *Fabric) Tick(seconds float64) {
	if seconds < 0 {
		panic("netsim: negative tick")
	}
	for _, fl := range f.flows {
		fl.TransferredGB += fl.Allocated * seconds / 8
	}
}

// UsageByEndpoint returns each endpoint's total transferred GB,
// counting a flow's volume against both its source and destination
// (both sides' providers carry it, matching the paper's "paying for
// all traffic carried from and to them").
func (f *Fabric) UsageByEndpoint() map[EndpointID]float64 {
	out := map[EndpointID]float64{}
	for _, fl := range f.flows {
		out[fl.Src] += fl.TransferredGB
		out[fl.Dst] += fl.TransferredGB
	}
	return out
}

// Utilization returns used/capacity for every selected link with
// non-zero use.
func (f *Fabric) Utilization() map[int]float64 {
	out := map[int]float64{}
	for id, pair := range f.edgeFor {
		_ = pair
		cap := f.net.Links[id].Capacity
		used := cap - f.resid[id]
		if used > 1e-9 {
			out[id] = used / cap
		}
	}
	return out
}
