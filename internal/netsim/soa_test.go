package netsim

import (
	"reflect"
	"testing"
)

// attach4 attaches one LMP endpoint per ring router.
func attach4(t *testing.T, f *Fabric) []EndpointID {
	t.Helper()
	eps := make([]EndpointID, 4)
	for r := 0; r < 4; r++ {
		id, err := f.Attach(string(rune('a'+r)), LMPEndpoint, r)
		if err != nil {
			t.Fatal(err)
		}
		eps[r] = id
	}
	return eps
}

// TestStaleIDNeverAliasesRecycledSlot pins the generation-tag
// contract: once a flow is stopped, its ID stays invalid forever,
// even after the table slot it occupied is recycled by a new flow.
func TestStaleIDNeverAliasesRecycledSlot(t *testing.T) {
	f := New(ringNet(100), nil)
	eps := attach4(t, f)

	first, err := f.StartFlow(eps[0], eps[1], 5, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StopFlow(first.ID); err != nil {
		t.Fatal(err)
	}
	second, err := f.StartFlow(eps[2], eps[3], 7, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	// The second flow must have recycled the first one's slot (LIFO
	// free list) under a bumped generation, giving a distinct ID.
	if got, want := int64(second.ID)&(1<<slotBits-1), int64(first.ID)&(1<<slotBits-1); got != want {
		t.Fatalf("second flow took slot %d, want recycled slot %d", got, want)
	}
	if second.ID == first.ID {
		t.Fatalf("recycled slot reissued the same FlowID %d", first.ID)
	}
	if _, err := f.Flow(first.ID); err == nil {
		t.Fatalf("stale ID %d resolved after its slot was recycled", first.ID)
	}
	if err := f.StopFlow(first.ID); err == nil {
		t.Fatalf("stale ID %d stopped the recycled slot's flow", first.ID)
	}
	if fl, err := f.Flow(second.ID); err != nil || fl.Src != eps[2] || fl.Demand != 7 {
		t.Fatalf("live flow misread after recycle: %+v, %v", fl, err)
	}
}

// TestFlowsStayInAdmissionOrderAcrossRecycling pins that Flows and
// RangeFlows iterate in admission order (strictly increasing Seq)
// even when slot recycling makes numeric IDs non-monotonic.
func TestFlowsStayInAdmissionOrderAcrossRecycling(t *testing.T) {
	f := New(ringNet(1000), nil)
	eps := attach4(t, f)
	var live []FlowID
	for i := 0; i < 30; i++ {
		fl, err := f.StartFlow(eps[i%4], eps[(i+1)%4], 1+float64(i), BestEffort)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, fl.ID)
		if i%3 == 2 { // stop the middle of the live set, forcing recycling
			mid := len(live) / 2
			if err := f.StopFlow(live[mid]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:mid], live[mid+1:]...)
		}
	}
	fs := f.Flows()
	if len(fs) != len(live) {
		t.Fatalf("%d flows live, snapshot has %d", len(live), len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i-1].Seq >= fs[i].Seq {
			t.Fatalf("snapshot out of admission order at %d: seq %d then %d", i, fs[i-1].Seq, fs[i].Seq)
		}
	}
	i := 0
	f.RangeFlows(func(fl *Flow) bool {
		if fl.ID != fs[i].ID || fl.Seq != fs[i].Seq || !reflect.DeepEqual(fl.Links, fs[i].Links) {
			t.Fatalf("RangeFlows diverges from Flows at %d", i)
		}
		i++
		return true
	})
	if i != len(fs) {
		t.Fatalf("RangeFlows visited %d flows, want %d", i, len(fs))
	}
}

// TestBulkMatchesSequential pins the bulk entry points' contract:
// StartFlows/StopFlows must leave the fabric in exactly the state the
// equivalent sequence of single-flow calls produces — same IDs, same
// allocations, same residuals, bit for bit.
func TestBulkMatchesSequential(t *testing.T) {
	specs := func() []FlowSpec {
		var out []FlowSpec
		for i := 0; i < 40; i++ {
			out = append(out, FlowSpec{
				Src:    EndpointID(i % 4),
				Dst:    EndpointID((i + 1 + i%2) % 4),
				Demand: 0.7 + float64(i%9)*1.3,
				Class:  BestEffort,
			})
		}
		// An invalid spec: bulk admission must record it as -1 exactly
		// where the sequential loop gets an error.
		out[17].Demand = -1
		return out
	}

	fBulk := New(ringNet(60), nil)
	fSeq := New(ringNet(60), nil)
	attach4(t, fBulk)
	attach4(t, fSeq)

	idsBulk := fBulk.StartFlows(specs())
	var idsSeq []FlowID
	for _, sp := range specs() {
		fl, err := fSeq.StartFlow(sp.Src, sp.Dst, sp.Demand, sp.Class)
		if err != nil {
			idsSeq = append(idsSeq, -1)
			continue
		}
		idsSeq = append(idsSeq, fl.ID)
	}
	if !reflect.DeepEqual(idsBulk, idsSeq) {
		t.Fatalf("bulk admission IDs diverge:\n%v\n%v", idsBulk, idsSeq)
	}

	// Stop every third flow — with duplicates and junk mixed in, which
	// the sequential loop must skip the same way StopFlows does.
	var stops []FlowID
	for i := 0; i < len(idsBulk); i += 3 {
		if idsBulk[i] >= 0 {
			stops = append(stops, idsBulk[i], idsBulk[i]) // duplicate
		}
	}
	stops = append(stops, -1, 9999)
	nBulk := fBulk.StopFlows(stops)
	nSeq := 0
	for _, id := range stops {
		if err := fSeq.StopFlow(id); err == nil {
			nSeq++
		}
	}
	if nBulk != nSeq {
		t.Fatalf("bulk stopped %d, sequential stopped %d", nBulk, nSeq)
	}

	// A second wave lands on the recycled slots of both fabrics.
	wave2 := specs()[:11]
	if !reflect.DeepEqual(fBulk.StartFlows(wave2), func() []FlowID {
		var ids []FlowID
		for _, sp := range wave2 {
			fl, err := fSeq.StartFlow(sp.Src, sp.Dst, sp.Demand, sp.Class)
			if err != nil {
				ids = append(ids, -1)
				continue
			}
			ids = append(ids, fl.ID)
		}
		return ids
	}()) {
		t.Fatal("second-wave IDs diverge after recycling")
	}

	if !reflect.DeepEqual(fBulk.Flows(), fSeq.Flows()) {
		t.Fatal("flow populations diverge between bulk and sequential")
	}
	if !reflect.DeepEqual(fBulk.Utilization(), fSeq.Utilization()) {
		t.Fatal("utilization diverges between bulk and sequential")
	}
	for l := range fBulk.net.Links {
		if fBulk.resid[l] != fSeq.resid[l] {
			t.Fatalf("link %d residual diverges: %v vs %v", l, fBulk.resid[l], fSeq.resid[l])
		}
	}
}

// TestRerouteVictimOrderInvariance pins that a reroute pass's outcome
// depends only on the victim set, not on the order victims were
// gathered (shard layout, crossing-index order): rerouteSlots re-sorts
// by (class weight, admission seq) internally.
func TestRerouteVictimOrderInvariance(t *testing.T) {
	gold := Class{Name: "gold", Weight: 4, Price: 10}
	build := func() *Fabric {
		f := New(ringNet(20), nil)
		eps := attach4(t, f)
		for i := 0; i < 10; i++ {
			c := BestEffort
			if i%3 == 0 {
				c = gold
			}
			// Rejections are fine — the ring is deliberately tight so
			// plenty of admitted flows end up degraded.
			f.StartFlow(eps[i%4], eps[(i+2)%4], 4+float64(i), c)
		}
		f.FailLinks([]int{0, 4}) // leave plenty of degraded flows
		return f
	}

	f1 := build()
	f2 := build()
	gather := func(f *Fabric) []int32 {
		var v []int32
		for i := range f.shards {
			v = append(v, f.shards[i].degraded...)
		}
		return v
	}
	v1 := gather(f1)
	v2 := gather(f2)
	if len(v1) == 0 {
		t.Fatal("fixture produced no degraded flows")
	}
	for i, j := 0, len(v2)-1; i < j; i, j = i+1, j-1 {
		v2[i], v2[j] = v2[j], v2[i]
	}
	f1.failed.Remove(0)
	f2.failed.Remove(0)
	c1 := f1.rerouteSlots(append([]int32(nil), v1...))
	c2 := f2.rerouteSlots(append([]int32(nil), v2...))
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("changed sets diverge under victim permutation:\n%v\n%v", c1, c2)
	}
	if !reflect.DeepEqual(f1.Flows(), f2.Flows()) {
		t.Fatal("flow populations diverge under victim permutation")
	}
}

// TestArenaCompactionPreservesPaths churns hard enough to trigger
// path-arena and order-log compaction and checks that surviving
// flows' snapshots are untouched.
func TestArenaCompactionPreservesPaths(t *testing.T) {
	f := New(ringNet(1e6), nil)
	eps := attach4(t, f)
	survivors := map[FlowID]Flow{}
	for i := 0; i < 8; i++ {
		fl, err := f.StartFlow(eps[i%4], eps[(i+1)%4], 2, BestEffort)
		if err != nil {
			t.Fatal(err)
		}
		survivors[fl.ID] = *fl
	}
	// Heavy churn: thousands of short-lived flows force both
	// compactions several times over.
	for round := 0; round < 200; round++ {
		var batch []FlowID
		for i := 0; i < 20; i++ {
			fl, err := f.StartFlow(eps[i%4], eps[(i+2)%4], 1, BestEffort)
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, fl.ID)
		}
		if got := f.StopFlows(batch); got != len(batch) {
			t.Fatalf("round %d: stopped %d of %d", round, got, len(batch))
		}
	}
	if got := f.NumFlows(); got != len(survivors) {
		t.Fatalf("%d flows live after churn, want %d", got, len(survivors))
	}
	for id, want := range survivors {
		got, err := f.Flow(id)
		if err != nil {
			t.Fatalf("survivor %d lost: %v", id, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("survivor %d changed across compaction:\ngot  %+v\nwant %+v", id, got, want)
		}
	}
	invariants(t, f)
}
