package netsim

import (
	"testing"
)

// starFabric builds a fabric over the ring+chord fixture with a CSP
// source at router 1 and LMP receivers at routers 0, 2 and 3.
func starFabric(t *testing.T) (*Fabric, EndpointID, []EndpointID) {
	t.Helper()
	p := ringNet(10) // reuse the ring+chord fixture: routers 0..3
	f := New(p, nil)
	src, err := f.Attach("src", CSPEndpoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	var rcv []EndpointID
	for i, router := range []int{0, 2, 3} {
		id, err := f.Attach([]string{"r0", "r2", "r3"}[i], LMPEndpoint, router)
		if err != nil {
			t.Fatal(err)
		}
		rcv = append(rcv, id)
	}
	return f, src, rcv
}

func TestMulticastSharesTreeLinks(t *testing.T) {
	f, src, rcv := starFabric(t)
	m, err := f.StartMulticast(src, rcv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Reached) != 3 {
		t.Fatalf("reached = %v", m.Reached)
	}
	// The tree must use each link at most once; reservation is
	// Gbps × tree size, strictly less than unicast equivalent.
	uni := f.UnicastEquivalentGbps(m)
	if m.TreeGbps() >= uni {
		t.Fatalf("tree %v Gbps not cheaper than unicast %v", m.TreeGbps(), uni)
	}
	// Capacity accounting: each tree link lost exactly 4 Gbps.
	for _, l := range m.TreeLinks {
		if f.resid[l] != 6 {
			t.Fatalf("link %d resid = %v, want 6", l, f.resid[l])
		}
	}
}

func TestMulticastStopReleases(t *testing.T) {
	f, src, rcv := starFabric(t)
	m, err := f.StartMulticast(src, rcv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.StopMulticast(m.ID); err != nil {
		t.Fatal(err)
	}
	if err := f.StopMulticast(m.ID); err == nil {
		t.Fatal("double stop accepted")
	}
	for i := range f.resid {
		if f.selected.Contains(i) {
			if f.resid[i] != f.net.Links[i].Capacity {
				t.Fatalf("link %d resid = %v after release", i, f.resid[i])
			}
		}
	}
}

func TestMulticastValidation(t *testing.T) {
	f, src, rcv := starFabric(t)
	if _, err := f.StartMulticast(src, rcv, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := f.StartMulticast(src, nil, 1); err == nil {
		t.Fatal("no receivers accepted")
	}
	if _, err := f.StartMulticast(src, []EndpointID{rcv[0], rcv[0]}, 1); err == nil {
		t.Fatal("duplicate receiver accepted")
	}
	if _, err := f.StartMulticast(99, rcv, 1); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := f.StartMulticast(src, []EndpointID{99}, 1); err == nil {
		t.Fatal("unknown receiver accepted")
	}
}

func TestMulticastInsufficientCapacity(t *testing.T) {
	f, src, rcv := starFabric(t)
	if _, err := f.StartMulticast(src, rcv, 50); err == nil {
		t.Fatal("oversize multicast accepted")
	}
	// Nothing reserved after rejection.
	for i, r := range f.resid {
		if r != f.net.Links[i].Capacity {
			t.Fatalf("link %d resid %v after rejected multicast", i, r)
		}
	}
}

func TestMulticastsSnapshot(t *testing.T) {
	f, src, rcv := starFabric(t)
	if _, err := f.StartMulticast(src, rcv[:1], 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartMulticast(src, rcv[1:], 2); err != nil {
		t.Fatal(err)
	}
	ms := f.Multicasts()
	if len(ms) != 2 || ms[0].ID >= ms[1].ID {
		t.Fatalf("multicasts = %+v", ms)
	}
}

func TestAnycastPicksNearest(t *testing.T) {
	f, src, rcv := starFabric(t)
	// rcv[0] at router 0, rcv[1] at router 2 — src at router 1 is 100km
	// from both... attach a member at router 1 itself for a clear win.
	local, err := f.Attach("local", CSPEndpoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterAnycast("cdn", rcv[0], rcv[1], local); err != nil {
		t.Fatal(err)
	}
	fl, member, err := f.StartAnycastFlow(src, "cdn", 2, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if member != local {
		t.Fatalf("anycast chose %d, want local member %d", member, local)
	}
	if len(fl.Links) != 0 {
		t.Fatalf("local anycast should use no links, got %v", fl.Links)
	}
}

func TestAnycastFailover(t *testing.T) {
	f, src, rcv := starFabric(t)
	if err := f.RegisterAnycast("cdn", rcv[0], rcv[1]); err != nil {
		t.Fatal(err)
	}
	// Saturate the cheapest member's path (src router 1 → rcv[0]
	// router 0 via link 0) so anycast picks the other member.
	fl1, _, err := f.StartAnycastFlow(src, "cdn", 10, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	_, member2, err := f.StartAnycastFlow(src, "cdn", 5, BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if member2 == fl1.Dst {
		t.Fatalf("anycast did not fail over: both flows to %d", member2)
	}
}

func TestAnycastValidation(t *testing.T) {
	f, src, rcv := starFabric(t)
	if err := f.RegisterAnycast("", rcv[0]); err == nil {
		t.Fatal("empty group name accepted")
	}
	if err := f.RegisterAnycast("g", 99); err == nil {
		t.Fatal("unknown member accepted")
	}
	if _, _, err := f.StartAnycastFlow(src, "nope", 1, BestEffort); err == nil {
		t.Fatal("unknown group accepted")
	}
	// Duplicate registration is idempotent.
	if err := f.RegisterAnycast("g", rcv[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterAnycast("g", rcv[0], rcv[1]); err != nil {
		t.Fatal(err)
	}
	if n := len(f.anycast["g"]); n != 2 {
		t.Fatalf("group has %d members, want 2", n)
	}
}
