// Package fleet sweeps the scenario grid: the cross product of
// topology, traffic model, acceptability constraint, chaos schedule
// and recovery policy, each cell running the full POC pipeline (BP
// formation → auction → provisioning → fabric → chaos → billing)
// against its own observability registry.
//
// The sweep is embarrassingly parallel with two deliberate exceptions:
// all cells share one process-wide FeasibilityCache (identical
// feasibility questions recur across constraints and traffic models)
// and, per topology, one provision.Workspace arena pool. Both are
// determinism-safe under sharing — cache answers are exact replays of
// the routing they memoize, and everything scheduling-visible (hit
// counters, insert-win observations) is suppressed on the shared path
// (see auction.Instance.Cache) — so the merged report is byte-stable:
// identical for -workers 1 vs N, run to run, under -race, and across
// interrupt/resume.
package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/provision"
)

// ErrInterrupted reports a sweep that stopped before every cell
// completed (MaxCells tripped). The journal, if any, holds the
// completed cells; a resumed Run finishes the rest.
var ErrInterrupted = errors.New("fleet: sweep interrupted before all cells completed")

// Config tunes one sweep. The zero value is a small, test-friendly
// sweep: scale 0.12, 8 chaos epochs, 4 failure scenarios, one worker
// per CPU, shared cache on.
type Config struct {
	// Scale in (0,1] sizes the zoo topologies exactly as
	// ScenarioOptions.Scale does (0 = 0.12, the seed-golden scale).
	Scale float64
	// Epochs is the chaos horizon per cell (0 = 8).
	Epochs int
	// FailureScenarios bounds Constraint-2/3 checks (0 = 4).
	FailureScenarios int
	// Workers bounds sweep parallelism (0 = GOMAXPROCS). Any setting
	// yields bit-identical merged reports.
	Workers int
	// StateDir, when non-empty, enables the crash/resume journal:
	// completed cells persist there and are replayed on the next Run
	// with the same grid and parameters.
	StateDir string
	// MaxCells, when positive, stops the sweep after that many fresh
	// cell completions (cells replayed from the journal don't count).
	// It exists so tests can simulate a crash at an exact point;
	// a tripped sweep returns ErrInterrupted.
	MaxCells int
	// ColdCache disables cross-cell sharing: every cell gets its own
	// fresh feasibility cache and builds its own workspaces. The
	// merged report must be byte-identical either way — that
	// equivalence is the test that sharing never leaks scheduling
	// into results.
	ColdCache bool
	// Shared carries cross-Run shared state; nil means Run creates its
	// own. Passing one Shared across Runs (as pocbench does) keeps the
	// feasibility cache warm between sweeps.
	Shared *Shared
	// CacheFile, when non-empty, persists the shared feasibility cache
	// across processes: Run loads it (if present) before the sweep and
	// saves the cache back (atomically) after a complete sweep. Warm
	// starts replay memoized checks byte-for-byte, so the merged report
	// is identical with or without the file — only faster. Incompatible
	// with ColdCache (there is no shared cache to persist).
	CacheFile string
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.12
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	if c.FailureScenarios == 0 {
		c.FailureScenarios = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Shared is the cross-cell (and, if reused, cross-Run) shared state:
// the process-wide feasibility cache and the per-topology bundles
// (offer graph, bid book, traffic matrices, workspace arena pool).
type Shared struct {
	// Cache is rebound only at construction; everyone else reads it
	// (the FeasibilityCache itself is internally synchronized).
	//lint:owner NewShared
	Cache *provision.FeasibilityCache

	mu      sync.Mutex
	bundles map[string]*bundle
}

// NewShared returns an empty shared state with a fresh cache.
func NewShared() *Shared {
	return &Shared{
		Cache:   provision.NewFeasibilityCache(),
		bundles: map[string]*bundle{},
	}
}

// bundleFor returns the topology's bundle, building it on first use.
// The build runs under the lock: concurrent workers needing the same
// topology wait rather than duplicating a multi-second assembly.
func (s *Shared) bundleFor(ts TopoSpec, cfg Config) (*bundle, error) {
	key := fmt.Sprintf("%s|seed=%d|dir=%s|scale=%s|fs=%d",
		ts.Name, ts.Seed, ts.Dir, hexFloat(cfg.Scale), cfg.FailureScenarios)
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.bundles[key]; ok {
		return b, nil
	}
	b, err := buildBundle(ts, cfg)
	if err != nil {
		return nil, err
	}
	s.bundles[key] = b
	return b, nil
}

// CacheStats exposes the shared cache's hit/miss counters (for
// pocbench and the cross-cell sharing tests).
func (s *Shared) CacheStats() (hits, misses int64) {
	return s.Cache.Hits(), s.Cache.Misses()
}

// Run executes the sweep and merges the per-cell ledgers into one
// canonical report. Workers claim cells from the key-sorted list via
// an atomic cursor; results land in per-cell slots, so no ordering —
// of claims, completions, or journal replays — can reach the output.
func Run(grid GridSpec, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Scale < 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("fleet: scale %v out of (0,1]", cfg.Scale)
	}
	cells := grid.Expand()
	if len(cells) == 0 {
		return nil, errors.New("fleet: empty grid")
	}
	topos := grid.topoByName()
	for _, c := range cells {
		if _, ok := topos[c.Topo]; !ok {
			return nil, fmt.Errorf("fleet: cell %s references unknown topology %q", c.Key(), c.Topo)
		}
	}

	if cfg.CacheFile != "" && cfg.ColdCache {
		return nil, errors.New("fleet: CacheFile requires the shared cache (ColdCache set)")
	}

	shared := cfg.Shared
	if shared == nil {
		shared = NewShared()
	}
	if cfg.CacheFile != "" {
		if _, err := shared.Cache.LoadFile(cfg.CacheFile); err != nil {
			return nil, fmt.Errorf("fleet: cache file: %w", err)
		}
	}

	results := make([]*CellResult, len(cells))
	obsDocs := make([][]byte, len(cells))
	if cfg.StateDir != "" {
		if err := openState(cfg.StateDir, cells, cfg); err != nil {
			return nil, err
		}
		if _, err := loadState(cfg.StateDir, cells, results, obsDocs); err != nil {
			return nil, err
		}
	}

	var (
		cursor  atomic.Int64
		fresh   atomic.Int64
		stopped atomic.Bool
		errOnce sync.Once
		runErr  error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		stopped.Store(true)
	}
	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(cells) || stopped.Load() {
					return
				}
				if results[i] != nil {
					continue // replayed from the journal
				}
				cell := cells[i]
				b, err := shared.bundleFor(topos[cell.Topo], cfg)
				if err != nil {
					fail(err)
					return
				}
				res, doc, err := runCell(cfg, shared, b, cell)
				if err != nil {
					fail(err)
					return
				}
				results[i] = res
				obsDocs[i] = doc
				if cfg.StateDir != "" {
					if err := saveCell(cfg.StateDir, res, doc); err != nil {
						fail(err)
						return
					}
				}
				if n := fresh.Add(1); cfg.MaxCells > 0 && n >= int64(cfg.MaxCells) {
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	for _, r := range results {
		if r == nil {
			return nil, ErrInterrupted
		}
	}

	ledgerCells := make(map[string][]byte, len(cells))
	for i, r := range results {
		ledgerCells[r.Key] = obsDocs[i]
	}
	ledger, err := obs.MergeJSON(ledgerCells)
	if err != nil {
		return nil, err
	}
	if cfg.CacheFile != "" {
		if err := shared.Cache.SaveFile(cfg.CacheFile); err != nil {
			return nil, fmt.Errorf("fleet: cache file: %w", err)
		}
	}
	return &Report{
		Schema:           ReportSchema,
		Scale:            hexFloat(cfg.Scale),
		Epochs:           cfg.Epochs,
		FailureScenarios: cfg.FailureScenarios,
		Cells:            len(cells),
		Results:          results,
		Ledger:           ledger,
	}, nil
}
