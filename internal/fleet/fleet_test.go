package fleet

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/public-option/poc/internal/provision"
)

// smallGrid is the 4-cell grid the package tests sweep: cheap (C1
// only), but it still exercises both traffic models, a quiet cell and
// a BP outage.
func smallGrid() GridSpec {
	return GridSpec{
		Topos:       []TopoSpec{{Name: "fig2"}},
		Traffics:    []string{"gravity", "hotspot"},
		Constraints: []provision.Constraint{provision.Constraint1},
		Chaos:       []string{"none", "bp-outage"},
		Policies:    []string{"recall"},
	}
}

func mustRun(t *testing.T, grid GridSpec, cfg Config) *Report {
	t.Helper()
	rep, err := Run(grid, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := rep.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestExpandDedupsAndSorts(t *testing.T) {
	g := smallGrid()
	// Extra policies must not multiply the chaos="none" cells: the
	// recovery ladder never engages without faults, so the policy axis
	// collapses to "reroute" there.
	g.Policies = []string{"recall", "reroute", "reauction"}
	cells := g.Expand()
	// 2 traffics × (1 collapsed none-cell + 3 bp-outage policies) = 8.
	if len(cells) != 8 {
		t.Fatalf("expanded to %d cells, want 8: %v", len(cells), cells)
	}
	for i := 1; i < len(cells); i++ {
		if cells[i-1].Key() >= cells[i].Key() {
			t.Fatalf("cells not strictly key-sorted: %q then %q", cells[i-1].Key(), cells[i].Key())
		}
	}
	for _, c := range cells {
		if c.Chaos == "none" && c.Policy != "reroute" {
			t.Fatalf("quiet cell kept policy %q", c.Policy)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(GridSpec{}, Config{}); err == nil {
		t.Fatal("empty grid accepted")
	}
	g := smallGrid()
	if _, err := Run(g, Config{Scale: 2}); err == nil {
		t.Fatal("scale 2 accepted")
	}
}

// TestFleetResumeProperty is the crash/resume property test: for every
// prefix length k, a sweep killed after its k-th completed cell and
// then resumed must produce a merged report byte-identical to an
// uninterrupted run. MaxCells simulates the kill; Workers=1 in the
// interrupted phase makes the kill point exact.
func TestFleetResumeProperty(t *testing.T) {
	grid := smallGrid()
	baseline := reportBytes(t, mustRun(t, grid, Config{Workers: 2}))
	cells := grid.Expand()
	for k := 1; k < len(cells); k++ {
		dir := t.TempDir()
		_, err := Run(grid, Config{Workers: 1, StateDir: dir, MaxCells: k})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("k=%d: interrupted run returned %v, want ErrInterrupted", k, err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		journaled := 0
		for _, e := range entries {
			if e.Name() != "manifest.json" && !strings.HasPrefix(e.Name(), ".tmp-") {
				journaled++
			}
		}
		if journaled != k {
			t.Fatalf("k=%d: journal holds %d cells", k, journaled)
		}
		resumed := reportBytes(t, mustRun(t, grid, Config{Workers: 4, StateDir: dir}))
		if !bytes.Equal(resumed, baseline) {
			t.Fatalf("k=%d: resumed report differs from uninterrupted run", k)
		}
	}
}

// TestResumeRejectsForeignState: a journal pinned to different sweep
// parameters (or a corrupted entry) must abort the run, not silently
// merge stale results.
func TestResumeRejectsForeignState(t *testing.T) {
	grid := smallGrid()
	dir := t.TempDir()
	if _, err := Run(grid, Config{Workers: 1, StateDir: dir, MaxCells: 1}); !errors.Is(err, ErrInterrupted) {
		t.Fatal(err)
	}
	if _, err := Run(grid, Config{Workers: 1, StateDir: dir, Epochs: 12}); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("foreign manifest accepted: %v", err)
	}
	// Corrupt the journaled cell: digest verification must catch it.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() == "manifest.json" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw = bytes.Replace(raw, []byte(`"selected":`), []byte(`"selected":9`), 1)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(grid, Config{Workers: 1, StateDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("corrupted journal accepted: %v", err)
	}
}

// TestCrossCellCacheSharing proves the process-wide feasibility cache
// actually carries work across cells — and that sharing never reaches
// the report bytes.
//
// The two-cell grid differs only in the chaos axis, which runs after
// the auction and (under the reroute policy) never touches
// provisioning: both cells ask the cache exactly the same feasibility
// questions. So a shared sweep must pay the misses of ONE cell and
// answer the second entirely from cache.
func TestCrossCellCacheSharing(t *testing.T) {
	one := GridSpec{
		Topos:       []TopoSpec{{Name: "fig2"}},
		Traffics:    []string{"gravity"},
		Constraints: []provision.Constraint{provision.Constraint1},
		Chaos:       []string{"none"},
		Policies:    []string{"reroute"},
	}
	two := one
	two.Chaos = []string{"none", "bp-outage"}

	s1 := NewShared()
	mustRun(t, one, Config{Shared: s1})
	h1, m1 := s1.CacheStats()
	if m1 == 0 {
		t.Fatal("single-cell sweep recorded no cache misses")
	}

	// Workers=1 so the second cell starts after the first has stored
	// its entries; concurrent cells can race to the same key and both
	// miss (the counters are advisory — results never depend on them).
	s2 := NewShared()
	sharedRep := mustRun(t, two, Config{Shared: s2, Workers: 1})
	h2, m2 := s2.CacheStats()
	if m2 != m1 {
		t.Fatalf("two-cell sweep paid %d misses, want the single-cell %d (second cell should replay from cache)", m2, m1)
	}
	if h2 <= h1 {
		t.Fatalf("two-cell sweep hits %d not above single-cell %d", h2, h1)
	}

	// Sharing must be invisible in the output: a cold sweep (every
	// cell provisions from scratch) yields bit-identical bytes.
	coldRep := mustRun(t, two, Config{ColdCache: true, Workers: 2})
	if !bytes.Equal(reportBytes(t, sharedRep), reportBytes(t, coldRep)) {
		t.Fatal("shared-cache report differs from cold-cache report")
	}
}

// TestCacheFilePersistence: a sweep with CacheFile saves the shared
// cache after a complete sweep; a second process-fresh sweep loading
// it answers from the file (no new misses) and merges byte-identical
// reports — persistence is a pure speedup, never a result change.
func TestCacheFilePersistence(t *testing.T) {
	grid := smallGrid()
	path := filepath.Join(t.TempDir(), "fleet.pocfcache")

	s1 := NewShared()
	cold := reportBytes(t, mustRun(t, grid, Config{Shared: s1, CacheFile: path}))
	_, coldMisses := s1.CacheStats()
	if coldMisses == 0 {
		t.Fatal("cold sweep recorded no cache misses")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	// Fresh Shared = fresh process. Workers=1 so cells can't race to
	// the same key and double-count a miss.
	s2 := NewShared()
	warm := reportBytes(t, mustRun(t, grid, Config{Shared: s2, CacheFile: path, Workers: 1}))
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm-from-file report differs from cold report")
	}
	if _, warmMisses := s2.CacheStats(); warmMisses != 0 {
		t.Fatalf("warm-from-file sweep paid %d misses, want 0", warmMisses)
	}

	// An interrupted sweep must NOT overwrite the file: the save runs
	// only after every cell completed.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(grid, Config{CacheFile: path, Workers: 1, MaxCells: 1, StateDir: t.TempDir()}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("interrupted sweep rewrote the cache file")
	}

	// CacheFile needs a shared cache to persist.
	if _, err := Run(grid, Config{CacheFile: path, ColdCache: true}); err == nil ||
		!strings.Contains(err.Error(), "ColdCache") {
		t.Fatalf("CacheFile+ColdCache accepted: %v", err)
	}
}

// TestSharedAcrossRuns: reusing one Shared across sweeps (pocbench's
// warm trajectory) keeps results byte-identical while the cache keeps
// its entries.
func TestSharedAcrossRuns(t *testing.T) {
	grid := smallGrid()
	s := NewShared()
	first := reportBytes(t, mustRun(t, grid, Config{Shared: s}))
	_, coldMisses := s.CacheStats()
	second := reportBytes(t, mustRun(t, grid, Config{Shared: s}))
	_, warmMisses := s.CacheStats()
	if !bytes.Equal(first, second) {
		t.Fatal("warm rerun drifted from cold run")
	}
	if warmMisses != coldMisses {
		t.Fatalf("warm rerun paid %d new misses", warmMisses-coldMisses)
	}
}
