package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"github.com/public-option/poc/internal/auction"
	"github.com/public-option/poc/internal/chaos"
	"github.com/public-option/poc/internal/core"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/peering"
	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// bundle is everything cells of one topology share: the offer graph,
// the standard bid book, the per-traffic-model matrices, and the
// raw-metric workspace arena pool. Bundles are immutable once built
// (the workspace's internal arena free-list is mutex-guarded), so any
// number of cells may run against one concurrently.
type bundle struct {
	world   *topo.World
	network *topo.POCNetwork
	bids    []auction.Bid
	virtual []auction.VirtualLink
	tms     map[string]*traffic.Matrix
	ws      *provision.Workspace
}

// buildBundle assembles one topology's shared state. The zoo path
// mirrors NewScenario's assembly (scaled network count floored at the
// BP count, gravity matrix scaled quadratically, external ISP at the
// four major hubs); the corpus path loads real GML files instead and
// relaxes the colocation threshold, since small corpora rarely have
// four networks meeting in one city.
func buildBundle(ts TopoSpec, cfg Config) (*bundle, error) {
	w := topo.DefaultWorld()
	var (
		nets    []topo.Network
		numBPs  = 20
		minColo = 4
		err     error
	)
	if ts.Dir != "" {
		nets, err = topo.LoadGMLCorpus(w, ts.Dir, 100)
		if err != nil {
			return nil, fmt.Errorf("fleet: topo %s: %w", ts.Name, err)
		}
		if len(nets) < numBPs {
			numBPs = len(nets)
		}
		minColo = 2
	} else {
		zoo := topo.DefaultZooConfig()
		if ts.Seed != 0 {
			zoo.Seed = ts.Seed
		}
		zoo.NumNetworks = int(float64(zoo.NumNetworks) * cfg.Scale)
		if zoo.NumNetworks < numBPs {
			zoo.NumNetworks = numBPs
		}
		nets = topo.GenerateZoo(w, zoo)
	}
	network := topo.BuildPOCNetwork(w, nets, numBPs, minColo, 0)
	if len(network.Routers) < 2 {
		return nil, fmt.Errorf("fleet: topo %s: only %d POC routers", ts.Name, len(network.Routers))
	}

	gcfg := traffic.DefaultGravityConfig()
	gcfg.TotalGbps *= cfg.Scale * cfg.Scale
	gravity := traffic.Gravity(len(network.Routers), gcfg,
		func(i int) float64 { return w.Cities[network.Routers[i]].Population },
		func(i, j int) float64 { return w.Distance(network.Routers[i], network.Routers[j]) })

	pricing := auction.DefaultLeasePricing()
	bids := auction.StandardBids(network, pricing)
	var attach []int
	for _, name := range []string{"NewYork", "London", "Tokyo", "SaoPaulo"} {
		if r := network.RouterIndex(w.CityIndex(name)); r >= 0 {
			attach = append(attach, r)
		}
	}
	if len(attach) < 2 {
		attach = []int{0, len(network.Routers) / 2}
	}
	virtual := auction.StandardVirtualLinks(network, attach, 400, 3.0, pricing)

	// Hotspot mutates its receiver, so it gets a clone; Diurnal clones
	// internally. All three matrices are fixed here so every cell sees
	// identical demand regardless of evaluation order.
	tms := map[string]*traffic.Matrix{
		"gravity": gravity,
		"hotspot": traffic.Hotspot(gravity.Clone(), 0, 0.1*gravity.Total()),
		"offpeak": traffic.Diurnal(gravity, 4),
	}

	inst := &auction.Instance{
		Network:   network,
		Bids:      bids,
		Virtual:   virtual,
		RouteOpts: provision.Options{FailureScenarios: cfg.FailureScenarios},
	}
	return &bundle{
		world:   w,
		network: network,
		bids:    bids,
		virtual: virtual,
		tms:     tms,
		ws:      inst.NewRawWorkspace(),
	}, nil
}

// runCell executes the full pipeline for one grid point: BP auction,
// provisioning, fabric activation, LMP attachment, a deterministic
// flow grid, billing, the cell's chaos schedule under its recovery
// policy, and a final settlement epoch. It returns the cell's result
// row and its exported poc-obs/v1 ledger.
//
// Everything scheduling-visible is per-cell (fabric, registry, flows);
// the only cross-cell state is the shared feasibility cache and
// workspace arena pool, both of which are determinism-safe by
// construction (see auction.Instance.Cache).
func runCell(cfg Config, shared *Shared, b *bundle, cell Cell) (*CellResult, []byte, error) {
	tm, ok := b.tms[cell.Traffic]
	if !ok {
		return nil, nil, fmt.Errorf("fleet: %s: unknown traffic model %q", cell.Key(), cell.Traffic)
	}
	reg := obs.New()
	reg.SetMeta("fleet.cell", cell.Key())

	pcfg := core.Config{
		Network:       b.network,
		TM:            tm,
		Constraint:    cell.Constraint,
		RouteOpts:     provision.Options{FailureScenarios: cfg.FailureScenarios},
		ReserveMargin: 0.02,
		Workers:       1,
		Obs:           reg,
	}
	if cfg.ColdCache {
		// A fresh external cache per cell: no cross-cell reuse, but the
		// same suppression path as the shared cache, so the two modes
		// are byte-comparable. A nil cache would fall back to the
		// auction's private memo, which records memo counters the
		// external path deliberately suppresses.
		pcfg.Cache = provision.NewFeasibilityCache()
	} else {
		pcfg.Cache = shared.Cache
		pcfg.Workspace = b.ws
	}
	p, err := core.New(pcfg)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
	}
	for _, bid := range b.bids {
		if err := p.SubmitBid(bid); err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
		}
	}
	if err := p.AddVirtualLinks(b.virtual); err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
	}
	res, err := p.RunAuction()
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: auction: %w", cell.Key(), err)
	}
	if err := p.Activate(); err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
	}

	na := len(b.network.Routers)
	if na > 6 {
		na = 6
	}
	names := make([]string, na)
	for i := 0; i < na; i++ {
		names[i] = fmt.Sprintf("lmp-%02d", i)
		if _, err := p.AttachLMP(names[i], i, peering.Policy{}); err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
		}
	}
	gold := netsim.Class{Name: "gold", Weight: 4, Price: 10}
	for i := 0; i < na; i++ {
		for j := i + 1; j < na; j++ {
			class := netsim.BestEffort
			if (i+j)%2 == 1 {
				class = gold
			}
			if _, err := p.StartFlow(names[i], names[j], 2+float64(i+j), class); err != nil {
				return nil, nil, fmt.Errorf("fleet: %s: flow %s->%s: %w", cell.Key(), names[i], names[j], err)
			}
		}
	}
	if _, err := p.BillEpoch(6 * 3600); err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
	}

	epochs := cfg.Epochs
	cr := &CellResult{
		Key:         cell.Key(),
		Topo:        cell.Topo,
		Traffic:     cell.Traffic,
		Constraint:  fmt.Sprintf("C%d", int(cell.Constraint)),
		Chaos:       cell.Chaos,
		Policy:      cell.Policy,
		Routers:     len(b.network.Routers),
		Links:       len(b.network.Links),
		Selected:    len(res.Selected),
		Checks:      res.Checks,
		TotalCost:   hexFloat(res.TotalCost),
		VirtualCost: hexFloat(res.VirtualCost),
		Surplus:     hexFloat(res.Surplus()),
		AuctionSHA:  hashAuction(res),
		Epochs:      epochs,
	}

	if cell.Chaos == "none" {
		// Quiet cell: the fabric just bills through the horizon.
		for e := 0; e < epochs; e++ {
			if _, err := p.BillEpoch(3600); err != nil {
				return nil, nil, fmt.Errorf("fleet: %s: epoch %d: %w", cell.Key(), e, err)
			}
		}
		cr.MinDelivered = hexFloat(1)
	} else {
		selected := p.Fabric().SelectedLinks()
		if len(selected) == 0 {
			return nil, nil, fmt.Errorf("fleet: %s: no selected links to fail", cell.Key())
		}
		firstLink := selected[0]
		for _, id := range selected {
			if id < firstLink {
				firstLink = id
			}
		}
		var sched chaos.Schedule
		switch cell.Chaos {
		case "bp-outage":
			repair := epochs - 3
			if repair < 2 {
				repair = 2
			}
			sched = chaos.SingleBPOutage(b.network.Links[firstLink].BP, 1, repair)
		case "flap":
			sched = chaos.FlappingLink(firstLink, 1, 1, 1, 2)
		case "random":
			sched = chaos.Random(17, epochs, selected, 0.15, 2)
		default:
			return nil, nil, fmt.Errorf("fleet: %s: unknown chaos schedule %q", cell.Key(), cell.Chaos)
		}
		pol, err := chaos.ParsePolicy(cell.Policy)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
		}
		eng, err := chaos.New(p, sched, chaos.DefaultRecovery(pol))
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
		}
		rep, err := eng.Run(epochs)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: chaos: %w", cell.Key(), err)
		}
		cr.MinDelivered = hexFloat(rep.MinDelivered())
		cr.Reauctions = rep.Reauctions
		repJSON, err := json.Marshal(rep)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
		}
		sum := sha256.Sum256(repJSON)
		cr.ChaosSHA = hex.EncodeToString(sum[:])
	}
	if _, err := p.BillEpoch(3600); err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
	}

	doc, err := reg.MarshalJSON()
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: obs export: %w", cell.Key(), err)
	}
	sum := sha256.Sum256(doc)
	cr.ObsSHA = hex.EncodeToString(sum[:])
	cr.Digest, err = cr.computeDigest(doc)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: %s: %w", cell.Key(), err)
	}
	return cr, doc, nil
}

// hexFloat renders a float with full bit fidelity ('x' keeps every
// mantissa bit, unlike %g), so report bytes can never drift through
// formatting.
func hexFloat(x float64) string {
	return strconv.FormatFloat(x, 'x', -1, 64)
}

// hashAuction digests an auction outcome the same way the seed golden
// tests do: sorted selected IDs plus full-precision payments,
// alternatives and costs.
func hashAuction(res *auction.Result) string {
	ids := make([]int, 0, len(res.Selected))
	for id := range res.Selected {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h := sha256.New()
	for _, id := range ids {
		fmt.Fprintf(h, "s%d,", id)
	}
	for a := range res.Payments {
		fmt.Fprintf(h, "p%d=%s,a%d=%s,c%d=%s;", a, hexFloat(res.Payments[a]),
			a, hexFloat(res.Alternative[a]), a, hexFloat(res.BPCost[a]))
	}
	fmt.Fprintf(h, "tc=%s,vc=%s,ck=%d", hexFloat(res.TotalCost), hexFloat(res.VirtualCost), res.Checks)
	return hex.EncodeToString(h.Sum(nil))
}
