package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The resume journal is one directory: a manifest pinning the sweep's
// parameters and grid, plus one file per completed cell. Cell files
// are written atomically (tmp + rename) as each cell finishes, so a
// killed sweep leaves either a complete, digest-verified entry or
// nothing — never a torn one. Resuming replays the journal into the
// result slots and re-runs only the missing cells; because every cell
// is deterministic, the merged report is byte-identical to an
// uninterrupted run.

const stateSchema = "poc-fleet-state/v1"

type stateManifest struct {
	Schema           string `json:"schema"`
	Scale            string `json:"scale"` // hex float
	Epochs           int    `json:"epochs"`
	FailureScenarios int    `json:"failure_scenarios"`
	GridSHA          string `json:"grid_sha"`
}

// stateEntry is one persisted cell: its result row and its exported
// obs ledger, exactly as they will appear in the merged report.
type stateEntry struct {
	Key    string          `json:"key"`
	Result *CellResult     `json:"result"`
	Obs    json.RawMessage `json:"obs"`
}

// gridSHA fingerprints the expanded cell list so a journal can never
// be replayed into a different sweep.
func gridSHA(cells []Cell) string {
	h := sha256.New()
	for _, c := range cells {
		fmt.Fprintf(h, "%s\n", c.Key())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cellFile names a cell's journal file. Keys contain characters that
// are hostile to filesystems, so the name is a truncated digest of the
// key; the key itself is verified inside the entry on load.
func cellFile(dir, key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(dir, hex.EncodeToString(sum[:12])+".json")
}

// openState prepares dir for the given sweep: it creates the directory
// and manifest if absent, and errors if an existing manifest pins
// different parameters or a different grid (a stale journal must never
// silently merge into the wrong sweep).
func openState(dir string, cells []Cell, cfg Config) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: state: %w", err)
	}
	want := stateManifest{
		Schema:           stateSchema,
		Scale:            hexFloat(cfg.Scale),
		Epochs:           cfg.Epochs,
		FailureScenarios: cfg.FailureScenarios,
		GridSHA:          gridSHA(cells),
	}
	path := filepath.Join(dir, "manifest.json")
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		blob, err := json.MarshalIndent(&want, "", "  ")
		if err != nil {
			return err
		}
		return atomicWrite(path, append(blob, '\n'))
	}
	if err != nil {
		return fmt.Errorf("fleet: state: %w", err)
	}
	var got stateManifest
	if err := json.Unmarshal(raw, &got); err != nil {
		return fmt.Errorf("fleet: state: corrupt manifest %s: %w", path, err)
	}
	if got != want {
		return fmt.Errorf("fleet: state dir %s belongs to a different sweep (manifest %+v, want %+v)", dir, got, want)
	}
	return nil
}

// loadState fills completed cells from the journal. Each entry's key
// must match its slot and its digest must recompute from the persisted
// row and obs document; any mismatch is an error, not a skip — a
// corrupt journal must be deleted deliberately, not papered over.
func loadState(dir string, cells []Cell, results []*CellResult, obsDocs [][]byte) (int, error) {
	loaded := 0
	for i, c := range cells {
		raw, err := os.ReadFile(cellFile(dir, c.Key()))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return loaded, fmt.Errorf("fleet: state: %w", err)
		}
		var e stateEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return loaded, fmt.Errorf("fleet: state: corrupt entry for %s: %w", c.Key(), err)
		}
		if e.Key != c.Key() || e.Result == nil || e.Result.Key != c.Key() {
			return loaded, fmt.Errorf("fleet: state: entry key %q does not match cell %q", e.Key, c.Key())
		}
		digest, err := e.Result.computeDigest(e.Obs)
		if err != nil {
			return loaded, err
		}
		if digest != e.Result.Digest {
			return loaded, fmt.Errorf("fleet: state: digest mismatch for %s (journal corrupt or code drift)", c.Key())
		}
		results[i] = e.Result
		obsDocs[i] = e.Obs
		loaded++
	}
	return loaded, nil
}

// saveCell journals one completed cell atomically.
func saveCell(dir string, res *CellResult, obsDoc []byte) error {
	blob, err := json.Marshal(&stateEntry{Key: res.Key, Result: res, Obs: obsDoc})
	if err != nil {
		return err
	}
	return atomicWrite(cellFile(dir, res.Key), blob)
}

// atomicWrite lands data at path via a same-directory tmp file and
// rename, so readers (and resumed sweeps) never observe a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
