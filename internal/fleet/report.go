package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// ReportSchema identifies a merged fleet report document.
const ReportSchema = "poc-fleet/v1"

// CellResult is one row of the merged report. Every float is rendered
// as a full-precision hex string (strconv 'x' format): the report is
// compared byte-for-byte across worker counts and resumes, so no field
// may depend on a formatter's rounding.
type CellResult struct {
	Key        string `json:"key"`
	Topo       string `json:"topo"`
	Traffic    string `json:"traffic"`
	Constraint string `json:"constraint"`
	Chaos      string `json:"chaos"`
	Policy     string `json:"policy"`

	Routers     int    `json:"routers"`
	Links       int    `json:"links"`
	Selected    int    `json:"selected"`
	Checks      int    `json:"checks"`
	TotalCost   string `json:"total_cost"`
	VirtualCost string `json:"virtual_cost"`
	Surplus     string `json:"surplus"`
	AuctionSHA  string `json:"auction_sha"`

	Epochs       int    `json:"epochs"`
	MinDelivered string `json:"min_delivered"`
	Reauctions   int    `json:"reauctions"`
	ChaosSHA     string `json:"chaos_sha,omitempty"`

	ObsSHA string `json:"obs_sha"`
	// Digest covers every other field plus the cell's full obs ledger;
	// the resume journal verifies it on load, so a corrupted or stale
	// state file can never silently poison a merged report.
	Digest string `json:"digest"`
}

// computeDigest hashes the result row (with Digest blanked) together
// with the cell's exported obs document.
func (r *CellResult) computeDigest(obsDoc []byte) (string, error) {
	clone := *r
	clone.Digest = ""
	payload, err := json.Marshal(&clone)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(payload)
	h.Write(obsDoc)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Report is the canonical merged fleet report: results sorted by cell
// key, plus the merged poc-obs/v1+cells ledger. Bytes() is the
// byte-stability contract — identical for -workers 1 vs N, run to
// run, and across interrupt/resume.
type Report struct {
	Schema           string          `json:"schema"`
	Scale            string          `json:"scale"` // hex float
	Epochs           int             `json:"epochs"`
	FailureScenarios int             `json:"failure_scenarios"`
	Cells            int             `json:"cells"`
	Results          []*CellResult   `json:"results"`
	Ledger           json.RawMessage `json:"ledger"`
}

// Bytes renders the canonical report document.
func (r *Report) Bytes() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Hash returns the sha256 of the canonical report bytes.
func (r *Report) Hash() (string, error) {
	b, err := r.Bytes()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
