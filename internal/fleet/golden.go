package fleet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// GoldenSchema identifies a pinned fleet fixture: the report hash plus
// every cell's digest, so drift diagnostics can name the exact cell
// that moved instead of just "hash changed".
const GoldenSchema = "poc-fleet-golden/v1"

// Golden is the committed fixture format (testdata/fleet_golden.json).
type Golden struct {
	Schema    string            `json:"schema"`
	Grid      string            `json:"grid"`
	Scale     string            `json:"scale"`
	ReportSHA string            `json:"report_sha"`
	Cells     map[string]string `json:"cells"` // cell key -> digest
}

// Golden pins this report as a fixture.
func (r *Report) Golden(gridName string) (*Golden, error) {
	h, err := r.Hash()
	if err != nil {
		return nil, err
	}
	g := &Golden{
		Schema:    GoldenSchema,
		Grid:      gridName,
		Scale:     r.Scale,
		ReportSHA: h,
		Cells:     make(map[string]string, len(r.Results)),
	}
	for _, res := range r.Results {
		g.Cells[res.Key] = res.Digest
	}
	return g, nil
}

// WriteFile persists the fixture canonically (sorted keys, trailing
// newline).
func (g *Golden) WriteFile(path string) error {
	blob, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadGolden reads and validates a committed fixture.
func LoadGolden(path string) (*Golden, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(raw, &g); err != nil {
		return nil, fmt.Errorf("fleet: golden %s: %w", path, err)
	}
	if g.Schema != GoldenSchema {
		return nil, fmt.Errorf("fleet: golden %s: schema %q, want %q", path, g.Schema, GoldenSchema)
	}
	return &g, nil
}

// Diff compares a fresh report against the fixture and returns one
// human-readable line per divergence, naming the exact drifted cell.
// Empty means bit-identical.
func (g *Golden) Diff(r *Report) ([]string, error) {
	var diffs []string
	if r.Scale != g.Scale {
		diffs = append(diffs, fmt.Sprintf("scale %s, fixture pinned %s", r.Scale, g.Scale))
	}
	seen := make(map[string]bool, len(r.Results))
	for _, res := range r.Results {
		seen[res.Key] = true
		want, ok := g.Cells[res.Key]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("cell %s: not in fixture (grid grew?)", res.Key))
			continue
		}
		if res.Digest != want {
			diffs = append(diffs, fmt.Sprintf("cell %s: digest %s, want %s", res.Key, res.Digest, want))
		}
	}
	missing := make([]string, 0)
	for key := range g.Cells {
		if !seen[key] {
			missing = append(missing, key)
		}
	}
	sort.Strings(missing)
	for _, key := range missing {
		diffs = append(diffs, fmt.Sprintf("cell %s: in fixture but not in report (grid shrank?)", key))
	}
	h, err := r.Hash()
	if err != nil {
		return nil, err
	}
	if h != g.ReportSHA {
		diffs = append(diffs, fmt.Sprintf("report hash %s, want %s", h, g.ReportSHA))
	}
	return diffs, nil
}
