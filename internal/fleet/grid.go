package fleet

import (
	"fmt"
	"sort"

	"github.com/public-option/poc/internal/provision"
)

// TopoSpec names one topology axis value: either a synthetic
// TopologyZoo instance (Seed selects the generator seed, 0 = the
// Figure-2 seed) or a directory of real GML files (Dir, which
// overrides Seed).
type TopoSpec struct {
	Name string
	Seed int64
	Dir  string
}

// GridSpec is the cross product the fleet sweeps. Every axis must be
// non-empty; Expand materializes the cells.
type GridSpec struct {
	Topos       []TopoSpec
	Traffics    []string // "gravity", "hotspot", "offpeak"
	Constraints []provision.Constraint
	Chaos       []string // "none", "bp-outage", "flap", "random"
	Policies    []string // "reroute", "recall", "reauction"
}

// Cell is one grid point: a full pipeline run (auction → provisioning
// → fabric → chaos → billing) under one combination of axis values.
type Cell struct {
	Topo       string
	Traffic    string
	Constraint provision.Constraint
	Chaos      string
	Policy     string
}

// Key is the cell's canonical identity: merged reports sort by it, the
// resume journal files are named after it, and golden fixtures pin
// digests against it.
func (c Cell) Key() string {
	return fmt.Sprintf("topo=%s,tm=%s,c=C%d,chaos=%s,policy=%s",
		c.Topo, c.Traffic, int(c.Constraint), c.Chaos, c.Policy)
}

// Expand materializes the cross product, sorted by Key. Chaos "none"
// collapses the policy axis to "reroute": without faults the recovery
// ladder never engages, so crossing policies would only duplicate
// cells under different keys.
func (g GridSpec) Expand() []Cell {
	byKey := map[string]Cell{}
	for _, ts := range g.Topos {
		for _, tm := range g.Traffics {
			for _, c := range g.Constraints {
				for _, ch := range g.Chaos {
					policies := g.Policies
					if ch == "none" {
						policies = []string{"reroute"}
					}
					for _, pol := range policies {
						cell := Cell{Topo: ts.Name, Traffic: tm, Constraint: c, Chaos: ch, Policy: pol}
						byKey[cell.Key()] = cell
					}
				}
			}
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cells := make([]Cell, len(keys))
	for i, k := range keys {
		cells[i] = byKey[k]
	}
	return cells
}

// topoByName indexes the spec's topology axis for cell resolution.
func (g GridSpec) topoByName() map[string]TopoSpec {
	out := make(map[string]TopoSpec, len(g.Topos))
	for _, ts := range g.Topos {
		out[ts.Name] = ts
	}
	return out
}

// GoldenGrid is the pinned 12-cell grid the CI fleet-smoke job and the
// golden fixture run: Figure-2 topology, two traffic models, all three
// constraints, a quiet cell and a BP outage per combination.
func GoldenGrid() GridSpec {
	return GridSpec{
		Topos:       []TopoSpec{{Name: "fig2"}},
		Traffics:    []string{"gravity", "hotspot"},
		Constraints: []provision.Constraint{provision.Constraint1, provision.Constraint2, provision.Constraint3},
		Chaos:       []string{"none", "bp-outage"},
		Policies:    []string{"recall"},
	}
}

// DefaultGrid is the standing 24-cell sweep: two topologies (the
// Figure-2 seed and an alternate zoo), two traffic models, all three
// constraints, two chaos schedules under the recall policy.
func DefaultGrid() GridSpec {
	return GridSpec{
		Topos:       []TopoSpec{{Name: "fig2"}, {Name: "zoo-17", Seed: 17}},
		Traffics:    []string{"gravity", "hotspot"},
		Constraints: []provision.Constraint{provision.Constraint1, provision.Constraint2, provision.Constraint3},
		Chaos:       []string{"bp-outage", "random"},
		Policies:    []string{"recall"},
	}
}
