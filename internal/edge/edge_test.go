package edge

import (
	"math"
	"testing"

	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/topo"
)

// lineNet: routers 0-1-2-3 in a line, 10 Gbps, 100 km per hop.
func lineNet() *topo.POCNetwork {
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 4)},
		BPs:     make([]topo.BP, 3),
		Routers: []int{0, 1, 2, 3},
	}
	for i := 0; i < 3; i++ {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: i, BP: i, A: i, B: i + 1, Capacity: 10, DistanceKm: 100,
		})
	}
	return p
}

func setup(t *testing.T) (*netsim.Fabric, *Service, netsim.EndpointID, netsim.EndpointID) {
	t.Helper()
	f := netsim.New(lineNet(), nil)
	origin, err := f.Attach("megaflix", netsim.CSPEndpoint, 0)
	if err != nil {
		t.Fatal(err)
	}
	consumer, err := f.Attach("lmp-far", netsim.LMPEndpoint, 3)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService("poc-cdn", f, 500)
	if err != nil {
		t.Fatal(err)
	}
	return f, svc, origin, consumer
}

func TestNewServiceValidation(t *testing.T) {
	f := netsim.New(lineNet(), nil)
	if _, err := NewService("", f, 1); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewService("x", nil, 1); err == nil {
		t.Fatal("nil fabric accepted")
	}
	if _, err := NewService("x", f, -1); err == nil {
		t.Fatal("negative price accepted")
	}
}

func TestServeFromOriginWithoutCaches(t *testing.T) {
	_, svc, origin, consumer := setup(t)
	d, err := svc.Serve("megaflix", origin, consumer, 2, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if d.FromCache {
		t.Fatal("no caches deployed, yet served from cache")
	}
	if len(d.Flow.Links) != 3 {
		t.Fatalf("origin delivery spans %d links, want 3", len(d.Flow.Links))
	}
}

func TestServeFromNearestCache(t *testing.T) {
	_, svc, origin, consumer := setup(t)
	if _, err := svc.Deploy("megaflix", 2); err != nil {
		t.Fatal(err)
	}
	d, err := svc.Serve("megaflix", origin, consumer, 2, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if !d.FromCache {
		t.Fatal("cache at router 2 should serve the consumer at 3")
	}
	if len(d.Flow.Links) != 1 {
		t.Fatalf("cache delivery spans %d links, want 1", len(d.Flow.Links))
	}
}

func TestCachesAreOpenToEveryCSP(t *testing.T) {
	_, svc, _, _ := setup(t)
	if _, err := svc.Deploy("megaflix", 1); err != nil {
		t.Fatal(err)
	}
	// A competitor deploys at the same router on identical terms.
	if _, err := svc.Deploy("rivalstream", 1); err != nil {
		t.Fatal(err)
	}
	if svc.MonthlyFee("megaflix") != svc.MonthlyFee("rivalstream") {
		t.Fatal("same deployment, different fees")
	}
	if svc.MonthlyFee("megaflix") != 500 {
		t.Fatalf("fee = %v, want posted 500", svc.MonthlyFee("megaflix"))
	}
}

func TestDeployValidation(t *testing.T) {
	_, svc, _, _ := setup(t)
	if _, err := svc.Deploy("", 1); err == nil {
		t.Fatal("anonymous cache accepted")
	}
	if _, err := svc.Deploy("megaflix", 99); err == nil {
		t.Fatal("out-of-range router accepted")
	}
	if _, err := svc.Deploy("megaflix", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Deploy("megaflix", 1); err == nil {
		t.Fatal("duplicate cache accepted")
	}
	caches := svc.Caches("megaflix")
	if len(caches) != 1 || caches[0] != 1 {
		t.Fatalf("caches = %v", caches)
	}
}

func TestServeFallsBackToOriginWhenCachePathSaturated(t *testing.T) {
	f, svc, origin, consumer := setup(t)
	if _, err := svc.Deploy("megaflix", 2); err != nil {
		t.Fatal(err)
	}
	// Saturate link 2 (router 2-3) so the cache cannot reach the
	// consumer... which also blocks the origin path. Instead saturate
	// only partially: demand larger than cache-path residual but the
	// origin path shares that link, so both fail; use a demand the
	// anycast rejects entirely by filling link 2 completely with
	// another flow, then expect an error from Serve.
	blocker, err := f.Attach("blocker", netsim.CSPEndpoint, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.StartFlow(blocker, consumer, 10, netsim.BestEffort); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Serve("megaflix", origin, consumer, 2, netsim.BestEffort); err == nil {
		t.Fatal("delivery across a saturated cut should fail")
	}
}

func TestOffloadAccounting(t *testing.T) {
	_, svc, origin, consumer := setup(t)
	if _, err := svc.Deploy("megaflix", 2); err != nil {
		t.Fatal(err)
	}
	var ds []*Delivery
	d1, err := svc.Serve("megaflix", origin, consumer, 2, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	ds = append(ds, d1)
	// Second delivery exceeds the cache path residual (10-2=8): send 8
	// so it still fits from cache.
	d2, err := svc.Serve("megaflix", origin, consumer, 8, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	ds = append(ds, d2)
	rep := Offload(ds)
	if rep.Deliveries != 2 || rep.FromCache != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if math.Abs(rep.CacheFraction()-1.0) > 1e-9 {
		t.Fatalf("cache fraction = %v, want 1", rep.CacheFraction())
	}
	// Link-Gbps with caches: 2×1 + 8×1 = 10. Without caches it would
	// have been 3 hops each: 30.
	if rep.LinkGbpsNow != 10 {
		t.Fatalf("link-Gbps = %v, want 10", rep.LinkGbpsNow)
	}
}

func TestOffloadEmptyAndMixed(t *testing.T) {
	if f := (OffloadReport{}).CacheFraction(); f != 0 {
		t.Fatalf("empty fraction = %v", f)
	}
	_, svc, origin, consumer := setup(t)
	d, err := svc.Serve("megaflix", origin, consumer, 2, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	rep := Offload([]*Delivery{d})
	if rep.FromCache != 0 || rep.OriginGbps != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.CacheFraction() != 0 {
		t.Fatalf("fraction = %v", rep.CacheFraction())
	}
}
