// Package edge implements the open edge services of §3.1–§3.2: CDN
// caches and other application-enhancement functions deployed at POC
// routers. The paper allows the POC (and LMPs) to "provide open CDN
// services (on a fee for service basis) or allow CSPs to install
// their own CDNs or similar network functions (for a set fee)"; what
// is forbidden (§3.4 conditions (ii) and (iii)) is offering these
// selectively. This package therefore enforces openness structurally:
// every service has one posted price, and any CSP can deploy at any
// router for that price.
//
// The model is request-level: a CSP's content is served either from
// the nearest cache (offloading the backbone) or from its origin
// attachment. Offload accounting quantifies the §2.4 observation that
// "most traffic is first handled by CDN nodes at the edge".
package edge

import (
	"fmt"
	"sort"

	"github.com/public-option/poc/internal/netsim"
)

// Service is one open edge service (e.g. the POC's managed CDN). The
// zero value is not usable; use NewService.
type Service struct {
	name   string
	fabric *netsim.Fabric
	// postedPrice is the monthly fee per cache instance, identical
	// for every customer (openness is structural, not policy).
	postedPrice float64

	caches map[string][]cache // CSP name -> deployed caches
}

type cache struct {
	router   int
	endpoint netsim.EndpointID
}

// NewService creates an open edge service on the fabric with a posted
// per-cache monthly price.
func NewService(name string, fabric *netsim.Fabric, postedPrice float64) (*Service, error) {
	if name == "" {
		return nil, fmt.Errorf("edge: service needs a name")
	}
	if fabric == nil {
		return nil, fmt.Errorf("edge: nil fabric")
	}
	if postedPrice < 0 {
		return nil, fmt.Errorf("edge: negative posted price")
	}
	return &Service{
		name:        name,
		fabric:      fabric,
		postedPrice: postedPrice,
		caches:      map[string][]cache{},
	}, nil
}

// PostedPrice returns the public per-cache monthly fee.
func (s *Service) PostedPrice() float64 { return s.postedPrice }

// Deploy installs a cache for the CSP at the given POC router. Any
// CSP may deploy anywhere; there is no admission policy beyond the
// posted fee (this is the openness requirement).
func (s *Service) Deploy(csp string, router int) (netsim.EndpointID, error) {
	if csp == "" {
		return 0, fmt.Errorf("edge: cache needs an owning CSP")
	}
	for _, c := range s.caches[csp] {
		if c.router == router {
			return 0, fmt.Errorf("edge: %s already has a %s cache at router %d", csp, s.name, router)
		}
	}
	ep, err := s.fabric.Attach(fmt.Sprintf("%s/%s@r%d", s.name, csp, router), netsim.CSPEndpoint, router)
	if err != nil {
		return 0, err
	}
	s.caches[csp] = append(s.caches[csp], cache{router: router, endpoint: ep})
	group := s.groupName(csp)
	if err := s.fabric.RegisterAnycast(group, ep); err != nil {
		return 0, err
	}
	return ep, nil
}

func (s *Service) groupName(csp string) string { return s.name + "/" + csp }

// Caches returns the routers hosting caches for the CSP, sorted.
func (s *Service) Caches(csp string) []int {
	var out []int
	for _, c := range s.caches[csp] {
		out = append(out, c.router)
	}
	sort.Ints(out)
	return out
}

// MonthlyFee returns the CSP's bill: posted price times deployed
// caches. The identical formula applies to every CSP.
func (s *Service) MonthlyFee(csp string) float64 {
	return s.postedPrice * float64(len(s.caches[csp]))
}

// Delivery describes how one content request-aggregate was served.
type Delivery struct {
	Flow      *netsim.Flow
	FromCache bool
	Server    netsim.EndpointID
}

// Serve delivers gbps of the CSP's content to the consumer endpoint:
// from the nearest cache when one is reachable, falling back to the
// CSP's origin attachment. The returned Delivery records which server
// was chosen; the flow is admitted on the fabric as usual.
func (s *Service) Serve(csp string, origin netsim.EndpointID, consumer netsim.EndpointID, gbps float64, class netsim.Class) (*Delivery, error) {
	if len(s.caches[csp]) > 0 {
		// Anycast delivery from the nearest cache. Note the direction:
		// content flows cache → consumer, so the flow source is the
		// cache; StartAnycastFlow picks the nearest member to the
		// consumer.
		fl, member, err := s.fabric.StartAnycastFlow(consumer, s.groupName(csp), gbps, class)
		if err == nil {
			return &Delivery{Flow: fl, FromCache: true, Server: member}, nil
		}
		// Caches unreachable or saturated: fall through to origin.
	}
	fl, err := s.fabric.StartFlow(origin, consumer, gbps, class)
	if err != nil {
		return nil, fmt.Errorf("edge: origin delivery failed: %w", err)
	}
	return &Delivery{Flow: fl, FromCache: false, Server: origin}, nil
}

// OffloadReport quantifies how much backbone bandwidth the caches
// save for a CSP's delivery set.
type OffloadReport struct {
	Deliveries  int
	FromCache   int
	CacheGbps   float64 // demand served from caches
	OriginGbps  float64 // demand served from the origin
	LinkGbpsNow float64 // Σ (allocated × path length) actually reserved
}

// Offload summarizes a set of deliveries.
func Offload(ds []*Delivery) OffloadReport {
	var r OffloadReport
	for _, d := range ds {
		r.Deliveries++
		if d.FromCache {
			r.FromCache++
			r.CacheGbps += d.Flow.Allocated
		} else {
			r.OriginGbps += d.Flow.Allocated
		}
		r.LinkGbpsNow += d.Flow.Allocated * float64(len(d.Flow.Links))
	}
	return r
}

// CacheFraction returns the fraction of demand served from caches —
// the paper's §2.4 cites operator estimates around 66–70% for today's
// private CDN infrastructure.
func (r OffloadReport) CacheFraction() float64 {
	total := r.CacheGbps + r.OriginGbps
	if total == 0 {
		return 0
	}
	return r.CacheGbps / total
}
