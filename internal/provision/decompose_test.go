package provision

import (
	"math/rand"
	"testing"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// splitNet builds a border-separable POC network: two memoNet-style
// rings (nA and nB routers, plus chords) with no links between them.
func splitNet(rng *rand.Rand, nA, nB, chords int) *topo.POCNetwork {
	n := nA + nB
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, n)},
		Routers: make([]int, n),
	}
	for i := range p.Routers {
		p.Routers[i] = i
	}
	caps := []float64{20, 40, 80}
	add := func(a, b int) {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: len(p.Links), BP: len(p.Links) % 5, A: a, B: b,
			Capacity:   caps[rng.Intn(len(caps))],
			DistanceKm: 50 + rng.Float64()*450,
		})
	}
	ring := func(lo, n int) {
		for i := 0; i < n; i++ {
			add(lo+i, lo+(i+1)%n)
		}
		for i := 0; i < chords; i++ {
			a, b := lo+rng.Intn(n), lo+rng.Intn(n)
			if a != b {
				add(a, b)
			}
		}
	}
	ring(0, nA)
	ring(nA, nB)
	p.BPs = make([]topo.BP, 5)
	return p
}

// sideTM places demand pairs strictly within [lo,lo+n).
func sideTM(rng *rand.Rand, tm *traffic.Matrix, lo, n, pairs int, gbps float64) {
	for i := 0; i < pairs; i++ {
		a, b := lo+rng.Intn(n), lo+rng.Intn(n)
		if a != b {
			tm.Set(a, b, tm.At(a, b)+gbps*(0.5+rng.Float64()))
		}
	}
}

// TestDecomposedMatchesCold prunes a border-separable instance step by
// step and asserts the decomposed path returns the cold answer for
// every constraint, worker count and scenario budget — including
// probes that drive one side infeasible. Moves is the documented
// exception: the merged value is the components' sum, an upper bound
// on the cold maximum.
func TestDecomposedMatchesCold(t *testing.T) {
	decompositions := int64(0)
	for _, workers := range []int{1, 4} {
		for seed := int64(1); seed <= 2; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p := splitNet(rng, 12, 10, 6)
			nA := 12
			tm := traffic.NewMatrix(len(p.Routers))
			sideTM(rng, tm, 0, nA, 6, 7)
			sideTM(rng, tm, nA, len(p.Routers)-nA, 5, 7)
			ws := NewWorkspace(p, Options{})

			include := linkset.All(len(p.Links))
			for step := 0; step < 14; step++ {
				for _, c := range []Constraint{Constraint1, Constraint2, Constraint3} {
					for _, fs := range []int{0, 3} {
						opts := Options{Workers: workers, Workspace: ws, FailureScenarios: fs}
						// Fresh caches and a memo-free cold path per probe so
						// each comparison is decomposed-vs-cold, not hit replay.
						cold := Options{Workers: workers, FailureScenarios: fs}
						wantOK, wantR := Check(p, include, tm, c, cold)
						want := summarize(p, wantOK, wantR)
						wantCoreOK, wantCore := CheckCore(p, include, tm, c, cold)

						fc := NewFeasibilityCache()
						gotOK, got := fc.CheckDecomposed(p, include, tm, c, opts, 0)
						if gotOK != wantOK {
							t.Fatalf("w=%d seed=%d step=%d %v fs=%d: verdict %v != cold %v",
								workers, seed, step, c, fs, gotOK, wantOK)
						}
						mask := func(s CacheSummary) CacheSummary { s.Moves = 0; return s }
						if mask(got) != mask(want) {
							t.Fatalf("w=%d seed=%d step=%d %v fs=%d: summary %+v != cold %+v",
								workers, seed, step, c, fs, got, want)
						}
						if got.Moves < want.Moves || got.Moves >= 512 {
							t.Fatalf("w=%d seed=%d step=%d %v fs=%d: moves bound %d vs cold %d",
								workers, seed, step, c, fs, got.Moves, want.Moves)
						}

						fc2 := NewFeasibilityCache()
						gotCoreOK, gotCore := fc2.CheckCoreDecomposed(p, include, tm, c, opts, 0)
						if gotCoreOK != wantCoreOK || !sameCore(gotCore, wantCore) {
							t.Fatalf("w=%d seed=%d step=%d %v fs=%d: core mismatch", workers, seed, step, c, fs)
						}
						decompositions += fc.Stats().Decompositions + fc2.Stats().Decompositions
					}
				}
				// Prune 1–2 random links for the next probe.
				ids := include.AppendIDs(nil)
				for i := 0; i < 1+rng.Intn(2) && len(ids) > 0; i++ {
					include.Remove(ids[rng.Intn(len(ids))])
				}
			}
		}
	}
	if decompositions == 0 {
		t.Fatal("decomposed path never engaged — test is vacuous")
	}
	t.Logf("decompositions: %d", decompositions)
}

// TestDecomposedFallsBackOnCrossDemand pins the certificate: demand
// crossing the border (which no enabled link can carry) must disable
// decomposition, and on a connected instance decomposition must never
// engage — both still returning cold answers.
func TestDecomposedFallsBackOnCrossDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := splitNet(rng, 8, 8, 4)
	tm := traffic.NewMatrix(len(p.Routers))
	sideTM(rng, tm, 0, 8, 4, 5)
	tm.Set(2, 11, 3) // crosses the border: unroutable, but also un-decomposable
	ws := NewWorkspace(p, Options{})

	for _, c := range []Constraint{Constraint1, Constraint2} {
		fc := NewFeasibilityCache()
		gotOK, got := fc.CheckDecomposed(p, nil, tm, c, Options{Workspace: ws}, 0)
		wantOK, wantR := Check(p, nil, tm, c, Options{})
		want := summarize(p, wantOK, wantR)
		if gotOK != wantOK || got != want {
			t.Fatalf("%v: cross-demand answer %+v != cold %+v", c, got, want)
		}
		if n := fc.Stats().Decompositions; n != 0 {
			t.Fatalf("%v: decomposed %d probes despite cross-component demand", c, n)
		}
	}

	// Connected network: partition has one component, never decomposes.
	pc := memoNet(rng, 12, 8)
	tmc := memoTM(rng, 12, 5, 6)
	fc := NewFeasibilityCache()
	fc.CheckDecomposed(pc, nil, tmc, Constraint2, Options{}, 0)
	if n := fc.Stats().Decompositions; n != 0 {
		t.Fatalf("connected instance decomposed %d probes", n)
	}
}

// TestDecomposedSharesCache verifies the decomposed entry points store
// the merged result under the global key (a second probe is a pure
// hit) and that component sub-results are themselves cached and reused
// across probes that only touch the other region.
func TestDecomposedSharesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := splitNet(rng, 10, 10, 5)
	tm := traffic.NewMatrix(len(p.Routers))
	sideTM(rng, tm, 0, 10, 4, 6)
	sideTM(rng, tm, 10, 10, 4, 6)
	ws := NewWorkspace(p, Options{})
	ws.SetMemoCapacity(0) // isolate fc behaviour from the recheck memo
	opts := Options{Workspace: ws}

	fc := NewFeasibilityCache()
	_, first := fc.CheckDecomposed(p, nil, tm, Constraint1, opts, 0)
	hits := fc.Hits()
	_, again := fc.CheckDecomposed(p, nil, tm, Constraint1, opts, 0)
	if first != again {
		t.Fatalf("replay diverged: %+v vs %+v", first, again)
	}
	if fc.Hits() != hits+1 {
		t.Fatal("second decomposed probe was not a global-key hit")
	}

	// Prune one side-B link: side A's sub-problem is unchanged, so its
	// component entry must hit while side B recomputes.
	var bLink int
	for _, l := range p.Links {
		if l.A >= 10 {
			bLink = l.ID
			break
		}
	}
	include := linkset.All(len(p.Links))
	include.Remove(bLink)
	misses := fc.Misses()
	hits = fc.Hits()
	fc.CheckDecomposed(p, include, tm, Constraint1, opts, 0)
	if fc.Hits() <= hits {
		t.Fatalf("side-A component entry did not hit (hits %d -> %d, misses %d -> %d)",
			hits, fc.Hits(), misses, fc.Misses())
	}
}
