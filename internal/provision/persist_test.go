package provision

import (
	"bytes"
	"testing"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/traffic"
)

func TestCachePersistRoundtrip(t *testing.T) {
	p := shaveNet(10, 10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)
	var probes []*linkset.Set
	for i := 0; i < len(p.Links); i++ {
		probes = append(probes, linkset.FromIDs([]int{i}, len(p.Links)))
	}
	probes = append(probes, nil, linkset.New(len(p.Links))) // feasible-all and empty-infeasible

	src := NewFeasibilityCache()
	want := make([]CacheSummary, len(probes))
	wantCore := make([]*linkset.Set, len(probes))
	for i, s := range probes {
		_, want[i] = src.Check(p, s, tm, Constraint1, Options{}, 7)
		_, wantCore[i] = src.CheckCore(p, s, tm, Constraint1, Options{}, 7)
	}

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Byte-stable: saving the same contents again yields the same bytes.
	var buf2 bytes.Buffer
	if err := src.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two saves of identical contents differ")
	}

	dst := NewFeasibilityCache()
	loaded, err := dst.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != src.Len() || dst.Len() != src.Len() {
		t.Fatalf("loaded %d entries, want %d (dst len %d)", loaded, src.Len(), dst.Len())
	}

	// Every probe must now hit with the identical summary and core.
	misses := dst.Misses()
	for i, s := range probes {
		_, sum := dst.Check(p, s, tm, Constraint1, Options{}, 7)
		if sum != want[i] {
			t.Fatalf("probe %d: warm summary %+v != cold %+v", i, sum, want[i])
		}
		_, core := dst.CheckCore(p, s, tm, Constraint1, Options{}, 7)
		if !sameCore(core, wantCore[i]) {
			t.Fatalf("probe %d: warm core mismatch", i)
		}
	}
	if dst.Misses() != misses {
		t.Fatalf("warm cache recomputed %d probes", dst.Misses()-misses)
	}
}

// TestCachePersistShaveMemo pins the kind-2 frames: shave results
// survive a save/load cycle, replay without recomputing, and return
// private copies the caller may mutate.
func TestCachePersistShaveMemo(t *testing.T) {
	p := shaveNet(10, 10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)
	start := linkset.All(len(p.Links))
	shavedSet := linkset.FromIDs([]int{0, 2}, len(p.Links))

	src := NewFeasibilityCache()
	got := src.Shaved(p, start, tm, Constraint1, Options{}, 7, func() *linkset.Set { return shavedSet })
	if !sameCore(got, shavedSet) {
		t.Fatal("miss did not return the computed set")
	}
	if st := src.Stats(); st.ShaveMisses != 1 || st.ShaveEntries != 1 {
		t.Fatalf("stats after miss: %+v", st)
	}

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := src.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("two saves of identical contents differ")
	}

	dst := NewFeasibilityCache()
	if loaded, err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil || loaded != 1 {
		t.Fatalf("load: n=%d err=%v", loaded, err)
	}
	warm := dst.Shaved(p, start, tm, Constraint1, Options{}, 7, func() *linkset.Set {
		t.Fatal("warm cache recomputed the shave")
		return nil
	})
	if !sameCore(warm, shavedSet) {
		t.Fatal("warm shave result diverged")
	}
	if st := dst.Stats(); st.ShaveHits != 1 || st.ShaveMisses != 0 {
		t.Fatalf("stats after warm hit: %+v", st)
	}

	// The replayed set is a private copy: mutating it must not leak
	// into later hits.
	warm.Add(5)
	again := dst.Shaved(p, start, tm, Constraint1, Options{}, 7, func() *linkset.Set {
		t.Fatal("recomputed after mutation")
		return nil
	})
	if !sameCore(again, shavedSet) {
		t.Fatal("mutating a returned shave leaked into the cache")
	}

	// A different start set or metric is a distinct shave.
	other := linkset.FromIDs([]int{1, 3}, len(p.Links))
	dst.Shaved(p, other, tm, Constraint1, Options{}, 7, func() *linkset.Set { return other })
	dst.Shaved(p, start, tm, Constraint1, Options{}, 8, func() *linkset.Set { return other })
	if st := dst.Stats(); st.ShaveMisses != 2 || st.ShaveEntries != 3 {
		t.Fatalf("distinct shaves not keyed apart: %+v", st)
	}
}

// TestShaveMemoBounded pins the shave ring's deterministic eviction
// under SetCapacity.
func TestShaveMemoBounded(t *testing.T) {
	p := shaveNet(10, 10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)
	fc := NewFeasibilityCache()
	fc.SetCapacity(2)
	sets := []*linkset.Set{
		linkset.FromIDs([]int{0}, len(p.Links)),
		linkset.FromIDs([]int{1}, len(p.Links)),
		linkset.FromIDs([]int{2}, len(p.Links)),
	}
	for _, s := range sets {
		s := s
		fc.Shaved(p, s, tm, Constraint1, Options{}, 0, func() *linkset.Set { return s })
	}
	st := fc.Stats()
	if st.ShaveEntries != 2 || st.Evictions != 1 {
		t.Fatalf("bounded shave memo: %+v", st)
	}
	// Oldest (sets[0]) was evicted: re-probing recomputes; newest hits.
	recomputed := false
	fc.Shaved(p, sets[0], tm, Constraint1, Options{}, 0, func() *linkset.Set { recomputed = true; return sets[0] })
	if !recomputed {
		t.Fatal("evicted entry still answered")
	}
	fc.Shaved(p, sets[2], tm, Constraint1, Options{}, 0, func() *linkset.Set {
		t.Fatal("resident entry recomputed")
		return nil
	})
}

func TestCachePersistTornTail(t *testing.T) {
	p := shaveNet(10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 4)
	src := NewFeasibilityCache()
	for i := 0; i < 3; i++ {
		src.Check(p, linkset.FromIDs([]int{i}, len(p.Links)), tm, Constraint1, Options{}, 0)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Truncating mid-frame keeps the intact prefix and reports no error.
	torn := buf.Bytes()[:buf.Len()-5]
	dst := NewFeasibilityCache()
	loaded, err := dst.Load(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 2 || dst.Len() != 2 {
		t.Fatalf("torn load kept %d entries, want 2", loaded)
	}

	// A corrupt byte inside a frame stops the load at that frame.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(cacheMagic)+12] ^= 0xff
	dst2 := NewFeasibilityCache()
	loaded2, err := dst2.Load(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if loaded2 != 0 {
		t.Fatalf("corrupt first frame loaded %d entries, want 0", loaded2)
	}

	// Wrong magic is a hard error.
	if _, err := dst2.Load(bytes.NewReader([]byte("not a cache file at all"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCachePersistFileMissing(t *testing.T) {
	fc := NewFeasibilityCache()
	n, err := fc.LoadFile(t.TempDir() + "/nope.pocfcache")
	if n != 0 || err != nil {
		t.Fatalf("missing file: n=%d err=%v, want 0,nil", n, err)
	}
	// And the file round-trip works.
	p := shaveNet(10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 4)
	fc.Check(p, nil, tm, Constraint1, Options{}, 0)
	path := t.TempDir() + "/c.pocfcache"
	if err := fc.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	warm := NewFeasibilityCache()
	if n, err := warm.LoadFile(path); err != nil || n != 1 {
		t.Fatalf("file roundtrip: n=%d err=%v", n, err)
	}
}
