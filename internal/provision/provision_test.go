package provision

import (
	"testing"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// testNet builds a small POC network directly: routers 0..3 in a ring
// plus one chord, each link owned by a distinct BP.
//
//	0 --(l0)-- 1
//	|          |
//	(l3)      (l1)
//	|          |
//	3 --(l2)-- 2      and chord l4: 0--2
func testNet(capacity float64) *topo.POCNetwork {
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 4)},
		BPs:     make([]topo.BP, 5),
		Routers: []int{0, 1, 2, 3},
	}
	add := func(bp, a, b int, dist float64) {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: len(p.Links), BP: bp, A: a, B: b, Capacity: capacity, DistanceKm: dist,
		})
	}
	add(0, 0, 1, 100)
	add(1, 1, 2, 100)
	add(2, 2, 3, 100)
	add(3, 3, 0, 100)
	add(4, 0, 2, 250) // chord, longer
	return p
}

func tmSingle(n, src, dst int, gbps float64) *traffic.Matrix {
	m := traffic.NewMatrix(n)
	m.Set(src, dst, gbps)
	return m
}

func TestRouteSingleDemand(t *testing.T) {
	p := testNet(10)
	r := Route(p, nil, tmSingle(4, 0, 2, 5), Options{}, nil)
	if !r.Feasible() {
		t.Fatalf("unplaced = %v", r.Unplaced)
	}
	asg := r.Assignments[[2]int{0, 2}]
	if len(asg) != 1 {
		t.Fatalf("assignments = %+v, want single path", asg)
	}
	// Shortest is 0-1-2 (200km) over the 250km chord.
	if len(asg[0].Links) != 2 || asg[0].Links[0] != 0 || asg[0].Links[1] != 1 {
		t.Fatalf("path links = %v, want [0 1]", asg[0].Links)
	}
	if r.Used[0] != 5 || r.Used[1] != 5 {
		t.Fatalf("used = %v", r.Used)
	}
}

func TestRouteSplitsAcrossPaths(t *testing.T) {
	p := testNet(10)
	// 25 Gbps from 0 to 2: 10 via 0-1-2, 10 via chord, 5 via 0-3-2.
	r := Route(p, nil, tmSingle(4, 0, 2, 25), Options{}, nil)
	if !r.Feasible() {
		t.Fatalf("unplaced = %v", r.Unplaced)
	}
	asg := r.Assignments[[2]int{0, 2}]
	if len(asg) != 3 {
		t.Fatalf("got %d paths, want 3: %+v", len(asg), asg)
	}
	total := 0.0
	for _, a := range asg {
		total += a.Gbps
	}
	if total != 25 {
		t.Fatalf("placed %v, want 25", total)
	}
}

func TestRouteInfeasibleReportsUnplaced(t *testing.T) {
	p := testNet(10)
	// Max deliverable 0->2 is 10+10+10 = 30 (three disjoint routes).
	r := Route(p, nil, tmSingle(4, 0, 2, 35), Options{}, nil)
	if r.Feasible() {
		t.Fatal("expected infeasible")
	}
	if r.Unplaced != 5 {
		t.Fatalf("unplaced = %v, want 5", r.Unplaced)
	}
	if len(r.UnplacedPairs) != 1 || r.UnplacedPairs[0] != [2]int{0, 2} {
		t.Fatalf("unplaced pairs = %v", r.UnplacedPairs)
	}
}

func TestRouteMaxPathsLimit(t *testing.T) {
	p := testNet(10)
	r := Route(p, nil, tmSingle(4, 0, 2, 25), Options{MaxPaths: 1}, nil)
	if r.Feasible() {
		t.Fatal("MaxPaths=1 should not fit 25 Gbps")
	}
	if r.Unplaced != 15 {
		t.Fatalf("unplaced = %v, want 15", r.Unplaced)
	}
}

func TestRouteHeadroom(t *testing.T) {
	p := testNet(10)
	r := Route(p, nil, tmSingle(4, 0, 2, 10), Options{MaxPaths: 1, Headroom: 0.5}, nil)
	if r.Feasible() {
		t.Fatal("headroom should halve effective capacity")
	}
	if r.Unplaced != 5 {
		t.Fatalf("unplaced = %v, want 5", r.Unplaced)
	}
}

func TestRouteRespectsInclude(t *testing.T) {
	p := testNet(10)
	include := linkset.FromIDs([]int{0, 1}, len(p.Links)) // only 0-1 and 1-2
	r := Route(p, include, tmSingle(4, 0, 2, 5), Options{}, nil)
	if !r.Feasible() {
		t.Fatal("path 0-1-2 should suffice")
	}
	r = Route(p, include, tmSingle(4, 0, 3, 1), Options{}, nil)
	if r.Feasible() {
		t.Fatal("router 3 unreachable without links 2/3")
	}
}

func TestRouteAvoidPrimary(t *testing.T) {
	p := testNet(10)
	avoid := map[[2]int]*linkset.Set{
		{0, 2}: linkset.FromIDs([]int{0, 1}, len(p.Links)), // ban the 0-1-2 path
	}
	r := Route(p, nil, tmSingle(4, 0, 2, 5), Options{}, avoid)
	if !r.Feasible() {
		t.Fatal("chord should carry the demand")
	}
	for _, a := range r.Assignments[[2]int{0, 2}] {
		for _, l := range a.Links {
			if l == 0 || l == 1 {
				t.Fatalf("assignment used banned link %d", l)
			}
		}
	}
}

func TestRouteBidirectionalSharesCapacity(t *testing.T) {
	p := testNet(10)
	m := traffic.NewMatrix(4)
	m.Set(0, 1, 6)
	m.Set(1, 0, 6)
	r := Route(p, linkset.FromIDs([]int{0}, len(p.Links)), m, Options{MaxPaths: 1}, nil)
	// Logical link capacity is shared across directions in this model:
	// 12 > 10 means infeasible.
	if r.Feasible() {
		t.Fatal("expected shared-capacity infeasibility")
	}
	if r.Unplaced != 2 {
		t.Fatalf("unplaced = %v, want 2", r.Unplaced)
	}
}

func TestPrimaryPaths(t *testing.T) {
	p := testNet(10)
	m := traffic.NewMatrix(4)
	m.Set(0, 2, 1)
	m.Set(3, 1, 1)
	prim, unreachable := PrimaryPaths(p, nil, m)
	if len(unreachable) != 0 {
		t.Fatalf("unreachable = %v", unreachable)
	}
	if !prim[[2]int{0, 2}].Contains(0) || !prim[[2]int{0, 2}].Contains(1) {
		t.Fatalf("primary(0,2) = %v, want {0,1}", prim[[2]int{0, 2}].AppendIDs(nil))
	}
	// 3->1 shortest: 3-0-1 or 3-2-1, both 200km; Dijkstra picks one.
	if prim[[2]int{3, 1}].Len() != 2 {
		t.Fatalf("primary(3,1) = %v, want 2 links", prim[[2]int{3, 1}].AppendIDs(nil))
	}
}

func TestPrimaryPathsUnreachable(t *testing.T) {
	p := testNet(10)
	include := linkset.FromIDs([]int{0}, len(p.Links))
	m := traffic.NewMatrix(4)
	m.Set(0, 3, 1)
	_, unreachable := PrimaryPaths(p, include, m)
	if len(unreachable) != 1 {
		t.Fatalf("unreachable = %v, want one pair", unreachable)
	}
}

func TestCheckConstraint1(t *testing.T) {
	p := testNet(10)
	ok, r := Check(p, nil, tmSingle(4, 0, 2, 5), Constraint1, Options{})
	if !ok || !r.Feasible() {
		t.Fatal("constraint1 should pass")
	}
	ok, _ = Check(p, nil, tmSingle(4, 0, 2, 50), Constraint1, Options{})
	if ok {
		t.Fatal("constraint1 should fail for 50 Gbps")
	}
}

func TestCheckConstraint2(t *testing.T) {
	p := testNet(10)
	// 5 Gbps 0->2. Primary 0-1-2 fails -> reroute via chord or 0-3-2. Passes.
	ok, _ := Check(p, nil, tmSingle(4, 0, 2, 5), Constraint2, Options{})
	if !ok {
		t.Fatal("constraint2 should pass with alternatives")
	}
	// Without the chord and without 3's links there is no alternative.
	include := linkset.FromIDs([]int{0, 1}, len(p.Links))
	ok, _ = Check(p, include, tmSingle(4, 0, 2, 5), Constraint2, Options{})
	if ok {
		t.Fatal("constraint2 should fail with no alternative path")
	}
}

func TestCheckConstraint2FailsWhenBaseInfeasible(t *testing.T) {
	p := testNet(10)
	ok, r := Check(p, nil, tmSingle(4, 0, 2, 100), Constraint2, Options{})
	if ok {
		t.Fatal("constraint2 must fail when base load doesn't fit")
	}
	if r.Feasible() {
		t.Fatal("returned routing should reflect infeasibility")
	}
}

func TestCheckConstraint3(t *testing.T) {
	p := testNet(10)
	// Each pair avoids its own primary. 0->2 primary is 0-1-2; the
	// chord carries it. Passes.
	ok, r := Check(p, nil, tmSingle(4, 0, 2, 5), Constraint3, Options{})
	if !ok {
		t.Fatal("constraint3 should pass")
	}
	for _, a := range r.Assignments[[2]int{0, 2}] {
		for _, l := range a.Links {
			if l == 0 || l == 1 {
				t.Fatal("constraint3 routing used the primary path")
			}
		}
	}
	// Demand exceeding alternative capacity: 15 Gbps can't fit when
	// banned from primary (chord 10 + 0-3-2 10 = 20 available; ok).
	// Ban everything except chord by shrinking include.
	include := linkset.FromIDs([]int{0, 1, 4}, len(p.Links))
	ok, _ = Check(p, include, tmSingle(4, 0, 2, 15), Constraint3, Options{})
	if ok {
		t.Fatal("constraint3 should fail: alternatives carry only 10")
	}
}

func TestCheckConstraintOrdering(t *testing.T) {
	// Anything passing #3 or #2 must pass #1; build a case passing #1
	// but failing #2 and #3 (no redundancy at all).
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 2)},
		BPs:     make([]topo.BP, 1),
		Routers: []int{0, 1},
		Links: []topo.LogicalLink{
			{ID: 0, BP: 0, A: 0, B: 1, Capacity: 10, DistanceKm: 100},
		},
	}
	m := tmSingle(2, 0, 1, 5)
	ok1, _ := Check(p, nil, m, Constraint1, Options{})
	ok2, _ := Check(p, nil, m, Constraint2, Options{})
	ok3, _ := Check(p, nil, m, Constraint3, Options{})
	if !ok1 || ok2 || ok3 {
		t.Fatalf("ok1=%v ok2=%v ok3=%v, want true,false,false", ok1, ok2, ok3)
	}
}

func TestCheckUnknownConstraintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Check(testNet(10), nil, tmSingle(4, 0, 1, 1), Constraint(9), Options{})
}

func TestConstraintString(t *testing.T) {
	for c, want := range map[Constraint]string{
		Constraint1:   "constraint#1(load)",
		Constraint2:   "constraint#2(single-path-failure)",
		Constraint3:   "constraint#3(per-pair-path-failure)",
		Constraint(7): "constraint(7)",
	} {
		if c.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestMaxUtilization(t *testing.T) {
	p := testNet(10)
	r := Route(p, nil, tmSingle(4, 0, 2, 5), Options{}, nil)
	if u := r.MaxUtilization(p); u != 0.5 {
		t.Fatalf("max utilization = %v, want 0.5", u)
	}
	empty := Route(p, nil, traffic.NewMatrix(4), Options{}, nil)
	if u := empty.MaxUtilization(p); u != 0 {
		t.Fatalf("empty utilization = %v", u)
	}
}

func TestHeaviestPairs(t *testing.T) {
	m := traffic.NewMatrix(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 9)
	m.Set(2, 0, 5)
	ps := heaviestPairs(m, 2)
	if len(ps) != 2 || ps[0] != [2]int{1, 2} || ps[1] != [2]int{2, 0} {
		t.Fatalf("heaviest = %v", ps)
	}
	if got := heaviestPairs(m, 99); len(got) != 3 {
		t.Fatalf("capped = %v", got)
	}
}

// End-to-end: the default zoo network must satisfy all three
// constraints when every offered link is included, with a traffic
// matrix scaled to fit. This is the precondition the auction relies
// on.
func TestFullZooFeasibleAllConstraints(t *testing.T) {
	if testing.Short() {
		t.Skip("zoo feasibility is slow")
	}
	w := topo.DefaultWorld()
	nets := topo.GenerateZoo(w, topo.DefaultZooConfig())
	p := topo.BuildPOCNetwork(w, nets, 20, 4, 0)
	cfg := traffic.DefaultGravityConfig()
	tm := traffic.Gravity(len(p.Routers), cfg,
		func(i int) float64 { return w.Cities[p.Routers[i]].Population },
		func(i, j int) float64 { return w.Distance(p.Routers[i], p.Routers[j]) })
	for _, c := range []Constraint{Constraint1, Constraint2, Constraint3} {
		ok, r := Check(p, nil, tm, c, Options{FailureScenarios: 8})
		if !ok {
			t.Fatalf("%v infeasible on full link set: unplaced %.1f Gbps over %d pairs",
				c, r.Unplaced, len(r.UnplacedPairs))
		}
	}
}
