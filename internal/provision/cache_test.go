package provision

import (
	"testing"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/traffic"
)

func TestFeasibilityCacheHitsAndMisses(t *testing.T) {
	p := shaveNet(10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)
	fc := NewFeasibilityCache()

	ok, _ := fc.Check(p, nil, tm, Constraint1, Options{}, 0)
	if !ok {
		t.Fatal("feasible instance rejected")
	}
	if fc.Hits() != 0 || fc.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d after first lookup, want 0/1", fc.Hits(), fc.Misses())
	}
	ok, _ = fc.Check(p, nil, tm, Constraint1, Options{}, 0)
	if !ok {
		t.Fatal("cached answer flipped")
	}
	if fc.Hits() != 1 || fc.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d after repeat, want 1/1", fc.Hits(), fc.Misses())
	}

	// A different include set is a different key.
	inc := linkset.FromIDs([]int{0, 1}, len(p.Links))
	if ok, _ := fc.Check(p, inc, tm, Constraint1, Options{}, 0); !ok {
		t.Fatal("two-link subset infeasible")
	}
	if fc.Misses() != 2 {
		t.Fatalf("misses=%d after distinct set, want 2", fc.Misses())
	}
	if fc.Len() != 2 {
		t.Fatalf("len=%d, want 2", fc.Len())
	}
}

// TestFeasibilityCacheReset pins the unbounded-growth fix: Reset must
// drop both the memoized entries and the pointer-keyed traffic-matrix
// fingerprints (a long-lived cache fed a fresh matrix per chaos epoch
// would otherwise leak one fingerprint per retired matrix), while the
// hit/miss counters — which describe lookups, not contents — survive.
func TestFeasibilityCacheReset(t *testing.T) {
	p := shaveNet(10, 10, 10)
	fc := NewFeasibilityCache()
	for i := 0; i < 5; i++ {
		tm := traffic.NewMatrix(2)
		tm.Set(0, 1, float64(i+1))
		if ok, _ := fc.Check(p, nil, tm, Constraint1, Options{}, 0); !ok {
			t.Fatalf("epoch %d infeasible", i)
		}
	}
	if fc.Len() != 5 {
		t.Fatalf("len=%d before reset, want 5", fc.Len())
	}
	fc.tmMu.Lock()
	nFP := len(fc.tmFP)
	fc.tmMu.Unlock()
	if nFP != 5 {
		t.Fatalf("tracked %d matrix fingerprints, want 5", nFP)
	}
	hits, misses := fc.Hits(), fc.Misses()

	fc.Reset()

	if fc.Len() != 0 {
		t.Fatalf("len=%d after reset, want 0", fc.Len())
	}
	fc.tmMu.Lock()
	nFP = len(fc.tmFP)
	fc.tmMu.Unlock()
	if nFP != 0 {
		t.Fatalf("%d matrix fingerprints survived reset", nFP)
	}
	if fc.Hits() != hits || fc.Misses() != misses {
		t.Fatalf("counters changed across reset: %d/%d -> %d/%d",
			hits, misses, fc.Hits(), fc.Misses())
	}

	// The cache still works after a reset, and the first lookup is a
	// miss again (the entries really are gone).
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 3)
	if ok, _ := fc.Check(p, nil, tm, Constraint1, Options{}, 0); !ok {
		t.Fatal("post-reset check infeasible")
	}
	if fc.Misses() != misses+1 {
		t.Fatalf("misses=%d after post-reset lookup, want %d", fc.Misses(), misses+1)
	}
}

// TestFeasibilityCacheCoreUpgrade pins the Check->CheckCore upgrade
// path: a plain Check entry has no core, so a CheckCore for the same
// key recomputes once and the upgraded entry then serves core hits.
func TestFeasibilityCacheCoreUpgrade(t *testing.T) {
	p := shaveNet(10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)
	fc := NewFeasibilityCache()

	if ok, _ := fc.Check(p, nil, tm, Constraint1, Options{}, 0); !ok {
		t.Fatal("infeasible")
	}
	ok, core := fc.CheckCore(p, nil, tm, Constraint1, Options{}, 0)
	if !ok || core == nil || core.Len() == 0 {
		t.Fatalf("core upgrade failed: ok=%v core=%v", ok, core)
	}
	misses := fc.Misses()
	ok2, core2 := fc.CheckCore(p, nil, tm, Constraint1, Options{}, 0)
	if !ok2 || core2 == nil {
		t.Fatal("core hit failed")
	}
	if fc.Misses() != misses {
		t.Fatal("core hit recomputed")
	}
}
