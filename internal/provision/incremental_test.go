package provision

import (
	"math/rand"
	"testing"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// memoNet builds a seeded random POC network: a ring over n routers
// (so it stays connected under light pruning) plus extra chords, with
// mixed capacities so pruning sequences cross the feasibility boundary.
func memoNet(rng *rand.Rand, n, chords int) *topo.POCNetwork {
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, n)},
		Routers: make([]int, n),
	}
	for i := range p.Routers {
		p.Routers[i] = i
	}
	caps := []float64{20, 40, 80}
	add := func(a, b int) {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: len(p.Links), BP: len(p.Links) % 5, A: a, B: b,
			Capacity:   caps[rng.Intn(len(caps))],
			DistanceKm: 50 + rng.Float64()*450,
		})
	}
	for i := 0; i < n; i++ {
		add(i, (i+1)%n)
	}
	for i := 0; i < chords; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			add(a, b)
		}
	}
	p.BPs = make([]topo.BP, 5)
	return p
}

func memoTM(rng *rand.Rand, n, pairs int, gbps float64) *traffic.Matrix {
	tm := traffic.NewMatrix(n)
	for i := 0; i < pairs; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			tm.Set(a, b, tm.At(a, b)+gbps*(0.5+rng.Float64()))
		}
	}
	return tm
}

func sameCore(a, b *linkset.Set) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Equal(b)
}

// TestIncrementalRecheckMatchesCold is the diff-vs-cold property test
// for the workspace recheck memo: a random enable/disable sequence
// driven through one shared memo-enabled Workspace must produce
// byte-identical Check AND CheckCore results to a cold recompute at
// every step, for every constraint, at 1 and 4 workers (the parallel
// scenario sweep runs under -race in CI). A fresh FeasibilityCache per
// step forces every probe past the exact-key cache and into the memo.
func TestIncrementalRecheckMatchesCold(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p := memoNet(rng, 12, 14)
			tm := memoTM(rng, 12, 8, 9)
			opts := Options{FailureScenarios: 4, Workers: workers}
			ws := NewWorkspace(p, opts)
			wsOpts := opts
			wsOpts.Workspace = ws

			cur := linkset.All(len(p.Links))
			var history []*linkset.Set
			for step := 0; step < 20; step++ {
				switch rng.Intn(4) {
				case 0, 1: // remove a few enabled links
					ids := cur.AppendIDs(nil)
					for k := 0; k < 1+rng.Intn(3) && len(ids) > 4; k++ {
						i := rng.Intn(len(ids))
						cur.Remove(ids[i])
						ids = append(ids[:i], ids[i+1:]...)
					}
				case 2: // add back a removed link (supersets recompute cold)
					for id := 0; id < len(p.Links); id++ {
						if !cur.Contains(id) && rng.Intn(3) == 0 {
							cur.Add(id)
							break
						}
					}
				case 3: // jump back to an earlier set (maximal memo reuse)
					if len(history) > 0 {
						cur = history[rng.Intn(len(history))].Clone()
					}
				}
				history = append(history, cur.Clone())

				for _, c := range []Constraint{Constraint1, Constraint2, Constraint3} {
					fc := NewFeasibilityCache()
					gotOK, gotSum := fc.Check(p, cur, tm, c, wsOpts, 0)
					coldOK, coldR := Check(p, cur, tm, c, opts)
					coldSum := summarize(p, coldOK, coldR)
					if gotOK != coldOK || gotSum != coldSum {
						t.Fatalf("workers=%d seed=%d step=%d %v: memo (%v %+v) != cold (%v %+v)",
							workers, seed, step, c, gotOK, gotSum, coldOK, coldSum)
					}

					fc2 := NewFeasibilityCache()
					gotOK2, gotCore := fc2.CheckCore(p, cur, tm, c, wsOpts, 0)
					coldOK2, coldCore := CheckCore(p, cur, tm, c, opts)
					if gotOK2 != coldOK2 || !sameCore(gotCore, coldCore) {
						t.Fatalf("workers=%d seed=%d step=%d %v: memo core mismatch (ok %v vs %v)",
							workers, seed, step, c, gotOK2, coldOK2)
					}
				}
			}
			if hits, _ := ws.MemoStats(); hits == 0 {
				t.Fatalf("workers=%d seed=%d: memo never hit — test is vacuous", workers, seed)
			}
		}
	}
}

// TestMemoDisabledStillMatches pins the ablation knob: capacity 0 turns
// the memo off (no hits ever) without changing any answer.
func TestMemoDisabledStillMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := memoNet(rng, 10, 10)
	tm := memoTM(rng, 10, 6, 8)
	opts := Options{FailureScenarios: 4}
	ws := NewWorkspace(p, opts)
	ws.SetMemoCapacity(0)
	wsOpts := opts
	wsOpts.Workspace = ws

	cur := linkset.All(len(p.Links))
	for step := 0; step < 8; step++ {
		ids := cur.AppendIDs(nil)
		if len(ids) > 4 {
			cur.Remove(ids[rng.Intn(len(ids))])
		}
		fc := NewFeasibilityCache()
		gotOK, gotSum := fc.Check(p, cur, tm, Constraint2, wsOpts, 0)
		coldOK, coldR := Check(p, cur, tm, Constraint2, opts)
		if gotOK != coldOK || gotSum != summarize(p, coldOK, coldR) {
			t.Fatalf("step %d: disabled-memo result diverged", step)
		}
	}
	if hits, misses := ws.MemoStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled memo recorded traffic: hits=%d misses=%d", hits, misses)
	}
}
