package provision

import (
	"sort"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// ShaveHeadroom is the minimum capacity fraction the shave leaves
// unused on every link. Without it the shaved set is exactly tight
// for the shave's internal packing, and a fresh greedy Route over the
// set — which packs demands in a different order — can wedge. Five
// percent of slack absorbs that reordering in practice.
const ShaveHeadroom = 0.05

// Shaver makes a feasible link set (approximately) 1-minimal: it
// repeatedly tries to drop links, most expensive first, using
// incremental repair — only the demand assignments crossing the
// dropped link are re-placed, against the live residual capacities of
// every routing the constraint entails (the base routing, one routing
// per Constraint-2 failure scenario, and the Constraint-3 degraded
// routing). A drop commits only if every routing repairs.
//
// The failure scenarios are dynamic: a pair's "primary path" is its
// cheapest path within the *current* set, so when a drop removes a
// link on some pair's primary, that pair's scenario (Constraint2) or
// avoid set (Constraint3) is recomputed before the drop can commit.
// This keeps the shave aligned with Check, which also derives
// primaries from the candidate set.
//
// Incremental minimality is the key to consistent VCG pivots: the
// auction runs the same shave on SL and on every SL_-a, so the
// counterfactual costs are directly comparable and C(SL_-a) < C(SL)
// — impossible under exact optimization, and an artifact of greedy
// construction — becomes rare instead of systematic.
//
// A Shaver holds Workspace arenas for the lifetime of the shave (one
// per live routing, plus the metric graph); callers must Close it when
// done so the arenas return to the pool.
type Shaver struct {
	p       *topo.POCNetwork
	opts    Options
	c       Constraint
	tm      *traffic.Matrix
	include *linkset.Set
	ws      *Workspace

	base      *liveRouting
	scenarios []*scenario  // Constraint2
	degraded  *liveRouting // Constraint3 (avoid sets mutate as primaries move)

	// Cached metric arena for primaryOf, re-applied when include
	// changes.
	pgArena   *router
	pgVersion int
	version   int
}

// scenario is one Constraint-2 failure case: the traffic matrix must
// route with the pair's primary path removed.
type scenario struct {
	pair    [2]int
	primary *linkset.Set
	lr      *liveRouting
}

// liveRouting is one mutable routing the shave must keep repairable.
type liveRouting struct {
	rt *router
	// pairs is the sorted demand-pair list and lists[i] the live
	// assignments of pairs[i]. Repairs only ever re-place existing
	// pairs, so the pair set is fixed at creation; index-based
	// parallel slices keep the TryDrop hot path free of map hashing
	// (a [2]int key costs a hash plus a 16-byte compare per access)
	// and scans walk pairs in the deterministic order repairs require.
	// idx serves the rare by-pair entries (reanchor).
	pairs [][2]int
	lists [][]PathAssignment
	idx   map[[2]int]int
	// avoid bans links per pair (Constraint3's degraded routing).
	avoid map[[2]int]*linkset.Set
	// banned excludes links from this routing beyond the shared
	// include set: the scenario's failed primary plus every shaved
	// link.
	banned *linkset.Set
}

// usableFilter admits edges whose links still have residual capacity
// and are not in the per-call avoid set. Banned links never reach the
// filter: ban() folds them into the arena graph's Disabled flags, so
// the path search rejects them at the Disabled check it performs
// anyway — no per-edge bitset probe. Only Constraint-3 placements
// carry an avoid set; the common case is the bare residual check.
func (lr *liveRouting) usableFilter(avoid *linkset.Set) graph.EdgeFilter {
	resid, linkFor := lr.rt.resid, lr.rt.linkFor
	if avoid == nil {
		return func(id graph.EdgeID, e *graph.Edge) bool {
			return resid[linkFor[id]] >= 1e-9
		}
	}
	return func(id graph.EdgeID, e *graph.Edge) bool {
		l := int(linkFor[id])
		return !avoid.Contains(l) && resid[l] >= 1e-9
	}
}

// ban excludes a link from this routing by disabling its directed
// edges on the private arena graph. The arena's enabled set is kept
// in sync so a later apply() XOR-diffs from true state. Idempotent.
func (lr *liveRouting) ban(l int) {
	lr.banned.Add(l)
	ef := lr.rt.edgeFor[l]
	lr.rt.g.SetDisabled(ef[0], true)
	lr.rt.g.SetDisabled(ef[1], true)
	lr.rt.enabled.Remove(l)
}

// unban re-admits a banned link. Only valid when the link belongs to
// the routing's include set — true at the sole call site: TryDrop's
// rollback, which re-adds the link to include first.
func (lr *liveRouting) unban(l int) {
	lr.banned.Remove(l)
	ef := lr.rt.edgeFor[l]
	lr.rt.g.SetDisabled(ef[0], false)
	lr.rt.g.SetDisabled(ef[1], false)
	lr.rt.enabled.Add(l)
}

// newLive routes tm over include minus failed (with per-pair avoid
// sets) and wraps the result as a liveRouting, or returns nil when
// infeasible. Shaved links must be passed in failed so the routing
// avoids them. opts must carry a resolved Workspace; the returned
// routing owns one of its arenas until released.
func newLive(p *topo.POCNetwork, include, failed *linkset.Set, avoid map[[2]int]*linkset.Set, tm *traffic.Matrix, opts Options) *liveRouting {
	inc := include
	if failed != nil && !failed.Empty() {
		inc = subtract(include, failed, len(p.Links))
	}
	r := Route(p, inc, tm, opts, avoid)
	if !r.Feasible() {
		return nil
	}
	ws := opts.Workspace
	lr := &liveRouting{
		rt:     ws.acquire(),
		avoid:  avoid,
		banned: linkset.New(len(p.Links)),
	}
	lr.rt.apply(include, opts.Headroom, ws.all)
	if failed != nil {
		failed.Iterate(func(l int) { lr.ban(l) })
	}
	// Rebuild residuals from the assignments (the routing arena inside
	// Route owned the originals). Deterministic pair order: the
	// residuals are float accumulations, and map iteration would
	// perturb every later packing decision at ULP scale.
	pairs := make([][2]int, 0, len(r.Assignments))
	for pair := range r.Assignments {
		pairs = append(pairs, pair)
	}
	sortPairs(pairs)
	lr.pairs = pairs
	lr.lists = make([][]PathAssignment, len(pairs))
	lr.idx = make(map[[2]int]int, len(pairs))
	for i, pair := range pairs {
		lr.lists[i] = r.Assignments[pair]
		lr.idx[pair] = i
		for _, a := range lr.lists[i] {
			for _, l := range a.Links {
				lr.rt.resid[l] -= a.Gbps
			}
		}
	}
	return lr
}

// NewShaver routes tm over the include set under the constraint and
// returns a Shaver ready to minimize it. It returns ok=false when the
// set is not feasible to begin with. On success the caller owns the
// Shaver's arenas and must Close it.
func NewShaver(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options) (*Shaver, bool) {
	opts = opts.withDefaults()
	if opts.Headroom < ShaveHeadroom {
		opts.Headroom = ShaveHeadroom
	}
	opts = opts.resolve(p)
	s := &Shaver{p: p, opts: opts, c: c, tm: tm, include: cloneInclude(include, len(p.Links)), ws: opts.Workspace}

	s.base = newLive(p, s.include, nil, nil, tm, opts)
	if s.base == nil {
		s.Close()
		return nil, false
	}
	switch c {
	case Constraint1:
	case Constraint2:
		for _, pair := range s.ws.heaviest(tm, opts.FailureScenarios) {
			primary, ok := s.primaryOf(pair)
			if !ok {
				s.Close()
				return nil, false
			}
			lr := newLive(p, s.include, primary, nil, tm, opts)
			if lr == nil {
				s.Close()
				return nil, false
			}
			s.scenarios = append(s.scenarios, &scenario{pair: pair, primary: primary, lr: lr})
		}
	case Constraint3:
		avoid, unreachable := PrimaryPathsOpts(p, s.include, tm, opts)
		if len(unreachable) > 0 {
			s.Close()
			return nil, false
		}
		s.degraded = newLive(p, s.include, nil, avoid, tm, opts)
		if s.degraded == nil {
			s.Close()
			return nil, false
		}
	default:
		s.Close()
		return nil, false
	}
	return s, true
}

// Close returns every arena the shave holds to the workspace pool.
// Idempotent; the Shaver must not be used after Close (Include's
// result remains valid — it is not arena-backed).
func (s *Shaver) Close() {
	if s.ws == nil {
		return
	}
	release := func(lr *liveRouting) {
		if lr != nil && lr.rt != nil {
			s.ws.release(lr.rt)
			lr.rt = nil
		}
	}
	release(s.base)
	for _, sc := range s.scenarios {
		release(sc.lr)
	}
	release(s.degraded)
	if s.pgArena != nil {
		s.ws.release(s.pgArena)
		s.pgArena = nil
	}
	s.base, s.scenarios, s.degraded = nil, nil, nil
	s.ws = nil
}

// primaryOf returns the links of the pair's cheapest path within the
// current include set (by the routing metric, ignoring capacity). The
// metric arena is cached and re-applied only when the include set has
// changed since the last call.
func (s *Shaver) primaryOf(pair [2]int) (*linkset.Set, bool) {
	if s.pgArena == nil {
		s.pgArena = s.ws.acquire()
		s.pgArena.apply(s.include, 0, s.ws.all)
		s.pgVersion = s.version
	} else if s.pgVersion != s.version {
		s.pgArena.apply(s.include, 0, s.ws.all)
		s.pgVersion = s.version
	}
	path := s.pgArena.pr.Path(graph.NodeID(pair[0]), graph.NodeID(pair[1]), nil)
	if len(path.Edges) == 0 {
		return nil, pair[0] == pair[1]
	}
	out := linkset.New(len(s.p.Links))
	for _, eid := range path.Edges {
		out.Add(int(s.pgArena.linkFor[eid]))
	}
	return out, true
}

// routings returns every live routing in deterministic order.
func (s *Shaver) routings() []*liveRouting {
	out := []*liveRouting{s.base}
	for _, sc := range s.scenarios {
		out = append(out, sc.lr)
	}
	if s.degraded != nil {
		out = append(out, s.degraded)
	}
	return out
}

// Include returns the current link set (live view; do not mutate).
func (s *Shaver) Include() *linkset.Set { return s.include }

// Witness returns the base (no-failure) packing the shave maintains —
// proof that the current set carries the matrix. The assignment
// slices are live state; callers must not mutate them.
func (s *Shaver) Witness() map[[2]int][]PathAssignment {
	out := make(map[[2]int][]PathAssignment, len(s.base.pairs))
	for i, pair := range s.base.pairs {
		out[pair] = s.base.lists[i]
	}
	return out
}

// repairUndo records one routing's repair so it can be rolled back.
// idxs holds the touched pair indices in ascending order (repairs
// process pairs in sorted order, so appending preserves it); removed
// and added run parallel to idxs.
type repairUndo struct {
	lr      *liveRouting
	idxs    []int
	removed [][]PathAssignment
	added   []int
}

// rollback undoes the repair. Both passes run in ascending pair
// order: the residual rebuilds are float accumulations, and undoing
// in any other order would leave resid at different ULPs than the
// forward repair computed, compounding across repair attempts.
func (u *repairUndo) rollback() {
	lr := u.lr
	for k, i := range u.idxs {
		n := u.added[k]
		if n == 0 {
			continue
		}
		asgs := lr.lists[i]
		for _, a := range asgs[len(asgs)-n:] {
			for _, l := range a.Links {
				lr.rt.resid[l] += a.Gbps
			}
		}
		lr.lists[i] = asgs[:len(asgs)-n]
	}
	for k, i := range u.idxs {
		for _, a := range u.removed[k] {
			for _, l := range a.Links {
				lr.rt.resid[l] -= a.Gbps
			}
			lr.lists[i] = append(lr.lists[i], a)
		}
	}
}

// repair releases every assignment of lr crossing link and re-places
// it. It returns the undo record and whether every assignment was
// re-placed.
func (s *Shaver) repair(lr *liveRouting, link int) (*repairUndo, bool) {
	u := &repairUndo{lr: lr}
	// lr.pairs is sorted, so crossing pairs are released — and later
	// re-placed — in the deterministic order repairs require.
	for i := range lr.pairs {
		asgs := lr.lists[i]
		hit := false
		for _, a := range asgs {
			if crossesLink(a, link) {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		var keep, removed []PathAssignment
		for _, a := range asgs {
			if crossesLink(a, link) {
				removed = append(removed, a)
				for _, l := range a.Links {
					lr.rt.resid[l] += a.Gbps
				}
			} else {
				keep = append(keep, a)
			}
		}
		lr.lists[i] = keep
		u.idxs = append(u.idxs, i)
		u.removed = append(u.removed, removed)
		u.added = append(u.added, 0)
	}
	for k, i := range u.idxs {
		pair := lr.pairs[i]
		for _, a := range u.removed[k] {
			placed := s.place(lr, pair, a.Gbps)
			u.added[k] += len(placed)
			if placed == nil {
				return u, false
			}
			lr.lists[i] = append(lr.lists[i], placed...)
		}
	}
	return u, true
}

// reanchor releases every assignment of the pair (its avoid set just
// changed) and re-places it under the new avoid set.
func (s *Shaver) reanchor(lr *liveRouting, pair [2]int) (*repairUndo, bool) {
	i := lr.idx[pair]
	u := &repairUndo{lr: lr, idxs: []int{i}, removed: [][]PathAssignment{nil}, added: []int{0}}
	for _, a := range lr.lists[i] {
		u.removed[0] = append(u.removed[0], a)
		for _, l := range a.Links {
			lr.rt.resid[l] += a.Gbps
		}
	}
	lr.lists[i] = nil
	for _, a := range u.removed[0] {
		placed := s.place(lr, pair, a.Gbps)
		u.added[0] += len(placed)
		if placed == nil {
			return u, false
		}
		lr.lists[i] = append(lr.lists[i], placed...)
	}
	return u, true
}

// TryDrop attempts to remove one link. It returns true (and commits)
// when every routing repairs and every affected failure scenario
// rebuilds; otherwise the state is rolled back.
func (s *Shaver) TryDrop(link int) bool {
	if !s.include.Contains(link) {
		return false
	}
	// Tentatively remove the link everywhere, remembering which
	// routings already banned it (a Constraint-2 scenario bans its
	// failed primary; rollback must not clear that ban).
	s.include.Remove(link)
	s.version++
	entry := s.routings()
	preBanned := make([]bool, len(entry))
	for i, lr := range entry {
		preBanned[i] = lr.banned.Contains(link)
		lr.ban(link)
	}
	var undos []*repairUndo
	ok := true

	// 1. Base routing repairs incrementally.
	u, repaired := s.repair(s.base, link)
	undos = append(undos, u)
	ok = repaired

	// 2. Constraint-2 scenarios: a scenario whose primary contained
	// the link gets a recomputed primary and a rebuilt routing; other
	// scenarios repair incrementally.
	type scenarioSwap struct {
		sc         *scenario
		oldPrimary *linkset.Set
		oldLR      *liveRouting
		newLR      *liveRouting
	}
	var swaps []scenarioSwap
	if ok {
		for _, sc := range s.scenarios {
			if !sc.primary.Contains(link) {
				u, repaired := s.repair(sc.lr, link)
				undos = append(undos, u)
				if !repaired {
					ok = false
					break
				}
				continue
			}
			newPrimary, reachable := s.primaryOf(sc.pair)
			if !reachable {
				ok = false
				break
			}
			failed := newPrimary.Clone()
			sc.lr.banned.Iterate(func(id int) {
				if id != link && !s.include.Contains(id) {
					// Keep previously shaved links out of the rebuild.
					failed.Add(id)
				}
			})
			failed.Add(link)
			newLR := newLive(s.p, s.include, failed, nil, s.tm, s.opts)
			if newLR == nil {
				ok = false
				break
			}
			swaps = append(swaps, scenarioSwap{sc: sc, oldPrimary: sc.primary, oldLR: sc.lr, newLR: newLR})
			sc.primary = newPrimary
			sc.lr = newLR
		}
	}

	// 3. Constraint-3 degraded routing: pairs whose primary contained
	// the link get new avoid sets and are re-placed; the rest repair
	// incrementally.
	type avoidSwap struct {
		pair [2]int
		old  *linkset.Set
	}
	var avoidSwaps []avoidSwap
	if ok && s.degraded != nil {
		u, repaired := s.repair(s.degraded, link)
		undos = append(undos, u)
		if !repaired {
			ok = false
		}
		if ok {
			var moved [][2]int
			for pair, av := range s.degraded.avoid {
				if av.Contains(link) {
					moved = append(moved, pair)
				}
			}
			sortPairs(moved)
			for _, pair := range moved {
				newPrimary, reachable := s.primaryOf(pair)
				if !reachable {
					ok = false
					break
				}
				avoidSwaps = append(avoidSwaps, avoidSwap{pair: pair, old: s.degraded.avoid[pair]})
				s.degraded.avoid[pair] = newPrimary
				u, repaired := s.reanchor(s.degraded, pair)
				undos = append(undos, u)
				if !repaired {
					ok = false
					break
				}
			}
		}
	}

	if ok {
		// Committed: the replaced scenario routings return their arenas.
		for _, sw := range swaps {
			s.ws.release(sw.oldLR.rt)
			sw.oldLR.rt = nil
		}
		return true
	}
	// Rollback in reverse order of the mutations.
	for i := len(undos) - 1; i >= 0; i-- {
		undos[i].rollback()
	}
	if s.degraded != nil {
		for i := len(avoidSwaps) - 1; i >= 0; i-- {
			s.degraded.avoid[avoidSwaps[i].pair] = avoidSwaps[i].old
		}
	}
	for i := len(swaps) - 1; i >= 0; i-- {
		swaps[i].sc.primary = swaps[i].oldPrimary
		swaps[i].sc.lr = swaps[i].oldLR
		s.ws.release(swaps[i].newLR.rt)
		swaps[i].newLR.rt = nil
	}
	s.include.Add(link)
	s.version++
	for i, lr := range entry {
		if !preBanned[i] {
			lr.unban(link)
		}
	}
	return false
}

// place routes gbps for the pair over the live residuals, splitting
// across up to MaxPaths paths. It returns nil if the full amount does
// not fit (partial placements are rolled back internally).
func (s *Shaver) place(lr *liveRouting, pair [2]int, gbps float64) []PathAssignment {
	filter := lr.usableFilter(lr.avoid[pair])
	var out []PathAssignment
	remaining := gbps
	for attempt := 0; attempt < s.opts.MaxPaths && remaining > 1e-9; attempt++ {
		path := lr.rt.pr.Path(graph.NodeID(pair[0]), graph.NodeID(pair[1]), filter)
		if len(path.Edges) == 0 {
			break
		}
		bn := remaining
		links := make([]int, len(path.Edges))
		for i, eid := range path.Edges {
			l := int(lr.rt.linkFor[eid])
			links[i] = l
			if lr.rt.resid[l] < bn {
				bn = lr.rt.resid[l]
			}
		}
		if bn <= 1e-9 {
			break
		}
		for _, l := range links {
			lr.rt.resid[l] -= bn
		}
		out = append(out, PathAssignment{Links: links, Gbps: bn})
		remaining -= bn
	}
	if remaining > 1e-9 {
		for _, a := range out {
			for _, l := range a.Links {
				lr.rt.resid[l] += a.Gbps
			}
		}
		return nil
	}
	return out
}

// Shave runs drop passes over the current set, most expensive link
// first (per the price function), until a full pass commits nothing
// or maxPasses is reached (0 = default 3). It returns the number of
// links dropped.
func (s *Shaver) Shave(price func(link int) float64, maxPasses int) int {
	if maxPasses <= 0 {
		maxPasses = 3
	}
	dropped := 0
	for pass := 0; pass < maxPasses; pass++ {
		cand := s.include.AppendIDs(make([]int, 0, s.include.Len()))
		sort.Slice(cand, func(i, j int) bool {
			pi, pj := price(cand[i]), price(cand[j])
			if pi != pj {
				return pi > pj
			}
			return cand[i] < cand[j]
		})
		n := 0
		for _, id := range cand {
			if s.TryDrop(id) {
				n++
			}
		}
		dropped += n
		if n == 0 {
			break
		}
	}
	return dropped
}

func crossesLink(a PathAssignment, link int) bool {
	for _, l := range a.Links {
		if l == link {
			return true
		}
	}
	return false
}

func sortPairs(pairs [][2]int) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
}

// cloneInclude materializes an include set (nil means all links) as an
// independent, mutable set.
func cloneInclude(include *linkset.Set, total int) *linkset.Set {
	if include == nil {
		return linkset.All(total)
	}
	return include.Clone()
}
