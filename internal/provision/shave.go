package provision

import (
	"sort"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// ShaveHeadroom is the minimum capacity fraction the shave leaves
// unused on every link. Without it the shaved set is exactly tight
// for the shave's internal packing, and a fresh greedy Route over the
// set — which packs demands in a different order — can wedge. Five
// percent of slack absorbs that reordering in practice.
const ShaveHeadroom = 0.05

// Shaver makes a feasible link set (approximately) 1-minimal: it
// repeatedly tries to drop links, most expensive first, using
// incremental repair — only the demand assignments crossing the
// dropped link are re-placed, against the live residual capacities of
// every routing the constraint entails (the base routing, one routing
// per Constraint-2 failure scenario, and the Constraint-3 degraded
// routing). A drop commits only if every routing repairs.
//
// The failure scenarios are dynamic: a pair's "primary path" is its
// cheapest path within the *current* set, so when a drop removes a
// link on some pair's primary, that pair's scenario (Constraint2) or
// avoid set (Constraint3) is recomputed before the drop can commit.
// This keeps the shave aligned with Check, which also derives
// primaries from the candidate set.
//
// Incremental minimality is the key to consistent VCG pivots: the
// auction runs the same shave on SL and on every SL_-a, so the
// counterfactual costs are directly comparable and C(SL_-a) < C(SL)
// — impossible under exact optimization, and an artifact of greedy
// construction — becomes rare instead of systematic.
type Shaver struct {
	p       *topo.POCNetwork
	opts    Options
	c       Constraint
	tm      *traffic.Matrix
	include map[int]bool

	base      *liveRouting
	scenarios []*scenario  // Constraint2
	degraded  *liveRouting // Constraint3 (avoid sets mutate as primaries move)

	// Cached metric graph for primaryOf, invalidated when include
	// changes.
	pg        *graph.Graph
	pgRouter  *graph.PointRouter
	pgLinkFor map[graph.EdgeID]int
	pgVersion int
	version   int
}

// scenario is one Constraint-2 failure case: the traffic matrix must
// route with the pair's primary path removed.
type scenario struct {
	pair    [2]int
	primary map[int]bool
	lr      *liveRouting
}

// liveRouting is one mutable routing the shave must keep repairable.
type liveRouting struct {
	rt  *router
	asg map[[2]int][]PathAssignment
	// avoid bans links per pair (Constraint3's degraded routing).
	avoid map[[2]int]map[int]bool
	// banned excludes links from this routing beyond the shared
	// include set: the scenario's failed primary plus every shaved
	// link.
	banned map[int]bool
}

// usableFilter admits edges whose links are neither banned nor out of
// residual capacity, nor in the per-call avoid set.
func (lr *liveRouting) usableFilter(avoid map[int]bool) graph.EdgeFilter {
	return func(id graph.EdgeID, e graph.Edge) bool {
		l := int(lr.rt.linkFor[id])
		if lr.banned[l] {
			return false
		}
		if avoid != nil && avoid[l] {
			return false
		}
		return lr.rt.resid[l] >= 1e-9
	}
}

// newLive routes tm over include minus failed (with per-pair avoid
// sets) and wraps the result as a liveRouting, or returns nil when
// infeasible. Shaved links must be passed in failed so the routing
// avoids them.
func newLive(p *topo.POCNetwork, include, failed map[int]bool, avoid map[[2]int]map[int]bool, tm *traffic.Matrix, opts Options) *liveRouting {
	inc := include
	if len(failed) > 0 {
		inc = subtract(include, failed, len(p.Links))
	}
	r := Route(p, inc, tm, opts, avoid)
	if !r.Feasible() {
		return nil
	}
	lr := &liveRouting{
		rt:     newRouter(p, include, opts),
		asg:    r.Assignments,
		avoid:  avoid,
		banned: map[int]bool{},
	}
	for id := range failed {
		lr.banned[id] = true
	}
	// Rebuild residuals from the assignments (the throwaway router
	// inside Route owned the originals). Deterministic pair order:
	// the residuals are float accumulations, and map iteration would
	// perturb every later packing decision at ULP scale.
	pairs := make([][2]int, 0, len(r.Assignments))
	for pair := range r.Assignments {
		pairs = append(pairs, pair)
	}
	sortPairs(pairs)
	for _, pair := range pairs {
		for _, a := range r.Assignments[pair] {
			for _, l := range a.Links {
				lr.rt.resid[l] -= a.Gbps
			}
		}
	}
	return lr
}

// NewShaver routes tm over the include set under the constraint and
// returns a Shaver ready to minimize it. It returns ok=false when the
// set is not feasible to begin with.
func NewShaver(p *topo.POCNetwork, include map[int]bool, tm *traffic.Matrix, c Constraint, opts Options) (*Shaver, bool) {
	opts = opts.withDefaults()
	if opts.Headroom < ShaveHeadroom {
		opts.Headroom = ShaveHeadroom
	}
	s := &Shaver{p: p, opts: opts, c: c, tm: tm, include: cloneSet(include, len(p.Links))}

	s.base = newLive(p, s.include, nil, nil, tm, opts)
	if s.base == nil {
		return nil, false
	}
	switch c {
	case Constraint1:
	case Constraint2:
		for _, pair := range heaviestPairs(tm, opts.FailureScenarios) {
			primary, ok := s.primaryOf(pair)
			if !ok {
				return nil, false
			}
			lr := newLive(p, s.include, primary, nil, tm, opts)
			if lr == nil {
				return nil, false
			}
			s.scenarios = append(s.scenarios, &scenario{pair: pair, primary: primary, lr: lr})
		}
	case Constraint3:
		avoid, unreachable := PrimaryPathsOpts(p, s.include, tm, opts)
		if len(unreachable) > 0 {
			return nil, false
		}
		s.degraded = newLive(p, s.include, nil, avoid, tm, opts)
		if s.degraded == nil {
			return nil, false
		}
	default:
		return nil, false
	}
	return s, true
}

// primaryOf returns the links of the pair's cheapest path within the
// current include set (by the routing metric, ignoring capacity). The
// metric graph is cached and rebuilt only when the include set has
// changed since the last call.
func (s *Shaver) primaryOf(pair [2]int) (map[int]bool, bool) {
	if s.pg == nil || s.pgVersion != s.version {
		g, edgeFor := buildGraph(s.p, s.include, s.opts)
		linkFor := make(map[graph.EdgeID]int, 2*len(edgeFor))
		for id, p := range edgeFor {
			linkFor[p[0]] = id
			linkFor[p[1]] = id
		}
		s.pg, s.pgRouter, s.pgLinkFor, s.pgVersion = g, graph.NewPointRouter(g), linkFor, s.version
	}
	path := s.pgRouter.Path(graph.NodeID(pair[0]), graph.NodeID(pair[1]), nil)
	if len(path.Edges) == 0 {
		return nil, pair[0] == pair[1]
	}
	out := make(map[int]bool, len(path.Edges))
	for _, eid := range path.Edges {
		out[s.pgLinkFor[eid]] = true
	}
	return out, true
}

// routings returns every live routing in deterministic order.
func (s *Shaver) routings() []*liveRouting {
	out := []*liveRouting{s.base}
	for _, sc := range s.scenarios {
		out = append(out, sc.lr)
	}
	if s.degraded != nil {
		out = append(out, s.degraded)
	}
	return out
}

// Include returns the current link set (live view; do not mutate).
func (s *Shaver) Include() map[int]bool { return s.include }

// Witness returns the base (no-failure) packing the shave maintains —
// proof that the current set carries the matrix. The assignments are
// live state; callers must not mutate them.
func (s *Shaver) Witness() map[[2]int][]PathAssignment { return s.base.asg }

// repairUndo records one routing's repair so it can be rolled back.
type repairUndo struct {
	lr      *liveRouting
	removed map[[2]int][]PathAssignment
	added   map[[2]int]int
}

// rollback undoes the repair. Pair order is sorted on both passes:
// the residual rebuilds are float accumulations, and rolling back in
// map order would leave resid at different ULPs than the forward
// repair path computed, compounding across repair attempts.
func (u *repairUndo) rollback() {
	lr := u.lr
	added := make([][2]int, 0, len(u.added))
	for pair := range u.added {
		added = append(added, pair)
	}
	sortPairs(added)
	for _, pair := range added {
		n := u.added[pair]
		asgs := lr.asg[pair]
		for _, a := range asgs[len(asgs)-n:] {
			for _, l := range a.Links {
				lr.rt.resid[l] += a.Gbps
			}
		}
		lr.asg[pair] = asgs[:len(asgs)-n]
	}
	removedPairs := make([][2]int, 0, len(u.removed))
	for pair := range u.removed {
		removedPairs = append(removedPairs, pair)
	}
	sortPairs(removedPairs)
	for _, pair := range removedPairs {
		for _, a := range u.removed[pair] {
			for _, l := range a.Links {
				lr.rt.resid[l] -= a.Gbps
			}
			lr.asg[pair] = append(lr.asg[pair], a)
		}
	}
}

// repair releases every assignment of lr crossing link and re-places
// it. It returns the undo record and whether every assignment was
// re-placed.
func (s *Shaver) repair(lr *liveRouting, link int) (*repairUndo, bool) {
	u := &repairUndo{lr: lr, removed: map[[2]int][]PathAssignment{}, added: map[[2]int]int{}}
	// Deterministic pair order (map iteration order would make the
	// repair — and therefore the whole auction — vary run to run).
	var pairs [][2]int
	for pair, asgs := range lr.asg {
		for _, a := range asgs {
			if crossesLink(a, link) {
				pairs = append(pairs, pair)
				break
			}
		}
	}
	sortPairs(pairs)
	for _, pair := range pairs {
		var keep []PathAssignment
		for _, a := range lr.asg[pair] {
			if crossesLink(a, link) {
				u.removed[pair] = append(u.removed[pair], a)
				for _, l := range a.Links {
					lr.rt.resid[l] += a.Gbps
				}
			} else {
				keep = append(keep, a)
			}
		}
		lr.asg[pair] = keep
	}
	for _, pair := range pairs {
		for _, a := range u.removed[pair] {
			placed := s.place(lr, pair, a.Gbps)
			u.added[pair] += len(placed)
			if placed == nil {
				return u, false
			}
			lr.asg[pair] = append(lr.asg[pair], placed...)
		}
	}
	return u, true
}

// reanchor releases every assignment of the pair (its avoid set just
// changed) and re-places it under the new avoid set.
func (s *Shaver) reanchor(lr *liveRouting, pair [2]int) (*repairUndo, bool) {
	u := &repairUndo{lr: lr, removed: map[[2]int][]PathAssignment{}, added: map[[2]int]int{}}
	for _, a := range lr.asg[pair] {
		u.removed[pair] = append(u.removed[pair], a)
		for _, l := range a.Links {
			lr.rt.resid[l] += a.Gbps
		}
	}
	lr.asg[pair] = nil
	for _, a := range u.removed[pair] {
		placed := s.place(lr, pair, a.Gbps)
		u.added[pair] += len(placed)
		if placed == nil {
			return u, false
		}
		lr.asg[pair] = append(lr.asg[pair], placed...)
	}
	return u, true
}

// TryDrop attempts to remove one link. It returns true (and commits)
// when every routing repairs and every affected failure scenario
// rebuilds; otherwise the state is rolled back.
func (s *Shaver) TryDrop(link int) bool {
	if !s.include[link] {
		return false
	}
	// Tentatively remove the link everywhere, remembering which
	// routings already banned it (a Constraint-2 scenario bans its
	// failed primary; rollback must not clear that ban).
	delete(s.include, link)
	s.version++
	entry := s.routings()
	preBanned := make([]bool, len(entry))
	for i, lr := range entry {
		preBanned[i] = lr.banned[link]
		lr.banned[link] = true
	}
	var undos []*repairUndo
	ok := true

	// 1. Base routing repairs incrementally.
	u, repaired := s.repair(s.base, link)
	undos = append(undos, u)
	ok = repaired

	// 2. Constraint-2 scenarios: a scenario whose primary contained
	// the link gets a recomputed primary and a rebuilt routing; other
	// scenarios repair incrementally.
	type scenarioSwap struct {
		sc         *scenario
		oldPrimary map[int]bool
		oldLR      *liveRouting
	}
	var swaps []scenarioSwap
	if ok {
		for _, sc := range s.scenarios {
			if !sc.primary[link] {
				u, repaired := s.repair(sc.lr, link)
				undos = append(undos, u)
				if !repaired {
					ok = false
					break
				}
				continue
			}
			newPrimary, reachable := s.primaryOf(sc.pair)
			if !reachable {
				ok = false
				break
			}
			failed := cloneSet(newPrimary, 0)
			for id := range sc.lr.banned {
				if id != link && !s.include[id] {
					// Keep previously shaved links out of the rebuild.
					failed[id] = true
				}
			}
			failed[link] = true
			newLR := newLive(s.p, s.include, failed, nil, s.tm, s.opts)
			if newLR == nil {
				ok = false
				break
			}
			swaps = append(swaps, scenarioSwap{sc: sc, oldPrimary: sc.primary, oldLR: sc.lr})
			sc.primary = newPrimary
			sc.lr = newLR
		}
	}

	// 3. Constraint-3 degraded routing: pairs whose primary contained
	// the link get new avoid sets and are re-placed; the rest repair
	// incrementally.
	type avoidSwap struct {
		pair [2]int
		old  map[int]bool
	}
	var avoidSwaps []avoidSwap
	if ok && s.degraded != nil {
		u, repaired := s.repair(s.degraded, link)
		undos = append(undos, u)
		if !repaired {
			ok = false
		}
		if ok {
			var moved [][2]int
			for pair, av := range s.degraded.avoid {
				if av[link] {
					moved = append(moved, pair)
				}
			}
			sortPairs(moved)
			for _, pair := range moved {
				newPrimary, reachable := s.primaryOf(pair)
				if !reachable {
					ok = false
					break
				}
				avoidSwaps = append(avoidSwaps, avoidSwap{pair: pair, old: s.degraded.avoid[pair]})
				s.degraded.avoid[pair] = newPrimary
				u, repaired := s.reanchor(s.degraded, pair)
				undos = append(undos, u)
				if !repaired {
					ok = false
					break
				}
			}
		}
	}

	if ok {
		return true
	}
	// Rollback in reverse order of the mutations.
	for i := len(undos) - 1; i >= 0; i-- {
		undos[i].rollback()
	}
	if s.degraded != nil {
		for i := len(avoidSwaps) - 1; i >= 0; i-- {
			s.degraded.avoid[avoidSwaps[i].pair] = avoidSwaps[i].old
		}
	}
	for i := len(swaps) - 1; i >= 0; i-- {
		swaps[i].sc.primary = swaps[i].oldPrimary
		swaps[i].sc.lr = swaps[i].oldLR
	}
	s.include[link] = true
	s.version++
	for i, lr := range entry {
		if !preBanned[i] {
			delete(lr.banned, link)
		}
	}
	return false
}

// place routes gbps for the pair over the live residuals, splitting
// across up to MaxPaths paths. It returns nil if the full amount does
// not fit (partial placements are rolled back internally).
func (s *Shaver) place(lr *liveRouting, pair [2]int, gbps float64) []PathAssignment {
	avoid := lr.avoid[pair]
	var out []PathAssignment
	remaining := gbps
	for attempt := 0; attempt < s.opts.MaxPaths && remaining > 1e-9; attempt++ {
		path := lr.rt.pr.Path(graph.NodeID(pair[0]), graph.NodeID(pair[1]), lr.usableFilter(avoid))
		if len(path.Edges) == 0 {
			break
		}
		bn := remaining
		links := make([]int, len(path.Edges))
		for i, eid := range path.Edges {
			l := int(lr.rt.linkFor[eid])
			links[i] = l
			if lr.rt.resid[l] < bn {
				bn = lr.rt.resid[l]
			}
		}
		if bn <= 1e-9 {
			break
		}
		for _, l := range links {
			lr.rt.resid[l] -= bn
		}
		out = append(out, PathAssignment{Links: links, Gbps: bn})
		remaining -= bn
	}
	if remaining > 1e-9 {
		for _, a := range out {
			for _, l := range a.Links {
				lr.rt.resid[l] += a.Gbps
			}
		}
		return nil
	}
	return out
}

// Shave runs drop passes over the current set, most expensive link
// first (per the price function), until a full pass commits nothing
// or maxPasses is reached (0 = default 3). It returns the number of
// links dropped.
func (s *Shaver) Shave(price func(link int) float64, maxPasses int) int {
	if maxPasses <= 0 {
		maxPasses = 3
	}
	dropped := 0
	for pass := 0; pass < maxPasses; pass++ {
		var cand []int
		for id := range s.include {
			cand = append(cand, id)
		}
		sort.Slice(cand, func(i, j int) bool {
			pi, pj := price(cand[i]), price(cand[j])
			if pi != pj {
				return pi > pj
			}
			return cand[i] < cand[j]
		})
		n := 0
		for _, id := range cand {
			if s.TryDrop(id) {
				n++
			}
		}
		dropped += n
		if n == 0 {
			break
		}
	}
	return dropped
}

func crossesLink(a PathAssignment, link int) bool {
	for _, l := range a.Links {
		if l == link {
			return true
		}
	}
	return false
}

func sortPairs(pairs [][2]int) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
}

// cloneSet copies include; nil means all links. Pre-sized: it runs
// per feasibility check and map growth shows up in alloc profiles.
func cloneSet(include map[int]bool, total int) map[int]bool {
	size := len(include)
	if include == nil {
		size = total
	}
	out := make(map[int]bool, size)
	if include == nil {
		for i := 0; i < total; i++ {
			out[i] = true
		}
		return out
	}
	for id, ok := range include {
		if ok {
			out[id] = true
		}
	}
	return out
}
