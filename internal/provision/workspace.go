package provision

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/partition"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// Workspace is a reusable provisioning arena for one (network, routing
// metric) pair. The auction's winner determination probes thousands of
// near-identical link subsets; a Workspace builds the routing graph
// over *every* logical link once and evaluates each candidate subset
// by toggling Edge.Disabled flags against the include bitset — an
// O(diff) word-scan per check instead of a full graph rebuild. Both
// Dijkstra engines skip disabled edges before any heap operation and
// adjacency keeps insertion order, so the toggled full graph explores
// exactly the node/edge sequence a subset-built graph would: every
// path, cost and residual is bit-identical to the rebuild-per-check
// seed behaviour.
//
// A Workspace owns a free list of arenas (router state: graph, pooled
// TreeRouter/PointRouter scratch, slice-backed residual and usage
// accumulators). Route/Check acquire an arena, apply the include set,
// and release it on return; parallel callers (Constraint-2 scenario
// sweeps, the auction's counterfactuals) therefore each own a private
// arena for the duration of a routing — the per-worker ownership rule
// that keeps parallel runs bit-identical (DESIGN.md §10).
//
// The Workspace is bound to the Options.LinkCost metric it was created
// with: edge costs are frozen into the arena graphs. Callers must not
// pass one workspace to checks using a different metric (the auction
// builds one workspace per winner determination, whose metric is fixed
// for that determination's lifetime).
type Workspace struct {
	p        *topo.POCNetwork
	linkCost func(l topo.LogicalLink) float64
	all      *linkset.Set

	mu   sync.Mutex
	free []*router

	// Demand-shape caches, keyed by traffic-matrix pointer: the
	// flattened + sorted demand list, its by-source grouping, the
	// per-source destination lists for primary-path trees, and the
	// heaviest-pairs ranking. All are pure functions of the matrix,
	// which is constant across an auction, so each is computed once
	// per workspace instead of once per routing.
	dmu   sync.Mutex
	dsTM  *traffic.Matrix
	ds    []demand
	bySrc map[int][]demand
	srcs  []int
	pTM   *traffic.Matrix
	pDsts map[int][]int
	pSrcs []int
	hpTM  *traffic.Matrix
	hpN   int
	hp    [][2]int
	// Regional-decomposition projection cache: the per-component
	// matrices for (matrix, partition labeling). Pointer-stable across
	// probes that split the same way, so the demand-shape caches above
	// and the FeasibilityCache's per-matrix fingerprints stay warm for
	// every component sub-problem.
	projTM  *traffic.Matrix
	projSig uint64
	proj    []*traffic.Matrix

	// Incremental-recheck memo (see incremental.go): a small ring of
	// recently computed checks with their influence sets, consulted by
	// the FeasibilityCache on misses. Contents are scheduling-dependent
	// under sharing, but hits replay byte-identical results, so only
	// speed varies.
	memoMu     sync.Mutex
	memo       []memoEntry
	memoPos    int
	memoCap    int
	memoHits   atomic.Int64
	memoMisses atomic.Int64
}

// NewWorkspace returns a workspace for p bound to opts.LinkCost (nil
// means physical distance). Arenas are built lazily on first use and
// recycled across checks.
func NewWorkspace(p *topo.POCNetwork, opts Options) *Workspace {
	cap := defaultMemoCapacity
	if opts.NoMemo {
		cap = 0
	}
	return &Workspace{
		p:        p,
		linkCost: opts.LinkCost,
		all:      linkset.All(len(p.Links)),
		memoCap:  cap,
	}
}

// resolve returns the workspace to use for a call on network p: the
// one threaded through opts when it matches, else a fresh transient
// workspace (package-level entry points without a workspace pay one
// arena build, exactly like the rebuild-per-call seed behaviour).
func (o Options) resolve(p *topo.POCNetwork) Options {
	if o.Workspace == nil || o.Workspace.p != p {
		o.Workspace = NewWorkspace(p, o)
	}
	return o
}

// acquire pops a free arena or builds one. Every acquire must be
// released on all paths (poclint arenapair enforces it): a leaked
// arena pins its allocation until the workspace dies and silently
// degrades pool reuse for every later call.
//
//lint:acquire arena
func (ws *Workspace) acquire() *router {
	ws.mu.Lock()
	if n := len(ws.free); n > 0 {
		rt := ws.free[n-1]
		ws.free[n-1] = nil
		ws.free = ws.free[:n-1]
		ws.mu.Unlock()
		return rt
	}
	ws.mu.Unlock()
	return newArena(ws.p, ws.linkCost)
}

// release returns an arena to the free list.
//
//lint:release arena
func (ws *Workspace) release(rt *router) {
	ws.mu.Lock()
	ws.free = append(ws.free, rt)
	ws.mu.Unlock()
}

// newArena builds routing state over every logical link of p (enabled),
// with the metric frozen into the edge costs.
func newArena(p *topo.POCNetwork, linkCost func(l topo.LogicalLink) float64) *router {
	g := graph.New(len(p.Routers))
	edgeFor := make([][2]graph.EdgeID, len(p.Links))
	for _, l := range p.Links {
		c := l.DistanceKm
		if linkCost != nil {
			c = linkCost(l)
		}
		e1, e2 := g.AddBiEdge(graph.NodeID(l.A), graph.NodeID(l.B), c, l.Capacity)
		edgeFor[l.ID] = [2]graph.EdgeID{e1, e2}
	}
	linkFor := make([]int32, g.NumEdges())
	for id, pair := range edgeFor {
		linkFor[pair[0]] = int32(id)
		linkFor[pair[1]] = int32(id)
	}
	return &router{
		p:           p,
		g:           g,
		pr:          graph.NewPointRouter(g),
		tr:          graph.NewTreeRouter(g),
		edgeFor:     edgeFor,
		linkFor:     linkFor,
		resid:       make([]float64, len(p.Links)),
		usedScratch: make([]float64, len(p.Links)),
		enabled:     linkset.All(len(p.Links)),
	}
}

// apply configures the arena for one candidate subset: links outside
// include (nil = all) are disabled, links inside get their residual
// reset to capacity×(1−headroom). The disabled flags are toggled via a
// word-level XOR against the arena's current enabled set, so repeated
// checks over near-identical sets touch only the differing links.
// Residuals of excluded links are left stale — every algorithm checks
// Disabled before reading a residual.
func (rt *router) apply(include *linkset.Set, headroom float64, all *linkset.Set) {
	target := include
	if target == nil {
		target = all
	}
	ew := rt.enabled.Words()
	tw := target.Words()
	for wi := range ew {
		var t uint64
		if wi < len(tw) {
			t = tw[wi]
		}
		diff := ew[wi] ^ t
		for diff != 0 {
			bit := uint(bits.TrailingZeros64(diff))
			diff &= diff - 1
			id := wi*64 + int(bit)
			dis := t&(uint64(1)<<bit) == 0
			pair := rt.edgeFor[id]
			rt.g.SetDisabled(pair[0], dis)
			rt.g.SetDisabled(pair[1], dis)
		}
		ew[wi] = t
	}
	scale := 1 - headroom
	target.Iterate(func(id int) {
		rt.resid[id] = rt.p.Links[id].Capacity * scale
	})
}

// demands returns the flattened demand list, its by-source grouping
// and the source order for tm, computing them once per matrix.
func (ws *Workspace) demands(tm *traffic.Matrix) ([]demand, map[int][]demand, []int) {
	ws.dmu.Lock()
	defer ws.dmu.Unlock()
	if ws.dsTM != tm {
		ds := flatten(tm)
		bySrc := make(map[int][]demand, tm.Size())
		rowTotal := make(map[int]float64, tm.Size())
		for _, d := range ds {
			bySrc[d.src] = append(bySrc[d.src], d)
			rowTotal[d.src] += d.gbps
		}
		srcs := make([]int, 0, len(bySrc))
		for s := range bySrc {
			srcs = append(srcs, s)
		}
		sort.Slice(srcs, func(i, j int) bool {
			if rowTotal[srcs[i]] != rowTotal[srcs[j]] {
				return rowTotal[srcs[i]] > rowTotal[srcs[j]]
			}
			return srcs[i] < srcs[j]
		})
		ws.dsTM, ws.ds, ws.bySrc, ws.srcs = tm, ds, bySrc, srcs
	}
	return ws.ds, ws.bySrc, ws.srcs
}

// primaryDemands returns the per-source destination lists and sorted
// source order for tm's demand pairs, computed once per matrix.
func (ws *Workspace) primaryDemands(tm *traffic.Matrix) (map[int][]int, []int) {
	ws.dmu.Lock()
	defer ws.dmu.Unlock()
	if ws.pTM != tm {
		dsts := map[int][]int{}
		tm.Demands(func(s, d int, _ float64) { dsts[s] = append(dsts[s], d) })
		srcs := make([]int, 0, len(dsts))
		for s := range dsts {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)
		ws.pTM, ws.pDsts, ws.pSrcs = tm, dsts, srcs
	}
	return ws.pDsts, ws.pSrcs
}

// projections returns projectMatrix(tm, pt), computed once per
// (matrix, partition-signature) pair.
func (ws *Workspace) projections(tm *traffic.Matrix, pt *partition.Partition) []*traffic.Matrix {
	sig := pt.Signature()
	ws.dmu.Lock()
	defer ws.dmu.Unlock()
	if ws.projTM != tm || ws.projSig != sig || len(ws.proj) != pt.NumComp {
		ws.projTM, ws.projSig, ws.proj = tm, sig, projectMatrix(tm, pt)
	}
	return ws.proj
}

// heaviest returns heaviestPairs(tm, n), computed once per (matrix, n).
func (ws *Workspace) heaviest(tm *traffic.Matrix, n int) [][2]int {
	ws.dmu.Lock()
	defer ws.dmu.Unlock()
	if ws.hpTM != tm || ws.hpN != n {
		ws.hpTM, ws.hpN, ws.hp = tm, n, heaviestPairs(tm, n)
	}
	return ws.hp
}
