package provision

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"github.com/public-option/poc/internal/linkset"
)

// Cache persistence: Save/Load serialize the FeasibilityCache's
// canonical-key table to a CRC-framed file so sweep re-runs and warm CI
// start hot. The format mirrors the pocd journal's framing discipline:
//
//	magic   "pocfcache/v1\n"
//	frame   len(u32 LE) ∥ kind(u8) ∥ crc(u32 LE, IEEE over payload) ∥ payload
//
// kind 1 (check entry):
//
//	payload uvarint(len(key)) ∥ key
//	        ∥ flags(u8: bit0 feasible, bit1 has-core)
//	        ∥ Float64bits(Unplaced)(u64 LE) ∥ Float64bits(MaxUtilization)(u64 LE)
//	        ∥ uvarint(Paths) ∥ uvarint(Moves)
//	        ∥ [has-core: uvarint(words) ∥ words(u64 LE each)]
//
// kind 2 (shave-memo entry, see FeasibilityCache.Shaved):
//
//	payload uvarint(len(key)) ∥ key ∥ uvarint(words) ∥ words(u64 LE each)
//
// Save iterates keys in sorted order, so saving the same contents
// always produces the same bytes. Load verifies the magic, then stops
// quietly at the first torn or corrupt frame (a crash mid-save loses
// the tail, never the run). Keys are content fingerprints (FNV-1a over
// matrix/network contents plus the raw include words), so a key written
// by one process hashes identically when another loads it.
//
// Entries loaded from a file replay exactly the checks that produced
// them, so a warm-started cache answers with the same bytes a cold one
// would compute. Callers that need obs exports unperturbed by warm
// starts already strip Obs on shared/external caches (see
// auction.Instance.Cache); private in-process caches are never
// persisted.

const cacheMagic = "pocfcache/v1\n"

const (
	cacheKindEntry = 1
	cacheKindShave = 2
)

// Save writes every resident entry to w in sorted-key order: check
// entries first, then shave-memo entries.
func (fc *FeasibilityCache) Save(w io.Writer) error {
	fc.mu.RLock()
	keys := make([]string, 0, len(fc.m))
	for k := range fc.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]cacheEntry, len(keys))
	for i, k := range keys {
		entries[i] = fc.m[k]
	}
	shaveKeys := make([]string, 0, len(fc.shaved))
	for k := range fc.shaved {
		shaveKeys = append(shaveKeys, k)
	}
	sort.Strings(shaveKeys)
	shaveWords := make([][]uint64, len(shaveKeys))
	for i, k := range shaveKeys {
		shaveWords[i] = fc.shaved[k]
	}
	fc.mu.RUnlock()

	if _, err := io.WriteString(w, cacheMagic); err != nil {
		return err
	}
	var payload, frame []byte
	writeFrame := func(kind byte) error {
		frame = frame[:0]
		frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
		frame = append(frame, kind)
		frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
		frame = append(frame, payload...)
		_, err := w.Write(frame)
		return err
	}
	for i, k := range keys {
		payload = appendCachePayload(payload[:0], k, entries[i])
		if err := writeFrame(cacheKindEntry); err != nil {
			return err
		}
	}
	for i, k := range shaveKeys {
		payload = appendShavePayload(payload[:0], k, shaveWords[i])
		if err := writeFrame(cacheKindShave); err != nil {
			return err
		}
	}
	return nil
}

func appendShavePayload(dst []byte, key string, words []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(words)))
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

func appendCachePayload(dst []byte, key string, e cacheEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	var flags byte
	if e.sum.Feasible {
		flags |= 1
	}
	if e.core != nil {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.sum.Unplaced))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.sum.MaxUtilization))
	dst = binary.AppendUvarint(dst, uint64(e.sum.Paths))
	dst = binary.AppendUvarint(dst, uint64(e.sum.Moves))
	if e.core != nil {
		words := e.core.Words()
		dst = binary.AppendUvarint(dst, uint64(len(words)))
		for _, w := range words {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
	}
	return dst
}

// Load reads entries from r into the cache (insert-win, honoring any
// capacity bound) and returns how many were loaded. A torn or corrupt
// tail ends the load silently — everything before it is kept. A bad
// magic is an error: the file is not a cache.
func (fc *FeasibilityCache) Load(r io.Reader) (int, error) {
	magic := make([]byte, len(cacheMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		if err == io.EOF {
			return 0, fmt.Errorf("provision: cache file empty")
		}
		return 0, err
	}
	if string(magic) != cacheMagic {
		return 0, fmt.Errorf("provision: bad cache magic %q", magic)
	}
	loaded := 0
	header := make([]byte, 9)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			return loaded, nil // clean EOF or torn header: stop
		}
		n := binary.LittleEndian.Uint32(header[0:4])
		kind := header[4]
		crc := binary.LittleEndian.Uint32(header[5:9])
		if (kind != cacheKindEntry && kind != cacheKindShave) || n > 1<<30 {
			return loaded, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return loaded, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return loaded, nil // corrupt frame
		}
		if kind == cacheKindShave {
			key, words, ok := parseShavePayload(payload)
			if !ok {
				return loaded, nil
			}
			fc.storeShaved(key, words)
			loaded++
			continue
		}
		key, e, ok := parseCachePayload(payload)
		if !ok {
			return loaded, nil
		}
		fc.store(key, e)
		loaded++
	}
}

func parseCachePayload(p []byte) (string, cacheEntry, bool) {
	klen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < klen {
		return "", cacheEntry{}, false
	}
	p = p[n:]
	key := string(p[:klen])
	p = p[klen:]
	if len(p) < 1+8+8 {
		return "", cacheEntry{}, false
	}
	flags := p[0]
	var e cacheEntry
	e.sum.Feasible = flags&1 != 0
	e.sum.Unplaced = math.Float64frombits(binary.LittleEndian.Uint64(p[1:9]))
	e.sum.MaxUtilization = math.Float64frombits(binary.LittleEndian.Uint64(p[9:17]))
	p = p[17:]
	paths, n := binary.Uvarint(p)
	if n <= 0 {
		return "", cacheEntry{}, false
	}
	p = p[n:]
	moves, n := binary.Uvarint(p)
	if n <= 0 {
		return "", cacheEntry{}, false
	}
	p = p[n:]
	e.sum.Paths = int(paths)
	e.sum.Moves = int(moves)
	if flags&2 != 0 {
		wc, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < wc*8 {
			return "", cacheEntry{}, false
		}
		p = p[n:]
		words := make([]uint64, wc)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(p[i*8:])
		}
		e.core = linkset.FromWords(words, int(wc)*64)
	}
	return key, e, true
}

func parseShavePayload(p []byte) (string, []uint64, bool) {
	klen, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < klen {
		return "", nil, false
	}
	p = p[n:]
	key := string(p[:klen])
	p = p[klen:]
	wc, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < wc*8 {
		return "", nil, false
	}
	p = p[n:]
	words := make([]uint64, wc)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(p[i*8:])
	}
	return key, words, true
}

// SaveFile writes the cache to path atomically (temp file + rename),
// so a crash mid-save leaves any previous file intact.
func (fc *FeasibilityCache) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fc.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile loads path into the cache. A missing file is an empty warm
// start: (0, nil).
func (fc *FeasibilityCache) LoadFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return fc.Load(f)
}
