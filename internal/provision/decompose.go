package provision

import (
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/partition"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// Regional decomposition (DESIGN.md §15): when the enabled subgraph of
// a probe splits into connected components and every demand pair is
// intra-component, the global check factors exactly into independent
// per-component checks — Dijkstra never relaxes across a gap, residual
// capacity never aggregates across components, and the demand order of
// each component is the order-preserved restriction of the global one.
// The decomposed entry points below detect that certificate per probe,
// evaluate each component as an ordinary (cached, memoized) check over
// the same network with a projected traffic matrix, and stitch the
// results back together.
//
// Exactness conditions, and the fallbacks that guard them:
//
//   - Cross-component demand, or fewer than two components carrying
//     demand: no decomposition — the probe computes cold.
//   - The per-Route 512-move ejection budget is shared globally but
//     private per component run. If the components' move maxima sum to
//     ≥ 512 the global run could have exhausted it where the regional
//     runs did not, so the probe recomputes cold. (Below that sum no
//     cold routing can hit the budget either: a cold routing's moves
//     are the sum of its per-component restrictions.)
//   - Unplaced Gbps accumulates in global demand order; summing two or
//     more components' nonzero totals could disagree with the cold
//     float accumulation in the last bit, so that case recomputes
//     cold. (With at most one nonzero component the sum is exact.)
//   - Constraint2/3 declare a set infeasible when any demand pair is
//     unreachable — even one whose demand is under the 1e-9 placement
//     tolerance, which a per-component Constraint1 switch would miss.
//     Sub-tolerance demands therefore disable decomposition for those
//     constraints.
//
// Constraint2's failure scenarios are the global top-FailureScenarios
// heaviest pairs. Component k receives exactly its share: with m_k of
// those pairs inside it, checking the component at FailureScenarios =
// m_k selects the same pairs (the heaviest-pairs comparator is a total
// order, so a prefix restricted to a component is the component's own
// prefix). A component with m_k = 0 runs Constraint1 — base routing
// only — which is its exact share of the global check.
//
// The merged summary equals the cold one field-for-field except Moves,
// which becomes the components' sum: a sound upper bound on the cold
// maximum (it is the budget-gating quantity above) but not generally
// equal to it. Moves is decomposition-internal accounting that the
// metrics layer never exports, so nothing downstream can observe the
// difference.

// decompComp is one component's sub-problem: its enabled links, its
// projected traffic, and its Constraint2 scenario share.
type decompComp struct {
	include *linkset.Set
	tm      *traffic.Matrix
	fs      int
}

// CheckDecomposed is Check with regional decomposition: border-
// separable probes are evaluated per component and stitched exactly;
// everything else computes cold. Answers are always identical to
// Check's (up to the internal Moves bound documented above).
func (fc *FeasibilityCache) CheckDecomposed(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64) (bool, CacheSummary) {
	opts = opts.withDefaults()
	sum, _ := fc.checkedDecomposed(p, include, tm, c, opts, metric, false)
	return sum.Feasible, sum
}

// CheckCoreDecomposed is CheckCore with regional decomposition. The
// merged core is the union of the component cores — exactly the cold
// core, since every cold routing is the disjoint union of its
// component restrictions.
func (fc *FeasibilityCache) CheckCoreDecomposed(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64) (bool, *linkset.Set) {
	opts = opts.withDefaults()
	sum, core := fc.checkedDecomposed(p, include, tm, c, opts, metric, true)
	return sum.Feasible, core
}

func (fc *FeasibilityCache) checkedDecomposed(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64, needCore bool) (CacheSummary, *linkset.Set) {
	key := fc.key(p, include, tm, c, opts, metric)
	if e, ok := fc.peek(key, needCore); ok {
		return e.sum, e.core
	}
	fc.misses.Add(1)
	if comps := decomposePlan(p, include, tm, c, opts); comps != nil {
		if sum, core, ok := fc.checkParts(p, c, opts, metric, comps, needCore); ok {
			fc.decompositions.Add(1)
			e := cacheEntry{sum: sum, core: core}
			if fc.store(key, e) {
				recordCheck(opts.Obs, c, sum)
			}
			return sum, core
		}
	}
	return fc.compute(key, p, include, tm, c, opts, metric, needCore)
}

// decomposePlan builds the per-component sub-problems for a probe, or
// returns nil when the separability certificate does not hold.
func decomposePlan(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options) []decompComp {
	pt := partition.Components(p, include)
	if pt.NumComp < 2 {
		return nil
	}
	hasDemand := make([]bool, pt.NumComp)
	separable := true
	withDemand := 0
	tm.Demands(func(s, d int, g float64) {
		if !separable {
			return
		}
		if c != Constraint1 && g <= 1e-9 {
			// A sub-tolerance demand can be unreachable while the base
			// routing stays feasible; only the global unreachable-pair
			// check catches that.
			separable = false
			return
		}
		k := pt.Comp[s]
		if k != pt.Comp[d] {
			separable = false
			return
		}
		if !hasDemand[k] {
			hasDemand[k] = true
			withDemand++
		}
	})
	if !separable || withDemand < 2 {
		return nil
	}

	ws := opts.Workspace
	wsOK := ws != nil && ws.p == p
	var proj []*traffic.Matrix
	if wsOK {
		proj = ws.projections(tm, pt)
	} else {
		proj = projectMatrix(tm, pt)
	}

	incs := make([]*linkset.Set, pt.NumComp)
	for k, ok := range hasDemand {
		if ok {
			incs[k] = linkset.New(len(p.Links))
		}
	}
	for _, l := range p.Links {
		if include != nil && !include.Contains(l.ID) {
			continue
		}
		// Enabled links never cross components.
		if s := incs[pt.Comp[l.A]]; s != nil {
			s.Add(l.ID)
		}
	}

	var fsOf []int
	if c == Constraint2 {
		fsOf = make([]int, pt.NumComp)
		var pairs [][2]int
		if wsOK {
			pairs = ws.heaviest(tm, opts.FailureScenarios)
		} else {
			pairs = heaviestPairs(tm, opts.FailureScenarios)
		}
		for _, q := range pairs {
			fsOf[pt.Comp[q[0]]]++
		}
	}

	comps := make([]decompComp, 0, withDemand)
	for k := 0; k < pt.NumComp; k++ {
		if !hasDemand[k] {
			continue
		}
		fs := 0
		if fsOf != nil {
			fs = fsOf[k]
		}
		comps = append(comps, decompComp{include: incs[k], tm: proj[k], fs: fs})
	}
	return comps
}

// checkParts evaluates the components (ascending label order — labels
// are ranks of smallest router index, so the order is deterministic)
// and merges. ok=false means a fallback condition fired and the caller
// must recompute the probe cold.
func (fc *FeasibilityCache) checkParts(p *topo.POCNetwork, c Constraint, opts Options, metric uint64, comps []decompComp, needCore bool) (CacheSummary, *linkset.Set, bool) {
	// Component checks run Obs-stripped: cold evaluation of this probe
	// records one check, not one per region. The merged result records
	// against the global key below, insert-win, exactly as cold would.
	sub := opts
	sub.Obs = nil
	merged := CacheSummary{Feasible: true}
	var core *linkset.Set
	if needCore {
		core = linkset.New(len(p.Links))
	}
	unplacedComps := 0
	for _, comp := range comps {
		copts := sub
		cc := c
		if c == Constraint2 {
			if comp.fs == 0 {
				cc = Constraint1
			} else {
				copts.FailureScenarios = comp.fs
			}
		}
		sum, ccore := fc.checked(p, comp.include, comp.tm, cc, copts, metric, needCore)
		if !sum.Feasible {
			merged.Feasible = false
		}
		if sum.Unplaced != 0 {
			unplacedComps++
		}
		merged.Unplaced += sum.Unplaced
		if sum.MaxUtilization > merged.MaxUtilization {
			merged.MaxUtilization = sum.MaxUtilization
		}
		merged.Paths += sum.Paths
		merged.Moves += sum.Moves
		if needCore && ccore != nil {
			core.Union(ccore)
		}
	}
	if merged.Moves >= 512 || unplacedComps >= 2 {
		return CacheSummary{}, nil, false
	}
	if !merged.Feasible {
		core = nil
	}
	return merged, core, true
}

// projectMatrix splits tm into per-component matrices (nil for a
// component with no demand). The caller has verified every pair is
// intra-component.
func projectMatrix(tm *traffic.Matrix, pt *partition.Partition) []*traffic.Matrix {
	out := make([]*traffic.Matrix, pt.NumComp)
	tm.Demands(func(s, d int, g float64) {
		k := pt.Comp[s]
		if pt.Comp[d] != k {
			return
		}
		if out[k] == nil {
			out[k] = traffic.NewMatrix(tm.Size())
		}
		out[k].Set(s, d, g)
	})
	return out
}
