package provision

import (
	"sort"
	"testing"

	"github.com/public-option/poc/internal/traffic"
)

func TestDbgC2ShaveManual(t *testing.T) {
	p := shaveNet(10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)
	sh, ok := NewShaver(p, nil, tm, Constraint2, Options{FailureScenarios: 4})
	if !ok {
		t.Fatal("rejected")
	}
	price := func(l int) float64 { return float64(l + 1) }
	for pass := 0; pass < 3; pass++ {
		cand := sh.include.AppendIDs(nil)
		sort.Slice(cand, func(i, j int) bool {
			pi, pj := price(cand[i]), price(cand[j])
			if pi != pj {
				return pi > pj
			}
			return cand[i] < cand[j]
		})
		t.Logf("pass %d candidates %v", pass, cand)
		n := 0
		for _, id := range cand {
			got := sh.TryDrop(id)
			t.Logf("  TryDrop(%d)=%v", id, got)
			if got {
				n++
			}
		}
		if n == 0 {
			break
		}
	}
	t.Logf("final include=%v", sh.Include())
}
