// Package provision implements the POC's feasibility machinery: given
// a candidate set of offered links, can the backbone carry the traffic
// matrix — and can it keep doing so under the failure models the paper
// uses as auction constraints (§3.3)?
//
//	Constraint #1: the link set handles the offered load.
//	Constraint #2: it still does when any single (primary) path
//	               between a pair of routers has failed.
//	Constraint #3: it still does when a path between each pair of
//	               routers has failed (every demand must avoid its own
//	               primary path simultaneously).
//
// Routing is flow-level: each demand is split across up to MaxPaths
// shortest paths subject to remaining capacity. This mirrors how a
// transit fabric with MPLS-TE or similar splits aggregates, and keeps
// feasibility checks fast enough for the auction's winner
// determination, which runs them thousands of times.
//
// Link subsets are linkset.Set bitsets (nil = all links) and routing
// state lives in reusable Workspace arenas, so a steady-state check
// performs no graph rebuilds and almost no allocation — see
// DESIGN.md §10.
package provision

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/public-option/poc/internal/graph"
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// Constraint selects the resilience model for feasibility checks.
type Constraint int

const (
	// Constraint1 only requires the link set to carry the load.
	Constraint1 Constraint = iota + 1
	// Constraint2 additionally requires the load to be carried when
	// any single router-pair primary path has failed (checked one
	// scenario at a time over the heaviest pairs; see Options).
	Constraint2
	// Constraint3 requires every demand to be routable while avoiding
	// its own primary path — all pairs degraded simultaneously.
	Constraint3
)

func (c Constraint) String() string {
	switch c {
	case Constraint1:
		return "constraint#1(load)"
	case Constraint2:
		return "constraint#2(single-path-failure)"
	case Constraint3:
		return "constraint#3(per-pair-path-failure)"
	default:
		return fmt.Sprintf("constraint(%d)", int(c))
	}
}

// Options tunes the router.
type Options struct {
	// MaxPaths bounds how many alternative paths a single demand may
	// be split across. Default 12.
	MaxPaths int
	// Headroom in [0,1): fraction of each link's capacity reserved
	// (never filled by routed demand). Default 0.
	Headroom float64
	// FailureScenarios bounds how many router-pair primary-path
	// failure scenarios Constraint2 checks, taking the pairs with the
	// largest demand first. Zero means all pairs, which is exact but
	// slow on large instances. Default 32.
	FailureScenarios int
	// LinkCost overrides the routing metric for a logical link. When
	// nil, the link's physical distance is used. The auction sets
	// this to the lease price so that routing — and therefore the
	// seed of the winner determination — prefers cheap links. With
	// Workers > 1 the function is called from multiple goroutines and
	// must be safe for concurrent use (pure functions over immutable
	// data are).
	LinkCost func(l topo.LogicalLink) float64
	// Workers bounds how many goroutines Check may use to run
	// Constraint2's independent failure scenarios. 0 means
	// runtime.GOMAXPROCS(0); 1 forces the serial path. Parallelism
	// only reorders the scenario sweep — the verdict is bit-identical
	// to the serial one.
	Workers int
	// Obs, when non-nil, receives per-check metrics (verdict counts
	// per constraint, base-routing headroom and path-count
	// histograms). Recording uses only commutative registry
	// operations, so checks running in parallel counterfactuals stay
	// deterministic. The FeasibilityCache strips Obs before computing
	// and records once per distinct memo entry instead, keeping the
	// exported counts independent of cache hit/miss scheduling. Obs
	// never enters cache keys.
	Obs *obs.Registry
	// NoMemo disables the incremental-recheck memo in every workspace
	// built for this call (including the per-determination workspaces
	// an auction creates internally). Ablation and benchmark-baseline
	// knob: the memo never changes results, so NoMemo only slows the
	// call down. Like Workspace, it never enters cache keys.
	NoMemo bool
	// Workspace, when non-nil, supplies the reusable routing arenas
	// and demand caches for this call (and nested scenario routings).
	// It must have been built for the same network and the same
	// LinkCost metric. When nil — or bound to a different network — a
	// transient workspace is created per call. Like Obs, Workspace
	// never enters cache keys and never changes results, only speed.
	Workspace *Workspace

	// influence, when non-nil, collects the link-level influence set of
	// every routing run under this call: each link that wins a Dijkstra
	// relaxation anywhere in the check gets its bit ORed in. The
	// FeasibilityCache sets it to build incremental-recheck certificates
	// (see workspace memo, DESIGN.md §15). Never set by callers.
	influence *influence
}

// workerCount resolves the effective parallelism for n independent
// work items.
func (o Options) workerCount(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

func (o Options) withDefaults() Options {
	if o.MaxPaths <= 0 {
		o.MaxPaths = 12
	}
	if o.FailureScenarios == 0 {
		o.FailureScenarios = 32
	}
	if o.FailureScenarios < 0 {
		o.FailureScenarios = 1 << 30 // "all"
	}
	return o
}

// PathAssignment records one path carrying part of a demand.
type PathAssignment struct {
	Links []int // logical link IDs in order
	Gbps  float64
}

// Routing is the result of placing a traffic matrix onto a link set.
type Routing struct {
	// Assignments maps demand (src,dst) to its path assignments.
	Assignments map[[2]int][]PathAssignment
	// Used maps logical link ID to carried Gbps (sum of both directions).
	Used map[int]float64
	// Unplaced is the total demand in Gbps that could not be routed;
	// zero means the matrix fits.
	Unplaced float64
	// Ejected is the demand placed by the phase-3 ejection repair
	// (diagnostic: high values mean the greedy packing wedged).
	Ejected float64
	// UnplacedPairs lists the (src,dst) pairs with unplaced demand.
	UnplacedPairs [][2]int

	// moves is the number of ejection-repair reroutes this routing
	// consumed out of the per-Route 512-move budget. The check layer
	// folds it into CacheSummary.Moves (max over the check's routings),
	// which regional decomposition uses to prove the shared budget
	// never binds differently between the global and per-region runs.
	moves int
}

// Feasible reports whether the routing placed all demand.
func (r *Routing) Feasible() bool { return r.Unplaced <= 1e-9 }

// MaxUtilization returns the highest used/capacity ratio across links
// in the POC network p, or 0 when nothing is used.
func (r *Routing) MaxUtilization(p *topo.POCNetwork) float64 {
	mx := 0.0
	for id, used := range r.Used {
		u := used / p.Links[id].Capacity
		if u > mx {
			mx = u
		}
	}
	return mx
}

// router is one reusable routing arena: the full graph over every
// logical link (candidate subsets toggle Edge.Disabled via apply), the
// pooled Dijkstra engines, and slice-backed residual/usage scratch.
// Arenas are owned by a Workspace and must be used by one goroutine at
// a time (acquire/release).
type router struct {
	p       *topo.POCNetwork
	g       *graph.Graph
	pr      *graph.PointRouter
	tr      *graph.TreeRouter
	edgeFor [][2]graph.EdgeID // logical link -> directed edge IDs
	linkFor []int32           // directed edge -> logical link
	resid   []float64         // residual Gbps per logical link
	enabled *linkset.Set      // links currently not Disabled in g

	// usedScratch/touched accumulate per-link usage during a routing;
	// touched lists the dirtied indices so zeroing is O(paths), not
	// O(links). The accumulation folds in the same sorted-pair order
	// as the seed's map-backed version, so the float sums — and the
	// exported utilization metrics — stay byte-identical.
	usedScratch []float64
	touched     []int

	// traceBits is the edge-level relaxation trace buffer, installed on
	// both Dijkstra engines while an influence sink is active.
	traceBits []uint64
}

// residFilter admits edges with at least want Gbps of residual
// capacity on their logical link, excluding the links in avoid.
func (rt *router) residFilter(want float64, avoid *linkset.Set) graph.EdgeFilter {
	resid, linkFor := rt.resid, rt.linkFor
	if avoid == nil {
		return func(id graph.EdgeID, e *graph.Edge) bool {
			return resid[linkFor[id]] >= want
		}
	}
	return func(id graph.EdgeID, e *graph.Edge) bool {
		link := int(linkFor[id])
		return !avoid.Contains(link) && resid[link] >= want
	}
}

// place routes gbps from src to dst over up to MaxPaths paths,
// avoiding the given logical links entirely. It returns the
// assignments made and the amount left unplaced.
func (rt *router) place(src, dst int, gbps float64, maxPaths int, avoid *linkset.Set) ([]PathAssignment, float64) {
	var out []PathAssignment
	remaining := gbps
	for attempt := 0; attempt < maxPaths && remaining > 1e-9; attempt++ {
		// Find the cheapest path that can carry any positive amount.
		path := rt.pr.Path(graph.NodeID(src), graph.NodeID(dst), rt.residFilter(1e-9, avoid))
		if math.IsInf(path.Cost, 1) {
			break
		}
		// Bottleneck over residuals.
		bn := remaining
		links := make([]int, len(path.Edges))
		for i, eid := range path.Edges {
			l := int(rt.linkFor[eid])
			links[i] = l
			if rt.resid[l] < bn {
				bn = rt.resid[l]
			}
		}
		if bn <= 1e-9 {
			break
		}
		for _, l := range links {
			rt.resid[l] -= bn
		}
		out = append(out, PathAssignment{Links: links, Gbps: bn})
		remaining -= bn
	}
	return out, remaining
}

// ejectAndPlace tries to place up to gbps for the pair along its
// cheapest capacity-oblivious path, freeing deficit links by
// rerouting other pairs' assignments off them (whole assignments,
// smallest first). It mutates res and the residuals, decrements
// *moves per rerouted assignment, and returns the amount placed.
func (rt *router) ejectAndPlace(res *Routing, pair [2]int, gbps float64, avoid *linkset.Set, moves *int) (placed float64, blocker int) {
	// Cheapest path over all enabled links (capacity ignored),
	// respecting only the pair's avoid set.
	filter := func(id graph.EdgeID, e *graph.Edge) bool {
		return !avoid.Contains(int(rt.linkFor[id]))
	}
	path := rt.pr.Path(graph.NodeID(pair[0]), graph.NodeID(pair[1]), filter)
	if math.IsInf(path.Cost, 1) || len(path.Edges) == 0 {
		return 0, -1
	}
	links := make([]int, len(path.Edges))
	want := gbps
	for i, eid := range path.Edges {
		links[i] = int(rt.linkFor[eid])
	}
	// How much can this path carry if we free what is freeable? Try to
	// raise every deficit link's residual to `want`, reducing `want`
	// when a link cannot be freed that far. Track the tightest link so
	// the caller can detour around it on the next attempt.
	blocker = -1
	blockerResid := math.Inf(1)
	for _, l := range links {
		if rt.resid[l] >= want {
			continue
		}
		rt.freeLink(res, l, want-rt.resid[l], pair, moves)
		if rt.resid[l] < want {
			want = rt.resid[l]
		}
		if rt.resid[l] < blockerResid {
			blockerResid = rt.resid[l]
			blocker = l
		}
		if want <= 1e-9 {
			return 0, blocker
		}
	}
	if want <= 1e-9 {
		return 0, blocker
	}
	for _, l := range links {
		rt.resid[l] -= want
	}
	res.Assignments[pair] = append(res.Assignments[pair], PathAssignment{Links: links, Gbps: want})
	return want, blocker
}

// freeLink tries to raise link l's residual by `need` Gbps by
// rerouting other pairs' assignments off it (smallest assignments
// first, deterministic order). The displaced pair keeps its avoid
// set; reroutes that cannot fully re-place are rolled back.
func (rt *router) freeLink(res *Routing, l int, need float64, exclude [2]int, moves *int) float64 {
	type cand struct {
		pair [2]int
		idx  int
	}
	var cands []cand
	for pair, asgs := range res.Assignments {
		if pair == exclude {
			continue
		}
		for i, a := range asgs {
			for _, al := range a.Links {
				if al == l {
					cands = append(cands, cand{pair, i})
					break
				}
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		ai := res.Assignments[cands[i].pair][cands[i].idx]
		aj := res.Assignments[cands[j].pair][cands[j].idx]
		if ai.Gbps != aj.Gbps {
			return ai.Gbps < aj.Gbps
		}
		if cands[i].pair != cands[j].pair {
			if cands[i].pair[0] != cands[j].pair[0] {
				return cands[i].pair[0] < cands[j].pair[0]
			}
			return cands[i].pair[1] < cands[j].pair[1]
		}
		return cands[i].idx < cands[j].idx
	})
	freed := 0.0
	banned := linkset.New(len(rt.p.Links))
	banned.Add(l)
	for _, c := range cands {
		if freed >= need || *moves <= 0 {
			break
		}
		asgs := res.Assignments[c.pair]
		a := asgs[c.idx]
		if a.Gbps == 0 {
			continue // already displaced in this pass
		}
		// Release.
		for _, al := range a.Links {
			rt.resid[al] += a.Gbps
		}
		// Re-place avoiding l.
		*moves--
		replaced, left := rt.place(c.pair[0], c.pair[1], a.Gbps, 8, banned)
		if left > 1e-9 {
			// Rollback: restore the original assignment.
			for _, r := range replaced {
				for _, al := range r.Links {
					rt.resid[al] += r.Gbps
				}
			}
			for _, al := range a.Links {
				rt.resid[al] -= a.Gbps
			}
			continue
		}
		// Commit: zero out the old slot and append the new ones.
		asgs[c.idx] = PathAssignment{Gbps: 0}
		res.Assignments[c.pair] = append(asgs, replaced...)
		freed += a.Gbps
	}
	return freed
}

// demand is an internal flattened demand entry.
type demand struct {
	src, dst int
	gbps     float64
}

func flatten(tm *traffic.Matrix) []demand {
	// Count first so the slice is allocated exactly once.
	n := 0
	tm.Demands(func(s, d int, g float64) { n++ })
	ds := make([]demand, 0, n)
	tm.Demands(func(s, d int, g float64) { ds = append(ds, demand{s, d, g}) })
	// Largest first: big aggregates get the short paths, which is both
	// realistic and makes the greedy packing more effective.
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].gbps != ds[j].gbps {
			return ds[i].gbps > ds[j].gbps
		}
		if ds[i].src != ds[j].src {
			return ds[i].src < ds[j].src
		}
		return ds[i].dst < ds[j].dst
	})
	return ds
}

// Route places tm onto the link subset include (nil = all links) and
// returns the routing. avoidPrimary, when non-nil, maps a (src,dst)
// pair to the set of logical links that demand must not use
// (Constraint #3 uses this to ban each pair's primary path).
//
// Routing runs in two phases. Phase 1 computes one shortest-path tree
// per source and sends each demand down its tree path as far as
// residual capacity allows — this covers the vast majority of demand
// with O(sources) Dijkstra runs. Phase 2 repairs the remainder (and
// all demands with avoid sets) with per-demand point-to-point
// searches over the residual capacities.
func Route(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, opts Options, avoidPrimary map[[2]int]*linkset.Set) *Routing {
	opts = opts.withDefaults().resolve(p)
	ws := opts.Workspace
	rt := ws.acquire()
	defer ws.release(rt)
	if opts.influence != nil {
		rt.startTrace()
		defer rt.stopTrace(opts.influence)
	}
	rt.apply(include, opts.Headroom, ws.all)
	return rt.route(ws, tm, opts, avoidPrimary)
}

// route runs the three routing phases on an arena that has already
// been configured via apply.
func (rt *router) route(ws *Workspace, tm *traffic.Matrix, opts Options, avoidPrimary map[[2]int]*linkset.Set) *Routing {
	_, bySrc, srcs := ws.demands(tm)
	res := &Routing{
		Assignments: make(map[[2]int][]PathAssignment, len(srcs)*2),
	}

	var phase2 []demand
	usable := rt.residFilter(1e-9, nil)
	for _, s := range srcs {
		tree := rt.tr.Tree(graph.NodeID(s), usable)
		for _, d := range bySrc[s] {
			pair := [2]int{d.src, d.dst}
			if avoidPrimary != nil && avoidPrimary[pair] != nil {
				phase2 = append(phase2, d)
				continue
			}
			if !tree.Reachable(graph.NodeID(d.dst)) {
				phase2 = append(phase2, d)
				continue
			}
			path := tree.PathTo(rt.g, graph.NodeID(d.dst))
			bn := d.gbps
			links := make([]int, len(path.Edges))
			for i, eid := range path.Edges {
				l := int(rt.linkFor[eid])
				links[i] = l
				if rt.resid[l] < bn {
					bn = rt.resid[l]
				}
			}
			if bn <= 1e-9 {
				phase2 = append(phase2, d)
				continue
			}
			for _, l := range links {
				rt.resid[l] -= bn
			}
			res.Assignments[pair] = append(res.Assignments[pair], PathAssignment{Links: links, Gbps: bn})
			if rest := d.gbps - bn; rest > 1e-9 {
				phase2 = append(phase2, demand{d.src, d.dst, rest})
			}
		}
	}

	sort.Slice(phase2, func(i, j int) bool {
		if phase2[i].gbps != phase2[j].gbps {
			return phase2[i].gbps > phase2[j].gbps
		}
		if phase2[i].src != phase2[j].src {
			return phase2[i].src < phase2[j].src
		}
		return phase2[i].dst < phase2[j].dst
	})
	var stuck []demand
	for _, d := range phase2 {
		pair := [2]int{d.src, d.dst}
		var avoid *linkset.Set
		if avoidPrimary != nil {
			avoid = avoidPrimary[pair]
		}
		budget := opts.MaxPaths - len(res.Assignments[pair])
		if budget <= 0 {
			stuck = append(stuck, d)
			continue
		}
		asg, left := rt.place(d.src, d.dst, d.gbps, budget, avoid)
		res.Assignments[pair] = append(res.Assignments[pair], asg...)
		if left > 1e-9 {
			stuck = append(stuck, demand{d.src, d.dst, left})
		}
	}

	// Phase 3: ejection repair. A greedy packing can wedge a sliver of
	// demand even when a feasible packing exists (earlier demands took
	// capacity later ones needed). For each stuck remainder, walk its
	// cheapest path and try to reroute other pairs' assignments off
	// the deficit links, then place. Bounded by a global move budget,
	// so the phase stays cheap and deterministic.
	moves := 512
	for _, d := range stuck {
		pair := [2]int{d.src, d.dst}
		var avoid *linkset.Set
		if avoidPrimary != nil {
			avoid = avoidPrimary[pair]
		}
		left := d.gbps
		pathBudget := opts.MaxPaths - len(res.Assignments[pair])
		// detour accumulates the worst deficit link of each failed
		// attempt so later attempts explore different paths.
		detour := linkset.New(len(rt.p.Links))
		detour.Union(avoid)
		for attempt := 0; attempt < 8 && left > 1e-9 && moves > 0 && pathBudget > 0; attempt++ {
			placed, blocker := rt.ejectAndPlace(res, pair, left, detour, &moves)
			left -= placed
			res.Ejected += placed
			if placed <= 1e-9 {
				if blocker < 0 {
					break // no path at all
				}
				detour.Add(blocker)
			} else {
				pathBudget--
			}
		}
		if left > 1e-9 {
			res.Unplaced += left
			res.UnplacedPairs = append(res.UnplacedPairs, pair)
		}
	}
	res.moves = 512 - moves

	// Strip the zero-Gbps tombstones the ejection phase leaves behind,
	// then account usage.
	for pair, asgs := range res.Assignments {
		kept := asgs[:0]
		for _, a := range asgs {
			if a.Gbps > 0 {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			delete(res.Assignments, pair)
		} else {
			res.Assignments[pair] = kept
		}
	}
	// Deterministic pair order: Used is a float accumulation, and map
	// iteration order would perturb the sums at ULP scale run to run —
	// invisible to feasibility verdicts, but it leaks into exported
	// utilization metrics, which must be byte-identical. The fold goes
	// through the arena's usedScratch slice (same addition sequence as
	// the seed's map-backed fold) and materializes one exact-size map.
	pairs := make([][2]int, 0, len(res.Assignments))
	for pair := range res.Assignments {
		pairs = append(pairs, pair)
	}
	sortPairs(pairs)
	for _, pair := range pairs {
		for _, a := range res.Assignments[pair] {
			for _, l := range a.Links {
				if rt.usedScratch[l] == 0 {
					rt.touched = append(rt.touched, l)
				}
				rt.usedScratch[l] += a.Gbps
			}
		}
	}
	res.Used = make(map[int]float64, len(rt.touched))
	for _, l := range rt.touched {
		res.Used[l] = rt.usedScratch[l]
		rt.usedScratch[l] = 0
	}
	rt.touched = rt.touched[:0]
	return res
}

// PrimaryPaths computes, for every demand pair in tm, the links of its
// shortest path in the subset include, ignoring capacity. Pairs with
// no path at all map to nil and are reported in the second return.
func PrimaryPaths(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix) (map[[2]int]*linkset.Set, [][2]int) {
	return PrimaryPathsOpts(p, include, tm, Options{})
}

// PrimaryPathsOpts is PrimaryPaths with an explicit routing metric.
func PrimaryPathsOpts(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, opts Options) (map[[2]int]*linkset.Set, [][2]int) {
	opts = opts.resolve(p)
	ws := opts.Workspace
	rt := ws.acquire()
	defer ws.release(rt)
	if opts.influence != nil {
		rt.startTrace()
		defer rt.stopTrace(opts.influence)
	}
	rt.apply(include, 0, ws.all)

	var unreachable [][2]int
	// One Dijkstra per source covers all destinations.
	dsts, srcs := ws.primaryDemands(tm)
	primaries := make(map[[2]int]*linkset.Set, len(srcs))
	for _, s := range srcs {
		tree := rt.tr.Tree(graph.NodeID(s), nil)
		for _, d := range dsts[s] {
			if !tree.Reachable(graph.NodeID(d)) {
				unreachable = append(unreachable, [2]int{s, d})
				continue
			}
			path := tree.PathTo(rt.g, graph.NodeID(d))
			set := linkset.New(len(p.Links))
			for _, eid := range path.Edges {
				set.Add(int(rt.linkFor[eid]))
			}
			primaries[[2]int{s, d}] = set
		}
	}
	return primaries, unreachable
}

// headroomBuckets is the fixed layout for the capacity-headroom
// histogram (1 − max link utilization of the routing a check kept).
var headroomBuckets = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}

// pathsBuckets is the fixed layout for the paths-per-check histogram.
var pathsBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// recordCheck publishes one feasibility verdict to the registry using
// commutative operations only (safe from parallel counterfactuals).
func recordCheck(r *obs.Registry, c Constraint, sum CacheSummary) {
	if r == nil {
		return
	}
	tag := fmt.Sprintf("c%d", int(c))
	r.Add("provision.check.computed."+tag, 1)
	if sum.Feasible {
		r.Add("provision.check.feasible."+tag, 1)
		r.Observe("provision.check.headroom", headroomBuckets, 1-sum.MaxUtilization)
		r.Observe("provision.check.paths", pathsBuckets, float64(sum.Paths))
	} else {
		r.Add("provision.check.infeasible."+tag, 1)
	}
}

// summarize condenses a check's verdict and kept routing into the
// memo/metrics summary.
func summarize(p *topo.POCNetwork, feasible bool, r *Routing) CacheSummary {
	paths := 0
	for _, asgs := range r.Assignments {
		paths += len(asgs)
	}
	return CacheSummary{
		Feasible:       feasible,
		Unplaced:       r.Unplaced,
		MaxUtilization: r.MaxUtilization(p),
		Paths:          paths,
		Moves:          r.moves,
	}
}

// Check reports whether the link subset include satisfies the given
// constraint for tm. The returned Routing is the base (no-failure)
// routing; for Constraint3 it is the degraded routing.
func Check(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options) (bool, *Routing) {
	opts = opts.withDefaults().resolve(p)
	ok, r := checkRouting(p, include, tm, c, opts)
	if opts.Obs != nil {
		recordCheck(opts.Obs, c, summarize(p, ok, r))
	}
	return ok, r
}

// checkRouting is Check without metrics recording; opts must already
// have defaults and a workspace applied.
func checkRouting(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options) (bool, *Routing) {
	switch c {
	case Constraint1:
		r := Route(p, include, tm, opts, nil)
		return r.Feasible(), r

	case Constraint2:
		base := Route(p, include, tm, opts, nil)
		if !base.Feasible() {
			return false, base
		}
		primaries, unreachable := PrimaryPathsOpts(p, include, tm, opts)
		if len(unreachable) > 0 {
			return false, base
		}
		var scenarios []*linkset.Set
		for _, pair := range opts.Workspace.heaviest(tm, opts.FailureScenarios) {
			if failed := primaries[pair]; failed != nil && !failed.Empty() {
				scenarios = append(scenarios, failed)
			}
		}
		// Each scenario fails one pair's primary path for everyone and
		// re-routes from scratch — every worker acquires its own arena,
		// so the scenarios share no mutable state and fan across
		// workers. The verdict (all feasible?) is order-independent,
		// which keeps the parallel sweep bit-identical to the serial one.
		//
		// A scenario-stage failure aborts the sweep early, so WHICH
		// scenarios were routed is scheduling luck — the influence sink
		// would under-approximate. The uniform rule (serial path too, so
		// worker count can never change memo contents' validity) is to
		// invalidate the sink on any scenario-stage infeasibility. The
		// per-routing move maxima are folded only on the all-feasible
		// verdict, where every scenario completed and the max is
		// order-independent.
		if workers := opts.workerCount(len(scenarios)); workers > 1 {
			var wg sync.WaitGroup
			var next atomic.Int64
			var infeasible atomic.Bool
			workerMoves := make([]int, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(scenarios) || infeasible.Load() {
							return // done, or early abort on first failure
						}
						sub := subtract(include, scenarios[i], len(p.Links))
						r := Route(p, sub, tm, opts, nil)
						if !r.Feasible() {
							infeasible.Store(true)
							return
						}
						if r.moves > workerMoves[w] {
							workerMoves[w] = r.moves
						}
					}
				}(w)
			}
			wg.Wait()
			if infeasible.Load() {
				opts.influence.markInvalid()
				return false, base
			}
			for _, m := range workerMoves {
				if m > base.moves {
					base.moves = m
				}
			}
			return true, base
		}
		for _, failed := range scenarios {
			sub := subtract(include, failed, len(p.Links))
			r := Route(p, sub, tm, opts, nil)
			if !r.Feasible() {
				opts.influence.markInvalid()
				return false, base
			}
			if r.moves > base.moves {
				base.moves = r.moves
			}
		}
		return true, base

	case Constraint3:
		base := Route(p, include, tm, opts, nil)
		if !base.Feasible() {
			return false, base
		}
		primaries, unreachable := PrimaryPathsOpts(p, include, tm, opts)
		if len(unreachable) > 0 {
			return false, base
		}
		r := Route(p, include, tm, opts, primaries)
		if base.moves > r.moves {
			r.moves = base.moves
		}
		return r.Feasible(), r

	default:
		panic(fmt.Sprintf("provision: unknown constraint %d", int(c)))
	}
}

// CheckCore is Check fused with CoreLinks: it reports whether include
// satisfies the constraint and, when it does, the union of links used
// by the base and every degraded routing — sharing the routing work
// that separate Check + CoreLinks calls would duplicate (both route
// the base matrix and every failure scenario). On an infeasible set
// the core is nil. The verdict is bit-identical to Check's and the
// core bit-identical to CoreLinks's on feasible sets.
func CheckCore(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options) (bool, *linkset.Set) {
	opts = opts.withDefaults().resolve(p)
	ok, core, sum := checkCore(p, include, tm, c, opts)
	if opts.Obs != nil {
		recordCheck(opts.Obs, c, sum)
	}
	return ok, core
}

// checkCore is CheckCore without metrics recording, additionally
// returning the same summary a Check on this key would produce (the
// memo stores it so hits answer either entry point). opts must
// already have defaults and a workspace applied.
func checkCore(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options) (bool, *linkset.Set, CacheSummary) {
	core := linkset.New(len(p.Links))
	add := func(r *Routing) {
		for id, used := range r.Used {
			if used > 0 {
				core.Add(id)
			}
		}
	}
	base := Route(p, include, tm, opts, nil)
	if !base.Feasible() {
		return false, nil, summarize(p, false, base)
	}
	add(base)
	switch c {
	case Constraint1:
		return true, core, summarize(p, true, base)

	case Constraint2:
		primaries, unreachable := PrimaryPathsOpts(p, include, tm, opts)
		if len(unreachable) > 0 {
			return false, nil, summarize(p, false, base)
		}
		var scenarios []*linkset.Set
		for _, pair := range opts.Workspace.heaviest(tm, opts.FailureScenarios) {
			if failed := primaries[pair]; failed != nil && !failed.Empty() {
				scenarios = append(scenarios, failed)
			}
		}
		// Same invalidation and move-folding rules as checkRouting: the
		// early-abort sweep makes the influence sink schedule-dependent
		// on scenario-stage failures, and scenario move maxima are only
		// well-defined on the all-feasible verdict.
		if workers := opts.workerCount(len(scenarios)); workers > 1 {
			var wg sync.WaitGroup
			var mu sync.Mutex
			var next atomic.Int64
			var infeasible atomic.Bool
			scenarioMoves := 0
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(scenarios) || infeasible.Load() {
							return
						}
						r := Route(p, subtract(include, scenarios[i], len(p.Links)), tm, opts, nil)
						if !r.Feasible() {
							infeasible.Store(true)
							return
						}
						mu.Lock()
						add(r)
						if r.moves > scenarioMoves {
							scenarioMoves = r.moves
						}
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			if infeasible.Load() {
				opts.influence.markInvalid()
				return false, nil, summarize(p, false, base)
			}
			if scenarioMoves > base.moves {
				base.moves = scenarioMoves
			}
			return true, core, summarize(p, true, base)
		}
		for _, failed := range scenarios {
			r := Route(p, subtract(include, failed, len(p.Links)), tm, opts, nil)
			if !r.Feasible() {
				opts.influence.markInvalid()
				return false, nil, summarize(p, false, base)
			}
			add(r)
			if r.moves > base.moves {
				base.moves = r.moves
			}
		}
		return true, core, summarize(p, true, base)

	case Constraint3:
		primaries, unreachable := PrimaryPathsOpts(p, include, tm, opts)
		if len(unreachable) > 0 {
			return false, nil, summarize(p, false, base)
		}
		r := Route(p, include, tm, opts, primaries)
		if base.moves > r.moves {
			r.moves = base.moves
		}
		if !r.Feasible() {
			return false, nil, summarize(p, false, r)
		}
		add(r)
		return true, core, summarize(p, true, r)

	default:
		panic(fmt.Sprintf("provision: unknown constraint %d", int(c)))
	}
}

// CoreLinks returns the union of logical links used by the base
// routing and by every degraded routing the constraint entails. Links
// outside this set are idle under the constraint's scenarios, which
// makes the set the natural seed for the auction's winner
// determination: everything else is a candidate to drop.
func CoreLinks(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options) *linkset.Set {
	opts = opts.withDefaults().resolve(p)
	core := linkset.New(len(p.Links))
	add := func(r *Routing) {
		for id, used := range r.Used {
			if used > 0 {
				core.Add(id)
			}
		}
	}
	add(Route(p, include, tm, opts, nil))
	switch c {
	case Constraint1:
	case Constraint2:
		primaries, _ := PrimaryPathsOpts(p, include, tm, opts)
		var scenarios []*linkset.Set
		for _, pair := range opts.Workspace.heaviest(tm, opts.FailureScenarios) {
			if failed := primaries[pair]; failed != nil && !failed.Empty() {
				scenarios = append(scenarios, failed)
			}
		}
		// The union of used links is order-independent, so the degraded
		// routings can run concurrently with a mutex-guarded merge.
		if workers := opts.workerCount(len(scenarios)); workers > 1 {
			var wg sync.WaitGroup
			var mu sync.Mutex
			var next atomic.Int64
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(scenarios) {
							return
						}
						r := Route(p, subtract(include, scenarios[i], len(p.Links)), tm, opts, nil)
						mu.Lock()
						add(r)
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			break
		}
		for _, failed := range scenarios {
			add(Route(p, subtract(include, failed, len(p.Links)), tm, opts, nil))
		}
	case Constraint3:
		primaries, _ := PrimaryPathsOpts(p, include, tm, opts)
		add(Route(p, include, tm, opts, primaries))
	}
	return core
}

// heaviestPairs returns up to n demand pairs ordered by descending
// demand.
func heaviestPairs(tm *traffic.Matrix, n int) [][2]int {
	type pd struct {
		pair [2]int
		g    float64
	}
	var all []pd
	tm.Demands(func(s, d int, g float64) { all = append(all, pd{[2]int{s, d}, g}) })
	sort.Slice(all, func(i, j int) bool {
		if all[i].g != all[j].g {
			return all[i].g > all[j].g
		}
		return all[i].pair[0]*1<<16+all[i].pair[1] < all[j].pair[0]*1<<16+all[j].pair[1]
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([][2]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].pair
	}
	return out
}

// subtract returns include minus removed. A nil include means "all
// links", so the result enumerates all links except removed. Two word
// scans — no per-ID hashing.
func subtract(include *linkset.Set, removed *linkset.Set, total int) *linkset.Set {
	out := include.Clone()
	if out == nil {
		out = linkset.All(total)
	}
	out.Subtract(removed)
	return out
}
