package provision

import (
	"bytes"
	"testing"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/traffic"
)

func TestCacheEvictionNeverChangesAnswers(t *testing.T) {
	p := shaveNet(10, 10, 10, 10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)

	// Distinct keys: every subset of links of size >= 1, probed twice
	// (second lap re-probes evicted keys).
	var probes []*linkset.Set
	for i := 1; i < 1<<6; i++ {
		s := linkset.New(len(p.Links))
		for b := 0; b < 6; b++ {
			if i&(1<<b) != 0 {
				s.Add(b)
			}
		}
		probes = append(probes, s)
	}
	probes = append(probes, probes[:20]...)

	unbounded := NewFeasibilityCache()
	obsU := obs.New()
	bounded := NewFeasibilityCache()
	bounded.SetCapacity(8)
	obsB := obs.New()

	for i, s := range probes {
		optsU := Options{Obs: obsU}
		optsB := Options{Obs: obsB}
		okU, sumU := unbounded.Check(p, s, tm, Constraint1, optsU, 0)
		okB, sumB := bounded.Check(p, s, tm, Constraint1, optsB, 0)
		if okU != okB || sumU != sumB {
			t.Fatalf("probe %d: bounded answer diverged: %v %+v vs %v %+v", i, okU, sumU, okB, sumB)
		}
		if st := bounded.Stats(); st.Entries > 8 {
			t.Fatalf("probe %d: %d entries exceed capacity", i, st.Entries)
		}
	}

	st := bounded.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions at capacity 8 over 83 probes — test is vacuous")
	}
	if st.Capacity != 8 {
		t.Fatalf("capacity = %d, want 8", st.Capacity)
	}

	// Obs exports must be byte-identical: eviction + re-probe must not
	// double-count any per-distinct-key metric.
	ju, err := obsU.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := obsB.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ju, jb) {
		t.Fatalf("obs exports diverged under eviction:\nunbounded: %s\nbounded:   %s", ju, jb)
	}
}

// TestCacheEvictionIsInsertionOrder pins the eviction policy: at
// capacity k, inserting k+1 distinct keys evicts exactly the first
// inserted one — re-probing it misses while every later key still hits.
func TestCacheEvictionIsInsertionOrder(t *testing.T) {
	p := shaveNet(10, 10, 10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 4)

	fc := NewFeasibilityCache()
	fc.SetCapacity(3)
	set := func(ids ...int) *linkset.Set { return linkset.FromIDs(ids, len(p.Links)) }
	keys := []*linkset.Set{set(0), set(1), set(2), set(3)} // 4th insert evicts set(0)
	for _, s := range keys {
		fc.Check(p, s, tm, Constraint1, Options{}, 0)
	}
	if st := fc.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	misses := fc.Misses()
	fc.Check(p, set(1), tm, Constraint1, Options{}, 0) // survivor: hit
	if fc.Misses() != misses {
		t.Fatal("second-inserted key was evicted; policy is not insertion order")
	}
	fc.Check(p, set(0), tm, Constraint1, Options{}, 0) // oldest: evicted, miss
	if fc.Misses() != misses+1 {
		t.Fatal("oldest key still resident; eviction did not happen in insertion order")
	}
}
