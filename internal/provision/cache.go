package provision

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"github.com/public-option/poc/internal/fnv64"
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// CacheSummary is the memoized outcome of one feasibility check.
type CacheSummary struct {
	Feasible bool
	// Unplaced is the Gbps the base routing could not place (0 when
	// the check passed its base routing).
	Unplaced float64
	// MaxUtilization is the highest used/capacity ratio of the base
	// routing.
	MaxUtilization float64
	// Paths counts the path assignments of the routing the check kept
	// (base routing, or the degraded routing for Constraint3).
	Paths int
	// Moves is the largest ejection-repair move count any single
	// routing in the check consumed (out of the per-Route 512 budget).
	// Regional decomposition sums it across regions to prove the
	// budget never binds differently between the global and per-region
	// runs; the metrics layer never exports it.
	Moves int
}

// FeasibilityCache memoizes Check outcomes across the near-identical
// link sets the auction's winner determination probes: the batch
// refinement re-tries the same expensive links round after round, and
// every counterfactual run replays most of the main run's structure.
// Check is deterministic, so replaying a hit is bit-identical to
// recomputing.
//
// Keys are the exact canonical encoding of (include set, constraint,
// the routing-relevant Options, traffic-matrix fingerprint, metric
// tag) — no lossy hashing, so a hit can never return the answer for a
// different set. The include set contributes its raw bitset words
// (O(L/64) to encode, no per-lookup sort). Options.LinkCost is a
// function and cannot be encoded; callers that vary the metric (e.g.
// the auction's warm-biased counterfactuals) must pass a distinct
// metric tag per LinkCost so entries never cross metrics.
//
// The cache is safe for concurrent use. It assumes the traffic
// matrices it sees are not mutated while cached (their fingerprint is
// computed once per *Matrix pointer).
type FeasibilityCache struct {
	mu sync.RWMutex
	m  map[string]cacheEntry

	// Bounded mode (capacity > 0): order is an insertion-order ring of
	// the currently resident keys — the slot the next insert overwrites
	// always holds the oldest entry, so eviction is deterministic in
	// insertion order, never map order. seen records every distinct key
	// ever stored so the insert-win metrics rule survives an
	// evict-then-reinsert: recordCheck still fires exactly once per
	// distinct key, keeping obs exports byte-identical to an unbounded
	// cache. seen holds only key strings; the cap bounds the dominant
	// memory (summaries, cores, map buckets).
	capacity  int
	order     []string
	orderPos  int
	seen      map[string]struct{}
	evictions int64

	hits   atomic.Int64
	misses atomic.Int64
	// decompositions counts probes answered by stitching per-component
	// sub-checks (decompose.go) rather than one global routing.
	decompositions atomic.Int64

	// Shave memo: the auction's shave-to-1-minimality step is a
	// deterministic function of exactly the material the check key
	// already encodes (network, start set, matrix, constraint, options,
	// price metric), but it routes internally without going through
	// Check — at continental scale it dominates a warm run's wall
	// clock. Memoizing its result turns a persisted-cache replay into
	// pure lookup. Keys share fc.key's encoding behind a prefix byte no
	// check key can start with; values are the shaved set's raw words.
	// Bounded mode evicts on a separate insertion-order ring of the
	// same capacity.
	shaved      map[string][]uint64
	shavedOrder []string
	shavedPos   int
	shaveHits   atomic.Int64
	shaveMisses atomic.Int64

	tmMu sync.Mutex
	tmFP map[*traffic.Matrix]uint64

	netMu sync.Mutex
	netFP map[*topo.POCNetwork]uint64
}

// cacheEntry is one memoized check. core is non-nil only when the set
// was feasible and a CheckCore call computed the used-link union; the
// set is shared with every subsequent hit and must be treated as
// read-only.
type cacheEntry struct {
	sum  CacheSummary
	core *linkset.Set
}

// NewFeasibilityCache returns an empty concurrency-safe cache.
func NewFeasibilityCache() *FeasibilityCache {
	return &FeasibilityCache{
		m:      make(map[string]cacheEntry, 256),
		shaved: make(map[string][]uint64, 64),
		// A cache usually sees a handful of matrices (the auction's
		// one, plus chaos reauction variants) — pre-size small.
		tmFP:  make(map[*traffic.Matrix]uint64, 4),
		netFP: make(map[*topo.POCNetwork]uint64, 4),
	}
}

// SetCapacity bounds the cache to at most n resident entries, evicting
// the oldest-inserted entry on overflow (deterministic insertion-order
// ring, not map order). n <= 0 restores the unbounded default. Any
// resident entries are dropped, so call it before first use (or treat
// it as a Reset). Eviction never changes answers — a re-probed evicted
// key recomputes the identical result — and never perturbs obs exports
// (metrics record once per distinct key ever, eviction or not).
func (fc *FeasibilityCache) SetCapacity(n int) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.m = make(map[string]cacheEntry, 256)
	fc.shaved = make(map[string][]uint64, 64)
	if n <= 0 {
		fc.capacity, fc.order, fc.seen = 0, nil, nil
		fc.orderPos = 0
		fc.shavedOrder, fc.shavedPos = nil, 0
		return
	}
	fc.capacity = n
	fc.order = make([]string, n)
	fc.orderPos = 0
	fc.seen = make(map[string]struct{}, 256)
	fc.shavedOrder = make([]string, n)
	fc.shavedPos = 0
}

// CacheStats is a point-in-time snapshot of a cache's behaviour.
type CacheStats struct {
	Hits           int64
	Misses         int64
	Evictions      int64
	Decompositions int64
	ShaveHits      int64
	ShaveMisses    int64
	Entries        int
	ShaveEntries   int
	Capacity       int // 0 = unbounded
}

// Stats snapshots the counters. They live here rather than on
// CacheSummary (where the issue sketch put them) deliberately:
// summaries are memoized check results that hits replay byte-for-byte,
// and a mutable counter inside them would make a replayed summary
// differ from its cold computation.
func (fc *FeasibilityCache) Stats() CacheStats {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	return CacheStats{
		Hits:           fc.hits.Load(),
		Misses:         fc.misses.Load(),
		Evictions:      fc.evictions,
		Decompositions: fc.decompositions.Load(),
		ShaveHits:      fc.shaveHits.Load(),
		ShaveMisses:    fc.shaveMisses.Load(),
		Entries:        len(fc.m),
		ShaveEntries:   len(fc.shaved),
		Capacity:       fc.capacity,
	}
}

// Hits returns how many lookups were answered from the cache.
func (fc *FeasibilityCache) Hits() int64 { return fc.hits.Load() }

// Misses returns how many lookups fell through to a full Check.
func (fc *FeasibilityCache) Misses() int64 { return fc.misses.Load() }

// Len returns the number of memoized entries.
func (fc *FeasibilityCache) Len() int {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	return len(fc.m)
}

// Reset drops every memoized entry AND the per-matrix fingerprints.
// Long-lived callers that retire traffic matrices (chaos reauctions
// build a fresh matrix per epoch) call this between runs so the
// pointer-keyed fingerprint map cannot grow without bound. The hit and
// miss counters are preserved: they describe lookups, not contents.
func (fc *FeasibilityCache) Reset() {
	fc.mu.Lock()
	fc.m = make(map[string]cacheEntry, 256)
	fc.shaved = make(map[string][]uint64, 64)
	if fc.capacity > 0 {
		// A fresh generation: an unbounded cache re-records metrics for
		// keys re-probed after Reset, so the bounded seen-set must
		// forget them too to stay byte-identical.
		fc.order = make([]string, fc.capacity)
		fc.orderPos = 0
		fc.seen = make(map[string]struct{}, 256)
		fc.shavedOrder = make([]string, fc.capacity)
		fc.shavedPos = 0
	}
	fc.mu.Unlock()
	fc.tmMu.Lock()
	fc.tmFP = make(map[*traffic.Matrix]uint64, 4)
	fc.tmMu.Unlock()
	fc.netMu.Lock()
	fc.netFP = make(map[*topo.POCNetwork]uint64, 4)
	fc.netMu.Unlock()
}

// Check is the memoized form of Check: same answer, same determinism,
// but repeated queries for the same (set, constraint, options, matrix,
// metric) are answered without routing. metric distinguishes
// Options.LinkCost functions, which cannot be encoded into the key.
func (fc *FeasibilityCache) Check(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64) (bool, CacheSummary) {
	opts = opts.withDefaults()
	sum, _ := fc.checked(p, include, tm, c, opts, metric, false)
	return sum.Feasible, sum
}

// CheckCore is the memoized form of CheckCore. The returned core set
// is shared with the cache and must be treated as read-only; it is nil
// when the set is infeasible.
func (fc *FeasibilityCache) CheckCore(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64) (bool, *linkset.Set) {
	opts = opts.withDefaults()
	sum, core := fc.checked(p, include, tm, c, opts, metric, true)
	return sum.Feasible, core
}

// checked is the shared lookup-or-compute path behind Check, CheckCore
// and the decomposed variants. opts must already have defaults. When
// needCore is true, a feasible answer must carry the core link union
// (a coreless feasible entry is treated as a miss and upgraded).
func (fc *FeasibilityCache) checked(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64, needCore bool) (CacheSummary, *linkset.Set) {
	key := fc.key(p, include, tm, c, opts, metric)
	if e, ok := fc.peek(key, needCore); ok {
		return e.sum, e.core
	}
	fc.misses.Add(1)
	return fc.compute(key, p, include, tm, c, opts, metric, needCore)
}

// peek returns the entry for key if it can answer a probe of the given
// shape, counting a hit. A plain Check entry for a feasible set has no
// core, so it cannot answer a needCore probe — the caller falls
// through and upgrades it.
func (fc *FeasibilityCache) peek(key string, needCore bool) (cacheEntry, bool) {
	fc.mu.RLock()
	e, ok := fc.m[key]
	fc.mu.RUnlock()
	if !ok || (needCore && e.core == nil && e.sum.Feasible) {
		return cacheEntry{}, false
	}
	fc.hits.Add(1)
	return e, true
}

// compute runs the miss path for key: consult the workspace's
// incremental-recheck memo, fall back to a full routing, then store
// and record. opts must already have defaults.
func (fc *FeasibilityCache) compute(key string, p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64, needCore bool) (CacheSummary, *linkset.Set) {
	// Compute with Obs stripped: whether this goroutine or a racing
	// one performs the routing is scheduling luck, so metrics are
	// recorded per distinct memo entry (insert win) instead — the set
	// of distinct keys probed is Workers-invariant.
	stripped := opts
	stripped.Obs = nil
	// Incremental recheck: a recent check on a superset whose removed
	// links never influenced it replays byte-identically — serve it
	// without routing. The fc entry stored is exactly what the compute
	// path would store (coreless for a plain Check, core-carrying for a
	// CheckCore), so cache state and obs stay byte-identical to a cold
	// run. A needCore probe can only be served by a memo entry that
	// carries a core (or is infeasible) — the same rule peek applies.
	ws := opts.Workspace
	memoOK := ws != nil && ws.p == p && ws.memoEnabled()
	if memoOK {
		if sum, core, ok := ws.memoLookup(include, tm, c, opts, metric, needCore); ok {
			e := cacheEntry{sum: sum}
			if needCore {
				e.core = core
			}
			if fc.store(key, e) {
				recordCheck(opts.Obs, c, sum)
			}
			return sum, e.core
		}
		stripped.influence = newInfluence(len(p.Links))
	}
	var sum CacheSummary
	var core *linkset.Set
	if needCore {
		_, core, sum = checkCore(p, include, tm, c, stripped.resolve(p))
	} else {
		feasible, r := Check(p, include, tm, c, stripped)
		sum = summarize(p, feasible, r)
	}
	if memoOK && !stripped.influence.isInvalid() {
		ws.memoStore(include, tm, c, opts, metric, stripped.influence, sum, core)
	}
	e := cacheEntry{sum: sum, core: core}
	if fc.store(key, e) {
		recordCheck(opts.Obs, c, sum)
	}
	return sum, core
}

// store writes an entry, never downgrading one that already has a
// core (two goroutines may race to fill the same key). It reports
// whether the key is fresh for metrics purposes — exactly once per
// distinct key ever, so racing double-computes never double-count and
// (in bounded mode) an evict-then-reinsert never re-counts.
func (fc *FeasibilityCache) store(key string, e cacheEntry) bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	old, existed := fc.m[key]
	if !existed || old.core == nil {
		fc.m[key] = e
	}
	if existed {
		return false
	}
	if fc.capacity <= 0 {
		return true
	}
	fresh := false
	if _, ok := fc.seen[key]; !ok {
		fc.seen[key] = struct{}{}
		fresh = true
	}
	if len(fc.m) > fc.capacity {
		// The slot the ring is about to reuse holds the oldest resident
		// key (the ring only ever holds resident keys, and the new key
		// is not in it yet).
		delete(fc.m, fc.order[fc.orderPos])
		fc.evictions++
	}
	fc.order[fc.orderPos] = key
	fc.orderPos = (fc.orderPos + 1) % fc.capacity
	return fresh
}

// shaveKeyPrefix distinguishes shave-memo keys from check keys in the
// same canonical encoding: a check key starts with uvarint(Constraint)
// and constraints are small, so 0xff can never lead one.
const shaveKeyPrefix = "\xff"

// Shaved memoizes the shave-to-1-minimality step of a winner
// determination. The shave is deterministic in exactly the material
// the check key encodes — network, start set, matrix, constraint,
// feasibility options and the price metric (which fixes both the
// routing costs and the shave's price order) — so its result can be
// replayed the same way check verdicts are, including from a persisted
// cache file. On a miss, compute runs the caller's shave and its
// result is stored; hits and misses both return a private copy the
// caller may mutate freely.
func (fc *FeasibilityCache) Shaved(p *topo.POCNetwork, start *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64, compute func() *linkset.Set) *linkset.Set {
	opts = opts.withDefaults()
	key := shaveKeyPrefix + fc.key(p, start, tm, c, opts, metric)
	fc.mu.RLock()
	words, ok := fc.shaved[key]
	fc.mu.RUnlock()
	if ok {
		fc.shaveHits.Add(1)
		return linkset.FromWords(words, len(p.Links))
	}
	fc.shaveMisses.Add(1)
	res := compute()
	fc.storeShaved(key, res.Words())
	return res
}

// storeShaved inserts a shave result (insert-win, private copy of the
// words), evicting the oldest shave entry when bounded.
func (fc *FeasibilityCache) storeShaved(key string, words []uint64) {
	cp := make([]uint64, len(words))
	copy(cp, words)
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if _, existed := fc.shaved[key]; existed {
		return
	}
	fc.shaved[key] = cp
	if fc.capacity <= 0 {
		return
	}
	if len(fc.shaved) > fc.capacity {
		delete(fc.shaved, fc.shavedOrder[fc.shavedPos])
		fc.evictions++
	}
	fc.shavedOrder[fc.shavedPos] = key
	fc.shavedPos = (fc.shavedPos + 1) % fc.capacity
}

// key builds the canonical, collision-free cache key. The include
// set's raw words go in verbatim (trailing zero words trimmed), so two
// logically equal sets — however built — share a key and two distinct
// sets never do.
func (fc *FeasibilityCache) key(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64) string {
	buf := make([]byte, 0, 48+8*len(include.Words()))
	buf = binary.AppendUvarint(buf, uint64(c))
	buf = binary.AppendUvarint(buf, uint64(opts.MaxPaths))
	buf = binary.AppendUvarint(buf, math.Float64bits(opts.Headroom))
	buf = binary.AppendUvarint(buf, uint64(opts.FailureScenarios))
	buf = binary.AppendUvarint(buf, metric)
	buf = binary.AppendUvarint(buf, fc.matrixFP(tm))
	buf = binary.AppendUvarint(buf, fc.networkFP(p))
	if include == nil {
		// nil means "all links": key on the universe size.
		buf = append(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(len(p.Links)))
		return string(buf)
	}
	buf = append(buf, 1)
	buf = include.AppendKey(buf)
	return string(buf)
}

// matrixFP fingerprints a traffic matrix once per pointer (FNV-1a over
// the demand bits).
func (fc *FeasibilityCache) matrixFP(tm *traffic.Matrix) uint64 {
	fc.tmMu.Lock()
	defer fc.tmMu.Unlock()
	if fp, ok := fc.tmFP[tm]; ok {
		return fp
	}
	h := uint64(fnv64.Offset)
	n := tm.Size()
	h = fnv64.Mix(h, uint64(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := tm.At(i, j); v != 0 {
				h = fnv64.Mix(h, uint64(i)<<32|uint64(j))
				h = fnv64.Mix(h, math.Float64bits(v))
			}
		}
	}
	fc.tmFP[tm] = h
	return h
}

// networkFP fingerprints an offer graph once per pointer (FNV-1a over
// router count and every link's identity, endpoints, owner, capacity
// and distance). A cache shared across deployments — the fleet runner
// runs many topologies through one process-wide cache — needs the
// network in the key: the include-set words and options alone can
// collide between two graphs of similar size. Like matrixFP, it
// assumes cached networks are not mutated while cached.
func (fc *FeasibilityCache) networkFP(p *topo.POCNetwork) uint64 {
	fc.netMu.Lock()
	defer fc.netMu.Unlock()
	if fp, ok := fc.netFP[p]; ok {
		return fp
	}
	h := uint64(fnv64.Offset)
	h = fnv64.Mix(h, uint64(len(p.Routers)))
	h = fnv64.Mix(h, uint64(len(p.Links)))
	for _, l := range p.Links {
		h = fnv64.Mix(h, uint64(l.ID)<<32|uint64(l.BP&0xffff)<<16|uint64(l.A&0xff)<<8|uint64(l.B&0xff))
		h = fnv64.Mix(h, math.Float64bits(l.Capacity))
		h = fnv64.Mix(h, math.Float64bits(l.DistanceKm))
	}
	fc.netFP[p] = h
	return h
}
