package provision

import (
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// CacheSummary is the memoized outcome of one feasibility check.
type CacheSummary struct {
	Feasible bool
	// Unplaced is the Gbps the base routing could not place (0 when
	// the check passed its base routing).
	Unplaced float64
	// MaxUtilization is the highest used/capacity ratio of the base
	// routing.
	MaxUtilization float64
	// Paths counts the path assignments of the routing the check kept
	// (base routing, or the degraded routing for Constraint3).
	Paths int
}

// FeasibilityCache memoizes Check outcomes across the near-identical
// link sets the auction's winner determination probes: the batch
// refinement re-tries the same expensive links round after round, and
// every counterfactual run replays most of the main run's structure.
// Check is deterministic, so replaying a hit is bit-identical to
// recomputing.
//
// Keys are the exact canonical encoding of (include set, constraint,
// the routing-relevant Options, traffic-matrix fingerprint, metric
// tag) — no lossy hashing, so a hit can never return the answer for a
// different set. The include set contributes its raw bitset words
// (O(L/64) to encode, no per-lookup sort). Options.LinkCost is a
// function and cannot be encoded; callers that vary the metric (e.g.
// the auction's warm-biased counterfactuals) must pass a distinct
// metric tag per LinkCost so entries never cross metrics.
//
// The cache is safe for concurrent use. It assumes the traffic
// matrices it sees are not mutated while cached (their fingerprint is
// computed once per *Matrix pointer).
type FeasibilityCache struct {
	mu sync.RWMutex
	m  map[string]cacheEntry

	hits   atomic.Int64
	misses atomic.Int64

	tmMu sync.Mutex
	tmFP map[*traffic.Matrix]uint64

	netMu sync.Mutex
	netFP map[*topo.POCNetwork]uint64
}

// cacheEntry is one memoized check. core is non-nil only when the set
// was feasible and a CheckCore call computed the used-link union; the
// set is shared with every subsequent hit and must be treated as
// read-only.
type cacheEntry struct {
	sum  CacheSummary
	core *linkset.Set
}

// NewFeasibilityCache returns an empty concurrency-safe cache.
func NewFeasibilityCache() *FeasibilityCache {
	return &FeasibilityCache{
		m: make(map[string]cacheEntry, 256),
		// A cache usually sees a handful of matrices (the auction's
		// one, plus chaos reauction variants) — pre-size small.
		tmFP:  make(map[*traffic.Matrix]uint64, 4),
		netFP: make(map[*topo.POCNetwork]uint64, 4),
	}
}

// Hits returns how many lookups were answered from the cache.
func (fc *FeasibilityCache) Hits() int64 { return fc.hits.Load() }

// Misses returns how many lookups fell through to a full Check.
func (fc *FeasibilityCache) Misses() int64 { return fc.misses.Load() }

// Len returns the number of memoized entries.
func (fc *FeasibilityCache) Len() int {
	fc.mu.RLock()
	defer fc.mu.RUnlock()
	return len(fc.m)
}

// Reset drops every memoized entry AND the per-matrix fingerprints.
// Long-lived callers that retire traffic matrices (chaos reauctions
// build a fresh matrix per epoch) call this between runs so the
// pointer-keyed fingerprint map cannot grow without bound. The hit and
// miss counters are preserved: they describe lookups, not contents.
func (fc *FeasibilityCache) Reset() {
	fc.mu.Lock()
	fc.m = make(map[string]cacheEntry, 256)
	fc.mu.Unlock()
	fc.tmMu.Lock()
	fc.tmFP = make(map[*traffic.Matrix]uint64, 4)
	fc.tmMu.Unlock()
	fc.netMu.Lock()
	fc.netFP = make(map[*topo.POCNetwork]uint64, 4)
	fc.netMu.Unlock()
}

// Check is the memoized form of Check: same answer, same determinism,
// but repeated queries for the same (set, constraint, options, matrix,
// metric) are answered without routing. metric distinguishes
// Options.LinkCost functions, which cannot be encoded into the key.
func (fc *FeasibilityCache) Check(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64) (bool, CacheSummary) {
	opts = opts.withDefaults()
	key := fc.key(p, include, tm, c, opts, metric)
	fc.mu.RLock()
	e, ok := fc.m[key]
	fc.mu.RUnlock()
	if ok {
		fc.hits.Add(1)
		return e.sum.Feasible, e.sum
	}
	fc.misses.Add(1)
	// Compute with Obs stripped: whether this goroutine or a racing
	// one performs the routing is scheduling luck, so metrics are
	// recorded per distinct memo entry (insert win) instead — the set
	// of distinct keys probed is Workers-invariant.
	stripped := opts
	stripped.Obs = nil
	feasible, r := Check(p, include, tm, c, stripped)
	sum := summarize(p, feasible, r)
	if fc.store(key, cacheEntry{sum: sum}) {
		recordCheck(opts.Obs, c, sum)
	}
	return feasible, sum
}

// CheckCore is the memoized form of CheckCore. The returned core set
// is shared with the cache and must be treated as read-only; it is nil
// when the set is infeasible.
func (fc *FeasibilityCache) CheckCore(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64) (bool, *linkset.Set) {
	opts = opts.withDefaults()
	key := fc.key(p, include, tm, c, opts, metric)
	fc.mu.RLock()
	e, ok := fc.m[key]
	fc.mu.RUnlock()
	// A plain Check entry for a feasible set has no core: fall through
	// and upgrade it.
	if ok && (e.core != nil || !e.sum.Feasible) {
		fc.hits.Add(1)
		return e.sum.Feasible, e.core
	}
	fc.misses.Add(1)
	stripped := opts
	stripped.Obs = nil
	feasible, core, sum := checkCore(p, include, tm, c, stripped.resolve(p))
	if fc.store(key, cacheEntry{sum: sum, core: core}) {
		recordCheck(opts.Obs, c, sum)
	}
	return feasible, core
}

// store writes an entry, never downgrading one that already has a
// core (two goroutines may race to fill the same key). It reports
// whether the key was new — the metrics layer records exactly once
// per distinct entry, so racing double-computes never double-count.
func (fc *FeasibilityCache) store(key string, e cacheEntry) bool {
	fc.mu.Lock()
	old, existed := fc.m[key]
	if !existed || old.core == nil {
		fc.m[key] = e
	}
	fc.mu.Unlock()
	return !existed
}

// key builds the canonical, collision-free cache key. The include
// set's raw words go in verbatim (trailing zero words trimmed), so two
// logically equal sets — however built — share a key and two distinct
// sets never do.
func (fc *FeasibilityCache) key(p *topo.POCNetwork, include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64) string {
	buf := make([]byte, 0, 48+8*len(include.Words()))
	buf = binary.AppendUvarint(buf, uint64(c))
	buf = binary.AppendUvarint(buf, uint64(opts.MaxPaths))
	buf = binary.AppendUvarint(buf, math.Float64bits(opts.Headroom))
	buf = binary.AppendUvarint(buf, uint64(opts.FailureScenarios))
	buf = binary.AppendUvarint(buf, metric)
	buf = binary.AppendUvarint(buf, fc.matrixFP(tm))
	buf = binary.AppendUvarint(buf, fc.networkFP(p))
	if include == nil {
		// nil means "all links": key on the universe size.
		buf = append(buf, 0)
		buf = binary.AppendUvarint(buf, uint64(len(p.Links)))
		return string(buf)
	}
	buf = append(buf, 1)
	buf = include.AppendKey(buf)
	return string(buf)
}

// FNV-1a, the fingerprint hash for matrices and networks.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a state.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// matrixFP fingerprints a traffic matrix once per pointer (FNV-1a over
// the demand bits).
func (fc *FeasibilityCache) matrixFP(tm *traffic.Matrix) uint64 {
	fc.tmMu.Lock()
	defer fc.tmMu.Unlock()
	if fp, ok := fc.tmFP[tm]; ok {
		return fp
	}
	h := uint64(fnvOffset64)
	n := tm.Size()
	h = fnvMix(h, uint64(n))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := tm.At(i, j); v != 0 {
				h = fnvMix(h, uint64(i)<<32|uint64(j))
				h = fnvMix(h, math.Float64bits(v))
			}
		}
	}
	fc.tmFP[tm] = h
	return h
}

// networkFP fingerprints an offer graph once per pointer (FNV-1a over
// router count and every link's identity, endpoints, owner, capacity
// and distance). A cache shared across deployments — the fleet runner
// runs many topologies through one process-wide cache — needs the
// network in the key: the include-set words and options alone can
// collide between two graphs of similar size. Like matrixFP, it
// assumes cached networks are not mutated while cached.
func (fc *FeasibilityCache) networkFP(p *topo.POCNetwork) uint64 {
	fc.netMu.Lock()
	defer fc.netMu.Unlock()
	if fp, ok := fc.netFP[p]; ok {
		return fp
	}
	h := uint64(fnvOffset64)
	h = fnvMix(h, uint64(len(p.Routers)))
	h = fnvMix(h, uint64(len(p.Links)))
	for _, l := range p.Links {
		h = fnvMix(h, uint64(l.ID)<<32|uint64(l.BP&0xffff)<<16|uint64(l.A&0xff)<<8|uint64(l.B&0xff))
		h = fnvMix(h, math.Float64bits(l.Capacity))
		h = fnvMix(h, math.Float64bits(l.DistanceKm))
	}
	fc.netFP[p] = h
	return h
}
