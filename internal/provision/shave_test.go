package provision

import (
	"testing"

	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// shaveNet: two routers, three parallel links with different prices
// (price enters via the caller's price function; link IDs stand in).
func shaveNet(caps ...float64) *topo.POCNetwork {
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 2)},
		BPs:     make([]topo.BP, len(caps)),
		Routers: []int{0, 1},
	}
	for i, c := range caps {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: i, BP: i, A: 0, B: 1, Capacity: c, DistanceKm: 100 * float64(i+1),
		})
	}
	return p
}

func TestShaverDropsRedundantLinks(t *testing.T) {
	p := shaveNet(10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8) // one link suffices
	sh, ok := NewShaver(p, nil, tm, Constraint1, Options{})
	if !ok {
		t.Fatal("feasible instance rejected")
	}
	price := func(l int) float64 { return float64(l + 1) } // link 2 priciest
	dropped := sh.Shave(price, 0)
	if dropped != 2 {
		t.Fatalf("dropped %d links, want 2", dropped)
	}
	inc := sh.Include()
	if inc.Len() != 1 || !inc.Contains(0) {
		t.Fatalf("kept %v, want cheapest link 0", inc.AppendIDs(nil))
	}
}

func TestShaverKeepsNeededCapacity(t *testing.T) {
	p := shaveNet(10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 15) // needs two links
	sh, ok := NewShaver(p, nil, tm, Constraint1, Options{})
	if !ok {
		t.Fatal("feasible instance rejected")
	}
	price := func(l int) float64 { return float64(l + 1) }
	sh.Shave(price, 0)
	inc := sh.Include()
	if inc.Len() != 2 {
		t.Fatalf("kept %d links, want 2", inc.Len())
	}
	if !inc.Contains(0) || !inc.Contains(1) {
		t.Fatalf("kept %v, want the two cheapest", inc.AppendIDs(nil))
	}
}

func TestShaverInfeasibleInstance(t *testing.T) {
	p := shaveNet(10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 50)
	if _, ok := NewShaver(p, nil, tm, Constraint1, Options{}); ok {
		t.Fatal("infeasible instance accepted")
	}
}

func TestShaverTryDropRollsBack(t *testing.T) {
	p := shaveNet(10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 15) // both links needed
	sh, ok := NewShaver(p, nil, tm, Constraint1, Options{})
	if !ok {
		t.Fatal("feasible instance rejected")
	}
	if sh.TryDrop(0) {
		t.Fatal("dropped a needed link")
	}
	// State intact: the other link can still not be dropped either,
	// and re-attempting the first fails identically (determinism).
	if sh.TryDrop(1) || sh.TryDrop(0) {
		t.Fatal("rollback corrupted state")
	}
	if sh.Include().Len() != 2 {
		t.Fatalf("include = %v", sh.Include().AppendIDs(nil))
	}
}

func TestShaverTryDropUnknownLink(t *testing.T) {
	p := shaveNet(10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 5)
	sh, _ := NewShaver(p, nil, tm, Constraint1, Options{})
	if sh.TryDrop(99) {
		t.Fatal("dropped a link outside the set")
	}
	if sh.TryDrop(0) {
		t.Fatal("dropped the only link")
	}
}

func TestShaverConstraint2KeepsBackup(t *testing.T) {
	// Demand fits on one link, but Constraint2 requires surviving the
	// primary path's failure: the shave must keep a second link.
	p := shaveNet(10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)
	sh, ok := NewShaver(p, nil, tm, Constraint2, Options{FailureScenarios: 4})
	if !ok {
		t.Fatal("feasible instance rejected")
	}
	price := func(l int) float64 { return float64(l + 1) }
	sh.Shave(price, 0)
	if sh.Include().Len() != 2 {
		t.Fatalf("kept %d links under constraint2, want 2 (primary + backup)", sh.Include().Len())
	}
}

func TestShaverConstraint3KeepsDetour(t *testing.T) {
	p := shaveNet(10, 10, 10)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 8)
	sh, ok := NewShaver(p, nil, tm, Constraint3, Options{})
	if !ok {
		t.Fatal("feasible instance rejected")
	}
	price := func(l int) float64 { return float64(l + 1) }
	sh.Shave(price, 0)
	// The degraded routing must avoid the primary link entirely.
	if sh.Include().Len() != 2 {
		t.Fatalf("kept %d links under constraint3, want 2", sh.Include().Len())
	}
}

func TestShaverDeterministic(t *testing.T) {
	w := topo.DefaultWorld()
	cfg := topo.DefaultZooConfig()
	cfg.NumNetworks = 30
	nets := topo.GenerateZoo(w, cfg)
	p := topo.BuildPOCNetwork(w, nets, 10, 4, 0)
	gcfg := traffic.DefaultGravityConfig()
	gcfg.TotalGbps = 1500
	tm := traffic.Gravity(len(p.Routers), gcfg,
		func(i int) float64 { return w.Cities[p.Routers[i]].Population },
		func(i, j int) float64 { return w.Distance(p.Routers[i], p.Routers[j]) })
	price := func(l int) float64 { return p.Links[l].DistanceKm }

	var sizes []int
	for run := 0; run < 3; run++ {
		sh, ok := NewShaver(p, nil, tm, Constraint1, Options{})
		if !ok {
			t.Fatal("infeasible")
		}
		sh.Shave(price, 0)
		sizes = append(sizes, sh.Include().Len())
	}
	if sizes[0] != sizes[1] || sizes[1] != sizes[2] {
		t.Fatalf("nondeterministic shave: %v", sizes)
	}
}

func TestShaverResultStillRoutes(t *testing.T) {
	// Whatever the shave keeps must still carry the matrix.
	w := topo.DefaultWorld()
	cfg := topo.DefaultZooConfig()
	cfg.NumNetworks = 30
	nets := topo.GenerateZoo(w, cfg)
	p := topo.BuildPOCNetwork(w, nets, 10, 4, 0)
	gcfg := traffic.DefaultGravityConfig()
	gcfg.TotalGbps = 1500
	tm := traffic.Gravity(len(p.Routers), gcfg,
		func(i int) float64 { return w.Cities[p.Routers[i]].Population },
		func(i, j int) float64 { return w.Distance(p.Routers[i], p.Routers[j]) })
	sh, ok := NewShaver(p, nil, tm, Constraint1, Options{})
	if !ok {
		t.Fatal("infeasible")
	}
	before := sh.Include().Len()
	sh.Shave(func(l int) float64 { return p.Links[l].DistanceKm }, 0)
	after := sh.Include().Len()
	if after >= before {
		t.Fatalf("shave dropped nothing (%d -> %d)", before, after)
	}

	// Exact guarantee: the witness packing covers every demand and
	// respects capacities.
	witness := sh.Witness()
	used := map[int]float64{}
	tm.Demands(func(src, dst int, gbps float64) {
		placed := 0.0
		for _, a := range witness[[2]int{src, dst}] {
			placed += a.Gbps
			for _, l := range a.Links {
				used[l] += a.Gbps
				if !sh.Include().Contains(l) {
					t.Fatalf("witness uses shaved link %d", l)
				}
			}
		}
		if placed < gbps-1e-6 {
			t.Fatalf("witness covers %.3f of %.3f Gbps for (%d,%d)", placed, gbps, src, dst)
		}
	})
	for l, u := range used {
		if u > p.Links[l].Capacity+1e-6 {
			t.Fatalf("witness overloads link %d: %.2f > %.2f", l, u, p.Links[l].Capacity)
		}
	}

	// Statistical guarantee: a fresh greedy route — which packs in a
	// different order — places all but a sliver thanks to the shave
	// headroom.
	r := Route(p, sh.Include(), tm, Options{}, nil)
	if r.Unplaced > 0.005*tm.Total() {
		t.Fatalf("fresh route leaves %.1f of %.1f Gbps unplaced", r.Unplaced, tm.Total())
	}
}
