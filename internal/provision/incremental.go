package provision

import (
	"math"
	"math/bits"
	"sync"

	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/traffic"
)

// This file implements the incremental feasibility recheck memo: the
// machinery that lets Check/CheckCore answer a probe without routing
// when a recently-computed check certifies it.
//
// The certificate rests on one property of both Dijkstra engines: only
// a *successful relaxation* mutates observable state (a dist/parent
// write plus a heap push); an enabled edge that never wins a relaxation
// contributes nothing — no writes, no pushes, no change to heap order,
// tie-breaking or early termination. So if a check records the set I of
// links that won any relaxation across ALL of its routings (base trees,
// point repairs, ejection reroutes, primary-path trees, every failure
// scenario), then a later probe S′ with
//
//	S′ ⊆ S   and   (S \ S′) ∩ I = ∅
//
// replays the stored check step for step: the removed links are skipped
// by the Disabled flag instead of losing their relaxations, which is
// observationally identical. The stored summary and core ARE what a
// cold computation on S′ would produce, byte for byte.
//
// Link ADDITIONS can never be certified: an added edge may win interim
// relaxations (perturbing heap contents and pop tie-breaks) even when
// the final tree reverts, so any superset probe recomputes cold. See
// DESIGN.md §15 for the full soundness argument, including why
// Constraint-2 checks that fail at the scenario stage invalidate the
// sink (the parallel sweep's early abort makes the set of routed
// scenarios scheduling-dependent).

// influence accumulates the link-level influence set of one check.
// Route/PrimaryPathsOpts fold each arena's edge-level relaxation trace
// into it under the mutex; parallel scenario sweeps make the OR
// order-independent.
type influence struct {
	mu      sync.Mutex
	words   []uint64
	invalid bool
}

func newInfluence(links int) *influence {
	return &influence{words: make([]uint64, (links+63)/64)}
}

// markInvalid flags the sink as unusable for memoization (nil-safe:
// checks run without a sink pass nil through).
func (inf *influence) markInvalid() {
	if inf == nil {
		return
	}
	inf.mu.Lock()
	inf.invalid = true
	inf.mu.Unlock()
}

func (inf *influence) isInvalid() bool {
	inf.mu.Lock()
	defer inf.mu.Unlock()
	return inf.invalid
}

// startTrace arms the arena's Dijkstra engines with a zeroed edge-level
// trace buffer.
func (rt *router) startTrace() {
	n := (rt.g.NumEdges() + 63) / 64
	if cap(rt.traceBits) < n {
		rt.traceBits = make([]uint64, n)
	}
	rt.traceBits = rt.traceBits[:n]
	for i := range rt.traceBits {
		rt.traceBits[i] = 0
	}
	rt.tr.SetTrace(rt.traceBits)
	rt.pr.SetTrace(rt.traceBits)
}

// stopTrace disarms the engines and folds the edge-level trace down to
// link level into the sink.
func (rt *router) stopTrace(inf *influence) {
	rt.tr.SetTrace(nil)
	rt.pr.SetTrace(nil)
	inf.mu.Lock()
	for wi, w := range rt.traceBits {
		for w != 0 {
			bit := uint(bits.TrailingZeros64(w))
			w &= w - 1
			l := int(rt.linkFor[wi*64+int(bit)])
			inf.words[l>>6] |= 1 << (uint(l) & 63)
		}
	}
	inf.mu.Unlock()
}

// memoEntry is one certified check: the exact key fields of the check,
// the enabled set it ran on, its influence set, and its results. set
// and inf are full-length word slices over the network's links; core is
// shared read-only (nil when the entry came from Check rather than
// CheckCore, or when infeasible).
type memoEntry struct {
	tm       *traffic.Matrix
	c        Constraint
	maxPaths int
	headroom uint64
	fs       int
	metric   uint64
	set      []uint64
	inf      []uint64
	sum      CacheSummary
	core     *linkset.Set
}

// defaultMemoCapacity bounds the workspace recheck memo. The auction's
// probe stream is strongly local — bisection and budget batches perturb
// the most recent few sets — so a small ring captures nearly all the
// reuse while keeping lookups a handful of word scans.
const defaultMemoCapacity = 32

// SetMemoCapacity resizes the incremental-recheck memo ring (entries,
// not bytes); 0 or negative disables it, restoring the pre-memo
// compute-every-probe behaviour. Existing entries are dropped. The
// capacity never enters cache keys and never changes results — hits
// replay byte-identical checks — only speed.
func (ws *Workspace) SetMemoCapacity(n int) {
	ws.memoMu.Lock()
	defer ws.memoMu.Unlock()
	if n < 0 {
		n = 0
	}
	ws.memoCap = n
	ws.memo = nil
	ws.memoPos = 0
}

// MemoStats returns how many FeasibilityCache misses were answered by
// the recheck memo (hits) versus routed cold (misses).
func (ws *Workspace) MemoStats() (hits, misses int64) {
	return ws.memoHits.Load(), ws.memoMisses.Load()
}

// memoEnabled reports whether the recheck memo is on.
func (ws *Workspace) memoEnabled() bool {
	ws.memoMu.Lock()
	defer ws.memoMu.Unlock()
	return ws.memoCap > 0
}

// probeWords returns the normalized enabled-set words for include (nil
// means all links).
func (ws *Workspace) probeWords(include *linkset.Set) []uint64 {
	if include == nil {
		return ws.all.Words()
	}
	return include.Words()
}

// certifies reports whether a stored check over `set` with influence
// `inf` certifies the probe: probe ⊆ set and the removed links are all
// outside the influence set. Missing trailing words are zero.
func certifies(probe, set, inf []uint64) bool {
	for wi := range set {
		var pw uint64
		if wi < len(probe) {
			pw = probe[wi]
		}
		sw := set[wi]
		if pw&^sw != 0 {
			return false // probe adds a link: additions are never certified
		}
		if (sw&^pw)&inf[wi] != 0 {
			return false // a removed link influenced the stored check
		}
	}
	for wi := len(set); wi < len(probe); wi++ {
		if probe[wi] != 0 {
			return false
		}
	}
	return true
}

// memoLookup scans the ring newest-first for an entry whose key fields
// match and whose certificate covers the probe. needCore mirrors the
// FeasibilityCache rule: a CheckCore probe can only be served by an
// entry that has a core or is infeasible.
func (ws *Workspace) memoLookup(include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64, needCore bool) (CacheSummary, *linkset.Set, bool) {
	probe := ws.probeWords(include)
	hb := math.Float64bits(opts.Headroom)
	ws.memoMu.Lock()
	defer ws.memoMu.Unlock()
	n := len(ws.memo)
	for i := 1; i <= n; i++ {
		e := &ws.memo[((ws.memoPos-i)%n+n)%n]
		if e.tm != tm || e.c != c || e.maxPaths != opts.MaxPaths ||
			e.headroom != hb || e.fs != opts.FailureScenarios || e.metric != metric {
			continue
		}
		if needCore && e.core == nil && e.sum.Feasible {
			continue
		}
		if !certifies(probe, e.set, e.inf) {
			continue
		}
		ws.memoHits.Add(1)
		return e.sum, e.core, true
	}
	ws.memoMisses.Add(1)
	return CacheSummary{}, nil, false
}

// memoStore inserts a freshly computed check into the ring, cloning the
// probe's enabled words (auction callers mutate their sets between
// probes). The sink's words are owned by the entry from here on.
func (ws *Workspace) memoStore(include *linkset.Set, tm *traffic.Matrix, c Constraint, opts Options, metric uint64, inf *influence, sum CacheSummary, core *linkset.Set) {
	probe := ws.probeWords(include)
	words := len(inf.words)
	set := make([]uint64, words)
	copy(set, probe)
	e := memoEntry{
		tm:       tm,
		c:        c,
		maxPaths: opts.MaxPaths,
		headroom: math.Float64bits(opts.Headroom),
		fs:       opts.FailureScenarios,
		metric:   metric,
		set:      set,
		inf:      inf.words,
		sum:      sum,
		core:     core,
	}
	ws.memoMu.Lock()
	defer ws.memoMu.Unlock()
	if ws.memoCap <= 0 {
		return
	}
	if len(ws.memo) < ws.memoCap {
		ws.memo = append(ws.memo, e)
		ws.memoPos = len(ws.memo)
	} else {
		if ws.memoPos >= ws.memoCap {
			ws.memoPos = 0
		}
		ws.memo[ws.memoPos] = e
		ws.memoPos++
	}
}
