package core

import (
	"fmt"
	"sort"

	"github.com/public-option/poc/internal/auction"
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/traffic"
)

// §3.3 builds the POC from *temporarily* leased links ("lease out (on
// a temporary basis) their excess bandwidth"), which implies the POC
// re-runs its auction as demand shifts. Reauction implements that
// lifecycle step: a new traffic matrix, a fresh auction over the
// standing bids, a link-set diff, and a fabric migration that re-admits
// every attachment and flow onto the new selection.

// ReauctionReport describes one re-leasing cycle.
type ReauctionReport struct {
	// Added and Dropped are the link-set diff against the previous
	// selection, sorted.
	Added   []int
	Dropped []int
	// Result is the new auction outcome.
	Result *auction.Result
	// FlowsKept counts flows re-admitted at full demand on the new
	// fabric; FlowsDegraded those re-admitted below their previous
	// allocation; FlowsLost those that could not be re-admitted.
	FlowsKept     int
	FlowsDegraded int
	FlowsLost     int
}

// Reauction re-runs the auction against a new traffic matrix using
// the standing bids and virtual links, then migrates the fabric: all
// attachments are preserved and every flow is re-admitted onto the
// new link set (in descending QoS weight, then flow ID). Recalled
// links stay excluded. Billing for subsequent epochs uses the new
// payments.
func (p *POC) Reauction(tm *traffic.Matrix) (*ReauctionReport, error) {
	return p.ReauctionExcluding(tm, nil)
}

// ReauctionExcluding is Reauction with an extra exclusion set: links
// in exclude are withheld from every bid this cycle on top of the
// recalled set. Recovery controllers use it to re-lease around links
// that are currently down — a reauction that re-selects a dead link
// would rebuild a fabric about to fail again.
func (p *POC) ReauctionExcluding(tm *traffic.Matrix, exclude *linkset.Set) (*ReauctionReport, error) {
	if p.phase != phaseActive {
		return nil, fmt.Errorf("core: reauction requires an active POC")
	}
	if tm == nil {
		return nil, fmt.Errorf("core: nil traffic matrix")
	}
	if tm.Size() != len(p.cfg.Network.Routers) {
		return nil, fmt.Errorf("core: traffic matrix size %d != %d routers",
			tm.Size(), len(p.cfg.Network.Routers))
	}

	// Exclude recalled links from every bid (their owners took them
	// back) along with any caller-supplied exclusions: neither is on
	// offer this cycle.
	bids := make([]auction.Bid, len(p.bids))
	for i, b := range p.bids {
		var keep []int
		for _, id := range b.Links {
			if !p.recalled[id] && !exclude.Contains(id) {
				keep = append(keep, id)
			}
		}
		bids[i] = auction.Bid{BP: b.BP, Links: keep, Cost: b.Cost}
	}

	// The shared Cache is forwarded (entries are namespaced by the
	// reauction's own price-metric fingerprint); the shared Workspace
	// is not — its arenas froze the original raw metric, and the
	// reduced bids change the marginal prices.
	inst := &auction.Instance{
		Network:    p.cfg.Network,
		Bids:       bids,
		Virtual:    p.virtual,
		TM:         tm,
		Constraint: p.cfg.Constraint,
		RouteOpts:  p.cfg.RouteOpts,
		MaxChecks:  p.cfg.MaxChecks,
		Workers:    p.cfg.Workers,
		Obs:        p.cfg.Obs,
		Cache:      p.cfg.Cache,
	}
	res, err := inst.Run()
	if err != nil {
		return nil, fmt.Errorf("core: reauction: %w", err)
	}

	rep := &ReauctionReport{Result: res}
	for id := range res.Selected {
		if !p.auctionResult.Selected[id] {
			rep.Added = append(rep.Added, id)
		}
	}
	for id := range p.auctionResult.Selected {
		if !res.Selected[id] {
			rep.Dropped = append(rep.Dropped, id)
		}
	}
	sort.Ints(rep.Added)
	sort.Ints(rep.Dropped)

	// Migrate the fabric: rebuild over the new selection, re-attach
	// every endpoint, re-admit every flow.
	oldFabric := p.fabric
	oldFlows := oldFabric.Flows()
	newFabric := netsim.New(p.cfg.Network, res.Selected)
	newFabric.SetObserver(p.cfg.Obs)

	oldEndpoints := oldFabric.Endpoints()
	idMap := make(map[netsim.EndpointID]netsim.EndpointID, len(oldEndpoints))
	for _, ep := range oldEndpoints {
		nid, err := newFabric.Attach(ep.Name, ep.Kind, ep.Router)
		if err != nil {
			return nil, fmt.Errorf("core: migrating %q: %w", ep.Name, err)
		}
		idMap[ep.ID] = nid
	}
	// Highest class first, then admission order (Seq, not ID — flow
	// IDs recycle table slots and are not admission-ordered).
	sort.Slice(oldFlows, func(i, j int) bool {
		if oldFlows[i].Class.Weight != oldFlows[j].Class.Weight {
			return oldFlows[i].Class.Weight > oldFlows[j].Class.Weight
		}
		return oldFlows[i].Seq < oldFlows[j].Seq
	})
	specs := make([]netsim.FlowSpec, len(oldFlows))
	for i, fl := range oldFlows {
		specs[i] = netsim.FlowSpec{
			Src: idMap[fl.Src], Dst: idMap[fl.Dst], Demand: fl.Demand, Class: fl.Class,
		}
	}
	for i, id := range newFabric.StartFlows(specs) {
		if id < 0 {
			rep.FlowsLost++
			continue
		}
		nf, err := newFabric.Flow(id)
		switch {
		case err != nil:
			rep.FlowsLost++
		case nf.Allocated >= oldFlows[i].Allocated-1e-9:
			rep.FlowsKept++
		default:
			rep.FlowsDegraded++
		}
	}

	// Endpoint IDs are preserved by construction (attachment order);
	// verify rather than assume.
	for old, nid := range idMap {
		if old != nid {
			return nil, fmt.Errorf("core: endpoint id drift during migration (%d -> %d)", old, nid)
		}
	}

	p.auctionResult = res
	p.fabric = newFabric
	// Usage counters restart with the new fabric; already-billed
	// volume must reset with them.
	for name := range p.billedGB {
		p.billedGB[name] = 0
	}
	if o := p.cfg.Obs; o != nil {
		o.Add("core.reauctions", 1)
		o.Add("core.reauction.flows_kept", int64(rep.FlowsKept))
		o.Add("core.reauction.flows_degraded", int64(rep.FlowsDegraded))
		o.Add("core.reauction.flows_lost", int64(rep.FlowsLost))
	}
	return rep, nil
}
