package core

import (
	"testing"

	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/peering"
	"github.com/public-option/poc/internal/traffic"
)

func TestReauctionValidation(t *testing.T) {
	p := newPOC(t)
	if _, err := p.Reauction(ringTM()); err == nil {
		t.Fatal("reauction before activation accepted")
	}
	a := activePOC(t)
	if _, err := a.Reauction(nil); err == nil {
		t.Fatal("nil TM accepted")
	}
	if _, err := a.Reauction(traffic.NewMatrix(99)); err == nil {
		t.Fatal("mismatched TM accepted")
	}
}

func TestReauctionMigratesFlows(t *testing.T) {
	p := activePOC(t)
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachLMP("lmp-b", 2, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	fl, err := p.StartFlow("lmp-a", "lmp-b", 5, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	_ = fl

	// Double the demand between routers 0 and 2.
	tm := ringTM()
	tm.Set(0, 2, 40)
	tm.Set(2, 0, 40)
	rep, err := p.Reauction(tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result == nil || len(rep.Result.Selected) == 0 {
		t.Fatal("empty reauction result")
	}
	if rep.FlowsKept+rep.FlowsDegraded+rep.FlowsLost != 1 {
		t.Fatalf("flow accounting = %+v", rep)
	}
	if rep.FlowsLost != 0 {
		t.Fatal("flow lost despite larger provisioning")
	}
	// The migrated flow lives on the new fabric under the same members.
	if _, err := p.StartFlow("lmp-a", "lmp-b", 1, netsim.BestEffort); err != nil {
		t.Fatalf("post-migration flow failed: %v", err)
	}
	// Billing still works and reflects the new payments.
	if _, err := p.BillEpoch(3600); err != nil {
		t.Fatal(err)
	}
}

func TestReauctionExcludesRecalledLinks(t *testing.T) {
	p := activePOC(t)
	link, _ := selectedLinkWithFlow(t, p)
	if _, err := p.RecallLink(link, 0); err != nil {
		t.Fatal(err)
	}
	// A light matrix between multiply-connected routers keeps
	// A(OL−L_a) nonempty with one link recalled on the small ring
	// fixture (router 3 can become single-homed after the recall).
	tm := traffic.NewMatrix(4)
	tm.Set(0, 1, 5)
	tm.Set(1, 0, 5)
	rep, err := p.Reauction(tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Selected[link] {
		t.Fatal("reauction re-selected a recalled link")
	}
}

func TestReauctionUsageCountersReset(t *testing.T) {
	p := activePOC(t)
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachLMP("lmp-b", 2, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartFlow("lmp-a", "lmp-b", 4, netsim.BestEffort); err != nil {
		t.Fatal(err)
	}
	if _, err := p.BillEpoch(3600); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Reauction(ringTM()); err != nil {
		t.Fatal(err)
	}
	rep, err := p.BillEpoch(3600)
	if err != nil {
		t.Fatal(err)
	}
	// One hour at 4 Gbps = 1800 GB per endpoint; double-billing or
	// negative deltas would show up here.
	if got := rep.UsageGB["lmp-a"]; got < 1700 || got > 1900 {
		t.Fatalf("post-reauction usage = %v, want ~1800", got)
	}
}
