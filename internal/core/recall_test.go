package core

import (
	"math"
	"testing"

	"github.com/public-option/poc/internal/market"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/peering"
)

// selectedLinkWithFlow returns a leased link carrying traffic between
// the two attached LMPs.
func selectedLinkWithFlow(t *testing.T, p *POC) (int, *netsim.Flow) {
	t.Helper()
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachLMP("lmp-b", 2, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	fl, err := p.StartFlow("lmp-a", "lmp-b", 5, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if len(fl.Links) == 0 {
		t.Fatal("flow took no links")
	}
	return fl.Links[0], fl
}

func TestRecallReroutesAndPenalizes(t *testing.T) {
	p := activePOC(t)
	link, fl := selectedLinkWithFlow(t, p)
	bp := p.cfg.Network.Links[link].BP

	before := p.ledger.Balance(p.bpIDs[bp], -1)
	rep, err := p.RecallLink(link, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Link != link || rep.BP != bp {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Rerouted+rep.Degraded == 0 {
		t.Fatal("flow on the recalled link not reported")
	}
	if rep.Penalty <= 0 {
		t.Fatalf("penalty = %v, want > 0", rep.Penalty)
	}
	// Penalty = rate × monthly share.
	if math.Abs(rep.Penalty-0.5*rep.MonthlySaving) > 1e-9 {
		t.Fatalf("penalty %v != 0.5 × share %v", rep.Penalty, rep.MonthlySaving)
	}
	// BP paid the penalty.
	after := p.ledger.Balance(p.bpIDs[bp], -1)
	if math.Abs((before-after)-rep.Penalty) > 1e-9 {
		t.Fatalf("BP balance moved %v, want %v", before-after, rep.Penalty)
	}
	// The flow no longer uses the recalled link.
	got, err := p.Fabric().Flow(fl.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range got.Links {
		if l == link {
			t.Fatal("flow still uses recalled link")
		}
	}
}

func TestRecallValidation(t *testing.T) {
	p := activePOC(t)
	link, _ := selectedLinkWithFlow(t, p)
	if _, err := p.RecallLink(link, -1); err == nil {
		t.Fatal("negative penalty rate accepted")
	}
	if _, err := p.RecallLink(-1, 0); err == nil {
		t.Fatal("unknown link accepted")
	}
	// Find an unselected link, if any.
	for id := range p.cfg.Network.Links {
		if !p.auctionResult.Selected[id] {
			if _, err := p.RecallLink(id, 0); err == nil {
				t.Fatal("unleased link recall accepted")
			}
			break
		}
	}
	if _, err := p.RecallLink(link, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RecallLink(link, 0.5); err == nil {
		t.Fatal("double recall accepted")
	}
}

func TestRecallZeroPaymentShare(t *testing.T) {
	// A winner can be non-pivotal under the Clarke pivot rule and owe
	// nothing; recalling its link must then cost it nothing too.
	p := activePOC(t)
	link, _ := selectedLinkWithFlow(t, p)
	bp := p.cfg.Network.Links[link].BP
	p.auctionResult.Payments[bp] = 0

	before := p.ledger.Balance(p.bpIDs[bp], -1)
	rep, err := p.RecallLink(link, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Penalty != 0 || rep.MonthlySaving != 0 {
		t.Fatalf("penalty = %v, saving = %v, want 0 for zero payment share", rep.Penalty, rep.MonthlySaving)
	}
	if after := p.ledger.Balance(p.bpIDs[bp], -1); after != before {
		t.Fatalf("BP balance moved %v on a zero-share recall", before-after)
	}
	// The link is still recalled: flows rerouted, future bids exclude it.
	if !p.Recalled(link) {
		t.Fatal("link not marked recalled")
	}
}

func TestRecallAlreadyFailedLink(t *testing.T) {
	// Recalling a link that is already down on the fabric is the
	// recovery-ladder case: the BP takes back dead capacity, the POC
	// collects the penalty and stops paying, and no flow moves (they
	// were already rerouted when the link failed).
	p := activePOC(t)
	link, fl := selectedLinkWithFlow(t, p)
	bp := p.cfg.Network.Links[link].BP
	if changed := p.Fabric().FailLink(link); len(changed) == 0 {
		t.Fatal("failing the flow's link moved no flows")
	}

	before := p.ledger.Balance(p.bpIDs[bp], -1)
	rep, err := p.RecallLink(link, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rerouted != 0 || rep.Degraded != 0 {
		t.Fatalf("recall of a failed link reported flow movement: %+v", rep)
	}
	if rep.Penalty <= 0 {
		t.Fatalf("penalty = %v, want > 0", rep.Penalty)
	}
	if after := p.ledger.Balance(p.bpIDs[bp], -1); math.Abs((before-after)-rep.Penalty) > 1e-9 {
		t.Fatalf("BP balance moved %v, want %v", before-after, rep.Penalty)
	}
	// The earlier failure already rerouted the flow off the link.
	got, err := p.Fabric().Flow(fl.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range got.Links {
		if l == link {
			t.Fatal("flow still uses the failed, recalled link")
		}
	}
	// Double recall still rejected after the failure path.
	if _, err := p.RecallLink(link, 0.5); err == nil {
		t.Fatal("double recall accepted")
	}
}

func TestRecallReducesLeaseBilling(t *testing.T) {
	p := activePOC(t)
	link, _ := selectedLinkWithFlow(t, p)
	rep1, err := p.BillEpoch(3600)
	if err != nil {
		t.Fatal(err)
	}
	saving, err := p.RecallLink(link, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := p.BillEpoch(3600)
	if err != nil {
		t.Fatal(err)
	}
	const monthSeconds = 30 * 24 * 3600.0
	wantDrop := saving.MonthlySaving * 3600 / monthSeconds
	if math.Abs((rep1.LeaseCost-rep2.LeaseCost)-wantDrop) > 1e-6 {
		t.Fatalf("lease cost dropped %v, want %v", rep1.LeaseCost-rep2.LeaseCost, wantDrop)
	}
}

func TestRecallBeforeActive(t *testing.T) {
	p := newPOC(t)
	if _, err := p.RecallLink(0, 0); err == nil {
		t.Fatal("recall before activation accepted")
	}
}

func TestEdgeServiceLifecycle(t *testing.T) {
	p := activePOC(t)
	if _, err := p.AttachCSP("megaflix", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	svc, err := p.OpenEdgeService("poc-cdn", 250)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.OpenEdgeService("poc-cdn", 100); err == nil {
		t.Fatal("duplicate service accepted")
	}
	if err := p.DeployCache("poc-cdn", "megaflix", 2); err != nil {
		t.Fatal(err)
	}
	// Fee landed in the ledger.
	tot := p.Ledger().TotalsByKind(-1)[market.EdgeServiceFee]
	if tot != 250 {
		t.Fatalf("edge fees = %v, want 250", tot)
	}
	// Unknown service / member rejected.
	if err := p.DeployCache("nope", "megaflix", 2); err != nil {
		// expected
	} else {
		t.Fatal("unknown service accepted")
	}
	if err := p.DeployCache("poc-cdn", "ghost", 2); err == nil {
		t.Fatal("unknown member accepted")
	}
	// Delivery prefers the cache.
	got, err := p.EdgeService("poc-cdn")
	if err != nil || got != svc {
		t.Fatalf("EdgeService lookup: %v", err)
	}
	origin := p.endpoints["megaflix"]
	consumer := p.endpoints["lmp-a"]
	d, err := svc.Serve("megaflix", origin, consumer, 1, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	if !d.FromCache {
		t.Fatal("delivery ignored the cache")
	}
	if _, err := p.EdgeService("nope"); err == nil {
		t.Fatal("unknown service lookup accepted")
	}
}

func TestEdgeServiceBeforeActive(t *testing.T) {
	p := newPOC(t)
	if _, err := p.OpenEdgeService("cdn", 1); err == nil {
		t.Fatal("edge service before activation accepted")
	}
}
