package core

import (
	"strings"
	"testing"

	"github.com/public-option/poc/internal/market"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/peering"
)

func TestPublishQoSValidation(t *testing.T) {
	p := activePOC(t)
	cases := []struct {
		name  string
		class netsim.Class
		bound float64
	}{
		{"unnamed", netsim.Class{Weight: 2, Price: 1}, 0},
		{"weight", netsim.Class{Name: "x", Weight: 0.5, Price: 1}, 0},
		{"free", netsim.Class{Name: "x", Weight: 2, Price: 0}, 0},
		{"negative bound", netsim.Class{Name: "x", Weight: 2, Price: 1}, -1},
	}
	for _, c := range cases {
		if err := p.PublishQoS(c.class, c.bound); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	gold := netsim.Class{Name: "gold", Weight: 4, Price: 10}
	if err := p.PublishQoS(gold, 500); err != nil {
		t.Fatal(err)
	}
	if err := p.PublishQoS(gold, 500); err == nil {
		t.Fatal("duplicate class accepted")
	}
	if got := p.QoSCatalog(); len(got) != 1 || got[0].Class.Name != "gold" {
		t.Fatalf("catalog = %+v", got)
	}
}

func TestStartQoSFlowChargesPostedPrice(t *testing.T) {
	p := activePOC(t)
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachLMP("lmp-b", 2, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := p.PublishQoS(netsim.Class{Name: "gold", Weight: 4, Price: 10}, 0); err != nil {
		t.Fatal(err)
	}
	fl, err := p.StartQoSFlow("lmp-a", "lmp-b", "gold", 5)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Class.Name != "gold" {
		t.Fatalf("class = %v", fl.Class)
	}
	fees := p.Ledger().TotalsByKind(-1)[market.EdgeServiceFee]
	if fees != 50 { // 10 × 5 Gbps
		t.Fatalf("QoS fees = %v, want 50", fees)
	}
	// Unknown class rejected.
	if _, err := p.StartQoSFlow("lmp-a", "lmp-b", "platinum", 1); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestQoSSLARejectionAndAudit(t *testing.T) {
	p := activePOC(t)
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachLMP("lmp-b", 2, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	// SLA tighter than any path 0→2 (min 200 km on the ring): reject.
	if err := p.PublishQoS(netsim.Class{Name: "ultra", Weight: 8, Price: 20}, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartQoSFlow("lmp-a", "lmp-b", "ultra", 1); err == nil {
		t.Fatal("SLA-violating admission accepted")
	} else if !strings.Contains(err.Error(), "SLA") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A feasible SLA admits; failure-induced rerouting can then break
	// it, which CheckSLAs reports.
	if err := p.PublishQoS(netsim.Class{Name: "std", Weight: 2, Price: 5}, 220); err != nil {
		t.Fatal(err)
	}
	fl, err := p.StartQoSFlow("lmp-a", "lmp-b", "std", 1)
	if err != nil {
		t.Fatal(err)
	}
	if vs := p.CheckSLAs(); len(vs) != 0 {
		t.Fatalf("fresh admission already violating: %+v", vs)
	}
	// Fail the flow's first link; the reroute is longer than 220 km.
	p.Fabric().FailLink(fl.Links[0])
	vs := p.CheckSLAs()
	if len(vs) != 1 || vs[0].Class != "std" {
		t.Fatalf("violations = %+v", vs)
	}
	if vs[0].LatencyKm <= vs[0].BoundKm {
		t.Fatalf("violation not actually violating: %+v", vs[0])
	}
}

func TestQoSSLARejectionDoesNotCharge(t *testing.T) {
	p := activePOC(t)
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachLMP("lmp-b", 2, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := p.PublishQoS(netsim.Class{Name: "ultra", Weight: 8, Price: 20}, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartQoSFlow("lmp-a", "lmp-b", "ultra", 1); err == nil {
		t.Fatal("SLA-violating admission accepted")
	}
	if fees := p.Ledger().TotalsByKind(-1)[market.EdgeServiceFee]; fees != 0 {
		t.Fatalf("rejected admission still charged %v", fees)
	}
	if n := len(p.Fabric().Flows()); n != 0 {
		t.Fatalf("%d flows left after rejection", n)
	}
}
