package core

import (
	"math"
	"testing"

	"github.com/public-option/poc/internal/auction"
	"github.com/public-option/poc/internal/market"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/peering"
	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// ringNet: 4 routers in a ring plus a chord; each link owned by its
// own BP so VCG alternatives exist.
func ringNet() *topo.POCNetwork {
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 4)},
		Routers: []int{0, 1, 2, 3},
	}
	for i := 0; i < 5; i++ {
		p.BPs = append(p.BPs, topo.BP{Name: "bp", CostMult: 1})
	}
	add := func(bp, a, b int, dist float64) {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: len(p.Links), BP: bp, A: a, B: b, Capacity: 100, DistanceKm: dist,
		})
	}
	add(0, 0, 1, 100)
	add(1, 1, 2, 100)
	add(2, 2, 3, 100)
	add(3, 3, 0, 100)
	add(4, 0, 2, 250)
	return p
}

func ringTM() *traffic.Matrix {
	tm := traffic.NewMatrix(4)
	tm.Set(0, 2, 20)
	tm.Set(2, 0, 20)
	tm.Set(1, 3, 10)
	tm.Set(3, 1, 10)
	return tm
}

func newPOC(t *testing.T) *POC {
	t.Helper()
	net := ringNet()
	p, err := New(Config{
		Network:       net,
		TM:            ringTM(),
		Constraint:    provision.Constraint1,
		ReserveMargin: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func submitAllBids(t *testing.T, p *POC, net *topo.POCNetwork) {
	t.Helper()
	for b := range net.BPs {
		links := net.LinksOfBP(b)
		prices := map[int]float64{}
		for _, id := range links {
			prices[id] = 100 * net.Links[id].DistanceKm / 100
		}
		if err := p.SubmitBid(auction.Bid{BP: b, Links: links, Cost: auction.AdditiveCost(prices)}); err != nil {
			t.Fatal(err)
		}
	}
}

// lifecycle runs bidding → auction → activation and returns the POC.
func activePOC(t *testing.T) *POC {
	t.Helper()
	p := newPOC(t)
	submitAllBids(t, p, p.cfg.Network)
	if _, err := p.RunAuction(); err != nil {
		t.Fatal(err)
	}
	if err := p.Activate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := New(Config{Network: ringNet()}); err == nil {
		t.Fatal("nil TM accepted")
	}
	if _, err := New(Config{Network: ringNet(), TM: ringTM(), ReserveMargin: 1}); err == nil {
		t.Fatal("bad reserve margin accepted")
	}
}

func TestLifecycleOrderEnforced(t *testing.T) {
	p := newPOC(t)
	if err := p.Activate(); err == nil {
		t.Fatal("activate before auction accepted")
	}
	if _, err := p.RunAuction(); err == nil {
		t.Fatal("auction with no bids accepted")
	}
	if _, err := p.AttachLMP("l", 0, peering.Policy{}); err == nil {
		t.Fatal("attach before active accepted")
	}
	if _, err := p.AttachCSP("c", 0); err == nil {
		t.Fatal("attach before active accepted")
	}
	if _, err := p.StartFlow("a", "b", 1, netsim.BestEffort); err == nil {
		t.Fatal("flow before active accepted")
	}
	if _, err := p.BillEpoch(60); err == nil {
		t.Fatal("billing before active accepted")
	}

	submitAllBids(t, p, p.cfg.Network)
	if _, err := p.RunAuction(); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitBid(auction.Bid{}); err == nil {
		t.Fatal("bid after auction accepted")
	}
	if err := p.AddVirtualLinks(nil); err == nil {
		t.Fatal("virtual links after auction accepted")
	}
	if _, err := p.RunAuction(); err == nil {
		t.Fatal("double auction accepted")
	}
	if err := p.Activate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Activate(); err == nil {
		t.Fatal("double activation accepted")
	}
}

func TestSubmitBidValidation(t *testing.T) {
	p := newPOC(t)
	net := p.cfg.Network
	links := net.LinksOfBP(0)
	bid := auction.Bid{BP: 0, Links: links, Cost: auction.AdditiveCost(map[int]float64{links[0]: 1})}
	if err := p.SubmitBid(bid); err != nil {
		t.Fatal(err)
	}
	if err := p.SubmitBid(bid); err == nil {
		t.Fatal("duplicate BP bid accepted")
	}
	if err := p.SubmitBid(auction.Bid{BP: 99}); err == nil {
		t.Fatal("invalid bid accepted")
	}
}

func TestAuctionSelectsAndPays(t *testing.T) {
	p := activePOC(t)
	res := p.AuctionResult()
	if res == nil || len(res.Selected) == 0 {
		t.Fatal("no selection")
	}
	// Individual rationality holds for every BP.
	for a := range res.Payments {
		if res.Payments[a] < res.BPCost[a]-1e-9 {
			t.Fatalf("BP %d underpaid", a)
		}
	}
}

func TestAttachAndNeutrality(t *testing.T) {
	p := activePOC(t)
	// Clean policy attaches.
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	// Violating policy is refused at the door.
	bad := peering.Policy{Rules: []peering.Rule{{
		Direction: peering.Incoming,
		Match:     peering.Selector{Source: "megaflix"},
		Action:    peering.Block,
	}}}
	if _, err := p.AttachLMP("lmp-bad", 1, bad); err == nil {
		t.Fatal("violating LMP attached")
	}
	// CSP attaches without a policy.
	if _, err := p.AttachCSP("megaflix", 1); err != nil {
		t.Fatal(err)
	}
	// Later policy update + enforcement suspends.
	if err := p.UpdatePolicy("lmp-a", bad); err != nil {
		t.Fatal(err)
	}
	vs := p.EnforceTerms()
	if len(vs) == 0 {
		t.Fatal("enforcement found no violations")
	}
	if !p.Suspended("lmp-a") {
		t.Fatal("violator not suspended")
	}
	if _, err := p.StartFlow("lmp-a", "megaflix", 1, netsim.BestEffort); err == nil {
		t.Fatal("suspended member started a flow")
	}
	if err := p.UpdatePolicy("ghost", peering.Policy{}); err == nil {
		t.Fatal("policy update for unknown LMP accepted")
	}
}

func TestFlowsAndBilling(t *testing.T) {
	p := activePOC(t)
	if _, err := p.AttachLMP("lmp-a", 0, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachLMP("lmp-b", 2, peering.Policy{}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.AttachCSP("megaflix", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartFlow("megaflix", "lmp-a", 8, netsim.BestEffort); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartFlow("megaflix", "lmp-b", 4, netsim.BestEffort); err != nil {
		t.Fatal(err)
	}
	if _, err := p.StartFlow("ghost", "lmp-a", 1, netsim.BestEffort); err == nil {
		t.Fatal("unknown member flow accepted")
	}
	if _, err := p.StartFlow("lmp-a", "ghost", 1, netsim.BestEffort); err == nil {
		t.Fatal("unknown member flow accepted")
	}

	rep, err := p.BillEpoch(3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeaseCost <= 0 {
		t.Fatal("no lease cost paid")
	}
	// 8 Gbps × 3600 s / 8 = 3600 GB from megaflix→lmp-a, 1800 to lmp-b.
	if math.Abs(rep.UsageGB["megaflix"]-5400) > 1e-6 {
		t.Fatalf("megaflix usage = %v, want 5400", rep.UsageGB["megaflix"])
	}
	if math.Abs(rep.UsageGB["lmp-a"]-3600) > 1e-6 {
		t.Fatalf("lmp-a usage = %v", rep.UsageGB["lmp-a"])
	}
	// Break-even: revenue covers cost with margin; POC never loses.
	if rep.POCNet < -1e-9 {
		t.Fatalf("POC lost money: %v", rep.POCNet)
	}
	cost := rep.LeaseCost + rep.VirtualCost
	if rep.POCNet > cost*0.05 {
		t.Fatalf("POC profit %v exceeds reserve policy (cost %v)", rep.POCNet, cost)
	}
	// Ledger conserves.
	if c := p.Ledger().Conservation(); math.Abs(c) > 1e-9 {
		t.Fatalf("conservation = %v", c)
	}

	// Second epoch: usage delta, not cumulative.
	rep2, err := p.BillEpoch(3600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep2.UsageGB["megaflix"]-5400) > 1e-6 {
		t.Fatalf("second epoch usage = %v, want 5400 (delta)", rep2.UsageGB["megaflix"])
	}
	if rep2.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", rep2.Epoch)
	}
	if _, err := p.BillEpoch(0); err == nil {
		t.Fatal("zero-length epoch accepted")
	}
}

func TestBillEpochNoTraffic(t *testing.T) {
	p := activePOC(t)
	rep, err := p.BillEpoch(3600)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Revenue != 0 {
		t.Fatalf("revenue = %v with no traffic", rep.Revenue)
	}
	if rep.LeaseCost <= 0 {
		t.Fatal("lease cost should still accrue")
	}
	// The POC runs a deficit this epoch (documented behaviour: costs
	// accrue regardless of demand).
	if rep.POCNet >= 0 {
		t.Fatalf("POCNet = %v, want negative", rep.POCNet)
	}
}

func TestFigure1Structure(t *testing.T) {
	// Every flow in the active POC follows Figure 1: LMP/CSP edge →
	// POC fabric → LMP edge. Verify endpoints are attachments and the
	// path stays on selected links.
	p := activePOC(t)
	p.AttachLMP("lmp-a", 0, peering.Policy{})
	p.AttachLMP("lmp-b", 2, peering.Policy{})
	fl, err := p.StartFlow("lmp-a", "lmp-b", 5, netsim.BestEffort)
	if err != nil {
		t.Fatal(err)
	}
	sel := p.AuctionResult().Selected
	for _, l := range fl.Links {
		if !sel[l] {
			t.Fatalf("flow uses unselected link %d", l)
		}
	}
	ep, err := p.Fabric().Endpoint(fl.Src)
	if err != nil || ep.Kind != netsim.LMPEndpoint {
		t.Fatalf("src endpoint = %+v, %v", ep, err)
	}
}

func TestLedgerEntitiesRegistered(t *testing.T) {
	p := activePOC(t)
	l := p.Ledger()
	if len(l.EntitiesByKind(market.BandwidthProvider)) != 5 {
		t.Fatal("BP entities missing")
	}
	if len(l.EntitiesByKind(market.POC)) != 1 {
		t.Fatal("POC entity missing")
	}
	if len(l.EntitiesByKind(market.ExternalISP)) != 1 {
		t.Fatal("ISP entity missing")
	}
}
