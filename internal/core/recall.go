package core

import (
	"fmt"
	"sort"

	"github.com/public-option/poc/internal/edge"
	"github.com/public-option/poc/internal/market"
	"github.com/public-option/poc/internal/topo"
)

// §3.3 expects large CSPs to lease their spare backbone capacity to
// the POC precisely because "they can overbuy, and then lease out (on
// a temporary basis) their excess bandwidth but can quickly recall it
// from the POC when needed". This file implements the recall path:
// the BP takes the link back mid-lease, pays a contractual penalty,
// the fabric reroutes affected flows, and the POC stops paying for
// the link going forward.

// RecallReport describes the outcome of one lease recall.
type RecallReport struct {
	Link int
	BP   int
	// Rerouted counts flows moved to other links; Degraded counts
	// flows left with zero allocation (no alternative capacity).
	Rerouted int
	Degraded int
	// Penalty is what the BP paid the POC for the early recall.
	Penalty float64
	// MonthlySaving is the payment the POC stops owing for the link
	// (its share of the BP's auction payment, pro-rated by declared
	// link cost).
	MonthlySaving float64
}

// RecallLink processes a BP's recall of a leased (selected) link.
// penaltyRate scales the penalty: penalty = rate × the link's share
// of the BP's monthly auction payment. The link is failed on the
// fabric (flows reroute or degrade) and removed from future billing.
func (p *POC) RecallLink(linkID int, penaltyRate float64) (*RecallReport, error) {
	if p.phase != phaseActive {
		return nil, fmt.Errorf("core: POC not active")
	}
	if penaltyRate < 0 {
		return nil, fmt.Errorf("core: negative penalty rate")
	}
	if linkID < 0 || linkID >= len(p.cfg.Network.Links) {
		return nil, fmt.Errorf("core: unknown link %d", linkID)
	}
	if !p.auctionResult.Selected[linkID] {
		return nil, fmt.Errorf("core: link %d is not leased", linkID)
	}
	link := p.cfg.Network.Links[linkID]
	if link.BP == topo.VirtualBP {
		return nil, fmt.Errorf("core: virtual link %d is under ISP contract, not recallable", linkID)
	}
	if p.recalled[linkID] {
		return nil, fmt.Errorf("core: link %d already recalled", linkID)
	}

	// The link's share of the BP's payment, pro-rated by its fraction
	// of the BP's selected capacity-distance product.
	share := p.linkPaymentShare(linkID)
	penalty := penaltyRate * share
	if penalty > 0 {
		if err := p.ledger.Pay(p.bpIDs[link.BP], p.pocID, market.RecallPenalty, penalty,
			fmt.Sprintf("early recall of link %d", linkID)); err != nil {
			return nil, err
		}
	}
	p.recalled[linkID] = true
	p.recalledCost += share

	changed := p.fabric.FailLink(linkID)
	rep := &RecallReport{
		Link:          linkID,
		BP:            link.BP,
		Penalty:       penalty,
		MonthlySaving: share,
	}
	for _, id := range changed {
		fl, err := p.fabric.Flow(id)
		if err != nil {
			continue
		}
		if fl.Allocated > 0 {
			rep.Rerouted++
		} else {
			rep.Degraded++
		}
	}
	if o := p.cfg.Obs; o != nil {
		o.Add("core.recalls", 1)
		o.AddFloat("core.recall_penalty_income", penalty)
		o.AddFloat("core.recall_monthly_saving", share)
	}
	return rep, nil
}

// linkPaymentShare apportions the BP's monthly auction payment across
// its selected links by capacity-distance product.
func (p *POC) linkPaymentShare(linkID int) float64 {
	link := p.cfg.Network.Links[linkID]
	bp := link.BP
	weight := func(l topo.LogicalLink) float64 { return l.Capacity * l.DistanceKm }
	// Link-ID order: the share denominator is a float accumulation,
	// and map iteration would perturb payment splits at ULP scale.
	ids := make([]int, 0, len(p.auctionResult.Selected))
	for id := range p.auctionResult.Selected {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := 0.0
	for _, id := range ids {
		l := p.cfg.Network.Links[id]
		if l.BP == bp && !p.recalled[id] {
			total += weight(l)
		}
	}
	// Include the link itself if already marked recalled (callers
	// compute the share before marking).
	if p.recalled[linkID] {
		total += weight(link)
	}
	if total <= 0 {
		return 0
	}
	return p.auctionResult.Payments[bp] * weight(link) / total
}

// OpenEdgeService creates an open CDN/edge service on the active
// fabric at the given posted per-cache monthly price. The service is
// registered for billing: DeployCache charges the owning CSP through
// the ledger each epoch via BillEpoch... (fees are collected at
// deployment time for simplicity: one month per deployment).
func (p *POC) OpenEdgeService(name string, postedPrice float64) (*edge.Service, error) {
	if p.phase != phaseActive {
		return nil, fmt.Errorf("core: POC not active")
	}
	svc, err := edge.NewService(name, p.fabric, postedPrice)
	if err != nil {
		return nil, err
	}
	if p.edgeServices == nil {
		p.edgeServices = map[string]*edge.Service{}
	}
	if _, dup := p.edgeServices[name]; dup {
		return nil, fmt.Errorf("core: edge service %q already exists", name)
	}
	p.edgeServices[name] = svc
	return svc, nil
}

// DeployCache deploys a cache for an attached CSP on a named edge
// service and bills the posted fee immediately. Any attached member
// may deploy — openness is the whole point (§3.4 condition (iii)).
func (p *POC) DeployCache(service, csp string, router int) error {
	svc, ok := p.edgeServices[service]
	if !ok {
		return fmt.Errorf("core: unknown edge service %q", service)
	}
	member, ok := p.memberID[csp]
	if !ok {
		return fmt.Errorf("core: %q is not an attached member", csp)
	}
	if _, err := svc.Deploy(csp, router); err != nil {
		return err
	}
	if svc.PostedPrice() > 0 {
		if err := p.ledger.Pay(member, p.pocID, market.EdgeServiceFee, svc.PostedPrice(),
			fmt.Sprintf("%s cache at router %d", service, router)); err != nil {
			return err
		}
	}
	return nil
}

// EdgeService returns a registered edge service.
func (p *POC) EdgeService(name string) (*edge.Service, error) {
	svc, ok := p.edgeServices[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown edge service %q", name)
	}
	return svc, nil
}
