// Package core implements the POC operator: the nonprofit that runs
// the paper's Public Option for the Core. It drives the full lease
// lifecycle —
//
//	collect bids → run the VCG auction → provision the selected
//	links → activate the fabric → attach LMPs/CSPs under the
//	network-neutrality terms of service → carry traffic → bill
//	usage at break-even prices → settle with BPs and external ISPs
//
// — exposing one type, POC, whose methods must be called in lifecycle
// order (they return errors otherwise, never panic).
package core

import (
	"fmt"
	"sort"

	"github.com/public-option/poc/internal/auction"
	"github.com/public-option/poc/internal/edge"
	"github.com/public-option/poc/internal/market"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/peering"
	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// Config assembles a POC deployment.
type Config struct {
	// Network is the offer graph: routers and all offered links.
	Network *topo.POCNetwork
	// TM is the upper-bound traffic matrix the POC provisions for.
	TM *traffic.Matrix
	// Constraint selects the acceptability family for the auction
	// (Constraint2 is the sensible production default: survive any
	// single path failure).
	Constraint provision.Constraint
	// RouteOpts tunes feasibility routing.
	RouteOpts provision.Options
	// MaxChecks bounds the auction's winner-determination budget.
	MaxChecks int
	// ReserveMargin in [0,1) pads the break-even price for
	// contingencies; the POC is a nonprofit, not a charity (§1.2).
	ReserveMargin float64
	// Workers bounds auction parallelism (0 = auto). Results are
	// bit-identical for any setting.
	Workers int
	// Obs, when non-nil, is the deployment's observability registry:
	// it is threaded through the auction, the provisioned fabric, and
	// every reauction, and receives per-epoch billing timelines. One
	// registry per deployment yields one coherent exported ledger.
	Obs *obs.Registry
	// Cache, when non-nil, is an external feasibility memo shared
	// beyond this deployment (see auction.Instance.Cache): the fleet
	// runner threads one process-wide cache through every cell. It is
	// forwarded to the initial auction and to every reauction; entries
	// are namespaced by price-metric fingerprint, so a reauction's
	// reduced bids never collide with the main auction's.
	Cache *provision.FeasibilityCache
	// Workspace, when non-nil, is a shared raw-metric arena pool for
	// the initial auction's main winner determination (see
	// auction.Instance.Workspace). It is NOT forwarded to reauctions:
	// their reduced bids change the raw price metric, and a workspace's
	// arenas freeze the metric they were built with.
	Workspace *provision.Workspace
}

// phase tracks lifecycle progress.
type phase int

const (
	phaseBidding phase = iota
	phaseAuctioned
	phaseActive
)

// POC is the operator state machine.
type POC struct {
	cfg     Config
	phase   phase
	bids    []auction.Bid
	virtual []auction.VirtualLink

	auctionResult *auction.Result
	fabric        *netsim.Fabric

	ledger   *market.Ledger
	pocID    market.EntityID
	bpIDs    []market.EntityID
	ispID    market.EntityID
	memberID map[string]market.EntityID // LMP/CSP name -> ledger entity

	endpoints map[string]netsim.EndpointID
	policies  map[string]peering.Policy
	suspended map[string]bool
	billedGB  map[string]float64 // usage already billed, per member

	recalled     map[int]bool // links recalled by their BPs
	recalledCost float64      // monthly payment share no longer owed
	edgeServices map[string]*edge.Service
	qos          map[string]QoSOffering
	epochs       int
}

// New creates a POC in the bidding phase.
func New(cfg Config) (*POC, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if cfg.TM == nil {
		return nil, fmt.Errorf("core: nil traffic matrix")
	}
	if cfg.Constraint == 0 {
		cfg.Constraint = provision.Constraint2
	}
	if cfg.ReserveMargin < 0 || cfg.ReserveMargin >= 1 {
		return nil, fmt.Errorf("core: reserve margin %v out of [0,1)", cfg.ReserveMargin)
	}
	p := &POC{
		cfg:       cfg,
		ledger:    &market.Ledger{},
		memberID:  map[string]market.EntityID{},
		endpoints: map[string]netsim.EndpointID{},
		policies:  map[string]peering.Policy{},
		suspended: map[string]bool{},
		billedGB:  map[string]float64{},
		recalled:  map[int]bool{},
	}
	p.pocID = p.ledger.AddEntity(market.POC, "poc")
	for i := range cfg.Network.BPs {
		p.bpIDs = append(p.bpIDs, p.ledger.AddEntity(market.BandwidthProvider, cfg.Network.BPs[i].Name))
	}
	p.ispID = p.ledger.AddEntity(market.ExternalISP, "external-isp")
	return p, nil
}

// SubmitBid registers a BP's bid during the bidding phase.
func (p *POC) SubmitBid(b auction.Bid) error {
	if p.phase != phaseBidding {
		return fmt.Errorf("core: bids are closed")
	}
	if err := b.Validate(p.cfg.Network); err != nil {
		return err
	}
	for _, existing := range p.bids {
		if existing.BP == b.BP {
			return fmt.Errorf("core: BP %d already bid", b.BP)
		}
	}
	p.bids = append(p.bids, b)
	return nil
}

// AddVirtualLinks registers external-ISP virtual links.
func (p *POC) AddVirtualLinks(vls []auction.VirtualLink) error {
	if p.phase != phaseBidding {
		return fmt.Errorf("core: bids are closed")
	}
	p.virtual = append(p.virtual, vls...)
	return nil
}

// RunAuction closes bidding and runs the VCG auction.
func (p *POC) RunAuction() (*auction.Result, error) {
	if p.phase != phaseBidding {
		return nil, fmt.Errorf("core: auction already ran")
	}
	if len(p.bids) == 0 {
		return nil, fmt.Errorf("core: no bids")
	}
	inst := &auction.Instance{
		Network:    p.cfg.Network,
		Bids:       p.bids,
		Virtual:    p.virtual,
		TM:         p.cfg.TM,
		Constraint: p.cfg.Constraint,
		RouteOpts:  p.cfg.RouteOpts,
		MaxChecks:  p.cfg.MaxChecks,
		Workers:    p.cfg.Workers,
		Obs:        p.cfg.Obs,
		Cache:      p.cfg.Cache,
		Workspace:  p.cfg.Workspace,
	}
	res, err := inst.Run()
	if err != nil {
		return nil, err
	}
	p.auctionResult = res
	p.phase = phaseAuctioned
	return res, nil
}

// Activate builds the fabric over the auctioned link set.
func (p *POC) Activate() error {
	if p.phase != phaseAuctioned {
		return fmt.Errorf("core: activate requires a completed auction")
	}
	p.fabric = netsim.New(p.cfg.Network, p.auctionResult.Selected)
	p.fabric.SetObserver(p.cfg.Obs)
	p.phase = phaseActive
	return nil
}

// Fabric exposes the active data plane (nil before Activate).
func (p *POC) Fabric() *netsim.Fabric { return p.fabric }

// Observer exposes the deployment's metrics registry (nil when
// observability is off).
func (p *POC) Observer() *obs.Registry { return p.cfg.Obs }

// AuctionResult exposes the auction outcome (nil before RunAuction).
func (p *POC) AuctionResult() *auction.Result { return p.auctionResult }

// Ledger exposes the POC's books for inspection.
func (p *POC) Ledger() *market.Ledger { return p.ledger }

// Network exposes the offer graph the POC was configured with.
func (p *POC) Network() *topo.POCNetwork { return p.cfg.Network }

// TrafficMatrix exposes the provisioning traffic matrix.
func (p *POC) TrafficMatrix() *traffic.Matrix { return p.cfg.TM }

// Recalled reports whether a link has been recalled by its BP.
func (p *POC) Recalled(linkID int) bool { return p.recalled[linkID] }

// AttachLMP admits a last-mile provider at a router, subject to the
// §3.4 terms of service: the LMP's declared traffic policy must pass
// the neutrality audit.
func (p *POC) AttachLMP(name string, router int, policy peering.Policy) (netsim.EndpointID, error) {
	if p.phase != phaseActive {
		return 0, fmt.Errorf("core: POC not active")
	}
	policy.LMP = name
	if vs := peering.Audit(policy); len(vs) > 0 {
		return 0, fmt.Errorf("core: %s violates the terms of service: %v", name, vs[0])
	}
	id, err := p.fabric.Attach(name, netsim.LMPEndpoint, router)
	if err != nil {
		return 0, err
	}
	p.endpoints[name] = id
	p.policies[name] = policy
	p.memberID[name] = p.ledger.AddEntity(market.LastMileProvider, name)
	return id, nil
}

// AttachCSP admits a directly-attached content provider. CSPs have no
// peering policy to audit (they terminate no third-party traffic) but
// pay for access like every member (§3.2).
func (p *POC) AttachCSP(name string, router int) (netsim.EndpointID, error) {
	if p.phase != phaseActive {
		return 0, fmt.Errorf("core: POC not active")
	}
	id, err := p.fabric.Attach(name, netsim.CSPEndpoint, router)
	if err != nil {
		return 0, err
	}
	p.endpoints[name] = id
	p.memberID[name] = p.ledger.AddEntity(market.ContentProvider, name)
	return id, nil
}

// UpdatePolicy replaces an attached LMP's declared policy (it is
// re-audited at the next EnforceTerms run, mirroring the
// contract-then-audit flow of real terms of service).
func (p *POC) UpdatePolicy(name string, policy peering.Policy) error {
	if _, ok := p.policies[name]; !ok {
		return fmt.Errorf("core: %s is not an attached LMP", name)
	}
	policy.LMP = name
	p.policies[name] = policy
	return nil
}

// EnforceTerms audits every attached LMP's policy and suspends
// violators (their flows are not torn down here; operators act on the
// returned report). It returns all violations found.
func (p *POC) EnforceTerms() []peering.Violation {
	var names []string
	for n := range p.policies {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []peering.Violation
	for _, n := range names {
		vs := peering.Audit(p.policies[n])
		if len(vs) > 0 {
			p.suspended[n] = true
			out = append(out, vs...)
		}
	}
	return out
}

// Suspended reports whether a member is suspended for terms
// violations.
func (p *POC) Suspended(name string) bool { return p.suspended[name] }

// StartFlow admits traffic between two attached members. Suspended
// members cannot start flows.
func (p *POC) StartFlow(src, dst string, gbps float64, class netsim.Class) (*netsim.Flow, error) {
	if p.phase != phaseActive {
		return nil, fmt.Errorf("core: POC not active")
	}
	if p.suspended[src] || p.suspended[dst] {
		return nil, fmt.Errorf("core: member suspended for terms-of-service violations")
	}
	sid, ok := p.endpoints[src]
	if !ok {
		return nil, fmt.Errorf("core: %q not attached", src)
	}
	did, ok := p.endpoints[dst]
	if !ok {
		return nil, fmt.Errorf("core: %q not attached", dst)
	}
	return p.fabric.StartFlow(sid, did, gbps, class)
}

// FlowRequest is one admission in a bulk activation batch, between
// two attached members.
type FlowRequest struct {
	Src, Dst string
	Gbps     float64
	Class    netsim.Class
}

// StartFlows admits a batch of flows in request order, applying the
// same membership and suspension checks as StartFlow per entry. The
// returned slice has one entry per request: the admitted flow's ID,
// or -1 where admission failed. Use this for epoch activations that
// put whole traffic-matrix populations on the fabric at once.
func (p *POC) StartFlows(reqs []FlowRequest) ([]netsim.FlowID, error) {
	if p.phase != phaseActive {
		return nil, fmt.Errorf("core: POC not active")
	}
	ids := make([]netsim.FlowID, len(reqs))
	specs := make([]netsim.FlowSpec, 0, len(reqs))
	specAt := make([]int, 0, len(reqs))
	for i, r := range reqs {
		ids[i] = -1
		if p.suspended[r.Src] || p.suspended[r.Dst] {
			continue
		}
		sid, ok := p.endpoints[r.Src]
		if !ok {
			continue
		}
		did, ok := p.endpoints[r.Dst]
		if !ok {
			continue
		}
		specs = append(specs, netsim.FlowSpec{Src: sid, Dst: did, Demand: r.Gbps, Class: r.Class})
		specAt = append(specAt, i)
	}
	for j, id := range p.fabric.StartFlows(specs) {
		ids[specAt[j]] = id
	}
	return ids, nil
}

// StopFlows releases a batch of flows on the fabric, skipping IDs
// that are unknown or already stopped, and returns how many were
// stopped.
func (p *POC) StopFlows(ids []netsim.FlowID) int {
	if p.fabric == nil {
		return 0
	}
	return p.fabric.StopFlows(ids)
}

// EpochReport summarizes one billing epoch.
type EpochReport struct {
	Epoch        int
	LeaseCost    float64 // paid to BPs (auction payments)
	VirtualCost  float64 // paid to the external ISP (contracts)
	UsageGB      map[string]float64
	PricePerGB   float64
	Revenue      float64
	POCNet       float64 // revenue − costs this epoch
	MemberCharge map[string]float64
}

// BillEpoch advances simulated time by the given seconds, bills every
// attached member at the break-even usage price, pays the BPs their
// auction payments (prorated from monthly to the epoch length) and
// the external ISP its contract cost, and closes the ledger epoch.
func (p *POC) BillEpoch(seconds float64) (*EpochReport, error) {
	if p.phase != phaseActive {
		return nil, fmt.Errorf("core: POC not active")
	}
	if seconds <= 0 {
		return nil, fmt.Errorf("core: non-positive epoch length")
	}
	if err := p.fabric.Tick(seconds); err != nil {
		return nil, err
	}

	const monthSeconds = 30 * 24 * 3600.0
	frac := seconds / monthSeconds

	rep := &EpochReport{
		Epoch:        p.epochs,
		UsageGB:      map[string]float64{},
		MemberCharge: map[string]float64{},
	}
	// Costs: prorated auction payments (minus the shares of links
	// their BPs recalled) + virtual contracts.
	recalledShare := make([]float64, len(p.auctionResult.Payments))
	recalledIDs := make([]int, 0, len(p.recalled))
	for id := range p.recalled {
		recalledIDs = append(recalledIDs, id)
	}
	sort.Ints(recalledIDs)
	for _, id := range recalledIDs {
		recalledShare[p.cfg.Network.Links[id].BP] += p.linkPaymentShare(id)
	}
	for a, pay := range p.auctionResult.Payments {
		amt := (pay - recalledShare[a]) * frac
		if amt <= 0 {
			continue
		}
		if err := p.ledger.Pay(p.pocID, p.bpIDs[a], market.LinkLease, amt, "prorated auction payment"); err != nil {
			return nil, err
		}
		rep.LeaseCost += amt
	}
	if vc := p.auctionResult.VirtualCost * frac; vc > 0 {
		if err := p.ledger.Pay(p.pocID, p.ispID, market.ISPContract, vc, "prorated contract"); err != nil {
			return nil, err
		}
		rep.VirtualCost = vc
	}

	// Usage per member since the last billing run. Member-name order
	// throughout: the usage total, the revenue sum and the ledger
	// entries are all float-order-sensitive, and map iteration would
	// make them drift at ULP scale run to run.
	usage := p.fabric.UsageByEndpoint()
	names := make([]string, 0, len(p.endpoints))
	for name := range p.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	total := 0.0
	for _, name := range names {
		gb := usage[p.endpoints[name]] - p.billedGB[name]
		if gb < 0 {
			gb = 0
		}
		rep.UsageGB[name] = gb
		total += gb
	}
	cost := rep.LeaseCost + rep.VirtualCost
	if total > 0 {
		plan, err := market.BreakEvenUsagePlan(cost, total, p.cfg.ReserveMargin)
		if err != nil {
			return nil, err
		}
		rep.PricePerGB = plan.PerGB
		for _, name := range names {
			gb := rep.UsageGB[name]
			if gb == 0 {
				continue
			}
			charge := plan.Charge(gb)
			if err := p.ledger.Pay(p.memberID[name], p.pocID, market.POCAccess, charge, "usage"); err != nil {
				return nil, err
			}
			rep.MemberCharge[name] = charge
			rep.Revenue += charge
		}
	}
	for name, gb := range rep.UsageGB {
		p.billedGB[name] += gb
	}
	rep.POCNet = p.ledger.POCBalance(p.ledger.Epoch())
	p.ledger.CloseEpoch()
	p.epochs++
	if o := p.cfg.Obs; o != nil {
		o.Add("core.epochs", 1)
		o.AddFloat("core.lease_cost_total", rep.LeaseCost+rep.VirtualCost)
		o.AddFloat("core.revenue_total", rep.Revenue)
		o.Append("core.epoch.cost", rep.LeaseCost+rep.VirtualCost)
		o.Append("core.epoch.revenue", rep.Revenue)
		o.Append("core.epoch.net", rep.POCNet)
		o.Append("core.epoch.price_per_gb", rep.PricePerGB)
	}
	return rep, nil
}
