package core

import (
	"sort"

	"github.com/public-option/poc/internal/netsim"
)

// This file is the POC's read-only snapshot surface: everything pocd
// serves on its query endpoints, gathered in one deterministic pass.
// pocd's single-writer loop publishes a Snapshot after every applied
// mutation; when the writer saturates, reads degrade to the last
// published copy instead of queuing behind the backlog, so the
// operator keeps answering (with slightly stale data) under overload
// rather than ballooning latency. Field order and slice ordering are
// deterministic — snapshots taken at the same journal sequence are
// byte-identical once JSON-encoded.

// Member is one attached LMP or CSP in a Snapshot.
type Member struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"` // "LMP" | "CSP" | "external"
	Router    int    `json:"router"`
	Suspended bool   `json:"suspended,omitempty"`
}

// LinkUtil is one link's utilization in a Snapshot, as a sorted slice
// (not a map) so the JSON encoding orders numerically.
type LinkUtil struct {
	Link        int     `json:"link"`
	Utilization float64 `json:"utilization"`
}

// Snapshot is a consistent read-only view of an active POC.
type Snapshot struct {
	Epochs        int           `json:"epochs"`
	Flows         int           `json:"flows"`
	LeasedLinks   int           `json:"leased_links"`
	FailedLinks   []int         `json:"failed_links,omitempty"`
	RecalledLinks []int         `json:"recalled_links,omitempty"`
	Members       []Member      `json:"members,omitempty"`
	QoS           []QoSOffering `json:"qos,omitempty"`
	Utilization   []LinkUtil    `json:"utilization,omitempty"`
}

// Epochs returns how many billing epochs have closed.
func (p *POC) Epochs() int { return p.epochs }

// Members returns the attached members sorted by name (nil before
// Activate — members only exist on a fabric).
func (p *POC) Members() []Member {
	if p.fabric == nil {
		return nil
	}
	names := make([]string, 0, len(p.endpoints))
	for name := range p.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Member, 0, len(names))
	for _, name := range names {
		m := Member{Name: name, Suspended: p.suspended[name]}
		if ep, err := p.fabric.Endpoint(p.endpoints[name]); err == nil {
			m.Kind = ep.Kind.String()
			m.Router = ep.Router
		}
		out = append(out, m)
	}
	return out
}

// Snapshot captures the POC's queryable state in one pass. It is only
// meaningful on an active POC (before Activate it reports zeroes).
func (p *POC) Snapshot() Snapshot {
	s := Snapshot{Epochs: p.epochs, QoS: p.QoSCatalog()}
	if p.fabric == nil {
		return s
	}
	s.Flows = p.fabric.NumFlows()
	s.LeasedLinks = len(p.fabric.SelectedLinks())
	s.FailedLinks = p.fabric.FailedLinks()
	s.Members = p.Members()
	recalled := make([]int, 0, len(p.recalled))
	for id := range p.recalled {
		recalled = append(recalled, id)
	}
	sort.Ints(recalled)
	s.RecalledLinks = recalled
	util := p.fabric.Utilization()
	links := make([]int, 0, len(util))
	for id := range util {
		links = append(links, id)
	}
	sort.Ints(links)
	s.Utilization = make([]LinkUtil, 0, len(links))
	for _, id := range links {
		s.Utilization = append(s.Utilization, LinkUtil{Link: id, Utilization: util[id]})
	}
	return s
}

// FlowSnapshot returns one admitted flow's route and allocation (the
// /v1/flows?id= query). The bool reports whether the ID is live.
func (p *POC) FlowSnapshot(id netsim.FlowID) (netsim.Flow, bool) {
	if p.fabric == nil {
		return netsim.Flow{}, false
	}
	fl, err := p.fabric.Flow(id)
	if err != nil {
		return netsim.Flow{}, false
	}
	return fl, true
}
