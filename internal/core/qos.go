package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/public-option/poc/internal/market"
	"github.com/public-option/poc/internal/netsim"
)

// §3.1: the POC may offer "different levels of quality-of-service",
// provided they are "openly offered, so that users could choose their
// desired level of service and pay the resulting price". This file
// implements that: a public QoS catalog with posted per-Gbps-month
// prices, purchases billed through the ledger, and a latency-bound
// SLA the operator can verify per flow. What remains impossible — by
// construction, not policy — is granting a class to one member on
// terms unavailable to another.

// QoSOffering is one catalog entry.
type QoSOffering struct {
	Class netsim.Class
	// MaxLatencyKm is the propagation-distance SLA the class
	// advertises (0 = no latency promise).
	MaxLatencyKm float64
}

// PublishQoS adds a class to the public catalog. The price must be
// positive (a free premium class is indistinguishable from the
// arbitrary preference §3.4 bans) and the weight at least 1.
func (p *POC) PublishQoS(class netsim.Class, maxLatencyKm float64) error {
	if class.Name == "" {
		return fmt.Errorf("core: QoS class needs a name")
	}
	if class.Weight < 1 {
		return fmt.Errorf("core: QoS weight %v < 1", class.Weight)
	}
	if class.Price <= 0 {
		return fmt.Errorf("core: QoS class %q needs a posted positive price", class.Name)
	}
	if maxLatencyKm < 0 {
		return fmt.Errorf("core: negative latency bound")
	}
	if p.qos == nil {
		p.qos = map[string]QoSOffering{}
	}
	if _, dup := p.qos[class.Name]; dup {
		return fmt.Errorf("core: QoS class %q already published", class.Name)
	}
	p.qos[class.Name] = QoSOffering{Class: class, MaxLatencyKm: maxLatencyKm}
	return nil
}

// QoSCatalog returns the published offerings sorted by name — the
// open price list any member can consult.
func (p *POC) QoSCatalog() []QoSOffering {
	var names []string
	for n := range p.qos {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]QoSOffering, 0, len(names))
	for _, n := range names {
		out = append(out, p.qos[n])
	}
	return out
}

// StartQoSFlow admits a flow under a published class, charging the
// buyer the posted price × reserved Gbps (per month, prorated at
// billing time this is simplified to an upfront monthly charge). The
// same call with the same arguments works identically for every
// member — openness by construction.
func (p *POC) StartQoSFlow(src, dst, className string, gbps float64) (*netsim.Flow, error) {
	off, ok := p.qos[className]
	if !ok {
		return nil, fmt.Errorf("core: QoS class %q is not in the catalog", className)
	}
	fl, err := p.StartFlow(src, dst, gbps, off.Class)
	if err != nil {
		return nil, err
	}
	buyer, ok := p.memberID[src]
	if !ok {
		// StartFlow validated membership; this is defensive.
		return nil, fmt.Errorf("core: unknown buyer %q", src)
	}
	// SLA check before money moves: the POC cannot sell an SLA it
	// cannot meet at admission time.
	if off.MaxLatencyKm > 0 && fl.LatencyKm > off.MaxLatencyKm {
		_ = p.fabric.StopFlow(fl.ID)
		return nil, fmt.Errorf("core: no path within the %s SLA (%.0f km > %.0f km)",
			className, fl.LatencyKm, off.MaxLatencyKm)
	}
	charge := off.Class.Price * fl.Allocated
	if charge > 0 {
		if err := p.ledger.Pay(buyer, p.pocID, market.EdgeServiceFee, charge,
			fmt.Sprintf("QoS %s for %.1f Gbps", className, fl.Allocated)); err != nil {
			_ = p.fabric.StopFlow(fl.ID)
			return nil, err
		}
	}
	return fl, nil
}

// SLAViolation reports one flow exceeding its class's latency bound
// (e.g. after failure-induced rerouting).
type SLAViolation struct {
	Flow      netsim.FlowID
	Class     string
	LatencyKm float64
	BoundKm   float64
}

// CheckSLAs audits every admitted flow against its class's latency
// bound and returns the violations — the operator's signal to
// re-provision or compensate after failures.
func (p *POC) CheckSLAs() []SLAViolation {
	if p.fabric == nil {
		return nil
	}
	var out []SLAViolation
	p.fabric.RangeFlows(func(fl *netsim.Flow) bool {
		off, ok := p.qos[fl.Class.Name]
		if !ok || off.MaxLatencyKm <= 0 {
			return true
		}
		lat := fl.LatencyKm
		if fl.Allocated == 0 {
			// An outage violates any latency promise.
			lat = math.Inf(1)
		}
		if lat > off.MaxLatencyKm {
			out = append(out, SLAViolation{
				Flow: fl.ID, Class: fl.Class.Name,
				LatencyKm: lat, BoundKm: off.MaxLatencyKm,
			})
		}
		return true
	})
	return out
}
