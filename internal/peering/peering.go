// Package peering encodes the POC's terms of service from §3.4: the
// peering conditions every POC-connected LMP must satisfy, and an
// auditor that classifies an LMP's traffic-handling policy as
// compliant or violating.
//
// The conditions, quoted from the paper: a POC-connected LMP must not
//
//	(i)   differentially (in terms of priorities or blocking) treat
//	      incoming traffic based on the source or application, nor
//	      differentially treat outgoing traffic based on the
//	      destination or application;
//	(ii)  differentially provide CDN or other application-enhancement
//	      services based on the source (for incoming packets) or
//	      destination (for outgoing packets);
//	(iii) differentially allow third-parties to provide CDN or other
//	      application-enhancement services that only target a subset
//	      of traffic.
//
// Exceptions exist for security concerns (which may require blocking)
// and internal maintenance traffic (which may require priority).
// QoS offered openly at posted prices is explicitly not a violation:
// the paper distinguishes service discrimination (banned) from QoS
// (allowed).
package peering

import (
	"fmt"
	"strings"
)

// Direction distinguishes traffic entering or leaving the LMP.
type Direction int

const (
	// Incoming traffic arrives from the POC toward the LMP's
	// customers.
	Incoming Direction = iota
	// Outgoing traffic leaves the LMP toward the POC.
	Outgoing
)

func (d Direction) String() string {
	if d == Incoming {
		return "incoming"
	}
	return "outgoing"
}

// Selector matches a subset of traffic. Empty fields match
// everything; a selector with any non-empty field is "selective".
type Selector struct {
	Source      string // origin LMP/CSP name
	Destination string // destination LMP/CSP name
	Application string // e.g. "video", "voip"
}

// Selective reports whether the selector targets a strict subset of
// traffic.
func (s Selector) Selective() bool {
	return s.Source != "" || s.Destination != "" || s.Application != ""
}

func (s Selector) String() string {
	if !s.Selective() {
		return "all traffic"
	}
	var parts []string
	if s.Source != "" {
		parts = append(parts, "src="+s.Source)
	}
	if s.Destination != "" {
		parts = append(parts, "dst="+s.Destination)
	}
	if s.Application != "" {
		parts = append(parts, "app="+s.Application)
	}
	return strings.Join(parts, ",")
}

// Action is what a rule does to matched traffic.
type Action int

const (
	// Allow passes traffic unchanged.
	Allow Action = iota
	// Block drops matched traffic.
	Block
	// Prioritize gives matched traffic better-than-default service.
	Prioritize
	// Deprioritize gives matched traffic worse-than-default service.
	Deprioritize
)

func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Block:
		return "block"
	case Prioritize:
		return "prioritize"
	case Deprioritize:
		return "deprioritize"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Justification is a rule's claimed exemption.
type Justification int

const (
	// None claims no exemption.
	None Justification = iota
	// Security covers blocking attack traffic (the paper's first
	// caveat). It justifies Block only.
	Security
	// Maintenance covers internal maintenance traffic needing
	// priority (the second caveat). It justifies Prioritize only,
	// and only for the LMP's own maintenance traffic.
	Maintenance
)

func (j Justification) String() string {
	switch j {
	case None:
		return "none"
	case Security:
		return "security"
	case Maintenance:
		return "maintenance"
	default:
		return fmt.Sprintf("Justification(%d)", int(j))
	}
}

// Rule is one traffic-handling rule in an LMP's policy.
type Rule struct {
	Direction Direction
	Match     Selector
	Action    Action
	Why       Justification
	// Internal marks traffic originated by the LMP itself (its own
	// management plane); required for the Maintenance exemption.
	Internal bool
}

// QoSClass is a quality-of-service tier the LMP sells. Open classes
// with posted prices are allowed; closed or unpriced ones are
// service discrimination.
type QoSClass struct {
	Name        string
	PostedPrice float64 // per month; must be > 0 and published
	OpenToAll   bool    // anyone may buy at the posted price
}

// CDNOffer is a CDN or application-enhancement service the LMP
// provides, or permission for a third party to install one.
type CDNOffer struct {
	Name       string
	ThirdParty bool     // true if a third party installs the service
	Target     Selector // which traffic the service enhances
	Fee        float64  // set fee; must be uniform (posted)
	OpenToAll  bool     // offered to every CSP/LMP on equal terms
}

// Policy is an LMP's complete traffic-handling declaration, the unit
// the POC audits.
type Policy struct {
	LMP       string
	Rules     []Rule
	QoS       []QoSClass
	CDNOffers []CDNOffer
}

// Condition identifies which terms-of-service clause a violation
// breaches.
type Condition int

const (
	// CondDifferentialTreatment is clause (i).
	CondDifferentialTreatment Condition = iota + 1
	// CondDifferentialCDN is clause (ii).
	CondDifferentialCDN
	// CondDifferentialThirdParty is clause (iii).
	CondDifferentialThirdParty
	// CondClosedQoS is the open-QoS requirement (§3.1: QoS must be
	// "openly offered" at posted prices).
	CondClosedQoS
)

func (c Condition) String() string {
	switch c {
	case CondDifferentialTreatment:
		return "(i) differential treatment"
	case CondDifferentialCDN:
		return "(ii) differential CDN service"
	case CondDifferentialThirdParty:
		return "(iii) differential third-party CDN"
	case CondClosedQoS:
		return "closed QoS"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Violation is one audited breach of the terms of service.
type Violation struct {
	LMP       string
	Condition Condition
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.LMP, v.Condition, v.Detail)
}

// Audit checks a policy against the peering conditions and returns
// every violation found (empty means compliant).
func Audit(p Policy) []Violation {
	var out []Violation
	add := func(c Condition, format string, args ...interface{}) {
		out = append(out, Violation{LMP: p.LMP, Condition: c, Detail: fmt.Sprintf(format, args...)})
	}

	for i, r := range p.Rules {
		if r.Action == Allow {
			continue
		}
		// Does the rule discriminate within the audited direction?
		selective := false
		switch r.Direction {
		case Incoming:
			selective = r.Match.Source != "" || r.Match.Application != ""
		case Outgoing:
			selective = r.Match.Destination != "" || r.Match.Application != ""
		}
		if !selective {
			// Uniform shaping of all traffic (e.g. global rate limits)
			// does not discriminate.
			continue
		}
		switch r.Why {
		case Security:
			if r.Action != Block {
				add(CondDifferentialTreatment,
					"rule %d claims security but action is %s (only block is covered)", i, r.Action)
			}
		case Maintenance:
			if r.Action != Prioritize || !r.Internal {
				add(CondDifferentialTreatment,
					"rule %d claims maintenance but is not internal prioritization", i)
			}
		default:
			add(CondDifferentialTreatment,
				"rule %d %ss %s traffic matching %s with no exemption",
				i, r.Action, r.Direction, r.Match)
		}
	}

	for i, q := range p.QoS {
		if !q.OpenToAll {
			add(CondClosedQoS, "QoS class %q (#%d) is not open to all", q.Name, i)
		}
		if q.PostedPrice <= 0 {
			add(CondClosedQoS, "QoS class %q (#%d) has no posted price", q.Name, i)
		}
	}

	for i, c := range p.CDNOffers {
		cond := CondDifferentialCDN
		if c.ThirdParty {
			cond = CondDifferentialThirdParty
		}
		if c.Target.Selective() {
			add(cond, "CDN offer %q (#%d) targets only %s", c.Name, i, c.Target)
		}
		if !c.OpenToAll {
			add(cond, "CDN offer %q (#%d) is not offered on equal terms", c.Name, i)
		}
	}
	return out
}

// Compliant reports whether the policy passes the audit.
func Compliant(p Policy) bool { return len(Audit(p)) == 0 }
