package peering

import (
	"strings"
	"testing"
)

func TestCompliantPolicies(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
	}{
		{"empty", Policy{LMP: "lmp0"}},
		{"allow everything", Policy{LMP: "lmp0", Rules: []Rule{
			{Direction: Incoming, Action: Allow},
			{Direction: Incoming, Match: Selector{Source: "netflix"}, Action: Allow},
		}}},
		{"uniform shaping", Policy{LMP: "lmp0", Rules: []Rule{
			{Direction: Incoming, Action: Deprioritize}, // applies to all traffic
		}}},
		{"security block", Policy{LMP: "lmp0", Rules: []Rule{
			{Direction: Incoming, Match: Selector{Source: "botnet"}, Action: Block, Why: Security},
		}}},
		{"maintenance priority", Policy{LMP: "lmp0", Rules: []Rule{
			{Direction: Outgoing, Match: Selector{Application: "ops"}, Action: Prioritize, Why: Maintenance, Internal: true},
		}}},
		{"open posted QoS", Policy{LMP: "lmp0", QoS: []QoSClass{
			{Name: "gold", PostedPrice: 99, OpenToAll: true},
		}}},
		{"open CDN", Policy{LMP: "lmp0", CDNOffers: []CDNOffer{
			{Name: "edge-cache", Fee: 500, OpenToAll: true},
			{Name: "third-party-racks", ThirdParty: true, Fee: 300, OpenToAll: true},
		}}},
		{"incoming rule selecting on destination only", Policy{LMP: "lmp0", Rules: []Rule{
			// Destination selection on incoming traffic is the LMP
			// steering to its own customers — not source/app
			// discrimination under clause (i).
			{Direction: Incoming, Match: Selector{Destination: "enterprise-7"}, Action: Prioritize},
		}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if vs := Audit(c.p); len(vs) != 0 {
				t.Fatalf("unexpected violations: %v", vs)
			}
			if !Compliant(c.p) {
				t.Fatal("Compliant() = false")
			}
		})
	}
}

func TestViolations(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		want Condition
	}{
		{"block by source", Policy{LMP: "x", Rules: []Rule{
			{Direction: Incoming, Match: Selector{Source: "netflix"}, Action: Block},
		}}, CondDifferentialTreatment},
		{"deprioritize by app", Policy{LMP: "x", Rules: []Rule{
			{Direction: Incoming, Match: Selector{Application: "video"}, Action: Deprioritize},
		}}, CondDifferentialTreatment},
		{"outgoing by destination", Policy{LMP: "x", Rules: []Rule{
			{Direction: Outgoing, Match: Selector{Destination: "rival-lmp"}, Action: Deprioritize},
		}}, CondDifferentialTreatment},
		{"own content prioritized", Policy{LMP: "x", Rules: []Rule{
			// §2.5: an LMP must not give its own content better service.
			{Direction: Incoming, Match: Selector{Source: "x-streaming"}, Action: Prioritize},
		}}, CondDifferentialTreatment},
		{"security claimed for prioritization", Policy{LMP: "x", Rules: []Rule{
			{Direction: Incoming, Match: Selector{Source: "partner"}, Action: Prioritize, Why: Security},
		}}, CondDifferentialTreatment},
		{"maintenance claimed for external traffic", Policy{LMP: "x", Rules: []Rule{
			{Direction: Incoming, Match: Selector{Application: "ops"}, Action: Prioritize, Why: Maintenance, Internal: false},
		}}, CondDifferentialTreatment},
		{"maintenance claimed for block", Policy{LMP: "x", Rules: []Rule{
			{Direction: Incoming, Match: Selector{Application: "ops"}, Action: Block, Why: Maintenance, Internal: true},
		}}, CondDifferentialTreatment},
		{"closed QoS", Policy{LMP: "x", QoS: []QoSClass{
			{Name: "vip", PostedPrice: 10, OpenToAll: false},
		}}, CondClosedQoS},
		{"unpriced QoS", Policy{LMP: "x", QoS: []QoSClass{
			{Name: "secret", PostedPrice: 0, OpenToAll: true},
		}}, CondClosedQoS},
		{"CDN only for one CSP", Policy{LMP: "x", CDNOffers: []CDNOffer{
			{Name: "cache", Target: Selector{Source: "megaflix"}, Fee: 1, OpenToAll: true},
		}}, CondDifferentialCDN},
		{"CDN not on equal terms", Policy{LMP: "x", CDNOffers: []CDNOffer{
			{Name: "cache", Fee: 1, OpenToAll: false},
		}}, CondDifferentialCDN},
		{"third-party install only for megaflix", Policy{LMP: "x", CDNOffers: []CDNOffer{
			// The paper's example: allowing Netflix to install
			// services that enhance its traffic while disallowing
			// others.
			{Name: "racks", ThirdParty: true, Target: Selector{Source: "megaflix"}, Fee: 1, OpenToAll: true},
		}}, CondDifferentialThirdParty},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			vs := Audit(c.p)
			if len(vs) == 0 {
				t.Fatal("expected a violation")
			}
			found := false
			for _, v := range vs {
				if v.Condition == c.want {
					found = true
				}
				if v.LMP != "x" {
					t.Fatalf("violation names LMP %q", v.LMP)
				}
			}
			if !found {
				t.Fatalf("got %v, want condition %v", vs, c.want)
			}
		})
	}
}

func TestMultipleViolationsReported(t *testing.T) {
	p := Policy{
		LMP: "x",
		Rules: []Rule{
			{Direction: Incoming, Match: Selector{Source: "a"}, Action: Block},
			{Direction: Outgoing, Match: Selector{Destination: "b"}, Action: Deprioritize},
		},
		QoS:       []QoSClass{{Name: "vip", OpenToAll: false}},
		CDNOffers: []CDNOffer{{Name: "c", Target: Selector{Source: "a"}, OpenToAll: false}},
	}
	vs := Audit(p)
	if len(vs) < 5 { // 2 rules + 2 QoS issues (closed and unpriced) + 2 CDN issues... at least 5
		t.Fatalf("got %d violations: %v", len(vs), vs)
	}
}

func TestSelector(t *testing.T) {
	if (Selector{}).Selective() {
		t.Fatal("empty selector should match all")
	}
	if !(Selector{Application: "x"}).Selective() {
		t.Fatal("app selector is selective")
	}
	if got := (Selector{}).String(); got != "all traffic" {
		t.Fatalf("String = %q", got)
	}
	s := Selector{Source: "a", Destination: "b", Application: "c"}
	str := s.String()
	for _, want := range []string{"src=a", "dst=b", "app=c"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String = %q missing %q", str, want)
		}
	}
}

func TestStringers(t *testing.T) {
	if Incoming.String() != "incoming" || Outgoing.String() != "outgoing" {
		t.Fatal("Direction strings")
	}
	for a, want := range map[Action]string{
		Allow: "allow", Block: "block", Prioritize: "prioritize",
		Deprioritize: "deprioritize", Action(9): "Action(9)",
	} {
		if a.String() != want {
			t.Fatalf("Action %d = %q", int(a), a.String())
		}
	}
	for j, want := range map[Justification]string{
		None: "none", Security: "security", Maintenance: "maintenance",
		Justification(9): "Justification(9)",
	} {
		if j.String() != want {
			t.Fatalf("Justification %d = %q", int(j), j.String())
		}
	}
	for c := range map[Condition]bool{
		CondDifferentialTreatment: true, CondDifferentialCDN: true,
		CondDifferentialThirdParty: true, CondClosedQoS: true, Condition(9): true,
	} {
		if c.String() == "" {
			t.Fatal("empty Condition string")
		}
	}
	v := Violation{LMP: "l", Condition: CondClosedQoS, Detail: "d"}
	if !strings.Contains(v.String(), "closed QoS") {
		t.Fatalf("Violation.String = %q", v.String())
	}
}
