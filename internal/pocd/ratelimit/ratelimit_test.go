package ratelimit

import (
	"testing"
	"time"
)

// clockAt returns a deterministic instant s seconds past a fixed
// epoch — the injected-clock pattern: tests never read a real clock.
func clockAt(s float64) time.Time {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return base.Add(time.Duration(s * float64(time.Second)))
}

func TestBurstThenReject(t *testing.T) {
	l := New(Config{Rate: 1, Burst: 3})
	now := clockAt(0)
	for i := 0; i < 3; i++ {
		if !l.Allow("t1", now) {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if l.Allow("t1", now) {
		t.Fatal("request beyond burst admitted")
	}
}

func TestRefill(t *testing.T) {
	l := New(Config{Rate: 2, Burst: 2})
	for i := 0; i < 2; i++ {
		l.Allow("t", clockAt(0))
	}
	if l.Allow("t", clockAt(0)) {
		t.Fatal("empty bucket admitted")
	}
	// 0.5s at 2 tokens/s refills exactly one token.
	if !l.Allow("t", clockAt(0.5)) {
		t.Fatal("refilled token rejected")
	}
	if l.Allow("t", clockAt(0.5)) {
		t.Fatal("second token admitted after single refill")
	}
	// Refill caps at Burst no matter how long the tenant was idle.
	if !l.Allow("t", clockAt(100)) || !l.Allow("t", clockAt(100)) {
		t.Fatal("burst after idle rejected")
	}
	if l.Allow("t", clockAt(100)) {
		t.Fatal("refill exceeded burst")
	}
}

func TestTenantsIndependent(t *testing.T) {
	l := New(Config{Rate: 1, Burst: 1})
	if !l.Allow("a", clockAt(0)) {
		t.Fatal("a rejected")
	}
	if !l.Allow("b", clockAt(0)) {
		t.Fatal("b throttled by a's bucket")
	}
	if l.Allow("a", clockAt(0)) {
		t.Fatal("a's second request admitted")
	}
}

func TestDisabled(t *testing.T) {
	l := New(Config{Rate: 0})
	for i := 0; i < 100; i++ {
		if !l.Allow("t", clockAt(0)) {
			t.Fatal("disabled limiter rejected")
		}
	}
	var nilL *Limiter
	if !nilL.Allow("t", clockAt(0)) {
		t.Fatal("nil limiter rejected")
	}
}

func TestMaxTenantsOverflowShared(t *testing.T) {
	l := New(Config{Rate: 1, Burst: 1, MaxTenants: 2})
	l.Allow("a", clockAt(0))
	l.Allow("b", clockAt(0))
	// c and d share the overflow bucket: c drains it, d is rejected.
	if !l.Allow("c", clockAt(0)) {
		t.Fatal("first overflow tenant rejected")
	}
	if l.Allow("d", clockAt(0)) {
		t.Fatal("overflow bucket not shared")
	}
	if l.Tenants() != 2 {
		t.Fatalf("tracked %d tenants, want 2", l.Tenants())
	}
}
