// Package ratelimit is pocd's per-tenant token-bucket admission
// filter. Each tenant (an API key, a member name, a remote address —
// the daemon decides) gets an independent bucket refilled at Rate
// tokens per second up to Burst; a request costs one token, and a
// tenant with an empty bucket is rejected (HTTP 429 upstream) before
// its request can reach the writer queue, so one abusive client
// cannot starve the journal of everyone else's work.
//
// The limiter never samples the wall clock itself: the current time
// is injected per call by the caller (cmd/pocd passes time.Now; tests
// pass a fake). That keeps internal/ free of clock reads — the
// poclint walltime invariant — and makes every admission decision
// reproducible in tests.
package ratelimit

import (
	"sync"
	"time"
)

// Config tunes the per-tenant buckets.
type Config struct {
	// Rate is the steady-state refill in tokens (requests) per
	// second. Zero or negative disables limiting entirely.
	Rate float64
	// Burst is the bucket capacity (instantaneous headroom). Zero
	// defaults to Rate (one second of headroom).
	Burst float64
	// MaxTenants bounds the tracked-bucket map as a memory guard
	// against tenant-id churn attacks; once full, unknown tenants
	// share one overflow bucket instead of allocating. Zero = 4096.
	MaxTenants int
}

// bucket is one tenant's token state.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter admits or rejects requests per tenant. Safe for concurrent
// use.
type Limiter struct {
	cfg Config

	mu       sync.Mutex
	buckets  map[string]*bucket
	overflow bucket // shared by tenants beyond MaxTenants
}

// New returns a limiter with the given tuning.
func New(cfg Config) *Limiter {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 4096
	}
	return &Limiter{cfg: cfg, buckets: make(map[string]*bucket)}
}

// Allow reports whether tenant may proceed at the injected current
// time, consuming one token if so.
func (l *Limiter) Allow(tenant string, now time.Time) bool {
	if l == nil || l.cfg.Rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[tenant]
	if !ok {
		if len(l.buckets) >= l.cfg.MaxTenants {
			b = &l.overflow
		} else {
			b = &bucket{tokens: l.cfg.Burst, last: now}
			l.buckets[tenant] = b
		}
	}
	if b.last.IsZero() {
		b.tokens = l.cfg.Burst
		b.last = now
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.cfg.Rate
		if b.tokens > l.cfg.Burst {
			b.tokens = l.cfg.Burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tenants returns how many distinct buckets are tracked (telemetry).
func (l *Limiter) Tenants() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
