package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/public-option/poc/internal/auction"
	"github.com/public-option/poc/internal/core"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/pocd/journal"
	"github.com/public-option/poc/internal/pocd/ratelimit"
	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// buildRing is the test BuildFunc: a 4-router ring with a chord, each
// link under its own BP, auctioned and activated. It is fully
// deterministic in (and independent of) the spec, which is exactly
// what recovery requires.
func buildRing(spec []byte) (*core.POC, *obs.Registry, error) {
	net := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 4)},
		Routers: []int{0, 1, 2, 3},
	}
	for i := 0; i < 5; i++ {
		net.BPs = append(net.BPs, topo.BP{Name: "bp", CostMult: 1})
	}
	add := func(bp, a, b int, dist float64) {
		net.Links = append(net.Links, topo.LogicalLink{
			ID: len(net.Links), BP: bp, A: a, B: b, Capacity: 100, DistanceKm: dist,
		})
	}
	add(0, 0, 1, 100)
	add(1, 1, 2, 100)
	add(2, 2, 3, 100)
	add(3, 3, 0, 100)
	add(4, 0, 2, 250)

	tm := traffic.NewMatrix(4)
	tm.Set(0, 2, 20)
	tm.Set(2, 0, 20)
	tm.Set(1, 3, 10)
	tm.Set(3, 1, 10)

	reg := obs.New()
	p, err := core.New(core.Config{
		Network:       net,
		TM:            tm,
		Constraint:    provision.Constraint1,
		ReserveMargin: 0.02,
		Obs:           reg,
	})
	if err != nil {
		return nil, nil, err
	}
	for b := range net.BPs {
		links := net.LinksOfBP(b)
		prices := map[int]float64{}
		for _, id := range links {
			prices[id] = 100 * net.Links[id].DistanceKm / 100
		}
		if err := p.SubmitBid(auction.Bid{BP: b, Links: links, Cost: auction.AdditiveCost(prices)}); err != nil {
			return nil, nil, err
		}
	}
	if _, err := p.RunAuction(); err != nil {
		return nil, nil, err
	}
	if err := p.Activate(); err != nil {
		return nil, nil, err
	}
	return p, reg, nil
}

// fakeClock is an injectable clock the tests advance by hand.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *fakeClock, string) {
	t.Helper()
	clock := &fakeClock{}
	path := filepath.Join(t.TempDir(), "pocd.journal")
	cfg := Config{
		Spec:        []byte(`{"scenario":"ring"}`),
		Build:       buildRing,
		JournalPath: path,
		NoFsync:     true,
		Now:         clock.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, clock, path
}

// post sends one mutation through the HTTP surface.
func post(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// script drives a representative session: membership, QoS, flows,
// chaos, billing, recall — every op kind the journal must survive.
var script = []struct{ path, body string }{
	{"/v1/members", `{"name":"metro-lmp","kind":"lmp","router":0}`},
	{"/v1/members", `{"name":"cloud-csp","kind":"csp","router":2}`},
	{"/v1/qos", `{"name":"gold","weight":4,"price":2.5,"max_latency_km":1000}`},
	{"/v1/flows", `{"flows":[{"src":"metro-lmp","dst":"cloud-csp","gbps":5},{"src":"cloud-csp","dst":"metro-lmp","gbps":3,"class":"gold"}]}`},
	{"/v1/epoch", `{"seconds":3600}`},
	// The ring auction selects links 1, 2, 3; chaos and recall must
	// act on leased links to exercise real transitions.
	{"/v1/chaos", `{"kind":"cut-link","link":2}`},
	{"/v1/epoch", `{"seconds":3600}`},
	{"/v1/chaos", `{"kind":"repair-link","link":2}`},
	{"/v1/flows/stop", `{"ids":[1]}`},
	{"/v1/recall", `{"link":1,"penalty_rate":0.1}`},
	{"/v1/epoch", `{"seconds":1800}`},
}

// obsExport reads /v1/obs and fails on a degraded or error response.
func obsExport(t *testing.T, ts *httptest.Server) []byte {
	t.Helper()
	resp, b := get(t, ts, "/v1/obs")
	if resp.StatusCode != 200 {
		t.Fatalf("obs: status %d: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("X-Pocd-Degraded") != "" {
		t.Fatalf("obs: unexpectedly degraded")
	}
	return b
}

// recordEnds parses the journal frame structure and returns the byte
// offset just past each record (header record first).
func recordEnds(t *testing.T, raw []byte) []int64 {
	t.Helper()
	const frameHeader = 4 + 1 + 8 + 4
	var ends []int64
	off := int64(len(journal.Magic))
	for off < int64(len(raw)) {
		if off+frameHeader > int64(len(raw)) {
			t.Fatalf("trailing garbage at %d", off)
		}
		n := int64(binary.LittleEndian.Uint32(raw[off:]))
		off += frameHeader + n
		if off > int64(len(raw)) {
			t.Fatalf("record overruns file at %d", off)
		}
		ends = append(ends, off)
	}
	return ends
}

// TestRecoveryAtEveryRecordBoundary is the crash-recovery property
// test at the server level: run the scripted session, then for every
// record boundary (and a cut strictly inside the following record)
// restart a server from that truncated journal and require its state
// and obs export to be byte-identical to what the original server
// reported right after the corresponding op. Torn records must be
// dropped whole — never half-applied.
func TestRecoveryAtEveryRecordBoundary(t *testing.T) {
	s, _, path := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// exports[k] / statuses[k] = observed state after k applied ops.
	exports := [][]byte{obsExport(t, ts)}
	statuses := []string{}
	_, st0 := get(t, ts, "/v1/status")
	statuses = append(statuses, string(st0))
	for _, step := range script {
		code, body := post(t, ts, step.path, step.body)
		if code != 200 {
			t.Fatalf("POST %s: status %d: %s", step.path, code, body)
		}
		exports = append(exports, obsExport(t, ts))
		_, sb := get(t, ts, "/v1/status")
		statuses = append(statuses, string(sb))
	}
	ts.Close()
	// No Shutdown: the original "crashes" with an unsealed journal.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	ends := recordEnds(t, raw)
	if len(ends) != len(script)+1 {
		t.Fatalf("journal has %d records, want %d", len(ends), len(script)+1)
	}
	for i, end := range ends {
		ops := i // record 0 is the header
		cuts := []int64{end}
		if i+1 < len(ends) {
			// A cut strictly inside the next record: torn tail.
			cuts = append(cuts, end+(ends[i+1]-end)/2)
		}
		for _, cut := range cuts {
			trunc := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d.journal", cut))
			if err := os.WriteFile(trunc, raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			clock := &fakeClock{}
			s2, err := New(Config{
				Build:       buildRing,
				JournalPath: trunc,
				NoFsync:     true,
				Now:         clock.now,
			})
			if err != nil {
				t.Fatalf("cut %d: recover: %v", cut, err)
			}
			rec := s2.Recovered()
			if rec == nil || rec.Ops != ops {
				t.Fatalf("cut %d: recovered %+v, want %d ops", cut, rec, ops)
			}
			ts2 := httptest.NewServer(s2.Handler())
			if got := obsExport(t, ts2); !bytes.Equal(got, exports[ops]) {
				t.Fatalf("cut %d: recovered obs export diverges after %d ops", cut, ops)
			}
			if _, sb := get(t, ts2, "/v1/status"); string(sb) != statuses[ops] {
				t.Fatalf("cut %d: recovered status diverges after %d ops:\n%s\nwant:\n%s", cut, ops, sb, statuses[ops])
			}
			ts2.Close()
			if err := s2.Shutdown(); err != nil {
				t.Fatalf("cut %d: shutdown: %v", cut, err)
			}
		}
	}
}

// TestRecoveredJournalStaysAppendable proves a recovered daemon keeps
// journaling: recover, apply more ops, crash again, recover again —
// the second recovery sees both generations of ops.
func TestRecoveredJournalStaysAppendable(t *testing.T) {
	s, _, path := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	for _, step := range script[:4] {
		if code, body := post(t, ts, step.path, step.body); code != 200 {
			t.Fatalf("POST %s: %d: %s", step.path, code, body)
		}
	}
	ts.Close()
	// Crash (no seal), then chop 3 bytes to tear the final record.
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	clock := &fakeClock{}
	s2, err := New(Config{Build: buildRing, JournalPath: path, NoFsync: true, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	if rec := s2.Recovered(); rec.Ops != 3 || rec.TornBytes == 0 {
		t.Fatalf("recovered %+v, want 3 ops and a torn tail", rec)
	}
	ts2 := httptest.NewServer(s2.Handler())
	for _, step := range script[3:6] {
		if code, body := post(t, ts2, step.path, step.body); code != 200 {
			t.Fatalf("POST %s: %d: %s", step.path, code, body)
		}
	}
	wantExport := obsExport(t, ts2)
	ts2.Close()
	if err := s2.Shutdown(); err != nil {
		t.Fatal(err)
	}

	s3, err := New(Config{Build: buildRing, JournalPath: path, NoFsync: true, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Shutdown()
	if rec := s3.Recovered(); rec.Ops != 6 || !rec.Sealed {
		t.Fatalf("second recovery %+v, want 6 ops, sealed", rec)
	}
	ts3 := httptest.NewServer(s3.Handler())
	defer ts3.Close()
	if got := obsExport(t, ts3); !bytes.Equal(got, wantExport) {
		t.Fatal("second recovery's obs export diverges from pre-shutdown export")
	}
}

// TestGateRewriteJournaledExactly: the journal must carry the op as
// applied, not as submitted. applyGate runs before journaling and may
// rewrite the op; the bytes appended to the journal must be marshaled
// AFTER the gate, or replay rebuilds a different state than the live
// daemon held (the op was journaled with the pre-rewrite fields but
// applied with the post-rewrite ones).
func TestGateRewriteJournaledExactly(t *testing.T) {
	s, _, path := newTestServer(t, func(cfg *Config) {
		cfg.applyGate = func(op *Op) {
			if op.Op == "publish_qos" {
				op.Weight *= 2
			}
		}
	})
	ts := httptest.NewServer(s.Handler())
	if code, body := post(t, ts, "/v1/qos", `{"name":"gold","weight":4,"price":2.5}`); code != 200 {
		t.Fatalf("POST /v1/qos: %d: %s", code, body)
	}
	live := obsExport(t, ts)
	ts.Close()
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// The journal record must already carry the rewritten weight.
	var journaled Op
	if _, err := journal.Replay(path, func(_ uint64, payload []byte) error {
		return json.Unmarshal(payload, &journaled)
	}); err != nil {
		t.Fatal(err)
	}
	if journaled.Weight != 8 {
		t.Fatalf("journaled weight %v, want the post-gate 8: the journal recorded an op that was never applied", journaled.Weight)
	}

	// And replaying it reproduces the live daemon's export and the
	// rewritten catalog entry.
	_, replayed, err := ReplayFile(path, buildRing)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replayed, live) {
		t.Fatal("replayed obs export diverges from the live export")
	}
	s2, err := New(Config{Build: buildRing, JournalPath: path, NoFsync: true, Now: (&fakeClock{}).now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	_, body := get(t, ts2, "/v1/qos")
	var envelope struct {
		Result []struct {
			Class struct{ Weight float64 }
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("decode /v1/qos: %v: %s", err, body)
	}
	catalog := envelope.Result
	if len(catalog) == 0 || catalog[len(catalog)-1].Class.Weight != 8 {
		t.Fatalf("recovered catalog %s, want the post-gate weight 8", body)
	}
}

// TestTimeoutDecidedBeforeJournal: a mutation that expires while
// queued is rejected whole — no journal record, no state change.
func TestTimeoutDecidedBeforeJournal(t *testing.T) {
	gate := make(chan struct{})
	gateEntered := make(chan struct{})
	s, clock, path := newTestServer(t, func(cfg *Config) {
		cfg.applyGate = func(op *Op) {
			if op.Op == "publish_qos" {
				close(gateEntered)
				<-gate
			}
		}
	})
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the writer with a gated op; only once the writer is
	// provably wedged, queue a second mutation and let its deadline
	// lapse before the writer reaches it.
	firstDone := make(chan int)
	go func() {
		code, _ := post(t, ts, "/v1/qos", `{"name":"gold","weight":4,"price":2}`)
		firstDone <- code
	}()
	<-gateEntered
	secondDone := make(chan string)
	go func() {
		code, body := post(t, ts, "/v1/epoch", `{"seconds":3600}`)
		secondDone <- fmt.Sprintf("%d %s", code, body)
	}()
	for i := 0; i < 5000 && len(s.queue) < 1; i++ {
		time.Sleep(time.Millisecond)
	}
	clock.advance(10 * time.Second)
	close(gate)

	if code := <-firstDone; code != 200 {
		t.Fatalf("gated op: status %d", code)
	}
	second := <-secondDone
	if !strings.HasPrefix(second, "503") || !strings.Contains(second, "deadline") {
		t.Fatalf("queued op past deadline: got %q, want 503 deadline", second)
	}
	ts.Close()
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// Exactly one op journaled: the gated publish_qos. The timed-out
	// epoch op must not appear.
	res, err := journal.Replay(path, func(seq uint64, payload []byte) error {
		if !strings.Contains(string(payload), "publish_qos") {
			return fmt.Errorf("unexpected journaled op: %s", payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1 || !res.Sealed {
		t.Fatalf("journal: %+v, want 1 op, sealed", res)
	}
}

// TestDegradedReadsUnderSaturation: with the writer wedged and the
// queue full, reads serve the last snapshot (marked degraded) and
// mutations shed with 503.
func TestDegradedReadsUnderSaturation(t *testing.T) {
	gate := make(chan struct{})
	s, _, _ := newTestServer(t, func(cfg *Config) {
		cfg.QueueDepth = 1
		cfg.applyGate = func(op *Op) { <-gate }
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	go func() { // occupies the writer (dequeued, gated)
		post(t, ts, "/v1/epoch", `{"seconds":3600}`)
		close(done)
	}()
	queued := make(chan struct{})
	go func() { // fills the depth-1 queue
		post(t, ts, "/v1/epoch", `{"seconds":3600}`)
		close(queued)
	}()
	waitFor := func(cond func() bool) {
		for i := 0; i < 5000 && !cond(); i++ {
			time.Sleep(time.Millisecond)
		}
		if !cond() {
			t.Fatal("writer never reached expected saturation")
		}
	}
	waitFor(func() bool { return len(s.queue) == 1 })

	resp, body := get(t, ts, "/v1/status")
	if resp.StatusCode != 200 {
		t.Fatalf("degraded read: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Pocd-Degraded") != "stale" {
		t.Fatalf("degraded read: missing X-Pocd-Degraded header")
	}
	var snap core.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("degraded read: bad body: %v", err)
	}
	if code, _ := post(t, ts, "/v1/epoch", `{"seconds":3600}`); code != 503 {
		t.Fatalf("mutation with full queue: status %d, want 503", code)
	}
	if s.mShed.Load() == 0 || s.mDegraded.Load() == 0 {
		t.Fatalf("shed/degraded counters not incremented: shed=%d degraded=%d",
			s.mShed.Load(), s.mDegraded.Load())
	}

	close(gate)
	<-done
	<-queued
	// Writer free again: fresh reads resume, no degraded marker.
	resp, _ = get(t, ts, "/v1/status")
	if resp.Header.Get("X-Pocd-Degraded") != "" {
		t.Fatal("read still degraded after writer drained")
	}
	ts.Close()
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestRateLimitPerTenant: an over-quota tenant gets 429 without
// consuming writer capacity; other tenants are unaffected.
func TestRateLimitPerTenant(t *testing.T) {
	s, _, _ := newTestServer(t, func(cfg *Config) {
		cfg.RateLimit = ratelimit.Config{Rate: 1, Burst: 2}
	})
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := func(tenant string) int {
		r, _ := http.NewRequest("GET", ts.URL+"/v1/status", nil)
		if tenant != "" {
			r.Header.Set("X-POC-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := []int{req("a"), req("a"), req("a")}; got[0] != 200 || got[1] != 200 || got[2] != 429 {
		t.Fatalf("tenant a: %v, want burst of 2 then 429", got)
	}
	if code := req("b"); code != 200 {
		t.Fatalf("tenant b: %d, want independent bucket", code)
	}
	if s.mRateLimited.Load() != 1 {
		t.Fatalf("rate-limited counter = %d, want 1", s.mRateLimited.Load())
	}
}

// TestShutdownDrainsAndSeals: Shutdown answers everything already
// queued, seals the journal, and rejects later mutations.
func TestShutdownDrainsAndSeals(t *testing.T) {
	s, _, path := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, body := post(t, ts, "/v1/epoch", `{"seconds":60}`); code != 200 {
		t.Fatalf("epoch: %d: %s", code, body)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil { // idempotent
		t.Fatal(err)
	}
	if code, _ := post(t, ts, "/v1/epoch", `{"seconds":60}`); code != 503 {
		t.Fatalf("mutation after shutdown: %d, want 503", code)
	}
	resp, _ := get(t, ts, "/readyz")
	if resp.StatusCode != 503 {
		t.Fatalf("readyz after shutdown: %d, want 503", resp.StatusCode)
	}
	res, err := journal.Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sealed || res.Ops != 1 {
		t.Fatalf("journal %+v, want sealed with 1 op", res)
	}
}

// TestValidationNeverTouchesJournal: a 400 must not consume a
// sequence number.
func TestValidationNeverTouchesJournal(t *testing.T) {
	s, _, path := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	bad := []struct{ path, body string }{
		{"/v1/flows", `{"flows":[]}`},
		{"/v1/flows", `{"flows":[{"src":"a","dst":"b","gbps":-1}]}`},
		{"/v1/members", `{"name":"x","kind":"wat"}`},
		{"/v1/epoch", `{"seconds":0}`},
		{"/v1/chaos", `{"kind":"meteor"}`},
		{"/v1/flows/stop", `{}`},
	}
	for _, b := range bad {
		if code, body := post(t, ts, b.path, b.body); code != 400 {
			t.Fatalf("POST %s %s: status %d (%s), want 400", b.path, b.body, code, body)
		}
	}
	ts.Close()
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	res, err := journal.Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 0 {
		t.Fatalf("journal has %d ops after only invalid requests", res.Ops)
	}
}

// TestSpecMismatchRefused: recovering a journal under a different
// deployment spec must fail loudly, not rebuild the wrong network.
func TestSpecMismatchRefused(t *testing.T) {
	s, _, path := newTestServer(t, nil)
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{}
	_, err := New(Config{
		Spec:        []byte(`{"scenario":"other"}`),
		Build:       buildRing,
		JournalPath: path,
		NoFsync:     true,
		Now:         clock.now,
	})
	if err == nil || !strings.Contains(err.Error(), "different deployment spec") {
		t.Fatalf("spec mismatch accepted: %v", err)
	}
}
