package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/public-option/poc/internal/netsim"
)

// Handler returns the daemon's HTTP mux. Query endpoints run their
// read on the writer goroutine for a fresh, consistent view; when the
// writer is saturated (or the read times out in queue) they fall back
// to the last published snapshot and set X-Pocd-Degraded: stale so
// clients can tell. Mutations never degrade: a full queue sheds them
// with 503, an over-quota tenant gets 429, and nothing is journaled
// in either case.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)

	// Reads.
	mux.HandleFunc("GET /v1/status", s.readHandler(func(st *state) (any, error) {
		return st.poc.Snapshot(), nil
	}, func(sn *Snapshot) any { return sn.State }))
	mux.HandleFunc("GET /v1/utilization", s.readHandler(func(st *state) (any, error) {
		return st.poc.Snapshot().Utilization, nil
	}, func(sn *Snapshot) any { return sn.State.Utilization }))
	mux.HandleFunc("GET /v1/qos", s.readHandler(func(st *state) (any, error) {
		return st.poc.QoSCatalog(), nil
	}, func(sn *Snapshot) any { return sn.State.QoS }))
	mux.HandleFunc("GET /v1/members", s.readHandler(func(st *state) (any, error) {
		return st.poc.Members(), nil
	}, func(sn *Snapshot) any { return sn.State.Members }))
	mux.HandleFunc("GET /v1/flows", func(w http.ResponseWriter, r *http.Request) {
		if !s.admit(w, r) {
			return
		}
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil {
			http.Error(w, "flows: id query parameter required", http.StatusBadRequest)
			return
		}
		rep := s.do(nil, func(st *state) (any, error) {
			fl, ok := st.poc.FlowSnapshot(netsim.FlowID(id))
			if !ok {
				return nil, fmt.Errorf("flow %d not found", id)
			}
			return fl, nil
		})
		// Per-flow data is not in the snapshot; a saturated writer
		// means this query has no degraded fallback.
		s.writeReply(w, rep)
	})
	mux.HandleFunc("GET /v1/obs", func(w http.ResponseWriter, r *http.Request) {
		if !s.admit(w, r) {
			return
		}
		rep := s.do(nil, func(st *state) (any, error) {
			return st.reg.ExportJSON()
		})
		if rep.err != nil {
			if sn := s.degradedSnapshot(); sn != nil {
				w.Header().Set("X-Pocd-Degraded", "stale")
				w.Header().Set("X-Pocd-Seq", strconv.FormatUint(sn.Seq, 10))
				w.Header().Set("Content-Type", "application/json")
				w.Write(sn.ObsExport())
				return
			}
			s.writeReply(w, rep)
			return
		}
		w.Header().Set("X-Pocd-Seq", strconv.FormatUint(rep.seq, 10))
		w.Header().Set("Content-Type", "application/json")
		w.Write(rep.val.([]byte))
	})

	// Mutations: the path fixes the op kind; the body carries the rest.
	mux.HandleFunc("POST /v1/flows", s.opHandler("start_flows"))
	mux.HandleFunc("POST /v1/flows/stop", s.opHandler("stop_flows"))
	mux.HandleFunc("POST /v1/members", s.opHandler("attach"))
	mux.HandleFunc("POST /v1/qos", s.opHandler("publish_qos"))
	mux.HandleFunc("POST /v1/epoch", s.opHandler("bill_epoch"))
	mux.HandleFunc("POST /v1/chaos", s.opHandler("chaos"))
	mux.HandleFunc("POST /v1/recall", s.opHandler("recall"))
	mux.HandleFunc("POST /v1/reauction", s.opHandler("reauction"))

	return mux
}

// admit counts the request and applies the per-tenant token bucket.
// Tenants identify themselves with X-POC-Tenant; anonymous callers
// share one bucket.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	s.mRequests.Add(1)
	tenant := r.Header.Get("X-POC-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if !s.limiter.Allow(tenant, s.cfg.Now()) {
		s.mRateLimited.Add(1)
		http.Error(w, "rate limit exceeded for tenant "+tenant, http.StatusTooManyRequests)
		return false
	}
	return true
}

// readHandler builds a GET handler that runs fresh on the writer and
// falls back to the degraded snapshot view when the writer is
// unreachable (queue full, draining, or queued past deadline).
func (s *Server) readHandler(read func(*state) (any, error), stale func(*Snapshot) any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.admit(w, r) {
			return
		}
		rep := s.do(nil, read)
		if rep.err != nil {
			if sn := s.degradedSnapshot(); sn != nil {
				w.Header().Set("X-Pocd-Degraded", "stale")
				w.Header().Set("X-Pocd-Seq", strconv.FormatUint(sn.Seq, 10))
				writeJSON(w, http.StatusOK, stale(sn))
				return
			}
		}
		s.writeReply(w, rep)
	}
}

// opHandler builds a POST handler for one op kind: decode, validate
// (400 before any journal traffic), then run through the writer.
func (s *Server) opHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.admit(w, r) {
			return
		}
		op := &Op{}
		if r.ContentLength != 0 {
			dec := json.NewDecoder(r.Body)
			if err := dec.Decode(op); err != nil {
				http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		op.Op = kind
		if err := op.validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.writeReply(w, s.do(op, nil))
	}
}

// writeReply encodes one writer reply as the HTTP response.
func (s *Server) writeReply(w http.ResponseWriter, rep reply) {
	if rep.err != nil {
		status := rep.status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		writeJSON(w, status, map[string]any{"error": rep.err.Error(), "seq": rep.seq})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"seq": rep.seq, "result": rep.val})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleMetrics serves daemon counters in Prometheus text exposition
// format. These counters are daemon-local atomics, deliberately
// outside the journaled obs registry (see Server doc).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	ready := 0
	if s.ready.Load() {
		ready = 1
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "pocd_ready %d\n", ready)
	fmt.Fprintf(w, "pocd_requests_total %d\n", s.mRequests.Load())
	fmt.Fprintf(w, "pocd_rate_limited_total %d\n", s.mRateLimited.Load())
	fmt.Fprintf(w, "pocd_shed_total %d\n", s.mShed.Load())
	fmt.Fprintf(w, "pocd_timeouts_total %d\n", s.mTimeouts.Load())
	fmt.Fprintf(w, "pocd_degraded_reads_total %d\n", s.mDegraded.Load())
	fmt.Fprintf(w, "pocd_ops_applied_total %d\n", s.mApplied.Load())
	fmt.Fprintf(w, "pocd_op_errors_total %d\n", s.mApplyErrors.Load())
	fmt.Fprintf(w, "pocd_queue_depth %d\n", len(s.queue))
	fmt.Fprintf(w, "pocd_journal_seq %d\n", sn.Seq)
	fmt.Fprintf(w, "pocd_flows %d\n", sn.State.Flows)
	fmt.Fprintf(w, "pocd_epochs %d\n", sn.State.Epochs)
	fmt.Fprintf(w, "pocd_failed_links %d\n", len(sn.State.FailedLinks))
	fmt.Fprintf(w, "pocd_rate_limit_tenants %d\n", s.limiter.Tenants())
}
