// Package server is pocd's control plane: a crash-recoverable,
// journaled single-writer service over one active POC.
//
// Every mutation funnels through one writer goroutine that owns the
// POC exclusively. The writer journals each op (length-prefixed,
// checksummed, fsynced) BEFORE applying it, so replaying the journal
// against a freshly built deployment reproduces the in-memory state —
// and the observability export — byte for byte. Reads either run on
// the writer (fresh, consistent) or, when the writer is saturated,
// degrade to the last published snapshot instead of queuing behind
// the backlog.
//
// The package never reads the wall clock (poclint's walltime analyzer
// enforces this for all of internal/): callers inject a clock via
// Config.Now, which keeps timeout decisions testable and keeps the
// replay path entirely clock-free.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/public-option/poc/internal/core"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/pocd/journal"
	"github.com/public-option/poc/internal/pocd/ratelimit"
)

// BuildFunc constructs a deployed POC (auctioned and activated) plus
// its obs registry from an opaque deployment spec. It must be
// deterministic in the spec: recovery rebuilds the deployment from
// the journal header's spec and replays ops on top, and the recovered
// state is only byte-identical if the build is.
type BuildFunc func(spec []byte) (*core.POC, *obs.Registry, error)

// Config assembles a Server.
type Config struct {
	// Spec is the opaque deployment spec journaled in the header
	// record. When recovering an existing journal it may be nil (the
	// header's spec is used); if non-nil it must match the header.
	Spec []byte
	// Build turns a spec into an activated POC. Required.
	Build BuildFunc
	// JournalPath is the write-ahead journal file. Required.
	JournalPath string
	// NoFsync skips the fsync after each record (tests, throwaway runs).
	NoFsync bool
	// Now is the injected clock. Required (cmd/pocd passes time.Now).
	Now func() time.Time
	// QueueDepth bounds the writer queue; beyond it mutations shed
	// with 503 and reads degrade to snapshots. Default 64.
	QueueDepth int
	// RequestTimeout bounds how stale a queued request may be when the
	// writer dequeues it. The deadline is stamped at enqueue and
	// checked BEFORE journaling: a request either times out whole or
	// applies whole, never mid-apply. Default 2s.
	RequestTimeout time.Duration
	// RateLimit is the per-tenant admission limiter (zero Rate = off).
	RateLimit ratelimit.Config

	// applyGate, when set, is called on the writer goroutine before
	// each apply — tests use it to hold the writer mid-queue.
	applyGate func(*Op)
}

// Snapshot is the degraded-read unit: the state view and obs export
// as of one applied journal sequence.
type Snapshot struct {
	Seq   uint64        `json:"seq"`
	State core.Snapshot `json:"state"`

	obsExport []byte
}

// ObsExport returns the poc-obs/v1 export bytes captured with this
// snapshot.
func (s *Snapshot) ObsExport() []byte { return s.obsExport }

type reply struct {
	val    any
	err    error
	seq    uint64
	status int // suggested HTTP status when err != nil
}

type request struct {
	op       *Op                       // mutation (nil for reads)
	read     func(*state) (any, error) // read closure (nil for mutations)
	deadline time.Time                 // zero = no deadline
	reply    chan reply
}

// errTimeout marks a request that expired in the queue before the
// writer reached it; the op was NOT journaled and NOT applied.
var errTimeout = errors.New("request deadline exceeded before apply")

// errShed marks a request refused because the writer queue was full.
var errShed = errors.New("writer queue full")

// errClosed marks a request refused because the server is draining.
var errClosed = errors.New("server shutting down")

// Server is the pocd control plane over one deployment.
type Server struct {
	cfg     Config
	jw      *journal.Writer //lint:owner New
	st      *state          //lint:owner New
	limiter *ratelimit.Limiter

	queue      chan *request
	writerDone chan struct{}

	mu     sync.RWMutex // guards closed + enqueue vs close(queue)
	closed bool         //lint:owner Shutdown

	ready atomic.Bool
	snap  atomic.Pointer[Snapshot]

	// recovered is non-nil when New resumed an existing journal.
	recovered *journal.ReplayResult

	// Daemon-local metrics. These live OUTSIDE the journaled POC obs
	// registry on purpose: HTTP traffic accounting must not perturb
	// the replay-equality invariant of the obs export.
	mRequests    atomic.Int64
	mRateLimited atomic.Int64
	mShed        atomic.Int64
	mTimeouts    atomic.Int64
	mDegraded    atomic.Int64
	mApplied     atomic.Int64
	mApplyErrors atomic.Int64
}

// New builds or recovers a server. If JournalPath exists the journal
// is replayed (torn tail truncated) and the deployment rebuilt from
// the header spec; otherwise a fresh journal is created from
// cfg.Spec. The writer goroutine is running when New returns.
func New(cfg Config) (*Server, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("pocd: Config.Build required")
	}
	if cfg.JournalPath == "" {
		return nil, fmt.Errorf("pocd: Config.JournalPath required")
	}
	if cfg.Now == nil {
		return nil, fmt.Errorf("pocd: Config.Now required (inject time.Now)")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	s := &Server{
		cfg:        cfg,
		limiter:    ratelimit.New(cfg.RateLimit),
		queue:      make(chan *request, cfg.QueueDepth),
		writerDone: make(chan struct{}),
	}

	fsync := !cfg.NoFsync
	if _, err := os.Stat(cfg.JournalPath); err == nil {
		// Recover: read the header spec first, build the deployment,
		// then resume (replaying ops and truncating any torn tail).
		probe, err := journal.Replay(cfg.JournalPath, nil)
		if err != nil {
			return nil, fmt.Errorf("pocd: probe journal: %w", err)
		}
		if cfg.Spec != nil && string(cfg.Spec) != string(probe.Spec) {
			return nil, fmt.Errorf("pocd: journal %s was recorded under a different deployment spec", cfg.JournalPath)
		}
		p, reg, err := cfg.Build(probe.Spec)
		if err != nil {
			return nil, fmt.Errorf("pocd: rebuild deployment: %w", err)
		}
		s.st = &state{poc: p, reg: reg}
		jw, res, err := journal.Resume(cfg.JournalPath, fsync, func(seq uint64, payload []byte) error {
			var op Op
			if err := json.Unmarshal(payload, &op); err != nil {
				return fmt.Errorf("op %d: %w", seq, err)
			}
			// Apply errors were journaled as ops too; they fail the
			// same deterministic way here and are not replay errors.
			s.st.apply(&op)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("pocd: resume journal: %w", err)
		}
		s.jw, s.recovered = jw, res
		s.mApplied.Store(int64(res.Ops))
	} else {
		p, reg, err := cfg.Build(cfg.Spec)
		if err != nil {
			return nil, fmt.Errorf("pocd: build deployment: %w", err)
		}
		s.st = &state{poc: p, reg: reg}
		jw, err := journal.Create(cfg.JournalPath, cfg.Spec, fsync)
		if err != nil {
			return nil, fmt.Errorf("pocd: create journal: %w", err)
		}
		s.jw = jw
	}

	if err := s.publish(); err != nil {
		s.jw.Close()
		return nil, err
	}
	s.ready.Store(true)
	go s.writer() //lint:allow deepfold the one writer goroutine; its folds are ordered by the journaled queue, not completion order
	return s, nil
}

// Recovered reports the replay result when New resumed an existing
// journal, nil for a fresh start.
func (s *Server) Recovered() *journal.ReplayResult { return s.recovered }

// Seq returns the last journaled sequence number.
func (s *Server) Seq() uint64 { return s.jw.Seq() }

// publish captures the current state as the degraded-read snapshot.
// Runs on the writer goroutine (or in New before the writer starts).
func (s *Server) publish() error {
	export, err := s.st.reg.ExportJSON()
	if err != nil {
		return fmt.Errorf("pocd: obs export: %w", err)
	}
	s.snap.Store(&Snapshot{
		Seq:       s.jw.Seq(),
		State:     s.st.poc.Snapshot(),
		obsExport: export,
	})
	return nil
}

// writer is the single goroutine that owns the POC. It drains the
// queue until Shutdown closes it, then exits; queued requests are
// always answered, never dropped.
func (s *Server) writer() {
	defer close(s.writerDone)
	for req := range s.queue {
		s.handle(req) //lint:allow deepfold receive order is journaled before each apply; replay reproduces it exactly
	}
}

func (s *Server) handle(req *request) {
	// Timeout decision happens HERE, before journaling. A request
	// that sat in the queue past its deadline dies whole; once an op
	// is journaled it is always applied. Replay therefore never sees
	// a half-decided op.
	if !req.deadline.IsZero() && s.cfg.Now().After(req.deadline) {
		s.mTimeouts.Add(1)
		req.reply <- reply{err: errTimeout, status: 503}
		return
	}
	if req.read != nil {
		val, err := req.read(s.st)
		status := 0
		if err != nil {
			status = 404
		}
		req.reply <- reply{val: val, err: err, seq: s.jw.Seq(), status: status}
		return
	}

	if s.cfg.applyGate != nil {
		s.cfg.applyGate(req.op)
	}
	// Marshal AFTER the gate: the journal must carry exactly the op
	// that apply sees. A gate that rewrites the op would otherwise
	// journal the pre-rewrite bytes, and replay would rebuild a
	// different state than the live daemon held.
	payload, err := json.Marshal(req.op)
	if err != nil {
		req.reply <- reply{err: err, status: 500}
		return
	}
	seq, err := s.jw.Append(payload)
	if err != nil {
		// The journal is broken: applying now would diverge the
		// durable record from memory. Refuse the mutation.
		req.reply <- reply{err: fmt.Errorf("journal append: %w", err), status: 503}
		return
	}
	val, applyErr := s.st.apply(req.op)
	s.mApplied.Add(1)
	if applyErr != nil {
		s.mApplyErrors.Add(1)
	}
	// Publish even after an apply error — the op may have partially
	// acted (per-entry admissions) and the obs registry moved.
	if err := s.publish(); err != nil {
		req.reply <- reply{err: err, seq: seq, status: 500}
		return
	}
	status := 0
	if applyErr != nil {
		status = 422
	}
	req.reply <- reply{val: val, err: applyErr, seq: seq, status: status}
}

// enqueue hands a request to the writer, or fails fast with errShed
// (queue full) / errClosed (draining). The RLock pairs with
// Shutdown's Lock: once Shutdown closes the queue no enqueuer can be
// mid-send.
func (s *Server) enqueue(req *request) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errClosed
	}
	select {
	case s.queue <- req:
		return nil
	default:
		return errShed
	}
}

// do runs one request through the writer and waits for its reply.
func (s *Server) do(op *Op, read func(*state) (any, error)) reply {
	req := &request{
		op:       op,
		read:     read,
		deadline: s.cfg.Now().Add(s.cfg.RequestTimeout),
		reply:    make(chan reply, 1),
	}
	if err := s.enqueue(req); err != nil {
		if err == errShed {
			s.mShed.Add(1)
		}
		return reply{err: err, status: 503}
	}
	return <-req.reply
}

// degradedSnapshot returns the last published snapshot for a read
// that could not reach the writer.
func (s *Server) degradedSnapshot() *Snapshot {
	s.mDegraded.Add(1)
	return s.snap.Load()
}

// ReplayFile rebuilds the deployment a journal describes and replays
// its surviving ops sequentially, without starting a daemon. It
// returns the replay result and the resulting obs export — the
// ground truth `pocd -replay` and the CI smoke job compare a live
// daemon's export against.
func ReplayFile(path string, build BuildFunc) (*journal.ReplayResult, []byte, error) {
	probe, err := journal.Replay(path, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("pocd: probe journal: %w", err)
	}
	p, reg, err := build(probe.Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("pocd: rebuild deployment: %w", err)
	}
	st := &state{poc: p, reg: reg}
	res, err := journal.Replay(path, func(seq uint64, payload []byte) error {
		var op Op
		if err := json.Unmarshal(payload, &op); err != nil {
			return fmt.Errorf("op %d: %w", seq, err)
		}
		st.apply(&op)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	export, err := st.reg.ExportJSON()
	if err != nil {
		return nil, nil, err
	}
	return res, export, nil
}

// BeginDrain flips /readyz to 503 so load balancers stop sending
// traffic while the HTTP server drains in-flight requests.
func (s *Server) BeginDrain() { s.ready.Store(false) }

// Shutdown drains the writer queue, applies and journals everything
// already admitted, then seals and closes the journal. After
// Shutdown, mutations and writer reads fail with errClosed (degraded
// reads keep working off the last snapshot). Safe to call once.
func (s *Server) Shutdown() error {
	s.BeginDrain()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.writerDone
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	<-s.writerDone
	// The writer has exited; the journal is single-owned again. Seal
	// marks a clean shutdown — recovery distinguishes "sealed" from
	// "crashed" and CI asserts on it.
	return s.jw.Seal()
}
