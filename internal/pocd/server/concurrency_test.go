package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/public-option/poc/internal/core"
	"github.com/public-option/poc/internal/pocd/journal"
)

// TestConcurrentClientsMatchSequentialReplay hammers the daemon with
// concurrent clients issuing a mix of admissions, releases, queries,
// billing, and chaos, then checks the core invariant: however the
// HTTP layer interleaved them, the journal records ONE serial history,
// and replaying that history sequentially into a fresh deployment
// reproduces the live server's obs export byte for byte. Run under
// -race this also polices the single-writer ownership discipline.
func TestConcurrentClientsMatchSequentialReplay(t *testing.T) {
	s, _, path := newTestServer(t, func(cfg *Config) {
		cfg.QueueDepth = 256 // don't shed: every mutation must land
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed members so flows have endpoints to ride on.
	for _, step := range script[:3] {
		if code, body := post(t, ts, step.path, step.body); code != 200 {
			t.Fatalf("seed %s: %d: %s", step.path, code, body)
		}
	}

	const clients = 8
	const rounds = 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (c + r) % 6 {
				case 0:
					code, body := post(t, ts, "/v1/flows",
						`{"flows":[{"src":"metro-lmp","dst":"cloud-csp","gbps":0.5}]}`)
					if code != 200 {
						t.Errorf("client %d: flows: %d: %s", c, code, body)
					}
				case 1:
					// May stop an already-stopped or never-admitted ID:
					// a legitimate no-op, journaled like everything else.
					post(t, ts, "/v1/flows/stop", fmt.Sprintf(`{"ids":[%d]}`, r))
				case 2:
					resp, _ := get(t, ts, "/v1/status")
					if resp.StatusCode != 200 {
						t.Errorf("client %d: status: %d", c, resp.StatusCode)
					}
				case 3:
					post(t, ts, "/v1/epoch", `{"seconds":60}`)
				case 4:
					kind := "cut-link"
					if r%2 == 1 {
						kind = "repair-link"
					}
					post(t, ts, "/v1/chaos", fmt.Sprintf(`{"kind":%q,"link":2}`, kind))
				case 5:
					// Duplicate publishes 422 after the first; apply
					// errors are journaled and must replay identically.
					post(t, ts, "/v1/qos",
						fmt.Sprintf(`{"name":"silver","weight":2,"price":1.5,"max_latency_km":2000}`))
					resp, _ := get(t, ts, "/v1/obs")
					if resp.StatusCode != 200 {
						t.Errorf("client %d: obs: %d", c, resp.StatusCode)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	liveExport := obsExport(t, ts)
	_, liveStatusBytes := get(t, ts, "/v1/status")
	ts.Close()
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Sequential ground truth: fresh deployment, replay the journal.
	p, reg, err := buildRing(nil)
	if err != nil {
		t.Fatal(err)
	}
	replayed := &state{poc: p, reg: reg}
	res, err := journal.Replay(path, func(seq uint64, payload []byte) error {
		var op Op
		if err := json.Unmarshal(payload, &op); err != nil {
			return err
		}
		replayed.apply(&op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sealed {
		t.Fatalf("journal not sealed after shutdown: %+v", res)
	}
	replayExport, err := replayed.reg.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveExport, replayExport) {
		t.Fatalf("concurrent obs export diverges from sequential replay of %d ops", res.Ops)
	}
	// The live status body wraps the snapshot in {"seq","result"};
	// decode both sides to the same struct and compare structurally.
	var wrapped struct {
		Result core.Snapshot `json:"result"`
	}
	if err := json.Unmarshal(liveStatusBytes, &wrapped); err != nil {
		t.Fatal(err)
	}
	// Compare canonical JSON: omitempty normalizes the nil-vs-empty
	// slice distinction DeepEqual would trip over.
	liveJSON, _ := json.Marshal(wrapped.Result)
	replayJSON, _ := json.Marshal(replayed.poc.Snapshot())
	if !bytes.Equal(liveJSON, replayJSON) {
		t.Fatalf("concurrent snapshot diverges from sequential replay:\n%s\nwant:\n%s",
			liveJSON, replayJSON)
	}
}
