package server

import (
	"fmt"

	"github.com/public-option/poc/internal/chaos"
	"github.com/public-option/poc/internal/core"
	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/peering"
)

// Op is one journaled mutation: the canonical unit of change in pocd.
// The HTTP layer decodes a request body into an Op, the single-writer
// loop marshals it back to canonical JSON for the journal (struct
// fields encode in declaration order, so the bytes are deterministic)
// and only then applies it. Replay decodes the same bytes into the
// same struct and calls the same apply — the whole crash-recovery
// argument rests on Op being the only way state changes.
//
// One struct covers every op kind; only the fields relevant to Kind
// are meaningful (mirroring chaos.Event). The zero value of every
// unused field is omitted from the journal encoding.
type Op struct {
	// Op selects the mutation:
	//   attach, start_flows, stop_flows, publish_qos, bill_epoch,
	//   chaos, recall, reauction
	Op string `json:"op"`

	// attach
	Name   string `json:"name,omitempty"`
	Kind   string `json:"kind,omitempty"` // "lmp" | "csp"; chaos event kind for op "chaos"
	Router int    `json:"router,omitempty"`

	// start_flows / stop_flows
	Flows []FlowReq `json:"flows,omitempty"`
	IDs   []int64   `json:"ids,omitempty"`

	// publish_qos
	Weight       float64 `json:"weight,omitempty"`
	Price        float64 `json:"price,omitempty"`
	MaxLatencyKm float64 `json:"max_latency_km,omitempty"`

	// bill_epoch
	Seconds float64 `json:"seconds,omitempty"`

	// chaos (Kind names the chaos.Event kind) / recall
	Link        int     `json:"link,omitempty"`
	BP          int     `json:"bp,omitempty"`
	Lat         float64 `json:"lat,omitempty"`
	Lon         float64 `json:"lon,omitempty"`
	RadiusKm    float64 `json:"radius_km,omitempty"`
	PenaltyRate float64 `json:"penalty_rate,omitempty"`
}

// FlowReq is one admission inside a start_flows op.
type FlowReq struct {
	Src   string  `json:"src"`
	Dst   string  `json:"dst"`
	Gbps  float64 `json:"gbps"`
	Class string  `json:"class,omitempty"` // "" = best-effort; else a published QoS class
}

// chaosKinds maps wire names to chaos event kinds.
var chaosKinds = map[string]chaos.Kind{
	"cut-link":          chaos.CutLink,
	"repair-link":       chaos.RepairLink,
	"cut-bp":            chaos.CutBP,
	"repair-bp":         chaos.RepairBP,
	"correlated-cut":    chaos.Correlated,
	"correlated-repair": chaos.RepairCorrelated,
}

// validate rejects malformed ops before they reach the writer queue —
// a 400 must never consume journal space or a sequence number.
func (o *Op) validate() error {
	switch o.Op {
	case "attach":
		if o.Name == "" {
			return fmt.Errorf("attach: name required")
		}
		if o.Kind != "lmp" && o.Kind != "csp" {
			return fmt.Errorf("attach: kind must be lmp or csp")
		}
		if o.Router < 0 {
			return fmt.Errorf("attach: negative router")
		}
	case "start_flows":
		if len(o.Flows) == 0 {
			return fmt.Errorf("start_flows: no flows")
		}
		for i, f := range o.Flows {
			if f.Src == "" || f.Dst == "" {
				return fmt.Errorf("start_flows: flow %d needs src and dst", i)
			}
			if f.Gbps <= 0 {
				return fmt.Errorf("start_flows: flow %d needs positive gbps", i)
			}
		}
	case "stop_flows":
		if len(o.IDs) == 0 {
			return fmt.Errorf("stop_flows: no ids")
		}
	case "publish_qos":
		if o.Name == "" {
			return fmt.Errorf("publish_qos: name required")
		}
	case "bill_epoch":
		if o.Seconds <= 0 {
			return fmt.Errorf("bill_epoch: seconds must be positive")
		}
	case "chaos":
		if _, ok := chaosKinds[o.Kind]; !ok {
			return fmt.Errorf("chaos: unknown kind %q", o.Kind)
		}
	case "recall":
		if o.Link < 0 {
			return fmt.Errorf("recall: negative link")
		}
		if o.PenaltyRate < 0 {
			return fmt.Errorf("recall: negative penalty rate")
		}
	case "reauction":
		// no fields
	default:
		return fmt.Errorf("unknown op %q", o.Op)
	}
	return nil
}

// state is everything the single-writer loop owns: the POC and its
// observability registry. Nothing outside the writer goroutine may
// touch either after New returns.
type state struct {
	poc *core.POC
	reg *obs.Registry
}

// resolveClass maps a wire class name to a netsim class: empty or
// "best-effort" is the default class, anything else must be in the
// published catalog.
func (st *state) resolveClass(name string) (netsim.Class, bool) {
	if name == "" || name == netsim.BestEffort.Name {
		return netsim.BestEffort, true
	}
	for _, off := range st.poc.QoSCatalog() {
		if off.Class.Name == name {
			return off.Class, true
		}
	}
	return netsim.Class{}, false
}

// apply executes one validated op against the state. It runs only on
// the writer goroutine, strictly after the op was journaled. Errors
// are deterministic outcomes (the same op against the same state
// fails the same way on replay), never partial applications of a
// different op.
func (st *state) apply(o *Op) (any, error) {
	switch o.Op {
	case "attach":
		var (
			id  netsim.EndpointID
			err error
		)
		if o.Kind == "lmp" {
			id, err = st.poc.AttachLMP(o.Name, o.Router, peering.Policy{})
		} else {
			id, err = st.poc.AttachCSP(o.Name, o.Router)
		}
		if err != nil {
			return nil, err
		}
		return map[string]any{"endpoint": int(id)}, nil
	case "start_flows":
		reqs := make([]core.FlowRequest, len(o.Flows))
		ok := make([]bool, len(o.Flows))
		for i, f := range o.Flows {
			class, found := st.resolveClass(f.Class)
			if !found {
				// Unknown class degrades to a per-entry rejection
				// (id -1), matching StartFlows' per-entry semantics.
				continue
			}
			ok[i] = true
			reqs[i] = core.FlowRequest{Src: f.Src, Dst: f.Dst, Gbps: f.Gbps, Class: class}
		}
		ids, err := st.poc.StartFlows(reqs)
		if err != nil {
			return nil, err
		}
		out := make([]int64, len(ids))
		for i, id := range ids {
			if !ok[i] {
				out[i] = -1
				continue
			}
			out[i] = int64(id)
		}
		return map[string]any{"ids": out}, nil
	case "stop_flows":
		ids := make([]netsim.FlowID, len(o.IDs))
		for i, id := range o.IDs {
			ids[i] = netsim.FlowID(id)
		}
		return map[string]any{"stopped": st.poc.StopFlows(ids)}, nil
	case "publish_qos":
		class := netsim.Class{Name: o.Name, Weight: o.Weight, Price: o.Price}
		if err := st.poc.PublishQoS(class, o.MaxLatencyKm); err != nil {
			return nil, err
		}
		return map[string]any{"published": o.Name}, nil
	case "bill_epoch":
		rep, err := st.poc.BillEpoch(o.Seconds)
		if err != nil {
			return nil, err
		}
		return rep, nil
	case "chaos":
		ev := chaos.Event{
			Kind: chaosKinds[o.Kind], Link: o.Link, BP: o.BP,
			Lat: o.Lat, Lon: o.Lon, RadiusKm: o.RadiusKm,
		}
		acted, moved, err := chaos.Inject(st.poc, ev)
		if err != nil {
			return nil, err
		}
		return map[string]any{"acted_links": acted, "moved_flows": len(moved)}, nil
	case "recall":
		rep, err := st.poc.RecallLink(o.Link, o.PenaltyRate)
		if err != nil {
			return nil, err
		}
		return rep, nil
	case "reauction":
		rep, err := st.poc.Reauction(st.poc.TrafficMatrix())
		if err != nil {
			return nil, err
		}
		return rep, nil
	}
	return nil, fmt.Errorf("unknown op %q", o.Op)
}
