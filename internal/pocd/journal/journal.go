// Package journal is pocd's write-ahead log. Every mutation the
// daemon admits is appended here — length-prefixed, checksummed and
// sequence-numbered — *before* it is applied to the in-memory POC, so
// that replaying the journal through the same deterministic apply
// function reproduces the daemon's state byte for byte after a crash.
//
// The format is a magic line followed by framed records:
//
//	file   = magic ∥ record*
//	magic  = "pocjournal/v1\n"
//	record = len(u32) ∥ kind(u8) ∥ seq(u64) ∥ crc(u32) ∥ payload
//
// All integers are little-endian. len is the payload length alone;
// crc is CRC-32 (IEEE) over kind ∥ seq ∥ payload, so a corrupted
// header is caught even when the payload bytes survive. Record 0 is
// the header (kind 1) carrying the opaque deployment spec; ops are
// kind 2 with seq 1,2,…; a seal (kind 3, empty payload) marks a clean
// shutdown and may appear mid-stream when a sealed journal is resumed.
//
// Torn-tail semantics: a reader stops at the first record it cannot
// fully validate — short header, short payload, absurd length, CRC
// mismatch or a sequence break — and reports the byte offset of the
// last valid record boundary. Everything before that offset is a
// well-formed prefix; everything after is dropped, never half-applied.
// Resume truncates the file to that boundary before appending, so one
// torn write can never poison later records.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Magic is the file signature; it doubles as a format version.
const Magic = "pocjournal/v1\n"

// Record kinds.
const (
	// KindHeader is record 0: the opaque deployment spec.
	KindHeader = byte(1)
	// KindOp is one journaled mutation payload.
	KindOp = byte(2)
	// KindSeal marks a clean shutdown (empty payload).
	KindSeal = byte(3)
)

// headerSize is the fixed frame prefix: len(4) + kind(1) + seq(8) + crc(4).
const headerSize = 4 + 1 + 8 + 4

// MaxPayload bounds a single record; a length beyond it is treated as
// tail corruption, not an allocation request.
const MaxPayload = 1 << 26

// Writer appends records to a journal file.
type Writer struct {
	f     *os.File
	seq   uint64 // last sequence written
	fsync bool
	buf   []byte
	seal  bool // sealed and closed
}

// Create writes a fresh journal at path: the magic plus the header
// record carrying spec. With fsync set, every append is synced to
// stable storage before Append returns.
func Create(path string, spec []byte, fsync bool) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, fsync: fsync}
	if _, err := f.WriteString(Magic); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.append(KindHeader, 0, spec); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Seq returns the last sequence number written.
func (w *Writer) Seq() uint64 { return w.seq }

// Append journals one op payload and returns its sequence number.
// When the writer was created with fsync, the record is on stable
// storage by the time Append returns — the caller may then apply the
// op knowing a crash cannot lose the record while keeping the effect.
func (w *Writer) Append(payload []byte) (uint64, error) {
	if w.seal {
		return 0, fmt.Errorf("journal: append to sealed journal")
	}
	seq := w.seq + 1
	if err := w.append(KindOp, seq, payload); err != nil {
		return 0, err
	}
	return seq, nil
}

// append frames and writes one record, updating w.seq on success.
func (w *Writer) append(kind byte, seq uint64, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("journal: payload %d bytes exceeds max %d", len(payload), MaxPayload)
	}
	w.buf = appendRecord(w.buf[:0], kind, seq, payload)
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	w.seq = seq
	return nil
}

// appendRecord frames one record into buf.
func appendRecord(buf []byte, kind byte, seq uint64, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	crc := crc32.NewIEEE()
	crc.Write([]byte{kind})
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	crc.Write(seqb[:])
	crc.Write(payload)
	buf = binary.LittleEndian.AppendUint32(buf, crc.Sum32())
	return append(buf, payload...)
}

// Seal appends the clean-shutdown marker, syncs and closes the file.
// A sealed journal replays identically to an unsealed one; the marker
// only records that the writer exited in good order.
func (w *Writer) Seal() error {
	if w.seal {
		return nil
	}
	if err := w.append(KindSeal, w.seq+1, nil); err != nil {
		return err
	}
	w.seal = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("journal: seal sync: %w", err)
	}
	return w.f.Close()
}

// Close syncs and closes without sealing (the journal will replay as
// a crash, which is always safe — Seal is strictly an upgrade).
func (w *Writer) Close() error {
	if w.seal {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReplayResult describes what a read pass found.
type ReplayResult struct {
	// Spec is the header record's payload (the deployment spec).
	Spec []byte
	// Ops is the number of op records replayed.
	Ops int
	// LastSeq is the sequence of the last valid record (0 = header only).
	LastSeq uint64
	// Sealed reports whether the last valid record is a seal marker.
	Sealed bool
	// ValidLen is the byte offset of the end of the last valid
	// record — the well-formed prefix length.
	ValidLen int64
	// TornBytes is how many trailing bytes failed validation and were
	// dropped (0 for a clean journal).
	TornBytes int64
}

// Replay reads the journal at path, invoking fn for every op record
// in sequence order. A torn or corrupt tail is not an error: reading
// stops at the last valid boundary and the result reports the drop.
// fn errors abort the replay and are returned as-is.
func Replay(path string, fn func(seq uint64, payload []byte) error) (*ReplayResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return replayBytes(data, fn)
}

// replayBytes is Replay over an in-memory image.
func replayBytes(data []byte, fn func(seq uint64, payload []byte) error) (*ReplayResult, error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("journal: bad magic (not a pocjournal/v1 file)")
	}
	res := &ReplayResult{ValidLen: int64(len(Magic))}
	off := len(Magic)
	wantSeq := uint64(0) // header first
	sawHeader := false
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break // clean end
		}
		if len(rest) < headerSize {
			break // torn frame prefix
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		kind := rest[4]
		seq := binary.LittleEndian.Uint64(rest[5:13])
		crc := binary.LittleEndian.Uint32(rest[13:17])
		if plen > MaxPayload {
			break // corrupt length
		}
		end := headerSize + int(plen)
		if len(rest) < end {
			break // torn payload
		}
		payload := rest[headerSize:end]
		h := crc32.NewIEEE()
		h.Write(rest[4:13]) // kind ∥ seq
		h.Write(payload)
		if h.Sum32() != crc {
			break // bit rot or torn overwrite
		}
		if !sawHeader {
			if kind != KindHeader || seq != 0 {
				return nil, fmt.Errorf("journal: first record is not the header")
			}
			res.Spec = append([]byte(nil), payload...)
			sawHeader = true
		} else {
			if seq != wantSeq+1 {
				break // sequence break: records lost or reordered
			}
			switch kind {
			case KindOp:
				if fn != nil {
					if err := fn(seq, payload); err != nil {
						return nil, err
					}
				}
				res.Ops++
				res.Sealed = false
			case KindSeal:
				res.Sealed = true
			default:
				return nil, fmt.Errorf("journal: unknown record kind %d at seq %d", kind, seq)
			}
			wantSeq = seq
		}
		off += end
		res.LastSeq = wantSeq
		res.ValidLen = int64(off)
	}
	if !sawHeader {
		return nil, fmt.Errorf("journal: no valid header record")
	}
	res.TornBytes = int64(len(data)) - res.ValidLen
	return res, nil
}

// Resume replays an existing journal (see Replay), truncates any torn
// tail so the file is exactly its valid prefix, and reopens it for
// appending with the sequence counter continuing where the last valid
// record left off.
func Resume(path string, fsync bool, fn func(seq uint64, payload []byte) error) (*Writer, *ReplayResult, error) {
	res, err := Replay(path, fn)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if res.TornBytes > 0 {
		if err := f.Truncate(res.ValidLen); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(res.ValidLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Writer{f: f, fsync: fsync, seq: res.LastSeq}, res, nil
}
