package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeSession journals n ops ("op-0".."op-n-1") and returns the path.
func writeSession(t *testing.T, n int, seal bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "poc.journal")
	w, err := Create(path, []byte(`{"spec":"test"}`), false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("op-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if seal {
		if err := w.Seal(); err != nil {
			t.Fatal(err)
		}
	} else if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// replayOps returns the op payloads a replay of data yields, plus the
// result.
func replayOps(t *testing.T, data []byte) ([]string, *ReplayResult) {
	t.Helper()
	var ops []string
	res, err := replayBytes(data, func(seq uint64, payload []byte) error {
		ops = append(ops, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return ops, res
}

func TestRoundTrip(t *testing.T) {
	path := writeSession(t, 5, true)
	ops, res := replayOps(t, readFile(t, path))
	if len(ops) != 5 || !res.Sealed || res.TornBytes != 0 {
		t.Fatalf("ops=%d sealed=%v torn=%d", len(ops), res.Sealed, res.TornBytes)
	}
	if string(res.Spec) != `{"spec":"test"}` {
		t.Fatalf("spec %q", res.Spec)
	}
	for i, op := range ops {
		if op != fmt.Sprintf("op-%d", i) {
			t.Fatalf("op %d = %q", i, op)
		}
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTruncationEveryByte is the journal-layer crash property: for a
// journal truncated at EVERY byte length, replay must recover exactly
// the ops whose records end at or before the cut — a well-formed
// prefix, monotone in the cut point, with the torn tail dropped and
// never a half-applied record.
func TestTruncationEveryByte(t *testing.T) {
	path := writeSession(t, 8, true)
	full := readFile(t, path)
	fullOps, fullRes := replayOps(t, full)
	if !fullRes.Sealed {
		t.Fatal("full journal not sealed")
	}

	prevOps := 0
	for cut := int64(len(Magic)); cut <= int64(len(full)); cut++ {
		// A cut inside record 0 leaves no valid header: that is a
		// hard "unrecoverable journal" error, not a torn tail.
		if cut < fullRes.ValidLen {
			if _, err := replayBytes(full[:cut], nil); err != nil {
				if cut >= headerEnd(t, full) {
					t.Fatalf("cut %d past the header errored: %v", cut, err)
				}
				continue
			}
		}
		ops, res := replayOps(t, full[:cut])
		if res.TornBytes != cut-res.ValidLen {
			t.Fatalf("cut %d: torn %d != %d", cut, res.TornBytes, cut-res.ValidLen)
		}
		// Prefix property: recovered ops are exactly the first k full ops.
		for i, op := range ops {
			if op != fullOps[i] {
				t.Fatalf("cut %d: op %d = %q, want %q", cut, i, op, fullOps[i])
			}
		}
		// Monotone: growing the cut never loses ops.
		if prevOps > len(ops) {
			t.Fatalf("cut %d: ops went backwards (%d -> %d)", cut, prevOps, len(ops))
		}
		prevOps = len(ops)
		// Sealed only when the seal record survives whole.
		if res.Sealed && cut != int64(len(full)) {
			t.Fatalf("cut %d: truncated journal reports sealed", cut)
		}
	}
}

// TestBitFlipDropsTail: corrupting any single byte of a record drops
// that record and everything after it, but never the records before.
// headerEnd returns the byte offset just past the header record.
func headerEnd(t *testing.T, full []byte) int64 {
	t.Helper()
	res, err := replayBytes(full, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	plen := int64(len(res.Spec))
	return int64(len(Magic)) + headerSize + plen
}

func TestBitFlipDropsTail(t *testing.T) {
	path := writeSession(t, 6, false)
	full := readFile(t, path)
	fullOps, _ := replayOps(t, full)
	for pos := len(Magic); pos < len(full); pos += 7 {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x40
		var ops []string
		res, err := replayBytes(mut, func(_ uint64, p []byte) error {
			ops = append(ops, string(p))
			return nil
		})
		if err != nil {
			// Header-record corruption is a hard error; acceptable.
			continue
		}
		if res.TornBytes == 0 && len(ops) != len(fullOps) {
			t.Fatalf("pos %d: silent corruption (%d ops, no torn bytes)", pos, len(ops))
		}
		for i, op := range ops {
			if op != fullOps[i] {
				t.Fatalf("pos %d: op %d changed to %q", pos, i, op)
			}
		}
	}
}

func TestResumeTruncatesTornTail(t *testing.T) {
	path := writeSession(t, 4, false)
	full := readFile(t, path)
	// Simulate a torn final write: chop 3 bytes off the last record.
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var ops []string
	w, res, err := Resume(path, false, func(_ uint64, p []byte) error {
		ops = append(ops, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 || res.TornBytes == 0 {
		t.Fatalf("ops=%d torn=%d", len(ops), res.TornBytes)
	}
	// The file is now exactly the valid prefix; appends continue the
	// sequence and replay cleanly.
	if seq, err := w.Append([]byte("op-after-crash")); err != nil || seq != res.LastSeq+1 {
		t.Fatalf("append after resume: seq=%d err=%v", seq, err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	ops = nil
	res2, err := Replay(path, func(_ uint64, p []byte) error {
		ops = append(ops, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.TornBytes != 0 || !res2.Sealed || len(ops) != 4 || ops[3] != "op-after-crash" {
		t.Fatalf("after resume: torn=%d sealed=%v ops=%v", res2.TornBytes, res2.Sealed, ops)
	}
}

func TestResumeAfterSealAppendsMidStreamSeal(t *testing.T) {
	path := writeSession(t, 2, true)
	w, res, err := Resume(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sealed {
		t.Fatal("sealed journal not detected")
	}
	if _, err := w.Append([]byte("post-seal")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ops, res2 := replayOps(t, readFile(t, path))
	if res2.Sealed {
		t.Fatal("mid-stream seal must not mark the resumed journal sealed")
	}
	if len(ops) != 3 || ops[2] != "post-seal" {
		t.Fatalf("ops=%v", ops)
	}
}

func TestSealedWriterRejectsAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("x")); err == nil {
		t.Fatal("append after seal accepted")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := replayBytes([]byte("not a journal"), nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := replayBytes(bytes.Repeat([]byte{0}, 100), nil); err == nil {
		t.Fatal("zero file accepted")
	}
}
