package linkset

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestMapRoundTrip is the migration property test: any map[int]bool
// round-trips through FromMap/ToMap unchanged, and membership agrees
// ID by ID. Seeded PRNG per DESIGN.md §6.
func TestMapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + rng.Intn(300)
		m := map[int]bool{}
		for i := 0; i < rng.Intn(universe+1); i++ {
			m[rng.Intn(universe)] = true
		}
		s := FromMap(m, universe)
		if got := s.ToMap(); !reflect.DeepEqual(got, m) {
			t.Fatalf("trial %d: round trip %v != %v", trial, got, m)
		}
		if s.Len() != len(m) {
			t.Fatalf("trial %d: Len %d != %d", trial, s.Len(), len(m))
		}
		for id := 0; id < universe; id++ {
			if s.Contains(id) != m[id] {
				t.Fatalf("trial %d: Contains(%d)=%v map=%v", trial, id, s.Contains(id), m[id])
			}
		}
	}
	if FromMap(nil, 10) != nil {
		t.Fatal("FromMap(nil) must preserve the nil-means-all sentinel")
	}
	if (*Set)(nil).ToMap() != nil {
		t.Fatal("nil.ToMap() must be nil")
	}
}

// TestIterateOrder pins ascending-ID iteration — the determinism
// contract every float fold over a Set relies on.
func TestIterateOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		universe := 1 + rng.Intn(500)
		s := New(universe)
		want := map[int]bool{}
		for i := 0; i < rng.Intn(universe+1); i++ {
			id := rng.Intn(universe)
			s.Add(id)
			want[id] = true
		}
		var ids []int
		s.Iterate(func(id int) { ids = append(ids, id) })
		if !sort.IntsAreSorted(ids) {
			t.Fatalf("trial %d: iterate order not ascending: %v", trial, ids)
		}
		if len(ids) != len(want) {
			t.Fatalf("trial %d: iterated %d ids, want %d", trial, len(ids), len(want))
		}
		for _, id := range ids {
			if !want[id] {
				t.Fatalf("trial %d: iterated stray id %d", trial, id)
			}
		}
		if got := s.AppendIDs(nil); !reflect.DeepEqual(got, ids) {
			t.Fatalf("trial %d: AppendIDs %v != Iterate %v", trial, got, ids)
		}
	}
}

// TestKeyStability: logically equal sets — however they were built,
// whatever their capacity — must produce identical keys, and unequal
// sets must not collide on the same universe.
func TestKeyStability(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + rng.Intn(400)
		var ids []int
		for i := 0; i < rng.Intn(universe+1); i++ {
			ids = append(ids, rng.Intn(universe))
		}
		a := FromIDs(ids, universe)
		// Same members, different construction order and capacity.
		b := New(universe + 64*rng.Intn(4))
		for i := len(ids) - 1; i >= 0; i-- {
			b.Add(ids[i])
		}
		ka := a.AppendKey(nil)
		kb := b.AppendKey(nil)
		if !bytes.Equal(ka, kb) {
			t.Fatalf("trial %d: equal sets, different keys %x vs %x", trial, ka, kb)
		}
		if len(ids) > 0 {
			c := a.Clone()
			c.Remove(ids[0])
			if a.Contains(ids[0]) && bytes.Equal(a.AppendKey(nil), c.AppendKey(nil)) {
				t.Fatalf("trial %d: distinct sets share a key", trial)
			}
		}
	}
	// Add-then-remove leaves trailing zero words; key must not change.
	s := FromIDs([]int{1, 2, 3}, 4)
	u := FromIDs([]int{1, 2, 3}, 4)
	u.Add(1000)
	u.Remove(1000)
	if !bytes.Equal(s.AppendKey(nil), u.AppendKey(nil)) {
		t.Fatal("trailing zero words changed the key")
	}
	if !s.Equal(u) {
		t.Fatal("trailing zero words broke Equal")
	}
}

func TestSetOps(t *testing.T) {
	a := FromIDs([]int{0, 5, 63, 64, 200}, 256)
	b := FromIDs([]int{5, 64, 128}, 256)
	u := a.Clone()
	u.Union(b)
	if got := u.AppendIDs(nil); !reflect.DeepEqual(got, []int{0, 5, 63, 64, 128, 200}) {
		t.Fatalf("union = %v", got)
	}
	d := a.Clone()
	d.Subtract(b)
	if got := d.AppendIDs(nil); !reflect.DeepEqual(got, []int{0, 63, 200}) {
		t.Fatalf("subtract = %v", got)
	}
	if a.Len() != 5 || a.Empty() {
		t.Fatalf("len/empty wrong: %d %v", a.Len(), a.Empty())
	}
	if !New(10).Empty() || !(*Set)(nil).Empty() {
		t.Fatal("empty sets not empty")
	}
	all := All(130)
	if all.Len() != 130 || !all.Contains(129) || all.Contains(130) {
		t.Fatalf("All(130) wrong: len=%d", all.Len())
	}
	if (*Set)(nil).Clone() != nil {
		t.Fatal("nil.Clone() must stay nil")
	}
	// Union growing the receiver.
	g := FromIDs([]int{1}, 2)
	g.Union(FromIDs([]int{700}, 701))
	if !g.Contains(1) || !g.Contains(700) {
		t.Fatal("union did not grow receiver")
	}
	// Equal across nil/empty.
	if !(*Set)(nil).Equal(New(64)) || !New(1).Equal(nil) {
		t.Fatal("nil must equal empty")
	}
}
