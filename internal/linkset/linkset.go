// Package linkset provides a dense bitset over logical-link IDs.
//
// Logical links are numbered 0..L-1 by topo.POCNetwork, so a set of
// links packs into one machine word per 64 IDs. The auction's winner
// determination probes thousands of near-identical subsets of the
// offered links; representing each candidate as a Set makes clone,
// diff and cache-key derivation O(L/64) word operations instead of
// map churn plus a per-lookup sort.
//
// A nil *Set means "every link" wherever a set selects a subset of a
// known universe — the same convention the provisioner used for nil
// map[int]bool includes. Helpers that read sets (Contains, Len,
// Iterate, ...) treat a nil receiver as the empty set; callers that
// want nil-means-all resolve it against the universe first.
//
// Iteration order is always ascending link ID, which keeps every
// float accumulation folded over a Set deterministic (DESIGN.md §6).
package linkset

import "math/bits"

const wordBits = 64

// Set is a dense bitset of logical link IDs. The zero value is an
// empty set with no capacity; use New to size one to a universe.
type Set struct {
	words []uint64
}

// New returns an empty set sized for IDs in [0, universe).
func New(universe int) *Set {
	return &Set{words: make([]uint64, (universe+wordBits-1)/wordBits)}
}

// All returns the set {0, ..., universe-1}.
func All(universe int) *Set {
	s := New(universe)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if r := universe % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (uint64(1) << uint(r)) - 1
	}
	return s
}

// FromMap converts a map-shaped link set (ignoring false entries).
// A nil map converts to a nil Set, preserving nil-means-all.
func FromMap(m map[int]bool, universe int) *Set {
	if m == nil {
		return nil
	}
	s := New(universe)
	for id, ok := range m {
		if ok {
			s.Add(id)
		}
	}
	return s
}

// FromWords builds a set sized for universe from raw bitset words
// (little-endian word order, as returned by Words). Extra words beyond
// the universe are preserved; missing words are zero. The words are
// copied. The cache persistence layer uses this to reconstruct cores
// byte-identically across processes.
func FromWords(words []uint64, universe int) *Set {
	s := New(universe)
	if len(words) > len(s.words) {
		s.words = make([]uint64, len(words))
	}
	copy(s.words, words)
	return s
}

// FromIDs builds a set from explicit IDs.
func FromIDs(ids []int, universe int) *Set {
	s := New(universe)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// ToMap converts to the map shape used by public APIs. A nil set
// converts to nil.
func (s *Set) ToMap() map[int]bool {
	if s == nil {
		return nil
	}
	m := make(map[int]bool, s.Len())
	s.Iterate(func(id int) { m[id] = true })
	return m
}

// grow ensures the set can hold id.
func (s *Set) grow(id int) {
	if w := id / wordBits; w >= len(s.words) {
		words := make([]uint64, w+1)
		copy(words, s.words)
		s.words = words
	}
}

// Add inserts id into the set.
func (s *Set) Add(id int) {
	s.grow(id)
	s.words[id/wordBits] |= uint64(1) << uint(id%wordBits)
}

// Remove deletes id from the set.
func (s *Set) Remove(id int) {
	if w := id / wordBits; w < len(s.words) {
		s.words[w] &^= uint64(1) << uint(id%wordBits)
	}
}

// Contains reports whether id is in the set. A nil receiver is the
// empty set.
func (s *Set) Contains(id int) bool {
	if s == nil || id < 0 {
		return false
	}
	w := id / wordBits
	return w < len(s.words) && s.words[w]&(uint64(1)<<uint(id%wordBits)) != 0
}

// Len returns the number of IDs in the set (popcount).
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	if s == nil {
		return true
	}
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy. Cloning nil yields nil (the
// nil-means-all sentinel survives copying).
func (s *Set) Clone() *Set {
	if s == nil {
		return nil
	}
	return &Set{words: append([]uint64(nil), s.words...)}
}

// Union adds every member of t to s.
func (s *Set) Union(t *Set) {
	if t == nil {
		return
	}
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Subtract removes every member of t from s.
func (s *Set) Subtract(t *Set) {
	if s == nil || t == nil {
		return
	}
	for i, w := range t.words {
		if i >= len(s.words) {
			break
		}
		s.words[i] &^= w
	}
}

// Equal reports whether s and t contain the same IDs. Nil equals nil
// and equals the empty set.
func (s *Set) Equal(t *Set) bool {
	ls, lt := 0, 0
	if s != nil {
		ls = len(s.words)
	}
	if t != nil {
		lt = len(t.words)
	}
	n := ls
	if lt > n {
		n = lt
	}
	for i := 0; i < n; i++ {
		var ws, wt uint64
		if i < ls {
			ws = s.words[i]
		}
		if i < lt {
			wt = t.words[i]
		}
		if ws != wt {
			return false
		}
	}
	return true
}

// Iterate calls fn for each member in ascending ID order.
func (s *Set) Iterate(fn func(id int)) {
	if s == nil {
		return
	}
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendIDs appends the members in ascending order to dst and
// returns the extended slice.
func (s *Set) AppendIDs(dst []int) []int {
	s.Iterate(func(id int) { dst = append(dst, id) })
	return dst
}

// Words exposes the backing words (read-only by convention). A nil
// set has no words.
func (s *Set) Words() []uint64 {
	if s == nil {
		return nil
	}
	return s.words
}

// AppendKey appends a canonical byte encoding of the set to dst: the
// raw bitset words, little-endian, with trailing zero words trimmed
// so logically equal sets of different capacities encode identically.
// O(L/64) with no sorting — this is the feasibility-cache key path.
func (s *Set) AppendKey(dst []byte) []byte {
	words := s.Words()
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	for _, w := range words[:n] {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}
