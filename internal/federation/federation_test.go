package federation

import (
	"math"
	"testing"

	"github.com/public-option/poc/internal/netsim"
	"github.com/public-option/poc/internal/topo"
)

// lineFabric builds a 3-router line fabric (0-1-2, 10 Gbps, 100 km).
func lineFabric() *netsim.Fabric {
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 3)},
		BPs:     make([]topo.BP, 2),
		Routers: []int{0, 1, 2},
	}
	for i := 0; i < 2; i++ {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: i, BP: i, A: i, B: i + 1, Capacity: 10, DistanceKm: 100,
		})
	}
	return netsim.New(p, nil)
}

// twoPOCs builds a federation of two line POCs joined at router 2 of
// A and router 0 of B, with an LMP at each far end.
func twoPOCs(t *testing.T, gwCap float64) (*Federation, MemberID, MemberID, netsim.EndpointID, netsim.EndpointID) {
	t.Helper()
	fa, fb := lineFabric(), lineFabric()
	srcEp, err := fa.Attach("lmp-west", netsim.LMPEndpoint, 0)
	if err != nil {
		t.Fatal(err)
	}
	dstEp, err := fb.Attach("lmp-east", netsim.LMPEndpoint, 2)
	if err != nil {
		t.Fatal(err)
	}
	fed := New()
	a, err := fed.AddMember("poc-a", fa, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fed.AddMember("poc-b", fb, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Connect(a, 2, b, 0, gwCap); err != nil {
		t.Fatal(err)
	}
	return fed, a, b, srcEp, dstEp
}

func TestAddMemberRequiresAttestation(t *testing.T) {
	fed := New()
	if _, err := fed.AddMember("rogue", lineFabric(), false); err == nil {
		t.Fatal("unattested member admitted")
	}
	if _, err := fed.AddMember("", nil, true); err == nil {
		t.Fatal("nil fabric admitted")
	}
	if _, err := fed.AddMember("a", lineFabric(), true); err != nil {
		t.Fatal(err)
	}
	if _, err := fed.AddMember("a", lineFabric(), true); err == nil {
		t.Fatal("duplicate name admitted")
	}
}

func TestConnectValidation(t *testing.T) {
	fed := New()
	a, _ := fed.AddMember("a", lineFabric(), true)
	b, _ := fed.AddMember("b", lineFabric(), true)
	if _, err := fed.Connect(a, 0, a, 1, 5); err == nil {
		t.Fatal("self-gateway accepted")
	}
	if _, err := fed.Connect(a, 0, b, 0, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := fed.Connect(99, 0, b, 0, 5); err == nil {
		t.Fatal("unknown member accepted")
	}
	if _, err := fed.Connect(a, 0, b, 0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestCrossFlowEndToEnd(t *testing.T) {
	fed, a, b, src, dst := twoPOCs(t, 8)
	cf, err := fed.StartCrossFlow(a, src, b, dst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Allocated != 5 {
		t.Fatalf("allocated = %v", cf.Allocated)
	}
	// Both segments reserve in their own fabrics.
	ma, _ := fed.Member(a)
	mb, _ := fed.Member(b)
	if got, _ := ma.Fabric.Flow(cf.SrcSegment); got.Allocated != 5 {
		t.Fatalf("src segment = %+v", got)
	}
	if got, _ := mb.Fabric.Flow(cf.DstSegment); got.Allocated != 5 {
		t.Fatalf("dst segment = %+v", got)
	}
	if len(fed.CrossFlows()) != 1 {
		t.Fatal("flow not tracked")
	}
}

func TestCrossFlowGatewayBottleneck(t *testing.T) {
	fed, a, b, src, dst := twoPOCs(t, 3)
	cf, err := fed.StartCrossFlow(a, src, b, dst, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Allocated != 3 {
		t.Fatalf("allocated = %v, want gateway cap 3", cf.Allocated)
	}
	// Gateway exhausted: next flow fails.
	if _, err := fed.StartCrossFlow(a, src, b, dst, 1); err == nil {
		t.Fatal("flow admitted over exhausted gateway")
	}
}

func TestCrossFlowValidation(t *testing.T) {
	fed, a, b, src, dst := twoPOCs(t, 8)
	if _, err := fed.StartCrossFlow(a, src, b, dst, 0); err == nil {
		t.Fatal("zero demand accepted")
	}
	if _, err := fed.StartCrossFlow(a, src, a, src, 1); err == nil {
		t.Fatal("intra-POC flow accepted")
	}
	if _, err := fed.StartCrossFlow(99, src, b, dst, 1); err == nil {
		t.Fatal("unknown member accepted")
	}
}

func TestStopCrossFlowReleasesEverything(t *testing.T) {
	fed, a, b, src, dst := twoPOCs(t, 8)
	cf, err := fed.StartCrossFlow(a, src, b, dst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.StopCrossFlow(cf.ID); err != nil {
		t.Fatal(err)
	}
	if err := fed.StopCrossFlow(cf.ID); err == nil {
		t.Fatal("double stop accepted")
	}
	// Full capacity back: admit the same demand again.
	cf2, err := fed.StartCrossFlow(a, src, b, dst, 8)
	if err != nil || cf2.Allocated != 8 {
		t.Fatalf("re-admission: %v %+v", err, cf2)
	}
}

func TestSegmentUsagePerMember(t *testing.T) {
	fed, a, b, src, dst := twoPOCs(t, 8)
	if _, err := fed.StartCrossFlow(a, src, b, dst, 8); err != nil {
		t.Fatal(err)
	}
	ma, _ := fed.Member(a)
	mb, _ := fed.Member(b)
	ma.Fabric.Tick(100) // 8 Gbps × 100 s / 8 = 100 GB
	mb.Fabric.Tick(100)
	usage := fed.SegmentUsage()
	if math.Abs(usage[a]-100) > 1e-9 || math.Abs(usage[b]-100) > 1e-9 {
		t.Fatalf("usage = %v", usage)
	}
}

func TestCrossFlowPicksWidestGateway(t *testing.T) {
	fed, a, b, src, dst := twoPOCs(t, 2)
	// Second, wider gateway between the same members at other routers.
	gw2, err := fed.Connect(a, 1, b, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := fed.StartCrossFlow(a, src, b, dst, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Gateway != gw2 {
		t.Fatalf("chose gateway %d, want wider %d", cf.Gateway, gw2)
	}
	if cf.Allocated != 6 {
		t.Fatalf("allocated = %v", cf.Allocated)
	}
}
