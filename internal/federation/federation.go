// Package federation interconnects multiple POCs. §1.2 anticipates
// "several coexisting (and interconnected) POCs, run by different
// entities but adopting the same basic principles (nonprofit,
// focusing on transit, enforcing network neutrality)"; this package
// provides the interconnect: gateways pair up routers of two member
// fabrics, and cross-POC flows are admitted as a chain of segments
// (source fabric → gateway → destination fabric), each reserving
// capacity in its own domain so every member bills its own customers
// for its own carriage — the §3.2 principle extended across domains.
package federation

import (
	"fmt"
	"math"
	"sort"

	"github.com/public-option/poc/internal/netsim"
)

// MemberID identifies a member POC within the federation.
type MemberID int

// Member is one federated POC: its fabric plus the attestation that
// it runs under the shared principles. The federation refuses members
// that do not attest — the paper's interconnection precondition.
type Member struct {
	ID     MemberID
	Name   string
	Fabric *netsim.Fabric
	// NeutralityAttested records the member's contractual commitment
	// to the shared terms of service.
	NeutralityAttested bool
}

// GatewayID identifies an interconnect.
type GatewayID int

// Gateway is a bidirectional interconnect between routers of two
// member fabrics with its own capacity.
type Gateway struct {
	ID       GatewayID
	A, B     MemberID
	RouterA  int
	RouterB  int
	Capacity float64
	// endpoints of the gateway inside each member fabric.
	epA, epB netsim.EndpointID
	used     float64
}

// Residual returns the gateway's remaining capacity.
func (g *Gateway) Residual() float64 { return g.Capacity - g.used }

// Federation is a set of interconnected POCs.
type Federation struct {
	members  []*Member
	gateways []*Gateway

	flows    map[CrossFlowID]*CrossFlow
	nextFlow CrossFlowID
}

// New returns an empty federation.
func New() *Federation {
	return &Federation{flows: map[CrossFlowID]*CrossFlow{}}
}

// AddMember admits a POC to the federation. Admission requires the
// neutrality attestation.
func (f *Federation) AddMember(name string, fabric *netsim.Fabric, neutralityAttested bool) (MemberID, error) {
	if fabric == nil {
		return 0, fmt.Errorf("federation: nil fabric")
	}
	if !neutralityAttested {
		return 0, fmt.Errorf("federation: %q has not attested to the shared neutrality terms", name)
	}
	for _, m := range f.members {
		if m.Name == name {
			return 0, fmt.Errorf("federation: member %q already admitted", name)
		}
	}
	id := MemberID(len(f.members))
	f.members = append(f.members, &Member{
		ID: id, Name: name, Fabric: fabric, NeutralityAttested: true,
	})
	return id, nil
}

// Member returns an admitted member.
func (f *Federation) Member(id MemberID) (*Member, error) {
	if id < 0 || int(id) >= len(f.members) {
		return nil, fmt.Errorf("federation: unknown member %d", id)
	}
	return f.members[id], nil
}

// Connect establishes a gateway between routers of two members. The
// gateway is modeled inside each fabric as an endpoint at the paired
// router, so intra-fabric segments reserve real capacity up to the
// border.
func (f *Federation) Connect(a MemberID, routerA int, b MemberID, routerB int, capacity float64) (GatewayID, error) {
	ma, err := f.Member(a)
	if err != nil {
		return 0, err
	}
	mb, err := f.Member(b)
	if err != nil {
		return 0, err
	}
	if a == b {
		return 0, fmt.Errorf("federation: gateway must join two distinct members")
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("federation: gateway needs positive capacity")
	}
	id := GatewayID(len(f.gateways))
	epA, err := ma.Fabric.Attach(fmt.Sprintf("gw%d/%s", id, mb.Name), netsim.ExternalEndpoint, routerA)
	if err != nil {
		return 0, err
	}
	epB, err := mb.Fabric.Attach(fmt.Sprintf("gw%d/%s", id, ma.Name), netsim.ExternalEndpoint, routerB)
	if err != nil {
		return 0, err
	}
	f.gateways = append(f.gateways, &Gateway{
		ID: id, A: a, B: b, RouterA: routerA, RouterB: routerB,
		Capacity: capacity, epA: epA, epB: epB,
	})
	return id, nil
}

// CrossFlowID identifies an admitted cross-POC flow.
type CrossFlowID int

// CrossFlow is a flow spanning two member POCs through one gateway.
type CrossFlow struct {
	ID        CrossFlowID
	SrcMember MemberID
	DstMember MemberID
	Gateway   GatewayID
	Gbps      float64
	// SrcSegment and DstSegment are the per-fabric flows; Allocated
	// is the end-to-end rate (the min across segments and gateway).
	SrcSegment netsim.FlowID
	DstSegment netsim.FlowID
	Allocated  float64
}

// StartCrossFlow admits traffic from an endpoint of one member to an
// endpoint of another, choosing the gateway that admits the highest
// end-to-end rate (ties broken by lower gateway ID). Admission is
// atomic: if no gateway can carry any traffic, nothing is reserved.
func (f *Federation) StartCrossFlow(srcMember MemberID, src netsim.EndpointID, dstMember MemberID, dst netsim.EndpointID, gbps float64) (*CrossFlow, error) {
	if gbps <= 0 {
		return nil, fmt.Errorf("federation: non-positive demand")
	}
	ms, err := f.Member(srcMember)
	if err != nil {
		return nil, err
	}
	md, err := f.Member(dstMember)
	if err != nil {
		return nil, err
	}
	if srcMember == dstMember {
		return nil, fmt.Errorf("federation: use the member fabric for intra-POC flows")
	}

	var best *Gateway
	for _, g := range f.gateways {
		if (g.A == srcMember && g.B == dstMember) || (g.B == srcMember && g.A == dstMember) {
			if g.Residual() <= 0 {
				continue
			}
			if best == nil || g.Residual() > best.Residual() {
				best = g
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("federation: no gateway with capacity between %s and %s", ms.Name, md.Name)
	}

	// Gateway endpoints oriented from the source member's side.
	gwSrcEp, gwDstEp := best.epA, best.epB
	if best.B == srcMember {
		gwSrcEp, gwDstEp = best.epB, best.epA
	}

	want := math.Min(gbps, best.Residual())
	seg1, err := ms.Fabric.StartFlow(src, gwSrcEp, want, netsim.BestEffort)
	if err != nil {
		return nil, fmt.Errorf("federation: source segment: %w", err)
	}
	rate := seg1.Allocated
	seg2, err := md.Fabric.StartFlow(gwDstEp, dst, rate, netsim.BestEffort)
	if err != nil {
		ms.Fabric.StopFlow(seg1.ID)
		return nil, fmt.Errorf("federation: destination segment: %w", err)
	}
	// Harmonize to the end-to-end bottleneck.
	rate = math.Min(seg1.Allocated, seg2.Allocated)
	if rate <= 0 {
		ms.Fabric.StopFlow(seg1.ID)
		md.Fabric.StopFlow(seg2.ID)
		return nil, fmt.Errorf("federation: zero end-to-end capacity")
	}
	best.used += rate

	cf := &CrossFlow{
		ID:        f.nextFlow,
		SrcMember: srcMember, DstMember: dstMember,
		Gateway: best.ID, Gbps: gbps,
		SrcSegment: seg1.ID, DstSegment: seg2.ID,
		Allocated: rate,
	}
	f.nextFlow++
	f.flows[cf.ID] = cf
	return cf, nil
}

// StopCrossFlow tears down both segments and releases the gateway.
func (f *Federation) StopCrossFlow(id CrossFlowID) error {
	cf, ok := f.flows[id]
	if !ok {
		return fmt.Errorf("federation: unknown cross flow %d", id)
	}
	ms := f.members[cf.SrcMember]
	md := f.members[cf.DstMember]
	if err := ms.Fabric.StopFlow(cf.SrcSegment); err != nil {
		return err
	}
	if err := md.Fabric.StopFlow(cf.DstSegment); err != nil {
		return err
	}
	f.gateways[cf.Gateway].used -= cf.Allocated
	delete(f.flows, id)
	return nil
}

// CrossFlows returns snapshots of active cross-POC flows in ID order.
func (f *Federation) CrossFlows() []CrossFlow {
	ids := make([]int, 0, len(f.flows))
	for id := range f.flows {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]CrossFlow, 0, len(ids))
	for _, id := range ids {
		out = append(out, *f.flows[CrossFlowID(id)])
	}
	return out
}

// SegmentUsage returns, per member, the GB its fabric has carried for
// federation flows (each member bills its own customers for its own
// carriage).
func (f *Federation) SegmentUsage() map[MemberID]float64 {
	// Flow-ID order: per-member totals are float accumulations, and
	// map iteration would shift them at ULP scale run to run.
	ids := make([]int, 0, len(f.flows))
	for id := range f.flows {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := map[MemberID]float64{}
	for _, id := range ids {
		cf := f.flows[CrossFlowID(id)]
		if fl, err := f.members[cf.SrcMember].Fabric.Flow(cf.SrcSegment); err == nil {
			out[cf.SrcMember] += fl.TransferredGB
		}
		if fl, err := f.members[cf.DstMember].Fabric.Flow(cf.DstSegment); err == nil {
			out[cf.DstMember] += fl.TransferredGB
		}
	}
	return out
}
