package auction

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// regionalInstance builds a border-separable auction: two ring+chord
// regions with no links between them, per-BP additive bids priced by
// distance, and demand confined to each region. Instances built from
// the same seed are identical.
func regionalInstance(seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	const nSide, nBPs = 8, 4
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 2*nSide)},
		Routers: make([]int, 2*nSide),
	}
	for i := range p.Routers {
		p.Routers[i] = i
	}
	for i := 0; i < nBPs; i++ {
		p.BPs = append(p.BPs, topo.BP{Name: "bp", CostMult: 1})
	}
	caps := []float64{20, 40, 80}
	add := func(a, b int) {
		p.Links = append(p.Links, topo.LogicalLink{
			ID: len(p.Links), BP: len(p.Links) % nBPs, A: a, B: b,
			Capacity:   caps[rng.Intn(len(caps))],
			DistanceKm: 50 + rng.Float64()*450,
		})
	}
	ring := func(lo int) {
		for i := 0; i < nSide; i++ {
			add(lo+i, lo+(i+1)%nSide)
		}
		// Dense chords: the instance must stay acceptable when any single
		// BP withdraws, or the Clarke pivots are undefined.
		for i := 0; i < nSide; i++ {
			add(lo+i, lo+(i+2)%nSide)
			add(lo+i, lo+(i+3)%nSide)
		}
	}
	ring(0)
	ring(nSide)

	tm := traffic.NewMatrix(2 * nSide)
	side := func(lo int) {
		for i := 0; i < 4; i++ {
			a, b := lo+rng.Intn(nSide), lo+rng.Intn(nSide)
			if a != b {
				tm.Set(a, b, tm.At(a, b)+4+rng.Float64()*4)
			}
		}
	}
	side(0)
	side(nSide)

	in := &Instance{Network: p, TM: tm, Constraint: provision.Constraint2, MaxChecks: 40}
	prices := make([]map[int]float64, nBPs)
	links := make([][]int, nBPs)
	for _, l := range p.Links {
		if prices[l.BP] == nil {
			prices[l.BP] = map[int]float64{}
		}
		prices[l.BP][l.ID] = l.DistanceKm * (0.8 + 0.4*rng.Float64())
		links[l.BP] = append(links[l.BP], l.ID)
	}
	for a := 0; a < nBPs; a++ {
		in.Bids = append(in.Bids, Bid{BP: a, Links: links[a], Cost: AdditiveCost(prices[a])})
	}
	return in
}

// TestDecomposeFlagPreservesOutcome runs the same border-separable
// auction with and without regional decomposition: every outcome field
// must match bit-for-bit (cache hit/miss tallies legitimately differ —
// the decomposed run also probes per-region sub-problems).
func TestDecomposeFlagPreservesOutcome(t *testing.T) {
	for _, seed := range []int64{5, 11} {
		plain := regionalInstance(seed)
		dec := regionalInstance(seed)
		dec.Decompose = true
		dec.Cache = provision.NewFeasibilityCache() // external: lets the test observe engagement

		want, err := plain.Run()
		if err != nil {
			t.Fatalf("seed %d plain: %v", seed, err)
		}
		got, err := dec.Run()
		if err != nil {
			t.Fatalf("seed %d decomposed: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Selected, want.Selected) {
			t.Fatalf("seed %d: Selected diverged:\n%v\n%v", seed, got.Selected, want.Selected)
		}
		if math.Float64bits(got.TotalCost) != math.Float64bits(want.TotalCost) ||
			math.Float64bits(got.VirtualCost) != math.Float64bits(want.VirtualCost) {
			t.Fatalf("seed %d: cost diverged: %v vs %v", seed, got.TotalCost, want.TotalCost)
		}
		if !reflect.DeepEqual(got.Payments, want.Payments) ||
			!reflect.DeepEqual(got.Alternative, want.Alternative) ||
			!reflect.DeepEqual(got.BPCost, want.BPCost) {
			t.Fatalf("seed %d: payments diverged:\n%+v\n%+v", seed, got, want)
		}
		if got.Checks != want.Checks {
			t.Fatalf("seed %d: check budget diverged: %d vs %d", seed, got.Checks, want.Checks)
		}
		if n := dec.Cache.Stats().Decompositions; n == 0 {
			t.Fatalf("seed %d: decomposition never engaged on a separable instance", seed)
		}
	}
}

// TestDecomposeFlagOnConnectedInstance: on an instance with a single
// component the flag must be a no-op in both outcome and engagement.
func TestDecomposeFlagOnConnectedInstance(t *testing.T) {
	plain := parallelInstance([]float64{10, 20, 30, 40}, 15)
	dec := parallelInstance([]float64{10, 20, 30, 40}, 15)
	dec.Decompose = true
	dec.Cache = provision.NewFeasibilityCache()

	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Selected, want.Selected) || got.TotalCost != want.TotalCost {
		t.Fatalf("connected outcome diverged: %+v vs %+v", got, want)
	}
	if n := dec.Cache.Stats().Decompositions; n != 0 {
		t.Fatalf("decomposed %d probes on a connected instance", n)
	}
}
