package auction

import (
	"testing"

	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// BuildFigure2Instance assembles the paper-scale Figure 2 experiment:
// the default synthetic zoo (20 BPs, ~4700 logical links), a gravity
// traffic matrix, standard bids, and an external ISP attached at four
// major hubs. Exported for reuse by benches, examples and cmd tools
// via the test package only; the public API exposes the same via
// package poc.
func buildFigure2Instance(tb testing.TB, scale float64) Figure2Config {
	tb.Helper()
	w := topo.DefaultWorld()
	zoo := topo.DefaultZooConfig()
	if scale < 1 {
		zoo.NumNetworks = int(float64(zoo.NumNetworks) * scale)
	}
	nets := topo.GenerateZoo(w, zoo)
	p := topo.BuildPOCNetwork(w, nets, 20, 4, 0)
	gcfg := traffic.DefaultGravityConfig()
	if scale < 1 {
		gcfg.TotalGbps *= scale * scale
	}
	tm := traffic.Gravity(len(p.Routers), gcfg,
		func(i int) float64 { return w.Cities[p.Routers[i]].Population },
		func(i, j int) float64 { return w.Distance(p.Routers[i], p.Routers[j]) })
	lp := DefaultLeasePricing()
	bids := StandardBids(p, lp)
	// External ISP attached at four hubs; expensive fallback mesh.
	var attach []int
	for _, name := range []string{"NewYork", "London", "Tokyo", "SaoPaulo"} {
		if r := p.RouterIndex(w.CityIndex(name)); r >= 0 {
			attach = append(attach, r)
		}
	}
	if len(attach) < 2 {
		// Degenerate small-scale instance: attach at the first routers.
		attach = []int{0, len(p.Routers) / 2}
	}
	virtual := StandardVirtualLinks(p, attach, 400, 3.0, lp)
	return Figure2Config{
		Network:   p,
		TM:        tm,
		Bids:      bids,
		Virtual:   virtual,
		RouteOpts: provision.Options{FailureScenarios: 4},
		MaxChecks: 0,
	}
}

func TestRunFigure2SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("figure2 is slow")
	}
	cfg := buildFigure2Instance(t, 0.35)
	res, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	// Rows ordered by decreasing share.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Share > res.Rows[i-1].Share {
			t.Fatalf("rows not ordered by share: %v", res.Rows)
		}
	}
	for i, row := range res.Rows {
		for c := 0; c < 3; c++ {
			if row.PoB[c] < 0 {
				t.Fatalf("row %d constraint %d: negative PoB %v", i, c+1, row.PoB[c])
			}
			if row.PoB[c] > 5 {
				t.Fatalf("row %d constraint %d: implausible PoB %v", i, c+1, row.PoB[c])
			}
		}
		t.Logf("%s share=%.1f%% PoB = %.3f / %.3f / %.3f",
			row.Name, 100*row.Share, row.PoB[0], row.PoB[1], row.PoB[2])
	}
	// The PoB margins must vary across BPs (the paper highlights "the
	// high variation in the PoB").
	same := true
	for _, row := range res.Rows[1:] {
		if row.PoB != res.Rows[0].PoB {
			same = false
		}
	}
	if same {
		t.Fatal("PoB identical across BPs; expected variation")
	}
	for c := 0; c < 3; c++ {
		t.Logf("constraint #%d: C(SL)=%.0f checks=%d selected=%d links",
			c+1, res.Results[c].TotalCost, res.Results[c].Checks, len(res.Results[c].Selected))
	}
}
