package auction

import (
	"math"
	"testing"

	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// parallelNet builds n parallel links between two routers, one per
// BP, all 10 Gbps / 100 km.
func parallelNet(n int) *topo.POCNetwork {
	p := &topo.POCNetwork{
		World:   &topo.World{Cities: make([]topo.City, 2)},
		Routers: []int{0, 1},
	}
	for i := 0; i < n; i++ {
		p.BPs = append(p.BPs, topo.BP{Name: "bp", CostMult: 1})
		p.Links = append(p.Links, topo.LogicalLink{
			ID: i, BP: i, A: 0, B: 1, Capacity: 10, DistanceKm: 100,
		})
	}
	return p
}

func parallelInstance(prices []float64, demand float64) *Instance {
	p := parallelNet(len(prices))
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, demand)
	in := &Instance{Network: p, TM: tm, Constraint: provision.Constraint1}
	for i, price := range prices {
		in.Bids = append(in.Bids, Bid{BP: i, Links: []int{i},
			Cost: AdditiveCost(map[int]float64{i: price})})
	}
	return in
}

// With parallel identical links, the auction must select the cheapest
// subset that covers the demand and pay each winner up to the
// cheapest loser's price — the textbook (K+1)-price outcome.
func TestParallelLinksKPlusOnePrice(t *testing.T) {
	in := parallelInstance([]float64{10, 20, 30, 40}, 15) // needs 2 links
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selected[0] || !res.Selected[1] {
		t.Fatalf("selected = %v, want links 0 and 1", res.Selected)
	}
	if res.TotalCost != 30 {
		t.Fatalf("C(SL) = %v, want 30", res.TotalCost)
	}
	// Pivot for BP0: without it the selection is {1,2} at 50 → P0 = 10 + (50−30) = 30.
	if res.Payments[0] != 30 {
		t.Fatalf("P_0 = %v, want 30", res.Payments[0])
	}
	// Same replacement logic for BP1.
	if res.Payments[1] != 30 {
		t.Fatalf("P_1 = %v, want 30", res.Payments[1])
	}
	if res.Payments[2] != 0 || res.Payments[3] != 0 {
		t.Fatalf("losers paid: %v", res.Payments)
	}
}

func TestWarmBiasKnobAccepted(t *testing.T) {
	for _, bias := range []float64{0.1, 0.5, 1.0, 0 /* default */, 1.5 /* clamped to default */} {
		in := parallelInstance([]float64{10, 20, 30}, 15)
		in.WarmBias = bias
		res, err := in.Run()
		if err != nil {
			t.Fatalf("bias %v: %v", bias, err)
		}
		// The small instance is exact regardless of bias.
		if res.TotalCost != 30 {
			t.Fatalf("bias %v: C(SL) = %v", bias, res.TotalCost)
		}
		for a := range res.Payments {
			if res.Payments[a] < res.BPCost[a]-1e-9 {
				t.Fatalf("bias %v: IR violated for BP %d", bias, a)
			}
		}
	}
}

func TestMaxChecksVariantsAgreeOnSmallInstance(t *testing.T) {
	var costs []float64
	for _, mc := range []int{-1, 0, 24} {
		in := parallelInstance([]float64{10, 20, 30, 40}, 15)
		in.MaxChecks = mc
		res, err := in.Run()
		if err != nil {
			t.Fatalf("MaxChecks %d: %v", mc, err)
		}
		costs = append(costs, res.TotalCost)
	}
	// Constructive (-1) may keep extra links; shave and refine+shave
	// must both reach the 30 optimum, and never beat it.
	if costs[1] != 30 || costs[2] != 30 {
		t.Fatalf("costs = %v", costs)
	}
	if costs[0] < 30 {
		t.Fatalf("constructive beat the optimum: %v", costs[0])
	}
}

func TestAggregatePaymentsCoverCosts(t *testing.T) {
	// IR in aggregate: Σ P_a >= Σ C_a(SL_a) = C(SL) − virtual cost.
	in := parallelInstance([]float64{10, 12, 14, 16, 18}, 25)
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	var sumP, sumC float64
	for a := range res.Payments {
		sumP += res.Payments[a]
		sumC += res.BPCost[a]
	}
	if sumP < sumC-1e-9 {
		t.Fatalf("payments %v below costs %v", sumP, sumC)
	}
	if math.Abs(sumC+res.VirtualCost-res.TotalCost) > 1e-9 {
		t.Fatalf("cost accounting broken: %v + %v != %v", sumC, res.VirtualCost, res.TotalCost)
	}
}

func TestRunFigure2TopBPs(t *testing.T) {
	p := parallelNet(4)
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 15)
	var bids []Bid
	for i := 0; i < 4; i++ {
		bids = append(bids, Bid{BP: i, Links: []int{i},
			Cost: AdditiveCost(map[int]float64{i: float64(10 * (i + 1))})})
	}
	res, err := RunFigure2(Figure2Config{
		Network: p, TM: tm, Bids: bids, TopBPs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	// Rows carry the per-constraint PoB of the largest-share BPs.
	for _, row := range res.Rows {
		if row.Share <= 0 {
			t.Fatalf("row share = %v", row.Share)
		}
	}
}

func TestRunFigure2PropagatesErrors(t *testing.T) {
	p := parallelNet(1) // single BP: A(OL−L_0) empty
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 5)
	_, err := RunFigure2(Figure2Config{
		Network: p, TM: tm,
		Bids: []Bid{{BP: 0, Links: []int{0}, Cost: AdditiveCost(map[int]float64{0: 10})}},
	})
	if err == nil {
		t.Fatal("expected error for irreplaceable BP")
	}
}

func TestNonAdditivePricingAffectsSelection(t *testing.T) {
	// BP0 offers two links with a steep bundle discount; BP1 two
	// additive links. Demand needs two links. The discounted bundle
	// (30×2×0.7 = 42) beats every alternative pair (25+25 = 50,
	// 30+25 = 55).
	p := parallelNet(4)
	p.Links[0].BP = 0
	p.Links[1].BP = 0
	p.Links[2].BP = 1
	p.Links[3].BP = 1
	p.BPs = p.BPs[:2]
	tm := traffic.NewMatrix(2)
	tm.Set(0, 1, 15)
	in := &Instance{
		Network: p, TM: tm, Constraint: provision.Constraint1,
		Bids: []Bid{
			{BP: 0, Links: []int{0, 1}, Cost: VolumeDiscountCost(map[int]float64{0: 30, 1: 30}, 0.3, 0.3)},
			{BP: 1, Links: []int{2, 3}, Cost: AdditiveCost(map[int]float64{2: 25, 3: 25})},
		},
	}
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalCost-42) > 1e-9 {
		t.Fatalf("C(SL) = %v, want discounted bundle at 42", res.TotalCost)
	}
	if !res.Selected[0] || !res.Selected[1] || res.Selected[2] || res.Selected[3] {
		t.Fatalf("selected = %v, want BP0's bundle", res.Selected)
	}
}
