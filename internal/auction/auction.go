package auction

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"github.com/public-option/poc/internal/fnv64"
	"github.com/public-option/poc/internal/linkset"
	"github.com/public-option/poc/internal/obs"
	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// Instance is one auction: a POC network, the BPs' bids, the external
// ISPs' virtual links, the traffic matrix to provision for, and the
// acceptability constraint.
type Instance struct {
	Network *topo.POCNetwork
	Bids    []Bid
	Virtual []VirtualLink
	TM      *traffic.Matrix
	// Constraint selects the acceptability family A(OL): every
	// candidate link set must satisfy it for the TM.
	Constraint provision.Constraint
	// RouteOpts tunes the feasibility router.
	RouteOpts provision.Options
	// MaxChecks selects the winner-determination variant:
	//
	//	 0 (default): constructive seed + idle-drop + shave to
	//	    incremental 1-minimality (see provision.Shaver);
	//	>0: additionally run price-ordered batch refinement with this
	//	    many feasibility checks before the shave;
	//	<0: constructive seed + idle-drop only (ablation baseline).
	//
	// Every variant is deterministic, which is what lets the POC
	// publish the algorithm ("an open algorithm so that it cannot be
	// accused of favoritism").
	MaxChecks int
	// WarmBias in (0,1] scales the routing metric of links already in
	// SL during the counterfactual winner determinations, so SL_-a
	// reuses the main solution's structure. Smaller values track SL
	// more aggressively: too small overestimates the Clarke pivots
	// (the counterfactual ignores cheap alternatives outside SL), too
	// large re-introduces heuristic noise (negative pivots). Zero
	// means the default of 0.75.
	WarmBias float64
	// Workers bounds how many counterfactual winner determinations run
	// concurrently (the per-BP runs are mutually independent), and is
	// forwarded to RouteOpts.Workers for Constraint2's failure-scenario
	// sweep when that is unset. 0 means runtime.GOMAXPROCS(0); 1 forces
	// the serial path. Parallelism only reorders work — every outcome
	// (Selected, TotalCost, Payments, Checks) is bit-identical to the
	// serial run, preserving the published-algorithm property.
	Workers int
	// NoCache disables the per-run feasibility memo (the serial seed
	// behaviour, useful for ablation). The memo never changes outcomes
	// — Check is deterministic, so a hit replays exactly what a fresh
	// check would compute — it only skips redundant routing work.
	NoCache bool
	// Cache, when non-nil, is an external feasibility memo shared
	// across runs — the fleet runner threads one process-wide cache
	// through every cell so instances over the same network, matrix
	// and bids replay each other's checks. Entries are keyed by a
	// fingerprint of this instance's price metric (plus the warm set
	// for counterfactuals), so instances with different bids never
	// collide. A shared cache requires the auction-built metric: when
	// RouteOpts.LinkCost is caller-supplied the external cache is
	// ignored (its identity cannot be fingerprinted) and a private
	// per-run memo is used instead. With an external cache the
	// scheduling-dependent tallies — Result.CacheHits/CacheMisses and
	// the auction.memo.* counters — are suppressed: which run inserts
	// an entry is cross-cell scheduling luck, and the obs export must
	// stay byte-identical for any worker interleaving.
	Cache *provision.FeasibilityCache
	// Decompose enables regional decomposition inside the cached
	// feasibility checks: probes whose enabled subgraph splits into
	// components with only intra-component demand are evaluated per
	// region and stitched exactly (provision.CheckDecomposed). Answers
	// are identical to the global check on every instance — connected
	// or cross-demand probes simply compute cold — so the flag is pure
	// speed on border-separable continental instances. It requires a
	// cache (ignored under NoCache).
	Decompose bool
	// Workspace, when non-nil, is an external arena pool for the main
	// (raw-metric) winner determination, built by NewRawWorkspace on an
	// instance with the same Network, Bids, Virtual and RouteOpts.
	// Counterfactual runs always build their own (their warm-biased
	// metric differs per selection). Sharing never changes outcomes:
	// arenas are equivalent after apply, whichever run returned them.
	Workspace *provision.Workspace
	// Obs, when non-nil, receives the auction's metrics and trace
	// spans: run/counterfactual spans, check and memo counters, cost
	// gauges, and per-BP payments. It is forwarded to
	// RouteOpts.Obs (when that is unset) so feasibility checks record
	// too. All recording happens in Run's serial sections or through
	// commutative registry operations, so the export stays
	// byte-identical across Workers settings.
	Obs *obs.Registry
}

// Result reports the auction outcome.
type Result struct {
	// Selected is SL: the chosen link set (logical link IDs).
	Selected map[int]bool
	// TotalCost is C(SL): declared BP costs plus virtual-link
	// contract prices for the selected set.
	TotalCost float64
	// BPCost[a] is C_a(SL_a), BP a's declared cost for its selected
	// links.
	BPCost []float64
	// Payments[a] is the Clarke-pivot payment P_a.
	Payments []float64
	// Alternative[a] is C(SL_-a), the cheapest acceptable cost when
	// BP a withdraws. For BPs with no selected links it equals
	// TotalCost (withdrawing them changes nothing).
	Alternative []float64
	// VirtualCost is the contract cost of selected virtual links.
	VirtualCost float64
	// Checks counts feasibility checks spent across all winner
	// determinations (SL and every SL_-a). Cached checks still count:
	// the check budget (MaxChecks) must not depend on cache luck.
	Checks int
	// CacheHits/CacheMisses count feasibility-memo outcomes across the
	// run; hits are checks answered without routing.
	CacheHits   int
	CacheMisses int
}

// PoB returns the payment-over-bid margin for BP a:
// (P_a − C_a(SL_a)) / C_a(SL_a). This is the quantity Figure 2 plots.
// It returns 0 for BPs with no selected links.
func (r *Result) PoB(a int) float64 {
	if r.BPCost[a] <= 0 {
		return 0
	}
	return (r.Payments[a] - r.BPCost[a]) / r.BPCost[a]
}

// Surplus returns the total payment premium over declared costs,
// Σ_a (P_a − C_a) — what strategy-proofness costs the POC.
func (r *Result) Surplus() float64 {
	s := 0.0
	for a := range r.Payments {
		s += r.Payments[a] - r.BPCost[a]
	}
	return s
}

// priceMetric routes by declared lease price so that the routing —
// and therefore the seed of the winner determination — prefers the
// cheap links, which is what argmin C(L) wants.
func priceMetric(price map[int]float64) func(l topo.LogicalLink) float64 {
	return func(l topo.LogicalLink) float64 {
		if p, ok := price[l.ID]; ok && !math.IsInf(p, 1) {
			return p
		}
		return l.DistanceKm
	}
}

// Run executes the auction: winner determination for SL, then one
// counterfactual winner determination per participating BP to price
// the Clarke pivots. The counterfactuals are mutually independent and
// fan across Workers goroutines; every outcome is bit-identical to the
// serial (Workers: 1) run.
func (in *Instance) Run() (*Result, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	var sharedPrice map[int]float64
	if in.RouteOpts.LinkCost == nil {
		sharedPrice = in.priceOfLink()
		in.RouteOpts.LinkCost = priceMetric(sharedPrice)
	}
	workers := in.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if in.RouteOpts.Workers == 0 {
		in.RouteOpts.Workers = workers
	}
	if in.RouteOpts.Obs == nil {
		in.RouteOpts.Obs = in.Obs
	}
	// cc.external marks a cache shared beyond this run: obs recording
	// through it is suppressed (insert wins are cross-run scheduling
	// luck) and entries are namespaced by the instance's price-metric
	// fingerprint. A caller-supplied LinkCost cannot be fingerprinted,
	// so an external cache is only honored for the auction-built metric.
	var cc cacheCtx
	if !in.NoCache {
		if in.Cache != nil && sharedPrice != nil {
			cc = cacheCtx{fc: in.Cache, base: priceFingerprint(sharedPrice), external: true}
		} else {
			cc = cacheCtx{fc: provision.NewFeasibilityCache()}
		}
	}
	run := in.Obs.StartSpan("auction.run")
	defer run.End()
	wd := in.Obs.StartSpan("auction.winner_determination")
	sel, err := in.selectLinks(-1, nil, in.RouteOpts, cc)
	wd.End()
	if err != nil {
		return nil, fmt.Errorf("auction: winner determination: %w", err)
	}
	res := &Result{
		Selected:    sel.set.ToMap(),
		TotalCost:   sel.cost,
		BPCost:      make([]float64, len(in.Bids)),
		Payments:    make([]float64, len(in.Bids)),
		Alternative: make([]float64, len(in.Bids)),
		Checks:      sel.checks,
	}
	perBP := in.linksByBP(sel.set)
	var need []int
	for a, bid := range in.Bids {
		res.BPCost[a] = bid.Cost(perBP[a])
		if len(perBP[a]) == 0 {
			// Exact shortcut: withdrawing a BP with no selected links
			// leaves SL optimal, so C(SL_-a) = C(SL) and P_a = 0.
			res.Alternative[a] = sel.cost
			continue
		}
		need = append(need, a)
	}
	// Counterfactual winner determinations, warm-started from SL: the
	// routing metric prefers links already in SL, so SL_-a reuses the
	// main solution's structure and deviates only where BP a's links
	// are missing. This keeps C(SL_-a) comparable to C(SL) — under
	// exact optimization the pivot C(SL_-a) − C(SL) is non-negative,
	// and the warm start makes the heuristic respect that in all but
	// pathological cases.
	//
	// The per-BP runs share no mutable state: each gets its own Options
	// value (and, when the metric was auction-built, its own LinkCost
	// over a private copy of the price map), and results land in
	// per-index slots. Aggregation below walks the slots in BP order,
	// so Checks and error selection match the serial run exactly.
	alts := make([]selection, len(in.Bids))
	errs := make([]error, len(in.Bids))
	cf := in.Obs.StartSpan("auction.counterfactuals")
	if workers <= 1 || len(need) <= 1 {
		for _, a := range need {
			alts[a], errs[a] = in.selectLinks(a, sel.set, in.RouteOpts, cc)
			if errs[a] != nil {
				break
			}
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for _, a := range need {
			a := a
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				opts := in.RouteOpts
				if sharedPrice != nil {
					price := make(map[int]float64, len(sharedPrice))
					for id, p := range sharedPrice {
						price[id] = p
					}
					opts.LinkCost = priceMetric(price)
				}
				alts[a], errs[a] = in.selectLinks(a, sel.set, opts, cc)
			}()
		}
		wg.Wait()
	}
	cf.End()
	for _, a := range need {
		if errs[a] != nil {
			return nil, fmt.Errorf("auction: A(OL−L_%d) empty: %w", a, errs[a])
		}
		alt := alts[a]
		res.Checks += alt.checks
		res.Alternative[a] = alt.cost
		// Clarke pivot. The heuristic winner determination can in
		// principle find alt.cost below sel.cost (it solves a smaller
		// instance); clamp at the theoretical lower bound P_a >= C_a.
		pay := res.BPCost[a] + (alt.cost - sel.cost)
		if pay < res.BPCost[a] {
			pay = res.BPCost[a]
		}
		res.Payments[a] = pay
	}
	for _, v := range in.Virtual {
		if sel.set.Contains(v.LinkID) {
			res.VirtualCost += v.ContractPrice
		}
	}
	if cc.fc != nil && !cc.external {
		res.CacheHits = int(cc.fc.Hits())
		res.CacheMisses = int(cc.fc.Misses())
	}
	in.record(res, need, cc)
	return res, nil
}

// paymentBuckets is the fixed layout for the per-BP payment histogram.
var paymentBuckets = []float64{1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// record publishes the auction outcome. It runs after the parallel
// fan-in, so ordered operations (gauges, per-BP payments) are safe;
// the memo counters use fc.Len() — the number of distinct link sets
// checked — rather than the scheduling-dependent hit/miss tallies, so
// the export is identical for any Workers value.
func (in *Instance) record(res *Result, need []int, cc cacheCtx) {
	if in.Obs == nil {
		return
	}
	in.Obs.Add("auction.runs", 1)
	in.Obs.Add("auction.counterfactuals", int64(len(need)))
	in.Obs.Add("auction.checks", int64(res.Checks))
	in.Obs.Set("auction.total_cost", res.TotalCost)
	in.Obs.Set("auction.virtual_cost", res.VirtualCost)
	in.Obs.Set("auction.surplus", res.Surplus())
	in.Obs.Set("auction.selected_links", float64(len(res.Selected)))
	for _, a := range need {
		in.Obs.KeyedSet("auction.payment_by_bp", a, res.Payments[a])
		in.Obs.Observe("auction.payments", paymentBuckets, res.Payments[a])
	}
	// An external cache's entry count reflects every run that shares
	// it, in completion order — scheduling-dependent — so the memo
	// counters are private-cache only.
	if cc.fc != nil && !cc.external {
		entries := int64(cc.fc.Len())
		in.Obs.Add("auction.memo.lookups", int64(res.Checks))
		in.Obs.Add("auction.memo.entries", entries)
		in.Obs.Add("auction.memo.replayed", int64(res.Checks)-entries)
	}
}

func (in *Instance) validate() error {
	if in.Network == nil {
		return fmt.Errorf("auction: nil network")
	}
	if in.TM == nil {
		return fmt.Errorf("auction: nil traffic matrix")
	}
	if in.TM.Size() != len(in.Network.Routers) {
		return fmt.Errorf("auction: traffic matrix size %d != %d routers",
			in.TM.Size(), len(in.Network.Routers))
	}
	if in.Constraint < provision.Constraint1 || in.Constraint > provision.Constraint3 {
		return fmt.Errorf("auction: invalid constraint %d", int(in.Constraint))
	}
	seen := map[int]bool{}
	for _, b := range in.Bids {
		if err := b.Validate(in.Network); err != nil {
			return err
		}
		for _, id := range b.Links {
			if seen[id] {
				return fmt.Errorf("auction: link %d offered twice", id)
			}
			seen[id] = true
		}
	}
	for _, v := range in.Virtual {
		if v.LinkID < 0 || v.LinkID >= len(in.Network.Links) {
			return fmt.Errorf("auction: virtual link %d out of range", v.LinkID)
		}
		if seen[v.LinkID] {
			return fmt.Errorf("auction: link %d offered twice", v.LinkID)
		}
		seen[v.LinkID] = true
		if v.ContractPrice < 0 {
			return fmt.Errorf("auction: negative contract price for link %d", v.LinkID)
		}
	}
	return nil
}

// linksByBP partitions a selected set into per-BP sorted link lists
// following the bids (not link ownership, so withheld links never
// count).
func (in *Instance) linksByBP(set *linkset.Set) [][]int {
	out := make([][]int, len(in.Bids))
	for a, b := range in.Bids {
		for _, id := range b.Links {
			if set.Contains(id) {
				out[a] = append(out[a], id)
			}
		}
		sort.Ints(out[a])
	}
	return out
}

// costOf evaluates C(L) for a candidate set: Σ_a C_a(L ∩ L_a) plus
// virtual contract prices.
func (in *Instance) costOf(set *linkset.Set) float64 {
	total := 0.0
	for a, links := range in.linksByBP(set) {
		c := in.Bids[a].Cost(links)
		if math.IsInf(c, 1) {
			return math.Inf(1)
		}
		total += c
	}
	for _, v := range in.Virtual {
		if set.Contains(v.LinkID) {
			total += v.ContractPrice
		}
	}
	return total
}

// selection is the outcome of one winner determination.
type selection struct {
	set    *linkset.Set
	cost   float64
	checks int
}

// cacheCtx carries one Run's feasibility-memo context into every
// winner determination: the cache itself, the instance's price-metric
// fingerprint (zero for a private per-run cache), and whether the
// cache outlives the run (external ⇒ no obs recording through it).
type cacheCtx struct {
	fc       *provision.FeasibilityCache
	base     uint64
	external bool
}

// priceFingerprint hashes a price metric by value, in ascending link
// ID: two instances with equal bids produce equal fingerprints (and so
// share cache entries), while a reauction's reduced bids — different
// marginal prices — produce a different one.
func priceFingerprint(price map[int]float64) uint64 {
	ids := make([]int, 0, len(price))
	for id := range price {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	h := uint64(fnv64.Offset)
	for _, id := range ids {
		h = fnv64.Mix(h, uint64(id))
		h = fnv64.Mix(h, math.Float64bits(price[id]))
	}
	return h
}

// NewRawWorkspace builds a provisioning workspace frozen to this
// instance's raw price metric — the metric Run uses for the main
// winner determination when RouteOpts.LinkCost is nil. A caller that
// runs many auctions over the same Network, Bids, Virtual and
// RouteOpts (the fleet runner's cells) builds one and sets it as
// Instance.Workspace on each, sharing the arena free-list across runs.
func (in *Instance) NewRawWorkspace() *provision.Workspace {
	opts := in.RouteOpts
	if opts.LinkCost == nil {
		opts.LinkCost = priceMetric(in.priceOfLink())
	}
	return provision.NewWorkspace(in.Network, opts)
}

// offered returns the offered link set OL, optionally excluding one
// BP's links (excludeBP >= 0).
func (in *Instance) offered(excludeBP int) *linkset.Set {
	ol := linkset.New(len(in.Network.Links))
	for a, b := range in.Bids {
		if a == excludeBP {
			continue
		}
		for _, id := range b.Links {
			ol.Add(id)
		}
	}
	for _, v := range in.Virtual {
		ol.Add(v.LinkID)
	}
	return ol
}

// priceOfLink returns the per-link price used as the routing metric
// and the removal order: each BP link's *marginal* price within the
// BP's full offer (C_a(L_a) − C_a(L_a∖{id})), which sees bundle
// discounts that a naive singleton price would miss; virtual links
// use their contract price. When a bid prices its full set at +Inf
// (pathological), the singleton price is the fallback.
func (in *Instance) priceOfLink() map[int]float64 {
	price := map[int]float64{}
	scratch := make([]int, 0, 64)
	for _, b := range in.Bids {
		full := b.Cost(b.Links)
		for i, id := range b.Links {
			if math.IsInf(full, 1) {
				price[id] = b.Cost([]int{id})
				continue
			}
			scratch = scratch[:0]
			scratch = append(scratch, b.Links[:i]...)
			scratch = append(scratch, b.Links[i+1:]...)
			p := full - b.Cost(scratch)
			if p < 0 {
				p = 0
			}
			price[id] = p
		}
	}
	for _, v := range in.Virtual {
		price[v.LinkID] = v.ContractPrice
	}
	return price
}

// selectLinks is the deterministic winner-determination heuristic:
//
//  1. Start from all offered links (minus the excluded BP) and fail
//     if even that is unacceptable.
//  2. Drop-unused pass: route the TM by lease price, then drop every
//     link the routing (and, for resilience constraints, the
//     degraded routings) leaves idle, bisecting the drop batch on
//     failure.
//  3. Optional batch refinement (MaxChecks > 0): try to drop the
//     most expensive remaining links in batches within the budget.
//  4. Shave (unless MaxChecks < 0): make the set incrementally
//     1-minimal, most expensive link first, via cheap repair-based
//     drop tests (provision.Shaver).
//
// The shave is what makes VCG pivots consistent: the main run and
// every counterfactual run converge to comparably tight sets, so
// C(SL_-a) − C(SL) measures the BP's contribution rather than
// heuristic noise. The whole pipeline is deterministic, so the POC
// can publish it and every BP can reproduce the outcome.
//
// opts is passed explicitly (not read from in.RouteOpts) so that
// concurrent counterfactual runs each own their Options value. cc.fc,
// when non-nil, memoizes feasibility checks. Within one Run only two
// routing metrics exist — the raw price metric (main run) and the
// warm-biased one (every counterfactual warms towards the same SL) —
// so entries are tagged with which of the two produced them: the
// excluded BP is already captured by the include set in the key, and
// sharing the warm tag lets counterfactuals reuse each other's checks.
// The tags mix in cc.base (the instance's price-metric fingerprint,
// zero for a private cache) and, for the warm metric, the warm set and
// bias, so runs sharing an external cache never cross metrics.
func (in *Instance) selectLinks(excludeBP int, warm *linkset.Set, opts provision.Options, cc cacheCtx) (selection, error) {
	cur := in.offered(excludeBP)
	metric := fnv64.Mix(fnv64.Mix(fnv64.Offset, cc.base), 1) // raw price metric
	if warm != nil {
		// Scale down the routing metric of links in the warm set so
		// the constructive seed follows the main solution's structure.
		bias := in.WarmBias
		if bias <= 0 || bias > 1 {
			bias = 0.75
		}
		// Warm-biased metric, identical across counterfactuals: a pure
		// function of (price metric, warm set, bias).
		metric = fnv64.Mix(fnv64.Mix(fnv64.Offset, cc.base), 2)
		for _, w := range warm.Words() {
			metric = fnv64.Mix(metric, w)
		}
		metric = fnv64.Mix(metric, math.Float64bits(bias))
		base := opts.LinkCost
		opts.LinkCost = func(l topo.LogicalLink) float64 {
			c := base(l)
			if warm.Contains(l.ID) {
				c *= bias
			}
			return c
		}
	}
	// One workspace per winner determination: its arenas freeze this
	// determination's routing metric (raw or warm-biased), and every
	// check below — including the Constraint-2 scenario sweeps and the
	// shave — draws from the same pool. Counterfactuals run their own
	// selectLinks, so parallel runs never share a workspace — unless
	// the caller provided a shared raw-metric pool, which the main
	// determination draws from (arenas are equivalent after apply).
	if warm == nil && in.Workspace != nil {
		opts.Workspace = in.Workspace
	} else {
		opts.Workspace = provision.NewWorkspace(in.Network, opts)
	}
	checks := 0
	fc := cc.fc
	// Every query counts against checks whether or not the memo
	// answers it: the MaxChecks budget must not depend on cache luck,
	// so cached and uncached runs take identical decisions.
	check := func(set *linkset.Set, o provision.Options) bool {
		checks++
		if fc != nil {
			if cc.external {
				// Which sharing run wins an entry's insert — and with it
				// the once-per-entry check metrics — is cross-run
				// scheduling luck; record nothing through a shared cache.
				o.Obs = nil
			}
			if in.Decompose {
				ok, _ := fc.CheckDecomposed(in.Network, set, in.TM, in.Constraint, o, metric)
				return ok
			}
			ok, _ := fc.Check(in.Network, set, in.TM, in.Constraint, o, metric)
			return ok
		}
		ok, _ := provision.Check(in.Network, set, in.TM, in.Constraint, o)
		return ok
	}
	feasible := func(set *linkset.Set) bool { return check(set, opts) }
	// The acceptability check and the idle-link scan of pass 1 route the
	// exact same instance; fuse them (CheckCore) so the full offer set —
	// the most expensive instance the pipeline ever routes — is routed
	// once instead of twice.
	checkCore := func(set *linkset.Set, o provision.Options) (bool, *linkset.Set) {
		checks++
		if fc != nil {
			if cc.external {
				o.Obs = nil
			}
			if in.Decompose {
				return fc.CheckCoreDecomposed(in.Network, set, in.TM, in.Constraint, o, metric)
			}
			return fc.CheckCore(in.Network, set, in.TM, in.Constraint, o, metric)
		}
		return provision.CheckCore(in.Network, set, in.TM, in.Constraint, o)
	}
	ok, core := checkCore(cur, opts)
	if !ok {
		// A tight offer set (e.g. a prior auction's minimal selection
		// re-offered in the collusion experiment) can wedge the greedy
		// packing even though a feasible packing exists; retry with
		// more path splits before declaring the set unacceptable.
		boosted := opts
		boosted.MaxPaths = boosted.MaxPaths * 4
		if boosted.MaxPaths <= 0 {
			boosted.MaxPaths = 48
		}
		if ok, core = checkCore(cur, boosted); !ok {
			return selection{}, fmt.Errorf("offered set is not acceptable under %v", in.Constraint)
		}
		opts = boosted
	}

	// Pass 1: drop every link idle under the constraint's scenarios.
	// Iteration is ascending-ID, so idle is already sorted.
	var idle []int
	cur.Iterate(func(id int) {
		if !core.Contains(id) {
			idle = append(idle, id)
		}
	})
	in.dropBatch(cur, idle, feasible)

	price := in.priceOfLink()

	// Pass 2 (optional): price-ordered batch refinement within the
	// check budget.
	if in.MaxChecks > 0 {
		budget := in.MaxChecks
		for checks < budget {
			// Most expensive first.
			cand := cur.AppendIDs(make([]int, 0, cur.Len()))
			sort.Slice(cand, func(i, j int) bool {
				if price[cand[i]] != price[cand[j]] {
					return price[cand[i]] > price[cand[j]]
				}
				return cand[i] < cand[j]
			})
			batch := len(cand) / 8
			if batch < 1 {
				batch = 1
			}
			dropped := in.dropBatchBudget(cur, cand[:min(batch*2, len(cand))], feasible, budget-checks, &checks)
			if dropped == 0 {
				break
			}
		}
	}

	// Pass 3: shave to incremental 1-minimality. The shave routes
	// internally without going through check(), so at continental
	// scale it dominates a cache-warm determination — memoize its
	// result in the cache under the same key material (the price
	// metric fingerprint also fixes the shave's price order; see
	// FeasibilityCache.Shaved). The Shaver records no obs, so a memo
	// hit skipping it never perturbs metrics exports.
	if in.MaxChecks >= 0 {
		runShave := func() *linkset.Set {
			if sh, ok := provision.NewShaver(in.Network, cur, in.TM, in.Constraint, opts); ok {
				sh.Shave(func(link int) float64 { return price[link] }, 0)
				defer sh.Close()
				return sh.Include()
			}
			return cur
		}
		if fc != nil {
			cur = fc.Shaved(in.Network, cur, in.TM, in.Constraint, opts, metric, runShave)
		} else {
			cur = runShave()
		}
	}

	return selection{set: cur, cost: in.costOf(cur), checks: checks}, nil
}

// dropBatch tries to remove the candidate links from set, bisecting
// on infeasibility. It mutates set in place and returns how many
// links were removed.
func (in *Instance) dropBatch(set *linkset.Set, cand []int, feasible func(*linkset.Set) bool) int {
	if len(cand) == 0 {
		return 0
	}
	trial := set.Clone()
	for _, id := range cand {
		trial.Remove(id)
	}
	if feasible(trial) {
		for _, id := range cand {
			set.Remove(id)
		}
		return len(cand)
	}
	if len(cand) == 1 {
		return 0
	}
	mid := len(cand) / 2
	return in.dropBatch(set, cand[:mid], feasible) + in.dropBatch(set, cand[mid:], feasible)
}

// dropBatchBudget is dropBatch with an external check budget: it
// stops descending when spent reaches budget.
func (in *Instance) dropBatchBudget(set *linkset.Set, cand []int, feasible func(*linkset.Set) bool, budget int, spent *int) int {
	if len(cand) == 0 || budget <= 0 {
		return 0
	}
	before := *spent
	trial := set.Clone()
	for _, id := range cand {
		trial.Remove(id)
	}
	if feasible(trial) {
		for _, id := range cand {
			set.Remove(id)
		}
		return len(cand)
	}
	if len(cand) == 1 {
		return 0
	}
	mid := len(cand) / 2
	remaining := budget - (*spent - before)
	n := in.dropBatchBudget(set, cand[:mid], feasible, remaining, spent)
	remaining = budget - (*spent - before)
	return n + in.dropBatchBudget(set, cand[mid:], feasible, remaining, spent)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
