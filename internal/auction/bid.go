// Package auction implements the paper's strategy-proof bandwidth
// auction (§3.3): each bandwidth provider (BP) offers a set of links
// with a minimal acceptable price for each subset of those links; the
// POC picks the cheapest acceptable link set SL (one that satisfies
// its provisioning constraints) and pays each BP the VCG/Clarke-pivot
// amount
//
//	P_a = C_a(SL_a) + ( C(SL_-a) − C(SL) )
//
// where SL_-a is the cheapest acceptable set when BP a withdraws all
// of its links. External ISPs contribute virtual links (VL) at
// contract prices outside the auction; they cap what colluding BPs
// can extract.
package auction

import (
	"fmt"
	"math"

	"github.com/public-option/poc/internal/topo"
)

// CostFn maps a subset of a BP's link IDs to the BP's minimal
// acceptable monthly price for leasing exactly that subset. It must
// return +Inf for subsets the BP does not offer, 0 for the empty set,
// and should be monotone (a superset never costs less); the auction
// does not verify monotonicity but the winner determination assumes
// the empty set is free.
type CostFn func(links []int) float64

// Bid is one BP's offer: the links it puts up for lease and its
// subset-cost function.
type Bid struct {
	BP    int   // index into the POC network's BPs
	Links []int // logical link IDs offered (must belong to this BP)
	Cost  CostFn
}

// Validate checks the bid's internal consistency against the network.
func (b Bid) Validate(p *topo.POCNetwork) error {
	if b.BP < 0 || b.BP >= len(p.BPs) {
		return fmt.Errorf("auction: bid names BP %d of %d", b.BP, len(p.BPs))
	}
	if b.Cost == nil {
		return fmt.Errorf("auction: bid for BP %d has no cost function", b.BP)
	}
	for _, id := range b.Links {
		if id < 0 || id >= len(p.Links) {
			return fmt.Errorf("auction: bid for BP %d offers unknown link %d", b.BP, id)
		}
		if p.Links[id].BP != b.BP {
			return fmt.Errorf("auction: bid for BP %d offers link %d owned by BP %d",
				b.BP, id, p.Links[id].BP)
		}
	}
	if c := b.Cost(nil); c != 0 {
		return fmt.Errorf("auction: bid for BP %d prices the empty set at %v", b.BP, c)
	}
	return nil
}

// AdditiveCost returns a CostFn that sums fixed per-link prices.
// Links not in the price map are priced at +Inf (not offered).
func AdditiveCost(priceByLink map[int]float64) CostFn {
	return func(links []int) float64 {
		total := 0.0
		for _, id := range links {
			p, ok := priceByLink[id]
			if !ok {
				return math.Inf(1)
			}
			total += p
		}
		return total
	}
}

// VolumeDiscountCost returns a CostFn that sums per-link prices and
// then applies a volume discount: leasing k links costs
// (1 − min(maxDiscount, rate·(k−1))) times the additive sum. This is
// the kind of non-additive pricing the paper explicitly allows BPs to
// express ("discounts for multiple links, or other non-additive
// variations in pricing").
func VolumeDiscountCost(priceByLink map[int]float64, rate, maxDiscount float64) CostFn {
	if rate < 0 || maxDiscount < 0 || maxDiscount >= 1 {
		panic("auction: invalid discount parameters")
	}
	add := AdditiveCost(priceByLink)
	return func(links []int) float64 {
		base := add(links)
		if math.IsInf(base, 1) || len(links) <= 1 {
			return base
		}
		d := rate * float64(len(links)-1)
		if d > maxDiscount {
			d = maxDiscount
		}
		return base * (1 - d)
	}
}

// LeasePricing converts a logical link's physical characteristics to
// a monthly lease price. The default models the leased-wave market:
// a fixed port charge plus a distance component, scaled sublinearly
// in capacity (economies of scale), times the BP's cost multiplier.
type LeasePricing struct {
	PortCharge   float64 // per link per month
	PerKm        float64 // per km per month at reference capacity
	RefGbps      float64 // reference capacity for PerKm
	CapacityExpo float64 // capacity exponent (<1 = economies of scale)
}

// DefaultLeasePricing returns the pricing used by the Figure 2
// pipeline. Magnitudes are arbitrary units; only relative costs
// matter to the auction.
func DefaultLeasePricing() LeasePricing {
	return LeasePricing{PortCharge: 2000, PerKm: 3.0, RefGbps: 10, CapacityExpo: 0.8}
}

// Price returns the monthly lease price for link l of network p.
// Virtual links (no owning BP) use a cost multiplier of 1.
func (lp LeasePricing) Price(p *topo.POCNetwork, l topo.LogicalLink) float64 {
	mult := 1.0
	if l.BP != topo.VirtualBP {
		mult = p.BPs[l.BP].CostMult
	}
	scale := math.Pow(l.Capacity/lp.RefGbps, lp.CapacityExpo)
	return mult * (lp.PortCharge + lp.PerKm*l.DistanceKm) * scale
}

// StandardBids builds one bid per BP covering all of its links, using
// the given lease pricing and a volume discount (rate 1% per extra
// link, capped at 12%).
func StandardBids(p *topo.POCNetwork, lp LeasePricing) []Bid {
	bids := make([]Bid, len(p.BPs))
	for b := range p.BPs {
		prices := map[int]float64{}
		for _, id := range p.LinksOfBP(b) {
			prices[id] = lp.Price(p, p.Links[id])
		}
		links := make([]int, 0, len(prices))
		for _, id := range p.LinksOfBP(b) {
			links = append(links, id)
		}
		bids[b] = Bid{BP: b, Links: links, Cost: VolumeDiscountCost(prices, 0.01, 0.12)}
	}
	return bids
}

// VirtualLink is a link provided by an external ISP under a long-term
// contract. Virtual links participate in link selection (they give
// the POC alternatives and cap collusion) but receive no auction
// payment; their cost is the contract price.
type VirtualLink struct {
	LinkID        int     // logical link ID in the POC network
	ContractPrice float64 // monthly
}
