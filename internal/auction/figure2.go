package auction

import (
	"fmt"
	"sort"

	"github.com/public-option/poc/internal/provision"
	"github.com/public-option/poc/internal/topo"
	"github.com/public-option/poc/internal/traffic"
)

// Figure2Row is one bar group in the paper's Figure 2: the
// payment-over-bid margin of one of the largest BPs under each of the
// three acceptability constraints.
type Figure2Row struct {
	BP    int
	Name  string
	Share float64 // fraction of logical links contributed
	PoB   [3]float64
}

// Figure2Result holds the full experiment output, one Result per
// constraint plus the per-BP rows for the largest BPs.
type Figure2Result struct {
	Rows    []Figure2Row
	Results [3]*Result
}

// Figure2Config assembles the experiment.
type Figure2Config struct {
	Network   *topo.POCNetwork
	TM        *traffic.Matrix
	Bids      []Bid
	Virtual   []VirtualLink
	RouteOpts provision.Options
	MaxChecks int
	// TopBPs selects how many of the largest BPs to report (the paper
	// shows five).
	TopBPs int
}

// RunFigure2 reproduces the paper's Figure 2: it runs the auction
// under Constraint #1 (load only), Constraint #2 (single path
// failure) and Constraint #3 (per-pair path failure), and reports the
// payment-over-bid margin PoB = (P_a − C_a)/C_a of the largest BPs,
// ordered by decreasing size.
func RunFigure2(cfg Figure2Config) (*Figure2Result, error) {
	if cfg.TopBPs <= 0 {
		cfg.TopBPs = 5
	}
	out := &Figure2Result{}
	for i, c := range []provision.Constraint{provision.Constraint1, provision.Constraint2, provision.Constraint3} {
		inst := &Instance{
			Network:    cfg.Network,
			Bids:       cfg.Bids,
			Virtual:    cfg.Virtual,
			TM:         cfg.TM,
			Constraint: c,
			RouteOpts:  cfg.RouteOpts,
			MaxChecks:  cfg.MaxChecks,
		}
		res, err := inst.Run()
		if err != nil {
			return nil, fmt.Errorf("auction: figure2 %v: %w", c, err)
		}
		out.Results[i] = res
	}

	shares := cfg.Network.BPShare()
	order := make([]int, len(shares))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if shares[order[i]] != shares[order[j]] {
			return shares[order[i]] > shares[order[j]]
		}
		return order[i] < order[j]
	})
	n := cfg.TopBPs
	if n > len(order) {
		n = len(order)
	}
	for _, bp := range order[:n] {
		row := Figure2Row{BP: bp, Name: cfg.Network.BPs[bp].Name, Share: shares[bp]}
		for i := 0; i < 3; i++ {
			row.PoB[i] = out.Results[i].PoB(bp)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// CollusionResult compares honest auction payments with payments when
// BPs withdraw the links that were not selected — the manipulation
// §3.3 analyses ("if the BPs can guess in advance what the set SL is,
// they can decide to not offer any links not in this set ... possibly
// changing [the payoff] of others").
type CollusionResult struct {
	Honest    *Result
	Withdrawn *Result
	// Gain[a] is the payment change for BP a from the manipulation.
	Gain []float64
}

// TotalGain sums the payment changes across BPs.
func (c *CollusionResult) TotalGain() float64 {
	t := 0.0
	for _, g := range c.Gain {
		t += g
	}
	return t
}

// RunCollusion runs the instance honestly, then reruns it with every
// BP offering only its selected links, and reports the per-BP payment
// gains. With external virtual links present the gains are bounded by
// the contract alternatives; without them the gains can be large —
// the comparison is experiment E10 in DESIGN.md.
func RunCollusion(in *Instance) (*CollusionResult, error) {
	honest, err := in.Run()
	if err != nil {
		return nil, err
	}
	withdrawnBids := make([]Bid, len(in.Bids))
	for a, b := range in.Bids {
		var keep []int
		for _, id := range b.Links {
			if honest.Selected[id] {
				keep = append(keep, id)
			}
		}
		withdrawnBids[a] = Bid{BP: b.BP, Links: keep, Cost: b.Cost}
	}
	in2 := *in
	in2.Bids = withdrawnBids
	withdrawn, err := in2.Run()
	if err != nil {
		return nil, fmt.Errorf("auction: collusion rerun: %w", err)
	}
	res := &CollusionResult{Honest: honest, Withdrawn: withdrawn, Gain: make([]float64, len(in.Bids))}
	for a := range in.Bids {
		res.Gain[a] = withdrawn.Payments[a] - honest.Payments[a]
	}
	return res, nil
}

// StandardVirtualLinks attaches an external ISP at the given router
// indices: it adds a full mesh of virtual links between the
// attachment points with the given capacity, priced at premium times
// the standard lease pricing (external transit is the expensive
// fallback). It returns the virtual-link descriptors for the auction.
func StandardVirtualLinks(p *topo.POCNetwork, attach []int, capacity, premium float64, lp LeasePricing) []VirtualLink {
	var out []VirtualLink
	for i := 0; i < len(attach); i++ {
		for j := i + 1; j < len(attach); j++ {
			id := p.AddVirtualLink(attach[i], attach[j], capacity)
			out = append(out, VirtualLink{
				LinkID:        id,
				ContractPrice: premium * lp.Price(p, p.Links[id]),
			})
		}
	}
	return out
}
